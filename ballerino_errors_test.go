package ballerino

import (
	"errors"
	"strings"
	"testing"
)

// runNoPanic runs cfg asserting that Run converts the failure into a typed
// *SimError instead of panicking — the panic-free public API contract.
func runNoPanic(t *testing.T, name string, cfg Config) (res *Result, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Run panicked: %v", name, r)
		}
	}()
	return Run(cfg)
}

// TestInvalidConfigsReturnTypedErrors walks every user-reachable Config
// mistake: each must come back as a *SimError with Stage "config" and a
// message naming the valid values, and none may panic.
func TestInvalidConfigsReturnTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring the error must mention
	}{
		{"unknown arch", Config{Arch: "Pentium"}, "unknown architecture"},
		{"width 3", Config{Width: 3}, "2, 4, 8, 10"},
		{"width 16", Config{Width: 16}, "2, 4, 8, 10"},
		{"negative width", Config{Width: -8}, "2, 4, 8, 10"},
		{"unknown workload", Config{Workload: "linpack"}, "unknown workload"},
		{"negative ops", Config{MaxOps: -1}, "MaxOps"},
		{"negative warmup", Config{WarmupOps: -5}, "WarmupOps"},
		{"negative footprint", Config{FootprintBytes: -4096}, "FootprintBytes"},
		{"negative piqs", Config{NumPIQs: -2}, "NumPIQs"},
		{"negative piq depth", Config{PIQDepth: -4}, "PIQDepth"},
		{"odd piq depth", Config{PIQDepth: 7}, "even"},
		{"unknown dvfs", Config{DVFS: "L9"}, "DVFS"},
		{"bad fault knob", Config{FaultSpec: "warp=9"}, "unknown knob"},
		{"fault squeeze too high", Config{FaultSpec: "squeeze=1000"}, "squeeze"},
		{"fault value not numeric", Config{FaultSpec: "jitter=much"}, "bad value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := runNoPanic(t, tc.name, tc.cfg)
			if err == nil {
				t.Fatalf("accepted invalid config, result %+v", res)
			}
			var se *SimError
			if !errors.As(err, &se) {
				t.Fatalf("want *SimError, got %T: %v", err, err)
			}
			if se.Stage != "config" {
				t.Errorf("Stage = %q, want \"config\" (%v)", se.Stage, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.want)
			}
			// Validate alone must agree with Run.
			if verr := tc.cfg.Validate(); verr == nil {
				t.Error("Config.Validate accepted what Run rejected")
			}
		})
	}
}

// TestValidateAcceptsRunnableConfigs spot-checks that defaulting keeps
// Validate permissive for every zero or customised-but-legal field.
func TestValidateAcceptsRunnableConfigs(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Arch: "CASINO", Width: 2, Workload: "branchy"},
		{Workload: "bst-search"}, // extra workloads run by name
		{NumPIQs: 4, PIQDepth: 8},
		{FaultSpec: "seed=3,jitter=4"},
		{DVFS: "L1", Audit: true},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", cfg, err)
		}
	}
}

// TestDeadlockReturnsAutopsy forces the cycle budget to trip and checks the
// typed error carries a populated machine-state autopsy.
func TestDeadlockReturnsAutopsy(t *testing.T) {
	_, err := runNoPanic(t, "deadlock", Config{
		Arch: "Ballerino", Workload: "pointer-chase", MaxOps: 200_000, MaxCycles: 2_000,
	})
	if err == nil {
		t.Fatal("run inside an impossible cycle budget succeeded")
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("want *SimError, got %T: %v", err, err)
	}
	if se.Stage != "simulate" {
		t.Errorf("Stage = %q, want \"simulate\"", se.Stage)
	}
	if se.Cycle == 0 {
		t.Error("Cycle not populated")
	}
	for _, want := range []string{"deadlock autopsy", "rob head", "progress:"} {
		if !strings.Contains(se.Autopsy, want) {
			t.Errorf("autopsy missing %q:\n%s", want, se.Autopsy)
		}
	}
}

// TestSimErrorUnwrap checks errors.Is/As reach the underlying cause.
func TestSimErrorUnwrap(t *testing.T) {
	inner := errors.New("inner cause")
	se := &SimError{Stage: "simulate", Err: inner}
	if !errors.Is(se, inner) {
		t.Error("errors.Is does not reach the wrapped cause")
	}
	if !strings.Contains(se.Error(), "inner cause") {
		t.Errorf("Error() = %q", se.Error())
	}
}
