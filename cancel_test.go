package ballerino_test

import (
	"context"
	"encoding/csv"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	ballerino "repro"
	"repro/internal/obs"
)

// TestRunContextCancelFlushesSinks: a run cancelled mid-measurement (the
// cancel fires deterministically from an interval hook, three heartbeats
// in) returns a Stage "canceled" *SimError unwrapping to
// context.Canceled, and the partial CSV sink — flushed by the recorder's
// owner — is parseable, not truncated.
func TestRunContextCancelFlushesSinks(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "partial.metrics.csv")
	sink, err := obs.NewCSVSink(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(1_000, sink)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var beats int
	rec.OnInterval(func(obs.Interval) {
		if beats++; beats == 3 {
			cancel()
		}
	})

	_, err = ballerino.RunContext(ctx, ballerino.Config{
		Arch: "Ballerino", Workload: "stream", MaxOps: 500_000,
		Recorder: rec,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *ballerino.SimError
	if !errors.As(err, &se) || se.Stage != "canceled" {
		t.Fatalf("err = %+v, want *SimError with Stage \"canceled\"", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("flush after cancel: %v", err)
	}

	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatalf("partial CSV sink missing: %v", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("partial CSV is corrupt: %v", err)
	}
	// Header, the three full heartbeats, and the partial interval closed
	// by Finish on the cancellation path.
	if len(rows) < 4 {
		t.Fatalf("partial CSV has %d rows, want header + ≥3 intervals", len(rows))
	}
	for i, row := range rows[1:] {
		if len(row) != len(obs.CSVHeader) {
			t.Errorf("interval row %d has %d columns, want %d", i, len(row), len(obs.CSVHeader))
		}
	}
}

// TestRunPreCancelledStillFlushesPathSinks: with path-configured sinks
// (the ballsim shape), even a run cancelled before its first cycle leaves
// a valid, closed CSV behind via Run's internal flush-on-failure.
func TestRunPreCancelledStillFlushesPathSinks(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "run.metrics.csv")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ballerino.RunContext(ctx, ballerino.Config{
		Arch: "Ballerino", Workload: "stream", MaxOps: 50_000,
		MetricsPath: csvPath,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	b, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("CSV sink missing after pre-cancelled run: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(string(b))).ReadAll()
	if err != nil {
		t.Fatalf("CSV corrupt after pre-cancelled run: %v", err)
	}
	if len(rows) == 0 || len(rows[0]) != len(obs.CSVHeader) {
		t.Fatalf("CSV header missing or malformed: %v", rows)
	}
}

// TestRunWithCallerRecorder: a Config.Recorder-supplied recorder is
// attached but never closed by Run; its sinks and interval hooks observe
// the run, and the manifest still carries the registry dump.
func TestRunWithCallerRecorder(t *testing.T) {
	mem := &obs.MemorySink{}
	rec := obs.NewRecorder(2_000, mem)
	var hooked int
	rec.OnInterval(func(obs.Interval) { hooked++ })

	res, err := ballerino.Run(ballerino.Config{
		Arch: "Ballerino", Workload: "store-load", MaxOps: 20_000,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Intervals) == 0 || hooked != len(mem.Intervals) {
		t.Fatalf("sink saw %d intervals, hook saw %d, want equal and > 0", len(mem.Intervals), hooked)
	}
	if res.Manifest.Metrics == nil {
		t.Error("manifest missing the metrics dump with a caller recorder")
	}
	if res.Manifest.Intervals != len(mem.Intervals) {
		t.Errorf("manifest intervals = %d, sink saw %d", res.Manifest.Intervals, len(mem.Intervals))
	}
	// Interval deltas must sum exactly to the final stats.
	var committed uint64
	for _, iv := range mem.Intervals {
		committed += iv.Committed
	}
	if committed != res.Committed {
		t.Errorf("interval committed sum = %d, final stats = %d", committed, res.Committed)
	}
	// The recorder is still open: closing it now must succeed (idempotent
	// for the memory sink) — proving Run did not close a caller recorder.
	if err := rec.Close(); err != nil {
		t.Errorf("caller close failed: %v", err)
	}
}
