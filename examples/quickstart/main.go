// Quickstart: simulate the Ballerino scheduler on a streaming workload and
// print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	res, err := ballerino.Run(ballerino.Config{
		Arch:     "Ballerino",
		Workload: "stream",
		MaxOps:   200_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %q (%d-wide)\n", res.Arch, res.Workload, res.Width)
	fmt.Printf("  committed    %d μops in %d cycles\n", res.Committed, res.Cycles)
	fmt.Printf("  IPC          %.3f\n", res.IPC)
	fmt.Printf("  mispredicts  %.2f%% of %d branches\n", 100*res.MispredictRate, res.Branches)
	fmt.Printf("  core energy  %.1f µJ\n", res.EnergyPJ/1e6)

	// Where did issues come from? (Ballerino-specific counters.)
	siq := res.SchedCounters["issued_siq"]
	piq := res.SchedCounters["issued_piq"]
	fmt.Printf("  issue mix    %.0f%% S-IQ (speculative), %.0f%% P-IQ heads\n",
		100*float64(siq)/float64(siq+piq), 100*float64(piq)/float64(siq+piq))
}
