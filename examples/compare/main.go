// Compare: run every scheduler on one workload and rank them — a
// single-kernel slice of the paper's Figure 11.
//
//	go run ./examples/compare -workload hash-join
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	wl := flag.String("workload", "hash-join", "kernel to compare on")
	ops := flag.Int("ops", 150_000, "μops to simulate")
	flag.Parse()

	type entry struct {
		arch string
		ipc  float64
	}
	var rows []entry
	var inoIPC float64
	for _, arch := range ballerino.Architectures() {
		res, err := ballerino.Run(ballerino.Config{
			Arch: arch, Workload: *wl, MaxOps: *ops,
		})
		if err != nil {
			log.Fatal(err)
		}
		if arch == "InO" {
			inoIPC = res.IPC
		}
		rows = append(rows, entry{arch, res.IPC})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ipc > rows[j].ipc })

	fmt.Printf("scheduler ranking on %q (%d μops):\n", *wl, *ops)
	for _, r := range rows {
		fmt.Printf("  %-18s IPC %.3f", r.arch, r.ipc)
		if inoIPC > 0 {
			fmt.Printf("   (%.2fx InO)", r.ipc/inoIPC)
		}
		fmt.Println()
	}
}
