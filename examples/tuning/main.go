// Tuning: sweep the Ballerino back-end geometry (number and depth of
// P-IQs) on a chain-rich workload — the capacity-planning exercise behind
// the paper's Figures 6b and 17c.
//
//	go run ./examples/tuning -workload sparse-trees
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	wl := flag.String("workload", "sparse-trees", "kernel to sweep on")
	ops := flag.Int("ops", 100_000, "μops to simulate")
	flag.Parse()

	fmt.Printf("Ballerino P-IQ geometry sweep on %q\n", *wl)
	fmt.Printf("%8s", "piqs\\d")
	depths := []int{6, 12, 24}
	for _, d := range depths {
		fmt.Printf("%10d", d)
	}
	fmt.Println()
	for _, n := range []int{3, 5, 7, 9, 11, 13} {
		fmt.Printf("%8d", n)
		for _, d := range depths {
			res, err := ballerino.Run(ballerino.Config{
				Arch: "Ballerino", Workload: *wl, MaxOps: *ops,
				NumPIQs: n, PIQDepth: d,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.3f", res.IPC)
		}
		fmt.Println()
	}
	fmt.Println("\n(compare rows: the count matters far more than the depth — Figure 6b)")
}
