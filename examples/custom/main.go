// Custom: author a μop kernel with the public uprog API and compare how
// the schedulers handle it — the extension path for users bringing their
// own workloads.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	ballerino "repro"
	"repro/uprog"
)

// histogram builds a classic data-dependent kernel: count value buckets of
// a pseudo-random stream. The increment load-modify-store creates
// store→load traffic on bucket collisions; the bucket address depends on a
// hash of the loop counter.
func histogram() *uprog.Program {
	b := uprog.NewBuilder("histogram")
	const (
		buckets    = 512
		bucketBase = 0x100000
	)
	h, idx, addr, cnt, i := uprog.R(1), uprog.R(2), uprog.R(3), uprog.R(4), uprog.R(5)
	mask, eight, base := uprog.R(6), uprog.R(7), uprog.R(8)
	b.MovImm(mask, buckets-1)
	b.MovImm(eight, 8)
	b.MovImm(base, bucketBase)
	b.MovImm(i, 1<<40)
	loop := b.NewLabel()
	b.Bind(loop)
	b.Mix(h, h, i, 13) // next pseudo-random sample
	b.And(idx, h, mask)
	b.Mul(addr, idx, eight)
	b.Add(addr, addr, base)
	b.Load(cnt, addr, 0) // read bucket
	b.AddImm(cnt, cnt, 1)
	b.Store(cnt, addr, 0) // increment bucket
	b.AddImm(i, i, -1)
	b.BranchNEZ(i, loop)
	return b.Build()
}

func main() {
	p := histogram()
	fmt.Printf("custom kernel %q: %d static μops\n\n", p.Name(), p.Len())
	for _, arch := range []string{"InO", "CASINO", "CES", "Ballerino", "OoO"} {
		res, err := ballerino.Run(ballerino.Config{
			Arch:   arch,
			Custom: p,
			MaxOps: 120_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s IPC %.3f  violations %d  energy %.1f µJ\n",
			arch, res.IPC, res.Violations, res.EnergyPJ/1e6)
	}
}
