// Energy: reproduce the paper's headline energy-efficiency claim on a
// single workload — Ballerino should deliver near-out-of-order performance
// at clustered-in-order energy (Figures 15 and 16).
//
//	go run ./examples/energy -workload compute
package main

import (
	"flag"
	"fmt"
	"log"
)

import "repro"

func main() {
	wl := flag.String("workload", "compute", "kernel to measure")
	ops := flag.Int("ops", 150_000, "μops to simulate")
	flag.Parse()

	archs := []string{"InO", "CES", "CASINO", "FXA", "Ballerino", "Ballerino-12", "OoO"}
	var oooEff, oooEnergy float64

	type row struct {
		arch             string
		ipc, energy, eff float64
		sched            float64
	}
	var rows []row
	for _, arch := range archs {
		res, err := ballerino.Run(ballerino.Config{Arch: arch, Workload: *wl, MaxOps: *ops})
		if err != nil {
			log.Fatal(err)
		}
		r := row{
			arch:   arch,
			ipc:    res.IPC,
			energy: res.EnergyPJ,
			eff:    res.Efficiency,
			sched:  res.EnergyByComponent["Schedule"] + res.EnergyByComponent["Steer"],
		}
		if arch == "OoO" {
			oooEff, oooEnergy = r.eff, r.energy
		}
		rows = append(rows, r)
	}

	fmt.Printf("energy report on %q (%d μops), normalised to OoO:\n", *wl, *ops)
	fmt.Printf("  %-14s %8s %10s %12s %12s\n", "arch", "IPC", "energy", "sched+steer", "perf/energy")
	for _, r := range rows {
		fmt.Printf("  %-14s %8.3f %9.0f%% %11.0f%% %11.0f%%\n",
			r.arch, r.ipc,
			100*r.energy/oooEnergy,
			100*r.sched/oooEnergy,
			100*r.eff/oooEff)
	}
}
