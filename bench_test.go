package ballerino_test

import (
	"context"
	"path/filepath"
	"strconv"
	"testing"

	ballerino "repro"
	"repro/internal/exp"
	"repro/internal/span"
)

// benchOpts keeps the per-figure benchmarks affordable: a representative
// kernel subset and a reduced μop budget. cmd/experiments runs the full
// suite at full fidelity; these benches regenerate each figure's rows and
// report its headline number as a custom metric.
func benchOpts() exp.Options {
	return exp.Options{
		Ops:       20_000,
		Workloads: []string{"compute", "hash-join", "sparse-trees", "stream"},
	}
}

func benchFigure(b *testing.B, run func(exp.Options) (*exp.Table, error), metric func(*exp.Table) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
		if metric != nil {
			name, v := metric(t)
			b.ReportMetric(v, name)
		}
	}
}

// BenchmarkFig03SchedulingDelay regenerates Figure 3c (decode-to-issue
// delay breakdown for InO/CES/CASINO/OoO).
func BenchmarkFig03SchedulingDelay(b *testing.B) {
	benchFigure(b, exp.Fig3c, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("OoO/All", "total")
		return "OoO-dec2issue-cyc", v
	})
}

// BenchmarkFig04CESSteering regenerates Figure 4 (CES steering outcomes).
func BenchmarkFig04CESSteering(b *testing.B) {
	benchFigure(b, exp.Fig4, nil)
}

// BenchmarkFig06aPIQStalls regenerates Figure 6a (P-IQ head cycle
// breakdown of the Step 2 design).
func BenchmarkFig06aPIQStalls(b *testing.B) {
	benchFigure(b, exp.Fig6a, nil)
}

// BenchmarkFig06bPIQSensitivity regenerates Figure 6b (IPC sensitivity to
// P-IQ count and size).
func BenchmarkFig06bPIQSensitivity(b *testing.B) {
	benchFigure(b, exp.Fig6b, func(t *exp.Table) (string, float64) {
		hi, _ := t.Get("11 P-IQs", "depth12")
		lo, _ := t.Get("3 P-IQs", "depth12")
		if lo == 0 {
			return "count-sensitivity", 0
		}
		return "count-sensitivity", hi / lo
	})
}

// BenchmarkFig11Speedup regenerates Figure 11 (speedup over InO for every
// microarchitecture).
func BenchmarkFig11Speedup(b *testing.B) {
	benchFigure(b, exp.Fig11, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("Ballerino", "GEOMEAN")
		return "ballerino-speedup", v
	})
}

// BenchmarkFig12SchedulingPerf regenerates Figure 12 (Ballerino's
// scheduling-delay breakdown versus CES/CASINO/OoO).
func BenchmarkFig12SchedulingPerf(b *testing.B) {
	benchFigure(b, exp.Fig12, nil)
}

// BenchmarkFig13Steps regenerates Figure 13 (step-by-step gains).
func BenchmarkFig13Steps(b *testing.B) {
	benchFigure(b, exp.Fig13, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("Ballerino", "speedup")
		return "step3-speedup", v
	})
}

// BenchmarkFig14IssueBreakdown regenerates Figure 14 (S-IQ vs P-IQ issue
// fractions).
func BenchmarkFig14IssueBreakdown(b *testing.B) {
	benchFigure(b, exp.Fig14, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("Ballerino-step1", "S-IQ")
		return "siq-fraction", v
	})
}

// BenchmarkFig15Energy regenerates Figure 15 (energy by component,
// normalised to OoO).
func BenchmarkFig15Energy(b *testing.B) {
	benchFigure(b, exp.Fig15, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("Ballerino", "TOTAL")
		return "ballerino-energy-vs-ooo", v
	})
}

// BenchmarkFig16EnergyEfficiency regenerates Figure 16 (1/EDP normalised
// to OoO).
func BenchmarkFig16EnergyEfficiency(b *testing.B) {
	benchFigure(b, exp.Fig16, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("Ballerino", "efficiency")
		return "ballerino-eff-vs-ooo", v
	})
}

// BenchmarkFig17aIssueWidth regenerates Figure 17a (issue-width scaling).
func BenchmarkFig17aIssueWidth(b *testing.B) {
	benchFigure(b, exp.Fig17a, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("Ballerino", "w8")
		return "ballerino-8wide-speedup", v
	})
}

// BenchmarkFig17bDVFS regenerates Figure 17b (frequency/voltage levels).
func BenchmarkFig17bDVFS(b *testing.B) {
	benchFigure(b, exp.Fig17b, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("Ballerino@L4", "efficiency")
		return "ballerino-L4-eff-vs-cesL4", v
	})
}

// BenchmarkFig17cPIQCount regenerates Figure 17c (P-IQ count sweep).
func BenchmarkFig17cPIQCount(b *testing.B) {
	benchFigure(b, exp.Fig17c, func(t *exp.Table) (string, float64) {
		v, _ := t.Get("11 P-IQs", "speedup")
		return "11piq-speedup", v
	})
}

// BenchmarkMDPImpact regenerates the §III-B memory-dependence-prediction
// ablation (violations removed, speedup).
func BenchmarkMDPImpact(b *testing.B) {
	o := benchOpts()
	o.Workloads = []string{"store-load"}
	for i := 0; i < b.N; i++ {
		t, err := exp.MDPImpact(o)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := t.Get("store-load", "speedup"); ok {
			b.ReportMetric(v, "mdp-speedup")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (μops/s) per
// microarchitecture — the cost of running the reproduction itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, arch := range []string{"InO", "OoO", "CES", "CASINO", "FXA", "Ballerino"} {
		b.Run(arch, func(b *testing.B) {
			const ops = 50_000
			for i := 0; i < b.N; i++ {
				if _, err := ballerino.Run(ballerino.Config{Arch: arch, Workload: "mixed", MaxOps: ops}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "μops/s")
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on a
// full simulation: "off" is the baseline (nil recorder, one untaken branch
// per emit site — the zero-cost-when-off claim, expected within noise of a
// build without instrumentation), "sinks" streams every event to files in
// a temporary directory.
func BenchmarkObsOverhead(b *testing.B) {
	const ops = 50_000
	base := ballerino.Config{Arch: "Ballerino", Workload: "mixed", MaxOps: ops}

	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ballerino.Run(base); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "μops/s")
	})
	b.Run("sinks", func(b *testing.B) {
		dir := b.TempDir()
		cfg := base
		cfg.TracePath = filepath.Join(dir, "bench.trace.json")
		cfg.EventsPath = filepath.Join(dir, "bench.events.jsonl")
		cfg.MetricsPath = filepath.Join(dir, "bench.metrics.csv")
		for i := 0; i < b.N; i++ {
			if _, err := ballerino.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "μops/s")
	})
}

// BenchmarkTopdownOverhead measures the cost of CPI-stack cycle accounting
// on a full simulation: "off" is the baseline (nil engine — the issue path
// keeps its original closures, so this must be within noise of the
// pre-feature engine; the CI topdown gate enforces ≤3%), "on" attaches the
// engine (per-cycle scalar bookkeeping plus blame classification on
// blocked μops).
func BenchmarkTopdownOverhead(b *testing.B) {
	const ops = 50_000
	base := ballerino.Config{Arch: "Ballerino", Workload: "mixed", MaxOps: ops}

	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ballerino.Run(base); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "μops/s")
	})
	b.Run("on", func(b *testing.B) {
		cfg := base
		cfg.Topdown = true
		for i := 0; i < b.N; i++ {
			if _, err := ballerino.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "μops/s")
	})
}

// BenchmarkSpanOverhead measures the cost of lifecycle tracing on a full
// simulation driven through RunContext: "off" runs with no span in the
// context (the nil-tracer state — every instrumentation site is one
// failed context lookup or untaken nil check, expected within noise,
// ≤3%), "traced" runs under a live root span so trace generation, warm-up
// and the run record themselves. "nil-api" pins the off state's
// zero-alloc claim on the span API itself.
func BenchmarkSpanOverhead(b *testing.B) {
	const ops = 50_000
	base := ballerino.Config{Arch: "Ballerino", Workload: "mixed", MaxOps: ops}

	b.Run("off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ballerino.RunContext(ctx, base); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "μops/s")
	})
	b.Run("traced", func(b *testing.B) {
		tracer := span.NewTracer(-1)
		for i := 0; i < b.N; i++ {
			root := tracer.Start(span.DeriveID(strconv.Itoa(i)), "job")
			ctx := span.ContextWith(context.Background(), root)
			if _, err := ballerino.RunContext(ctx, base); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
		b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "μops/s")
	})
	b.Run("nil-api", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := span.FromContext(ctx) // nil: tracing off
			child := sp.Child("attempt")
			child.SetAttr("k", "v")
			child.Fail(nil)
			child.End()
			_ = span.ContextWith(ctx, child)
		}
	})
}

// BenchmarkAblations regenerates the design-choice ablation study.
func BenchmarkAblations(b *testing.B) {
	o := exp.Options{Ops: 15_000, Workloads: []string{"compute", "sparse-trees"}}
	for i := 0; i < b.N; i++ {
		t, err := exp.Ablations(o)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := t.Get("no-sharing", "rel_ipc"); ok {
			b.ReportMetric(v, "no-sharing-rel-ipc")
		}
	}
}
