package ballerino

import (
	"context"
	"errors"
	"fmt"
	"unsafe"

	"repro/internal/campaign"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/span"
	"repro/internal/workload"
)

// Trace is an immutable, pre-generated dynamic μop trace: the output of
// the functional interpreter for one (workload or custom program,
// footprint, warm-up + μop budget) tuple. Build one with PrepareTrace (or
// share generations through a TraceCache) and inject it via Config.Trace;
// any number of concurrent runs may read the same Trace, so N runs over
// one kernel pay for interpretation once.
type Trace struct {
	key string
	tr  *prog.Trace

	// wl, fp and ops are the workload identity the trace was generated
	// under — the fields of key, kept unparsed so the exporter can write
	// them into a trace file header without string surgery. ops is the
	// requested dynamic budget; the stream may be shorter if the program
	// halted early.
	wl  string
	fp  int64
	ops int
}

// Ops returns the dynamic μop count of the trace.
func (t *Trace) Ops() int { return len(t.tr.Ops) }

// Workload returns the name of the program the trace was generated from.
func (t *Trace) Workload() string { return t.tr.Program.Name }

// Key returns the trace's content key: the identity RunContext checks a
// Config against before accepting the trace.
func (t *Trace) Key() string { return t.key }

// sizeBytes estimates the trace's resident size for the cache budget: the
// μop stream itself plus the oracle state (final memory image and
// load-value map) retained for golden-model verification.
func (t *Trace) sizeBytes() int64 {
	const (
		opBytes  = int64(unsafe.Sizeof(isa.DynInst{}))
		mapEntry = 48 // rough per-entry cost of a map[uint64]int64
	)
	n := int64(len(t.tr.Ops)) * opBytes
	n += int64(len(t.tr.LoadValues)) * mapEntry
	if t.tr.Final != nil {
		n += int64(len(t.tr.Final.Mem)) * mapEntry
	}
	return n
}

// ctxStage classifies a context-ended failure into its SimError stage:
// deadline expiry is a "timeout" (the job's time budget ran out),
// cancellation is "canceled" (the caller abandoned the run). Any other
// cause keeps the stage the failure site chose.
func ctxStage(cause error) (string, bool) {
	switch {
	case errors.Is(cause, context.DeadlineExceeded):
		return "timeout", true
	case errors.Is(cause, context.Canceled):
		return "canceled", true
	}
	return "", false
}

// ContentKey returns the config's full content identity: the trace key
// (kernel, footprint, dynamic budget) plus every timing-relevant knob
// (architecture, width, queue geometry, MDP, DVFS, fault plan). Two
// configs with equal content keys produce byte-identical canonical run
// manifests — the property the durable job store relies on to serve a
// resubmitted grid point from its stored result instead of recomputing.
// Custom programs are rejected: their identity is process-local pointer
// identity, which does not survive a restart.
func (c Config) ContentKey() (string, error) {
	rc, err := c.resolve()
	if err != nil {
		return "", err
	}
	if rc.Custom != nil {
		return "", &SimError{Stage: "config", Arch: rc.Arch, Workload: rc.Workload,
			Err: fmt.Errorf("custom programs have no durable content key")}
	}
	key := fmt.Sprintf("arch:%s|w:%d|piqs:%d.%d|mdp:%t|dvfs:%s|faults:%s|audit:%t|%s",
		rc.Arch, rc.Width, rc.NumPIQs, rc.PIQDepth, !rc.DisableMDP, rc.DVFS,
		rc.FaultSpec, rc.Audit, traceKey(rc.Config))
	// Appended only when on, so every pre-feature key stays byte-stable;
	// a topdown run carries extra manifest content and must not be served
	// from (or overwrite) a plain run's stored result.
	if rc.Topdown {
		key += "|td:true"
	}
	return key, nil
}

// traceKey derives the content key of the trace a config needs. cfg must
// already be defaulted. Named kernels are identified by (name, footprint);
// custom programs by the program value itself (programs are immutable
// once built, so pointer identity is content identity). The dynamic
// length covers warm-up plus the measured budget.
func traceKey(cfg Config) string {
	fp := cfg.FootprintBytes
	if fp == 0 {
		fp = workload.DefaultParams.Footprint
	}
	ops := cfg.MaxOps + cfg.WarmupOps
	if cfg.Custom != nil {
		return fmt.Sprintf("custom:%s@%p|ops:%d", cfg.Custom.Name(), cfg.Custom.Internal(), ops)
	}
	return fmt.Sprintf("wl:%s|fp:%d|ops:%d", cfg.Workload, fp, ops)
}

// resolveProgram returns the μop program a (defaulted) config simulates.
func resolveProgram(cfg Config) (*prog.Program, error) {
	if cfg.Custom != nil {
		return cfg.Custom.Internal(), nil
	}
	w, err := workload.ByName(cfg.Workload, workload.Params{Footprint: cfg.FootprintBytes})
	if err != nil {
		return nil, err
	}
	return w.Program, nil
}

// generateTrace runs the functional interpreter for cfg's dynamic budget.
// Fuel exhaustion is not an error: kernels are infinite-friendly loops the
// simulator truncates.
func generateTrace(ctx context.Context, program *prog.Program, cfg Config) (*prog.Trace, error) {
	tr, err := prog.ExecuteContext(ctx, program, cfg.MaxOps+cfg.WarmupOps)
	if err != nil && !errors.Is(err, prog.ErrFuel) {
		return nil, err
	}
	return tr, nil
}

// PrepareTrace generates the dynamic μop trace for cfg without running
// the timing model. The returned Trace is immutable: set it on any number
// of Configs (Config.Trace) whose workload identity, footprint and
// warm-up + μop budget match cfg's, and RunContext skips its own
// generation step. Every failure is a *SimError ("config", "trace", or
// "canceled"/"timeout" when ctx ends mid-generation).
func PrepareTrace(ctx context.Context, cfg Config) (*Trace, error) {
	rc, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return prepareResolved(ctx, rc)
}

func prepareResolved(ctx context.Context, rc resolved) (*Trace, error) {
	simErr := func(stage string, cause error) *SimError {
		if s, ok := ctxStage(cause); ok {
			stage = s
		}
		return &SimError{Stage: stage, Arch: rc.Arch, Workload: rc.Workload, Err: cause}
	}
	program, err := resolveProgram(rc.Config)
	if err != nil {
		return nil, simErr("config", err)
	}
	gsp := span.FromContext(ctx).Child("trace.generate")
	gsp.SetAttr("workload", rc.Workload)
	tr, err := generateTrace(ctx, program, rc.Config)
	gsp.Fail(err)
	gsp.End()
	if err != nil {
		return nil, simErr("trace", err)
	}
	fp := rc.FootprintBytes
	if fp == 0 {
		fp = workload.DefaultParams.Footprint
	}
	wl := rc.Workload
	if rc.Custom != nil {
		wl = program.Name
	}
	return &Trace{
		key: traceKey(rc.Config),
		tr:  tr,
		wl:  wl,
		fp:  fp,
		ops: rc.MaxOps + rc.WarmupOps,
	}, nil
}

// DefaultTraceCacheBytes is the byte budget a zero-valued cache size
// selects — enough for dozens of million-μop traces without threatening a
// development machine.
const DefaultTraceCacheBytes = 512 << 20

// CacheStats reports a TraceCache's behaviour. Hits, Joins and Misses
// partition the lookups: a Hit found a ready trace, a Join waited on
// another run's in-flight generation (singleflight), and a Miss ran the
// interpreter.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Joins     uint64 `json:"joins"`
	Evictions uint64 `json:"evictions"`

	Entries     int   `json:"entries"`
	BytesUsed   int64 `json:"bytes_used"`
	BytesBudget int64 `json:"bytes_budget"` // 0 = unbounded
}

// TraceCache shares trace generation across runs: lookups are keyed by
// the trace's content identity, concurrent requests for one key share a
// single generation, and an LRU byte budget bounds residency. A cache is
// safe for concurrent use; RunAll creates one per batch unless handed a
// longer-lived cache via BatchOptions.Cache (how the telemetry service
// shares traces across served jobs).
type TraceCache struct {
	c *campaign.Cache[*Trace]
}

// NewTraceCache builds a cache with the given byte budget: 0 selects
// DefaultTraceCacheBytes, negative means unbounded.
func NewTraceCache(budgetBytes int64) *TraceCache {
	if budgetBytes == 0 {
		budgetBytes = DefaultTraceCacheBytes
	}
	if budgetBytes < 0 {
		budgetBytes = 0 // campaign.Cache: 0 = unbounded
	}
	return &TraceCache{c: campaign.NewCache[*Trace](budgetBytes)}
}

// Prepare returns the trace for cfg, generating and caching it on a miss.
// Identical configurations — same kernel, footprint and dynamic budget —
// share one cached trace regardless of architecture, width or any other
// timing-only field.
func (tc *TraceCache) Prepare(ctx context.Context, cfg Config) (*Trace, error) {
	rc, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if rc.Trace != nil {
		return rc.Trace, nil
	}
	return tc.c.Get(ctx, traceKey(rc.Config), func(ctx context.Context) (*Trace, int64, error) {
		t, err := prepareResolved(ctx, rc)
		if err != nil {
			return nil, 0, err
		}
		return t, t.sizeBytes(), nil
	})
}

// Stats snapshots the cache counters.
func (tc *TraceCache) Stats() CacheStats {
	s := tc.c.Stats()
	return CacheStats{
		Hits:        s.Hits,
		Misses:      s.Misses,
		Joins:       s.Joins,
		Evictions:   s.Evictions,
		Entries:     s.Entries,
		BytesUsed:   s.BytesUsed,
		BytesBudget: s.BytesBudget,
	}
}
