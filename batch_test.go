package ballerino

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/obs"
)

// normalizeManifest zeroes the wall-time identity fields — the only
// fields allowed to differ between a sequential and a parallel campaign.
func normalizeManifest(t *testing.T, m *obs.Manifest) []byte {
	t.Helper()
	if m == nil {
		t.Fatal("run has no manifest")
	}
	c := *m
	c.CreatedAt = ""
	c.WallSeconds = 0
	c.Hostname = ""
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func batchConfigs() []Config {
	var cfgs []Config
	for _, arch := range []string{"InO", "OoO", "Ballerino"} {
		for _, wl := range []string{"stream", "store-load"} {
			cfgs = append(cfgs, Config{Arch: arch, Workload: wl, MaxOps: 12_000, WarmupOps: 1_000})
		}
	}
	return cfgs
}

// TestRunAllDeterministicManifests is the batch API's core guarantee: a
// campaign at parallelism 4 (with trace sharing) produces byte-identical
// manifests to the same campaign at parallelism 1 with the cache off,
// modulo wall-time fields.
func TestRunAllDeterministicManifests(t *testing.T) {
	cfgs := batchConfigs()
	seq := RunAll(context.Background(), cfgs, BatchOptions{Parallelism: 1, DisableTraceCache: true})
	par := RunAll(context.Background(), cfgs, BatchOptions{Parallelism: 4})
	if err := seq.FirstErr(); err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}
	if err := par.FirstErr(); err != nil {
		t.Fatalf("parallel campaign: %v", err)
	}
	for i := range cfgs {
		sb := normalizeManifest(t, seq.Results[i].Result.Manifest)
		pb := normalizeManifest(t, par.Results[i].Result.Manifest)
		if string(sb) != string(pb) {
			t.Errorf("slot %d (%s/%s): parallel manifest differs from sequential:\nseq: %s\npar: %s",
				i, cfgs[i].Arch, cfgs[i].Workload, sb, pb)
		}
	}
}

// TestRunAllCacheCounters: a campaign of N runs over K distinct kernels
// generates exactly K traces; every other lookup is a hit or a
// singleflight join, and the counters in the batch expose that.
func TestRunAllCacheCounters(t *testing.T) {
	cfgs := batchConfigs() // 6 runs over 2 distinct kernels
	b := RunAll(context.Background(), cfgs, BatchOptions{Parallelism: 4})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	st := b.Cache
	if st.Misses != 2 {
		t.Errorf("trace generations = %d, want 2 (one per distinct kernel)", st.Misses)
	}
	if st.Hits+st.Joins != uint64(len(cfgs))-st.Misses {
		t.Errorf("hits %d + joins %d != %d lookups - %d misses",
			st.Hits, st.Joins, len(cfgs), st.Misses)
	}
	if st.Entries != 2 || st.BytesUsed <= 0 {
		t.Errorf("entries/bytes = %d/%d, want 2 entries with positive residency", st.Entries, st.BytesUsed)
	}
}

// TestRunAllErrorIsolation: a failing slot carries its *SimError; its
// neighbours complete untouched.
func TestRunAllErrorIsolation(t *testing.T) {
	cfgs := []Config{
		{Arch: "Ballerino", Workload: "stream", MaxOps: 8_000},
		{Arch: "NoSuchArch", Workload: "stream", MaxOps: 8_000},
		{Arch: "OoO", Workload: "stream", MaxOps: 8_000},
	}
	b := RunAll(context.Background(), cfgs, BatchOptions{Parallelism: 2})
	if b.Results[0].Err != nil || b.Results[2].Err != nil {
		t.Fatalf("healthy slots failed: %v / %v", b.Results[0].Err, b.Results[2].Err)
	}
	var se *SimError
	if !errors.As(b.Results[1].Err, &se) || se.Stage != "config" {
		t.Fatalf("bad slot error = %v, want *SimError stage config", b.Results[1].Err)
	}
	if b.Results[1].Result != nil {
		t.Error("failed slot has a non-nil result")
	}
}

// TestRunAllCancel: cancelling the campaign context yields "canceled"
// *SimErrors in the unfinished slots and the result slice stays fully
// populated and ordered.
func TestRunAllCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before dispatch: every slot must report it
	cfgs := batchConfigs()
	b := RunAll(ctx, cfgs, BatchOptions{Parallelism: 4})
	if len(b.Results) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(b.Results), len(cfgs))
	}
	for i, rr := range b.Results {
		var se *SimError
		if !errors.As(rr.Err, &se) || se.Stage != "canceled" {
			t.Errorf("slot %d: err = %v, want *SimError stage canceled", i, rr.Err)
		}
		if !errors.Is(rr.Err, context.Canceled) {
			t.Errorf("slot %d: error does not unwrap to context.Canceled", i)
		}
	}
}

// TestPrepareTraceInjection: a run fed a PrepareTrace trace equals an
// inline-generated run bit for bit, and a trace prepared for a different
// configuration is rejected at Validate.
func TestPrepareTraceInjection(t *testing.T) {
	cfg := Config{Arch: "CASINO", Workload: "branchy", MaxOps: 10_000}
	tr, err := PrepareTrace(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops() != 10_000 || tr.Workload() != "branchy" {
		t.Fatalf("trace ops/workload = %d/%s", tr.Ops(), tr.Workload())
	}

	inline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected := cfg
	injected.Trace = tr
	shared, err := Run(injected)
	if err != nil {
		t.Fatal(err)
	}
	if string(normalizeManifest(t, inline.Manifest)) != string(normalizeManifest(t, shared.Manifest)) {
		t.Error("injected-trace manifest differs from inline-generated run")
	}

	// Same trace, wrong budget: Validate must refuse it.
	wrong := cfg
	wrong.MaxOps = 20_000
	wrong.Trace = tr
	var se *SimError
	if err := wrong.Validate(); !errors.As(err, &se) || se.Stage != "config" {
		t.Fatalf("mismatched trace: Validate = %v, want config *SimError", err)
	}
}

// TestKernels: the catalogue matches the two name lists, carries the
// Extra tag, and repeated calls do not share backing storage.
func TestKernels(t *testing.T) {
	ks := Kernels()
	var std, extra int
	for _, k := range ks {
		if k.Name == "" || k.Kind == "" || k.Emulate == "" {
			t.Errorf("kernel %+v has empty metadata", k)
		}
		if k.Extra {
			extra++
		} else {
			std++
		}
	}
	if wls := Workloads(); len(wls) != std {
		t.Errorf("Workloads() has %d names, catalogue has %d standard kernels", len(wls), std)
	}
	if ex := ExtraWorkloads(); len(ex) != extra {
		t.Errorf("ExtraWorkloads() has %d names, catalogue has %d extras", len(ex), extra)
	}
	ks[0].Name = "mutated"
	if Kernels()[0].Name == "mutated" {
		t.Error("Kernels() returns shared backing storage")
	}
}
