// Package ballerino is the public API of the Ballerino reproduction: a
// cycle-level simulation of the MICRO 2022 paper "Reconstructing
// Out-of-Order Issue Queue" (Jeong, Lee, Kuk, Ro).
//
// A simulation pairs a microarchitecture (InO, OoO, CES, CASINO, FXA,
// Ballerino and its step variants) with a synthetic workload kernel and
// runs a fixed number of μops through the shared pipeline model, returning
// performance, scheduling-delay and energy results.
//
// Quick start:
//
//	res, err := ballerino.Run(ballerino.Config{
//		Arch:     "Ballerino",
//		Workload: "stream",
//		MaxOps:   200_000,
//	})
//	fmt.Printf("IPC = %.2f\n", res.IPC)
package ballerino

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sched"
	"repro/internal/span"
	"repro/internal/stats"
	"repro/internal/topdown"
	"repro/internal/workload"
	"repro/uprog"
)

// Config selects one simulation run. Zero values choose sensible defaults
// (8-wide, the "stream" kernel, 200k μops).
type Config struct {
	// Arch is one of Architectures(). Default "Ballerino".
	Arch string
	// Width is the issue width: 2, 4, 8 or 10. Default 8.
	Width int
	// Workload is the name of one of Kernels(). Default "stream". Ignored
	// when Custom is set.
	Workload string
	// Custom, when non-nil, simulates a user-authored program (see
	// package repro/uprog) instead of a named kernel.
	Custom *uprog.Program
	// FootprintBytes sizes memory-bound kernels (default 8 MiB).
	FootprintBytes int64
	// MaxOps is the number of dynamic μops to simulate. Default 200000.
	MaxOps int
	// WarmupOps, when positive, simulates that many μops first (warming
	// caches, predictors and queues) and reports statistics only for the
	// following MaxOps μops — the paper's SimPoint methodology.
	WarmupOps int
	// NumPIQs/PIQDepth override the clustered queue geometry (0 = Table II).
	NumPIQs  int
	PIQDepth int
	// DisableMDP turns off memory dependence prediction.
	DisableMDP bool
	// DVFS selects an operating point "L1".."L4" (default "L4").
	DVFS string
	// MaxCycles aborts a stuck simulation (default 100× MaxOps).
	MaxCycles uint64
	// Audit enables the self-verification machinery: the per-cycle
	// invariant auditor (internal/check) and the golden-model cross-check
	// that replays the committed μop stream through an independent
	// functional executor. Violations abort the run with a *SimError
	// carrying a machine-state autopsy.
	Audit bool
	// FaultSpec, when non-empty, injects deterministic timing faults, e.g.
	// "seed=1,jitter=8,flush=2000,squeeze=50,mdp=100" (see internal/faults).
	// Faults are architecturally invisible; combine with Audit to prove it.
	FaultSpec string
	// Topdown attaches the top-down cycle-accounting engine
	// (internal/topdown): every issue slot of every measured cycle is
	// attributed to one CPI-stack category, reported in Result.Topdown
	// and the manifest's "topdown" section. Off by default — a disabled
	// engine costs nothing on the issue path and leaves the manifest
	// byte-identical to pre-feature runs.
	Topdown bool

	// Observability (internal/obs). Any non-empty path attaches the
	// recorder to the measured region (after warm-up): every pipeline
	// stage then emits typed events and interval heartbeats. With all
	// paths empty the recorder is never attached and the pipeline pays
	// only an untaken nil-check branch per emit site.

	// TracePath writes a Chrome trace_event JSON file (one slice per
	// committed μop on its issue port's track, flush markers, counter
	// tracks) viewable in chrome://tracing or Perfetto.
	TracePath string
	// EventsPath writes a JSONL event log: one JSON object per pipeline
	// event (fetch, decode, rename, dispatch, wakeup, issue, writeback,
	// commit, flush, squash, steering/sharing) plus interval rows.
	EventsPath string
	// MetricsPath writes a CSV with one row per heartbeat interval; the
	// per-interval counter deltas sum exactly to the final statistics.
	MetricsPath string
	// ManifestPath writes the run manifest JSON. When empty but another
	// observability path is set, the manifest is written alongside the
	// first sink as "<path>.manifest.json". Result.Manifest is populated
	// in-memory regardless.
	ManifestPath string
	// ObsInterval is the heartbeat period in cycles (0 = 10000).
	ObsInterval uint64
	// Recorder, when non-nil, attaches a caller-built recorder instead of
	// one constructed from the path fields above (which are then ignored).
	// The caller owns its lifecycle: Run finishes the final interval and
	// folds the metrics-registry dump into the manifest, but never closes
	// it — close it yourself to flush its sinks. This is how a live
	// consumer (internal/telemetry's SSE stream and Prometheus gauges)
	// subscribes to heartbeats via Recorder.OnInterval before the run
	// starts.
	Recorder *obs.Recorder

	// Trace, when non-nil, supplies a pre-generated dynamic μop trace
	// (see PrepareTrace and TraceCache) and skips the trace-generation
	// step inside RunContext — the dominant start-up cost of
	// multi-million-μop jobs. The trace is immutable and may be shared by
	// any number of concurrent runs; it must have been prepared for an
	// identical (workload or custom program, footprint, warm-up + μop
	// budget) tuple or Validate fails. Results are byte-identical to an
	// inline-generated run.
	Trace *Trace
}

func (c Config) withDefaults() Config {
	if c.Arch == "" {
		c.Arch = string(config.ArchBallerino)
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Workload == "" {
		c.Workload = "stream"
	}
	if c.MaxOps == 0 {
		c.MaxOps = 200_000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = uint64(c.MaxOps+c.WarmupOps) * 100
	}
	if c.DVFS == "" {
		c.DVFS = "L4"
	}
	return c
}

// SimError is the typed error every failing Run returns: the stage that
// failed, the simulation's identity, and — for aborted simulations — the
// cycle and a rendered machine-state autopsy.
type SimError struct {
	// Stage is where the failure happened: "config" (invalid Config),
	// "simulate" (deadlock, cycle budget, invariant violation), "golden"
	// (golden-model divergence), "canceled" (the caller's context was
	// cancelled), "timeout" (the context's deadline passed — how a served
	// job killed by its -job-timeout budget is distinguished from one its
	// caller abandoned) or "internal" (recovered panic — a bug).
	Stage    string
	Arch     string
	Workload string
	// Cycle is the simulation cycle of the failure (0 when not applicable).
	Cycle uint64
	// Autopsy is the rendered machine-state autopsy ("" when none).
	Autopsy string
	// Err is the underlying cause.
	Err error
}

func (e *SimError) Error() string {
	id := ""
	if e.Arch != "" || e.Workload != "" {
		id = fmt.Sprintf(" (%s on %s)", e.Arch, e.Workload)
	}
	return fmt.Sprintf("ballerino: %s error%s: %v", e.Stage, id, e.Err)
}

func (e *SimError) Unwrap() error { return e.Err }

// Validate reports whether the configuration (after defaulting) is
// runnable. Run calls it first; every failure is a *SimError with Stage
// "config" and a message naming the offending field and the valid values.
func (c Config) Validate() error {
	_, err := c.resolve()
	return err
}

// resolved is a defaulted, validated Config plus the artefacts validation
// produces anyway — the parsed fault plan and the DVFS operating point —
// so RunContext never parses either a second time.
type resolved struct {
	Config
	plan  faults.Plan
	level config.DVFSLevel
}

// resolve defaults and validates c once, retaining the fault plan and
// DVFS level it had to compute along the way.
func (c Config) resolve() (resolved, error) {
	rc := resolved{Config: c.withDefaults()}
	fail := func(format string, args ...any) error {
		return &SimError{Stage: "config", Arch: rc.Arch, Workload: rc.Workload,
			Err: fmt.Errorf(format, args...)}
	}
	if !slices.Contains(Architectures(), rc.Arch) {
		return rc, fail("unknown architecture %q (valid: %v)", rc.Arch, Architectures())
	}
	if rc.Width != 2 && rc.Width != 4 && rc.Width != 8 && rc.Width != 10 {
		return rc, fail("unsupported issue width %d (valid: 2, 4, 8, 10)", rc.Width)
	}
	// A pre-generated trace supplies its own program, so its workload name
	// need not be in the catalogue — imported trace files run under the
	// name recorded in their header, held to account by the trace-key
	// equality check below.
	if rc.Custom == nil && rc.Trace == nil && !kernelSet()[rc.Workload] {
		return rc, fail("unknown workload %q (valid: %v, extras: %v)", rc.Workload, kernelNames(false), kernelNames(true))
	}
	if rc.MaxOps < 0 {
		return rc, fail("MaxOps %d must not be negative", rc.MaxOps)
	}
	if rc.WarmupOps < 0 {
		return rc, fail("WarmupOps %d must not be negative", rc.WarmupOps)
	}
	if rc.FootprintBytes < 0 {
		return rc, fail("FootprintBytes %d must not be negative", rc.FootprintBytes)
	}
	if err := (config.Options{NumPIQs: rc.NumPIQs, PIQDepth: rc.PIQDepth}).Validate(); err != nil {
		return rc, fail("%v", err)
	}
	level, err := dvfsLevel(rc.DVFS)
	if err != nil {
		return rc, fail("%v", err)
	}
	rc.level = level
	plan, err := faults.Parse(rc.FaultSpec)
	if err != nil {
		return rc, fail("%v", err)
	}
	rc.plan = plan
	if rc.Trace != nil && rc.Trace.key != traceKey(rc.Config) {
		return rc, fail("pre-generated trace was prepared for %q, not this configuration (%q)",
			rc.Trace.key, traceKey(rc.Config))
	}
	return rc, nil
}

// DelayBreakdown is the average decode-to-issue delay of one instruction
// class, split into the three components of Figure 3c / Figure 12.
type DelayBreakdown struct {
	Count            uint64
	DecodeToDispatch float64
	DispatchToReady  float64
	ReadyToIssue     float64
}

// Total is the average decode-to-issue delay.
func (d DelayBreakdown) Total() float64 {
	return d.DecodeToDispatch + d.DispatchToReady + d.ReadyToIssue
}

// Result reports one simulation run.
type Result struct {
	Arch     string
	Workload string
	Width    int

	Cycles    uint64
	Committed uint64
	IPC       float64
	// TimeSeconds is wall-clock execution time at the operating point's
	// frequency.
	TimeSeconds float64

	Branches       uint64
	MispredictRate float64
	Violations     uint64
	Flushes        uint64

	// Delay maps class name ("Ld", "LdC", "Rst", "All") to its breakdown.
	Delay map[string]DelayBreakdown

	// EnergyPJ is core-wide energy; EnergyByComponent splits it into the
	// nine Figure 15 categories.
	EnergyPJ          float64
	EnergyByComponent map[string]float64
	// EDP is energy × time (pJ·s); Efficiency is 1/EDP.
	EDP        float64
	Efficiency float64

	// SchedCounters exposes microarchitecture-specific counters
	// (steering outcomes, issue sources, sharing activations, ...).
	SchedCounters map[string]uint64

	// AuditChecks is the number of per-cycle invariant audits that ran
	// (0 unless Config.Audit was set).
	AuditChecks uint64
	// GoldenOps is the number of committed μops replayed and verified by
	// the golden-model executor (0 unless Config.Audit was set).
	GoldenOps uint64
	// InjectedFaults counts faults actually injected, by kind (nil unless
	// Config.FaultSpec was set).
	InjectedFaults map[string]uint64

	// Topdown is the CPI-stack cycle accounting of the measured region
	// (nil unless Config.Topdown was set).
	Topdown *topdown.Report

	// Manifest is the machine-readable run record (always populated):
	// configuration, environment, wall time, final statistics, energy and
	// scheduler counters, plus the metrics-registry dump when an
	// observability sink was attached. `ballsim -json` prints it.
	Manifest *obs.Manifest
}

// Architectures lists the evaluated microarchitectures.
func Architectures() []string {
	var names []string
	for _, a := range config.AllArchs() {
		names = append(names, string(a))
	}
	return names
}

// listParams generates kernels at a tiny footprint: names don't depend on
// sizing, and listing must stay cheap enough for Config.Validate to call.
var listParams = workload.Params{Footprint: 1 << 12}

// Kernel describes one runnable synthetic kernel: its name, its broad
// behaviour class, the SPEC application behaviour it stands in for, and
// whether it belongs to the extras set (runnable by name but excluded
// from the calibrated figure suite).
type Kernel struct {
	Name    string
	Kind    string // "memory-bound", "compute-bound", "branchy", "mixed"
	Emulate string
	Extra   bool
}

// kernelList builds the kernel catalogue exactly once: listing used to
// rebuild every kernel program on each call (and Validate listed per
// run), which is pure waste — names and metadata never change.
var kernelList = sync.OnceValue(func() []Kernel {
	var ks []Kernel
	for _, w := range workload.All(listParams) {
		ks = append(ks, Kernel{Name: w.Name, Kind: w.Kind, Emulate: w.Emulate})
	}
	for _, w := range workload.Extras(listParams) {
		ks = append(ks, Kernel{Name: w.Name, Kind: w.Kind, Emulate: w.Emulate, Extra: true})
	}
	return ks
})

// kernelSet is the constant-time name membership check behind Validate.
var kernelSet = sync.OnceValue(func() map[string]bool {
	set := make(map[string]bool)
	for _, k := range kernelList() {
		set[k.Name] = true
	}
	return set
})

// Kernels lists every runnable kernel — the standard figure suite first,
// then the extras (Extra = true) — with its metadata. The returned slice
// is the caller's to mutate.
func Kernels() []Kernel {
	return slices.Clone(kernelList())
}

// kernelNames lists the catalogue names with the given Extra flag.
func kernelNames(extra bool) []string {
	var names []string
	for _, k := range kernelList() {
		if k.Extra == extra {
			names = append(names, k.Name)
		}
	}
	return names
}

// Workloads lists the standard synthetic kernel suite (the set every
// figure-level experiment averages over).
//
// Deprecated: Kernels is the one catalogue entry point; filter on
// Kernel.Extra == false for the standard suite. Workloads remains as a
// thin alias.
func Workloads() []string {
	return kernelNames(false)
}

// ExtraWorkloads lists additional kernels runnable by name but excluded
// from the calibrated figure suite (tree search, sorting passes, FFT
// butterflies).
//
// Deprecated: Kernels is the one catalogue entry point; filter on
// Kernel.Extra == true for the extras. ExtraWorkloads remains as a thin
// alias.
func ExtraWorkloads() []string {
	return kernelNames(true)
}

// Run executes one simulation. Every failure is a *SimError; no panic
// escapes (a recovered panic surfaces as a *SimError with Stage
// "internal").
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the simulation stops within a few thousand cycles and returns a
// *SimError with Stage "canceled" unwrapping to context.Canceled; when
// ctx's deadline passes the run is killed the same way but the error's
// Stage is "timeout" (unwrapping to context.DeadlineExceeded), so a
// caller can tell a job killed by its deadline budget from one its
// submitter abandoned. Attached sinks are flushed before returning, so a
// cancelled traced run still leaves valid partial artifacts on disk.
func RunContext(ctx context.Context, cfg Config) (res *Result, err error) {
	start := time.Now()
	rc, rerr := cfg.resolve()
	cfg = rc.Config
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &SimError{Stage: "internal", Arch: cfg.Arch, Workload: cfg.Workload,
				Err: fmt.Errorf("recovered panic: %v", r)}
		}
	}()
	if rerr != nil {
		return nil, rerr
	}
	// simErr wraps a failure, pulling the cycle and the machine-state
	// autopsy out of the typed pipeline errors when present. Cancellation
	// and deadline expiry override the stage so callers can tell an
	// aborted or timed-out run from a failed one without unwrapping.
	simErr := func(stage string, cause error) *SimError {
		if s, ok := ctxStage(cause); ok {
			stage = s
		}
		se := &SimError{Stage: stage, Arch: cfg.Arch, Workload: cfg.Workload, Err: cause}
		var de *check.DeadlockError
		var ve *check.ViolationError
		switch {
		case errors.As(cause, &de) && de.Autopsy != nil:
			se.Cycle = de.Autopsy.Cycle
			se.Autopsy = de.Autopsy.String()
		case errors.As(cause, &ve):
			se.Cycle = ve.Cycle
			if ve.Autopsy != nil {
				se.Autopsy = ve.Autopsy.String()
			}
		}
		return se
	}

	// Trace acquisition. A pre-generated Config.Trace (PrepareTrace, or the
	// shared cache under RunAll) is used as-is — it is immutable and safe to
	// share across concurrent runs. Otherwise the trace is generated here;
	// generation dominates start-up for multi-million-μop jobs, so it
	// honours ctx too: a served job cancelled while still generating aborts
	// instead of waiting out the interpreter.
	// Lifecycle span, when the caller threaded one through ctx (the
	// serving stack does; library callers usually don't, and the nil-safe
	// span API makes that free).
	sp := span.FromContext(ctx)
	var trace *prog.Trace
	if cfg.Trace != nil {
		trace = cfg.Trace.tr
	} else {
		program, perr := resolveProgram(rc.Config)
		if perr != nil {
			return nil, simErr("config", perr)
		}
		gsp := sp.Child("trace.generate")
		gsp.SetAttr("workload", cfg.Workload)
		var terr error
		trace, terr = generateTrace(ctx, program, rc.Config)
		gsp.Fail(terr)
		gsp.End()
		if terr != nil {
			return nil, simErr("trace", terr)
		}
	}
	program := trace.Program
	if cfg.Custom != nil {
		cfg.Workload = program.Name
	}

	m, err := config.NewMachine(config.Arch(cfg.Arch), cfg.Width, config.Options{
		NumPIQs:    cfg.NumPIQs,
		PIQDepth:   cfg.PIQDepth,
		DisableMDP: cfg.DisableMDP,
		MaxCycles:  cfg.MaxCycles,
	})
	if err != nil {
		return nil, simErr("config", err)
	}
	level := rc.level

	p, err := pipeline.New(m.Pipeline, trace.Ops, m.Factory)
	if err != nil {
		return nil, simErr("config", err)
	}

	var auditor *check.Auditor
	var replay *prog.Replay
	if cfg.Audit {
		auditor = p.EnableAudit()
		replay = prog.NewReplay(program)
		p.OnCommit = func(u *sched.UOp) { replay.Apply(u.D) }
	}
	var injector *faults.Injector
	if rc.plan.Active() {
		injector, err = faults.New(rc.plan)
		if err != nil {
			return nil, simErr("config", err)
		}
		p.SetInjector(injector)
	}

	rec, recOwned, sinkInfos, oerr := openRecorder(cfg)
	if oerr != nil {
		return nil, simErr("obs", oerr)
	}
	// Flush sinks on every failure path (including cancellation, so partial
	// trace/CSV artifacts stay valid); the success path closes explicitly so
	// write errors surface. A caller-supplied recorder is never closed here.
	recClosed := !recOwned
	defer func() {
		if !recClosed {
			rec.Close()
		}
	}()

	measured := uint64(len(trace.Ops))
	if cfg.WarmupOps > 0 && len(trace.Ops) > cfg.WarmupOps {
		wsp := sp.Child("sim.warmup")
		wsp.SetInt("ops", int64(cfg.WarmupOps))
		if err := p.WarmupContext(ctx, uint64(cfg.WarmupOps)); err != nil {
			wsp.Fail(err)
			wsp.End()
			return nil, simErr("simulate", fmt.Errorf("warmup: %w", err))
		}
		wsp.End()
		measured = uint64(len(trace.Ops) - cfg.WarmupOps)
	}
	// Attach after warm-up: interval deltas then cover exactly the measured
	// region and sum to the final statistics. Topdown first, so the first
	// heartbeat snapshot already carries the accounting flag.
	var td *topdown.Engine
	if cfg.Topdown {
		td = topdown.New(m.Pipeline.IssueWidth)
		p.AttachTopdown(td)
	}
	p.AttachObs(rec)
	rsp := sp.Child("sim.run")
	rsp.SetAttr("arch", cfg.Arch)
	rsp.SetAttr("workload", cfg.Workload)
	rsp.SetInt("ops", int64(measured))
	s, err := p.RunContext(ctx, measured)
	if err != nil {
		rsp.Fail(err)
		rsp.End()
		rec.Finish(p.ObsSnapshot()) // close the partial interval before the flush
		return nil, simErr("simulate", err)
	}
	rsp.End()
	rec.Finish(p.ObsSnapshot())
	if replay != nil {
		if rerr := replay.Err(); rerr != nil {
			return nil, simErr("golden", rerr)
		}
		if replay.Ops() == uint64(len(trace.Ops)) {
			if rerr := replay.VerifyFinal(trace.Final); rerr != nil {
				return nil, simErr("golden", rerr)
			}
		}
	}

	renames, _ := p.Renamer().Stats()
	eb := energy.Compute(energy.DefaultParams(), energy.Inputs{
		Stats:    s,
		Sched:    p.Scheduler().Energy(),
		Mem:      p.Mem(),
		Renames:  renames,
		MDPOn:    !cfg.DisableMDP,
		VoltageV: level.VoltageV,
		NominalV: 1.04,
	})

	timeSec := float64(s.Cycles) / (level.ClockGHz * 1e9)
	res = &Result{
		Arch:              cfg.Arch,
		Workload:          cfg.Workload,
		Width:             cfg.Width,
		Cycles:            s.Cycles,
		Committed:         s.Committed,
		IPC:               s.IPC(),
		TimeSeconds:       timeSec,
		Branches:          s.Branches,
		MispredictRate:    s.MispredictRate(),
		Violations:        s.Violations,
		Flushes:           s.Flushes,
		Delay:             delayMap(s),
		EnergyPJ:          eb.Total(),
		EnergyByComponent: map[string]float64{},
		EDP:               eb.Total() * timeSec,
		SchedCounters:     p.Scheduler().Counters(),
	}
	if res.EDP > 0 {
		res.Efficiency = 1 / res.EDP
	}
	if auditor != nil {
		res.AuditChecks = auditor.Checks()
	}
	res.Topdown = td.Report(s.Committed)
	if replay != nil {
		res.GoldenOps = replay.Ops()
	}
	if injector != nil {
		fs := injector.Stats()
		res.InjectedFaults = map[string]uint64{
			"jittered_ops":  fs.JitteredOps,
			"jitter_cycles": fs.JitterCycles,
			"flushes":       fs.Flushes,
			"squeezes":      fs.Squeezes,
			"mdp_waits":     fs.MDPWaits,
		}
	}
	for c := energy.Category(0); c < energy.NumCategories; c++ {
		res.EnergyByComponent[c.String()] = eb.PJ[c]
	}

	rec.FinalizeSched(res.SchedCounters)
	res.Manifest = buildManifest(cfg, res, rec, sinkInfos, s, time.Since(start).Seconds())
	if recOwned {
		recClosed = true
		if cerr := rec.Close(); cerr != nil {
			return nil, simErr("obs", cerr)
		}
	}
	mp := cfg.ManifestPath
	if mp == "" && len(sinkInfos) > 0 {
		mp = sinkInfos[0].Path + ".manifest.json"
	}
	if mp != "" {
		if werr := res.Manifest.WriteFile(mp); werr != nil {
			return nil, simErr("obs", werr)
		}
	}
	return res, nil
}

// openRecorder builds the observability recorder and its sinks from the
// configured paths, or hands back the caller-supplied recorder (owned
// reports whether Run must close it). With no observability path set it
// returns a nil recorder — the zero-cost off state.
func openRecorder(cfg Config) (rec *obs.Recorder, owned bool, infos []obs.SinkInfo, err error) {
	if cfg.Recorder != nil {
		return cfg.Recorder, false, nil, nil
	}
	if cfg.TracePath == "" && cfg.EventsPath == "" && cfg.MetricsPath == "" && cfg.ManifestPath == "" {
		return nil, true, nil, nil
	}
	var sinks []obs.Sink
	fail := func(err error) (*obs.Recorder, bool, []obs.SinkInfo, error) {
		for _, s := range sinks {
			s.Close()
		}
		return nil, true, nil, err
	}
	if cfg.TracePath != "" {
		s, err := obs.NewChromeSink(cfg.TracePath)
		if err != nil {
			return fail(err)
		}
		sinks = append(sinks, s)
		infos = append(infos, obs.SinkInfo{Kind: "chrome-trace", Path: cfg.TracePath})
	}
	if cfg.EventsPath != "" {
		s, err := obs.NewJSONLSink(cfg.EventsPath)
		if err != nil {
			return fail(err)
		}
		sinks = append(sinks, s)
		infos = append(infos, obs.SinkInfo{Kind: "events-jsonl", Path: cfg.EventsPath})
	}
	if cfg.MetricsPath != "" {
		s, err := obs.NewCSVSink(cfg.MetricsPath)
		if err != nil {
			return fail(err)
		}
		sinks = append(sinks, s)
		infos = append(infos, obs.SinkInfo{Kind: "metrics-csv", Path: cfg.MetricsPath})
	}
	// ManifestPath alone still creates a (sink-less) recorder so the metrics
	// registry and interval count reach the manifest.
	return obs.NewRecorder(cfg.ObsInterval, sinks...), true, infos, nil
}

// buildManifest assembles the machine-readable run record from the final
// result. rec may be nil (no metrics dump then).
func buildManifest(cfg Config, res *Result, rec *obs.Recorder, sinks []obs.SinkInfo, s *stats.Sim, wallSeconds float64) *obs.Manifest {
	m := obs.NewManifest()
	m.Sim = obs.SimInfo{
		Arch:      cfg.Arch,
		Workload:  cfg.Workload,
		Width:     cfg.Width,
		Ops:       cfg.MaxOps,
		WarmupOps: cfg.WarmupOps,
		NumPIQs:   cfg.NumPIQs,
		PIQDepth:  cfg.PIQDepth,
		MDP:       !cfg.DisableMDP,
		DVFS:      cfg.DVFS,
		FaultSpec: cfg.FaultSpec,
	}
	m.WallSeconds = wallSeconds
	m.Stats = obs.RunStats{
		Cycles:         s.Cycles,
		Committed:      s.Committed,
		Fetched:        s.Fetched,
		Issued:         s.Issued,
		IPC:            s.IPC(),
		TimeSeconds:    res.TimeSeconds,
		Branches:       s.Branches,
		Mispredicts:    s.Mispredicts,
		MispredictRate: s.MispredictRate(),
		Violations:     s.Violations,
		Flushes:        s.Flushes,
		Squashed:       s.Squashed,
		DispatchStalls: s.DispatchStall,
		AvgOccupancy:   s.AvgOccupancy(),
	}
	m.Delay = make(map[string]obs.DelayInfo, len(res.Delay))
	for name, d := range res.Delay {
		m.Delay[name] = obs.DelayInfo{
			Count:            d.Count,
			DecodeToDispatch: d.DecodeToDispatch,
			DispatchToReady:  d.DispatchToReady,
			ReadyToIssue:     d.ReadyToIssue,
			Total:            d.Total(),
		}
	}
	m.Energy = obs.EnergyInfo{
		TotalPJ:     res.EnergyPJ,
		EDP:         res.EDP,
		Efficiency:  res.Efficiency,
		ByComponent: res.EnergyByComponent,
	}
	m.SchedCounters = res.SchedCounters
	m.InjectedFaults = res.InjectedFaults
	m.AuditChecks = res.AuditChecks
	m.GoldenOps = res.GoldenOps
	m.Metrics = rec.Registry().Dump()
	m.Sinks = sinks
	m.Intervals = rec.Intervals()
	m.Topdown = res.Topdown
	return m
}

func dvfsLevel(name string) (config.DVFSLevel, error) {
	for _, l := range config.DVFSLevels() {
		if l.Name == name {
			return l, nil
		}
	}
	return config.DVFSLevel{}, fmt.Errorf("unknown DVFS level %q (valid: L1..L4)", name)
}

func delayMap(s *stats.Sim) map[string]DelayBreakdown {
	m := make(map[string]DelayBreakdown, 4)
	for cls := sched.Class(0); cls < 3; cls++ {
		d := s.Delay[cls]
		a, b, c := d.Avg()
		m[cls.String()] = DelayBreakdown{
			Count: d.Count, DecodeToDispatch: a, DispatchToReady: b, ReadyToIssue: c,
		}
	}
	a, b, c := s.All.Avg()
	m["All"] = DelayBreakdown{Count: s.All.Count, DecodeToDispatch: a, DispatchToReady: b, ReadyToIssue: c}
	return m
}

// GeoMean returns the geometric mean of xs (0 if empty or non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
