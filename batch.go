package ballerino

import (
	"context"
	"errors"

	"repro/internal/campaign"
)

// RunResult is one slot of a batch: the config as submitted, and either
// its Result or the *SimError that felled it. One failed run never aborts
// the campaign — its error sits in-slot and the other runs complete.
type RunResult struct {
	Config Config
	Result *Result // nil when Err != nil
	Err    error   // always a *SimError when non-nil
}

// BatchOptions tunes RunAll. The zero value — GOMAXPROCS workers, a
// per-batch trace cache with the default byte budget — is the right
// choice for almost every campaign.
type BatchOptions struct {
	// Parallelism bounds the worker pool (0 or negative = GOMAXPROCS).
	// Parallelism 1 executes the batch strictly sequentially; results are
	// identical at every setting, only wall time changes.
	Parallelism int
	// TraceCacheBytes is the byte budget of the batch's trace cache
	// (0 = DefaultTraceCacheBytes). Ignored when Cache is set.
	TraceCacheBytes int64
	// DisableTraceCache turns trace sharing off: every run generates its
	// own trace, as RunContext does standalone.
	DisableTraceCache bool
	// Cache, when non-nil, shares a caller-owned TraceCache across
	// batches instead of building a fresh one per call.
	Cache *TraceCache
}

// Batch is the outcome of one RunAll campaign.
type Batch struct {
	// Results has one entry per submitted Config, in submission order.
	Results []RunResult
	// Cache reports the trace cache's hit/miss/singleflight counters for
	// the campaign (zero value when the cache was disabled).
	Cache CacheStats
}

// FirstErr returns the first failed slot's error (nil when every run
// succeeded).
func (b *Batch) FirstErr() error {
	for _, r := range b.Results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// RunAll executes every configuration as one campaign on a bounded worker
// pool: the parallel substrate under cmd/sweep, cmd/experiments,
// internal/bench and the telemetry service. Guarantees:
//
//   - Results[i] always belongs to cfgs[i], whatever order runs finish in.
//   - Runs are deterministic and independent: a campaign at parallelism N
//     produces byte-identical results (modulo wall-time fields) to the
//     same campaign at parallelism 1.
//   - One failed run records its *SimError in-slot; the rest continue.
//   - Configurations over the same kernel, footprint and dynamic budget
//     share one μop trace: generation — the dominant start-up cost —
//     happens once per distinct kernel, deduplicated even when the runs
//     arrive concurrently (singleflight).
//   - Cancelling ctx stops dispatch; in-flight runs wind down through the
//     pipeline's cooperative cancellation and unstarted slots report a
//     *SimError with Stage "canceled".
func RunAll(ctx context.Context, cfgs []Config, opts BatchOptions) *Batch {
	cache := opts.Cache
	if cache == nil && !opts.DisableTraceCache {
		cache = NewTraceCache(opts.TraceCacheBytes)
	}
	jobs := make([]campaign.Job[*Result], len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		jobs[i] = func(ctx context.Context) (*Result, error) {
			run := cfg
			if cache != nil && run.Trace == nil {
				t, err := cache.Prepare(ctx, run)
				if err != nil {
					return nil, err
				}
				run.Trace = t
			}
			return RunContext(ctx, run)
		}
	}
	outs := campaign.Run(ctx, opts.Parallelism, jobs)
	b := &Batch{Results: make([]RunResult, len(cfgs))}
	for i, o := range outs {
		rr := RunResult{Config: cfgs[i], Result: o.Value, Err: o.Err}
		// Slots the engine never dispatched carry a bare context error;
		// dress it as the same *SimError a cancelled run returns so
		// callers see one error shape.
		var se *SimError
		if rr.Err != nil && !errors.As(rr.Err, &se) {
			stage, ok := ctxStage(rr.Err)
			if !ok {
				stage = "canceled"
			}
			rr.Err = &SimError{Stage: stage, Arch: cfgs[i].Arch,
				Workload: cfgs[i].Workload, Err: rr.Err}
		}
		b.Results[i] = rr
	}
	if cache != nil {
		b.Cache = cache.Stats()
	}
	return b
}
