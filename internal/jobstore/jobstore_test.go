package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func appendT(t *testing.T, s *Store, rec Record) {
	t.Helper()
	if err := s.Append(rec); err != nil {
		t.Fatalf("Append(%+v): %v", rec, err)
	}
}

// lifecycle writes one job's full history: submitted, a failed attempt,
// then success.
func lifecycle(t *testing.T, s *Store, id int, key string) {
	t.Helper()
	appendT(t, s, Record{Op: OpSubmitted, Job: id, Key: key, Spec: json.RawMessage(`{"arch":"Ballerino"}`)})
	appendT(t, s, Record{Op: OpStarted, Job: id, Attempt: 1})
	appendT(t, s, Record{Op: OpAttemptFailed, Job: id, Attempt: 1, Stage: "timeout", Error: "deadline"})
	appendT(t, s, Record{Op: OpStarted, Job: id, Attempt: 2})
	appendT(t, s, Record{Op: OpCompleted, Job: id, Key: key, Result: json.RawMessage(`{"ipc":1.5}`)})
}

// TestReplayRebuildsState: a reopened store replays the WAL into the
// same job state the writer built in memory, including the
// content-addressed result index and the resume set.
func TestReplayRebuildsState(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	lifecycle(t, s, 1, "k1")
	appendT(t, s, Record{Op: OpSubmitted, Job: 2, Key: "k2"})
	appendT(t, s, Record{Op: OpStarted, Job: 2, Attempt: 1}) // running at "crash"
	appendT(t, s, Record{Op: OpSubmitted, Job: 3, Key: "k3"})
	appendT(t, s, Record{Op: OpCanceled, Job: 3})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	defer r.Close()
	rec := r.Recovery()
	if rec.Records != 9 || rec.TornTail {
		t.Errorf("recovery = %+v, want 9 records, no torn tail", rec)
	}
	if rec.Resumable != 1 || rec.Completed != 1 {
		t.Errorf("recovery = %+v, want 1 resumable, 1 completed", rec)
	}
	jobs := r.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	j1, j2, j3 := jobs[0], jobs[1], jobs[2]
	if j1.Terminal != OpCompleted || j1.Attempts != 2 || j1.Failures != 1 || j1.Stage != "timeout" {
		t.Errorf("job 1 = %+v", j1)
	}
	if string(j1.Spec) != `{"arch":"Ballerino"}` {
		t.Errorf("job 1 spec = %s", j1.Spec)
	}
	if !j2.Resumable() || j2.Attempts != 1 {
		t.Errorf("job 2 = %+v, want resumable after 1 attempt", j2)
	}
	if j3.Terminal != OpCanceled {
		t.Errorf("job 3 = %+v, want canceled", j3)
	}
	if res, ok := r.Result("k1"); !ok || string(res) != `{"ipc":1.5}` {
		t.Errorf("Result(k1) = %s, %v", res, ok)
	}
	if _, ok := r.Result("k2"); ok {
		t.Error("Result(k2) exists for an uncompleted job")
	}
	if got := r.MaxJobID(); got != 3 {
		t.Errorf("MaxJobID = %d, want 3", got)
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial final
// frame; reopen detects it, truncates it, and the next append lands on a
// clean boundary.
func TestTornTailTruncated(t *testing.T) {
	for _, tail := range []string{
		"0abc",                          // partial checksum
		"00000000 {\"schema\":\"ball",   // partial payload
		"deadbeef {\"schema\":\"x\"}\n", // checksum mismatch, terminated
	} {
		t.Run(strings.ReplaceAll(tail, " ", "_"), func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir)
			lifecycle(t, s, 1, "k1")
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			r := openT(t, dir)
			if rec := r.Recovery(); !rec.TornTail || rec.Records != 5 {
				t.Errorf("recovery = %+v, want torn tail after 5 records", rec)
			}
			// The store stays appendable after truncation...
			appendT(t, r, Record{Op: OpSubmitted, Job: 2, Key: "k2"})
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			// ...and a third generation replays everything cleanly.
			r2 := openT(t, dir)
			defer r2.Close()
			if rec := r2.Recovery(); rec.TornTail || rec.Records != 6 {
				t.Errorf("post-truncate recovery = %+v, want 6 records, no torn tail", rec)
			}
		})
	}
}

// TestCorruptionMidLogRejected: a bad frame with valid records after it
// is corruption, not a torn tail.
func TestCorruptionMidLogRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	lifecycle(t, s, 1, "k1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	lines[1] = "00000000 {\"garbage\": true}\n" // bad checksum mid-log
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

// TestUnterminatedValidTailReterminated: a crash after the record bytes
// but before the newline leaves a whole, unterminated frame; reopen must
// keep it and re-terminate so the next append does not glue onto it.
func TestUnterminatedValidTailReterminated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	lifecycle(t, s, 1, "k1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-1], 0o644); err != nil { // strip final \n
		t.Fatal(err)
	}
	r := openT(t, dir)
	if rec := r.Recovery(); rec.Records != 5 || rec.TornTail {
		t.Errorf("recovery = %+v, want all 5 records, no torn tail", rec)
	}
	appendT(t, r, Record{Op: OpSubmitted, Job: 2, Key: "k2"})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openT(t, dir)
	defer r2.Close()
	if rec := r2.Recovery(); rec.Records != 6 || rec.TornTail {
		t.Errorf("post-retermination recovery = %+v, want 6 records", rec)
	}
}

// TestCheckpointCompaction: Checkpoint snapshots the state, truncates
// the WAL, and replay over checkpoint+WAL equals replay over the full
// history — including records appended after the checkpoint.
func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	lifecycle(t, s, 1, "k1")
	appendT(t, s, Record{Op: OpSubmitted, Job: 2, Key: "k2"})
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Errorf("WAL after checkpoint: %v, size %d, want empty", err, fi.Size())
	}
	appendT(t, s, Record{Op: OpStarted, Job: 2, Attempt: 1})
	appendT(t, s, Record{Op: OpCompleted, Job: 2, Key: "k2", Result: json.RawMessage(`{"ipc":2}`)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	defer r.Close()
	rec := r.Recovery()
	if rec.CheckpointSeq != 6 || rec.Records != 2 {
		t.Errorf("recovery = %+v, want checkpoint seq 6 + 2 WAL records", rec)
	}
	jobs := r.Jobs()
	if len(jobs) != 2 || jobs[0].Terminal != OpCompleted || jobs[1].Terminal != OpCompleted {
		t.Errorf("jobs after checkpointed replay = %+v", jobs)
	}
	if res, ok := r.Result("k2"); !ok || string(res) != `{"ipc":2}` {
		t.Errorf("Result(k2) = %s, %v", res, ok)
	}
	if got := r.Results(); got != 2 {
		t.Errorf("Results() = %d, want 2", got)
	}
}

// TestSeqMonotonicAcrossCheckpoint: records appended after reopening a
// checkpointed store keep strictly increasing sequence numbers, so a
// stale WAL record can never shadow checkpoint state.
func TestSeqMonotonicAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	lifecycle(t, s, 1, "k1")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir)
	appendT(t, r, Record{Op: OpSubmitted, Job: 2, Key: "k2"})
	r.mu.Lock()
	seq := r.seq
	r.mu.Unlock()
	if seq != 6 {
		t.Errorf("seq after checkpointed reopen + append = %d, want 6", seq)
	}
	r.Close()
}

// TestInjectedAppendFailure: the chaos hook fails the armed append and
// disarms; the store keeps working after, and the failed record was
// never applied.
func TestInjectedAppendFailure(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.FailAppendsAfter(2)
	appendT(t, s, Record{Op: OpSubmitted, Job: 1, Key: "k1"})
	if err := s.Append(Record{Op: OpStarted, Job: 1, Attempt: 1}); err == nil {
		t.Fatal("armed append did not fail")
	}
	if jobs := s.Jobs(); len(jobs) != 1 || jobs[0].Attempts != 0 {
		t.Errorf("failed append leaked into state: %+v", jobs)
	}
	appendT(t, s, Record{Op: OpStarted, Job: 1, Attempt: 1}) // disarmed
	if jobs := s.Jobs(); jobs[0].Attempts != 1 {
		t.Errorf("append after disarm not applied: %+v", jobs)
	}
}

// TestClosedStoreRefusesAppends: appends after Close fail loudly.
func TestClosedStoreRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Op: OpSubmitted, Job: 1}); err == nil {
		t.Fatal("append on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestForeignSchemaRejected: a record from a future schema version is
// corruption (mid-log) or a torn tail (at the end) — never silently
// misread.
func TestForeignSchemaRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	lifecycle(t, s, 1, "k1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A well-framed record of a different schema at the tail.
	payload := `{"schema":"ballerino.job/v99","seq":99,"op":"submitted","job":9}`
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := func() error {
		_, err := f.WriteString(frameFor(payload))
		return err
	}(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := openT(t, dir)
	defer r.Close()
	if rec := r.Recovery(); !rec.TornTail || rec.Records != 5 {
		t.Errorf("recovery over foreign-schema tail = %+v, want truncated", rec)
	}
	if len(r.Jobs()) != 1 {
		t.Errorf("foreign record leaked into state: %+v", r.Jobs())
	}
}

// frameFor mirrors Append's framing for hand-built test fixtures.
func frameFor(payload string) string {
	return fmt.Sprintf("%08x %s\n", crc32.Checksum([]byte(payload), crcTable), payload)
}

// TestHistorySurvivesReplayAndCheckpoint: the per-job transition history
// — the raw material for post-crash span synthesis — is rebuilt by WAL
// replay with the original timestamps, and survives checkpoint
// compaction (the snapshot carries it).
func TestHistorySurvivesReplayAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	lifecycle(t, s, 1, "k1")
	live := s.Jobs()[0]
	if len(live.History) != 5 {
		t.Fatalf("live history length = %d, want 5", len(live.History))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	j := r.Jobs()[0]
	wantOps := []Op{OpSubmitted, OpStarted, OpAttemptFailed, OpStarted, OpCompleted}
	if len(j.History) != len(wantOps) {
		t.Fatalf("replayed history length = %d, want %d", len(j.History), len(wantOps))
	}
	for i, ev := range j.History {
		if ev.Op != wantOps[i] {
			t.Errorf("history[%d].Op = %s, want %s", i, ev.Op, wantOps[i])
		}
		if ev.Time.IsZero() {
			t.Errorf("history[%d] has no timestamp", i)
		}
		if i > 0 && ev.Time.Before(j.History[i-1].Time) {
			t.Errorf("history timestamps not monotone at %d", i)
		}
	}
	if j.History[2].Stage != "timeout" || j.History[2].Error != "deadline" {
		t.Errorf("attempt-failed event = %+v", j.History[2])
	}
	if j.History[3].Attempt != 2 {
		t.Errorf("second started attempt = %d, want 2", j.History[3].Attempt)
	}

	// Compact, reopen: history must come back from the checkpoint alone.
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	c := openT(t, dir)
	defer c.Close()
	if got := len(c.Jobs()[0].History); got != 5 {
		t.Errorf("post-checkpoint history length = %d, want 5", got)
	}
}

// TestAppendObserver: the observer sees one AppendStats per successful
// append, with the op/job identity and a sane latency breakdown, and is
// invoked outside the store lock (calling back into the store must not
// deadlock).
func TestAppendObserver(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()

	var stats []AppendStats
	s.SetObserver(func(st AppendStats) {
		stats = append(stats, st)
		_ = s.MaxJobID() // reentrancy: must not deadlock
	})
	lifecycle(t, s, 1, "k1")
	if len(stats) != 5 {
		t.Fatalf("observer saw %d appends, want 5", len(stats))
	}
	if stats[0].Op != OpSubmitted || stats[0].Job != 1 {
		t.Errorf("first stat = %+v", stats[0])
	}
	for i, st := range stats {
		if st.Total <= 0 || st.Fsync < 0 || st.Fsync > st.Total {
			t.Errorf("stat %d has implausible latencies: %+v", i, st)
		}
	}

	// Failed appends are not observed; uninstalling stops delivery.
	s.FailAppendsAfter(1)
	if err := s.Append(Record{Op: OpSubmitted, Job: 9}); err == nil {
		t.Fatal("chaos append unexpectedly succeeded")
	}
	if len(stats) != 5 {
		t.Errorf("failed append reached the observer")
	}
	s.SetObserver(nil)
	appendT(t, s, Record{Op: OpSubmitted, Job: 2, Key: "k2"})
	if len(stats) != 5 {
		t.Errorf("uninstalled observer still invoked")
	}
}
