// Package jobstore is the durable, crash-safe job fabric behind the
// telemetry service: an append-only, fsync'd, versioned write-ahead log
// of job lifecycle records plus checkpoint compaction and a recovery
// path that rebuilds job state after any crash — including `kill -9`
// mid-append.
//
// Layout of a store directory:
//
//	wal.log          one "ballerino.job/v1" record per line, crc32c-framed
//	checkpoint.json  compacted snapshot of everything the WAL said so far
//
// Every Append is flushed with fsync before it returns, so an
// acknowledged record survives power loss. A record torn by a crash
// mid-write is detected by its frame checksum and truncated away on the
// next Open — torn tails are expected, corruption anywhere else is an
// error. Completed jobs keep their result (a canonical run manifest)
// content-addressed by the job's config+trace key, so a restarted server
// serves already-computed grid points without recomputation.
package jobstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Schema identifies the WAL record layout version. Replay refuses
// records from a different (future) schema instead of misreading them.
const Schema = "ballerino.job/v1"

// CheckpointSchema identifies the checkpoint snapshot layout version.
const CheckpointSchema = "ballerino.jobstore.checkpoint/v1"

// Op is a job lifecycle transition recorded in the WAL.
type Op string

// The five record kinds. A job's terminal state is OpCompleted or
// OpCanceled; everything else is replayed into a resumable state.
const (
	OpSubmitted     Op = "submitted"
	OpStarted       Op = "started"
	OpAttemptFailed Op = "attempt-failed"
	OpCompleted     Op = "completed"
	OpCanceled      Op = "canceled"
)

// Record is one WAL entry. Spec and Result are opaque to the store (the
// service layer owns their schema): Spec is the client's job submission,
// Result the canonical run manifest of a completed job.
type Record struct {
	Schema  string          `json:"schema"`
	Seq     uint64          `json:"seq"`
	Time    string          `json:"time,omitempty"`
	Op      Op              `json:"op"`
	Job     int             `json:"job"`
	Key     string          `json:"key,omitempty"`     // submitted/completed: config+trace content key
	Spec    json.RawMessage `json:"spec,omitempty"`    // submitted
	Attempt int             `json:"attempt,omitempty"` // started / attempt-failed
	Stage   string          `json:"stage,omitempty"`   // attempt-failed: *SimError stage ("timeout", "simulate", ...)
	Error   string          `json:"error,omitempty"`   // attempt-failed / canceled
	Result  json.RawMessage `json:"result,omitempty"`  // completed
}

// HistoryEvent is one lifecycle transition retained per job: the op, the
// wall-clock time the WAL recorded for it, and the attempt/stage/error
// details where the op carries them. History is what lets a restarted
// server reconstruct a job's pre-crash timeline — the lifecycle tracer
// synthesizes spans from these events at their original timestamps.
type HistoryEvent struct {
	Op      Op        `json:"op"`
	Time    time.Time `json:"time"`
	Attempt int       `json:"attempt,omitempty"`
	Stage   string    `json:"stage,omitempty"`
	Error   string    `json:"error,omitempty"`
}

// JobRecord is the replayed state of one job: what the WAL (and the
// checkpoint beneath it) says happened to it so far.
type JobRecord struct {
	ID       int             `json:"id"`
	Key      string          `json:"key"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Attempts int             `json:"attempts,omitempty"` // started records seen
	Failures int             `json:"failures,omitempty"` // attempt-failed records seen
	Stage    string          `json:"stage,omitempty"`    // stage of the last failed attempt
	Error    string          `json:"error,omitempty"`    // error of the last failed attempt
	Terminal Op              `json:"terminal,omitempty"` // "", OpCompleted or OpCanceled
	Result   json.RawMessage `json:"result,omitempty"`   // canonical manifest when Terminal == OpCompleted
	History  []HistoryEvent  `json:"history,omitempty"`  // every transition, in WAL order
}

// Resumable reports whether the job must be re-enqueued by recovery: it
// was queued, running, or between retry attempts when the process died.
func (j *JobRecord) Resumable() bool { return j.Terminal == "" }

// Recovery summarises one Open's replay — the numbers behind the
// ballserved recovery gauges.
type Recovery struct {
	// Records is the number of WAL records replayed (after the checkpoint).
	Records int
	// CheckpointSeq is the sequence number the checkpoint covered (0 when
	// there was no checkpoint).
	CheckpointSeq uint64
	// TornTail reports that the WAL ended in a torn (partially written)
	// record, which was truncated away — the expected signature of a crash
	// mid-append.
	TornTail bool
	// Resumable is the number of non-terminal jobs recovery must re-enqueue.
	Resumable int
	// Completed is the number of jobs replayed into the completed state.
	Completed int
	// Duration is the wall time the replay took.
	Duration time.Duration
}

// Store is a durable job log. All methods are safe for concurrent use.
type Store struct {
	dir string

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	jobs     map[int]*JobRecord
	results  map[string]json.RawMessage // content key → canonical manifest
	recovery Recovery
	closed   bool

	// failAppends, when > 0, fails every Append after that many more
	// succeed — the seeded-chaos hook the service-layer crash harness uses
	// to exercise degraded-store paths without a real disk failure.
	failAppends int64

	// observer, when set, receives per-append latency stats (see
	// SetObserver). Called outside mu.
	observer func(AppendStats)
}

// AppendStats is one Append's latency breakdown, delivered to the
// observer installed with SetObserver: how long the whole durable write
// took and how much of that was the fsync — the dominant term on real
// disks and the source of the ballserved_wal_fsync_seconds histogram.
type AppendStats struct {
	Op    Op
	Job   int
	Total time.Duration
	Fsync time.Duration
}

// SetObserver installs fn to receive AppendStats after every successful
// Append. fn is invoked outside the store's lock (it may call back into
// the store) but serialised per-store with other appends' observations
// in WAL order is NOT guaranteed — treat it as a metrics sink, not a
// replication stream. nil uninstalls.
func (s *Store) SetObserver(fn func(AppendStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	walName        = "wal.log"
	checkpointName = "checkpoint.json"
)

// ErrCorrupt wraps replay failures that are not a torn tail: a checksum
// mismatch in the middle of the log, a record from an unknown schema, or
// an unparsable checkpoint.
var ErrCorrupt = errors.New("jobstore: corrupt store")

// Open creates dir if needed, loads the checkpoint, replays the WAL on
// top of it, truncates a torn tail, and returns the store ready for
// appends. The replay summary is available via Recovery.
func Open(dir string) (*Store, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &Store{
		dir:     dir,
		jobs:    make(map[int]*JobRecord),
		results: make(map[string]json.RawMessage),
	}
	if err := s.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s.f = f
	for _, j := range s.jobs {
		if j.Resumable() {
			s.recovery.Resumable++
		} else if j.Terminal == OpCompleted {
			s.recovery.Completed++
		}
	}
	s.recovery.Duration = time.Since(start)
	return s, nil
}

func (s *Store) walPath() string        { return filepath.Join(s.dir, walName) }
func (s *Store) checkpointPath() string { return filepath.Join(s.dir, checkpointName) }

// checkpoint is the on-disk snapshot format.
type checkpoint struct {
	Schema string       `json:"schema"`
	Seq    uint64       `json:"seq"`
	Jobs   []*JobRecord `json:"jobs"`
}

func (s *Store) loadCheckpoint() error {
	b, err := os.ReadFile(s.checkpointPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	var cp checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return fmt.Errorf("%w: checkpoint: %v", ErrCorrupt, err)
	}
	if cp.Schema != CheckpointSchema {
		return fmt.Errorf("%w: checkpoint schema %q, want %q", ErrCorrupt, cp.Schema, CheckpointSchema)
	}
	s.seq = cp.Seq
	s.recovery.CheckpointSeq = cp.Seq
	for _, j := range cp.Jobs {
		s.jobs[j.ID] = j
		if j.Terminal == OpCompleted && j.Key != "" && j.Result != nil {
			s.results[j.Key] = j.Result
		}
	}
	return nil
}

// replayWAL reads every framed record after the checkpoint and folds it
// into the job map. A torn tail — a final line whose frame fails its
// checksum or that has no terminator — is truncated; a bad frame with
// valid records after it is corruption.
func (s *Store) replayWAL() error {
	f, err := os.Open(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()

	var (
		valid    int64 // byte offset just past the last valid record
		sc       = bufio.NewScanner(f)
		pendErr  error
		pendOff  int64
		replayed int
	)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // scanner strips the \n
		if pendErr != nil {
			// A bad frame followed by another line: not a torn tail.
			return fmt.Errorf("%w: offset %d: %v", ErrCorrupt, pendOff, pendErr)
		}
		rec, err := decodeFrame(line)
		if err != nil {
			pendErr, pendOff = err, valid
			valid += lineLen
			continue
		}
		if rec.Seq > s.seq {
			s.apply(&rec)
			s.seq = rec.Seq
			replayed++
		}
		valid += lineLen
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	s.recovery.Records = replayed
	if pendErr != nil {
		// Torn tail: drop it so the next append starts a clean frame.
		s.recovery.TornTail = true
		if err := os.Truncate(s.walPath(), pendOff); err != nil {
			return fmt.Errorf("jobstore: truncating torn tail: %w", err)
		}
		return nil
	}
	// A file ending without its newline terminator: the scanner hands the
	// final bytes over as a line, so they were either flagged above (torn
	// tail) or decoded whole — but an unterminated valid record must be
	// re-terminated before the next append glues a new frame onto it.
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, fi.Size()-1); err == nil && buf[0] != '\n' {
			t, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("jobstore: %w", err)
			}
			if _, err := t.WriteString("\n"); err != nil {
				t.Close()
				return fmt.Errorf("jobstore: %w", err)
			}
			if err := t.Close(); err != nil {
				return fmt.Errorf("jobstore: %w", err)
			}
		}
	}
	return nil
}

// decodeFrame parses one "crc32c-hex space json" line.
func decodeFrame(line []byte) (Record, error) {
	var rec Record
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return rec, fmt.Errorf("malformed frame")
	}
	want, err := strconv.ParseUint(string(line[:sp]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("malformed frame checksum")
	}
	payload := line[sp+1:]
	if got := crc32.Checksum(payload, crcTable); got != uint32(want) {
		return rec, fmt.Errorf("checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("record JSON: %v", err)
	}
	if rec.Schema != Schema {
		return rec, fmt.Errorf("record schema %q, want %q", rec.Schema, Schema)
	}
	return rec, nil
}

// apply folds one record into the in-memory job state.
func (s *Store) apply(rec *Record) {
	j := s.jobs[rec.Job]
	if j == nil {
		j = &JobRecord{ID: rec.Job}
		s.jobs[rec.Job] = j
	}
	// Retain the transition itself (with the WAL's wall-clock time) so a
	// restarted server can rebuild the job's pre-crash timeline.
	ts, _ := time.Parse(time.RFC3339Nano, rec.Time)
	j.History = append(j.History, HistoryEvent{
		Op: rec.Op, Time: ts, Attempt: rec.Attempt, Stage: rec.Stage, Error: rec.Error,
	})
	switch rec.Op {
	case OpSubmitted:
		j.Key = rec.Key
		j.Spec = rec.Spec
	case OpStarted:
		if rec.Attempt > j.Attempts {
			j.Attempts = rec.Attempt
		}
	case OpAttemptFailed:
		j.Failures++
		j.Stage = rec.Stage
		j.Error = rec.Error
	case OpCompleted:
		j.Terminal = OpCompleted
		j.Result = rec.Result
		if rec.Key != "" {
			j.Key = rec.Key
		}
		if j.Key != "" && rec.Result != nil {
			s.results[j.Key] = rec.Result
		}
	case OpCanceled:
		j.Terminal = OpCanceled
		j.Error = rec.Error
	}
}

// Append assigns the record a sequence number and timestamp, writes it,
// fsyncs, and folds it into the in-memory state. The record is durable
// when Append returns nil.
func (s *Store) Append(rec Record) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("jobstore: store closed")
	}
	if s.failAppends > 0 {
		s.failAppends--
		if s.failAppends == 0 {
			s.mu.Unlock()
			return errors.New("jobstore: injected append failure (chaos)")
		}
	}
	s.seq++
	rec.Schema = Schema
	rec.Seq = s.seq
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	payload, err := json.Marshal(rec)
	if err != nil {
		s.seq--
		s.mu.Unlock()
		return fmt.Errorf("jobstore: %w", err)
	}
	frame := fmt.Sprintf("%08x %s\n", crc32.Checksum(payload, crcTable), payload)
	if _, err := s.f.WriteString(frame); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("jobstore: %w", err)
	}
	syncStart := time.Now()
	if err := s.f.Sync(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("jobstore: %w", err)
	}
	fsync := time.Since(syncStart)
	s.apply(&rec)
	observer := s.observer
	s.mu.Unlock()
	if observer != nil {
		observer(AppendStats{Op: rec.Op, Job: rec.Job, Total: time.Since(start), Fsync: fsync})
	}
	return nil
}

// FailAppendsAfter arms the chaos hook: the next n-1 Appends succeed,
// the n-th fails with an injected error (and the hook disarms). n <= 0
// disarms. Test harnesses use this to drive the degraded-store path.
func (s *Store) FailAppendsAfter(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAppends = n
}

// Checkpoint compacts the store: the full job state is written to a
// temporary snapshot, fsynced, atomically renamed over checkpoint.json,
// and the WAL is truncated. A crash anywhere in between leaves either
// the old checkpoint + full WAL or the new checkpoint + (possibly
// not-yet-truncated) WAL — both replay to the same state, because replay
// skips records at or below the checkpoint's sequence number.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("jobstore: store closed")
	}
	cp := checkpoint{Schema: CheckpointSchema, Seq: s.seq, Jobs: s.jobsLocked()}
	b, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	tmp := s.checkpointPath() + ".tmp"
	if err := writeFileSync(tmp, b); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.checkpointPath()); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return s.f.Sync()
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// Recovery returns the summary of the replay Open performed.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// jobsLocked snapshots the job records in ID order. Caller holds mu.
func (s *Store) jobsLocked() []*JobRecord {
	out := make([]*JobRecord, 0, len(s.jobs))
	for _, j := range s.jobs {
		cp := *j
		out = append(out, &cp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Jobs snapshots every job the store knows about, in ID order.
func (s *Store) Jobs() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobsLocked()
}

// MaxJobID returns the highest job ID the store has seen (0 when empty)
// — the restart continuation point for the service's ID counter.
func (s *Store) MaxJobID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0
	for id := range s.jobs {
		if id > max {
			max = id
		}
	}
	return max
}

// Result returns the stored canonical manifest for a config+trace
// content key, if any job with that key ever completed. The returned
// bytes are shared — treat them as immutable.
func (s *Store) Result(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[key]
	return r, ok
}

// Results returns the number of distinct content-addressed results held.
func (s *Store) Results() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// Close fsyncs and closes the WAL file handle. The store refuses further
// appends; Open the directory again to resume.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	return s.f.Close()
}
