// Package stats collects the simulation counters and per-class scheduling
// delay breakdowns that the paper's figures are built from.
package stats

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sched"
)

// DelayBreakdown accumulates the decode-to-issue pipeline delays of one
// instruction class (Figure 3c / Figure 12): decode→dispatch,
// dispatch→ready, and ready→issue cycles.
type DelayBreakdown struct {
	Count            uint64
	DecodeToDispatch uint64
	DispatchToReady  uint64
	ReadyToIssue     uint64
}

// Avg returns the per-μop averages (0 for an empty class).
func (d DelayBreakdown) Avg() (decodeToDispatch, dispatchToReady, readyToIssue float64) {
	if d.Count == 0 {
		return 0, 0, 0
	}
	n := float64(d.Count)
	return float64(d.DecodeToDispatch) / n, float64(d.DispatchToReady) / n, float64(d.ReadyToIssue) / n
}

// Total returns the average decode-to-issue delay.
func (d DelayBreakdown) Total() float64 {
	a, b, c := d.Avg()
	return a + b + c
}

// Sim aggregates the counters of one simulation run.
type Sim struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	Branches      uint64
	Mispredicts   uint64
	Violations    uint64 // memory order violations detected
	Flushes       uint64 // pipeline flushes (violations; mispredicts stall fetch instead)
	Squashed      uint64 // μops removed by pipeline flushes (later refetched)
	DispatchStall uint64 // cycles rename/dispatch could not move the head μop

	// Typed dispatch-stall causes. DispatchStall stays their sum — the
	// legacy aggregate every existing consumer (goldens, manifests,
	// telemetry) keeps reading — while the split feeds the stall
	// breakdown in String() and the topdown CPI stacks.
	StallROBFull  uint64 // reorder buffer full
	StallLSQFull  uint64 // load or store queue full
	StallRename   uint64 // no free physical register
	StallIQFull   uint64 // scheduler (issue queue) refused the μop
	StallInjected uint64 // fault injector vetoed dispatch

	// Delay breakdowns indexed by sched.Class, plus the all-class sum.
	Delay [3]DelayBreakdown
	All   DelayBreakdown

	// OpCommitted counts committed μops by opcode class (drives the
	// functional-unit energy model).
	OpCommitted [isa.NumOps]uint64
	// Issued counts issue events including replayed work (drives PRF and
	// FU energy).
	Issued uint64
	// OccupancySum accumulates the scheduler occupancy sampled once per
	// cycle; OccupancySum/Cycles is the average window fill.
	OccupancySum uint64
}

// AvgOccupancy returns the mean scheduler occupancy per cycle.
func (s *Sim) AvgOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.OccupancySum) / float64(s.Cycles)
}

// Record adds a committed μop's timestamps to the breakdowns.
func (s *Sim) Record(u *sched.UOp) {
	s.OpCommitted[u.D.Op]++
	d2d := u.DispatchCycle - u.DecodeCycle
	var d2r, r2i uint64
	if u.ReadyCycle > u.DispatchCycle {
		d2r = u.ReadyCycle - u.DispatchCycle
	}
	ready := u.ReadyCycle
	if ready < u.DispatchCycle {
		ready = u.DispatchCycle
	}
	if u.IssueCycle > ready {
		r2i = u.IssueCycle - ready
	}
	for _, b := range []*DelayBreakdown{&s.Delay[u.Cls], &s.All} {
		b.Count++
		b.DecodeToDispatch += d2d
		b.DispatchToReady += d2r
		b.ReadyToIssue += r2i
	}
}

// IPC returns committed μops per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch.
func (s *Sim) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// String summarises the run. The dispatch-stall breakdown follows the
// same convention as the aggregate counters: raw cycle counts, already
// clamped at source (a cause is only counted on a cycle the head μop
// could not move), so the bracketed causes sum to dispatch-stalls.
func (s *Sim) String() string {
	return fmt.Sprintf("cycles=%d committed=%d IPC=%.3f mispredict=%.2f%% violations=%d flushes=%d squashed=%d dispatch-stalls=%d stall[rob=%d lsq=%d rename=%d iq=%d inject=%d]",
		s.Cycles, s.Committed, s.IPC(), 100*s.MispredictRate(), s.Violations,
		s.Flushes, s.Squashed, s.DispatchStall,
		s.StallROBFull, s.StallLSQFull, s.StallRename, s.StallIQFull, s.StallInjected)
}
