package stats

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sched"
)

func committedUOp(cls sched.Class, decode, dispatch, ready, issue uint64) *sched.UOp {
	return &sched.UOp{
		D:             &isa.DynInst{Op: isa.OpIntALU},
		Cls:           cls,
		DecodeCycle:   decode,
		DispatchCycle: dispatch,
		ReadyCycle:    ready,
		IssueCycle:    issue,
	}
}

func TestRecordAccumulatesByClass(t *testing.T) {
	var s Sim
	s.Record(committedUOp(sched.ClassLd, 0, 10, 15, 20))
	s.Record(committedUOp(sched.ClassLd, 0, 10, 15, 20))
	s.Record(committedUOp(sched.ClassRst, 5, 6, 6, 7))

	d := s.Delay[sched.ClassLd]
	if d.Count != 2 {
		t.Fatalf("Ld count = %d", d.Count)
	}
	d2d, d2r, r2i := d.Avg()
	if d2d != 10 || d2r != 5 || r2i != 5 {
		t.Errorf("Ld averages = %v,%v,%v", d2d, d2r, r2i)
	}
	if s.All.Count != 3 {
		t.Errorf("All count = %d", s.All.Count)
	}
	if got := d.Total(); got != 20 {
		t.Errorf("Ld total = %v", got)
	}
}

func TestRecordClampsInvertedTimestamps(t *testing.T) {
	var s Sim
	// ReadyCycle before DispatchCycle (register was ready early): the
	// dispatch→ready component must clamp to zero, not underflow.
	s.Record(committedUOp(sched.ClassRst, 0, 10, 3, 12))
	_, d2r, r2i := s.Delay[sched.ClassRst].Avg()
	if d2r != 0 {
		t.Errorf("dispatch→ready = %v, want 0", d2r)
	}
	if r2i != 2 {
		t.Errorf("ready→issue = %v, want 2 (from dispatch)", r2i)
	}
}

func TestOpCommittedCounts(t *testing.T) {
	var s Sim
	s.Record(&sched.UOp{D: &isa.DynInst{Op: isa.OpLoad}})
	s.Record(&sched.UOp{D: &isa.DynInst{Op: isa.OpLoad}})
	s.Record(&sched.UOp{D: &isa.DynInst{Op: isa.OpFpMul}})
	if s.OpCommitted[isa.OpLoad] != 2 || s.OpCommitted[isa.OpFpMul] != 1 {
		t.Errorf("OpCommitted = %v", s.OpCommitted)
	}
}

func TestIPCAndRates(t *testing.T) {
	s := Sim{Cycles: 100, Committed: 250, Branches: 50, Mispredicts: 5}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := s.MispredictRate(); got != 0.1 {
		t.Errorf("mispredict rate = %v", got)
	}
	var zero Sim
	if zero.IPC() != 0 || zero.MispredictRate() != 0 {
		t.Error("zero-value rates not 0")
	}
}

func TestStringContainsKeyFields(t *testing.T) {
	s := Sim{Cycles: 10, Committed: 20, Violations: 3,
		Flushes: 4, Squashed: 17, DispatchStall: 9}
	out := s.String()
	for _, want := range []string{
		"cycles=10", "committed=20", "violations=3",
		"flushes=4", "squashed=17", "dispatch-stalls=9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestStringContainsStallBreakdown(t *testing.T) {
	s := Sim{DispatchStall: 15, StallROBFull: 5, StallLSQFull: 4,
		StallRename: 3, StallIQFull: 2, StallInjected: 1}
	out := s.String()
	if want := "stall[rob=5 lsq=4 rename=3 iq=2 inject=1]"; !strings.Contains(out, want) {
		t.Errorf("String() = %q missing %q", out, want)
	}
}

func TestTypedStallsSumToLegacyCounter(t *testing.T) {
	// The legacy DispatchStall field stays the sum of the typed causes —
	// the compatibility contract golden digests and dashboards rely on.
	s := Sim{StallROBFull: 5, StallLSQFull: 4, StallRename: 3,
		StallIQFull: 2, StallInjected: 1}
	s.DispatchStall = s.StallROBFull + s.StallLSQFull + s.StallRename +
		s.StallIQFull + s.StallInjected
	if s.DispatchStall != 15 {
		t.Errorf("typed stall sum = %d, want 15", s.DispatchStall)
	}
}

func TestEmptyBreakdownAverages(t *testing.T) {
	var d DelayBreakdown
	a, b, c := d.Avg()
	if a != 0 || b != 0 || c != 0 || d.Total() != 0 {
		t.Error("empty breakdown not zero")
	}
}

func TestRecordReadyAfterIssueClamps(t *testing.T) {
	var s Sim
	// ReadyCycle after IssueCycle (speculative MDP-timeout issue): the
	// ready→issue component must clamp to zero, not underflow.
	s.Record(committedUOp(sched.ClassLdC, 0, 4, 9, 6))
	d2d, d2r, r2i := s.Delay[sched.ClassLdC].Avg()
	if d2d != 4 {
		t.Errorf("decode→dispatch = %v, want 4", d2d)
	}
	if d2r != 5 {
		t.Errorf("dispatch→ready = %v, want 5", d2r)
	}
	if r2i != 0 {
		t.Errorf("ready→issue = %v, want 0 (issue before ready)", r2i)
	}
}

func TestBreakdownTotalIsSumOfAverages(t *testing.T) {
	d := DelayBreakdown{Count: 4, DecodeToDispatch: 8, DispatchToReady: 6, ReadyToIssue: 2}
	if got := d.Total(); got != 4 {
		t.Errorf("Total = %v, want 4", got)
	}
	a, b, c := d.Avg()
	if a+b+c != d.Total() {
		t.Errorf("Total %v != sum of averages %v", d.Total(), a+b+c)
	}
}

func TestAvgOccupancy(t *testing.T) {
	s := Sim{Cycles: 4, OccupancySum: 10}
	if got := s.AvgOccupancy(); got != 2.5 {
		t.Errorf("AvgOccupancy = %v", got)
	}
	var zero Sim
	if zero.AvgOccupancy() != 0 {
		t.Error("zero-cycle AvgOccupancy not 0")
	}
}
