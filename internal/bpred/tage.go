// Package bpred implements the Table I front-end predictors: a TAGE
// direction predictor (one bimodal base table plus four tagged tables
// indexed by geometrically increasing global-history lengths folded from a
// 17-bit GHR) and a 512-set, 4-way set-associative branch target buffer.
package bpred

// History lengths of the four tagged TAGE components. The longest equals
// the paper's 17-bit global history register.
var tageHistLens = [4]int{3, 6, 11, 17}

const (
	bimodalBits = 13 // 8K-entry bimodal
	taggedBits  = 10 // 1K entries per tagged table
	tagBits     = 8
	ctrMax      = 3 // 3-bit signed counter range [-4, 3] stored as 0..7
	usefulMax   = 3
	ghrBits     = 17
)

type taggedEntry struct {
	tag    uint16
	ctr    int8  // -4..3, taken if ≥ 0
	useful uint8 // 0..3
}

// TAGE is the direction predictor.
type TAGE struct {
	bimodal []int8 // -2..1, taken if ≥ 0
	tables  [4][]taggedEntry
	ghr     uint32 // low ghrBits bits are live

	// Statistics.
	predicts    uint64
	mispredicts uint64

	// allocSeed drives the pseudo-random allocation choice between two
	// candidate tables, as in the original TAGE.
	allocSeed uint64
}

// NewTAGE returns a predictor with all counters weakly not-taken.
func NewTAGE() *TAGE {
	t := &TAGE{bimodal: make([]int8, 1<<bimodalBits)}
	for i := range t.tables {
		t.tables[i] = make([]taggedEntry, 1<<taggedBits)
	}
	return t
}

// fold compresses the low n bits of the GHR into width bits.
func fold(ghr uint32, n, width int) uint32 {
	h := ghr & ((1 << n) - 1)
	var out uint32
	for n > 0 {
		out ^= h & ((1 << width) - 1)
		h >>= width
		n -= width
	}
	return out
}

func (t *TAGE) index(table int, pc uint64) uint32 {
	h := fold(t.ghr, tageHistLens[table], taggedBits)
	return (uint32(pc) ^ uint32(pc>>taggedBits) ^ h ^ uint32(table)*0x9E37) & ((1 << taggedBits) - 1)
}

func (t *TAGE) tag(table int, pc uint64) uint16 {
	h := fold(t.ghr, tageHistLens[table], tagBits)
	return uint16((uint32(pc>>2) ^ h ^ (h << 1) ^ uint32(table)*31) & ((1 << tagBits) - 1))
}

func (t *TAGE) bimodalIdx(pc uint64) uint32 {
	return uint32(pc) & ((1 << bimodalBits) - 1)
}

// Predict returns the predicted direction for the branch at pc.
func (t *TAGE) Predict(pc uint64) bool {
	t.predicts++
	pred, _, _ := t.predictInternal(pc)
	return pred
}

// predictInternal returns (prediction, provider table or -1 for bimodal,
// provider entry index).
func (t *TAGE) predictInternal(pc uint64) (bool, int, uint32) {
	for table := 3; table >= 0; table-- {
		idx := t.index(table, pc)
		e := &t.tables[table][idx]
		if e.tag == t.tag(table, pc) {
			return e.ctr >= 0, table, idx
		}
	}
	return t.bimodal[t.bimodalIdx(pc)] >= 0, -1, 0
}

// Update trains the predictor with the actual outcome and advances the GHR.
// It must be called exactly once per dynamic branch, in program order.
func (t *TAGE) Update(pc uint64, taken bool) {
	pred, provider, pidx := t.predictInternal(pc)
	if pred != taken {
		t.mispredicts++
	}

	// Update the provider's counter.
	if provider >= 0 {
		e := &t.tables[provider][pidx]
		if taken && e.ctr < ctrMax {
			e.ctr++
		} else if !taken && e.ctr > -ctrMax-1 {
			e.ctr--
		}
		if pred == taken && e.useful < usefulMax {
			e.useful++
		} else if pred != taken && e.useful > 0 {
			e.useful--
		}
	} else {
		b := &t.bimodal[t.bimodalIdx(pc)]
		if taken && *b < 1 {
			*b++
		} else if !taken && *b > -2 {
			*b--
		}
	}

	// On a mispredict, allocate an entry in a longer-history table.
	if pred != taken && provider < 3 {
		t.allocate(provider+1, pc, taken)
	}

	t.ghr = ((t.ghr << 1) | b2u(taken)) & ((1 << ghrBits) - 1)
}

func (t *TAGE) allocate(minTable int, pc uint64, taken bool) {
	t.allocSeed = t.allocSeed*6364136223846793005 + 1442695040888963407
	start := minTable
	if start < 3 && t.allocSeed>>62 == 0 { // occasionally skip one table
		start++
	}
	for table := start; table < 4; table++ {
		idx := t.index(table, pc)
		e := &t.tables[table][idx]
		if e.useful == 0 {
			e.tag = t.tag(table, pc)
			e.useful = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// No victim: age the candidates so future allocations succeed.
	for table := minTable; table < 4; table++ {
		e := &t.tables[table][t.index(table, pc)]
		if e.useful > 0 {
			e.useful--
		}
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Accuracy returns (predictions, mispredictions).
func (t *TAGE) Accuracy() (uint64, uint64) { return t.predicts, t.mispredicts }

// BTB is a 4-way set-associative branch target buffer mapping branch PCs to
// predicted targets.
type BTB struct {
	sets  int
	ways  int
	tags  []uint64
	tgts  []int
	valid []bool
	used  []uint64
	clock uint64
}

// NewBTB returns a BTB with the given geometry (Table I: 512 sets, 4 ways).
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("bpred: BTB sets must be a positive power of two and ways positive")
	}
	n := sets * ways
	return &BTB{
		sets: sets, ways: ways,
		tags: make([]uint64, n), tgts: make([]int, n),
		valid: make([]bool, n), used: make([]uint64, n),
	}
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (int, bool) {
	base := int(pc) % b.sets * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.clock++
			b.used[i] = b.clock
			return b.tgts[i], true
		}
	}
	return 0, false
}

// Insert records pc → target, evicting the LRU way.
func (b *BTB) Insert(pc uint64, target int) {
	base := int(pc) % b.sets * b.ways
	victim := base
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			victim = i
			break
		}
		if !b.valid[i] {
			victim = i
			break
		}
		if b.used[i] < b.used[victim] {
			victim = i
		}
	}
	b.clock++
	b.tags[victim] = pc
	b.tgts[victim] = target
	b.valid[victim] = true
	b.used[victim] = b.clock
}

// Predictor bundles TAGE and the BTB into the front-end branch unit.
type Predictor struct {
	Dir *TAGE
	BTB *BTB
}

// New returns the Table I predictor: TAGE + 512×4 BTB.
func New() *Predictor {
	return &Predictor{Dir: NewTAGE(), BTB: NewBTB(512, 4)}
}

// Predict returns (taken, target, targetKnown) for the branch at pc.
// A branch predicted taken without a BTB target is treated as not-taken by
// the fetch unit (it cannot redirect without a target).
func (p *Predictor) Predict(pc uint64) (bool, int, bool) {
	taken := p.Dir.Predict(pc)
	tgt, ok := p.BTB.Lookup(pc)
	return taken, tgt, ok
}

// Update trains both structures with the resolved branch.
func (p *Predictor) Update(pc uint64, taken bool, target int) {
	p.Dir.Update(pc, taken)
	if taken {
		p.BTB.Insert(pc, target)
	}
}
