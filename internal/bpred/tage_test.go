package bpred

import (
	"testing"
)

// train runs n (predict, update) rounds of pattern and returns the
// mispredict rate over the last half (after warm-up).
func trainRate(t *testing.T, pc uint64, pattern func(i int) bool, n int) float64 {
	t.Helper()
	p := NewTAGE()
	var wrong, counted int
	for i := 0; i < n; i++ {
		taken := pattern(i)
		pred := p.Predict(pc)
		if i >= n/2 {
			counted++
			if pred != taken {
				wrong++
			}
		}
		p.Update(pc, taken)
	}
	return float64(wrong) / float64(counted)
}

func TestAlwaysTakenLearned(t *testing.T) {
	if r := trainRate(t, 100, func(int) bool { return true }, 200); r > 0.01 {
		t.Errorf("always-taken mispredict rate = %.3f", r)
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	if r := trainRate(t, 100, func(int) bool { return false }, 200); r > 0.01 {
		t.Errorf("always-not-taken mispredict rate = %.3f", r)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	// T,N,T,N... requires one bit of history — easy for TAGE.
	if r := trainRate(t, 100, func(i int) bool { return i%2 == 0 }, 2000); r > 0.05 {
		t.Errorf("alternating mispredict rate = %.3f", r)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// 7 taken, 1 not-taken (a loop with trip count 8): needs ≥3 bits of
	// history; TAGE's longer tables should capture it.
	if r := trainRate(t, 100, func(i int) bool { return i%8 != 7 }, 8000); r > 0.10 {
		t.Errorf("loop mispredict rate = %.3f", r)
	}
}

func TestRandomPatternNearChance(t *testing.T) {
	// An uncorrelated pseudo-random pattern cannot be learned; the rate
	// should be near 50%, never suspiciously low (which would indicate the
	// test harness is leaking outcomes).
	seed := uint64(0xDEADBEEF)
	rnd := func(int) bool {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed>>63 == 1
	}
	r := trainRate(t, 100, rnd, 8000)
	if r < 0.3 {
		t.Errorf("random pattern mispredict rate %.3f is implausibly low", r)
	}
}

func TestSeparateBranchesDoNotAlias(t *testing.T) {
	// Two branches with opposite biases must both be predictable.
	p := NewTAGE()
	var wrong int
	const n = 1000
	for i := 0; i < n; i++ {
		if i > n/2 {
			if p.Predict(11) != true {
				wrong++
			}
			if p.Predict(777) != false {
				wrong++
			}
		}
		p.Update(11, true)
		p.Update(777, false)
	}
	if wrong > 5 {
		t.Errorf("opposite-bias branches conflict: %d wrong", wrong)
	}
}

func TestAccuracyCounters(t *testing.T) {
	p := NewTAGE()
	p.Predict(5)
	p.Update(5, true)
	preds, _ := p.Accuracy()
	if preds != 1 {
		t.Errorf("predicts = %d, want 1", preds)
	}
}

func TestFold(t *testing.T) {
	if got := fold(0b1011, 4, 2); got != (0b10^0b11)&3 {
		t.Errorf("fold(1011,4,2) = %b", got)
	}
	if got := fold(0xFFFF, 16, 16); got != 0xFFFF {
		t.Errorf("identity fold = %x", got)
	}
	if got := fold(0, 17, 8); got != 0 {
		t.Errorf("fold of zero = %x", got)
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(8, 2)
	if _, ok := b.Lookup(42); ok {
		t.Fatal("empty BTB hit")
	}
	b.Insert(42, 7)
	tgt, ok := b.Lookup(42)
	if !ok || tgt != 7 {
		t.Fatalf("Lookup(42) = %d,%v", tgt, ok)
	}
	// Overwrite with new target.
	b.Insert(42, 9)
	if tgt, _ := b.Lookup(42); tgt != 9 {
		t.Errorf("updated target = %d, want 9", tgt)
	}
}

func TestBTBEvictsLRU(t *testing.T) {
	b := NewBTB(2, 2) // pcs with the same parity collide
	b.Insert(0, 10)
	b.Insert(2, 12)
	b.Lookup(0)     // make pc=0 MRU
	b.Insert(4, 14) // same set: evicts pc=2
	if _, ok := b.Lookup(0); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := b.Lookup(2); ok {
		t.Error("LRU entry survived")
	}
	if tgt, ok := b.Lookup(4); !ok || tgt != 14 {
		t.Error("new entry missing")
	}
}

func TestBTBBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBTB(3,1) did not panic")
		}
	}()
	NewBTB(3, 1)
}

func TestPredictorEndToEnd(t *testing.T) {
	p := New()
	// A loop branch at pc=50 jumping to 10, taken 15 of 16 times.
	var wrong int
	const iters = 4000
	for i := 0; i < iters; i++ {
		taken := i%16 != 15
		predTaken, tgt, known := p.Predict(50)
		effectiveTaken := predTaken && known
		if i > iters/2 {
			want := taken
			got := effectiveTaken
			if got != want || (got && tgt != 10) {
				wrong++
			}
		}
		p.Update(50, taken, 10)
	}
	rate := float64(wrong) / float64(iters/2)
	if rate > 0.10 {
		t.Errorf("end-to-end mispredict rate = %.3f", rate)
	}
}

func TestPredictorNotTakenNeverInsertsBTB(t *testing.T) {
	p := New()
	p.Update(99, false, 123)
	if _, ok := p.BTB.Lookup(99); ok {
		t.Error("not-taken update inserted BTB entry")
	}
}
