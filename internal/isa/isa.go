// Package isa defines the micro-operation (μop) instruction set used by the
// simulator: opcode classes, ALU function codes, the static instruction
// encoding produced by the program builder, and the dynamic μop record that
// flows through the timing pipeline.
//
// The machine is a small load/store register machine with 64 integer and
// 64 floating-point architectural registers and a byte-addressed 64-bit
// memory. Values are int64 throughout; "floating-point" opcodes differ from
// integer ones only in which functional units (and latencies) service them,
// which is all the scheduling study needs.
package isa

import "fmt"

// Reg names an architectural register. Integer registers are R(0)..R(63),
// floating-point registers are F(0)..F(63). RegNone marks an absent operand.
type Reg uint8

// NumIntRegs and NumFpRegs give the size of each architectural register file.
const (
	NumIntRegs = 64
	NumFpRegs  = 64
	// NumArchRegs is the total architectural register count (int + fp).
	NumArchRegs = NumIntRegs + NumFpRegs
	// RegNone marks an unused operand slot.
	RegNone Reg = 255
)

// R returns the i-th integer register.
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// F returns the i-th floating-point register.
func F(i int) Reg {
	if i < 0 || i >= NumFpRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// Valid reports whether r names a real register (not RegNone).
func (r Reg) Valid() bool { return r < NumArchRegs }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r.Valid() && r >= NumIntRegs }

// String renders the register in assembly style (r7, f12, -).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	case r.Valid():
		return fmt.Sprintf("r%d", int(r))
	default:
		return fmt.Sprintf("reg?%d", int(r))
	}
}

// Op is a μop opcode class. The class determines which functional units can
// execute the μop (see internal/config for the port bindings of Table I) and
// its execution latency.
type Op uint8

// Opcode classes. OpLoad and OpStore use an AGU for address generation and
// then access the memory hierarchy (loads) or the store queue (stores).
const (
	OpNop Op = iota
	OpIntALU
	OpIntMul
	OpIntDiv
	OpFpAdd
	OpFpMul
	OpFpDiv
	OpLoad
	OpStore
	OpBranch
	numOps
)

// NumOps is the number of distinct opcode classes.
const NumOps = int(numOps)

// Valid reports whether o names a real opcode class — the range check a
// trace importer runs before letting a decoded μop near the pipeline.
func (o Op) Valid() bool { return o < numOps }

var opNames = [...]string{
	OpNop:    "nop",
	OpIntALU: "alu",
	OpIntMul: "mul",
	OpIntDiv: "div",
	OpFpAdd:  "fadd",
	OpFpMul:  "fmul",
	OpFpDiv:  "fdiv",
	OpLoad:   "load",
	OpStore:  "store",
	OpBranch: "branch",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", int(o))
}

// IsMem reports whether the opcode accesses memory (load or store).
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Fn selects the arithmetic function an ALU-class μop computes. It affects
// functional semantics only, never timing: timing is fully determined by Op.
type Fn uint8

// ALU function codes.
const (
	FnAdd    Fn = iota // dst = src1 + src2 + imm
	FnSub              // dst = src1 - src2 + imm
	FnMul              // dst = src1 * src2
	FnDiv              // dst = src1 / src2 (0 divisor yields 0)
	FnAnd              // dst = src1 & src2
	FnOr               // dst = src1 | src2
	FnXor              // dst = src1 ^ src2
	FnShl              // dst = src1 << (src2 & 63)
	FnShr              // dst = int64(uint64(src1) >> (src2 & 63))
	FnSlt              // dst = 1 if src1 < src2 else 0
	FnMovImm           // dst = imm
	FnMix              // dst = hash mix of src1, src2, imm (for synthetic branchy code)
	numFns
)

// NumFns is the number of distinct ALU function codes.
const NumFns = int(numFns)

// Valid reports whether f names a real ALU function code.
func (f Fn) Valid() bool { return f < numFns }

var fnNames = [...]string{
	FnAdd: "add", FnSub: "sub", FnMul: "mul", FnDiv: "div",
	FnAnd: "and", FnOr: "or", FnXor: "xor", FnShl: "shl",
	FnShr: "shr", FnSlt: "slt", FnMovImm: "movi", FnMix: "mix",
}

func (f Fn) String() string {
	if int(f) < len(fnNames) {
		return fnNames[f]
	}
	return fmt.Sprintf("fn?%d", int(f))
}

// BrCond is the condition a branch evaluates against its Src1 value.
type BrCond uint8

// Branch conditions. BrAlways is an unconditional jump.
const (
	BrAlways BrCond = iota // always taken
	BrEQZ                  // taken if src1 == 0
	BrNEZ                  // taken if src1 != 0
	BrLTZ                  // taken if src1 < 0
	BrGEZ                  // taken if src1 >= 0
	numBrConds
)

// NumBrConds is the number of distinct branch conditions.
const NumBrConds = int(numBrConds)

// Valid reports whether c names a real branch condition.
func (c BrCond) Valid() bool { return c < numBrConds }

func (c BrCond) String() string {
	switch c {
	case BrAlways:
		return "jmp"
	case BrEQZ:
		return "beqz"
	case BrNEZ:
		return "bnez"
	case BrLTZ:
		return "bltz"
	case BrGEZ:
		return "bgez"
	}
	return fmt.Sprintf("br?%d", int(c))
}

// Eval reports whether the condition holds for the given source value.
func (c BrCond) Eval(v int64) bool {
	switch c {
	case BrAlways:
		return true
	case BrEQZ:
		return v == 0
	case BrNEZ:
		return v != 0
	case BrLTZ:
		return v < 0
	case BrGEZ:
		return v >= 0
	}
	return false
}

// Inst is a static instruction as laid out by the program builder.
//
// Memory operands address memory at regVal(Base)+Imm; loads write Dst,
// stores read Data. Branches evaluate Cond against Src1 and jump to Target
// (a static instruction index) when taken.
type Inst struct {
	Op   Op
	Fn   Fn
	Cond BrCond

	Dst  Reg // destination register (RegNone if none)
	Src1 Reg // first source (also branch condition input, store data)
	Src2 Reg // second source

	Base Reg   // base address register for loads/stores
	Imm  int64 // immediate: ALU immediate or address offset

	Target int // branch target (static instruction index)

	// Halt marks the final pseudo-instruction that stops functional
	// execution. It never enters the timing pipeline.
	Halt bool
}

// Reads returns the architectural registers the instruction reads
// (excluding RegNone), in operand order.
func (in *Inst) Reads() []Reg {
	var rs []Reg
	switch in.Op {
	case OpLoad:
		if in.Base.Valid() {
			rs = append(rs, in.Base)
		}
	case OpStore:
		if in.Base.Valid() {
			rs = append(rs, in.Base)
		}
		if in.Src1.Valid() {
			rs = append(rs, in.Src1)
		}
	case OpBranch:
		if in.Src1.Valid() {
			rs = append(rs, in.Src1)
		}
	default:
		if in.Src1.Valid() {
			rs = append(rs, in.Src1)
		}
		if in.Src2.Valid() {
			rs = append(rs, in.Src2)
		}
	}
	return rs
}

// Writes returns the architectural destination register, or RegNone.
func (in *Inst) Writes() Reg {
	switch in.Op {
	case OpStore, OpBranch, OpNop:
		return RegNone
	default:
		return in.Dst
	}
}

func (in *Inst) String() string {
	switch in.Op {
	case OpNop:
		if in.Halt {
			return "halt"
		}
		return "nop"
	case OpLoad:
		return fmt.Sprintf("load %s, [%s%+d]", in.Dst, in.Base, in.Imm)
	case OpStore:
		return fmt.Sprintf("store %s, [%s%+d]", in.Src1, in.Base, in.Imm)
	case OpBranch:
		return fmt.Sprintf("%s %s, @%d", in.Cond, in.Src1, in.Target)
	default:
		return fmt.Sprintf("%s.%s %s, %s, %s, #%d", in.Op, in.Fn, in.Dst, in.Src1, in.Src2, in.Imm)
	}
}

// DynInst is one dynamic μop: a static instruction instance with its
// runtime-resolved effective address and branch outcome. The functional
// engine produces the dynamic stream; the timing pipeline consumes it.
type DynInst struct {
	Seq uint64 // dynamic sequence number, 0-based, program order
	PC  int    // static instruction index

	Op   Op
	Fn   Fn
	Cond BrCond

	Dst  Reg
	Src1 Reg
	Src2 Reg

	// Imm carries the static instruction's immediate (ALU immediate or
	// address offset) so an independent replay executor can recompute
	// results and effective addresses from the committed μop stream.
	Imm int64

	Addr  uint64 // effective address (loads/stores)
	Size  uint8  // access size in bytes (always 8 in this machine)
	Taken bool   // branch outcome
	Next  int    // next static PC in the dynamic stream
}

// IsLoad reports whether the μop is a load.
func (d *DynInst) IsLoad() bool { return d.Op == OpLoad }

// IsStore reports whether the μop is a store.
func (d *DynInst) IsStore() bool { return d.Op == OpStore }

// IsBranch reports whether the μop is a branch.
func (d *DynInst) IsBranch() bool { return d.Op == OpBranch }

// Reads returns the architectural registers the μop reads, in operand order.
func (d *DynInst) Reads() [2]Reg {
	switch d.Op {
	case OpLoad:
		return [2]Reg{d.Src1, RegNone} // Src1 holds the base register
	case OpStore:
		return [2]Reg{d.Src1, d.Src2} // base, data
	case OpBranch:
		return [2]Reg{d.Src1, RegNone}
	case OpNop:
		return [2]Reg{RegNone, RegNone}
	default:
		return [2]Reg{d.Src1, d.Src2}
	}
}

// Writes returns the architectural destination register, or RegNone.
func (d *DynInst) Writes() Reg {
	switch d.Op {
	case OpStore, OpBranch, OpNop:
		return RegNone
	default:
		return d.Dst
	}
}

func (d *DynInst) String() string {
	switch d.Op {
	case OpLoad:
		return fmt.Sprintf("#%d pc=%d load %s, [%#x]", d.Seq, d.PC, d.Dst, d.Addr)
	case OpStore:
		return fmt.Sprintf("#%d pc=%d store %s, [%#x]", d.Seq, d.PC, d.Src2, d.Addr)
	case OpBranch:
		return fmt.Sprintf("#%d pc=%d %s taken=%v next=%d", d.Seq, d.PC, d.Cond, d.Taken, d.Next)
	default:
		return fmt.Sprintf("#%d pc=%d %s.%s %s", d.Seq, d.PC, d.Op, d.Fn, d.Dst)
	}
}
