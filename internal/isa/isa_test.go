package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	if got := R(0); got != 0 {
		t.Errorf("R(0) = %d, want 0", got)
	}
	if got := R(63); got != 63 {
		t.Errorf("R(63) = %d, want 63", got)
	}
	if got := F(0); got != Reg(NumIntRegs) {
		t.Errorf("F(0) = %d, want %d", got, NumIntRegs)
	}
	if got := F(63); got != Reg(NumIntRegs+63) {
		t.Errorf("F(63) = %d, want %d", got, NumIntRegs+63)
	}
}

func TestRegConstructorPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"R(-1)", func() { R(-1) }},
		{"R(64)", func() { R(64) }},
		{"F(-1)", func() { F(-1) }},
		{"F(64)", func() { F(64) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestRegPredicates(t *testing.T) {
	if RegNone.Valid() {
		t.Error("RegNone.Valid() = true")
	}
	if !R(5).Valid() || R(5).IsFP() {
		t.Error("R(5) should be valid, non-FP")
	}
	if !F(5).Valid() || !F(5).IsFP() {
		t.Error("F(5) should be valid FP")
	}
}

func TestRegString(t *testing.T) {
	for _, tc := range []struct {
		r    Reg
		want string
	}{
		{R(0), "r0"}, {R(63), "r63"}, {F(0), "f0"}, {F(12), "f12"}, {RegNone, "-"},
	} {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("Reg(%d).String() = %q, want %q", tc.r, got, tc.want)
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpNop: "nop", OpIntALU: "alu", OpIntDiv: "div",
		OpLoad: "load", OpStore: "store", OpBranch: "branch",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op %d String = %q, want %q", op, got, want)
		}
	}
}

func TestOpIsMem(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		want := op == OpLoad || op == OpStore
		if got := op.IsMem(); got != want {
			t.Errorf("%v.IsMem() = %v, want %v", op, got, want)
		}
	}
}

func TestBrCondEval(t *testing.T) {
	cases := []struct {
		c    BrCond
		v    int64
		want bool
	}{
		{BrAlways, 0, true}, {BrAlways, -7, true},
		{BrEQZ, 0, true}, {BrEQZ, 1, false},
		{BrNEZ, 0, false}, {BrNEZ, -1, true},
		{BrLTZ, -1, true}, {BrLTZ, 0, false}, {BrLTZ, 1, false},
		{BrGEZ, 0, true}, {BrGEZ, 5, true}, {BrGEZ, -5, false},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.v); got != tc.want {
			t.Errorf("%v.Eval(%d) = %v, want %v", tc.c, tc.v, got, tc.want)
		}
	}
}

func TestBrCondComplement(t *testing.T) {
	// EQZ/NEZ and LTZ/GEZ are complementary for every value.
	f := func(v int64) bool {
		return BrEQZ.Eval(v) != BrNEZ.Eval(v) && BrLTZ.Eval(v) != BrGEZ.Eval(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstReadsWrites(t *testing.T) {
	ld := Inst{Op: OpLoad, Dst: R(1), Base: R(2)}
	if rs := ld.Reads(); len(rs) != 1 || rs[0] != R(2) {
		t.Errorf("load reads = %v, want [r2]", rs)
	}
	if w := ld.Writes(); w != R(1) {
		t.Errorf("load writes = %v, want r1", w)
	}

	st := Inst{Op: OpStore, Src1: R(3), Base: R(4)}
	if rs := st.Reads(); len(rs) != 2 || rs[0] != R(4) || rs[1] != R(3) {
		t.Errorf("store reads = %v, want [r4 r3]", rs)
	}
	if w := st.Writes(); w != RegNone {
		t.Errorf("store writes = %v, want none", w)
	}

	br := Inst{Op: OpBranch, Cond: BrNEZ, Src1: R(5)}
	if rs := br.Reads(); len(rs) != 1 || rs[0] != R(5) {
		t.Errorf("branch reads = %v, want [r5]", rs)
	}

	alu := Inst{Op: OpIntALU, Fn: FnAdd, Dst: R(1), Src1: R(2), Src2: R(3)}
	if rs := alu.Reads(); len(rs) != 2 {
		t.Errorf("alu reads = %v, want two regs", rs)
	}
	aluImm := Inst{Op: OpIntALU, Fn: FnAdd, Dst: R(1), Src1: R(2), Src2: RegNone}
	if rs := aluImm.Reads(); len(rs) != 1 {
		t.Errorf("alu-imm reads = %v, want one reg", rs)
	}
}

func TestDynInstReads(t *testing.T) {
	ld := DynInst{Op: OpLoad, Dst: R(1), Src1: R(2)}
	if rs := ld.Reads(); rs[0] != R(2) || rs[1] != RegNone {
		t.Errorf("dyn load reads = %v", rs)
	}
	st := DynInst{Op: OpStore, Src1: R(4), Src2: R(3)}
	if rs := st.Reads(); rs[0] != R(4) || rs[1] != R(3) {
		t.Errorf("dyn store reads = %v", rs)
	}
	nop := DynInst{Op: OpNop}
	if rs := nop.Reads(); rs[0] != RegNone || rs[1] != RegNone {
		t.Errorf("dyn nop reads = %v", rs)
	}
	if w := (&DynInst{Op: OpBranch}).Writes(); w != RegNone {
		t.Errorf("branch writes = %v", w)
	}
	if w := (&DynInst{Op: OpFpMul, Dst: F(2)}).Writes(); w != F(2) {
		t.Errorf("fpmul writes = %v", w)
	}
}

func TestPredicateHelpers(t *testing.T) {
	if !(&DynInst{Op: OpLoad}).IsLoad() || (&DynInst{Op: OpStore}).IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !(&DynInst{Op: OpStore}).IsStore() || (&DynInst{Op: OpLoad}).IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !(&DynInst{Op: OpBranch}).IsBranch() {
		t.Error("IsBranch misclassifies")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpNop, Halt: true}, "halt"},
		{Inst{Op: OpLoad, Dst: R(1), Base: R(2), Imm: 8}, "load r1, [r2+8]"},
		{Inst{Op: OpStore, Src1: R(3), Base: R(4), Imm: -8}, "store r3, [r4-8]"},
		{Inst{Op: OpBranch, Cond: BrNEZ, Src1: R(5), Target: 7}, "bnez r5, @7"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	alu := Inst{Op: OpIntALU, Fn: FnAdd, Dst: R(1), Src1: R(2), Src2: R(3), Imm: 4}
	if got := alu.String(); !strings.Contains(got, "alu.add") || !strings.Contains(got, "#4") {
		t.Errorf("alu String() = %q", got)
	}
}

func TestDynInstString(t *testing.T) {
	cases := []struct {
		d    DynInst
		want []string
	}{
		{DynInst{Seq: 1, PC: 2, Op: OpLoad, Dst: R(3), Addr: 0x40}, []string{"#1", "pc=2", "load", "0x40"}},
		{DynInst{Seq: 2, PC: 3, Op: OpStore, Src2: R(4), Addr: 0x80}, []string{"store", "0x80"}},
		{DynInst{Seq: 3, PC: 4, Op: OpBranch, Cond: BrEQZ, Taken: true, Next: 9}, []string{"beqz", "taken=true", "next=9"}},
		{DynInst{Seq: 4, PC: 5, Op: OpFpMul, Fn: FnMul, Dst: F(1)}, []string{"fmul.mul", "f1"}},
	}
	for _, tc := range cases {
		got := tc.d.String()
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("String() = %q missing %q", got, want)
			}
		}
	}
}

func TestFnString(t *testing.T) {
	if FnMovImm.String() != "movi" || FnMix.String() != "mix" {
		t.Error("Fn names wrong")
	}
	if got := Fn(200).String(); !strings.Contains(got, "fn?") {
		t.Errorf("unknown Fn String = %q", got)
	}
	if got := Op(200).String(); !strings.Contains(got, "op?") {
		t.Errorf("unknown Op String = %q", got)
	}
	if got := BrCond(200).String(); !strings.Contains(got, "br?") {
		t.Errorf("unknown BrCond String = %q", got)
	}
	if got := BrCond(200).Eval(1); got {
		t.Error("unknown BrCond evaluates true")
	}
}
