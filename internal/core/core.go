// Package core implements Ballerino, the paper's contribution: balanced and
// cache-miss-tolerable dynamic scheduling via cascaded and clustered
// in-order issue queues (§III, §IV).
//
// The scheduler is a speculative in-order queue (S-IQ) in front of a
// cluster of parallel in-order queues (P-IQs). Each cycle the S-IQ examines
// a speculative scheduling window at its head: ready μops issue
// immediately; non-ready μops are steered to the P-IQs along their M/R-
// dependences. Two techniques extend the effective P-IQ count:
//
//   - M-dependence-aware steering (§III-B): a load predicted dependent on
//     an in-flight store is steered into the producer store's P-IQ,
//     following the LFST's producer-location extension.
//   - P-IQ sharing (§III-C, §IV-D): when no empty P-IQ exists, a P-IQ whose
//     head and tail pointers sit in the same physical half is split into
//     two FIFO partitions, each holding a distinct dependence chain, with
//     one active head per cycle.
package core

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/rename"
	"repro/internal/sched"
)

// Options selects which Ballerino techniques are active, enabling the
// step-by-step variants of Figure 13.
type Options struct {
	// MDASteering enables M-dependence-aware steering (Step 2).
	MDASteering bool
	// Sharing enables P-IQ sharing mode (Step 3).
	Sharing bool
	// IdealSharing removes the implementation constraints of §IV-D:
	// sharing activates regardless of pointer locations and both
	// partition heads may issue in the same cycle.
	IdealSharing bool

	// Ablation knobs (not part of the paper's design; used by the
	// ablation harness to quantify the design choices).

	// SIQFirstSelect inverts §IV-E's select priority: the S-IQ window's
	// requests occupy the upper prefix-sum inputs instead of the P-IQ
	// heads, so younger speculative μops beat older dependence heads.
	SIQFirstSelect bool
	// AlwaysSwitchHead replaces §IV-D's keep-on-issue pointer policy
	// with unconditional alternation between partitions.
	AlwaysSwitchHead bool
}

// Config sizes the scheduler. Table II 8-wide: 8-entry S-IQ examined 4 wide,
// 7 × 12-entry P-IQs; Ballerino-12 uses 11 P-IQs.
type Config struct {
	SIQSize   int
	SIQWindow int // μops examined per cycle (= rename width)
	NumPIQs   int
	PIQDepth  int
	Width     int // issue width (number of ports)
	Options   Options
}

// Validate reports configuration errors: the geometry the sharing-mode
// pointer scheme requires (an even P-IQ depth splittable into two halves)
// and positive queue counts and window sizes.
func (c Config) Validate() error {
	if c.SIQSize <= 0 {
		return fmt.Errorf("core: SIQSize %d must be positive", c.SIQSize)
	}
	if c.SIQWindow <= 0 {
		return fmt.Errorf("core: SIQWindow %d must be positive", c.SIQWindow)
	}
	if c.NumPIQs <= 0 {
		return fmt.Errorf("core: NumPIQs %d must be positive", c.NumPIQs)
	}
	if c.PIQDepth < 2 || c.PIQDepth%2 != 0 {
		return fmt.Errorf("core: PIQDepth %d must be an even number ≥ 2 (sharing mode splits a queue into equal halves)", c.PIQDepth)
	}
	if c.Width <= 0 {
		return fmt.Errorf("core: Width %d must be positive", c.Width)
	}
	return nil
}

// Ballerino implements sched.Scheduler.
type Ballerino struct {
	cfg Config
	rn  *rename.Renamer
	mdp *mdp.MDP

	siq  sched.Ring
	piqs []piq

	events sched.EnergyEvents
	ports  sched.PortMask

	// probe, when non-nil, reports steering/sharing events to the
	// observability layer.
	probe sched.Probe

	// Counters for Figures 6a, 13, 14.
	issuedSIQ   uint64
	issuedPIQ   uint64
	steerM      uint64
	steerDC     uint64
	allocEmpty  uint64
	allocShared uint64
	steerStalls uint64 // cycles the S-IQ head blocked on steering
	shareActs   uint64 // sharing-mode activations

	headIssue    uint64
	headStallM   uint64
	headStallDep uint64
	headEmpty    uint64
}

// New builds a Ballerino scheduler over the shared P-SCB (renamer) and MDP.
// The configuration must already satisfy Validate; config.NewMachine checks
// it before constructing the scheduler factory, so the panic below is an
// internal assertion, not a user-reachable error path.
func New(cfg Config, rn *rename.Renamer, m *mdp.MDP) *Ballerino {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := &Ballerino{cfg: cfg, rn: rn, mdp: m, piqs: make([]piq, cfg.NumPIQs)}
	b.siq.Init(cfg.SIQSize)
	for i := range b.piqs {
		b.piqs[i].init(cfg.PIQDepth)
	}
	return b
}

// Name implements sched.Scheduler.
func (b *Ballerino) Name() string {
	switch {
	case b.cfg.Options.IdealSharing:
		return "Ballerino-ideal"
	case b.cfg.Options.Sharing:
		return "Ballerino"
	case b.cfg.Options.MDASteering:
		return "Ballerino-step2"
	default:
		return "Ballerino-step1"
	}
}

// Capacity implements sched.Scheduler.
func (b *Ballerino) Capacity() int {
	return b.cfg.SIQSize + b.cfg.NumPIQs*b.cfg.PIQDepth
}

// SetProbe implements sched.Probed.
func (b *Ballerino) SetProbe(p sched.Probe) { b.probe = p }

// Occupancy implements sched.Scheduler.
func (b *Ballerino) Occupancy() int {
	n := b.siq.Len()
	for i := range b.piqs {
		n += b.piqs[i].len()
	}
	return n
}

// Dispatch implements sched.Scheduler: μops enter the S-IQ in program order.
func (b *Ballerino) Dispatch(u *sched.UOp, _ uint64) bool {
	if b.siq.Full() {
		return false
	}
	b.siq.Push(u)
	b.events.QueueWrites++
	return true
}

// locCode encodes (P-IQ index, partition) into the producer-location value
// stored in P-SCB and LFST entries.
func locCode(iq, part int) int  { return iq*2 + part }
func locIQ(code int) int        { return code / 2 }
func locPartition(code int) int { return code % 2 }

// Issue implements sched.Scheduler. P-IQ head requests occupy the upper
// prefix-sum inputs (§IV-E), so they are granted before S-IQ requests.
func (b *Ballerino) Issue(cycle uint64, ctx *sched.IssueCtx) {
	b.events.SelectInputs += uint64(b.cfg.Width * (b.cfg.NumPIQs + b.cfg.SIQWindow))
	b.ports.Reset()
	portUsed := &b.ports

	if b.cfg.Options.SIQFirstSelect {
		b.examineSIQ(cycle, ctx, portUsed)
		b.issuePIQHeads(cycle, ctx, portUsed)
		return
	}
	b.issuePIQHeads(cycle, ctx, portUsed)
	b.examineSIQ(cycle, ctx, portUsed)
}

// issuePIQHeads examines each P-IQ's active dependence head through the
// container select vocabulary: Take pops the head (a grant), Keep stalls
// it in place.
func (b *Ballerino) issuePIQHeads(cycle uint64, ctx *sched.IssueCtx, portUsed *sched.PortMask) {
	for i := range b.piqs {
		q := &b.piqs[i]
		if q.len() == 0 {
			b.headEmpty++
			continue
		}
		issuedAny := q.selectHeads(b.cfg.Options.IdealSharing, func(u *sched.UOp) container.Verdict {
			b.events.QueueReads++
			b.events.PSCBReads += 2
			if portUsed.Used(u.Port) {
				if ctx.PortBlocked != nil {
					ctx.PortBlocked(u)
				}
				b.headStallDep++
				return container.Keep
			}
			if !ctx.Ready(u) {
				if u.MDPWait != mdp.NoStore {
					b.headStallM++
				} else {
					b.headStallDep++
				}
				return container.Keep
			}
			ctx.Grant(u)
			b.events.PayloadReads++
			portUsed.Set(u.Port)
			b.issuedPIQ++
			b.headIssue++
			return container.Take
		})
		wasSharing := q.sharing
		q.endCyclePolicy(issuedAny, b.cfg.Options.AlwaysSwitchHead)
		if b.probe != nil && wasSharing && !q.sharing {
			b.probe(sched.ProbePIQMerge, cycle, 0, i)
		}
	}
}

// examineSIQ walks the speculative scheduling window at the S-IQ head,
// exactly one decision per examined μop (§IV-C, Figure 8): ready μops send
// issue requests (granted unless their port is taken — then steered as
// case 3); non-ready μops are steered to the P-IQs along their M/R-
// dependences. A steering failure stalls the window at that μop.
func (b *Ballerino) examineSIQ(cycle uint64, ctx *sched.IssueCtx, portUsed *sched.PortMask) {
	b.siq.SelectWindow(b.cfg.SIQWindow, func(u *sched.UOp) container.Verdict {
		b.events.QueueReads++
		b.events.PSCBReads += 2

		ready := ctx.Ready(u)
		if ready && !portUsed.Used(u.Port) {
			ctx.Grant(u)
			b.events.PayloadReads++
			portUsed.Set(u.Port)
			b.issuedSIQ++
			return container.Take
		}
		if ready && ctx.PortBlocked != nil {
			ctx.PortBlocked(u)
		}
		// Not ready (or §IV-C case 3: ready but its port is taken):
		// steer to the P-IQs; a failure blocks the window here.
		if b.steer(u, cycle) {
			if b.probe != nil {
				b.probe(sched.ProbeSIQPromote, cycle, u.Seq(), 0)
			}
			return container.Take
		}
		b.steerStalls++
		return container.Stop
	})
}

// steer places u into a P-IQ following M-dependences, then R-dependences,
// then allocating an empty queue, then (Step 3) activating sharing mode.
// It reports false when every option is exhausted — the steering stall.
func (b *Ballerino) steer(u *sched.UOp, cycle uint64) bool {
	b.events.SteerOps++

	// 1) M-dependence-aware steering: follow the producer store (§III-B).
	mdaCandidate := b.cfg.Options.MDASteering && u.D.Op.IsMem() && u.SSID >= 0
	if mdaCandidate {
		if code, reserved, ok := b.mdp.ProducerLocation(u.SSID); ok && !reserved {
			iq, part := locIQ(code), locPartition(code)
			if iq < len(b.piqs) && b.piqs[iq].canAppend(part) {
				b.mdp.ReserveProducer(u.SSID)
				b.enqueue(iq, part, u)
				b.steerM++
				if b.probe != nil {
					b.probe(sched.ProbeSteerMDAHit, cycle, u.Seq(), iq)
				}
				return true
			}
		}
		if b.probe != nil {
			b.probe(sched.ProbeSteerMDAMiss, cycle, u.Seq(), 0)
		}
	}

	// 2) R-dependence steering: follow a producer at an unreserved tail.
	for _, src := range u.Src {
		code, reserved, ok := b.rn.ProducerIQ(src)
		if !ok || reserved {
			continue
		}
		iq, part := locIQ(code), locPartition(code)
		if iq < len(b.piqs) && b.piqs[iq].canAppend(part) {
			b.rn.ReserveProducer(src)
			b.enqueue(iq, part, u)
			b.steerDC++
			if b.probe != nil {
				b.probe(sched.ProbeSteerDep, cycle, u.Seq(), iq)
			}
			return true
		}
	}

	// 3) New dependence head: an empty P-IQ.
	for i := range b.piqs {
		if b.piqs[i].len() == 0 {
			b.enqueue(i, 0, u)
			b.allocEmpty++
			if b.probe != nil {
				b.probe(sched.ProbeSteerNewChain, cycle, u.Seq(), i)
			}
			return true
		}
	}

	// 4) Sharing mode (Step 3): split an eligible P-IQ. Prefer queues
	// whose head did not issue last cycle — their read port was idle, so
	// sharing costs the resident chain nothing (§III-C: sharing targets
	// chains stalled on long-latency loads). The ideal variant shares any
	// queue.
	if b.cfg.Options.Sharing || b.cfg.Options.IdealSharing {
		for i := range b.piqs {
			if !b.cfg.Options.IdealSharing && b.piqs[i].lastIssued {
				continue
			}
			wasSharing := b.piqs[i].sharing
			if part, ok := b.piqs[i].activateSharing(b.cfg.Options.IdealSharing); ok {
				b.shareActs++
				b.enqueue(i, part, u)
				b.allocShared++
				if b.probe != nil {
					if !wasSharing {
						b.probe(sched.ProbePIQSplit, cycle, u.Seq(), i)
					}
					b.probe(sched.ProbePIQShare, cycle, u.Seq(), i)
				}
				return true
			}
		}
	}
	return false
}

// enqueue appends u to partition part of P-IQ iq and publishes the
// producer location to the P-SCB (and, for stores, the LFST).
func (b *Ballerino) enqueue(iq, part int, u *sched.UOp) {
	b.piqs[iq].append(part, u)
	b.events.QueueWrites++
	code := locCode(iq, part)
	if u.Dst != rename.PhysNone {
		b.rn.SetProducerIQ(u.Dst, code)
		b.events.PSCBWrites++
	}
	if b.cfg.Options.MDASteering && u.D.Op == isa.OpStore && u.SSID >= 0 {
		b.mdp.SetProducerLocation(u.SSID, u.Seq(), code)
	}
}

// Complete implements sched.Scheduler. Readiness propagates through the
// P-SCB; there is no CAM broadcast.
func (b *Ballerino) Complete(rename.PhysReg, uint64) {}

// Flush implements sched.Scheduler.
func (b *Ballerino) Flush(seq uint64) {
	b.siq.FlushFrom(seq)
	for i := range b.piqs {
		b.piqs[i].flushFrom(seq)
	}
}

// Queues implements sched.Inspector: the S-IQ plus every P-IQ partition,
// each an in-order FIFO holding one dependence chain.
func (b *Ballerino) Queues() []sched.QueueSnapshot {
	siq := make([]uint64, b.siq.Len())
	for i := range siq {
		siq[i] = b.siq.At(i).Seq()
	}
	qs := []sched.QueueSnapshot{{Name: "S-IQ", FIFO: true, Cap: b.cfg.SIQSize, Seqs: siq}}
	for i := range b.piqs {
		q := &b.piqs[i]
		for pi := range q.parts {
			if q.parts[pi].size == 0 && q.parts[pi].count == 0 {
				continue // partition 1 does not exist in normal mode
			}
			qs = append(qs, sched.QueueSnapshot{
				Name: fmt.Sprintf("P-IQ%d.%d", i, pi),
				FIFO: true,
				Cap:  q.parts[pi].size,
				Seqs: q.partSeqs(pi, nil),
			})
		}
	}
	return qs
}

// Energy implements sched.Scheduler.
func (b *Ballerino) Energy() sched.EnergyEvents { return b.events }

// Counters implements sched.Scheduler.
func (b *Ballerino) Counters() map[string]uint64 {
	return map[string]uint64{
		"issued":          b.issuedSIQ + b.issuedPIQ,
		"issued_siq":      b.issuedSIQ,
		"issued_piq":      b.issuedPIQ,
		"steer_m":         b.steerM,
		"steer_dc":        b.steerDC,
		"alloc_empty":     b.allocEmpty,
		"alloc_shared":    b.allocShared,
		"steer_stalls":    b.steerStalls,
		"share_activates": b.shareActs,
		"head_issue":      b.headIssue,
		"head_stall_mdep": b.headStallM,
		"head_stall_dep":  b.headStallDep,
		"head_empty":      b.headEmpty,
	}
}

var _ sched.Scheduler = (*Ballerino)(nil)
var _ sched.Probed = (*Ballerino)(nil)
