package core

import (
	"repro/internal/container"
	"repro/internal/sched"
)

// piq is one parallel in-order queue with the two operating modes of §IV-D:
//
//   - normal mode: a single circular FIFO over the whole buffer (one
//     head/tail pointer pair, parts[0] covering [0, cap));
//   - sharing mode: the buffer is split into two equal physical halves,
//     each an independent FIFO partition with its own head/tail pointers.
//
// Sharing activates only when the queue's occupied slots lie within one
// physical half (the "same half" pointer constraint), and — in the
// non-ideal design — only one partition's head is examined per cycle.
type piq struct {
	buf []*sched.UOp
	cap int

	// scratch backs the ideal-sharing compaction (≤ cap/2 entries move),
	// so activating sharing never allocates.
	scratch []*sched.UOp

	sharing bool
	parts   [2]part

	active     int  // partition whose head is examined (sharing mode)
	lastIssued bool // whether any head issued last cycle
}

// part is one FIFO partition over buf[base : base+size).
type part struct {
	base, size  int
	head, count int // head is an offset within the region
}

func (q *piq) init(capacity int) {
	if capacity < 2 || capacity%2 != 0 {
		panic("core: P-IQ depth must be an even number ≥ 2")
	}
	q.buf = make([]*sched.UOp, capacity)
	q.cap = capacity
	q.scratch = make([]*sched.UOp, capacity/2)
	q.reset()
}

// reset returns to empty normal mode.
func (q *piq) reset() {
	q.sharing = false
	q.parts[0] = part{base: 0, size: q.cap}
	q.parts[1] = part{}
	q.active = 0
	q.lastIssued = false
}

func (q *piq) len() int { return q.parts[0].count + q.parts[1].count }

func (p *part) slot(i int) int { return p.base + (p.head+i)%p.size }

// canAppend reports whether partition part can accept one more μop.
func (q *piq) canAppend(partIdx int) bool {
	if !q.sharing && partIdx != 0 {
		return false
	}
	p := &q.parts[partIdx]
	return p.size > 0 && p.count < p.size
}

// append pushes u at the tail of the given partition.
func (q *piq) append(partIdx int, u *sched.UOp) {
	if !q.canAppend(partIdx) {
		panic("core: append to full P-IQ partition")
	}
	p := &q.parts[partIdx]
	q.buf[p.slot(p.count)] = u
	p.count++
}

// headOf returns the μop at the head of partition part.
func (q *piq) headOf(partIdx int) *sched.UOp {
	p := &q.parts[partIdx]
	return q.buf[p.slot(0)]
}

// popHead removes the head of partition part. Collapsing a drained
// partition is deferred to endCycle so that callers iterating over the
// partitions within one cycle see a stable layout.
func (q *piq) popHead(partIdx int) {
	p := &q.parts[partIdx]
	q.buf[p.slot(0)] = nil
	p.head = (p.head + 1) % p.size
	p.count--
}

// activeHeadsInto fills dst with the partitions whose heads are examined
// this cycle — the single FIFO head in normal mode, the active partition in
// sharing mode, or every non-empty partition in the ideal design — and
// returns how many, without allocating.
func (q *piq) activeHeadsInto(ideal bool, dst *[2]int) int {
	if q.len() == 0 {
		return 0
	}
	if !q.sharing {
		dst[0] = 0
		return 1
	}
	if ideal {
		n := 0
		for i := range q.parts {
			if q.parts[i].count > 0 {
				dst[n] = i
				n++
			}
		}
		return n
	}
	if q.parts[q.active].count == 0 {
		q.active = 1 - q.active
	}
	dst[0] = q.active
	return 1
}

// selectHeads offers this cycle's examined partition heads to visit under
// the container select discipline — Take pops the head (it issued), Keep
// leaves it stalled — and reports whether any head issued. In sharing
// mode, selecting the examined head may flip the active partition (an
// activeHeadsInto side effect) exactly as direct head examination did.
func (q *piq) selectHeads(ideal bool, visit func(*sched.UOp) container.Verdict) bool {
	var heads [2]int
	nh := q.activeHeadsInto(ideal, &heads)
	issued := false
	for _, part := range heads[:nh] {
		if visit(q.headOf(part)) == container.Take {
			q.popHead(part)
			issued = true
		}
	}
	return issued
}

// activeHeads is activeHeadsInto as a slice (test convenience).
func (q *piq) activeHeads(ideal bool) []int {
	var hs [2]int
	n := q.activeHeadsInto(ideal, &hs)
	if n == 0 {
		return nil
	}
	return append([]int(nil), hs[:n]...)
}

// endCycle applies the §IV-D head-pointer policy: keep the active head
// after an issue (back-to-back single-cycle chains), otherwise give the
// other dependence chain its opportunity. forceSwitch (ablation) alternates
// unconditionally.
func (q *piq) endCycle(issued bool) { q.endCyclePolicy(issued, false) }

func (q *piq) endCyclePolicy(issued, forceSwitch bool) {
	q.lastIssued = issued
	if !q.sharing {
		return
	}
	q.maybeCollapse()
	if !q.sharing {
		return
	}
	if (forceSwitch || !issued) && q.parts[1-q.active].count > 0 {
		q.active = 1 - q.active
	}
}

// shareable reports whether the normal-mode queue satisfies the same-half
// pointer constraint: occupied slots all within one physical half.
func (q *piq) shareable() bool {
	if q.sharing {
		return false
	}
	p := &q.parts[0]
	if p.count == 0 || p.count > q.cap/2 {
		return false
	}
	half := q.cap / 2
	first := p.slot(0)
	last := p.slot(p.count - 1)
	return first/half == last/half && first <= last
}

// activateSharing tries to open a partition for a new dependence chain.
// It returns the partition index to append into. In sharing mode an
// already-drained partition is reused directly.
func (q *piq) activateSharing(ideal bool) (int, bool) {
	if q.sharing {
		for i := range q.parts {
			if q.parts[i].count == 0 {
				return i, true
			}
		}
		return 0, false
	}
	half := q.cap / 2
	p := &q.parts[0]
	switch {
	case q.shareable():
		occupiedHalf := p.slot(0) / half
		q.sharing = true
		q.parts[0] = part{base: occupiedHalf * half, size: half, head: p.slot(0) - occupiedHalf*half, count: p.count}
		q.parts[1] = part{base: (1 - occupiedHalf) * half, size: half}
		q.active = 0
		return 1, true
	case ideal && p.count <= half:
		// Ideal design: compact the contents into the first half,
		// ignoring pointer locations.
		n := p.count
		tmp := q.scratch[:n]
		for i := 0; i < n; i++ {
			tmp[i] = q.buf[p.slot(i)]
		}
		for i := range q.buf {
			q.buf[i] = nil
		}
		copy(q.buf, tmp)
		for i := range tmp {
			tmp[i] = nil
		}
		q.sharing = true
		q.parts[0] = part{base: 0, size: half, count: n}
		q.parts[1] = part{base: half, size: half}
		q.active = 0
		return 1, true
	default:
		return 0, false
	}
}

// maybeCollapse reverts to normal mode when sharing is no longer needed:
// both partitions empty, or one empty while the survivor's contents are
// contiguous (so a single full-buffer FIFO can take over).
func (q *piq) maybeCollapse() {
	if !q.sharing {
		return
	}
	c0, c1 := q.parts[0].count, q.parts[1].count
	if c0 == 0 && c1 == 0 {
		q.reset()
		return
	}
	if c0 != 0 && c1 != 0 {
		return
	}
	survivor := 0
	if c0 == 0 {
		survivor = 1
	}
	p := &q.parts[survivor]
	if p.head+p.count > p.size {
		return // wrapped within its region; cannot express in normal mode yet
	}
	abs := p.base + p.head
	count := p.count
	q.sharing = false
	q.parts[0] = part{base: 0, size: q.cap, head: abs, count: count}
	q.parts[1] = part{}
	q.active = 0
}

// partSeqs appends partition partIdx's μop sequence numbers in head-first
// order (used by the invariant auditor and the deadlock autopsy).
func (q *piq) partSeqs(partIdx int, dst []uint64) []uint64 {
	p := &q.parts[partIdx]
	for i := 0; i < p.count; i++ {
		dst = append(dst, q.buf[p.slot(i)].Seq())
	}
	return dst
}

// flushFrom drops all μops with seq ≥ bound from both partitions (each
// partition holds μops in program order, so this truncates suffixes).
func (q *piq) flushFrom(bound uint64) {
	for pi := range q.parts {
		p := &q.parts[pi]
		for i := 0; i < p.count; i++ {
			if q.buf[p.slot(i)].Seq() >= bound {
				for j := i; j < p.count; j++ {
					q.buf[p.slot(j)] = nil
				}
				p.count = i
				break
			}
		}
	}
	if q.sharing {
		q.maybeCollapse()
	}
}
