package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/sched"
)

func uop(seq uint64) *sched.UOp {
	return &sched.UOp{D: &isa.DynInst{Seq: seq, Op: isa.OpIntALU}}
}

func newPIQ(t *testing.T, depth int) *piq {
	t.Helper()
	q := &piq{}
	q.init(depth)
	return q
}

func TestPIQInitPanicsOnOddDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd depth accepted")
		}
	}()
	newPIQ(t, 7)
}

func TestPIQFIFOOrder(t *testing.T) {
	q := newPIQ(t, 8)
	for i := uint64(0); i < 5; i++ {
		if !q.canAppend(0) {
			t.Fatalf("append %d refused", i)
		}
		q.append(0, uop(i))
	}
	for i := uint64(0); i < 5; i++ {
		if got := q.headOf(0).Seq(); got != i {
			t.Fatalf("head = %d, want %d", got, i)
		}
		q.popHead(0)
	}
	if q.len() != 0 {
		t.Errorf("len = %d after drain", q.len())
	}
}

func TestPIQWrapAround(t *testing.T) {
	q := newPIQ(t, 4)
	seq := uint64(0)
	// Interleave pushes and pops to exercise wrap.
	for round := 0; round < 10; round++ {
		for q.canAppend(0) {
			q.append(0, uop(seq))
			seq++
		}
		q.popHead(0)
		q.popHead(0)
	}
	// Remaining entries must still be in order.
	prev := uint64(0)
	first := true
	for q.len() > 0 {
		s := q.headOf(0).Seq()
		if !first && s <= prev {
			t.Fatalf("order violated: %d after %d", s, prev)
		}
		prev, first = s, false
		q.popHead(0)
	}
}

func TestPIQCapacity(t *testing.T) {
	q := newPIQ(t, 4)
	for i := uint64(0); i < 4; i++ {
		q.append(0, uop(i))
	}
	if q.canAppend(0) {
		t.Error("full queue accepts appends")
	}
	defer func() {
		if recover() == nil {
			t.Error("append to full queue did not panic")
		}
	}()
	q.append(0, uop(99))
}

func TestShareableRequiresSameHalf(t *testing.T) {
	q := newPIQ(t, 8)
	if q.shareable() {
		t.Error("empty queue shareable")
	}
	q.append(0, uop(0))
	q.append(0, uop(1))
	if !q.shareable() { // slots 0,1: first half
		t.Error("two entries in first half not shareable")
	}
	q.append(0, uop(2))
	q.append(0, uop(3))
	q.append(0, uop(4)) // slots 0..4 span halves
	if q.shareable() {
		t.Error("5 entries (> half) shareable")
	}
	// Drain to slots 3,4: spans the half boundary.
	q.popHead(0)
	q.popHead(0)
	q.popHead(0)
	if q.shareable() {
		t.Error("entries straddling halves shareable")
	}
	// Drain to slot 4 only: second half.
	q.popHead(0)
	if !q.shareable() {
		t.Error("single entry in second half not shareable")
	}
}

func TestActivateSharingAndPartitionedFIFO(t *testing.T) {
	q := newPIQ(t, 8)
	q.append(0, uop(0))
	q.append(0, uop(1))
	part, ok := q.activateSharing(false)
	if !ok || part != 1 {
		t.Fatalf("activateSharing = %d,%v", part, ok)
	}
	if !q.sharing {
		t.Fatal("sharing flag not set")
	}
	q.append(1, uop(10))
	q.append(1, uop(11))
	if q.len() != 4 {
		t.Fatalf("len = %d", q.len())
	}
	// Partitions are independent FIFOs.
	if q.headOf(0).Seq() != 0 || q.headOf(1).Seq() != 10 {
		t.Error("partition heads wrong")
	}
	// Partition capacity is half the queue.
	q.append(1, uop(12))
	q.append(1, uop(13))
	if q.canAppend(1) {
		t.Error("partition exceeds half capacity")
	}
	if !q.canAppend(0) { // partition 0 has 2 of 4 slots
		t.Error("partition 0 refuses appends")
	}
}

func TestSharingNotActivatableWhenStraddling(t *testing.T) {
	q := newPIQ(t, 8)
	for i := uint64(0); i < 5; i++ {
		q.append(0, uop(i))
	}
	q.popHead(0)
	q.popHead(0) // slots 2,3,4: straddles
	if _, ok := q.activateSharing(false); ok {
		t.Error("sharing activated despite straddling contents")
	}
	// The ideal design compacts and shares anyway.
	if _, ok := q.activateSharing(true); !ok {
		t.Error("ideal sharing refused compactable queue")
	}
	// Contents preserved in order after compaction.
	want := uint64(2)
	for q.parts[0].count > 0 {
		if got := q.headOf(0).Seq(); got != want {
			t.Fatalf("after compact: head=%d want=%d", got, want)
		}
		q.popHead(0)
		want++
	}
}

func TestCollapseWhenPartitionDrains(t *testing.T) {
	q := newPIQ(t, 8)
	q.append(0, uop(0))
	part, _ := q.activateSharing(false)
	q.append(part, uop(10))
	q.append(part, uop(11))
	// Drain partition 0 → collapse (at end of cycle) back to normal mode
	// with partition 1's contents (contiguous in its half).
	q.popHead(0)
	q.endCycle(true)
	if q.sharing {
		t.Fatal("did not collapse after drain")
	}
	if q.len() != 2 || q.headOf(0).Seq() != 10 {
		t.Fatalf("collapsed contents wrong: len=%d head=%d", q.len(), q.headOf(0).Seq())
	}
	// Full capacity available again.
	for i := uint64(20); q.canAppend(0); i++ {
		q.append(0, uop(i))
	}
	if q.len() != 8 {
		t.Errorf("capacity after collapse = %d, want 8", q.len())
	}
}

func TestReuseDrainedPartitionWhileSharing(t *testing.T) {
	q := newPIQ(t, 8)
	q.append(0, uop(0))
	part, _ := q.activateSharing(false)
	q.append(part, uop(10))
	// Drain partition 1 mid-cycle: before endCycle the queue is still in
	// sharing mode and the drained partition is reusable for a new chain.
	q.popHead(part)
	if !q.sharing {
		t.Fatal("collapsed before endCycle")
	}
	got, ok := q.activateSharing(false)
	if !ok || got != part {
		t.Errorf("drained partition not reused: got %d,%v", got, ok)
	}
}

func TestActiveHeadPolicy(t *testing.T) {
	q := newPIQ(t, 8)
	q.append(0, uop(0))
	part, _ := q.activateSharing(false)
	q.append(part, uop(10))

	heads := q.activeHeads(false)
	if len(heads) != 1 {
		t.Fatalf("non-ideal active heads = %v", heads)
	}
	first := heads[0]
	// No issue this cycle → switch to the other partition.
	q.endCycle(false)
	heads = q.activeHeads(false)
	if len(heads) != 1 || heads[0] == first {
		t.Errorf("head did not switch after a no-issue cycle: %v", heads)
	}
	// Issue → keep the pointer.
	q.endCycle(true)
	heads2 := q.activeHeads(false)
	if heads2[0] != heads[0] {
		t.Errorf("head switched after an issue")
	}
}

func TestIdealExaminesBothHeads(t *testing.T) {
	q := newPIQ(t, 8)
	q.append(0, uop(0))
	part, _ := q.activateSharing(true)
	q.append(part, uop(10))
	if heads := q.activeHeads(true); len(heads) != 2 {
		t.Errorf("ideal active heads = %v, want both", heads)
	}
}

func TestFlushFromTruncatesPartitions(t *testing.T) {
	q := newPIQ(t, 8)
	q.append(0, uop(0))
	q.append(0, uop(5))
	part, _ := q.activateSharing(false)
	q.append(part, uop(3))
	q.append(part, uop(7))
	q.flushFrom(5) // drops seq 5 and 7
	if q.len() != 2 {
		t.Fatalf("len after flush = %d, want 2", q.len())
	}
	var seqs []uint64
	for pi := 0; pi < 2; pi++ {
		p := q.parts[pi]
		for i := 0; i < p.count; i++ {
			seqs = append(seqs, q.buf[p.slot(i)].Seq())
		}
	}
	for _, s := range seqs {
		if s >= 5 {
			t.Errorf("seq %d survived flush", s)
		}
	}
}

func TestFlushToEmptyResets(t *testing.T) {
	q := newPIQ(t, 8)
	q.append(0, uop(4))
	part, _ := q.activateSharing(false)
	q.append(part, uop(6))
	q.flushFrom(0)
	if q.len() != 0 || q.sharing {
		t.Errorf("flush-to-empty: len=%d sharing=%v", q.len(), q.sharing)
	}
	// Queue must be fully usable again.
	for i := uint64(0); i < 8; i++ {
		if !q.canAppend(0) {
			t.Fatalf("append %d refused after reset", i)
		}
		q.append(0, uop(i))
	}
}

// TestPartitionsNeverOverlap is the DESIGN.md §6 invariant: across random
// operations, the two partitions never claim the same buffer slot.
func TestPartitionsNeverOverlap(t *testing.T) {
	q := newPIQ(t, 8)
	seed := uint64(99)
	rnd := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	seq := uint64(0)
	for step := 0; step < 20000; step++ {
		switch rnd(4) {
		case 0:
			p := rnd(2)
			if q.canAppend(p) {
				q.append(p, uop(seq))
				seq++
			}
		case 1:
			if hs := q.activeHeads(false); len(hs) > 0 {
				q.popHead(hs[0])
			}
		case 2:
			q.activateSharing(rnd(2) == 0)
		case 3:
			q.endCycle(rnd(2) == 0)
		}
		// Invariant: slot occupancy equals the partition counts, and no
		// slot is claimed twice.
		claimed := map[int]bool{}
		total := 0
		for pi := range q.parts {
			p := q.parts[pi]
			for i := 0; i < p.count; i++ {
				s := p.slot(i)
				if claimed[s] {
					t.Fatalf("step %d: slot %d claimed twice", step, s)
				}
				if q.buf[s] == nil {
					t.Fatalf("step %d: claimed slot %d is nil", step, s)
				}
				claimed[s] = true
				total++
			}
		}
		if total != q.len() {
			t.Fatalf("step %d: len mismatch", step)
		}
	}
}
