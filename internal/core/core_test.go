package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/rename"
	"repro/internal/sched"
)

func testConfig(opt Options) Config {
	return Config{
		SIQSize:   8,
		SIQWindow: 4,
		NumPIQs:   3,
		PIQDepth:  4,
		Width:     8,
		Options:   opt,
	}
}

func harness(t *testing.T, opt Options) (*Ballerino, *rename.Renamer, *mdp.MDP) {
	t.Helper()
	rn := rename.MustNew(rename.DefaultConfig())
	m := mdp.New(mdp.DefaultConfig())
	return New(testConfig(opt), rn, m), rn, m
}

func mkUOp(seq uint64, op isa.Op, port int) *sched.UOp {
	return &sched.UOp{
		D:       &isa.DynInst{Seq: seq, Op: op},
		Dst:     rename.PhysNone,
		Src:     [2]rename.PhysReg{rename.PhysNone, rename.PhysNone},
		Port:    port,
		MDPWait: mdp.NoStore,
		SSID:    -1,
	}
}

func issueCtx(readyFn func(*sched.UOp) bool, granted *[]*sched.UOp) *sched.IssueCtx {
	return &sched.IssueCtx{
		Ready: readyFn,
		Grant: func(u *sched.UOp) { *granted = append(*granted, u) },
	}
}

func always(*sched.UOp) bool { return true }
func never(*sched.UOp) bool  { return false }

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{}, nil, nil)
}

func TestReadyOpsIssueSpeculativelyFromSIQ(t *testing.T) {
	b, _, _ := harness(t, Options{})
	for i := uint64(0); i < 4; i++ {
		if !b.Dispatch(mkUOp(i, isa.OpIntALU, int(i)), 0) {
			t.Fatalf("dispatch %d refused", i)
		}
	}
	var granted []*sched.UOp
	b.Issue(1, issueCtx(always, &granted))
	if len(granted) != 4 {
		t.Fatalf("granted %d of 4 ready μops", len(granted))
	}
	if b.Counters()["issued_siq"] != 4 {
		t.Error("speculative issues not attributed to the S-IQ")
	}
	if b.Occupancy() != 0 {
		t.Errorf("occupancy = %d", b.Occupancy())
	}
}

func TestNonReadyOpsSteerToPIQs(t *testing.T) {
	b, _, _ := harness(t, Options{})
	b.Dispatch(mkUOp(0, isa.OpIntALU, 0), 0)
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted))
	if len(granted) != 0 {
		t.Fatal("non-ready op issued")
	}
	if b.Counters()["alloc_empty"] != 1 {
		t.Error("non-ready op not steered to an empty P-IQ")
	}
	// Once ready, it issues from the P-IQ head.
	b.Issue(2, issueCtx(always, &granted))
	if len(granted) != 1 || b.Counters()["issued_piq"] != 1 {
		t.Error("steered op did not issue from its P-IQ head")
	}
}

func TestConsumerFollowsProducerIntoPIQ(t *testing.T) {
	b, rn, _ := harness(t, Options{})
	_, dst, _, _ := rn.Rename(&isa.DynInst{Op: isa.OpIntALU, Dst: isa.R(1)})
	prod := mkUOp(0, isa.OpIntALU, 0)
	prod.Dst = dst
	cons := mkUOp(1, isa.OpIntALU, 1)
	cons.Src[0] = dst
	b.Dispatch(prod, 0)
	b.Dispatch(cons, 0)
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted))
	c := b.Counters()
	if c["alloc_empty"] != 1 || c["steer_dc"] != 1 {
		t.Errorf("steering outcome: alloc=%d steer_dc=%d, want 1/1",
			c["alloc_empty"], c["steer_dc"])
	}
	// Heads: only the producer is visible.
	granted = nil
	b.Issue(2, issueCtx(always, &granted))
	if len(granted) != 1 || granted[0] != prod {
		t.Fatal("producer not the only P-IQ head")
	}
	// Next cycle the consumer pops to the head.
	granted = nil
	b.Issue(3, issueCtx(always, &granted))
	if len(granted) != 1 || granted[0] != cons {
		t.Fatal("consumer did not reach the head after producer issued")
	}
}

func TestSteeringStallBlocksWindow(t *testing.T) {
	b, _, _ := harness(t, Options{}) // 3 P-IQs, no sharing
	// Four independent non-ready ops: three take the P-IQs, the fourth
	// stalls the window.
	for i := uint64(0); i < 4; i++ {
		b.Dispatch(mkUOp(i, isa.OpIntALU, int(i)), 0)
	}
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted))
	c := b.Counters()
	if c["alloc_empty"] != 3 {
		t.Errorf("alloc_empty = %d, want 3", c["alloc_empty"])
	}
	if c["steer_stalls"] != 1 {
		t.Errorf("steer_stalls = %d, want 1", c["steer_stalls"])
	}
	if b.Occupancy() != 4 {
		t.Errorf("occupancy = %d, want 4 (1 stuck in S-IQ)", b.Occupancy())
	}
}

func TestSharingActivatesUnderPressure(t *testing.T) {
	b, _, _ := harness(t, Options{Sharing: true})
	// Fill the three P-IQs with stalled chains, then add one more chain:
	// sharing must open a partition instead of stalling.
	for i := uint64(0); i < 4; i++ {
		b.Dispatch(mkUOp(i, isa.OpIntALU, int(i)), 0)
	}
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted))
	c := b.Counters()
	if c["alloc_shared"] != 1 || c["share_activates"] != 1 {
		t.Errorf("sharing not used: %+v", c)
	}
	if c["steer_stalls"] != 0 {
		t.Errorf("steer stalled despite sharing: %d", c["steer_stalls"])
	}
}

func TestSharingSkipsActivelyIssuingQueues(t *testing.T) {
	b, _, _ := harness(t, Options{Sharing: true})
	// One chain that issues every cycle (marks lastIssued), two stalled.
	busy := mkUOp(0, isa.OpIntALU, 0)
	b.Dispatch(busy, 0)
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted)) // busy steered to P-IQ 0
	b.Dispatch(mkUOp(1, isa.OpIntALU, 1), 1)
	b.Dispatch(mkUOp(2, isa.OpIntALU, 2), 1)
	// busy issues this cycle; the two others steer to queues 1 and 2.
	b.Issue(2, issueCtx(func(u *sched.UOp) bool { return u == busy }, &granted))
	if len(granted) != 1 {
		t.Fatalf("busy chain did not issue")
	}
	if b.Counters()["alloc_empty"] != 3 {
		t.Fatalf("setup wrong: alloc_empty=%d", b.Counters()["alloc_empty"])
	}
}

func TestMDASteeringFollowsLFST(t *testing.T) {
	b, _, m := harness(t, Options{MDASteering: true})
	m.TrainViolation(100, 200)

	st := mkUOp(0, isa.OpStore, 2)
	st.MDPWait, st.SSID = m.StoreDispatched(100, 0, mdp.NoIQ)
	b.Dispatch(st, 0)
	ld := mkUOp(1, isa.OpLoad, 3)
	ld.MDPWait, ld.SSID = m.LoadDispatched(200)
	b.Dispatch(ld, 0)

	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted)) // both steered
	if b.Counters()["steer_m"] != 1 {
		t.Errorf("steer_m = %d, want 1", b.Counters()["steer_m"])
	}
	// The store is the only P-IQ head (the load queued behind it).
	granted = nil
	b.Issue(2, issueCtx(always, &granted))
	if len(granted) != 1 || granted[0] != st {
		t.Fatal("load not behind its producer store")
	}
}

func TestFlushClearsEverything(t *testing.T) {
	b, _, _ := harness(t, Options{Sharing: true})
	for i := uint64(0); i < 6; i++ {
		b.Dispatch(mkUOp(i, isa.OpIntALU, int(i%8)), 0)
	}
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted)) // distribute into P-IQs
	b.Flush(2)
	if occ := b.Occupancy(); occ != 2 {
		t.Errorf("occupancy after flush = %d, want 2", occ)
	}
	b.Flush(0)
	if b.Occupancy() != 0 {
		t.Error("flush(0) left residue")
	}
}

func TestSIQCapacityBackpressure(t *testing.T) {
	b, _, _ := harness(t, Options{})
	for i := uint64(0); i < 8; i++ {
		if !b.Dispatch(mkUOp(i, isa.OpIntALU, 0), 0) {
			t.Fatalf("dispatch %d refused below capacity", i)
		}
	}
	if b.Dispatch(mkUOp(9, isa.OpIntALU, 0), 0) {
		t.Error("dispatch into full S-IQ accepted")
	}
}

func TestOnlyOneGrantPerPort(t *testing.T) {
	b, _, _ := harness(t, Options{})
	// Two ready ops on the same port in the S-IQ window.
	b.Dispatch(mkUOp(0, isa.OpIntALU, 5), 0)
	b.Dispatch(mkUOp(1, isa.OpIntALU, 5), 0)
	var granted []*sched.UOp
	b.Issue(1, issueCtx(always, &granted))
	if len(granted) != 1 {
		t.Fatalf("granted %d on one port", len(granted))
	}
	// The port-conflicted ready op is steered (§IV-C case 3).
	if b.Counters()["alloc_empty"] != 1 {
		t.Error("case-3 steering did not happen")
	}
}

func TestCapacityAndName(t *testing.T) {
	b, _, _ := harness(t, Options{Sharing: true, MDASteering: true})
	if b.Capacity() != 8+3*4 {
		t.Errorf("capacity = %d", b.Capacity())
	}
	if b.Name() != "Ballerino" {
		t.Errorf("name = %q", b.Name())
	}
	v, _, _ := harness(t, Options{})
	if v.Name() != "Ballerino-step1" {
		t.Errorf("step1 name = %q", v.Name())
	}
	v2, _, _ := harness(t, Options{MDASteering: true})
	if v2.Name() != "Ballerino-step2" {
		t.Errorf("step2 name = %q", v2.Name())
	}
	v3, _, _ := harness(t, Options{IdealSharing: true})
	if v3.Name() != "Ballerino-ideal" {
		t.Errorf("ideal name = %q", v3.Name())
	}
}

func TestSIQFirstSelectOption(t *testing.T) {
	b, _, _ := harness(t, Options{SIQFirstSelect: true})
	// A ready S-IQ op and a ready P-IQ head compete for the same port:
	// with inverted priority the S-IQ op wins.
	headOp := mkUOp(0, isa.OpIntALU, 2)
	b.Dispatch(headOp, 0)
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted)) // steer headOp into a P-IQ
	siqOp := mkUOp(1, isa.OpIntALU, 2)
	b.Dispatch(siqOp, 1)
	granted = nil
	b.Issue(2, issueCtx(always, &granted))
	if len(granted) != 1 || granted[0] != siqOp {
		t.Fatalf("SIQFirstSelect: granted %v, want the S-IQ op", granted)
	}
	// Default priority grants the (older) P-IQ head instead.
	d, _, _ := harness(t, Options{})
	headOp2 := mkUOp(0, isa.OpIntALU, 2)
	d.Dispatch(headOp2, 0)
	granted = nil
	d.Issue(1, issueCtx(never, &granted))
	siqOp2 := mkUOp(1, isa.OpIntALU, 2)
	d.Dispatch(siqOp2, 1)
	granted = nil
	d.Issue(2, issueCtx(always, &granted))
	if len(granted) != 1 || granted[0] != headOp2 {
		t.Fatalf("default priority: granted %v, want the P-IQ head", granted)
	}
}

func TestAlwaysSwitchHeadOption(t *testing.T) {
	b, _, _ := harness(t, Options{Sharing: true, AlwaysSwitchHead: true})
	// Two shared chains both permanently ready on distinct ports: the
	// forced alternation must issue from BOTH partitions over two cycles.
	b.Dispatch(mkUOp(0, isa.OpIntALU, 0), 0)
	b.Dispatch(mkUOp(1, isa.OpIntALU, 1), 0)
	b.Dispatch(mkUOp(2, isa.OpIntALU, 2), 0)
	b.Dispatch(mkUOp(3, isa.OpIntALU, 3), 0)
	var granted []*sched.UOp
	b.Issue(1, issueCtx(never, &granted)) // fill 3 P-IQs + 1 shared partition
	if b.Counters()["alloc_shared"] != 1 {
		t.Skip("layout did not trigger sharing")
	}
	b.Issue(2, issueCtx(always, &granted))
	b.Issue(3, issueCtx(always, &granted))
	b.Issue(4, issueCtx(always, &granted))
	if len(granted) < 4 {
		t.Errorf("granted %d of 4 with forced switching", len(granted))
	}
}
