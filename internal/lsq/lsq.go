// Package lsq implements the load queue / store queue pair: in-flight
// memory-operation tracking, store-to-load forwarding lookup, and memory
// order violation detection (§II-A). Entries are kept in program order;
// loads stay until commit, stores until their commit-time cache write.
package lsq

import (
	"fmt"

	"repro/internal/sched"
)

// Queues is the LQ/SQ pair with Table I capacities.
type Queues struct {
	lq, sq []*sched.UOp
	lqCap  int
	sqCap  int
}

// New returns empty queues with the given capacities.
func New(lqCap, sqCap int) (*Queues, error) {
	if lqCap <= 0 || sqCap <= 0 {
		return nil, fmt.Errorf("lsq: capacities must be positive (LQ %d, SQ %d)", lqCap, sqCap)
	}
	return &Queues{
		lq:    make([]*sched.UOp, 0, lqCap),
		sq:    make([]*sched.UOp, 0, sqCap),
		lqCap: lqCap,
		sqCap: sqCap,
	}, nil
}

// Counts returns the current (load, store) occupancies.
func (q *Queues) Counts() (int, int) { return len(q.lq), len(q.sq) }

// Caps returns the (load, store) queue capacities.
func (q *Queues) Caps() (int, int) { return q.lqCap, q.sqCap }

// Loads returns the in-flight loads in program order. The slice is the
// queue's backing storage: callers must treat it as read-only.
func (q *Queues) Loads() []*sched.UOp { return q.lq }

// Stores returns the in-flight stores in program order. The slice is the
// queue's backing storage: callers must treat it as read-only.
func (q *Queues) Stores() []*sched.UOp { return q.sq }

// YoungestUnissuedStore returns the youngest in-flight store that has not
// issued yet, or nil. The fault injector uses it to fabricate adversarial
// (but deadlock-free) memory dependence waits: the target is always
// strictly older than the μop being dispatched.
func (q *Queues) YoungestUnissuedStore() *sched.UOp {
	for i := len(q.sq) - 1; i >= 0; i-- {
		if !q.sq[i].Issued {
			return q.sq[i]
		}
	}
	return nil
}

// CanAccept reports whether u (if a memory operation) has a queue slot.
func (q *Queues) CanAccept(u *sched.UOp) bool {
	switch {
	case u.D.IsLoad():
		return len(q.lq) < q.lqCap
	case u.D.IsStore():
		return len(q.sq) < q.sqCap
	default:
		return true
	}
}

// Insert appends u to its queue at dispatch. Entries must arrive in
// program order (the dispatcher guarantees it). Non-memory μops are
// ignored.
func (q *Queues) Insert(u *sched.UOp) {
	switch {
	case u.D.IsLoad():
		q.lq = append(q.lq, u)
	case u.D.IsStore():
		q.sq = append(q.sq, u)
	}
}

// Remove deletes u from its queue (commit or squash).
func (q *Queues) Remove(u *sched.UOp) {
	switch {
	case u.D.IsLoad():
		q.lq = remove(q.lq, u)
	case u.D.IsStore():
		q.sq = remove(q.sq, u)
	}
}

func remove(s []*sched.UOp, u *sched.UOp) []*sched.UOp {
	for i, x := range s {
		if x == u {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			return s[:len(s)-1]
		}
	}
	return s
}

// StoreBySeq returns the in-flight store with the given sequence number,
// or nil if it has left the queue (committed or squashed). The SQ is in
// program order (ascending seq), so this is a binary search — it sits on
// the issue-readiness path of every M-dependent memory μop, every cycle.
func (q *Queues) StoreBySeq(seq uint64) *sched.UOp {
	lo, hi := 0, len(q.sq)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.sq[mid].Seq() < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(q.sq) && q.sq[lo].Seq() == seq {
		return q.sq[lo]
	}
	return nil
}

// ForwardingStore returns the youngest store older than the load that
// targets the same word and whose address/data resolve no later than
// readAt — the store-to-load forwarding source — or nil.
func (q *Queues) ForwardingStore(ld *sched.UOp, readAt uint64) *sched.UOp {
	var fwd *sched.UOp
	for _, st := range q.sq {
		if st.Seq() < ld.Seq() && st.Issued && st.CompleteCycle <= readAt && st.D.Addr == ld.D.Addr {
			if fwd == nil || st.Seq() > fwd.Seq() {
				fwd = st
			}
		}
	}
	return fwd
}

// ViolatingLoad returns the OLDEST load younger than st that read the same
// word before st's address resolved (st.CompleteCycle) — the memory order
// violation victim — or nil. A load's memory read happens one cycle after
// its issue (AGU).
func (q *Queues) ViolatingLoad(st *sched.UOp) *sched.UOp {
	var victim *sched.UOp
	for _, ld := range q.lq {
		if ld.Seq() > st.Seq() && ld.Issued && ld.D.Addr == st.D.Addr &&
			ld.IssueCycle+1 < st.CompleteCycle {
			if victim == nil || ld.Seq() < victim.Seq() {
				victim = ld
			}
		}
	}
	return victim
}
