package lsq

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/sched"
)

func ld(seq uint64, addr uint64) *sched.UOp {
	return &sched.UOp{D: &isa.DynInst{Seq: seq, Op: isa.OpLoad, Addr: addr}}
}

func st(seq uint64, addr uint64) *sched.UOp {
	return &sched.UOp{D: &isa.DynInst{Seq: seq, Op: isa.OpStore, Addr: addr}}
}

func alu(seq uint64) *sched.UOp {
	return &sched.UOp{D: &isa.DynInst{Seq: seq, Op: isa.OpIntALU}}
}

func mustNew(t *testing.T, lq, sq int) *Queues {
	t.Helper()
	q, err := New(lq, sq)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func issued(u *sched.UOp, issue, complete uint64) *sched.UOp {
	u.Issued = true
	u.IssueCycle = issue
	u.CompleteCycle = complete
	return u
}

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("no error for zero LQ capacity")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("no error for negative SQ capacity")
	}
}

func TestCapacityAccounting(t *testing.T) {
	q := mustNew(t, 2, 1)
	l1, l2, l3 := ld(1, 8), ld(2, 16), ld(3, 24)
	s1, s2 := st(4, 8), st(5, 16)

	if !q.CanAccept(l1) {
		t.Fatal("empty LQ refused a load")
	}
	q.Insert(l1)
	q.Insert(l2)
	if q.CanAccept(l3) {
		t.Error("full LQ accepted a load")
	}
	q.Insert(s1)
	if q.CanAccept(s2) {
		t.Error("full SQ accepted a store")
	}
	// Non-memory μops never block.
	if !q.CanAccept(alu(9)) {
		t.Error("ALU op blocked by LSQ")
	}
	nl, ns := q.Counts()
	if nl != 2 || ns != 1 {
		t.Errorf("counts = %d,%d", nl, ns)
	}
	q.Remove(l1)
	if !q.CanAccept(l3) {
		t.Error("LQ still full after removal")
	}
	// Removing an absent entry is a no-op.
	q.Remove(l1)
	if nl, _ := q.Counts(); nl != 1 {
		t.Errorf("double remove corrupted LQ: %d", nl)
	}
}

func TestStoreBySeq(t *testing.T) {
	q := mustNew(t, 4, 4)
	s := st(7, 64)
	q.Insert(s)
	if got := q.StoreBySeq(7); got != s {
		t.Error("StoreBySeq missed an in-flight store")
	}
	if got := q.StoreBySeq(8); got != nil {
		t.Error("StoreBySeq invented a store")
	}
	q.Remove(s)
	if got := q.StoreBySeq(7); got != nil {
		t.Error("StoreBySeq found a removed store")
	}
}

func TestForwardingPicksYoungestResolvedOlderStore(t *testing.T) {
	q := mustNew(t, 8, 8)
	old := issued(st(1, 64), 5, 6)
	mid := issued(st(3, 64), 8, 9)
	young := issued(st(9, 64), 10, 11) // YOUNGER than the load
	other := issued(st(4, 128), 8, 9)  // different address
	pending := st(5, 64)               // not issued yet
	for _, s := range []*sched.UOp{old, mid, young, other, pending} {
		q.Insert(s)
	}
	load := ld(7, 64)
	if got := q.ForwardingStore(load, 20); got != mid {
		t.Errorf("forwarded from seq %v, want 3 (youngest older resolved)", got)
	}
	// A read before mid resolves must fall back to the older store.
	if got := q.ForwardingStore(load, 7); got != old {
		t.Errorf("early read forwarded from %v, want 1", got)
	}
	// A read before anything resolves forwards from nothing.
	if got := q.ForwardingStore(load, 3); got != nil {
		t.Errorf("unresolved stores forwarded: %v", got)
	}
}

func TestViolationDetection(t *testing.T) {
	q := mustNew(t, 8, 8)
	// Store resolves at cycle 50; loads that read (issue+1) before then
	// and match the address violate.
	store := issued(st(10, 64), 49, 50)

	early := issued(ld(12, 64), 20, 30)     // read at 21 < 50 → violates
	earlier := issued(ld(11, 64), 25, 35)   // also violates, and is older
	late := issued(ld(13, 64), 60, 70)      // read after resolution
	boundary := issued(ld(14, 64), 49, 55)  // read at 50 == 50 → no violation
	diffAddr := issued(ld(15, 128), 20, 30) // different word
	older := issued(ld(9, 64), 20, 30)      // older than the store
	notIssued := ld(16, 64)
	for _, l := range []*sched.UOp{early, earlier, late, boundary, diffAddr, older, notIssued} {
		q.Insert(l)
	}
	victim := q.ViolatingLoad(store)
	if victim != earlier {
		t.Fatalf("victim seq %d, want 11 (the oldest racing load)", victim.Seq())
	}
	// After flushing the racing loads, no victim remains.
	q.Remove(early)
	q.Remove(earlier)
	if v := q.ViolatingLoad(store); v != nil {
		t.Errorf("spurious victim seq %d", v.Seq())
	}
}

func TestProgramOrderPreserved(t *testing.T) {
	q := mustNew(t, 16, 16)
	for i := uint64(0); i < 10; i++ {
		q.Insert(ld(i*2, 8*i))
		q.Insert(st(i*2+1, 8*i))
	}
	// Forwarding for a very young load must see the youngest older store
	// even with many candidates.
	for _, s := range q.sq {
		issued(s, s.Seq(), s.Seq()+1)
	}
	load := ld(100, 8*9)
	if got := q.ForwardingStore(load, 1000); got == nil || got.Seq() != 19 {
		t.Errorf("forwarding store = %v, want seq 19", got)
	}
}
