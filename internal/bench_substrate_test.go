// Package internal_test hosts substrate micro-benchmarks: the raw cost of
// the simulator's building blocks, complementing the per-figure harness at
// the repository root.
package internal_test

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/rename"
	"repro/internal/workload"
)

func BenchmarkTAGEPredictUpdate(b *testing.B) {
	p := bpred.NewTAGE()
	for i := 0; i < b.N; i++ {
		pc := uint64(i % 257)
		taken := i%3 != 0
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

func BenchmarkBTBLookupInsert(b *testing.B) {
	btb := bpred.NewBTB(512, 4)
	for i := 0; i < b.N; i++ {
		pc := uint64(i % 1031)
		if _, ok := btb.Lookup(pc); !ok {
			btb.Insert(pc, int(pc)+1)
		}
	}
}

func BenchmarkL1HitPath(b *testing.B) {
	d := dram.MustNew(dram.DefaultConfig())
	c := cache.MustNew(cache.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4, MSHRs: 8}, d)
	c.Access(0x1000, false, 0) // warm the line
	now := uint64(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = c.Access(0x1000, false, now)
	}
}

func BenchmarkCacheMissPath(b *testing.B) {
	d := dram.MustNew(dram.DefaultConfig())
	c := cache.MustNew(cache.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4, MSHRs: 8}, d)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh line every time: full miss + eviction path.
		now = c.Access(uint64(i)*64+1<<30, false, now)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.MustNew(dram.DefaultConfig())
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		now = d.Access(uint64(i%100000)*64, false, now)
	}
}

func BenchmarkHierarchyLoad(b *testing.B) {
	h := mem.MustNew(mem.DefaultConfig())
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		now = h.Load(uint64(i%64), uint64(i%100000)*8, now)
	}
}

func BenchmarkRenameCommit(b *testing.B) {
	rn := rename.MustNew(rename.DefaultConfig())
	d := &isa.DynInst{Op: isa.OpIntALU, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}
	for i := 0; i < b.N; i++ {
		_, _, rec, ok := rn.Rename(d)
		if !ok {
			b.Fatal("free list exhausted")
		}
		rn.Commit(rec)
	}
}

func BenchmarkMDPDispatch(b *testing.B) {
	m := mdp.New(mdp.DefaultConfig())
	m.TrainViolation(100, 200)
	for i := 0; i < b.N; i++ {
		_, ssid := m.StoreDispatched(100, uint64(i), mdp.NoIQ)
		m.LoadDispatched(200)
		m.StoreIssued(ssid, uint64(i))
	}
}

func BenchmarkFunctionalExecution(b *testing.B) {
	w := workload.Stream(workload.Params{Footprint: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.MustExecute(w.Program, 10_000)
	}
	b.SetBytes(10_000)
}

func BenchmarkTraceGenerationAllKernels(b *testing.B) {
	ws := workload.All(workload.Params{Footprint: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			prog.MustExecute(w.Program, 2_000)
		}
	}
}
