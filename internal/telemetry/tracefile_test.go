package telemetry

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	ballerino "repro"
)

// TestTraceFileJob: a job submitted with a TraceFile replays the recorded
// trace through the normal lifecycle, carries the same content key as the
// equivalent generated job (so the durable store serves the replay from
// the generated job's result), and a spec naming a missing or corrupt
// file is rejected at admission with the tracefile error stage.
func TestTraceFileJob(t *testing.T) {
	s, _ := newDurableTestServer(t, Options{Store: openStore(t, t.TempDir())})

	spec := JobSpec{Arch: "OoO", Workload: "store-load", Ops: 10_000}
	tr, err := ballerino.PrepareTrace(context.Background(), spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store-load.balltrace")
	if err := ballerino.ExportTrace(path, tr); err != nil {
		t.Fatal(err)
	}

	gen, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, gen.ID, JobDone)

	replay, err := s.Submit(JobSpec{Arch: "OoO", TraceFile: path})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, replay.ID, JobDone)
	if replay.Key() != gen.Key() {
		t.Errorf("replay key %q != generated key %q", replay.Key(), gen.Key())
	}
	v := replay.View(false)
	if !v.FromStore {
		t.Error("replay with the generated job's key was recomputed, not served from the store")
	}
	if v.Spec.Workload != "" || v.Spec.TraceFile != path {
		t.Errorf("replay spec mutated: %+v", v.Spec)
	}

	// Identity mismatches and unreadable files fail at admission.
	if _, err := s.Submit(JobSpec{Arch: "OoO", TraceFile: filepath.Join(t.TempDir(), "nope.balltrace")}); err == nil {
		t.Error("missing trace file accepted")
	} else {
		var se *ballerino.SimError
		if !errors.As(err, &se) || se.Stage != "tracefile" {
			t.Errorf("missing-file error = %v, want *SimError stage tracefile", err)
		}
	}
}
