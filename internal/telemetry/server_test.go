package telemetry

import (
	"repro/internal/topdown"

	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newTestServer builds and starts a server with a fast heartbeat, mounted
// on an httptest server. Both are torn down with the test.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := mustServer(t, Options{HeartbeatCycles: 500})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// mustServer builds a server (not yet started), failing the test on a
// constructor error.
func mustServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submitJob(t *testing.T, ts *httptest.Server, spec JobSpec) JobView {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return v
}

func waitForState(t *testing.T, s *Server, id int, want JobState) *Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job := s.Job(id)
		if job != nil && job.State() == want {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	job := s.Job(id)
	state := JobState("<missing>")
	if job != nil {
		state = job.State()
	}
	t.Fatalf("job %d did not reach %q (now %q)", id, want, state)
	return nil
}

// scrape fetches /metrics and returns every sample as name → value
// (labels stripped; the tests run one job at a time so names are unique).
func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " # {"); i >= 0 {
			line = line[:i] // strip OpenMetrics exemplar suffix
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			// keep bucket les distinct, drop other label sets
			if strings.Contains(name[i:], "le=") {
				name = name[:i] + "{" + extractLE(name[i:]) + "}"
			} else {
				name = name[:i]
			}
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

func extractLE(labels string) string {
	i := strings.Index(labels, `le="`)
	rest := labels[i+4:]
	j := strings.IndexByte(rest, '"')
	return `le="` + rest[:j] + `"`
}

// TestServedJobMetricsMatchManifest runs one job to completion and checks
// the acceptance criterion: /metrics is valid exposition whose final
// values equal the run's manifest stats, including the registry counters.
func TestServedJobMetricsMatchManifest(t *testing.T) {
	s, ts := newTestServer(t)
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	job := waitForState(t, s, v.ID, JobDone)
	m := job.Manifest()
	if m == nil {
		t.Fatal("done job has no manifest")
	}

	got := scrape(t, ts)
	for name, want := range map[string]float64{
		"ballserved_jobs_submitted_total": 1,
		"ballserved_jobs_completed_total": 1,
		"ballserved_jobs_failed_total":    0,
		"ballserved_job_done":             1,
		"ballserved_job_cycles":           float64(m.Stats.Cycles),
		"ballserved_job_committed":        float64(m.Stats.Committed),
		"ballserved_job_fetched":          float64(m.Stats.Fetched),
		"ballserved_job_issued":           float64(m.Stats.Issued),
		"ballserved_job_flushes":          float64(m.Stats.Flushes),
		"ballserved_job_squashed":         float64(m.Stats.Squashed),
		"ballserved_job_ipc":              m.Stats.IPC,
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}
	// Registry counters (including the sched.* set folded in at the end)
	// must appear under the ballerino_ prefix with manifest-exact values.
	if m.Metrics == nil || len(m.Metrics.Counters) == 0 {
		t.Fatal("manifest has no metrics dump")
	}
	checked := 0
	for name, want := range m.Metrics.Counters {
		pn := "ballerino_" + promTestName(name) + "_total"
		if gotV, ok := got[pn]; ok {
			checked++
			if gotV != float64(want) {
				t.Errorf("%s = %v, want %d", pn, gotV, want)
			}
		} else {
			t.Errorf("counter %q (%s) missing from exposition", name, pn)
		}
	}
	if checked == 0 {
		t.Error("no registry counters exposed")
	}
	// Histogram exposition: every registry histogram contributes a _count
	// equal to its sample count.
	for _, h := range m.Metrics.Histograms {
		pn := "ballerino_" + promTestName(h.Name) + "_count"
		if got[pn] != float64(h.N) {
			t.Errorf("%s = %v, want %d", pn, got[pn], h.N)
		}
	}
}

// promTestName mirrors the exposition's name sanitisation for lookups.
func promTestName(name string) string {
	var b strings.Builder
	under := false
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0)
		switch {
		case ok:
			b.WriteRune(c)
			under = c == '_'
		case !under:
			b.WriteByte('_')
			under = true
		}
	}
	return b.String()
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	data  string
}

// readSSE parses frames off an SSE stream until stop returns true or the
// stream ends.
func readSSE(t *testing.T, r io.Reader, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				events = append(events, cur)
				if stop(cur) {
					return events
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, ":"):
			// comment
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		default:
			t.Errorf("unexpected SSE line %q", line)
		}
	}
	return events
}

// TestSSEStream subscribes before submitting a job and verifies the live
// stream: well-formed frames, per-heartbeat interval events whose
// committed deltas sum to the manifest total, and the final job
// transition to done.
func TestSSEStream(t *testing.T) {
	s, ts := newTestServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}

	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 20_000})

	done := func(e sseEvent) bool {
		if e.event != "job" {
			return false
		}
		var jv JobView
		if err := json.Unmarshal([]byte(e.data), &jv); err != nil {
			t.Fatalf("job event data: %v", err)
		}
		return jv.ID == v.ID && (jv.State == JobDone || jv.State == JobFailed)
	}
	events := readSSE(t, resp.Body, done)

	var intervals int
	var committed uint64
	for _, e := range events {
		switch e.event {
		case "interval":
			var iv streamInterval
			if err := json.Unmarshal([]byte(e.data), &iv); err != nil {
				t.Fatalf("interval event data: %v", err)
			}
			if iv.Job != v.ID {
				t.Errorf("interval for job %d, want %d", iv.Job, v.ID)
			}
			intervals++
			committed += iv.Committed
		case "job":
		default:
			t.Errorf("unexpected SSE event %q", e.event)
		}
	}
	if intervals == 0 {
		t.Fatal("no interval events streamed")
	}
	job := waitForState(t, s, v.ID, JobDone)
	m := job.Manifest()
	if committed != m.Stats.Committed {
		t.Errorf("streamed committed sum = %d, manifest = %d", committed, m.Stats.Committed)
	}
	if intervals != m.Intervals {
		t.Errorf("streamed %d intervals, manifest recorded %d", intervals, m.Intervals)
	}
}

// TestCancelRunningJob cancels a long job over HTTP and expects the
// cancelled terminal state via the pipeline's cooperative context.
func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t)
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 5_000_000})
	waitForState(t, s, v.ID, JobRunning)
	resp, err := http.Post(ts.URL+fmt.Sprintf("/jobs/%d/cancel", v.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	job := waitForState(t, s, v.ID, JobCancelled)
	if m := job.Manifest(); m != nil {
		t.Error("cancelled job has a manifest")
	}
	if got := scrape(t, ts)["ballserved_jobs_cancelled_total"]; got != 1 {
		t.Errorf("cancelled counter = %v, want 1", got)
	}
}

// TestHealthReadyAndShutdown: /healthz is always live, /readyz tracks the
// accepting state, and Shutdown cancels the in-flight job and refuses new
// submissions.
func TestHealthReadyAndShutdown(t *testing.T) {
	s := mustServer(t, Options{HeartbeatCycles: 500})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != 200 {
		t.Errorf("healthz before start = %d", got)
	}
	if got := get("/readyz"); got != 503 {
		t.Errorf("readyz before start = %d, want 503", got)
	}
	s.Start()
	if got := get("/readyz"); got != 200 {
		t.Errorf("readyz after start = %d", got)
	}

	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 5_000_000})
	waitForState(t, s, v.ID, JobRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := get("/readyz"); got != 503 {
		t.Errorf("readyz after shutdown = %d, want 503", got)
	}
	if st := s.Job(v.ID).State(); st != JobCancelled {
		t.Errorf("in-flight job state after shutdown = %q, want cancelled", st)
	}
	if _, err := s.Submit(JobSpec{Arch: "Ballerino", Workload: "stream"}); err == nil {
		t.Error("submit after shutdown succeeded")
	}
}

// TestSubmitValidation: malformed JSON and invalid configs are 400s with
// an error body, and never reach the queue.
func TestSubmitValidation(t *testing.T) {
	s, ts := newTestServer(t)
	for _, body := range []string{
		`{"arch": "NoSuchArch"}`,
		`{"arch": "Ballerino", "workload": "no-such-kernel"}`,
		`{"arch": "Ballerino", "width": 3}`,
		`{not json`,
		`{"unknown_field": 1}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	if got := s.submitted.Load(); got != 0 {
		t.Errorf("invalid submissions reached the queue: %d", got)
	}
	if got := get404(t, ts, "/jobs/99"); got != http.StatusNotFound {
		t.Errorf("GET /jobs/99 = %d, want 404", got)
	}
}

func get404(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPlaylistJobsRunInOrder: jobs submitted back-to-back (the playlist
// shape) execute sequentially, each leaving a manifest.
func TestPlaylistJobsRunInOrder(t *testing.T) {
	s, ts := newTestServer(t)
	specs := []JobSpec{
		{Arch: "CASINO", Workload: "store-load", Ops: 5_000},
		{Arch: "Ballerino", Workload: "store-load", Ops: 5_000},
	}
	var ids []int
	for _, sp := range specs {
		ids = append(ids, submitJob(t, ts, sp).ID)
	}
	for i, id := range ids {
		job := waitForState(t, s, id, JobDone)
		m := job.Manifest()
		if m == nil || m.Sim.Arch != specs[i].Arch {
			t.Fatalf("job %d manifest arch = %+v, want %s", id, m, specs[i].Arch)
		}
	}
	if got := scrape(t, ts)["ballserved_jobs_completed_total"]; got != 2 {
		t.Errorf("completed = %v, want 2", got)
	}
}

// TestMultiWorkerServer: with Workers > 1 the queue drains concurrently,
// every job still reaches a terminal state with its own manifest, and
// jobs over the same kernel share one cached trace (misses == distinct
// kernels, the rest hits or singleflight joins).
func TestMultiWorkerServer(t *testing.T) {
	s := mustServer(t, Options{HeartbeatCycles: 500, Workers: 4})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	specs := []JobSpec{
		{Arch: "InO", Workload: "store-load", Ops: 8_000},
		{Arch: "OoO", Workload: "store-load", Ops: 8_000},
		{Arch: "CASINO", Workload: "store-load", Ops: 8_000},
		{Arch: "Ballerino", Workload: "store-load", Ops: 8_000},
		{Arch: "InO", Workload: "stream", Ops: 8_000},
		{Arch: "Ballerino", Workload: "stream", Ops: 8_000},
	}
	var ids []int
	for _, sp := range specs {
		ids = append(ids, submitJob(t, ts, sp).ID)
	}
	for i, id := range ids {
		job := waitForState(t, s, id, JobDone)
		m := job.Manifest()
		if m == nil || m.Sim.Arch != specs[i].Arch || m.Sim.Workload != specs[i].Workload {
			t.Fatalf("job %d manifest = %+v, want %s/%s", id, m, specs[i].Arch, specs[i].Workload)
		}
	}

	mets := scrape(t, ts)
	if got := mets["ballserved_jobs_completed_total"]; got != float64(len(specs)) {
		t.Errorf("completed = %v, want %d", got, len(specs))
	}
	if got := mets["ballserved_workers"]; got != 4 {
		t.Errorf("workers gauge = %v, want 4", got)
	}
	if got := mets["ballserved_trace_cache_misses_total"]; got != 2 {
		t.Errorf("trace generations = %v, want 2 (one per distinct kernel)", got)
	}
	hits := mets["ballserved_trace_cache_hits_total"] + mets["ballserved_trace_cache_joins_total"]
	if hits != float64(len(specs))-2 {
		t.Errorf("hits+joins = %v, want %d", hits, len(specs)-2)
	}
}

// TestTopdownJobTelemetry runs a Topdown job to completion and checks the
// cycle accounting surfaces end to end: the manifest carries the report,
// the job view exposes a conserved per-category slot map, and /metrics
// emits one ballerino_topdown_slots_total series per category with the
// manifest's final values.
func TestTopdownJobTelemetry(t *testing.T) {
	s, ts := newTestServer(t)
	v := submitJob(t, ts, JobSpec{Arch: "OoO", Workload: "stream", Ops: 10_000, Topdown: true})
	job := waitForState(t, s, v.ID, JobDone)
	m := job.Manifest()
	if m == nil || m.Topdown == nil {
		t.Fatal("done topdown job has no topdown report in its manifest")
	}

	view := job.View(false)
	if view.Topdown == nil {
		t.Fatal("job view has no topdown tally")
	}
	var sum uint64
	for i, name := range topdown.Names() {
		c, ok := view.Topdown[name]
		if !ok {
			t.Fatalf("job view topdown missing category %q", name)
		}
		if c != m.Topdown.Counts[i] {
			t.Errorf("view %s = %d, want manifest's %d", name, c, m.Topdown.Counts[i])
		}
		sum += c
	}
	if sum != m.Topdown.TotalSlots {
		t.Errorf("view slots sum to %d, want width × cycles = %d", sum, m.Topdown.TotalSlots)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for i, name := range topdown.Names() {
		want := fmt.Sprintf("ballerino_topdown_slots_total{arch=\"OoO\",category=%q,job=\"%d\",workload=\"stream\"} %d",
			name, v.ID, m.Topdown.Counts[i])
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing series %q", want)
		}
	}

	// A job without accounting must not grow a topdown tally.
	v2 := submitJob(t, ts, JobSpec{Arch: "OoO", Workload: "stream", Ops: 10_000})
	plain := waitForState(t, s, v2.ID, JobDone)
	if pv := plain.View(false); pv.Topdown != nil {
		t.Errorf("non-topdown job view has topdown tally %v", pv.Topdown)
	}
}
