package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/jobstore"
)

// newDurableTestServer builds and starts a server with arbitrary options,
// mounted on an httptest server; both tear down with the test.
func newDurableTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.HeartbeatCycles == 0 {
		opts.HeartbeatCycles = 500
	}
	s := mustServer(t, opts)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func openStore(t *testing.T, dir string) *jobstore.Store {
	t.Helper()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRetryBackoffToSuccess: a chaos-failed first attempt retries with
// backoff and the job still completes, with the attempt history visible
// in the job view and the retry counter in /metrics.
func TestRetryBackoffToSuccess(t *testing.T) {
	s, ts := newDurableTestServer(t, Options{
		ChaosSpec:      "failn=1",
		MaxRetries:     2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
	})
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	job := waitForState(t, s, v.ID, JobDone)
	if got := job.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2 (chaos-failed once, then succeeded)", got)
	}
	if job.Manifest() == nil {
		t.Error("retried job has no manifest")
	}
	mets := scrape(t, ts)
	if got := mets["ballserved_job_retries_total"]; got != 1 {
		t.Errorf("retries_total = %v, want 1", got)
	}
	if got := mets["ballserved_jobs_completed_total"]; got != 1 {
		t.Errorf("completed_total = %v, want 1", got)
	}
}

// TestDeadLetterParkAndRevive: a job that exhausts its retry budget parks
// in the dead-letter tier (visible over GET /deadletter and the gauge),
// and POST /jobs/{id}/retry revives it to run again.
func TestDeadLetterParkAndRevive(t *testing.T) {
	s, ts := newDurableTestServer(t, Options{
		ChaosSpec:      "failn=2", // both budgeted attempts fail; the revived one runs clean
		MaxRetries:     1,
		RetryBaseDelay: time.Millisecond,
	})
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	job := waitForState(t, s, v.ID, JobParked)
	if got := job.Attempts(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}

	resp, err := http.Get(ts.URL + "/deadletter")
	if err != nil {
		t.Fatal(err)
	}
	var parked []JobView
	if err := json.NewDecoder(resp.Body).Decode(&parked); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(parked) != 1 || parked[0].ID != v.ID || parked[0].State != JobParked {
		t.Fatalf("deadletter = %+v, want job %d parked", parked, v.ID)
	}
	if parked[0].Error == "" || parked[0].Stage == "" {
		t.Errorf("parked view lacks failure detail: %+v", parked[0])
	}
	if got := scrape(t, ts)["ballserved_deadletter_jobs"]; got != 1 {
		t.Errorf("deadletter gauge = %v, want 1", got)
	}

	// Reviving a non-parked job is a conflict.
	if code := postStatus(t, ts, fmt.Sprintf("/jobs/%d/retry", 999)); code != http.StatusNotFound {
		t.Errorf("retry of unknown job = %d, want 404", code)
	}
	if code := postStatus(t, ts, fmt.Sprintf("/jobs/%d/retry", v.ID)); code != http.StatusOK {
		t.Fatalf("retry of parked job = %d, want 200", code)
	}
	job = waitForState(t, s, v.ID, JobDone)
	if job.Manifest() == nil {
		t.Error("revived job has no manifest")
	}
	if code := postStatus(t, ts, fmt.Sprintf("/jobs/%d/retry", v.ID)); code != http.StatusConflict {
		t.Errorf("retry of done job = %d, want 409", code)
	}
	if got := scrape(t, ts)["ballserved_deadletter_jobs"]; got != 0 {
		t.Errorf("deadletter gauge after revival = %v, want 0", got)
	}
}

func postStatus(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestJobTimeoutStageSurfaced: a job killed by -job-timeout fails its
// attempt with the typed Stage "timeout" — distinct from caller
// cancellation — and the stage is visible in the job-status API.
func TestJobTimeoutStageSurfaced(t *testing.T) {
	s, ts := newDurableTestServer(t, Options{JobTimeout: 30 * time.Millisecond})
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 5_000_000})
	job := waitForState(t, s, v.ID, JobFailed)
	view := job.View(false)
	if view.Stage != "timeout" {
		t.Errorf("stage = %q, want \"timeout\"", view.Stage)
	}

	resp, err := http.Get(ts.URL + fmt.Sprintf("/jobs/%d", v.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got JobView
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != JobFailed || got.Stage != "timeout" {
		t.Errorf("HTTP view = state %q stage %q, want failed/timeout", got.State, got.Stage)
	}
	// A timed-out job is failed, not cancelled: the counters must agree.
	mets := scrape(t, ts)
	if mets["ballserved_jobs_failed_total"] != 1 || mets["ballserved_jobs_cancelled_total"] != 0 {
		t.Errorf("failed/cancelled = %v/%v, want 1/0",
			mets["ballserved_jobs_failed_total"], mets["ballserved_jobs_cancelled_total"])
	}
}

// TestAdmissionControlShedsWith429: submissions beyond QueueDepth are
// shed with a typed SaturatedError, rendered over HTTP as 429 with a
// Retry-After, while /readyz degrades to 503 — and acceptance resumes
// once the backlog drains.
func TestAdmissionControlShedsWith429(t *testing.T) {
	s, ts := newDurableTestServer(t, Options{QueueDepth: 1})
	// Occupy the single worker, then fill the single queue slot.
	running := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 5_000_000})
	waitForState(t, s, running.ID, JobRunning)
	queued := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 5_000_001})

	body, _ := json.Marshal(JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 5_000_002})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if _, err := s.Submit(JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 5_000_003}); err == nil {
		t.Error("direct Submit while saturated succeeded")
	} else if _, ok := err.(*SaturatedError); !ok {
		t.Errorf("direct Submit error = %T, want *SaturatedError", err)
	}

	rd, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rd.Body)
	rd.Body.Close()
	if rd.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while saturated = %d, want 503", rd.StatusCode)
	}
	mets := scrape(t, ts)
	if got := mets["ballserved_jobs_shed_total"]; got != 2 {
		t.Errorf("shed_total = %v, want 2", got)
	}
	if got := mets["ballserved_saturated"]; got != 1 {
		t.Errorf("saturated gauge = %v, want 1", got)
	}

	// Drain the backlog. A cancelled queued job frees its admission slot
	// only when a worker pops (and discards) it, so the running job must
	// be cancelled too for the queue to clear.
	if code := postStatus(t, ts, fmt.Sprintf("/jobs/%d/cancel", queued.ID)); code != http.StatusOK {
		t.Fatalf("cancel queued = %d", code)
	}
	if code := postStatus(t, ts, fmt.Sprintf("/jobs/%d/cancel", running.ID)); code != http.StatusOK {
		t.Fatalf("cancel running = %d", code)
	}
	deadline := time.Now().Add(20 * time.Second)
	for s.saturated() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.saturated() {
		t.Fatal("still saturated after draining the queue")
	}
}

// TestStoreServesContentAddressedResult: resubmitting a spec whose
// config+trace content key already has a stored result completes
// immediately from the store, byte-identically, without recomputation.
func TestStoreServesContentAddressedResult(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurableTestServer(t, Options{Store: openStore(t, dir)})
	spec := JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000}
	first := submitJob(t, ts, spec)
	j1 := waitForState(t, s, first.ID, JobDone)

	second := submitJob(t, ts, spec)
	if second.State != JobDone || !second.FromStore {
		t.Fatalf("resubmission = state %q fromStore %t, want done from store", second.State, second.FromStore)
	}
	j2 := s.Job(second.ID)
	c1, err := j1.Manifest().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := j2.Manifest().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Error("store-served manifest differs from the computed one")
	}
	mets := scrape(t, ts)
	if got := mets["ballserved_store_result_hits_total"]; got != 1 {
		t.Errorf("store hits = %v, want 1", got)
	}
	if got := mets["ballserved_store_results"]; got != 1 {
		t.Errorf("store results = %v, want 1", got)
	}
}

// TestRecoveryResumesUnfinishedJobs: a graceful shutdown mid-run leaves
// the running job durably unfinished; a new server over the same store
// re-enqueues it (flagged as resumed), runs it to completion, and keeps
// the finished job's stored result.
func TestRecoveryResumesUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	srvA := mustServer(t, Options{HeartbeatCycles: 500, Store: openStore(t, dir)})
	srvA.Start()
	quick, err := srvA.Submit(JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	waitForStateDirect(t, srvA, quick.ID, JobDone)
	long, err := srvA.Submit(JobSpec{Arch: "Ballerino", Workload: "stream", Ops: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	waitForStateDirect(t, srvA, long.ID, JobRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s, ts := newDurableTestServer(t, Options{Store: openStore(t, dir)})
	recovered := s.Job(long.ID)
	if recovered == nil {
		t.Fatalf("job %d missing after recovery", long.ID)
	}
	job := waitForState(t, s, long.ID, JobDone)
	if view := job.View(false); !view.Resumed {
		t.Errorf("recovered job not flagged resumed: %+v", view)
	}
	if job.Manifest() == nil {
		t.Error("resumed job has no manifest")
	}
	if done := s.Job(quick.ID); done == nil || done.State() != JobDone || !done.View(false).FromStore {
		t.Errorf("completed job not recovered from store: %+v", done)
	}
	mets := scrape(t, ts)
	if got := mets["ballserved_jobs_resumed_total"]; got != 1 {
		t.Errorf("resumed_total = %v, want 1", got)
	}
	if got := mets["ballserved_recovery_replay_seconds"]; got <= 0 {
		t.Errorf("recovery_replay_seconds = %v, want > 0", got)
	}
	// New submissions must not collide with recovered IDs.
	next, err := s.Submit(JobSpec{Arch: "CASINO", Workload: "store-load", Ops: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= long.ID {
		t.Errorf("post-recovery job ID %d not above recovered max %d", next.ID, long.ID)
	}
	waitForState(t, s, next.ID, JobDone)
}

// waitForStateDirect is waitForState for servers without an httptest
// wrapper.
func waitForStateDirect(t *testing.T, s *Server, id int, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if job := s.Job(id); job != nil && job.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %d did not reach %q", id, want)
}

// TestRecoveryParksExhaustedJobs: a job whose durable failure history
// already exceeds the retry budget is parked by recovery, not rerun —
// the dead-letter tier survives restarts.
func TestRecoveryParksExhaustedJobs(t *testing.T) {
	dir := t.TempDir()
	srvA := mustServer(t, Options{
		Store:          openStore(t, dir),
		ChaosSpec:      "failn=10",
		MaxRetries:     1,
		RetryBaseDelay: time.Millisecond,
	})
	srvA.Start()
	v, err := srvA.Submit(JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	waitForStateDirect(t, srvA, v.ID, JobParked)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s, _ := newDurableTestServer(t, Options{Store: openStore(t, dir), MaxRetries: 1})
	job := s.Job(v.ID)
	if job == nil || job.State() != JobParked {
		t.Fatalf("recovered job = %+v, want parked", job)
	}
}

// TestChaosSpecValidation: malformed chaos directives fail construction.
func TestChaosSpecValidation(t *testing.T) {
	for _, spec := range []string{"fail=2", "fail=x", "seed=", "nope=1", "seed"} {
		if _, err := NewServer(Options{ChaosSpec: spec}); err == nil {
			t.Errorf("chaos spec %q accepted", spec)
		}
	}
	if _, err := NewServer(Options{ChaosSpec: "seed=42, fail=0.5, failn=3"}); err != nil {
		t.Errorf("valid chaos spec rejected: %v", err)
	}
}
