package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/topdown"
)

// handleMetrics renders the Prometheus exposition: service counters, the
// per-job gauges of the current (or most recent) job, and that job's full
// metrics-registry dump under the `ballerino_` prefix. Everything is
// rendered from locked snapshots — no handler ever touches live
// simulation state.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer

	for _, c := range []struct {
		name, help string
		value      uint64
	}{
		{"ballserved_jobs_submitted_total", "Jobs accepted into the queue.", s.submitted.Load()},
		{"ballserved_jobs_completed_total", "Jobs that finished successfully.", s.completed.Load()},
		{"ballserved_jobs_failed_total", "Jobs that ended in a simulation error.", s.failed.Load()},
		{"ballserved_jobs_cancelled_total", "Jobs cancelled before or during execution.", s.cancelled.Load()},
		{"ballserved_jobs_shed_total", "Submissions refused by admission control (HTTP 429).", s.shed.Load()},
		{"ballserved_job_retries_total", "Failed attempts re-enqueued after backoff.", s.retries.Load()},
		{"ballserved_jobs_resumed_total", "Jobs re-enqueued by crash-recovery replay.", s.resumed.Load()},
		{"ballserved_store_result_hits_total", "Results served from the durable store without recomputation.", s.storeHits.Load()},
		{"ballserved_store_errors_total", "Durable-store append/decode failures (degraded durability).", s.storeErrors.Load()},
		{"ballserved_stream_dropped_total", "SSE frames dropped on slow /stream subscribers.", s.hub.drops()},
	} {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}

	s.mu.Lock()
	live := s.live
	running := len(s.run)
	deadletter := 0
	for _, j := range s.order {
		if j.State() == JobParked {
			deadletter++
		}
	}
	s.mu.Unlock()

	tc := s.traces.Stats()
	storeResults := 0
	if s.store != nil {
		storeResults = s.store.Results()
	}
	gauges := []obs.PromGauge{
		{Name: "ballserved_ready", Help: "1 when the server accepts jobs.", Value: b2f(s.ready.Load())},
		{Name: "ballserved_jobs_running", Help: "Jobs currently executing.", Value: float64(running)},
		{Name: "ballserved_jobs_queued", Help: "Jobs waiting in the queue.", Value: float64(s.q.len())},
		{Name: "ballserved_queue_capacity", Help: "Admission-control bound on pending jobs (0 = unbounded).", Value: float64(max(s.opts.QueueDepth, 0))},
		{Name: "ballserved_saturated", Help: "1 while admission control is shedding submissions.", Value: b2f(s.saturated())},
		{Name: "ballserved_deadletter_jobs", Help: "Jobs parked in the dead-letter tier (retries exhausted).", Value: float64(deadletter)},
		{Name: "ballserved_recovery_replay_seconds", Help: "Wall time of the last crash-recovery WAL replay.", Value: math.Float64frombits(s.replaySeconds.Load())},
		{Name: "ballserved_store_results", Help: "Content-addressed results resident in the durable store.", Value: float64(storeResults)},
		{Name: "ballserved_workers", Help: "Concurrent job workers.", Value: float64(s.opts.Workers)},
		{Name: "ballserved_stream_subscribers", Help: "Connected /stream clients.", Value: float64(s.hub.count())},
		{Name: "ballserved_trace_cache_hits_total", Help: "Trace-cache lookups served from a resident trace.", Value: float64(tc.Hits)},
		{Name: "ballserved_trace_cache_misses_total", Help: "Trace-cache lookups that ran the interpreter.", Value: float64(tc.Misses)},
		{Name: "ballserved_trace_cache_joins_total", Help: "Trace-cache lookups that joined an in-flight generation.", Value: float64(tc.Joins)},
		{Name: "ballserved_trace_cache_entries", Help: "Traces resident in the cache.", Value: float64(tc.Entries)},
		{Name: "ballserved_trace_cache_bytes", Help: "Bytes of resident traces.", Value: float64(tc.BytesUsed)},
	}

	var dump *obs.MetricsDump
	var labels obs.PromLabels
	var td [topdown.NumCategories]uint64
	tdOn := false
	if live != nil {
		labels = obs.PromLabels{
			"job":      strconv.Itoa(live.jobID),
			"arch":     live.arch,
			"workload": live.workload,
		}
		live.mu.Lock()
		ipc := 0.0
		if live.done {
			ipc = live.finalIPC
		} else if live.cycles > 0 {
			ipc = float64(live.committed) / float64(live.cycles)
		}
		jg := []obs.PromGauge{
			{Name: "ballserved_job_ipc", Help: "Committed μops per cycle (final value once the job is done).", Value: ipc},
			{Name: "ballserved_job_interval_ipc", Help: "IPC of the most recent heartbeat interval.", Value: live.last.IPC()},
			{Name: "ballserved_job_cycles", Help: "Simulated cycles in the measured region.", Value: float64(live.cycles)},
			{Name: "ballserved_job_committed", Help: "Committed μops.", Value: float64(live.committed)},
			{Name: "ballserved_job_fetched", Help: "Fetched μops.", Value: float64(live.fetched)},
			{Name: "ballserved_job_issued", Help: "Issued μops.", Value: float64(live.issued)},
			{Name: "ballserved_job_flushes", Help: "Pipeline flushes.", Value: float64(live.flushes)},
			{Name: "ballserved_job_squashed", Help: "Squashed μops.", Value: float64(live.squashed)},
			{Name: "ballserved_job_dispatch_stalls", Help: "Dispatch stall cycles.", Value: float64(live.stalls)},
			{Name: "ballserved_job_mispredicts", Help: "Branch mispredicts.", Value: float64(live.mispredicts)},
			{Name: "ballserved_job_violations", Help: "Memory order violations.", Value: float64(live.violations)},
			{Name: "ballserved_job_sched_occupancy", Help: "Scheduler occupancy at the last heartbeat.", Value: float64(live.last.SchedOccupancy)},
			{Name: "ballserved_job_lq_pressure", Help: "Load-queue entries at the last heartbeat.", Value: float64(live.last.LQ)},
			{Name: "ballserved_job_sq_pressure", Help: "Store-queue entries at the last heartbeat.", Value: float64(live.last.SQ)},
			{Name: "ballserved_job_piq_share_rate", Help: "Fraction of dispatched μops allocated into a shared P-IQ partition.", Value: live.events.shareRate()},
			{Name: "ballserved_job_intervals", Help: "Heartbeat intervals observed.", Value: float64(live.intervals)},
			{Name: "ballserved_job_done", Help: "1 once the job reached a terminal state and the gauges are final.", Value: b2f(live.done)},
		}
		dump = live.dump
		td = live.topdown
		tdOn = live.topdownOn
		live.mu.Unlock()
		for i := range jg {
			jg[i].Labels = labels
		}
		gauges = append(gauges, jg...)
	}

	obs.WritePromGauges(&b, gauges)
	if tdOn {
		// Per-category issue-slot attribution of the live job: the series
		// sum to width × cycles by the engine's conservation invariant, so
		// `category / sum` is directly the slot share.
		const name = "ballerino_topdown_slots_total"
		fmt.Fprintf(&b, "# HELP %s Issue slots attributed to each top-down category.\n# TYPE %s counter\n", name, name)
		for i, cat := range topdown.Names() {
			fmt.Fprintf(&b, "%s{arch=%q,category=%q,job=%q,workload=%q} %d\n",
				name, labels["arch"], cat, labels["job"], labels["workload"], td[i])
		}
	}
	// Lifecycle latency distributions, buckets annotated with exemplar
	// trace IDs (OpenMetrics syntax; plain-Prometheus scrapers treat the
	// ` # {...}` suffix as a comment).
	obs.WritePromExemplarHists(&b, []*obs.ExemplarHist{
		s.waitHist, s.serviceHist, s.e2eHist, s.fsyncHist, s.replayHist, s.depthHist,
	}, nil)
	if dump != nil {
		obs.WritePrometheus(&b, "ballerino_", dump, labels)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
