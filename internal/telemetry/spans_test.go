package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/span"
)

// getSpans fetches one job's span tree in the requested format, returning
// the status code and raw body.
func getSpans(t *testing.T, url string, id int, format string) (int, []byte) {
	t.Helper()
	u := fmt.Sprintf("%s/jobs/%d/spans", url, id)
	if format != "" {
		u += "?format=" + format
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// checkTreeWellFormed asserts the structural invariants every finished
// job's span tree must satisfy: exactly one root named "job", every
// parent reference resolves, every span is closed with start ≤ end, and
// no child starts before its parent.
func checkTreeWellFormed(t *testing.T, tree *span.Tree) {
	t.Helper()
	if tree == nil || len(tree.Spans) == 0 {
		t.Fatal("empty span tree")
	}
	byID := map[span.ID]span.View{}
	roots := 0
	for _, v := range tree.Spans {
		byID[v.ID] = v
	}
	for _, v := range tree.Spans {
		if v.Parent == 0 {
			roots++
			if v.Name != "job" {
				t.Errorf("root span named %q, want \"job\"", v.Name)
			}
		} else if _, ok := byID[v.Parent]; !ok {
			t.Errorf("span %d (%s) has dangling parent %d", v.ID, v.Name, v.Parent)
		}
		if v.Open {
			t.Errorf("span %d (%s) still open in a terminal job's trace", v.ID, v.Name)
			continue
		}
		if v.End.Before(v.Start) {
			t.Errorf("span %d (%s) ends %s before it starts %s", v.ID, v.Name, v.End, v.Start)
		}
		if p, ok := byID[v.Parent]; ok && v.Start.Before(p.Start) {
			t.Errorf("span %d (%s) starts before its parent %s", v.ID, v.Name, p.Name)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want 1", roots)
	}
}

// countSpans returns how many spans in the tree carry the given name.
func countSpans(tree *span.Tree, name string) int {
	n := 0
	for _, v := range tree.Spans {
		if v.Name == name {
			n++
		}
	}
	return n
}

// TestLifecycleSpansWellFormedUnderChaos drives a 4-worker server with
// deterministic chaos (the first three attempts fail and retry) and
// checks every finished job's span tree: well-formed, one attempt span
// per started attempt, a backoff span per retry, and a closed queue.wait
// preceding each attempt.
func TestLifecycleSpansWellFormedUnderChaos(t *testing.T) {
	s, ts := newDurableTestServer(t, Options{
		Workers:        4,
		MaxRetries:     3,
		RetryBaseDelay: 5 * time.Millisecond,
		ChaosSpec:      "seed=7,failn=3",
		Tracer:         span.NewTracer(0),
	})
	const jobs = 6
	views := make([]JobView, 0, jobs)
	for i := 0; i < jobs; i++ {
		views = append(views, submitJob(t, ts, JobSpec{
			Arch: "Ballerino", Workload: "store-load", Ops: 8_000 + i,
		}))
	}
	totalAttempts, totalBackoffs := 0, 0
	for _, v := range views {
		job := waitForState(t, s, v.ID, JobDone)
		tree := s.tracer.Tree(v.TraceID)
		checkTreeWellFormed(t, tree)
		attempts := countSpans(tree, "attempt")
		if got := job.Attempts(); attempts != got {
			t.Errorf("job %d: %d attempt spans, %d attempts started", v.ID, attempts, got)
		}
		backoffs := countSpans(tree, "backoff")
		if backoffs != attempts-1 {
			t.Errorf("job %d: %d backoff spans for %d attempts", v.ID, backoffs, attempts)
		}
		if n := countSpans(tree, "queue.wait"); n != attempts {
			t.Errorf("job %d: %d queue.wait spans for %d attempts", v.ID, n, attempts)
		}
		if n := countSpans(tree, "submit"); n != 1 {
			t.Errorf("job %d: %d submit spans", v.ID, n)
		}
		if n := countSpans(tree, "result.store"); n != 1 {
			t.Errorf("job %d: %d result.store spans", v.ID, n)
		}
		totalAttempts += attempts
		totalBackoffs += backoffs
	}
	if totalAttempts != jobs+3 {
		t.Errorf("chaos failn=3: %d attempts across %d jobs, want %d", totalAttempts, jobs, jobs+3)
	}
	if totalBackoffs != 3 {
		t.Errorf("chaos failn=3: %d backoff spans, want 3", totalBackoffs)
	}
}

// TestSpansEndpointFormats exercises GET /jobs/{id}/spans in all three
// renderings plus its error paths.
func TestSpansEndpointFormats(t *testing.T) {
	s, ts := newDurableTestServer(t, Options{
		Store:  openStore(t, t.TempDir()),
		Tracer: span.NewTracer(0),
	})
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	waitForState(t, s, v.ID, JobDone)
	if v.TraceID == "" {
		t.Fatal("submit response has no trace_id")
	}

	code, body := getSpans(t, ts.URL, v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("json spans: status %d: %s", code, body)
	}
	var tree span.Tree
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatalf("json spans: %v", err)
	}
	if tree.TraceID != v.TraceID {
		t.Errorf("tree trace_id %q, want %q", tree.TraceID, v.TraceID)
	}
	checkTreeWellFormed(t, &tree)
	// The simulation internals must have recorded themselves as children
	// of the attempt through the context-threaded span.
	for _, name := range []string{"cache.lookup", "trace.generate", "sim.run", "wal.append"} {
		if countSpans(&tree, name) == 0 {
			t.Errorf("trace missing %q span", name)
		}
	}

	code, body = getSpans(t, ts.URL, v.ID, "text")
	if code != http.StatusOK || !strings.HasPrefix(string(body), "trace "+v.TraceID) {
		t.Fatalf("text spans: status %d, body %q", code, body[:min(len(body), 80)])
	}

	code, body = getSpans(t, ts.URL, v.ID, "chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome spans: status %d", code)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil || len(chrome.TraceEvents) == 0 {
		t.Fatalf("chrome spans: %v (%d events)", err, len(chrome.TraceEvents))
	}

	if code, _ = getSpans(t, ts.URL, v.ID, "bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus format: status %d, want 400", code)
	}
	if code, _ = getSpans(t, ts.URL, 999, ""); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

// TestSpansEndpointTracingOff: without a tracer the endpoint 404s rather
// than serving an empty tree.
func TestSpansEndpointTracingOff(t *testing.T) {
	s, ts := newTestServer(t)
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	waitForState(t, s, v.ID, JobDone)
	if code, body := getSpans(t, ts.URL, v.ID, ""); code != http.StatusNotFound {
		t.Fatalf("tracing off: status %d, body %s", code, body)
	}
}

// TestMetricsLatencyHistograms: the lifecycle histograms appear on
// /metrics with exemplar trace IDs on populated buckets, and the
// exposition still parses for an exemplar-unaware scraper.
func TestMetricsLatencyHistograms(t *testing.T) {
	dir := t.TempDir()
	s, ts := newDurableTestServer(t, Options{
		Store:  openStore(t, dir),
		Tracer: span.NewTracer(0),
	})
	v := submitJob(t, ts, JobSpec{Arch: "Ballerino", Workload: "store-load", Ops: 10_000})
	waitForState(t, s, v.ID, JobDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, name := range []string{
		"ballserved_queue_wait_seconds", "ballserved_job_attempt_seconds",
		"ballserved_job_e2e_seconds", "ballserved_wal_fsync_seconds",
		"ballserved_replay_duration_seconds", "ballserved_queue_depth_at_submit",
	} {
		if !strings.Contains(text, "# TYPE "+name+" histogram") {
			t.Errorf("/metrics missing histogram %s", name)
		}
	}
	if want := ` # {trace_id="` + v.TraceID + `"}`; !strings.Contains(text, want) {
		t.Errorf("/metrics has no exemplar carrying trace %s", v.TraceID)
	}

	// The plain scraper (which strips exemplars) must still parse every
	// line and see one observation in each lifecycle histogram.
	m := scrape(t, ts)
	for _, name := range []string{
		"ballserved_queue_wait_seconds_count", "ballserved_job_attempt_seconds_count",
		"ballserved_job_e2e_seconds_count", "ballserved_queue_depth_at_submit_count",
	} {
		if m[name] != 1 {
			t.Errorf("%s = %v, want 1", name, m[name])
		}
	}
	if m["ballserved_wal_fsync_seconds_count"] < 3 {
		t.Errorf("fsync histogram count = %v, want >= 3 (submitted/started/completed)",
			m["ballserved_wal_fsync_seconds_count"])
	}
	if m["ballserved_stream_dropped_total"] != 0 {
		t.Errorf("stream drops = %v with no subscribers", m["ballserved_stream_dropped_total"])
	}
}

// TestHubDropAccounting: a subscriber that never drains starts dropping
// frames once its buffer fills; the hub counts every drop and warns once
// per client with its ID.
func TestHubDropAccounting(t *testing.T) {
	var logBuf bytes.Buffer
	h := newHub(slog.New(slog.NewTextHandler(&logBuf, nil)))
	ch, cancel := h.subscribe()
	defer cancel()
	const extra = 10
	for i := 0; i < subBuffer+extra; i++ {
		h.publish("interval", map[string]int{"i": i})
	}
	if got := h.drops(); got != extra {
		t.Errorf("drops = %d, want %d", got, extra)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "client=1") {
		t.Errorf("drop warning missing client ID: %q", logged)
	}
	if n := strings.Count(logged, "falling behind"); n != 1 {
		t.Errorf("drop warning logged %d times, want once", n)
	}
	// The subscriber still holds the first subBuffer frames intact.
	if len(ch) != subBuffer {
		t.Errorf("subscriber buffer holds %d frames, want %d", len(ch), subBuffer)
	}
}
