// Retry policy and seeded service-layer chaos.
//
// Failed attempts are retried with capped exponential backoff plus
// jitter, following the tiered failure-queue bookkeeping reviewed in the
// tsuku snippets: each failure moves the job one tier back (longer
// wait), and a job that exhausts its retry budget is parked in the
// dead-letter tier instead of looping forever. All randomness — jitter
// and chaos — flows from one seeded source, so a harness run with a
// fixed seed replays the exact same schedule, in the same spirit as
// internal/faults' timing-only fault injection.
package telemetry

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Default backoff shape: 250ms, 500ms, 1s, ... capped at 15s, each step
// jittered to 50–100% of its nominal value to decorrelate retry storms.
const (
	defaultRetryBase = 250 * time.Millisecond
	defaultRetryCap  = 15 * time.Second
)

// retrier computes backoff delays and injects seeded chaos. One per
// server; safe for concurrent use.
type retrier struct {
	base time.Duration
	cap  time.Duration

	mu       sync.Mutex
	rng      *rand.Rand
	failRate float64 // probability an attempt is chaos-failed before it runs
	failN    int64   // deterministic: fail the first N attempts outright
	failed   int64   // attempts already chaos-failed by failN
}

// parseChaos parses a "seed=7,fail=0.3" chaos directive (all fields
// optional; empty spec = no chaos, seed 1). The same mini-grammar as
// internal/faults' fault specs. `fail` chaos-fails each attempt with that
// probability from the seeded stream; `failn` deterministically fails the
// first N attempts server-wide — the knob the retry and dead-letter
// harnesses use for exact schedules.
func parseChaos(spec string) (seed int64, failRate float64, failN int64, err error) {
	seed = 1
	if spec == "" {
		return seed, 0, 0, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("telemetry: chaos spec %q: want key=value", part)
		}
		switch k {
		case "seed":
			seed, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("telemetry: chaos seed %q: %w", v, err)
			}
		case "fail":
			failRate, err = strconv.ParseFloat(v, 64)
			if err != nil || failRate < 0 || failRate > 1 {
				return 0, 0, 0, fmt.Errorf("telemetry: chaos fail rate %q: want 0..1", v)
			}
		case "failn":
			failN, err = strconv.ParseInt(v, 10, 64)
			if err != nil || failN < 0 {
				return 0, 0, 0, fmt.Errorf("telemetry: chaos failn %q: want a non-negative count", v)
			}
		default:
			return 0, 0, 0, fmt.Errorf("telemetry: unknown chaos key %q (valid: seed, fail, failn)", k)
		}
	}
	return seed, failRate, failN, nil
}

func newRetrier(base, cap time.Duration, chaosSpec string) (*retrier, error) {
	seed, failRate, failN, err := parseChaos(chaosSpec)
	if err != nil {
		return nil, err
	}
	if base <= 0 {
		base = defaultRetryBase
	}
	if cap <= 0 {
		cap = defaultRetryCap
	}
	return &retrier{
		base:     base,
		cap:      cap,
		rng:      rand.New(rand.NewSource(seed)),
		failRate: failRate,
		failN:    failN,
	}, nil
}

// backoff returns the jittered delay before retry number `failure`
// (1-based: the delay after the first failed attempt is backoff(1)).
func (r *retrier) backoff(failure int) time.Duration {
	d := r.base
	for i := 1; i < failure && d < r.cap; i++ {
		d *= 2
	}
	if d > r.cap {
		d = r.cap
	}
	// Jitter into [d/2, d]: full jitter would allow near-zero waits, which
	// defeats the point of backing off a struggling dependency.
	half := d / 2
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(half) + 1))
	r.mu.Unlock()
	return half + j
}

// chaosFail reports whether chaos should fail this attempt before it
// runs: deterministically while the failn budget lasts, then with the
// seeded per-attempt probability.
func (r *retrier) chaosFail() bool {
	if r.failRate == 0 && r.failN == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed < r.failN {
		r.failed++
		return true
	}
	return r.failRate > 0 && r.rng.Float64() < r.failRate
}
