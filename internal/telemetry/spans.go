package telemetry

import (
	"fmt"
	"net/http"
)

// handleSpans serves GET /jobs/{id}/spans — the per-job lifecycle
// timeline. ?format= selects the rendering:
//
//   - json (default): the span.Tree wire form (flat spans + parent IDs);
//   - text: an indented human-readable timeline;
//   - chrome: a Chrome trace_event file for chrome://tracing / Perfetto.
//
// 404s when tracing is off, or when the job's trace was evicted from the
// tracer's bounded retention.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	job := s.jobFromPath(w, r)
	if job == nil {
		return
	}
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "lifecycle tracing is off (server started without a tracer)"})
		return
	}
	tree := s.tracer.Tree(job.traceID)
	if tree == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("no trace recorded for job %d (evicted or never traced)", job.ID)})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		tree.WriteJSON(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tree.WriteText(w)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename="job-%d-trace.json"`, job.ID))
		tree.WriteChrome(w)
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "unknown format (want json, text or chrome)"})
	}
}
