package telemetry

import "sync"

// jobQueue is the pending-job FIFO behind the worker pool. It is
// internally unbounded: the admission-control bound (Options.QueueDepth)
// is enforced at Submit for external work only, so recovery re-enqueues
// and retry re-entries — work the server already owes — can never be
// dropped by a full channel. Workers block in pop until work arrives or
// the queue closes.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a job and wakes one worker. Pushes after close are
// dropped (the jobs stay registered with the server; a durable store
// resumes them on the next boot).
func (q *jobQueue) push(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, j)
	q.cond.Signal()
}

// pop blocks until a job is available or the queue is closed; it returns
// nil on close — even if items remain, so shutdown stops the workers
// immediately and the leftovers are handled by drain.
func (q *jobQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil
	}
	j := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return j
}

// len returns the number of pending jobs.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close wakes every blocked worker and refuses further pushes.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// drain removes and returns every still-pending job (call after close).
func (q *jobQueue) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.items
	q.items = nil
	return items
}
