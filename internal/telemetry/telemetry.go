// Package telemetry is the live observability and durable-execution
// service behind cmd/ballserved: a long-running HTTP server that
// executes simulation jobs (submitted via POST /jobs or a startup
// playlist) on a worker pool and exposes
//
//   - GET /metrics — Prometheus text exposition: service counters
//     (including shed/retry/dead-letter/recovery durability metrics),
//     per-job gauges (IPC, scheduler occupancy, LQ/SQ pressure, P-IQ
//     sharing rate) and the full obs.Registry dump of the current (or
//     most recent) job;
//   - GET /stream — Server-Sent Events pushing every heartbeat
//     obs.Interval live as the simulation's cycles tick, plus job
//     lifecycle transitions;
//   - GET /healthz, /readyz — liveness and readiness (/readyz degrades
//     to 503 while the queue is saturated or crash recovery is still
//     replaying, so load balancers stop routing to this node);
//   - GET /jobs, /jobs/{id}, POST /jobs, POST /jobs/{id}/cancel — the job
//     API (a running job cancels via the pipeline's cooperative context);
//   - GET /deadletter, POST /jobs/{id}/retry — the dead-letter tier:
//     jobs whose retry budget is exhausted, inspectable and revivable;
//   - /debug/pprof/* — net/http/pprof.
//
// With Options.Store set, every job transition is written ahead to an
// fsync'd WAL (internal/jobstore) before it is acted on: a crash — even
// `kill -9` — loses nothing acknowledged. Start replays the log,
// re-enqueues jobs that were queued, running or waiting on a retry, and
// serves jobs whose config+trace content key already has a stored result
// without recomputation. Failed attempts retry with capped exponential
// backoff plus seeded jitter up to Options.MaxRetries, then park in the
// dead-letter tier. Submissions beyond Options.QueueDepth are shed with
// a typed SaturatedError the HTTP layer maps to 429 + Retry-After
// (estimated by Little's law from the live service-time EWMA).
//
// The heartbeat plumbing rides the obs.Recorder interval fan-out: every
// hook runs on the simulation goroutine, and the liveJob/hub layers do
// their own locking to hand snapshots to HTTP handlers, so the server is
// race-clean under `go test -race`. Shutdown cancels the running job,
// flushes its sinks, disconnects every stream subscriber, and — with a
// store — checkpoints so queued and running jobs resume on restart.
package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	rtpprof "runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	ballerino "repro"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/span"
)

// Options configures a Server.
type Options struct {
	// HeartbeatCycles is the served jobs' heartbeat period in simulation
	// cycles (0 = obs.DefaultInterval).
	HeartbeatCycles uint64
	// QueueDepth bounds externally submitted pending jobs (0 = 64;
	// negative = unbounded). Submissions beyond it are shed with a
	// *SaturatedError. Internal re-enqueues — crash recovery and retry
	// backoff — bypass the bound: work the server already accepted is
	// never dropped by admission control.
	QueueDepth int
	// Workers is the number of jobs executed concurrently (0 or negative =
	// 1, the classic strictly-ordered queue).
	Workers int
	// TraceCacheBytes is the byte budget of the server's shared trace
	// cache (0 = ballerino.DefaultTraceCacheBytes, negative = unbounded).
	// Jobs over the same kernel and μop budget share one generated trace.
	TraceCacheBytes int64

	// Store, when non-nil, makes the job queue durable: every lifecycle
	// transition is WAL-appended before it is acted on, Start replays the
	// log and re-enqueues unfinished jobs, and completed results are
	// served by config+trace content key without recomputation. The
	// server takes ownership: Shutdown checkpoints and closes it.
	Store *jobstore.Store
	// JobTimeout is the per-job execution deadline (0 = none). A job
	// killed by it fails its attempt with a Stage "timeout" *SimError —
	// distinct from caller cancellation — and is retried like any other
	// failure.
	JobTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (with
	// capped exponential backoff + jitter) before the job is parked in
	// the dead-letter tier. 0 = no retries: a failed job goes straight to
	// the failed state.
	MaxRetries int
	// RetryBaseDelay is the nominal delay before the first retry
	// (0 = 250ms); each further retry doubles it up to RetryMaxDelay
	// (0 = 15s). Every delay is jittered to 50–100% of nominal.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// ChaosSpec injects seeded service-layer chaos, e.g. "seed=7,fail=0.25"
	// fails 25% of attempts (before they run) from a deterministic seeded
	// stream — the internal/faults idiom lifted to the job fabric, used by
	// the crash/degradation harnesses.
	ChaosSpec string

	// Tracer, when non-nil, records a lifecycle span tree per job (see
	// internal/span): submit → queue.wait → wal.append → attempt[n]
	// (cache.lookup, trace.generate, sim.warmup, sim.run) → result.store,
	// exported via GET /jobs/{id}/spans and as exemplar trace IDs on the
	// latency histograms. Trace IDs are derived deterministically from the
	// job ID, so a restarted server extends the same trace. nil = tracing
	// off, and every instrumentation site costs one untaken nil check.
	Tracer *span.Tracer
	// Logger, when non-nil, receives structured logs for every lifecycle
	// transition, each carrying the job's trace_id. nil = discard.
	Logger *slog.Logger
}

// SaturatedError is returned by Submit when admission control sheds the
// job: the pending queue is at QueueDepth. The HTTP layer renders it as
// 429 Too Many Requests with a Retry-After estimated from the current
// occupancy and the live service-time EWMA (Little's law).
type SaturatedError struct {
	Pending    int
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("telemetry: job queue saturated (%d pending); retry in %s", e.Pending, e.RetryAfter)
}

// ErrStoreDegraded wraps submissions refused because the durable store
// could not persist the submitted record — accepting a job the WAL never
// saw would break the crash-safety contract.
var ErrStoreDegraded = errors.New("telemetry: durable store unavailable")

// errChaosInjected is the synthetic failure the seeded chaos injector
// assigns to an attempt it kills.
var errChaosInjected = errors.New("chaos: injected attempt failure")

// Server executes simulation jobs and serves their live telemetry. Create
// with NewServer, start the worker with Start, mount Handler, and stop
// with Shutdown.
type Server struct {
	opts  Options
	hub   *hub
	retry *retrier
	store *jobstore.Store

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	q         *jobQueue

	started    atomic.Bool
	ready      atomic.Bool
	recovering atomic.Bool

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64

	shed        atomic.Uint64 // submissions refused by admission control
	retries     atomic.Uint64 // attempt re-enqueues after backoff
	storeHits   atomic.Uint64 // results served from the durable store
	storeErrors atomic.Uint64 // WAL appends that failed (degraded mode)
	resumed     atomic.Uint64 // jobs re-enqueued by crash recovery

	replaySeconds atomic.Uint64 // math.Float64bits of the recovery replay duration

	ewmaMu  sync.Mutex
	ewmaSec float64 // EWMA of job attempt duration, seconds

	traces *ballerino.TraceCache // shared across all served jobs

	tracer *span.Tracer // nil = lifecycle tracing off
	log    *slog.Logger // never nil (discard handler when unset)

	// Lifecycle latency distributions, each bucket carrying the trace ID
	// of the last job that landed in it (OpenMetrics exemplars).
	waitHist    *obs.ExemplarHist // queue wait: submit → worker pickup
	serviceHist *obs.ExemplarHist // attempt wall time
	e2eHist     *obs.ExemplarHist // submit → terminal state
	fsyncHist   *obs.ExemplarHist // WAL fsync, from the jobstore observer
	replayHist  *obs.ExemplarHist // crash-recovery replay wall time
	depthHist   *obs.ExemplarHist // queue depth observed at submit

	mu     sync.Mutex
	jobs   map[int]*Job
	order  []*Job
	nextID int
	run    map[int]*Job // jobs currently executing, by ID
	live   *liveJob     // most recently started (or finished) job's live state
}

// NewServer builds a server (not yet running; call Start). The only
// constructor error is a malformed Options.ChaosSpec.
func NewServer(opts Options) (*Server, error) {
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	retry, err := newRetrier(opts.RetryBaseDelay, opts.RetryMaxDelay, opts.ChaosSpec)
	if err != nil {
		return nil, err
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// Latency bounds in seconds: sub-millisecond fsyncs up to multi-minute
	// simulations, roughly ×4 per bucket.
	latency := []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 4, 15, 60, 240}
	fsyncB := []float64{0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.05, 0.25, 1}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		hub:       newHub(logger),
		retry:     retry,
		store:     opts.Store,
		baseCtx:   ctx,
		cancelAll: cancel,
		q:         newJobQueue(),
		jobs:      make(map[int]*Job),
		run:       make(map[int]*Job),
		nextID:    1,
		traces:    ballerino.NewTraceCache(opts.TraceCacheBytes),
		tracer:    opts.Tracer,
		log:       logger,
		waitHist: obs.NewExemplarHist("ballserved_queue_wait_seconds",
			"Time from submission to a worker picking the job up.", latency),
		serviceHist: obs.NewExemplarHist("ballserved_job_attempt_seconds",
			"Wall time of one execution attempt.", latency),
		e2eHist: obs.NewExemplarHist("ballserved_job_e2e_seconds",
			"Time from submission to the job's terminal state.", latency),
		fsyncHist: obs.NewExemplarHist("ballserved_wal_fsync_seconds",
			"WAL fsync latency per appended lifecycle record.", fsyncB),
		replayHist: obs.NewExemplarHist("ballserved_replay_duration_seconds",
			"Crash-recovery WAL replay wall time.", latency),
		depthHist: obs.NewExemplarHist("ballserved_queue_depth_at_submit",
			"Pending jobs observed by each accepted submission.",
			[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128}),
	}
	if s.store != nil {
		// The store times every append's fsync; feed the latency histogram
		// with the owning job's (deterministic) trace ID as the exemplar.
		s.store.SetObserver(func(st jobstore.AppendStats) {
			s.fsyncHist.Observe(st.Fsync.Seconds(), jobTraceID(st.Job))
		})
	}
	return s, nil
}

// jobTraceID derives job id's stable trace ID. Deriving from the durable
// job ID (never reused: restart continues the WAL's ID sequence) is what
// lets spans recorded before and after a crash share one trace.
func jobTraceID(id int) string {
	return span.DeriveID(fmt.Sprintf("ballserved.job.%d", id))
}

// Start replays the durable store (if any), re-enqueues unfinished jobs,
// launches the worker pool and marks the server ready. Idempotent.
// /readyz reports 503 until the recovery replay has finished.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	s.recoverStore()
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
}

// recoverStore rebuilds the job table from the store's replayed state:
// terminal jobs are registered as-is, unfinished jobs are re-enqueued
// (or served straight from a stored result when one exists for their
// content key), and jobs whose failure count already exceeds the retry
// budget are parked in the dead-letter tier.
func (s *Server) recoverStore() {
	if s.store == nil {
		return
	}
	s.recovering.Store(true)
	defer s.recovering.Store(false)
	start := time.Now()

	recovered := 0
	for _, jr := range s.store.Jobs() {
		recovered++
		job := &Job{ID: jr.ID, key: jr.Key, attempts: jr.Attempts, stage: jr.Stage, errMsg: jr.Error}
		job.traceID = jobTraceID(jr.ID)
		var spec JobSpec
		specErr := json.Unmarshal(jr.Spec, &spec)
		job.Spec = spec

		// Rebuild the pre-crash half of the job's trace from the WAL's
		// event history: same deterministic trace ID, spans stamped with
		// the wall-clock times the log recorded.
		root := s.synthesizeTrace(job, jr.History)

		switch {
		case jr.Terminal == jobstore.OpCompleted:
			job.state = JobDone
			job.fromStore = true
			job.manifest = decodeManifest(jr.Result)
		case jr.Terminal == jobstore.OpCanceled:
			job.state = JobCancelled
		case specErr != nil:
			job.state = JobParked
			job.stage = "spec"
			job.errMsg = fmt.Sprintf("recovered spec unreadable: %v", specErr)
			root.SetAttr("outcome", string(JobParked))
			root.End()
		case jr.Failures > s.opts.MaxRetries && jr.Failures > 0:
			// The job had already exhausted (or would now exhaust) its
			// retry budget when the process died.
			if s.opts.MaxRetries > 0 {
				job.state = JobParked
			} else {
				job.state = JobFailed
			}
			root.SetAttr("outcome", string(job.state))
			root.End()
		default:
			if m := s.storedResult(jr.Key); m != nil {
				// Idempotent resume: the grid point was computed before the
				// crash under another job with the same content key.
				job.state = JobDone
				job.fromStore = true
				job.manifest = m
				job.errMsg, job.stage = "", ""
				s.storeHits.Add(1)
				s.appendWAL(root, jobstore.Record{Op: jobstore.OpCompleted, Job: job.ID, Key: jr.Key, Result: jr.Result})
				root.SetAttr("outcome", "store-hit")
				root.End()
			} else {
				job.state = JobQueued
				job.resumed = true
				job.errMsg, job.stage = "", ""
				s.resumed.Add(1)
				rep := root.Child("replay")
				rep.SetInt("prior_attempts", int64(jr.Attempts))
				rep.End()
				job.rootSpan = root
				job.enqueued = time.Now()
				job.waitSpan = root.Child("queue.wait")
			}
		}

		s.mu.Lock()
		s.jobs[job.ID] = job
		s.order = append(s.order, job)
		s.mu.Unlock()
		if job.state == JobQueued {
			s.q.push(job)
		}
	}
	s.mu.Lock()
	s.nextID = s.store.MaxJobID() + 1
	s.mu.Unlock()

	total := s.store.Recovery().Duration + time.Since(start)
	s.replaySeconds.Store(math.Float64bits(total.Seconds()))
	s.replayHist.Observe(total.Seconds(), "")
	if recovered > 0 {
		s.log.Info("recovery replay finished", "jobs", recovered,
			"resumed", s.resumed.Load(), "duration", total)
	}
}

// synthesizeTrace reconstructs the pre-crash span tree of a recovered job
// from its WAL history: a root "job" span starting at the first recorded
// event, a closed "submit", and one "attempt" child per started attempt.
// An attempt the log never saw finish was interrupted by the crash; it is
// closed at recovery time and marked interrupted. The returned root stays
// open unless the history itself reached a terminal record — resumable
// jobs keep accumulating live spans on the same trace.
func (s *Server) synthesizeTrace(job *Job, history []jobstore.HistoryEvent) *span.Span {
	if s.tracer == nil || len(history) == 0 {
		return nil
	}
	root := s.tracer.StartAt(job.traceID, "job", history[0].Time)
	root.SetAttr("arch", job.Spec.Arch)
	root.SetAttr("workload", job.Spec.Workload)
	root.SetInt("job", int64(job.ID))
	root.SetAttr("source", "wal")
	var attempt *span.Span
	for _, ev := range history {
		switch ev.Op {
		case jobstore.OpSubmitted:
			sub := root.ChildAt("submit", ev.Time)
			sub.SetAttr("source", "wal")
			sub.EndAt(ev.Time)
		case jobstore.OpStarted:
			attempt = root.ChildAt("attempt", ev.Time)
			attempt.SetInt("n", int64(ev.Attempt))
			attempt.SetAttr("source", "wal")
		case jobstore.OpAttemptFailed:
			if attempt != nil {
				if ev.Stage != "" {
					attempt.SetAttr("stage", ev.Stage)
				}
				attempt.Fail(errors.New(ev.Error))
				attempt.EndAt(ev.Time)
				attempt = nil
			}
		case jobstore.OpCompleted:
			attempt.EndAt(ev.Time)
			attempt = nil
			root.SetAttr("outcome", "done")
			root.EndAt(ev.Time)
		case jobstore.OpCanceled:
			attempt.EndAt(ev.Time)
			attempt = nil
			root.SetAttr("outcome", "cancelled")
			root.EndAt(ev.Time)
		}
	}
	if attempt != nil {
		attempt.SetAttr("interrupted", "true")
		attempt.End()
	}
	return root
}

// storedResult decodes the stored canonical manifest for a content key,
// or nil when the key has no stored result (or it fails to decode, which
// counts as a store error and falls back to recomputation).
func (s *Server) storedResult(key string) *obs.Manifest {
	if s.store == nil || key == "" {
		return nil
	}
	raw, ok := s.store.Result(key)
	if !ok {
		return nil
	}
	m := decodeManifest(raw)
	if m == nil {
		s.storeErrors.Add(1)
	}
	return m
}

func decodeManifest(raw json.RawMessage) *obs.Manifest {
	if len(raw) == 0 {
		return nil
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil
	}
	return &m
}

// appendWAL persists one lifecycle record, recording the durable write
// as a "wal.append" child of sp (fsync latency rides the store observer
// into the fsync histogram). Append failures degrade gracefully: the
// server keeps executing (counting storeErrors so operators see the
// durability loss) rather than collapsing mid-job.
func (s *Server) appendWAL(sp *span.Span, rec jobstore.Record) {
	if s.store == nil {
		return
	}
	wsp := sp.Child("wal.append")
	wsp.SetAttr("op", string(rec.Op))
	err := s.store.Append(rec)
	wsp.Fail(err)
	wsp.End()
	if err != nil {
		s.storeErrors.Add(1)
		s.log.Error("wal append failed", "op", rec.Op, "job", rec.Job,
			"trace_id", jobTraceID(rec.Job), "err", err)
	}
}

// Shutdown gracefully stops the server: readiness drops, running jobs
// are cancelled (their recorders flushed by the workers before exiting),
// retry timers abandon their jobs mid-backoff, and every SSE subscriber
// is disconnected. Without a store, still-queued jobs are marked
// cancelled; with one, queued/running/retrying jobs keep their durable
// state — the WAL has them as unfinished, so the next Start re-enqueues
// them (graceful drain doubles as a checkpoint for resume). It returns
// ctx.Err() if the workers do not drain in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.log.Info("shutdown: draining workers",
		"running", s.runCount(), "queued", s.q.len())
	s.ready.Store(false)
	s.cancelAll()
	s.q.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	for _, job := range s.q.drain() {
		if s.store != nil {
			continue // resumable: submitted record survives in the WAL
		}
		if job.Cancel() == JobQueued {
			s.cancelled.Add(1)
		}
	}
	s.hub.close()
	if s.store != nil {
		if cerr := s.store.Checkpoint(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		if cerr := s.store.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
	}
	return err
}

// Submit validates and enqueues one job. Beyond the admission bound it
// returns a *SaturatedError; with a degraded durable store it returns an
// error wrapping ErrStoreDegraded. When the store already holds a result
// for the job's content key, the job completes immediately from the
// store without recomputation.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if !s.started.Load() || !s.ready.Load() {
		return nil, errors.New("telemetry: server not accepting jobs")
	}
	// Lower through the shared trace cache: a TraceFile spec is imported
	// once here (validating the file at admission, not at run time) and
	// every job over the same trace reuses the decoded entry.
	cfg, err := spec.lower(context.Background(), s.traces)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key, err := cfg.ContentKey()
	if err != nil {
		return nil, err
	}
	pending := s.q.len()
	if s.opts.QueueDepth > 0 && pending >= s.opts.QueueDepth {
		s.shed.Add(1)
		sat := &SaturatedError{Pending: pending, RetryAfter: s.retryAfter(pending)}
		s.log.Warn("submission shed by admission control",
			"pending", pending, "retry_after", sat.RetryAfter)
		return nil, sat
	}

	s.mu.Lock()
	job := &Job{ID: s.nextID, Spec: spec, key: key, state: JobQueued, submitted: time.Now()}
	job.traceID = jobTraceID(job.ID)
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job)
	s.mu.Unlock()

	// The trace root spans the whole lifecycle; "submit" covers admission
	// + the durable submitted record; "queue.wait" stays open until a
	// worker picks the job up (or the job is cancelled while queued).
	root := s.tracer.Start(job.traceID, "job")
	root.SetAttr("arch", spec.Arch)
	root.SetAttr("workload", spec.Workload)
	root.SetInt("job", int64(job.ID))
	sub := root.Child("submit")
	sub.SetInt("queue_depth", int64(pending))
	job.mu.Lock()
	job.rootSpan = root
	job.mu.Unlock()
	s.depthHist.Observe(float64(pending), job.traceID)

	if s.store != nil {
		specRaw, merr := json.Marshal(spec)
		if merr == nil {
			wsp := sub.Child("wal.append")
			wsp.SetAttr("op", string(jobstore.OpSubmitted))
			merr = s.store.Append(jobstore.Record{Op: jobstore.OpSubmitted, Job: job.ID, Key: key, Spec: specRaw})
			wsp.Fail(merr)
			wsp.End()
		}
		if merr != nil {
			// A job the WAL never saw must not be accepted: drop it and
			// surface the degraded store to the caller.
			s.mu.Lock()
			delete(s.jobs, job.ID)
			s.order = s.order[:len(s.order)-1]
			s.mu.Unlock()
			s.storeErrors.Add(1)
			sub.Fail(merr)
			sub.End()
			root.End()
			s.log.Error("submission refused: durable store degraded",
				"job", job.ID, "trace_id", job.traceID, "err", merr)
			return nil, fmt.Errorf("%w: %v", ErrStoreDegraded, merr)
		}
		if m := s.storedResult(key); m != nil {
			// Content-addressed dedup: this grid point is already computed.
			raw, _ := s.store.Result(key)
			s.appendWAL(sub, jobstore.Record{Op: jobstore.OpCompleted, Job: job.ID, Key: key, Result: raw})
			job.mu.Lock()
			job.state = JobDone
			job.fromStore = true
			job.manifest = m
			job.finished = time.Now()
			job.mu.Unlock()
			s.storeHits.Add(1)
			s.submitted.Add(1)
			s.completed.Add(1)
			sub.SetAttr("outcome", "store-hit")
			sub.End()
			root.End()
			s.log.Info("job served from store", "job", job.ID, "trace_id", job.traceID,
				"arch", spec.Arch, "workload", spec.Workload)
			s.hub.publish("job", job.View(false))
			return job, nil
		}
	}

	sub.End()
	job.mu.Lock()
	job.enqueued = time.Now()
	job.waitSpan = root.Child("queue.wait")
	job.mu.Unlock()
	s.q.push(job)
	s.submitted.Add(1)
	s.log.Info("job submitted", "job", job.ID, "trace_id", job.traceID,
		"arch", spec.Arch, "workload", spec.Workload, "queue_depth", pending)
	s.hub.publish("job", job.View(false))
	return job, nil
}

// retryAfter estimates how long a shed client should wait before
// resubmitting: Little's-law expected drain time of the current backlog
// (pending × service-time EWMA / workers), clamped to [1s, 60s].
func (s *Server) retryAfter(pending int) time.Duration {
	s.ewmaMu.Lock()
	svc := s.ewmaSec
	s.ewmaMu.Unlock()
	if svc <= 0 {
		svc = 1
	}
	wait := time.Duration(svc * float64(pending) / float64(s.opts.Workers) * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	if wait > time.Minute {
		wait = time.Minute
	}
	return wait
}

// observeDuration folds one attempt's wall time into the service-time
// EWMA behind Retry-After.
func (s *Server) observeDuration(d time.Duration) {
	s.ewmaMu.Lock()
	if s.ewmaSec == 0 {
		s.ewmaSec = d.Seconds()
	} else {
		s.ewmaSec = 0.7*s.ewmaSec + 0.3*d.Seconds()
	}
	s.ewmaMu.Unlock()
}

// Job looks a job up by ID.
func (s *Server) Job(id int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runCount reports how many jobs are currently executing.
func (s *Server) runCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.run)
}

// saturated reports whether admission control is currently shedding.
func (s *Server) saturated() bool {
	return s.opts.QueueDepth > 0 && s.q.len() >= s.opts.QueueDepth
}

// worker executes queued jobs until shutdown. With Options.Workers > 1
// several workers drain the one queue concurrently; each simulation is
// independent, and traces are shared through the server's cache.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job := s.q.pop()
		if job == nil {
			return
		}
		s.runJob(job)
	}
}

// runJob executes one attempt of one job: the started record is written
// ahead, then a caller-owned recorder is built with the event-counting
// sink and an interval fan-out hook that updates the live gauges and
// publishes to the SSE hub, and ballerino.RunContext runs under the
// job's cancellable (and, with -job-timeout, deadline-bounded) context.
// The terminal classification routes failures into retry backoff or the
// dead-letter tier and successes into the durable result store.
func (s *Server) runJob(job *Job) {
	var runCtx context.Context
	var cancel context.CancelFunc
	if s.opts.JobTimeout > 0 {
		runCtx, cancel = context.WithTimeout(s.baseCtx, s.opts.JobTimeout)
	} else {
		runCtx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()

	job.mu.Lock()
	if job.state != JobQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	job.state = JobRunning
	job.attempts++
	attempt := job.attempts
	job.started = time.Now()
	job.cancel = cancel
	job.requested = false
	if job.live != nil {
		job.live.reset()
	} else {
		job.live = newLiveJob(job)
	}
	live := job.live
	root := job.rootSpan
	wait := job.waitSpan
	job.waitSpan = nil
	enqueued := job.enqueued
	job.mu.Unlock()

	if wait != nil {
		wait.End()
	}
	if !enqueued.IsZero() {
		s.waitHist.Observe(time.Since(enqueued).Seconds(), job.traceID)
	}
	asp := root.Child("attempt")
	asp.SetInt("n", int64(attempt))

	s.mu.Lock()
	s.run[job.ID] = job
	s.live = live
	s.mu.Unlock()

	s.appendWAL(asp, jobstore.Record{Op: jobstore.OpStarted, Job: job.ID, Attempt: attempt})
	s.log.Info("attempt started", "job", job.ID, "trace_id", job.traceID, "attempt", attempt,
		"arch", job.Spec.Arch, "workload", job.Spec.Workload)
	s.hub.publish("job", job.View(false))

	begin := time.Now()
	var res *ballerino.Result
	var err error
	var flushMsg string
	if s.retry.chaosFail() {
		err = errChaosInjected
		asp.SetAttr("chaos", "injected")
	} else {
		// Label the worker goroutine for the duration of the attempt, so
		// CPU profiles segment by job identity.
		rtpprof.Do(runCtx, rtpprof.Labels(
			"job", strconv.Itoa(job.ID),
			"workload", job.Spec.Workload,
			"arch", job.Spec.Arch,
		), func(runCtx context.Context) {
			rec := obs.NewRecorder(s.opts.HeartbeatCycles, &live.events)
			rec.OnInterval(func(iv obs.Interval) {
				// Simulation goroutine: reading the registry here is safe by the
				// recorder's single-threaded contract, and Dump is a deep copy.
				live.observe(iv, rec.Registry().Dump())
				s.hub.publish("interval", streamInterval{
					Job: job.ID, Arch: job.Spec.Arch, Workload: job.Spec.Workload,
					IPC: iv.IPC(), Interval: iv,
				})
			})
			// Thread the attempt span through the run context: the trace
			// cache's lookup, trace import/generation, warm-up and the
			// simulation itself all record themselves as its children.
			runCtx = span.ContextWith(runCtx, asp)
			// Lower through the shared cache: a TraceFile spec replays its
			// imported trace (a failure here — e.g. the file vanished since
			// admission — fails the attempt), and a generated spec shares
			// the μop trace across jobs over the same kernel. A Prepare
			// failure (bad config, cancellation) is deliberately dropped:
			// RunContext reproduces the identical error below, on the path
			// that already classifies it.
			cfg, lerr := job.Spec.lower(runCtx, s.traces)
			if lerr != nil {
				err = lerr
			} else {
				cfg.Recorder = rec
				if cfg.Trace == nil {
					if t, terr := s.traces.Prepare(runCtx, cfg); terr == nil {
						cfg.Trace = t
					}
				}
				res, err = ballerino.RunContext(runCtx, cfg)
			}
			if cerr := rec.Close(); cerr != nil {
				flushMsg = fmt.Sprintf("sink flush: %v", cerr)
			}
		})
	}
	attemptDur := time.Since(begin)
	s.observeDuration(attemptDur)
	s.serviceHist.Observe(attemptDur.Seconds(), job.traceID)

	s.mu.Lock()
	delete(s.run, job.ID)
	s.mu.Unlock()

	asp.Fail(err)
	asp.End()
	s.settle(job, attempt, res, err, flushMsg)
	s.hub.publish("job", job.View(false))
}

// settle applies one attempt's outcome: done (durably recording the
// canonical result), cancelled (durably only when the cancel was asked
// for — a shutdown leaves the job resumable), retrying (backoff timer),
// or failed/parked when the retry budget is spent.
func (s *Server) settle(job *Job, attempt int, res *ballerino.Result, err error, flushMsg string) {
	var se *ballerino.SimError
	stage := ""
	if errors.As(err, &se) {
		stage = se.Stage
	}
	job.mu.Lock()
	root := job.rootSpan
	job.mu.Unlock()

	// endTrace closes the root span with the terminal outcome and feeds
	// the end-to-end latency histogram.
	endTrace := func(outcome string) {
		root.SetAttr("outcome", outcome)
		root.End()
		job.mu.Lock()
		e2e := job.finished.Sub(job.submitted)
		submittedKnown := !job.submitted.IsZero()
		job.mu.Unlock()
		if submittedKnown {
			s.e2eHist.Observe(e2e.Seconds(), job.traceID)
		}
	}

	switch {
	case err == nil:
		var canonical []byte
		if res.Manifest != nil {
			canonical, _ = res.Manifest.CanonicalJSON()
		}
		store := root.Child("result.store")
		s.appendWAL(store, jobstore.Record{Op: jobstore.OpCompleted, Job: job.ID, Key: job.key, Result: canonical})
		store.End()
		job.mu.Lock()
		job.state = JobDone
		job.manifest = res.Manifest
		job.errMsg, job.stage = flushMsg, ""
		job.finished = time.Now()
		job.cancel = nil
		job.live.finish(res.Manifest)
		job.mu.Unlock()
		s.completed.Add(1)
		endTrace("done")
		ipc := 0.0
		if res.Manifest != nil {
			ipc = res.Manifest.Stats.IPC
		}
		s.log.Info("job done", "job", job.ID, "trace_id", job.traceID,
			"attempt", attempt, "ipc", ipc)

	case stage == "canceled" || errors.Is(err, context.Canceled):
		job.mu.Lock()
		requested := job.requested
		job.state = JobCancelled
		job.errMsg, job.stage = err.Error(), stage
		job.finished = time.Now()
		job.cancel = nil
		job.mu.Unlock()
		s.cancelled.Add(1)
		if requested {
			s.appendWAL(root, jobstore.Record{Op: jobstore.OpCanceled, Job: job.ID, Error: err.Error()})
			endTrace("cancelled")
			s.log.Info("job cancelled", "job", job.ID, "trace_id", job.traceID, "attempt", attempt)
		}
		// Not requested: the server is shutting down — leave the WAL (and
		// the trace root) open so the next boot resumes both.

	default:
		if stage == "" {
			stage = "service"
		}
		s.appendWAL(root, jobstore.Record{Op: jobstore.OpAttemptFailed, Job: job.ID, Attempt: attempt,
			Stage: stage, Error: err.Error()})
		if attempt <= s.opts.MaxRetries {
			delay := s.retry.backoff(attempt)
			bsp := root.Child("backoff")
			bsp.SetInt("after_attempt", int64(attempt))
			bsp.SetAttr("delay", delay.String())
			job.mu.Lock()
			job.state = JobRetrying
			job.errMsg, job.stage = err.Error(), stage
			job.nextRetry = time.Now().Add(delay)
			job.cancel = nil
			job.mu.Unlock()
			s.retries.Add(1)
			s.log.Warn("attempt failed, retrying", "job", job.ID, "trace_id", job.traceID,
				"attempt", attempt, "stage", stage, "delay", delay, "err", err)
			s.scheduleRetry(job, delay, bsp)
			return
		}
		job.mu.Lock()
		if s.opts.MaxRetries > 0 {
			job.state = JobParked
		} else {
			job.state = JobFailed
		}
		terminal := job.state
		job.errMsg, job.stage = err.Error(), stage
		job.finished = time.Now()
		job.cancel = nil
		job.mu.Unlock()
		s.failed.Add(1)
		root.Fail(err)
		endTrace(string(terminal))
		s.log.Warn("job failed", "job", job.ID, "trace_id", job.traceID,
			"attempt", attempt, "stage", stage, "state", terminal, "err", err)
	}
}

// scheduleRetry re-enqueues the job after its backoff delay. The timer
// aborts on shutdown, leaving the job in the retrying state — with a
// durable store the WAL still shows it unfinished, so the next boot
// picks it back up. bsp is the open "backoff" span; it ends when the
// job re-enters the queue (or when the timer is abandoned).
func (s *Server) scheduleRetry(job *Job, delay time.Duration, bsp *span.Span) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-s.baseCtx.Done():
			bsp.End()
			return
		case <-t.C:
		}
		bsp.End()
		job.mu.Lock()
		if job.state != JobRetrying { // cancelled mid-backoff
			job.mu.Unlock()
			return
		}
		job.state = JobQueued
		job.nextRetry = time.Time{}
		job.enqueued = time.Now()
		job.waitSpan = job.rootSpan.Child("queue.wait")
		job.mu.Unlock()
		s.q.push(job)
		s.log.Info("retry requeued", "job", job.ID, "trace_id", job.traceID)
		s.hub.publish("job", job.View(false))
	}()
}

// streamInterval is the SSE payload of one heartbeat.
type streamInterval struct {
	Job      int     `json:"job"`
	Arch     string  `json:"arch"`
	Workload string  `json:"workload"`
	IPC      float64 `json:"ipc"`
	obs.Interval
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/spans", s.handleSpans)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/retry", s.handleRetry)
	mux.HandleFunc("GET /deadletter", s.handleDeadLetter)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /stream", s.handleStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// handleReady implements /readyz: a load balancer should stop routing
// here while the server is down, still replaying its WAL, or shedding
// load — not only when it is fully stopped.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.recovering.Load():
		http.Error(w, "recovering: WAL replay in progress", http.StatusServiceUnavailable)
	case !s.ready.Load():
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	case s.saturated():
		http.Error(w, "saturated: job queue at capacity", http.StatusServiceUnavailable)
	default:
		w.Write([]byte("ready\n"))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	job, err := s.Submit(spec)
	var sat *SaturatedError
	switch {
	case errors.As(err, &sat):
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(sat.RetryAfter.Seconds()))))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": sat.Error()})
		return
	case errors.Is(err, ErrStoreDegraded):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, job.View(false))
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View(false)
	}
	writeJSON(w, http.StatusOK, views)
}

// handleDeadLetter lists the parked jobs: everything the retry machinery
// gave up on, with the stage and error of the last failed attempt.
func (s *Server) handleDeadLetter(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	views := []JobView{}
	for _, j := range jobs {
		if j.State() == JobParked {
			views = append(views, j.View(false))
		}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *Job {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id"})
		return nil
	}
	job := s.Job(id)
	if job == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no job %d", id)})
	}
	return job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job := s.jobFromPath(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.View(true))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobFromPath(w, r)
	if job == nil {
		return
	}
	switch prev := job.Cancel(); prev {
	case JobQueued, JobRetrying, JobParked:
		s.cancelled.Add(1)
		job.mu.Lock()
		root := job.rootSpan
		job.mu.Unlock()
		s.appendWAL(root, jobstore.Record{Op: jobstore.OpCanceled, Job: job.ID, Error: "cancelled before execution"})
		root.SetAttr("outcome", "cancelled")
		root.End()
		s.log.Info("job cancelled before execution", "job", job.ID,
			"trace_id", job.traceID, "was", prev)
		s.hub.publish("job", job.View(false))
	}
	writeJSON(w, http.StatusOK, job.View(false))
}

// handleRetry revives a parked (dead-letter) job: its attempt budget is
// reset and it re-enters the queue. Note the revival is in-memory only —
// if the server crashes before the revived job finishes, recovery parks
// it again (its durable failure history still exceeds the budget).
func (s *Server) handleRetry(w http.ResponseWriter, r *http.Request) {
	job := s.jobFromPath(w, r)
	if job == nil {
		return
	}
	job.mu.Lock()
	if job.state != JobParked {
		state := job.state
		job.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %d is %s, not parked", job.ID, state)})
		return
	}
	job.state = JobQueued
	job.attempts = 0
	job.errMsg, job.stage = "", ""
	job.finished = time.Time{}
	job.enqueued = time.Now()
	// A revived trace root may already be closed (the park ended it);
	// children recorded after a parent's end are legal in this model —
	// the timeline simply extends past the original terminal state.
	job.waitSpan = job.rootSpan.Child("queue.wait")
	job.mu.Unlock()
	s.log.Info("dead-letter job revived", "job", job.ID, "trace_id", job.traceID)
	s.q.push(job)
	s.hub.publish("job", job.View(false))
	writeJSON(w, http.StatusOK, job.View(false))
}

// handleStream serves the SSE heartbeat stream. Every connected client
// receives each interval snapshot and job transition as it is published;
// the connection ends when the client goes away or the server shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := s.hub.subscribe()
	if ch == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": ballserved heartbeat stream\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
