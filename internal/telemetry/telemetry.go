// Package telemetry is the live observability service behind cmd/ballserved:
// a long-running HTTP server that executes simulation jobs (submitted via
// POST /jobs or a startup playlist) one at a time and exposes
//
//   - GET /metrics — Prometheus text exposition: service counters, per-job
//     gauges (IPC, scheduler occupancy, LQ/SQ pressure, P-IQ sharing rate)
//     and the full obs.Registry dump of the current (or most recent) job;
//   - GET /stream — Server-Sent Events pushing every heartbeat
//     obs.Interval live as the simulation's cycles tick, plus job
//     lifecycle transitions;
//   - GET /healthz, /readyz — liveness and readiness;
//   - GET /jobs, /jobs/{id}, POST /jobs, POST /jobs/{id}/cancel — the job
//     API (a running job cancels via the pipeline's cooperative context);
//   - /debug/pprof/* — net/http/pprof.
//
// The heartbeat plumbing rides the obs.Recorder interval fan-out: every
// hook runs on the simulation goroutine, and the liveJob/hub layers do
// their own locking to hand snapshots to HTTP handlers, so the server is
// race-clean under `go test -race`. Shutdown cancels the running job,
// flushes its sinks, and disconnects every stream subscriber.
package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	ballerino "repro"
	"repro/internal/obs"
)

// Options configures a Server.
type Options struct {
	// HeartbeatCycles is the served jobs' heartbeat period in simulation
	// cycles (0 = obs.DefaultInterval).
	HeartbeatCycles uint64
	// QueueDepth bounds the pending-job queue (0 = 64).
	QueueDepth int
	// Workers is the number of jobs executed concurrently (0 or negative =
	// 1, the classic strictly-ordered queue).
	Workers int
	// TraceCacheBytes is the byte budget of the server's shared trace
	// cache (0 = ballerino.DefaultTraceCacheBytes, negative = unbounded).
	// Jobs over the same kernel and μop budget share one generated trace.
	TraceCacheBytes int64
}

// Server executes simulation jobs and serves their live telemetry. Create
// with NewServer, start the worker with Start, mount Handler, and stop
// with Shutdown.
type Server struct {
	opts Options
	hub  *hub

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	queue     chan *Job

	started atomic.Bool
	ready   atomic.Bool

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64

	traces *ballerino.TraceCache // shared across all served jobs

	mu      sync.Mutex
	jobs    map[int]*Job
	order   []*Job
	nextID  int
	running map[int]*Job // jobs currently executing, by ID
	live    *liveJob     // most recently started (or finished) job's live state
}

// NewServer builds a server (not yet running; call Start).
func NewServer(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:      opts,
		hub:       newHub(),
		baseCtx:   ctx,
		cancelAll: cancel,
		queue:     make(chan *Job, opts.QueueDepth),
		jobs:      make(map[int]*Job),
		running:   make(map[int]*Job),
		nextID:    1,
		traces:    ballerino.NewTraceCache(opts.TraceCacheBytes),
	}
}

// Start launches the worker pool and marks the server ready. Idempotent.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
}

// Shutdown gracefully stops the server: readiness drops, the running job
// is cancelled (its recorder is flushed by the worker before it exits),
// queued jobs are marked cancelled, and every SSE subscriber is
// disconnected. It returns ctx.Err() if the worker does not drain in
// time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.cancelAll()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Whatever never started is cancelled, not silently dropped.
	for {
		select {
		case job := <-s.queue:
			if job.Cancel() == JobQueued {
				s.cancelled.Add(1)
			}
		default:
			s.hub.close()
			return err
		}
	}
}

// Submit validates and enqueues one job.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if !s.started.Load() || !s.ready.Load() {
		return nil, errors.New("telemetry: server not accepting jobs")
	}
	if err := spec.Config().Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	job := &Job{ID: s.nextID, Spec: spec, state: JobQueued, submitted: time.Now()}
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job)
	s.mu.Unlock()

	select {
	case s.queue <- job:
	default:
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return nil, fmt.Errorf("telemetry: job queue full (%d pending)", cap(s.queue))
	}
	s.submitted.Add(1)
	s.hub.publish("job", job.View(false))
	return job, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker executes queued jobs until shutdown. With Options.Workers > 1
// several workers drain the one queue concurrently; each simulation is
// independent, and traces are shared through the server's cache.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob executes one job: a caller-owned recorder is built with the
// event-counting sink and an interval fan-out hook that updates the live
// gauges and publishes to the SSE hub, then ballerino.RunContext runs
// under the job's cancellable context. The recorder is always closed
// (flushing any sinks) before the job reaches a terminal state.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	job.mu.Lock()
	if job.state != JobQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	job.state = JobRunning
	job.started = time.Now()
	job.cancel = cancel
	live := newLiveJob(job)
	job.live = live
	job.mu.Unlock()

	s.mu.Lock()
	s.running[job.ID] = job
	s.live = live
	s.mu.Unlock()

	rec := obs.NewRecorder(s.opts.HeartbeatCycles, &live.events)
	rec.OnInterval(func(iv obs.Interval) {
		// Simulation goroutine: reading the registry here is safe by the
		// recorder's single-threaded contract, and Dump is a deep copy.
		live.observe(iv, rec.Registry().Dump())
		s.hub.publish("interval", streamInterval{
			Job: job.ID, Arch: job.Spec.Arch, Workload: job.Spec.Workload,
			IPC: iv.IPC(), Interval: iv,
		})
	})
	s.hub.publish("job", job.View(false))

	cfg := job.Spec.Config()
	cfg.Recorder = rec
	// Share the μop trace across jobs over the same kernel. A Prepare
	// failure (bad config, cancellation) is deliberately dropped here:
	// RunContext reproduces the identical error below, on the path that
	// already classifies it.
	if t, terr := s.traces.Prepare(ctx, cfg); terr == nil {
		cfg.Trace = t
	}
	res, err := ballerino.RunContext(ctx, cfg)
	cerr := rec.Close()

	job.mu.Lock()
	job.finished = time.Now()
	job.cancel = nil
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		job.state = JobCancelled
		job.errMsg = err.Error()
		s.cancelled.Add(1)
	case err != nil:
		job.state = JobFailed
		job.errMsg = err.Error()
		s.failed.Add(1)
	default:
		job.state = JobDone
		job.manifest = res.Manifest
		live.finish(res.Manifest)
		s.completed.Add(1)
	}
	if cerr != nil && job.errMsg == "" {
		job.errMsg = fmt.Sprintf("sink flush: %v", cerr)
	}
	job.mu.Unlock()

	s.mu.Lock()
	delete(s.running, job.ID)
	s.mu.Unlock()
	s.hub.publish("job", job.View(false))
}

// streamInterval is the SSE payload of one heartbeat.
type streamInterval struct {
	Job      int     `json:"job"`
	Arch     string  `json:"arch"`
	Workload string  `json:"workload"`
	IPC      float64 `json:"ipc"`
	obs.Interval
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /stream", s.handleStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, job.View(false))
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View(false)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *Job {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id"})
		return nil
	}
	job := s.Job(id)
	if job == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no job %d", id)})
	}
	return job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job := s.jobFromPath(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.View(true))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobFromPath(w, r)
	if job == nil {
		return
	}
	if prev := job.Cancel(); prev == JobQueued {
		s.cancelled.Add(1)
		s.hub.publish("job", job.View(false))
	}
	writeJSON(w, http.StatusOK, job.View(false))
}

// handleStream serves the SSE heartbeat stream. Every connected client
// receives each interval snapshot and job transition as it is published;
// the connection ends when the client goes away or the server shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := s.hub.subscribe()
	if ch == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": ballserved heartbeat stream\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
