package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	ballerino "repro"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/topdown"
)

// JobSpec is the wire form of one simulation job — the subset of
// ballerino.Config a client may select over HTTP. A job's *output*
// artifacts are its manifest and the live streams, never ad-hoc files on
// the serving host; the one path a spec may carry is TraceFile, a
// read-only *input* the operator provisions.
type JobSpec struct {
	Arch           string `json:"arch"`
	Workload       string `json:"workload"`
	Width          int    `json:"width,omitempty"`
	Ops            int    `json:"ops,omitempty"`
	WarmupOps      int    `json:"warmup_ops,omitempty"`
	FootprintBytes int64  `json:"footprint_bytes,omitempty"`
	NumPIQs        int    `json:"num_piqs,omitempty"`
	PIQDepth       int    `json:"piq_depth,omitempty"`
	DisableMDP     bool   `json:"disable_mdp,omitempty"`
	DVFS           string `json:"dvfs,omitempty"`
	// MaxCycles aborts a stuck simulation after that many cycles (0 =
	// 100× the dynamic μop budget) — the knob chaos and dead-letter tests
	// use to make a job fail deterministically.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Topdown attaches top-down CPI-stack cycle accounting to the run; the
	// per-category slot counters then stream through the heartbeat fan-out
	// and land in the job view and /metrics.
	Topdown bool `json:"topdown,omitempty"`
	// TraceFile names a recorded ballerino.trace/v1 file on the serving
	// host to replay instead of generating the workload's trace. The
	// file's workload identity (kernel, footprint, dynamic budget)
	// overrides Workload, FootprintBytes and Ops; timing knobs and
	// WarmupOps still apply. The server only ever reads the path, and the
	// job's content key is derived from the trace identity, so replayed
	// jobs dedup against generated ones in the durable store.
	TraceFile string `json:"trace_file,omitempty"`
}

// Config lowers the spec to a runnable ballerino.Config.
func (sp JobSpec) Config() ballerino.Config {
	return ballerino.Config{
		Arch:           sp.Arch,
		Workload:       sp.Workload,
		Width:          sp.Width,
		MaxOps:         sp.Ops,
		WarmupOps:      sp.WarmupOps,
		FootprintBytes: sp.FootprintBytes,
		NumPIQs:        sp.NumPIQs,
		PIQDepth:       sp.PIQDepth,
		DisableMDP:     sp.DisableMDP,
		DVFS:           sp.DVFS,
		MaxCycles:      sp.MaxCycles,
		Topdown:        sp.Topdown,
	}
}

// lower resolves the spec to its runnable config: when TraceFile is set,
// the trace is imported — through tc when non-nil, so a server shares one
// decode across jobs — and its workload identity overlaid on the config.
func (sp JobSpec) lower(ctx context.Context, tc *ballerino.TraceCache) (ballerino.Config, error) {
	cfg := sp.Config()
	if sp.TraceFile == "" {
		return cfg, nil
	}
	var t *ballerino.Trace
	var err error
	if tc != nil {
		t, err = tc.Import(ctx, sp.TraceFile)
	} else {
		t, err = ballerino.ImportTrace(sp.TraceFile)
	}
	if err != nil {
		return cfg, err
	}
	return t.Configure(cfg), nil
}

// Key returns the spec's config+trace content key — the identity the
// durable store addresses completed results by. JobSpec cannot express a
// custom program, so the key always exists for a valid spec (for a
// TraceFile spec, provided the file is readable).
func (sp JobSpec) Key() (string, error) {
	cfg, err := sp.lower(context.Background(), nil)
	if err != nil {
		return "", err
	}
	return cfg.ContentKey()
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle: queued → running → done | failed | cancelled, with two
// durability detours: a failed attempt with retry budget left goes to
// retrying (and back to queued when its backoff expires), and a job
// whose retries are exhausted is parked in the dead-letter tier. A
// queued or retrying job cancelled before it (re)starts goes straight to
// cancelled.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobRetrying  JobState = "retrying"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
	JobParked    JobState = "parked" // dead-letter: retries exhausted
)

// terminal reports whether a state is final.
func (st JobState) terminal() bool {
	switch st {
	case JobDone, JobFailed, JobCancelled, JobParked:
		return true
	}
	return false
}

// Job is one queued or executed simulation.
type Job struct {
	ID   int
	Spec JobSpec

	mu        sync.Mutex
	state     JobState
	key       string // config+trace content key
	errMsg    string
	stage     string // *SimError stage of the last failed attempt
	attempts  int    // execution attempts started
	resumed   bool   // re-enqueued by crash recovery
	fromStore bool   // result served from the durable store, not computed
	manifest  *obs.Manifest
	cancel    func() // set while running; cancels the run context
	requested bool   // an explicit cancel was asked for (vs server shutdown)
	nextRetry time.Time
	live      *liveJob
	submitted time.Time
	started   time.Time
	finished  time.Time

	// Lifecycle tracing (nil/zero when the server runs untraced). traceID
	// is derived from ID before the job is published and never written
	// again, so lock-free reads after publication are safe.
	traceID  string
	rootSpan *span.Span // the job's root lifecycle span
	waitSpan *span.Span // open "queue.wait" span while the job sits queued
	enqueued time.Time  // when the job last entered the queue
}

// JobView is the JSON rendering of a job's state.
type JobView struct {
	ID          int      `json:"id"`
	State       JobState `json:"state"`
	Error       string   `json:"error,omitempty"`
	Stage       string   `json:"stage,omitempty"`
	Attempts    int      `json:"attempts,omitempty"`
	Resumed     bool     `json:"resumed,omitempty"`
	FromStore   bool     `json:"from_store,omitempty"`
	NextRetryAt string   `json:"next_retry_at,omitempty"`
	Spec        JobSpec  `json:"spec"`
	SubmittedAt string   `json:"submitted_at,omitempty"`
	StartedAt   string   `json:"started_at,omitempty"`
	FinishedAt  string   `json:"finished_at,omitempty"`
	Intervals   int      `json:"intervals,omitempty"`
	TraceID     string   `json:"trace_id,omitempty"`
	// Topdown is the per-category issue-slot tally accumulated so far
	// (final once the job is done); present only for Topdown jobs.
	Topdown  map[string]uint64 `json:"topdown,omitempty"`
	Manifest *obs.Manifest     `json:"manifest,omitempty"`
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// View snapshots the job for JSON rendering. The manifest (a large
// object) is included only on request.
func (j *Job) View(withManifest bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		State:       j.state,
		Error:       j.errMsg,
		Stage:       j.stage,
		Attempts:    j.attempts,
		Resumed:     j.resumed,
		FromStore:   j.fromStore,
		NextRetryAt: fmtTime(j.nextRetry),
		Spec:        j.Spec,
		SubmittedAt: fmtTime(j.submitted),
		StartedAt:   fmtTime(j.started),
		FinishedAt:  fmtTime(j.finished),
		TraceID:     j.traceID,
	}
	if j.state != JobRetrying {
		v.NextRetryAt = ""
	}
	if j.live != nil {
		v.Intervals = j.live.intervalCount()
		v.Topdown = j.live.topdownView()
	}
	if withManifest {
		v.Manifest = j.manifest
	}
	return v
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Manifest returns the run manifest (nil until the job is done).
func (j *Job) Manifest() *obs.Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.manifest
}

// Key returns the job's config+trace content key.
func (j *Job) Key() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.key
}

// Attempts returns the number of execution attempts started.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Cancel cancels the job: a queued, retrying or parked job is marked
// cancelled immediately (reported via the returned previous state), a
// running one has its run context cancelled and reaches the cancelled
// state when the pipeline notices. Terminal states are unaffected. Use
// Server-side cancellation (the HTTP handler or Server.Shutdown) for
// durable bookkeeping — Cancel itself never touches the WAL.
func (j *Job) Cancel() JobState {
	j.mu.Lock()
	prev := j.state
	switch j.state {
	case JobQueued, JobRetrying, JobParked:
		j.state = JobCancelled
		j.finished = time.Now()
		j.waitSpan.End()
		j.waitSpan = nil
	case JobRunning:
		j.requested = true
		if j.cancel != nil {
			defer j.cancel()
		}
	}
	j.mu.Unlock()
	return prev
}

// eventCounter is the obs.Sink a served job attaches for event-granular
// gauges. Event runs on the simulation goroutine for every pipeline
// event, so the counters are lock-free atomics; HTTP handlers read them
// at any time.
type eventCounter struct {
	dispatches atomic.Uint64
	shares     atomic.Uint64
}

func (c *eventCounter) Event(e *obs.Event) {
	switch e.Kind {
	case obs.KindDispatch:
		c.dispatches.Add(1)
	case obs.KindPIQShare:
		c.shares.Add(1)
	}
}

func (c *eventCounter) Interval(obs.Interval) {}
func (c *eventCounter) Close() error          { return nil }

// shareRate returns the fraction of dispatched μops that allocated into a
// shared P-IQ partition (0 when nothing dispatched yet).
func (c *eventCounter) shareRate() float64 {
	d := c.dispatches.Load()
	if d == 0 {
		return 0
	}
	return float64(c.shares.Load()) / float64(d)
}

// liveJob is the heartbeat-updated live state of one served job: the
// source of the per-job Prometheus gauges and of the post-completion
// /metrics view. Writes happen on the simulation goroutine via the
// recorder's interval fan-out hook; every read takes mu.
type liveJob struct {
	jobID    int
	arch     string
	workload string
	events   eventCounter

	mu        sync.Mutex
	last      obs.Interval
	intervals int
	// Cumulative counters: sums of the interval deltas, which by the
	// recorder's contract equal the end-of-run statistics once the final
	// (partial) interval lands.
	cycles, committed, fetched, issued   uint64
	flushes, squashed, stalls            uint64
	mispredicts, violations              uint64
	topdown                              [topdown.NumCategories]uint64
	topdownOn                            bool
	dump                                 *obs.MetricsDump
	done                                 bool
	finalIPC, finalEnergyPJ, finalOccAvg float64
}

func newLiveJob(j *Job) *liveJob {
	return &liveJob{jobID: j.ID, arch: j.Spec.Arch, workload: j.Spec.Workload}
}

// observe folds one heartbeat interval (and the registry dump taken with
// it) into the live state. Runs on the simulation goroutine.
func (l *liveJob) observe(iv obs.Interval, dump *obs.MetricsDump) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.last = iv
	l.intervals++
	l.cycles += iv.EndCycle - iv.StartCycle
	l.committed += iv.Committed
	l.fetched += iv.Fetched
	l.issued += iv.Issued
	l.flushes += iv.Flushes
	l.squashed += iv.Squashed
	l.stalls += iv.DispatchStalls
	l.mispredicts += iv.Mispredicts
	l.violations += iv.Violations
	if len(iv.Topdown) == len(l.topdown) {
		l.topdownOn = true
		for i, v := range iv.Topdown {
			l.topdown[i] += v
		}
	}
	l.dump = dump
}

// reset clears the accumulated state before a retry attempt re-runs the
// job, so its gauges do not double-count across attempts.
func (l *liveJob) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.last = obs.Interval{}
	l.intervals = 0
	l.cycles, l.committed, l.fetched, l.issued = 0, 0, 0, 0
	l.flushes, l.squashed, l.stalls = 0, 0, 0
	l.mispredicts, l.violations = 0, 0
	l.topdown = [topdown.NumCategories]uint64{}
	l.topdownOn = false
	l.dump = nil
	l.done = false
	l.finalIPC, l.finalEnergyPJ, l.finalOccAvg = 0, 0, 0
}

// finish pins the live state to the run manifest, so the gauges exposed
// after completion are exactly the manifest's final statistics (including
// the scheduler counters folded in by FinalizeSched, which no heartbeat
// ever sees).
func (l *liveJob) finish(m *obs.Manifest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.done = true
	l.cycles = m.Stats.Cycles
	l.committed = m.Stats.Committed
	l.fetched = m.Stats.Fetched
	l.issued = m.Stats.Issued
	l.flushes = m.Stats.Flushes
	l.squashed = m.Stats.Squashed
	l.stalls = m.Stats.DispatchStalls
	l.mispredicts = m.Stats.Mispredicts
	l.violations = m.Stats.Violations
	l.finalIPC = m.Stats.IPC
	l.finalEnergyPJ = m.Energy.TotalPJ
	l.finalOccAvg = m.Stats.AvgOccupancy
	if m.Topdown != nil {
		l.topdown = m.Topdown.Counts
		l.topdownOn = true
	}
	l.dump = m.Metrics
}

func (l *liveJob) intervalCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.intervals
}

// topdownView returns a name-keyed copy of the accumulated per-category
// issue-slot counters, or nil when the job runs without cycle accounting.
func (l *liveJob) topdownView() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.topdownOn {
		return nil
	}
	m := make(map[string]uint64, len(l.topdown))
	for i, name := range topdown.Names() {
		m[name] = l.topdown[i]
	}
	return m
}
