package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
)

// hub fans pre-rendered SSE frames out to every connected /stream client.
// Publishers never block: a subscriber that cannot keep up has frames
// dropped (live telemetry is a lossy window, not a durable log — the
// manifest is the durable record).
type hub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

// subBuffer is each subscriber's frame buffer; at the default heartbeat
// rate this is minutes of slack before drops start.
const subBuffer = 256

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new client. It returns a nil channel when the hub
// is already closed (server shutting down). cancel is idempotent.
func (h *hub) subscribe() (ch chan []byte, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, func() {}
	}
	ch = make(chan []byte, subBuffer)
	h.subs[ch] = struct{}{}
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
		})
	}
}

// count returns the number of connected subscribers.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// publish renders one SSE frame (`event: <event>` + JSON data line) and
// delivers it to every subscriber without blocking.
func (h *hub) publish(event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return // v is always one of our own types; a marshal failure is a bug, not a client's problem
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, data))
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- frame:
		default: // slow client: drop this frame for them
		}
	}
}

// close disconnects every subscriber and refuses new ones.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
