package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
)

// hub fans pre-rendered SSE frames out to every connected /stream client.
// Publishers never block: a subscriber that cannot keep up has frames
// dropped (live telemetry is a lossy window, not a durable log — the
// manifest is the durable record). Drops are counted (surfaced as
// ballserved_stream_dropped_total) and the first drop per client emits a
// structured warning carrying the client's ID.
type hub struct {
	log     *slog.Logger
	dropped atomic.Uint64 // frames dropped across all subscribers

	mu     sync.Mutex
	subs   map[chan []byte]*subscriber
	nextID int
	closed bool
}

// subscriber is the hub-side state of one connected stream client.
type subscriber struct {
	id     int
	warned bool // first-drop warning already logged
}

// subBuffer is each subscriber's frame buffer; at the default heartbeat
// rate this is minutes of slack before drops start.
const subBuffer = 256

func newHub(log *slog.Logger) *hub {
	return &hub{log: log, subs: make(map[chan []byte]*subscriber), nextID: 1}
}

// subscribe registers a new client. It returns a nil channel when the hub
// is already closed (server shutting down). cancel is idempotent.
func (h *hub) subscribe() (ch chan []byte, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, func() {}
	}
	ch = make(chan []byte, subBuffer)
	h.subs[ch] = &subscriber{id: h.nextID}
	h.nextID++
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
		})
	}
}

// count returns the number of connected subscribers.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// drops returns the total frames dropped on slow subscribers.
func (h *hub) drops() uint64 {
	return h.dropped.Load()
}

// publish renders one SSE frame (`event: <event>` + JSON data line) and
// delivers it to every subscriber without blocking.
func (h *hub) publish(event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return // v is always one of our own types; a marshal failure is a bug, not a client's problem
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, data))
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch, sub := range h.subs {
		select {
		case ch <- frame:
		default: // slow client: drop this frame for them
			h.dropped.Add(1)
			if !sub.warned {
				sub.warned = true
				h.log.Warn("stream subscriber falling behind, dropping frames",
					"client", sub.id, "event", event, "buffer", subBuffer)
			}
		}
	}
}

// close disconnects every subscriber and refuses new ones.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
