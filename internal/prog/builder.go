// Package prog provides a builder for μop programs and a functional
// execution engine that turns a program into the dynamic μop stream the
// timing simulator consumes.
package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Label identifies a branch target created by the builder.
type Label int

// Program is an assembled μop program plus its initial memory image.
type Program struct {
	Name  string
	Insts []isa.Inst
	// InitMem seeds memory before execution: address → 64-bit value.
	InitMem map[uint64]int64
	// InitReg seeds architectural registers before execution.
	InitReg map[isa.Reg]int64
}

// Builder assembles a Program instruction by instruction. Branch targets are
// created with NewLabel and placed with Bind; unresolved labels at Build time
// are an error.
type Builder struct {
	name    string
	insts   []isa.Inst
	labels  []int // label → instruction index, -1 while unbound
	patches []patch
	initMem map[uint64]int64
	initReg map[isa.Reg]int64
}

type patch struct {
	inst  int
	label Label
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		initMem: make(map[uint64]int64),
		initReg: make(map[isa.Reg]int64),
	}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// NewLabel creates a fresh, unbound label.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind binds l to the next emitted instruction.
func (b *Builder) Bind(l Label) {
	if b.labels[l] != -1 {
		panic(fmt.Sprintf("prog: label %d bound twice", l))
	}
	b.labels[l] = len(b.insts)
}

// SetMem seeds an initial memory word.
func (b *Builder) SetMem(addr uint64, v int64) { b.initMem[addr&^7] = v }

// SetReg seeds an initial register value.
func (b *Builder) SetReg(r isa.Reg, v int64) { b.initReg[r] = v }

func (b *Builder) emit(in isa.Inst) {
	b.insts = append(b.insts, in)
}

// MovImm emits dst = imm.
func (b *Builder) MovImm(dst isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpIntALU, Fn: isa.FnMovImm, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone, Imm: imm})
}

// ALU emits an integer ALU operation dst = fn(src1, src2) + (imm where applicable).
func (b *Builder) ALU(fn isa.Fn, dst, src1, src2 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpIntALU, Fn: fn, Dst: dst, Src1: src1, Src2: src2, Imm: imm})
}

// AddImm emits dst = src + imm.
func (b *Builder) AddImm(dst, src isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpIntALU, Fn: isa.FnAdd, Dst: dst, Src1: src, Src2: isa.RegNone, Imm: imm})
}

// Add emits dst = src1 + src2.
func (b *Builder) Add(dst, src1, src2 isa.Reg) { b.ALU(isa.FnAdd, dst, src1, src2, 0) }

// Sub emits dst = src1 - src2.
func (b *Builder) Sub(dst, src1, src2 isa.Reg) { b.ALU(isa.FnSub, dst, src1, src2, 0) }

// Mix emits dst = mix(src1, src2, imm), a cheap hash useful for
// data-dependent control flow in synthetic kernels.
func (b *Builder) Mix(dst, src1, src2 isa.Reg, imm int64) {
	b.ALU(isa.FnMix, dst, src1, src2, imm)
}

// IntMul emits a multiply-class μop dst = src1 * src2.
func (b *Builder) IntMul(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpIntMul, Fn: isa.FnMul, Dst: dst, Src1: src1, Src2: src2})
}

// IntDiv emits a divide-class μop dst = src1 / src2.
func (b *Builder) IntDiv(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpIntDiv, Fn: isa.FnDiv, Dst: dst, Src1: src1, Src2: src2})
}

// FpAdd emits a floating-point-add-class μop.
func (b *Builder) FpAdd(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFpAdd, Fn: isa.FnAdd, Dst: dst, Src1: src1, Src2: src2})
}

// FpSub emits a floating-point-subtract μop (FpAdd class).
func (b *Builder) FpSub(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFpAdd, Fn: isa.FnSub, Dst: dst, Src1: src1, Src2: src2})
}

// FpMul emits a floating-point-multiply-class μop.
func (b *Builder) FpMul(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFpMul, Fn: isa.FnMul, Dst: dst, Src1: src1, Src2: src2})
}

// FpDiv emits a floating-point-divide-class μop.
func (b *Builder) FpDiv(dst, src1, src2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFpDiv, Fn: isa.FnDiv, Dst: dst, Src1: src1, Src2: src2})
}

// Load emits dst = mem[base+imm].
func (b *Builder) Load(dst, base isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone, Base: base, Imm: imm})
}

// Store emits mem[base+imm] = data.
func (b *Builder) Store(data, base isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpStore, Dst: isa.RegNone, Src1: data, Src2: isa.RegNone, Base: base, Imm: imm})
}

// Branch emits a conditional branch on src to label.
func (b *Builder) Branch(cond isa.BrCond, src isa.Reg, l Label) {
	b.patches = append(b.patches, patch{inst: len(b.insts), label: l})
	b.emit(isa.Inst{Op: isa.OpBranch, Cond: cond, Src1: src, Src2: isa.RegNone, Dst: isa.RegNone})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(l Label) { b.Branch(isa.BrAlways, isa.RegNone, l) }

// Nop emits a no-op.
func (b *Builder) Nop() {
	b.emit(isa.Inst{Op: isa.OpNop, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
}

// Build resolves labels and returns the finished Program. It panics on
// unbound labels, which indicates a bug in the kernel generator.
func (b *Builder) Build() *Program {
	b.emit(isa.Inst{Op: isa.OpNop, Halt: true, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	for _, p := range b.patches {
		tgt := b.labels[p.label]
		if tgt == -1 {
			panic(fmt.Sprintf("prog: program %q: unbound label %d", b.name, p.label))
		}
		b.insts[p.inst].Target = tgt
	}
	return &Program{
		Name:    b.name,
		Insts:   b.insts,
		InitMem: b.initMem,
		InitReg: b.initReg,
	}
}
