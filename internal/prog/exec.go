package prog

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/isa"
)

// ErrFuel is returned when functional execution exceeds its μop budget
// without reaching the halt instruction.
var ErrFuel = errors.New("prog: out of fuel before halt")

// ArchState is the architectural state of the machine: registers and a
// sparse 8-byte-word memory.
type ArchState struct {
	Regs [isa.NumArchRegs]int64
	Mem  map[uint64]int64
}

// NewArchState returns a zeroed state with an empty memory.
func NewArchState() *ArchState {
	return &ArchState{Mem: make(map[uint64]int64)}
}

// Clone deep-copies the state.
func (s *ArchState) Clone() *ArchState {
	c := &ArchState{Regs: s.Regs, Mem: make(map[uint64]int64, len(s.Mem))}
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return c
}

// LoadWord reads the 8-byte-aligned word containing addr.
func (s *ArchState) LoadWord(addr uint64) int64 { return s.Mem[addr&^7] }

// StoreWord writes the 8-byte-aligned word containing addr.
func (s *ArchState) StoreWord(addr uint64, v int64) { s.Mem[addr&^7] = v }

// mix is the FnMix semantic: a cheap invertible-ish hash used by synthetic
// kernels to derive data-dependent branch conditions and addresses.
func mix(a, b, imm int64) int64 {
	x := uint64(a)*0x9E3779B97F4A7C15 ^ uint64(b) + uint64(imm)
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int64(x)
}

// evalALU computes the arithmetic result for ALU-class μops.
func evalALU(fn isa.Fn, a, b, imm int64) int64 {
	switch fn {
	case isa.FnAdd:
		return a + b + imm
	case isa.FnSub:
		return a - b + imm
	case isa.FnMul:
		return a * b
	case isa.FnDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.FnAnd:
		return a & b
	case isa.FnOr:
		return a | b
	case isa.FnXor:
		return a ^ b
	case isa.FnShl:
		return a << (uint64(b) & 63)
	case isa.FnShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case isa.FnSlt:
		if a < b {
			return 1
		}
		return 0
	case isa.FnMovImm:
		return imm
	case isa.FnMix:
		return mix(a, b, imm)
	default:
		panic(fmt.Sprintf("prog: unknown fn %v", fn))
	}
}

// Trace is the fully materialised dynamic μop stream of one program run,
// together with the final architectural state (the oracle for end-to-end
// timing-vs-functional checks).
type Trace struct {
	Program *Program
	Ops     []isa.DynInst
	Final   *ArchState
	// LoadValues[i] is the value loaded by Ops[i] if it is a load
	// (used by store-to-load forwarding checks in tests).
	LoadValues map[uint64]int64 // seq → value
}

// Execute runs the program functionally and returns its dynamic trace.
// maxOps bounds the dynamic μop count (the trace excludes the halt pseudo-op
// and OpNop padding never enters the stream is false: nops are traced so the
// front-end sees them, matching a real fetch stream).
func Execute(p *Program, maxOps int) (*Trace, error) {
	return ExecuteContext(context.Background(), p, maxOps)
}

// genCancelMask paces the cancellation poll during trace generation: one
// ctx check every 64K generated μops, cheap enough to vanish in the
// interpreter loop while bounding cancel latency to well under a
// millisecond of generation work.
const genCancelMask = 1<<16 - 1

// ExecuteContext is Execute with cooperative cancellation: generating a
// long trace polls ctx every 64K μops and aborts with an error wrapping
// context.Cause(ctx), so services truncating multi-million-μop kernels can
// shut down without waiting out the interpreter.
func ExecuteContext(ctx context.Context, p *Program, maxOps int) (*Trace, error) {
	st := NewArchState()
	for r, v := range p.InitReg {
		st.Regs[r] = v
	}
	for a, v := range p.InitMem {
		st.Mem[a] = v
	}

	tr := &Trace{
		Program:    p,
		Final:      st,
		LoadValues: make(map[uint64]int64),
	}
	pc := 0
	done := ctx.Done()
	for len(tr.Ops) < maxOps {
		if done != nil && len(tr.Ops)&genCancelMask == 0 && len(tr.Ops) > 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("prog: trace generation cancelled at %d μops: %w",
					len(tr.Ops), context.Cause(ctx))
			default:
			}
		}
		if pc < 0 || pc >= len(p.Insts) {
			return nil, fmt.Errorf("prog: program %q: pc %d out of range", p.Name, pc)
		}
		in := &p.Insts[pc]
		if in.Halt {
			return tr, nil
		}
		d := isa.DynInst{
			Seq:  uint64(len(tr.Ops)),
			PC:   pc,
			Op:   in.Op,
			Fn:   in.Fn,
			Cond: in.Cond,
			Dst:  in.Dst,
			Imm:  in.Imm,
			Size: 8,
		}
		next := pc + 1
		switch in.Op {
		case isa.OpNop:
			d.Src1, d.Src2 = isa.RegNone, isa.RegNone
		case isa.OpLoad:
			d.Src1, d.Src2 = in.Base, isa.RegNone
			d.Addr = uint64(st.Regs[in.Base]+in.Imm) &^ 7
			v := st.LoadWord(d.Addr)
			st.Regs[in.Dst] = v
			tr.LoadValues[d.Seq] = v
		case isa.OpStore:
			d.Src1, d.Src2 = in.Base, in.Src1 // base, data
			d.Addr = uint64(st.Regs[in.Base]+in.Imm) &^ 7
			st.StoreWord(d.Addr, st.Regs[in.Src1])
		case isa.OpBranch:
			d.Src1, d.Src2 = in.Src1, isa.RegNone
			var v int64
			if in.Src1.Valid() {
				v = st.Regs[in.Src1]
			}
			d.Taken = in.Cond.Eval(v)
			if d.Taken {
				next = in.Target
			}
		default: // ALU classes
			d.Src1, d.Src2 = in.Src1, in.Src2
			var a, bv int64
			if in.Src1.Valid() {
				a = st.Regs[in.Src1]
			}
			if in.Src2.Valid() {
				bv = st.Regs[in.Src2]
			}
			st.Regs[in.Dst] = evalALU(in.Fn, a, bv, in.Imm)
		}
		d.Next = next
		tr.Ops = append(tr.Ops, d)
		pc = next
	}
	return tr, ErrFuel
}

// MustExecute is Execute but tolerates fuel exhaustion: kernels are
// typically infinite-friendly loops that the caller truncates at maxOps.
// Genuine execution errors still panic.
func MustExecute(p *Program, maxOps int) *Trace {
	tr, err := Execute(p, maxOps)
	if err != nil && !errors.Is(err, ErrFuel) {
		panic(err)
	}
	return tr
}
