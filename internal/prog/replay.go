package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Replay is the golden-model cross-checker: an independent functional
// executor fed the pipeline's committed μop stream. For every committed
// μop it recomputes the architectural effect — ALU result, effective
// address, branch outcome — from its own architectural state and verifies
// it against what the trace generator recorded in the DynInst. A timing
// bug that commits μops out of order, skips one, double-commits, or
// commits a squashed wrong-path μop therefore surfaces as a concrete
// divergence instead of silently producing plausible statistics.
type Replay struct {
	program *Program
	st      *ArchState
	n       uint64
	err     error
}

// NewReplay builds a replay executor over the program's initial state.
func NewReplay(p *Program) *Replay {
	st := NewArchState()
	for r, v := range p.InitReg {
		st.Regs[r] = v
	}
	for a, v := range p.InitMem {
		st.Mem[a] = v
	}
	return &Replay{program: p, st: st}
}

// Ops returns how many μops have been replayed.
func (r *Replay) Ops() uint64 { return r.n }

// Err returns the first divergence found (nil if none). Once set, further
// Apply calls are no-ops: the replay state is no longer meaningful.
func (r *Replay) Err() error { return r.err }

// Apply replays one committed μop and verifies it. It returns the first
// divergence found (also retained in Err).
func (r *Replay) Apply(d *isa.DynInst) error {
	if r.err != nil {
		return r.err
	}
	if d.Seq != r.n {
		return r.fail(d, "commit stream out of order: got seq %d, want %d", d.Seq, r.n)
	}
	reg := func(a isa.Reg) int64 {
		if !a.Valid() {
			return 0
		}
		return r.st.Regs[a]
	}
	switch d.Op {
	case isa.OpNop:
	case isa.OpLoad:
		addr := uint64(reg(d.Src1)+d.Imm) &^ 7
		if addr != d.Addr {
			return r.fail(d, "load address diverged: recomputed %#x, trace has %#x", addr, d.Addr)
		}
		r.st.Regs[d.Dst] = r.st.LoadWord(addr)
	case isa.OpStore:
		addr := uint64(reg(d.Src1)+d.Imm) &^ 7
		if addr != d.Addr {
			return r.fail(d, "store address diverged: recomputed %#x, trace has %#x", addr, d.Addr)
		}
		r.st.StoreWord(addr, reg(d.Src2))
	case isa.OpBranch:
		if taken := d.Cond.Eval(reg(d.Src1)); taken != d.Taken {
			return r.fail(d, "branch outcome diverged: recomputed taken=%v, trace has %v", taken, d.Taken)
		}
	default: // ALU classes
		r.st.Regs[d.Dst] = evalALU(d.Fn, reg(d.Src1), reg(d.Src2), d.Imm)
	}
	r.n++
	return nil
}

func (r *Replay) fail(d *isa.DynInst, format string, args ...any) error {
	r.err = fmt.Errorf("prog: golden-model divergence at committed μop %d (%s): %s",
		r.n, d.String(), fmt.Sprintf(format, args...))
	return r.err
}

// VerifyFinal compares the replayed architectural state against the
// oracle's (meaningful only after the full trace committed). Registers are
// compared exhaustively, memory word by word in both directions.
func (r *Replay) VerifyFinal(want *ArchState) error {
	if r.err != nil {
		return r.err
	}
	for i, v := range r.st.Regs {
		if want.Regs[i] != v {
			return fmt.Errorf("prog: golden-model divergence after %d μops: r%d = %d, oracle has %d", r.n, i, v, want.Regs[i])
		}
	}
	for a, v := range r.st.Mem {
		if wv := want.Mem[a]; wv != v {
			return fmt.Errorf("prog: golden-model divergence after %d μops: mem[%#x] = %d, oracle has %d", r.n, a, v, wv)
		}
	}
	for a, wv := range want.Mem {
		if v := r.st.Mem[a]; v != wv {
			return fmt.Errorf("prog: golden-model divergence after %d μops: mem[%#x] = %d, oracle has %d", r.n, a, v, wv)
		}
	}
	return nil
}
