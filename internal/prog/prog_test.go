package prog

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// sumLoop builds: r1 = 0; for r2 = n; r2 != 0; r2-- { r1 += r2 }.
func sumLoop(n int64) *Program {
	b := NewBuilder("sumloop")
	b.MovImm(isa.R(1), 0)
	b.MovImm(isa.R(2), n)
	top := b.NewLabel()
	b.Bind(top)
	b.Add(isa.R(1), isa.R(1), isa.R(2))
	b.AddImm(isa.R(2), isa.R(2), -1)
	b.Branch(isa.BrNEZ, isa.R(2), top)
	return b.Build()
}

func TestExecuteSumLoop(t *testing.T) {
	p := sumLoop(10)
	tr, err := Execute(p, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final.Regs[isa.R(1)]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	// 2 setup + 10 iterations × 3 μops.
	if got := len(tr.Ops); got != 32 {
		t.Errorf("dynamic μops = %d, want 32", got)
	}
}

func TestExecuteFuel(t *testing.T) {
	p := sumLoop(1 << 40)
	tr, err := Execute(p, 100)
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
	if len(tr.Ops) != 100 {
		t.Errorf("got %d ops, want exactly 100", len(tr.Ops))
	}
	if MustExecute(p, 100) == nil {
		t.Error("MustExecute returned nil on fuel exhaustion")
	}
}

func TestExecuteMemory(t *testing.T) {
	b := NewBuilder("mem")
	b.SetMem(0x1000, 42)
	b.MovImm(isa.R(1), 0x1000)
	b.Load(isa.R(2), isa.R(1), 0)   // r2 = mem[0x1000] = 42
	b.AddImm(isa.R(3), isa.R(2), 8) // r3 = 50
	b.Store(isa.R(3), isa.R(1), 8)  // mem[0x1008] = 50
	b.Load(isa.R(4), isa.R(1), 8)   // r4 = 50
	p := b.Build()

	tr, err := Execute(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final.Regs[isa.R(4)]; got != 50 {
		t.Errorf("r4 = %d, want 50", got)
	}
	if got := tr.Final.LoadWord(0x1008); got != 50 {
		t.Errorf("mem[0x1008] = %d, want 50", got)
	}
	// Dynamic record checks: addresses resolved, load values recorded.
	var loads, stores int
	for _, d := range tr.Ops {
		if d.IsLoad() {
			loads++
			if d.Addr != 0x1000 && d.Addr != 0x1008 {
				t.Errorf("load addr = %#x", d.Addr)
			}
		}
		if d.IsStore() {
			stores++
			if d.Addr != 0x1008 {
				t.Errorf("store addr = %#x", d.Addr)
			}
		}
	}
	if loads != 2 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 2,1", loads, stores)
	}
	if v, ok := tr.LoadValues[tr.Ops[1].Seq]; !ok || v != 42 {
		t.Errorf("LoadValues[first load] = %d,%v", v, ok)
	}
}

func TestBranchOutcomesRecorded(t *testing.T) {
	p := sumLoop(3)
	tr, err := Execute(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	var taken, notTaken int
	for _, d := range tr.Ops {
		if !d.IsBranch() {
			continue
		}
		if d.Taken {
			taken++
			if d.Next == d.PC+1 {
				t.Error("taken branch has fallthrough Next")
			}
		} else {
			notTaken++
			if d.Next != d.PC+1 {
				t.Error("not-taken branch has non-fallthrough Next")
			}
		}
	}
	if taken != 2 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 2,1", taken, notTaken)
	}
}

func TestSeqNumbersAreProgramOrder(t *testing.T) {
	tr := MustExecute(sumLoop(20), 1000)
	for i, d := range tr.Ops {
		if d.Seq != uint64(i) {
			t.Fatalf("Ops[%d].Seq = %d", i, d.Seq)
		}
	}
}

func TestUnboundLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with unbound label did not panic")
		}
	}()
	b := NewBuilder("bad")
	l := b.NewLabel()
	b.Jmp(l)
	b.Build()
}

func TestDoubleBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double Bind did not panic")
		}
	}()
	b := NewBuilder("bad")
	l := b.NewLabel()
	b.Bind(l)
	b.Nop()
	b.Bind(l)
}

func TestEvalALUSemantics(t *testing.T) {
	cases := []struct {
		fn      isa.Fn
		a, b, i int64
		want    int64
	}{
		{isa.FnAdd, 2, 3, 1, 6},
		{isa.FnSub, 7, 3, 0, 4},
		{isa.FnMul, -4, 3, 0, -12},
		{isa.FnDiv, 12, 4, 0, 3},
		{isa.FnDiv, 12, 0, 0, 0}, // divide by zero is defined as 0
		{isa.FnAnd, 0b1100, 0b1010, 0, 0b1000},
		{isa.FnOr, 0b1100, 0b1010, 0, 0b1110},
		{isa.FnXor, 0b1100, 0b1010, 0, 0b0110},
		{isa.FnShl, 1, 4, 0, 16},
		{isa.FnShr, 16, 4, 0, 1},
		{isa.FnShr, -1, 63, 0, 1}, // logical shift
		{isa.FnSlt, 1, 2, 0, 1},
		{isa.FnSlt, 2, 1, 0, 0},
		{isa.FnMovImm, 99, 99, -5, -5},
	}
	for _, tc := range cases {
		if got := evalALU(tc.fn, tc.a, tc.b, tc.i); got != tc.want {
			t.Errorf("evalALU(%v,%d,%d,%d) = %d, want %d", tc.fn, tc.a, tc.b, tc.i, got, tc.want)
		}
	}
}

func TestMixIsDeterministicAndSpreads(t *testing.T) {
	if mix(1, 2, 3) != mix(1, 2, 3) {
		t.Error("mix not deterministic")
	}
	// Property: small input changes produce different outputs (no trivial
	// fixed point collapse). Not a cryptographic claim, just sanity.
	f := func(a, b int64) bool {
		return mix(a, b, 0) != mix(a+1, b, 0) || a == a+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	// Property: executing the same program twice yields identical traces.
	p := sumLoop(50)
	t1 := MustExecute(p, 5000)
	t2 := MustExecute(p, 5000)
	if len(t1.Ops) != len(t2.Ops) {
		t.Fatalf("lengths differ: %d vs %d", len(t1.Ops), len(t2.Ops))
	}
	for i := range t1.Ops {
		if t1.Ops[i] != t2.Ops[i] {
			t.Fatalf("op %d differs: %v vs %v", i, t1.Ops[i], t2.Ops[i])
		}
	}
}

func TestArchStateClone(t *testing.T) {
	s := NewArchState()
	s.Regs[3] = 7
	s.StoreWord(0x40, 9)
	c := s.Clone()
	c.Regs[3] = 8
	c.StoreWord(0x40, 10)
	if s.Regs[3] != 7 || s.LoadWord(0x40) != 9 {
		t.Error("Clone aliases original state")
	}
}

func TestWordAlignment(t *testing.T) {
	s := NewArchState()
	s.StoreWord(0x1003, 5) // misaligned address maps to containing word
	if got := s.LoadWord(0x1000); got != 5 {
		t.Errorf("LoadWord(0x1000) = %d, want 5", got)
	}
}
