package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/span"
)

// TestRunOrderingAndIsolation: outcomes land in submission order, a failed
// job only poisons its own slot, and every job runs exactly once.
func TestRunOrderingAndIsolation(t *testing.T) {
	const n = 64
	boom := errors.New("boom")
	var ran atomic.Int64
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			ran.Add(1)
			if i%7 == 3 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			return i * i, nil
		}
	}
	out := Run(context.Background(), 8, jobs)
	if len(out) != n {
		t.Fatalf("got %d outcomes, want %d", len(out), n)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d jobs, want %d", got, n)
	}
	for i, o := range out {
		if i%7 == 3 {
			if !errors.Is(o.Err, boom) {
				t.Errorf("slot %d: err = %v, want boom", i, o.Err)
			}
			continue
		}
		if o.Err != nil || o.Value != i*i {
			t.Errorf("slot %d: (%d, %v), want (%d, nil)", i, o.Value, o.Err, i*i)
		}
	}
}

// TestRunSaturation: no more than parallelism jobs run at once, and all of
// them run even when the job count far exceeds the pool.
func TestRunSaturation(t *testing.T) {
	const par, n = 4, 100
	var inflight, peak, total atomic.Int64
	jobs := make([]Job[struct{}], n)
	for i := range jobs {
		jobs[i] = func(context.Context) (struct{}, error) {
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			inflight.Add(-1)
			total.Add(1)
			return struct{}{}, nil
		}
	}
	Run(context.Background(), par, jobs)
	if got := peak.Load(); got > par {
		t.Errorf("peak concurrency %d exceeds parallelism %d", got, par)
	}
	if got := total.Load(); got != n {
		t.Errorf("completed %d jobs, want %d", got, n)
	}
}

// TestRunCancelMidCampaign: cancelling the context mid-campaign stops new
// dispatch; unstarted jobs report the context error in-slot, and the
// outcome slice stays fully populated.
func TestRunCancelMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50
	release := make(chan struct{})
	var started atomic.Int64
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			started.Add(1)
			select {
			case <-release:
				return i, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
	}
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	out := Run(ctx, 2, jobs)
	var ok, cancelled int
	for i, o := range out {
		switch {
		case o.Err == nil:
			ok++
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("slot %d: unexpected error %v", i, o.Err)
		}
	}
	if cancelled == 0 {
		t.Error("no slot reported the cancellation")
	}
	if ok+cancelled != n {
		t.Errorf("ok %d + cancelled %d != %d", ok, cancelled, n)
	}
}

// TestCacheSingleflight: concurrent Gets for one key run the generator
// once; everyone shares the identical value and the hit/join/miss
// counters partition the calls.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache[*int](0)
	var gens atomic.Int64
	gate := make(chan struct{})
	gen := func(context.Context) (*int, int64, error) {
		gens.Add(1)
		<-gate
		v := 42
		return &v, 8, nil
	}
	const callers = 16
	var wg sync.WaitGroup
	vals := make([]*int, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get(context.Background(), "k", gen)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			vals[i] = v
		}()
	}
	time.Sleep(5 * time.Millisecond) // let callers pile onto the flight
	close(gate)
	wg.Wait()
	if got := gens.Load(); got != 1 {
		t.Fatalf("generator ran %d times, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("caller %d got a different pointer", i)
		}
	}
	// A later Get is a plain hit.
	if _, err := c.Get(context.Background(), "k", gen); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Joins != callers {
		t.Errorf("hits %d + joins %d = %d, want %d", st.Hits, st.Joins, st.Hits+st.Joins, callers)
	}
	if st.BytesUsed != 8 || st.Entries != 1 {
		t.Errorf("bytes/entries = %d/%d, want 8/1", st.BytesUsed, st.Entries)
	}
}

// TestCacheErrorNotCached: a failed generation propagates to its waiters
// but is retried by the next Get.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache[int](0)
	calls := 0
	gen := func(context.Context) (int, int64, error) {
		calls++
		if calls == 1 {
			return 0, 0, errors.New("transient")
		}
		return 7, 1, nil
	}
	if _, err := c.Get(context.Background(), "k", gen); err == nil {
		t.Fatal("first Get succeeded, want error")
	}
	v, err := c.Get(context.Background(), "k", gen)
	if err != nil || v != 7 {
		t.Fatalf("retry Get = (%d, %v), want (7, nil)", v, err)
	}
	if calls != 2 {
		t.Fatalf("generator ran %d times, want 2", calls)
	}
}

// TestCacheLeaderCancelledJoinerRetries: a joiner with a live context does
// not inherit the leader's cancellation — it reruns the generation.
func TestCacheLeaderCancelledJoinerRetries(t *testing.T) {
	c := NewCache[int](0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFlight := make(chan struct{})
	var gens atomic.Int64
	gen := func(ctx context.Context) (int, int64, error) {
		if gens.Add(1) == 1 {
			close(inFlight)
			<-ctx.Done()
			return 0, 0, ctx.Err()
		}
		return 9, 1, nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Get(leaderCtx, "k", gen); !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want canceled", err)
		}
	}()
	<-inFlight
	var joinerV int
	var joinerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		joinerV, joinerErr = c.Get(context.Background(), "k", gen)
	}()
	time.Sleep(5 * time.Millisecond)
	cancelLeader()
	wg.Wait()
	if joinerErr != nil || joinerV != 9 {
		t.Fatalf("joiner = (%d, %v), want (9, nil)", joinerV, joinerErr)
	}
}

// TestCacheLRUEviction: inserts beyond the byte budget evict the least
// recently used entries, and an oversized entry survives alone.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache[string](100)
	get := func(key string, bytes int64) {
		t.Helper()
		if _, err := c.Get(context.Background(), key, func(context.Context) (string, int64, error) {
			return key, bytes, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a", 40)
	get("b", 40)
	get("a", 0)  // touch a: b becomes LRU
	get("c", 40) // evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.BytesUsed != 80 {
		t.Fatalf("after c: evictions/entries/bytes = %d/%d/%d, want 1/2/80", st.Evictions, st.Entries, st.BytesUsed)
	}
	// b must regenerate (a miss), a must still hit.
	before := c.Stats().Misses
	get("b", 40)
	if got := c.Stats().Misses; got != before+1 {
		t.Errorf("b was not evicted: misses %d, want %d", got, before+1)
	}
	// An entry larger than the whole budget still caches (alone).
	get("huge", 500)
	st = c.Stats()
	if st.Entries != 1 || st.BytesUsed != 500 {
		t.Errorf("after huge: entries/bytes = %d/%d, want 1/500", st.Entries, st.BytesUsed)
	}
}

// TestCacheLeaderRequeuedAfterRecoveryRetry models the job-fabric crash
// pattern end to end at the cache layer: the singleflight leader is
// cancelled mid-generation (its job torn down for durable requeue), a
// joiner with a live context retries the generation itself, and when the
// leader's job is later re-enqueued by recovery its fresh Get must be
// served from the joiner's now-ready value — one extra generation total,
// never a poisoned entry.
func TestCacheLeaderRequeuedAfterRecoveryRetry(t *testing.T) {
	c := NewCache[int](0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFlight := make(chan struct{})
	var gens atomic.Int64
	gen := func(ctx context.Context) (int, int64, error) {
		if gens.Add(1) == 1 {
			close(inFlight)
			<-ctx.Done()
			return 0, 0, ctx.Err()
		}
		return 11, 1, nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Get(leaderCtx, "k", gen); !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want canceled", err)
		}
	}()
	<-inFlight
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, err := c.Get(context.Background(), "k", gen); err != nil || v != 11 {
			t.Errorf("joiner = (%d, %v), want (11, nil)", v, err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancelLeader() // the leader's job is killed for requeue
	wg.Wait()

	// The requeued job's new attempt: a fresh Get with a live context.
	before := c.Stats()
	v, err := c.Get(context.Background(), "k", gen)
	if err != nil || v != 11 {
		t.Fatalf("requeued leader = (%d, %v), want (11, nil)", v, err)
	}
	after := c.Stats()
	if after.Misses != before.Misses || after.Hits != before.Hits+1 {
		t.Errorf("requeued leader missed (misses %d→%d, hits %d→%d), want a pure hit",
			before.Misses, after.Misses, before.Hits, after.Hits)
	}
	if got := gens.Load(); got != 2 {
		t.Errorf("generator ran %d times, want 2 (cancelled leader + joiner retry)", got)
	}
}

// TestCacheLookupSpans: a context-carried lifecycle span records one
// "cache.lookup" child per Get, annotated with the outcome, and the
// generator runs nested under the lookup span.
func TestCacheLookupSpans(t *testing.T) {
	tr := span.NewTracer(0)
	root := tr.Start("t", "job")
	ctx := span.ContextWith(context.Background(), root)

	c := NewCache[int](0)
	gen := func(ctx context.Context) (int, int64, error) {
		if sp := span.FromContext(ctx); sp != nil {
			sp.Child("trace.generate").End()
		}
		return 7, 1, nil
	}
	if v, err := c.Get(ctx, "k", gen); v != 7 || err != nil {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if v, err := c.Get(ctx, "k", gen); v != 7 || err != nil {
		t.Fatalf("Get = %d, %v", v, err)
	}
	root.End()

	tree := tr.Tree("t")
	var outcomes []string
	for _, v := range tree.Spans {
		if v.Name == "cache.lookup" {
			if v.Open {
				t.Error("cache.lookup span left open")
			}
			outcomes = append(outcomes, v.Attr("outcome"))
		}
	}
	if len(outcomes) != 2 || outcomes[0] != "miss" || outcomes[1] != "hit" {
		t.Errorf("lookup outcomes = %v, want [miss hit]", outcomes)
	}
	// The generator's span must be a child of the miss lookup.
	genSpan, ok := tree.Find("trace.generate")
	if !ok {
		t.Fatal("no trace.generate span")
	}
	lookup, _ := tree.Find("cache.lookup")
	if genSpan.Parent != lookup.ID {
		t.Errorf("trace.generate parent = %d, want lookup %d", genSpan.Parent, lookup.ID)
	}
	// Untraced context: Gets still work, nothing recorded.
	if v, err := c.Get(context.Background(), "k2", gen); v != 7 || err != nil {
		t.Fatalf("untraced Get = %d, %v", v, err)
	}
}
