// Package campaign is the parallel run engine under the public batch API
// (ballerino.RunAll): a bounded worker pool executing independent jobs
// with cooperative cancellation, deterministic result ordering and
// per-job error isolation, plus a content-keyed, singleflight-deduplicated
// LRU cache that lets N jobs over the same input share one expensive
// generation step (the μop trace).
//
// The engine is deliberately generic — it knows nothing about simulations.
// Everything a job shares (a cached trace, a config table) must be safe
// for concurrent readers; the pool guarantees only that each job runs at
// most once and that outcome i belongs to job i.
package campaign

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one unit of campaign work, executed on a worker goroutine.
type Job[T any] func(ctx context.Context) (T, error)

// Outcome is one job's result, reported in the job's submission slot
// regardless of completion order.
type Outcome[T any] struct {
	Value T
	Err   error
}

// Run executes jobs on at most parallelism concurrent workers (0 or
// negative selects GOMAXPROCS) and returns one Outcome per job, in
// submission order. A failed job records its error in-slot and the
// campaign continues. Cancelling ctx stops claiming new jobs — in-flight
// jobs see the cancelled ctx and wind down cooperatively — and every
// unstarted job reports ctx.Err() in its slot.
func Run[T any](ctx context.Context, parallelism int, jobs []Job[T]) []Outcome[T] {
	out := make([]Outcome[T], len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			// A claimed-but-unstarted job under a dead context reports the
			// cancellation instead of running: the campaign drains quickly
			// and no slot is left silently zero.
			if err := ctx.Err(); err != nil {
				out[i] = Outcome[T]{Err: err}
				continue
			}
			v, err := jobs[i](ctx)
			out[i] = Outcome[T]{Value: v, Err: err}
		}
	}
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go worker()
	}
	wg.Wait()
	return out
}
