package campaign

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"repro/internal/span"
)

// CacheStats is a point-in-time snapshot of a Cache's behaviour. Hits,
// Joins and Misses partition the Get calls: a Hit found a ready value, a
// Join waited on another caller's in-flight generation, and a Miss ran
// the generator itself.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Joins     uint64
	Evictions uint64

	Entries     int
	BytesUsed   int64
	BytesBudget int64 // 0 = unbounded
}

// Cache is a content-keyed, singleflight-deduplicated cache of immutable
// values with an LRU byte budget. Concurrent Gets for one key share a
// single generation; values are never copied, so they must be treated as
// read-only by every holder. Eviction only drops the cache's reference —
// holders of an evicted value keep using it safely.
type Cache[V any] struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	entries map[string]*cacheEntry[V]
	stats   CacheStats
}

type cacheEntry[V any] struct {
	key   string
	ready chan struct{} // closed when val/err are set
	val   V
	err   error
	bytes int64
	elem  *list.Element // nil while generation is in flight
}

// NewCache builds a cache with the given byte budget (0 or negative =
// unbounded).
func NewCache[V any](budgetBytes int64) *Cache[V] {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &Cache[V]{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[string]*cacheEntry[V]),
	}
}

// Get returns the value for key, generating it with gen on a miss. gen
// reports the value's byte cost for the LRU budget. Errors are not
// cached: every waiter of a failed generation receives the error, the
// entry is dropped, and the next Get retries. A waiter whose own context
// is still live when the generating caller was cancelled retries the
// generation itself instead of inheriting the foreign cancellation.
//
// When ctx carries a lifecycle span (span.FromContext), the lookup is
// recorded as a "cache.lookup" child annotated with its outcome — hit,
// join, or miss — and gen runs under that child, so generation work
// nests inside the lookup in the job's span tree.
func (c *Cache[V]) Get(ctx context.Context, key string, gen func(context.Context) (V, int64, error)) (V, error) {
	sp := span.FromContext(ctx).Child("cache.lookup")
	v, outcome, err := c.get(span.ContextWith(ctx, sp), key, gen)
	sp.SetAttr("outcome", outcome)
	sp.Fail(err)
	sp.End()
	return v, err
}

// get is Get's uninstrumented core; it additionally reports which path
// produced the result ("hit", "join", "miss").
func (c *Cache[V]) get(ctx context.Context, key string, gen func(context.Context) (V, int64, error)) (V, string, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.ready:
				if e.err == nil {
					c.stats.Hits++
					c.touch(e)
					c.mu.Unlock()
					return e.val, "hit", nil
				}
				// A failed entry still in the map is being torn down by its
				// generator; drop our reference and retry below.
				c.mu.Unlock()
			default:
				c.stats.Joins++
				c.mu.Unlock()
				select {
				case <-e.ready:
					if e.err == nil {
						return e.val, "join", nil
					}
					if isCtxErr(e.err) && ctx.Err() == nil {
						continue // leader cancelled, we were not: retry
					}
					return e.val, "join", e.err
				case <-ctx.Done():
					var zero V
					return zero, "join", ctx.Err()
				}
			}
			continue
		}
		e := &cacheEntry[V]{key: key, ready: make(chan struct{})}
		c.entries[key] = e
		c.stats.Misses++
		c.mu.Unlock()

		v, bytes, err := gen(ctx)
		c.mu.Lock()
		e.val, e.err, e.bytes = v, err, bytes
		if err != nil {
			delete(c.entries, key)
		} else {
			e.elem = c.ll.PushFront(e)
			c.used += bytes
			c.evictLocked(e)
		}
		c.mu.Unlock()
		close(e.ready)
		return v, "miss", err
	}
}

// touch marks e most recently used. Caller holds mu.
func (c *Cache[V]) touch(e *cacheEntry[V]) {
	if e.elem != nil {
		c.ll.MoveToFront(e.elem)
	}
}

// evictLocked drops least-recently-used ready entries until the budget is
// met, never evicting keep (the just-inserted entry may legitimately
// exceed the whole budget on its own). Caller holds mu.
func (c *Cache[V]) evictLocked(keep *cacheEntry[V]) {
	if c.budget <= 0 {
		return
	}
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry[V])
		if e == keep {
			return
		}
		c.ll.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.used -= e.bytes
		c.stats.Evictions++
	}
}

// Stats snapshots the cache counters.
func (c *Cache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.BytesUsed = c.used
	s.BytesBudget = c.budget
	return s
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
