// Package dram models a DDR4 main memory in the style of Ramulator, reduced
// to what a scheduler study needs: per-bank row buffers, bank-level
// parallelism, command/data-bus serialisation and realistic row-hit /
// row-miss / row-conflict latencies, all expressed in CPU cycles.
//
// The model is "latency computing": Access is called with the current CPU
// cycle and immediately returns the cycle at which the data is available,
// updating internal bank and bus state. Requests should arrive in roughly
// non-decreasing time order, which the pipeline guarantees.
package dram

import "fmt"

// Config holds DDR4 timing and geometry expressed in CPU cycles.
// The defaults (see DefaultConfig) model one channel / one rank of
// DDR4-2400 behind a 3.4 GHz core, following Table I of the paper.
type Config struct {
	Channels   int    // independent channels, each with its own data bus
	Banks      int    // banks per channel
	RowBytes   uint64 // row-buffer size per bank
	TRCD       uint64 // activate → column command
	TCAS       uint64 // column command → first data
	TRP        uint64 // precharge
	TBurst     uint64 // data-bus occupancy per 64-byte line
	FrontDelay uint64 // controller + on-chip network overhead per request
}

// DefaultConfig models DDR4-2400 (tRCD=tCL=tRP ≈ 16.7 ns) behind a 3.4 GHz
// core: ≈57 core cycles per DRAM timing parameter, 4-beat burst ≈ 11 core
// cycles, and a ~28-cycle controller/NoC front overhead.
func DefaultConfig() Config {
	return Config{
		Channels:   1,
		Banks:      16,
		RowBytes:   8 << 10,
		TRCD:       57,
		TCAS:       57,
		TRP:        57,
		TBurst:     11,
		FrontDelay: 28,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.Channels&(c.Channels-1) != 0 {
		return fmt.Errorf("dram: Channels must be a positive power of two, got %d", c.Channels)
	}
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: Banks must be a positive power of two, got %d", c.Banks)
	}
	if c.RowBytes == 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: RowBytes must be a positive power of two, got %d", c.RowBytes)
	}
	return nil
}

// Stats counts DRAM events.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed row
	RowConflicts uint64 // different row open
}

type bank struct {
	busyUntil uint64
	openRow   uint64
	rowOpen   bool
}

// DRAM is a DDR4 device: one or more channels (each with its own data
// bus), each with its own banks.
type DRAM struct {
	cfg       Config
	banks     []bank   // Channels × Banks
	busFreeAt []uint64 // per channel
	stats     Stats
}

// New returns a DRAM with the given configuration.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{
		cfg:       cfg,
		banks:     make([]bank, cfg.Channels*cfg.Banks),
		busFreeAt: make([]uint64, cfg.Channels),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *DRAM {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Stats returns a copy of the event counters.
func (d *DRAM) Stats() Stats { return d.stats }

// channelOf interleaves channels at line granularity so sequential
// streams exploit all channel buses.
func (d *DRAM) channelOf(addr uint64) int {
	return int((addr >> 6) & uint64(d.cfg.Channels-1))
}

func (d *DRAM) bankOf(addr uint64) int {
	// Banks interleave at row granularity so streaming sweeps rotate
	// across banks while each row services RowBytes of contiguous data.
	// Higher address bits are folded in (bank-index hashing, as DDR4
	// controllers do) so power-of-two-strided streams do not alias onto
	// one bank.
	x := addr / d.cfg.RowBytes
	x ^= x >> 4
	x ^= x >> 8
	return int(x & uint64(d.cfg.Banks-1))
}

func (d *DRAM) rowOf(addr uint64) uint64 {
	return addr / (d.cfg.RowBytes * uint64(d.cfg.Banks))
}

// Access services one 64-byte line request arriving at CPU cycle now and
// returns the cycle at which the line is available (read) or accepted
// (write). Writes follow the same bank timing; the caller typically treats
// write completion as fire-and-forget.
func (d *DRAM) Access(addr uint64, write bool, now uint64) uint64 {
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	ch := d.channelOf(addr)
	b := &d.banks[ch*d.cfg.Banks+d.bankOf(addr)]
	row := d.rowOf(addr)

	start := now + d.cfg.FrontDelay
	if b.busyUntil > start {
		start = b.busyUntil
	}

	var access uint64
	switch {
	case b.rowOpen && b.openRow == row:
		d.stats.RowHits++
		access = d.cfg.TCAS
	case b.rowOpen:
		d.stats.RowConflicts++
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
	default:
		d.stats.RowMisses++
		access = d.cfg.TRCD + d.cfg.TCAS
	}
	b.openRow, b.rowOpen = row, true

	dataReady := start + access
	// Serialise the channel's shared data bus.
	if d.busFreeAt[ch] > dataReady {
		dataReady = d.busFreeAt[ch]
	}
	d.busFreeAt[ch] = dataReady + d.cfg.TBurst
	b.busyUntil = dataReady + d.cfg.TBurst

	return dataReady + d.cfg.TBurst
}

// MinLatency returns the unloaded row-hit latency: the lower bound a
// request can experience. Useful for tests and sanity checks.
func (d *DRAM) MinLatency() uint64 {
	return d.cfg.FrontDelay + d.cfg.TCAS + d.cfg.TBurst
}
