package dram

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Banks = 3
	if bad.Validate() == nil {
		t.Error("Banks=3 accepted")
	}
	bad = DefaultConfig()
	bad.RowBytes = 1000
	if bad.Validate() == nil {
		t.Error("RowBytes=1000 accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

// sameBankNewRow finds an address mapping to addr 0's bank but a new row
// (bank indices are hashed, so the test searches).
func sameBankNewRow(d *DRAM) uint64 {
	for a := d.cfg.RowBytes; ; a += d.cfg.RowBytes {
		if d.bankOf(a) == d.bankOf(0) && d.rowOf(a) != d.rowOf(0) {
			return a
		}
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := MustNew(DefaultConfig())
	conflictAddr := sameBankNewRow(d)
	t0 := d.Access(0, false, 0)                            // row miss (closed)
	t1 := d.Access(64, false, t0) - t0                     // row hit, same row
	t2 := d.Access(conflictAddr, false, t0+t1) - (t0 + t1) // conflict: same bank, new row
	if t1 >= t0 {
		t.Errorf("row hit (%d) not faster than cold miss (%d)", t1, t0)
	}
	if t2 <= t1 {
		t.Errorf("row conflict (%d) not slower than row hit (%d)", t2, t1)
	}
	s := d.Stats()
	if s.RowMisses != 1 || s.RowHits != 1 || s.RowConflicts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBankParallelism(t *testing.T) {
	// Two requests to different banks should overlap: the second completes
	// much sooner than 2× a serial pair to the same bank.
	cfg := DefaultConfig()
	dSame := MustNew(cfg)
	conflictAddr := sameBankNewRow(dSame)
	a1 := dSame.Access(0, false, 0)
	a2 := dSame.Access(conflictAddr, false, 0) // same bank, conflicting row

	dDiff := MustNew(cfg)
	var otherBank uint64
	for a := cfg.RowBytes; ; a += cfg.RowBytes {
		if dDiff.bankOf(a) != dDiff.bankOf(0) {
			otherBank = a
			break
		}
	}
	b1 := dDiff.Access(0, false, 0)
	b2 := dDiff.Access(otherBank, false, 0)
	if b1 != a1 {
		t.Fatalf("first access latency differs: %d vs %d", b1, a1)
	}
	if b2 >= a2 {
		t.Errorf("bank-parallel second access (%d) not faster than same-bank (%d)", b2, a2)
	}
}

func TestBusSerialisation(t *testing.T) {
	// Many simultaneous requests to different banks still serialise on the
	// data bus: completion times must be distinct and spaced ≥ TBurst.
	cfg := DefaultConfig()
	d := MustNew(cfg)
	var times []uint64
	for i := 0; i < cfg.Banks; i++ {
		times = append(times, d.Access(uint64(i)*cfg.RowBytes, false, 0))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1]+cfg.TBurst {
			t.Fatalf("accesses %d,%d complete %d,%d apart < TBurst", i-1, i, times[i-1], times[i])
		}
	}
}

func TestMonotoneCompletion(t *testing.T) {
	// Property: completion ≥ now + MinLatency for any request stream fed
	// in time order.
	d := MustNew(DefaultConfig())
	now := uint64(0)
	f := func(addrSeed uint32, gap uint8) bool {
		addr := uint64(addrSeed) * 64
		done := d.Access(addr, addrSeed%3 == 0, now)
		ok := done >= now+d.MinLatency()
		now += uint64(gap)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteCounted(t *testing.T) {
	d := MustNew(DefaultConfig())
	d.Access(0, true, 0)
	d.Access(64, false, 100)
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStreamingMostlyRowHits(t *testing.T) {
	// A unit-stride sweep within one row should be nearly all row hits.
	cfg := DefaultConfig()
	d := MustNew(cfg)
	now := uint64(0)
	for a := uint64(0); a < cfg.RowBytes; a += 64 {
		now = d.Access(a, false, now)
	}
	s := d.Stats()
	if s.RowHits < s.RowMisses+s.RowConflicts {
		t.Errorf("streaming sweep not row-hit dominated: %+v", s)
	}
}

func TestMultiChannelParallelism(t *testing.T) {
	// Adjacent lines map to different channels at Channels=2, so a pair
	// of simultaneous requests completes sooner than on one channel.
	one := DefaultConfig()
	two := DefaultConfig()
	two.Channels = 2
	d1, d2 := MustNew(one), MustNew(two)

	// Two back-to-back lines: same bank+row on the 1-channel device.
	l1a := d1.Access(0, false, 0)
	l1b := d1.Access(64, false, 0)
	l2a := d2.Access(0, false, 0)
	l2b := d2.Access(64, false, 0)
	last1, last2 := l1b, l2b
	if l1a > last1 {
		last1 = l1a
	}
	if l2a > last2 {
		last2 = l2a
	}
	if last2 >= last1 {
		t.Errorf("2-channel pair done at %d, 1-channel at %d — no overlap", last2, last1)
	}
}

func TestChannelsValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Channels = 3
	if bad.Validate() == nil {
		t.Error("Channels=3 accepted")
	}
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Error("Channels=0 accepted")
	}
}
