// Package topdown is the cycle-accounting engine behind the simulator's
// CPI stacks: every issue slot of every cycle is attributed to exactly one
// category — useful issue (base) or one of the stall causes the paper's
// evaluation reasons about (frontend, branch/flush recovery, the dispatch
// structural stalls, issue-queue pressure, RAW dependences, functional-unit
// contention, memory/load delay) — under a hard conservation invariant:
//
//	sum over categories of blamed slots == issue width × accounted cycles
//
// The invariant is enforced every cycle by the internal/check auditor
// (through the pipeline's TopdownConservation surface), so an attribution
// bug cannot silently skew a CPI stack.
//
// Like internal/obs and internal/span, the engine is zero-cost when off:
// the pipeline holds a nil *Engine and the issue path keeps its original
// closures, so a run without -topdown pays nothing — not even a branch on
// the grant path. Every method is nil-safe.
//
// Memory blame follows Diavastos & Carlson's load-delay tracking: a slot
// lost to a source register produced by an in-flight load (or a
// load-dependent chain, the renamer's LoadDep bit) or to an unresolved
// memory-dependence wait is charged to the memory category, not to generic
// dependence wait. The occupancy-driven components admit a Carroll & Lin
// closed-form cross-check (Little's law over the scheduling window), which
// the test suite applies on the stream kernel.
package topdown

// Category is one slot-blame bucket of the CPI stack.
type Category uint8

// The blame categories. Base is useful issue; the rest partition the idle
// slots. NumCategories sizes arrays indexed by Category.
const (
	// Base counts slots that issued a μop.
	Base Category = iota
	// Frontend: no work available — fetch/decode latency, icache misses,
	// a drained trace, or an injector-vetoed dispatch.
	Frontend
	// BranchRecovery: the front end is stalled waiting out a mispredict or
	// flush recovery penalty.
	BranchRecovery
	// ROBFull: dispatch blocked because the reorder buffer is full.
	ROBFull
	// RenameStall: dispatch blocked in rename (no free physical register).
	RenameStall
	// DispatchQFull: the decode/dispatch allocation queue is the
	// bottleneck (full, with nothing dispatchable this cycle).
	DispatchQFull
	// IQFull: the scheduler refused dispatch — the issue queue is full.
	IQFull
	// LSQFull: dispatch blocked on a full load or store queue.
	LSQFull
	// DepWait: buffered μops exist but none is ready (RAW dependences on
	// non-load producers).
	DepWait
	// Memory: a μop was held by load-delayed operands or an unresolved
	// memory-dependence (MDP/LFST) wait — Diavastos & Carlson's
	// load-delay blame.
	Memory
	// FUContention: a ready μop lost issue-port arbitration or waits on a
	// busy non-pipelined unit.
	FUContention

	NumCategories
)

var categoryNames = [NumCategories]string{
	Base:           "base",
	Frontend:       "frontend",
	BranchRecovery: "branch_recovery",
	ROBFull:        "rob_full",
	RenameStall:    "rename_stall",
	DispatchQFull:  "dispatch_q_full",
	IQFull:         "iq_full",
	LSQFull:        "lsq_full",
	DepWait:        "dep_wait",
	Memory:         "memory",
	FUContention:   "fu_contention",
}

// String returns the category's stable snake_case name (used as the JSON
// map key, CSV column and Prometheus label value).
func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return "unknown"
}

// Names returns the category names in Category order. The returned slice
// is shared; callers must not mutate it.
func Names() []string { return categoryNames[:] }

// StallCause classifies why the dispatch stage could not move its head μop
// — the typed split of the legacy conflated dispatch-stall counter.
type StallCause uint8

// Dispatch stall causes.
const (
	StallNone     StallCause = iota
	StallROB                 // reorder buffer full
	StallLSQ                 // load or store queue full
	StallRename              // no free physical register
	StallIQ                  // scheduler (issue queue) refused the μop
	StallInjected            // fault injector vetoed dispatch this cycle
)

// Category maps a dispatch stall cause to its blame bucket.
func (c StallCause) Category() Category {
	switch c {
	case StallROB:
		return ROBFull
	case StallLSQ:
		return LSQFull
	case StallRename:
		return RenameStall
	case StallIQ:
		return IQFull
	default:
		// An injector veto is not the machine's fault; lump it with the
		// "nothing arrived" bucket so real categories stay meaningful.
		return Frontend
	}
}

// Engine accumulates the per-cycle slot attribution for one pipeline. All
// note-taking methods are nil-safe no-ops, and none of them allocates: the
// per-cycle scratch is a handful of scalar fields reset by EndCycle.
type Engine struct {
	width  uint64
	cycles uint64
	slots  [NumCategories]uint64

	// overIssue counts grants beyond the nominal issue width in one cycle
	// (FXA's IXU executes eligible μops besides the backend's ports).
	// They are excluded from the conserved slot count but reported, so an
	// over-wide design's base category stays clamped at 100%.
	overIssue uint64

	// Per-cycle scratch, highest-priority blame first.
	grants    uint64
	memBlock  bool
	depBlock  bool
	fuBlock   bool
	dispCause StallCause
}

// New returns an engine accounting width issue slots per cycle.
func New(width int) *Engine {
	if width <= 0 {
		width = 1
	}
	return &Engine{width: uint64(width)}
}

// NoteGrant records one granted issue slot this cycle.
func (e *Engine) NoteGrant() {
	if e == nil {
		return
	}
	e.grants++
}

// NoteMemBlock records that a μop was held back this cycle by load-delayed
// operands or an unresolved memory-dependence wait.
func (e *Engine) NoteMemBlock() {
	if e == nil {
		return
	}
	e.memBlock = true
}

// NoteDepBlock records that a μop was held back this cycle by a plain RAW
// dependence (non-load producer).
func (e *Engine) NoteDepBlock() {
	if e == nil {
		return
	}
	e.depBlock = true
}

// NoteFUBlock records that a ready μop lost port arbitration (or waits on
// a busy non-pipelined unit) this cycle.
func (e *Engine) NoteFUBlock() {
	if e == nil {
		return
	}
	e.fuBlock = true
}

// NoteDispatchStall records the dispatch stage's stall cause this cycle.
// The first cause wins: it is the head-of-queue blockage.
func (e *Engine) NoteDispatchStall(c StallCause) {
	if e == nil {
		return
	}
	if e.dispCause == StallNone {
		e.dispCause = c
	}
}

// EndCycle closes one cycle: the granted slots are charged to Base and
// every idle slot to exactly one stall category, chosen by precedence —
// memory > dependence wait > FU contention > the dispatch stall cause >
// occupied-but-idle window (dependence wait) > branch/flush recovery >
// full dispatch queue > frontend. schedOcc is the scheduler occupancy at
// end of cycle, recovering reports a front end stalled on a mispredict or
// flush penalty, and dispatchQFull a full decode/dispatch queue.
func (e *Engine) EndCycle(schedOcc int, recovering, dispatchQFull bool) {
	if e == nil {
		return
	}
	e.cycles++
	base := e.grants
	if base > e.width {
		e.overIssue += base - e.width
		base = e.width
	}
	e.slots[Base] += base
	if idle := e.width - base; idle > 0 {
		e.slots[e.blame(schedOcc, recovering, dispatchQFull)] += idle
	}
	e.grants = 0
	e.memBlock, e.depBlock, e.fuBlock = false, false, false
	e.dispCause = StallNone
}

// blame picks the cycle's idle-slot category.
func (e *Engine) blame(schedOcc int, recovering, dispatchQFull bool) Category {
	switch {
	case e.memBlock:
		return Memory
	case e.depBlock:
		return DepWait
	case e.fuBlock:
		return FUContention
	case e.dispCause != StallNone:
		return e.dispCause.Category()
	case schedOcc > 0:
		// μops are buffered but no blockage was observed at the examined
		// heads (deeper entries the scheduler never looked at): still a
		// dependence-shaped wait, not a frontend one.
		return DepWait
	case recovering:
		return BranchRecovery
	case dispatchQFull:
		return DispatchQFull
	default:
		return Frontend
	}
}

// Width returns the accounted issue width (0 on a nil engine).
func (e *Engine) Width() int {
	if e == nil {
		return 0
	}
	return int(e.width)
}

// Cycles returns the accounted cycle count (0 on a nil engine).
func (e *Engine) Cycles() uint64 {
	if e == nil {
		return 0
	}
	return e.cycles
}

// Counts returns the per-category slot counters (zero on a nil engine).
func (e *Engine) Counts() [NumCategories]uint64 {
	if e == nil {
		return [NumCategories]uint64{}
	}
	return e.slots
}

// OverIssue returns slots granted beyond the nominal width (0 on nil).
func (e *Engine) OverIssue() uint64 {
	if e == nil {
		return 0
	}
	return e.overIssue
}

// Conservation returns the blamed slot total, the conserved target
// (width × cycles) and whether the engine is accounting. The two totals
// must be equal every cycle — the invariant internal/check enforces.
func (e *Engine) Conservation() (got, want uint64, on bool) {
	if e == nil {
		return 0, 0, false
	}
	for _, v := range e.slots {
		got += v
	}
	return got, e.width * e.cycles, true
}

// Report is the end-of-run rendering of the accounting: absolute slots,
// fractions of the slot budget, and — when the committed μop count is
// known — the CPI stack itself: per-category cycles-per-instruction
// contributions that sum to the run's total CPI. It is embedded in the run
// manifest under "topdown" (map keys marshal sorted, so the JSON is
// deterministic).
type Report struct {
	Width      int                `json:"width"`
	Cycles     uint64             `json:"cycles"`
	TotalSlots uint64             `json:"total_slots"`
	Slots      map[string]uint64  `json:"slots"`
	Fractions  map[string]float64 `json:"fractions"`
	CPI        float64            `json:"cpi,omitempty"`
	CPIStack   map[string]float64 `json:"cpi_stack,omitempty"`
	OverIssue  uint64             `json:"over_issue,omitempty"`

	// Counts duplicates Slots in Category order for consumers that index
	// numerically (the telemetry gauges); it is not serialised.
	Counts [NumCategories]uint64 `json:"-"`
}

// Report renders the accounting. committed, when non-zero, adds the CPI
// stack: category c contributes (slots_c / width) / committed cycles per
// instruction, and the contributions sum to cycles/committed. Returns nil
// on a nil engine.
func (e *Engine) Report(committed uint64) *Report {
	if e == nil {
		return nil
	}
	r := &Report{
		Width:      int(e.width),
		Cycles:     e.cycles,
		TotalSlots: e.width * e.cycles,
		Slots:      make(map[string]uint64, NumCategories),
		Fractions:  make(map[string]float64, NumCategories),
		OverIssue:  e.overIssue,
		Counts:     e.slots,
	}
	for c := Category(0); c < NumCategories; c++ {
		r.Slots[c.String()] = e.slots[c]
		if r.TotalSlots > 0 {
			r.Fractions[c.String()] = float64(e.slots[c]) / float64(r.TotalSlots)
		}
	}
	if committed > 0 {
		r.CPI = float64(e.cycles) / float64(committed)
		r.CPIStack = make(map[string]float64, NumCategories)
		for c := Category(0); c < NumCategories; c++ {
			r.CPIStack[c.String()] = float64(e.slots[c]) / float64(e.width) / float64(committed)
		}
	}
	return r
}

// Fraction returns category c's share of the slot budget (0 on nil or
// before any cycle).
func (e *Engine) Fraction(c Category) float64 {
	if e == nil || e.cycles == 0 {
		return 0
	}
	return float64(e.slots[c]) / float64(e.width*e.cycles)
}
