package topdown

import (
	"encoding/json"
	"testing"
)

// checkConservation fails the test unless the engine's slot accounting
// balances.
func checkConservation(t *testing.T, e *Engine) {
	t.Helper()
	got, want, on := e.Conservation()
	if !on {
		t.Fatalf("Conservation() reports off on a live engine")
	}
	if got != want {
		t.Fatalf("conservation broken: blamed %d slots, want %d", got, want)
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	e.NoteGrant()
	e.NoteMemBlock()
	e.NoteDepBlock()
	e.NoteFUBlock()
	e.NoteDispatchStall(StallROB)
	e.EndCycle(3, true, true)
	if e.Width() != 0 || e.Cycles() != 0 || e.OverIssue() != 0 {
		t.Fatalf("nil engine reports non-zero state")
	}
	if c := e.Counts(); c != ([NumCategories]uint64{}) {
		t.Fatalf("nil engine Counts = %v, want zero", c)
	}
	if _, _, on := e.Conservation(); on {
		t.Fatalf("nil engine claims to be accounting")
	}
	if e.Report(100) != nil {
		t.Fatalf("nil engine Report != nil")
	}
	if e.Fraction(Base) != 0 {
		t.Fatalf("nil engine Fraction != 0")
	}
}

func TestBaseAndIdleSplit(t *testing.T) {
	e := New(4)
	// Cycle 0: 3 grants, 1 idle slot, μops waiting in the window → DepWait.
	e.NoteGrant()
	e.NoteGrant()
	e.NoteGrant()
	e.EndCycle(5, false, false)
	checkConservation(t, e)
	c := e.Counts()
	if c[Base] != 3 || c[DepWait] != 1 {
		t.Fatalf("base=%d depwait=%d, want 3/1", c[Base], c[DepWait])
	}
	// Cycle 1: nothing granted, empty window, recovering → BranchRecovery.
	e.EndCycle(0, true, false)
	checkConservation(t, e)
	if c := e.Counts(); c[BranchRecovery] != 4 {
		t.Fatalf("branch_recovery=%d, want 4", c[BranchRecovery])
	}
	// Cycle 2: empty window, not recovering, dispatch queue full.
	e.EndCycle(0, false, true)
	checkConservation(t, e)
	if c := e.Counts(); c[DispatchQFull] != 4 {
		t.Fatalf("dispatch_q_full=%d, want 4", c[DispatchQFull])
	}
	// Cycle 3: nothing at all → Frontend.
	e.EndCycle(0, false, false)
	checkConservation(t, e)
	if c := e.Counts(); c[Frontend] != 4 {
		t.Fatalf("frontend=%d, want 4", c[Frontend])
	}
}

func TestBlamePrecedence(t *testing.T) {
	// Memory beats everything.
	e := New(2)
	e.NoteMemBlock()
	e.NoteDepBlock()
	e.NoteFUBlock()
	e.NoteDispatchStall(StallROB)
	e.EndCycle(9, true, true)
	if c := e.Counts(); c[Memory] != 2 {
		t.Fatalf("memory=%d, want 2", c[Memory])
	}
	// Dep beats FU and dispatch causes.
	e = New(2)
	e.NoteDepBlock()
	e.NoteFUBlock()
	e.NoteDispatchStall(StallIQ)
	e.EndCycle(9, false, false)
	if c := e.Counts(); c[DepWait] != 2 {
		t.Fatalf("dep_wait=%d, want 2", c[DepWait])
	}
	// FU beats dispatch causes.
	e = New(2)
	e.NoteFUBlock()
	e.NoteDispatchStall(StallLSQ)
	e.EndCycle(0, false, false)
	if c := e.Counts(); c[FUContention] != 2 {
		t.Fatalf("fu_contention=%d, want 2", c[FUContention])
	}
	// Dispatch cause beats the occupancy fallback.
	e = New(2)
	e.NoteDispatchStall(StallLSQ)
	e.EndCycle(7, false, false)
	if c := e.Counts(); c[LSQFull] != 2 {
		t.Fatalf("lsq_full=%d, want 2", c[LSQFull])
	}
}

func TestDispatchCauseMapping(t *testing.T) {
	cases := []struct {
		cause StallCause
		want  Category
	}{
		{StallROB, ROBFull},
		{StallLSQ, LSQFull},
		{StallRename, RenameStall},
		{StallIQ, IQFull},
		{StallInjected, Frontend},
	}
	for _, tc := range cases {
		e := New(1)
		e.NoteDispatchStall(tc.cause)
		e.EndCycle(0, false, false)
		if c := e.Counts(); c[tc.want] != 1 {
			t.Errorf("cause %d: category %s = %d, want 1", tc.cause, tc.want, c[tc.want])
		}
		checkConservation(t, e)
	}
}

func TestFirstDispatchCauseWins(t *testing.T) {
	e := New(1)
	e.NoteDispatchStall(StallRename)
	e.NoteDispatchStall(StallROB)
	e.EndCycle(0, false, false)
	if c := e.Counts(); c[RenameStall] != 1 {
		t.Fatalf("rename_stall=%d, want 1 (first cause must win)", c[RenameStall])
	}
}

func TestOverIssueClamped(t *testing.T) {
	e := New(2)
	for i := 0; i < 5; i++ {
		e.NoteGrant() // e.g. FXA's IXU executing beyond the port budget
	}
	e.EndCycle(0, false, false)
	checkConservation(t, e)
	c := e.Counts()
	if c[Base] != 2 {
		t.Fatalf("base=%d, want clamped to width 2", c[Base])
	}
	if e.OverIssue() != 3 {
		t.Fatalf("overIssue=%d, want 3", e.OverIssue())
	}
}

func TestScratchResetsBetweenCycles(t *testing.T) {
	e := New(2)
	e.NoteMemBlock()
	e.EndCycle(1, false, false)
	// The next cycle must not inherit the memory blame.
	e.EndCycle(1, false, false)
	c := e.Counts()
	if c[Memory] != 2 || c[DepWait] != 2 {
		t.Fatalf("memory=%d dep_wait=%d, want 2/2 (scratch leaked across cycles)", c[Memory], c[DepWait])
	}
}

func TestReport(t *testing.T) {
	e := New(4)
	e.NoteGrant()
	e.NoteGrant()
	e.EndCycle(3, false, false) // 2 base + 2 dep_wait
	e.EndCycle(0, true, false)  // 4 branch_recovery
	r := e.Report(2)
	if r.Width != 4 || r.Cycles != 2 || r.TotalSlots != 8 {
		t.Fatalf("report header %+v", r)
	}
	if r.Slots["base"] != 2 || r.Slots["dep_wait"] != 2 || r.Slots["branch_recovery"] != 4 {
		t.Fatalf("slots %v", r.Slots)
	}
	if got := r.Fractions["branch_recovery"]; got != 0.5 {
		t.Fatalf("branch_recovery fraction %v, want 0.5", got)
	}
	// The CPI stack must sum to total CPI = cycles/committed = 1.
	var sum float64
	for _, v := range r.CPIStack {
		sum += v
	}
	if r.CPI != 1 || sum != r.CPI {
		t.Fatalf("CPI=%v stack sum=%v, want both 1", r.CPI, sum)
	}
	if r.Counts != e.Counts() {
		t.Fatalf("Counts mismatch: %v vs %v", r.Counts, e.Counts())
	}
	// The JSON form must be deterministic and carry the section name keys.
	b1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(e.Report(2))
	if string(b1) != string(b2) {
		t.Fatalf("report JSON not deterministic:\n%s\n%s", b1, b2)
	}
}

func TestNamesCoverEveryCategory(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		n := c.String()
		if n == "" || n == "unknown" {
			t.Fatalf("category %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate category name %q", n)
		}
		seen[n] = true
	}
	if Category(NumCategories).String() != "unknown" {
		t.Fatalf("out-of-range category must render unknown")
	}
	if got := Names(); len(got) != int(NumCategories) {
		t.Fatalf("Names() length %d, want %d", len(got), NumCategories)
	}
}
