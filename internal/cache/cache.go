// Package cache implements a set-associative, write-back, write-allocate
// cache with MSHR-limited miss parallelism and an optional stride prefetcher
// (see prefetch.go). Caches compose into a hierarchy through the Level
// interface; internal/dram terminates the chain.
//
// Like the DRAM model, caches are "latency computing": an access performed
// at CPU cycle `now` immediately returns its completion cycle while the tag,
// LRU, MSHR and fill state advance. Misses to lines already in flight merge
// into the outstanding fill (MSHR merge) rather than issuing twice.
package cache

import "fmt"

// LineSize is the cache line size in bytes throughout the hierarchy.
const LineSize = 64

// Level is anything that can service a line access: a Cache or a DRAM.
type Level interface {
	// Access requests the 64-byte line containing addr at CPU cycle now
	// and returns the cycle the request completes.
	Access(addr uint64, write bool, now uint64) uint64
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  uint64
	Ways       int
	HitLatency uint64
	MSHRs      int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes == 0 || c.SizeBytes%LineSize != 0 {
		return fmt.Errorf("cache %s: size %d not a multiple of the line size", c.Name, c.SizeBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways must be positive", c.Name)
	}
	sets := c.SizeBytes / uint64(c.Ways) / LineSize
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: derived set count %d not a power of two", c.Name, sets)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs must be positive", c.Name)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64 // demand misses sent to the next level
	MergedMiss  uint64 // demand accesses merged into in-flight fills
	Writebacks  uint64
	MSHRStalls  uint64 // misses delayed waiting for a free MSHR
	Prefetches  uint64 // prefetch fills issued on behalf of this cache
	PrefeHits   uint64 // demand hits on prefetched, not-yet-demanded lines
	Evictions   uint64
	WriteHits   uint64
	WriteMisses uint64
}

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool   // brought in by the prefetcher, not yet demanded
	fillTime uint64 // cycle at which data becomes present
	lastUsed uint64 // LRU timestamp
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg   Config
	sets  uint64
	lines []line // sets × ways
	next  Level

	// outstanding holds completion times of in-flight misses; its length
	// is bounded by cfg.MSHRs. Entries older than "now" are reclaimed
	// lazily on allocation.
	outstanding []uint64

	lruClock uint64
	stats    Stats
}

// New builds a cache level in front of next.
func New(cfg Config, next Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: next level is nil", cfg.Name)
	}
	sets := cfg.SizeBytes / uint64(cfg.Ways) / LineSize
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		lines: make([]line, sets*uint64(cfg.Ways)),
		next:  next,
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, next Level) *Cache {
	c, err := New(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Name returns the configured level name.
func (c *Cache) Name() string { return c.cfg.Name }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }

func (c *Cache) set(addr uint64) []line {
	s := (addr / LineSize) & (c.sets - 1)
	return c.lines[s*uint64(c.cfg.Ways) : (s+1)*uint64(c.cfg.Ways)]
}

func tagOf(addr uint64) uint64 { return addr / LineSize }

// lookup returns the way holding addr, or nil.
func (c *Cache) lookup(addr uint64) *line {
	tag := tagOf(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// victim picks the LRU way of addr's set (preferring invalid ways).
func (c *Cache) victim(addr uint64) *line {
	set := c.set(addr)
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lastUsed < v.lastUsed {
			v = &set[i]
		}
	}
	return v
}

// reserveMSHR returns the earliest cycle ≥ now at which an MSHR is
// available, registering the new miss that will complete at a time the
// caller later records via recordMiss.
func (c *Cache) reserveMSHR(now uint64) uint64 {
	// Reclaim completed entries.
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > now {
			live = append(live, t)
		}
	}
	c.outstanding = live
	if len(c.outstanding) < c.cfg.MSHRs {
		return now
	}
	// All MSHRs busy: wait for the earliest one.
	c.stats.MSHRStalls++
	earliest := c.outstanding[0]
	idx := 0
	for i, t := range c.outstanding {
		if t < earliest {
			earliest, idx = t, i
		}
	}
	c.outstanding = append(c.outstanding[:idx], c.outstanding[idx+1:]...)
	return earliest
}

func (c *Cache) recordMiss(done uint64) {
	c.outstanding = append(c.outstanding, done)
}

// Access implements Level.
func (c *Cache) Access(addr uint64, write bool, now uint64) uint64 {
	c.lruClock++
	if l := c.lookup(addr); l != nil {
		l.lastUsed = c.lruClock
		if write {
			l.dirty = true
			c.stats.WriteHits++
		}
		done := now + c.cfg.HitLatency
		if l.fillTime > done {
			// Line is in flight (prefetch or earlier miss): merge.
			c.stats.MergedMiss++
			done = l.fillTime
		} else {
			c.stats.Hits++
			if l.prefetch {
				c.stats.PrefeHits++
				l.prefetch = false
			}
		}
		return done
	}

	// Miss.
	c.stats.Misses++
	if write {
		// Write-allocate through the store buffer: the line is fetched
		// and installed dirty, but the write does not hold a demand
		// MSHR (stores are fire-and-forget after commit).
		c.stats.WriteMisses++
		done := c.next.Access(addr, false, now+c.cfg.HitLatency)
		c.install(addr, true, done, false)
		return done
	}
	start := c.reserveMSHR(now + c.cfg.HitLatency)
	done := c.next.Access(addr, false, start)
	c.recordMiss(done)
	c.install(addr, write, done, false)
	return done
}

// install places addr's line into the cache with the given fill time,
// evicting (and writing back) the victim.
func (c *Cache) install(addr uint64, dirty bool, fillTime uint64, prefetch bool) {
	v := c.victim(addr)
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			// Writebacks are fire-and-forget: charge next level
			// without delaying the demand request.
			c.next.Access(v.tag*LineSize, true, fillTime)
		}
	}
	*v = line{
		tag:      tagOf(addr),
		valid:    true,
		dirty:    dirty,
		prefetch: prefetch,
		fillTime: fillTime,
		lastUsed: c.lruClock,
	}
}

// Prefetch brings addr's line in without a demand request. It is a no-op if
// the line is already present or no MSHR is immediately free (prefetches
// never steal MSHRs from demand misses).
func (c *Cache) Prefetch(addr uint64, now uint64) {
	if c.lookup(addr) != nil {
		return
	}
	// Only use spare MSHR capacity.
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > now {
			live = append(live, t)
		}
	}
	c.outstanding = live
	if len(c.outstanding) >= c.cfg.MSHRs {
		return
	}
	done := c.next.Access(addr, false, now+c.cfg.HitLatency)
	c.recordMiss(done)
	c.stats.Prefetches++
	c.lruClock++
	c.install(addr, false, done, true)
}

// Contains reports whether addr's line is resident (regardless of fill
// time). Exposed for tests.
func (c *Cache) Contains(addr uint64) bool { return c.lookup(addr) != nil }
