package cache

import (
	"testing"
	"testing/quick"
)

// fixedMem is a Level with constant latency, for isolating cache behaviour.
type fixedMem struct {
	latency  uint64
	accesses int
	writes   int
}

func (m *fixedMem) Access(addr uint64, write bool, now uint64) uint64 {
	m.accesses++
	if write {
		m.writes++
	}
	return now + m.latency
}

func smallCache(t *testing.T, next Level) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", SizeBytes: 1024, Ways: 2, HitLatency: 4, MSHRs: 4}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Name: "ok", SizeBytes: 1024, Ways: 2, HitLatency: 1, MSHRs: 1}, true},
		{Config{Name: "size0", SizeBytes: 0, Ways: 2, MSHRs: 1}, false},
		{Config{Name: "badsize", SizeBytes: 100, Ways: 2, MSHRs: 1}, false},
		{Config{Name: "ways0", SizeBytes: 1024, Ways: 0, MSHRs: 1}, false},
		{Config{Name: "sets3", SizeBytes: 3 * 64 * 2, Ways: 2, MSHRs: 1}, false},
		{Config{Name: "mshr0", SizeBytes: 1024, Ways: 2, MSHRs: 0}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.cfg.Name, err, tc.ok)
		}
	}
	if _, err := New(Config{Name: "nil-next", SizeBytes: 1024, Ways: 2, HitLatency: 1, MSHRs: 1}, nil); err == nil {
		t.Error("New with nil next accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	m := &fixedMem{latency: 100}
	c := smallCache(t, m)
	d1 := c.Access(0x1000, false, 0)
	if d1 < 100 {
		t.Errorf("cold miss completed at %d, want ≥ 100", d1)
	}
	d2 := c.Access(0x1000, false, d1)
	if d2 != d1+4 {
		t.Errorf("hit completed at %d, want %d", d2, d1+4)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
	if m.accesses != 1 {
		t.Errorf("next level accessed %d times, want 1", m.accesses)
	}
}

func TestMSHRMerge(t *testing.T) {
	// A second access to an in-flight line merges instead of re-requesting.
	m := &fixedMem{latency: 100}
	c := smallCache(t, m)
	d1 := c.Access(0x2000, false, 0)
	d2 := c.Access(0x2000, false, 1) // while still in flight
	if d2 != d1 {
		t.Errorf("merged access completes at %d, want %d", d2, d1)
	}
	if m.accesses != 1 {
		t.Errorf("next level accessed %d times, want 1 (merge)", m.accesses)
	}
	if c.Stats().MergedMiss != 1 {
		t.Errorf("MergedMiss = %d, want 1", c.Stats().MergedMiss)
	}
}

func TestMSHRLimitSerialises(t *testing.T) {
	// With 4 MSHRs, the 5th concurrent miss must wait for the first to
	// complete before its own miss latency begins.
	m := &fixedMem{latency: 100}
	c := smallCache(t, m)
	var last uint64
	for i := 0; i < 5; i++ {
		last = c.Access(uint64(0x10000+i*64), false, 0)
	}
	// First four misses: ≈ 4 + 100. Fifth: waits until ≈104, then +100.
	if last < 200 {
		t.Errorf("5th miss completed at %d, want ≥ 200 (MSHR stall)", last)
	}
	if c.Stats().MSHRStalls == 0 {
		t.Error("no MSHR stalls recorded")
	}
}

func TestEvictionAndWriteback(t *testing.T) {
	m := &fixedMem{latency: 10}
	c := smallCache(t, m) // 1024 B / 2 ways / 64 B = 8 sets
	// Fill one set (2 ways map to the same set when addr diff = sets*64).
	setStride := uint64(8 * 64)
	c.Access(0x0, true, 0)            // dirty line
	c.Access(setStride, false, 100)   // second way
	c.Access(2*setStride, false, 200) // evicts LRU (the dirty one)
	s := c.Stats()
	if s.Evictions == 0 {
		t.Error("no evictions")
	}
	if s.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", s.Writebacks)
	}
	if m.writes != 1 {
		t.Errorf("next-level writes = %d, want 1", m.writes)
	}
	if c.Contains(0x0) {
		t.Error("evicted line still present")
	}
}

func TestLRUKeepsHotLine(t *testing.T) {
	m := &fixedMem{latency: 10}
	c := smallCache(t, m)
	setStride := uint64(8 * 64)
	c.Access(0x0, false, 0)
	c.Access(setStride, false, 20)
	c.Access(0x0, false, 40)         // re-touch way 0
	c.Access(2*setStride, false, 60) // should evict setStride, not 0x0
	if !c.Contains(0x0) {
		t.Error("hot line evicted")
	}
	if c.Contains(setStride) {
		t.Error("LRU line survived")
	}
}

func TestPrefetchInstallsLine(t *testing.T) {
	m := &fixedMem{latency: 100}
	c := smallCache(t, m)
	c.Prefetch(0x4000, 0)
	if !c.Contains(0x4000) {
		t.Fatal("prefetched line absent")
	}
	// A demand access before fill time merges into the prefetch.
	d := c.Access(0x4000, false, 1)
	if d < 100 {
		t.Errorf("demand on in-flight prefetch done at %d, want ≥ fill", d)
	}
	// A demand access after fill is a (prefetch) hit.
	d2 := c.Access(0x4000, false, 500)
	if d2 != 504 {
		t.Errorf("post-fill hit done at %d, want 504", d2)
	}
	s := c.Stats()
	if s.Prefetches != 1 || s.PrefeHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPrefetchNeverStealsLastMSHR(t *testing.T) {
	m := &fixedMem{latency: 1000}
	c := smallCache(t, m)
	for i := 0; i < 4; i++ { // exhaust the 4 MSHRs
		c.Access(uint64(0x8000+i*64), false, 0)
	}
	c.Prefetch(0x9000, 1)
	if c.Contains(0x9000) {
		t.Error("prefetch issued with all MSHRs busy")
	}
	if c.Stats().Prefetches != 0 {
		t.Error("prefetch counted despite MSHR pressure")
	}
}

func TestCompletionNeverBeforeHitLatency(t *testing.T) {
	m := &fixedMem{latency: 30}
	c := smallCache(t, m)
	now := uint64(0)
	f := func(a uint16, gap uint8) bool {
		addr := uint64(a) * LineSize
		done := c.Access(addr, a%4 == 0, now)
		ok := done >= now+c.HitLatency()
		now += uint64(gap)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStridePrefetcherDetectsStride(t *testing.T) {
	m := &fixedMem{latency: 50}
	c := smallCache(t, m)
	p := NewStridePrefetcher(16, 2, 2, c)
	// Unit-stride stream from one PC: after confidence builds, lines ahead
	// of the demand stream appear in the cache.
	addr := uint64(0x10000)
	for i := 0; i < 8; i++ {
		p.Train(42, addr, uint64(i*10))
		addr += LineSize
	}
	if p.Stats().Issues == 0 {
		t.Fatal("prefetcher never issued")
	}
	if !c.Contains(addr) { // one line ahead of the last demand
		t.Error("line ahead of stream not prefetched")
	}
}

func TestStridePrefetcherResetsOnStrideChange(t *testing.T) {
	m := &fixedMem{latency: 50}
	c := smallCache(t, m)
	p := NewStridePrefetcher(16, 2, 2, c)
	p.Train(1, 0x1000, 0)
	p.Train(1, 0x1040, 1)
	p.Train(1, 0x2000, 2) // stride change
	if p.Stats().Resets == 0 {
		t.Error("stride change not recorded")
	}
}

func TestStridePrefetcherRandomPCsDoNotCrash(t *testing.T) {
	m := &fixedMem{latency: 50}
	c := smallCache(t, m)
	p := NewStridePrefetcher(8, 2, 1, c)
	f := func(pc uint16, a uint32) bool {
		p.Train(uint64(pc), uint64(a)*8, 0)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewStridePrefetcherPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-power-of-two table")
		}
	}()
	NewStridePrefetcher(3, 1, 1, nil)
}
