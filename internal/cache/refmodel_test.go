package cache

import (
	"testing"
)

// refCache is an executable specification of a set-associative LRU cache:
// per-set ordered lists, no timing. The real cache's *contents* must match
// it exactly under any demand access sequence (prefetches excluded — they
// are a timing optimisation the reference doesn't model).
type refCache struct {
	sets int
	ways int
	data []([]uint64) // per set, MRU first
}

func newRefCache(sets, ways int) *refCache {
	r := &refCache{sets: sets, ways: ways, data: make([][]uint64, sets)}
	return r
}

func (r *refCache) access(addr uint64) {
	tag := addr / LineSize
	set := int(tag) % r.sets
	lines := r.data[set]
	for i, t := range lines {
		if t == tag {
			// Move to MRU.
			copy(lines[1:i+1], lines[:i])
			lines[0] = tag
			return
		}
	}
	// Miss: insert at MRU, evict LRU.
	lines = append([]uint64{tag}, lines...)
	if len(lines) > r.ways {
		lines = lines[:r.ways]
	}
	r.data[set] = lines
}

func (r *refCache) contains(addr uint64) bool {
	tag := addr / LineSize
	for _, t := range r.data[int(tag)%r.sets] {
		if t == tag {
			return true
		}
	}
	return false
}

// TestCacheMatchesReferenceModel drives random demand accesses through the
// real cache and the reference model and compares residency after every
// step — the executable-spec property test from DESIGN.md §6.
func TestCacheMatchesReferenceModel(t *testing.T) {
	const sets, ways = 8, 4
	mem := &fixedMem{latency: 20}
	c := MustNew(Config{Name: "ref", SizeBytes: sets * ways * LineSize, Ways: ways, HitLatency: 2, MSHRs: 64}, mem)
	ref := newRefCache(sets, ways)

	seed := uint64(2027)
	rnd := func(n uint64) uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) % n
	}
	now := uint64(0)
	probe := make([]uint64, 0, 64)
	for step := 0; step < 50_000; step++ {
		addr := rnd(sets*ways*4) * LineSize // 4× capacity working set
		write := rnd(4) == 0
		c.Access(addr, write, now)
		ref.access(addr)
		now += 40 // let every miss complete so timing can't reorder LRU
		probe = append(probe, addr)
		if len(probe) > 64 {
			probe = probe[1:]
		}
		for _, a := range probe {
			if c.Contains(a) != ref.contains(a) {
				t.Fatalf("step %d: residency of %#x diverged (real=%v ref=%v)",
					step, a, c.Contains(a), ref.contains(a))
			}
		}
	}
}
