package cache

// StridePrefetcher is a PC-indexed stride prefetcher in the style of the
// Table I "stride-based prefetcher" on the L1 data cache. Each static load
// PC trains an entry with its last address and stride; once the stride has
// been confirmed Confidence times, the prefetcher issues Degree prefetches
// ahead of the demand stream.
type StridePrefetcher struct {
	entries    []strideEntry
	mask       uint64
	degree     int
	confidence int8
	target     *Cache
	// second, when set, receives deeper prefetches (an L2 stream
	// prefetcher running further ahead than the L1's MSHRs allow).
	second       *Cache
	secondDegree int
	stats        PrefetchStats
}

// WithSecondTarget adds a deeper prefetch stream into another cache level
// and returns p for chaining.
func (p *StridePrefetcher) WithSecondTarget(c *Cache, degree int) *StridePrefetcher {
	p.second = c
	p.secondDegree = degree
	return p
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int8
	valid    bool
}

// PrefetchStats counts prefetcher events.
type PrefetchStats struct {
	Trains uint64 // table updates
	Issues uint64 // prefetches handed to the cache
	Resets uint64 // stride changes that reset confidence
}

// NewStridePrefetcher builds a prefetcher with a power-of-two table size
// feeding prefetches into target.
func NewStridePrefetcher(tableSize, degree int, confidence int8, target *Cache) *StridePrefetcher {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("cache: prefetcher table size must be a positive power of two")
	}
	return &StridePrefetcher{
		entries:    make([]strideEntry, tableSize),
		mask:       uint64(tableSize - 1),
		degree:     degree,
		confidence: confidence,
		target:     target,
	}
}

// Stats returns a copy of the prefetcher counters.
func (p *StridePrefetcher) Stats() PrefetchStats { return p.stats }

// Train observes a demand load from static pc to addr at cycle now and may
// issue prefetches.
func (p *StridePrefetcher) Train(pc uint64, addr uint64, now uint64) {
	p.stats.Trains++
	e := &p.entries[pc&p.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return
	}
	if stride != e.stride {
		e.stride = stride
		e.conf = 0
		p.stats.Resets++
		return
	}
	if e.conf < p.confidence {
		e.conf++
		return
	}
	// For sub-line strides, only issue when the demand stream enters a new
	// line: the prefetch targets are line-granular, so issuing on every
	// access would just re-check resident lines.
	if stride > -LineSize && stride < LineSize && addr/LineSize == (addr-uint64(stride))/LineSize {
		return
	}
	// Confident: prefetch whole lines ahead of the stream. Small strides
	// advance line by line; large strides follow the stride itself.
	lineStride := stride
	if lineStride > 0 && lineStride < LineSize {
		lineStride = LineSize
	} else if lineStride < 0 && lineStride > -LineSize {
		lineStride = -LineSize
	}
	for i := 1; i <= p.degree; i++ {
		next := int64(addr) + lineStride*int64(i)
		if next <= 0 {
			break
		}
		p.stats.Issues++
		p.target.Prefetch(uint64(next), now)
	}
	if p.second != nil {
		for i := p.degree + 1; i <= p.degree+p.secondDegree; i++ {
			next := int64(addr) + lineStride*int64(i)
			if next <= 0 {
				break
			}
			p.stats.Issues++
			p.second.Prefetch(uint64(next), now)
		}
	}
}
