// Package trace reconstructs per-μop pipeline lifetimes from the
// internal/obs event stream and renders them as a Kanata/Konata log. It is
// the shared backend of cmd/pipetrace and the trace regression tests.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// UOp is one committed μop's reconstructed stage timeline (cycles).
type UOp struct {
	Seq   uint64
	Label string

	Decode   uint64
	Dispatch uint64
	Ready    uint64
	Issue    uint64
	Complete uint64
	Commit   uint64
}

// partial accumulates stage events for one in-flight sequence number until
// commit (kept) or squash (dropped and rebuilt on refetch).
type partial struct {
	u                           UOp
	decoded, dispatched, issued bool
}

// Assemble replays an obs event stream and returns the committed μops with
// sequence numbers in [from, to), in commit order. Squashed attempts are
// discarded; a refetched μop's timeline reflects its committed incarnation.
func Assemble(events []obs.Event, from, to uint64) []UOp {
	inflight := make(map[uint64]*partial, 256)
	var window []UOp
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case obs.KindDecode:
			inflight[e.Seq] = &partial{
				u:       UOp{Seq: e.Seq, Label: e.Label, Decode: e.Cycle},
				decoded: true,
			}
		case obs.KindDispatch:
			if p := inflight[e.Seq]; p != nil {
				p.u.Dispatch, p.dispatched = e.Cycle, true
			}
		case obs.KindIssue:
			if p := inflight[e.Seq]; p != nil {
				p.u.Issue, p.u.Ready, p.issued = e.Cycle, e.Arg, true
			}
		case obs.KindExec:
			if p := inflight[e.Seq]; p != nil {
				p.u.Complete = e.Arg
			}
		case obs.KindSquash:
			delete(inflight, e.Seq)
		case obs.KindCommit:
			p := inflight[e.Seq]
			delete(inflight, e.Seq)
			if p == nil || !p.decoded || !p.dispatched || !p.issued {
				continue
			}
			p.u.Commit = e.Cycle
			if p.u.Complete < p.u.Issue {
				p.u.Complete = p.u.Issue
			}
			if e.Seq >= from && e.Seq < to {
				window = append(window, p.u)
			}
		}
	}
	return window
}

// WriteKanata emits the window as a Kanata 0004 log: one lane per μop with
// Dc (decode/backpressure), Sc (scheduler), Is (issue/execute) stages,
// readable by the Konata pipeline viewer.
func WriteKanata(out io.Writer, window []UOp) error {
	type event struct {
		cycle uint64
		line  string
	}
	// Eight log lines per μop (see the loop body below).
	events := make([]event, 0, 8*len(window))
	add := func(cycle uint64, format string, args ...any) {
		events = append(events, event{cycle, fmt.Sprintf(format, args...)})
	}
	for i, u := range window {
		id := i
		fetch := uint64(0)
		if u.Decode >= 2 {
			fetch = u.Decode - 2
		}
		add(fetch, "I\t%d\t%d\t0", id, u.Seq)
		add(fetch, "L\t%d\t0\t%d: %s", id, u.Seq, u.Label)
		add(fetch, "S\t%d\t0\tDc", id)
		add(u.Dispatch, "E\t%d\t0\tDc", id)
		add(u.Dispatch, "S\t%d\t0\tSc", id)
		add(u.Issue, "E\t%d\t0\tSc", id)
		add(u.Issue, "S\t%d\t0\tIs", id)
		add(u.Complete, "E\t%d\t0\tIs", id)
		add(u.Complete, "R\t%d\t%d\t0", id, u.Seq)
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].cycle < events[b].cycle })

	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "Kanata\t0004\n")
	if len(events) == 0 {
		return w.Flush()
	}
	fmt.Fprintf(w, "C=\t%d\n", events[0].cycle)
	cur := events[0].cycle
	for _, e := range events {
		if e.cycle > cur {
			fmt.Fprintf(w, "C\t%d\n", e.cycle-cur)
			cur = e.cycle
		}
		fmt.Fprintln(w, e.line)
	}
	return w.Flush()
}
