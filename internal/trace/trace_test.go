package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stream is a hand-built event sequence: three μops through the full
// pipeline, one of them (seq 11) squashed once by a flush and refetched.
func stream() []obs.Event {
	ev := func(k obs.Kind, cycle, seq, arg uint64, label string) obs.Event {
		return obs.Event{Kind: k, Cycle: cycle, Seq: seq, Arg: arg, Label: label}
	}
	return []obs.Event{
		ev(obs.KindDecode, 2, 10, 0, "pc=0 alu.add r1"),
		ev(obs.KindDispatch, 4, 10, 0, ""),
		ev(obs.KindDecode, 3, 11, 0, "pc=1 load r2, [0x40]"),
		ev(obs.KindDispatch, 5, 11, 0, ""),
		ev(obs.KindIssue, 6, 10, 5, ""),
		ev(obs.KindExec, 6, 10, 7, ""),
		ev(obs.KindCommit, 8, 10, 0, ""),
		// Flush: seq 11's first incarnation dies before issuing.
		ev(obs.KindFlush, 9, 11, 0, ""),
		ev(obs.KindSquash, 9, 11, 0, ""),
		// Refetch and complete.
		ev(obs.KindDecode, 11, 11, 0, "pc=1 load r2, [0x40]"),
		ev(obs.KindDispatch, 13, 11, 0, ""),
		ev(obs.KindIssue, 14, 11, 13, ""),
		ev(obs.KindExec, 14, 11, 18, ""),
		ev(obs.KindDecode, 12, 12, 0, "pc=2 alu.and r3"),
		ev(obs.KindDispatch, 14, 12, 0, ""),
		ev(obs.KindIssue, 19, 12, 18, ""),
		ev(obs.KindExec, 19, 12, 20, ""),
		ev(obs.KindCommit, 19, 11, 0, ""),
		ev(obs.KindCommit, 21, 12, 0, ""),
	}
}

func TestAssemble(t *testing.T) {
	w := Assemble(stream(), 10, 13)
	if len(w) != 3 {
		t.Fatalf("got %d μops, want 3", len(w))
	}
	// Commit order.
	for i, want := range []uint64{10, 11, 12} {
		if w[i].Seq != want {
			t.Errorf("window[%d].Seq = %d, want %d", i, w[i].Seq, want)
		}
	}
	// Seq 11 must reflect the refetched (committed) incarnation.
	u := w[1]
	if u.Decode != 11 || u.Dispatch != 13 || u.Issue != 14 || u.Ready != 13 || u.Complete != 18 || u.Commit != 19 {
		t.Errorf("seq 11 timeline = %+v, want refetched incarnation", u)
	}
	if u.Label != "pc=1 load r2, [0x40]" {
		t.Errorf("seq 11 label = %q", u.Label)
	}

	if got := Assemble(stream(), 11, 12); len(got) != 1 || got[0].Seq != 11 {
		t.Errorf("sub-window [11,12) = %+v", got)
	}
	if got := Assemble(nil, 0, 100); got != nil {
		t.Errorf("empty stream: got %+v", got)
	}
}

// TestAssembleIncomplete drops partial timelines rather than emitting
// garbage: a commit without a preceding decode/dispatch/issue is skipped.
func TestAssembleIncomplete(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindCommit, Cycle: 5, Seq: 1},
		{Kind: obs.KindDecode, Cycle: 1, Seq: 2, Label: "x"},
		{Kind: obs.KindCommit, Cycle: 6, Seq: 2},
	}
	if got := Assemble(events, 0, 100); len(got) != 0 {
		t.Errorf("incomplete timelines leaked: %+v", got)
	}
}

func TestWriteKanataGolden(t *testing.T) {
	window := Assemble(stream(), 10, 13)
	var buf bytes.Buffer
	if err := WriteKanata(&buf, window); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "kanata.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("Kanata output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}

	// Structural sanity independent of the golden bytes.
	if !strings.HasPrefix(got, "Kanata\t0004\n") {
		t.Errorf("missing Kanata 0004 header: %q", got[:min(len(got), 20)])
	}
	retires := strings.Count(got, "\nR\t")
	if retires != len(window) {
		t.Errorf("retire lines = %d, want %d", retires, len(window))
	}
}

func TestWriteKanataEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKanata(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "Kanata\t0004\n" {
		t.Errorf("empty window: %q", buf.String())
	}
}
