package mem

import (
	"testing"

	"repro/internal/cache"
)

func TestDefaultConfigBuilds(t *testing.T) {
	h, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.L1D == nil || h.L1I == nil || h.L2 == nil || h.L3 == nil || h.DRAM == nil {
		t.Fatal("missing hierarchy level")
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2.Ways = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad L2 accepted")
	}
	cfg = DefaultConfig()
	cfg.PrefetchTable = 0
	if _, err := New(cfg); err == nil {
		t.Error("PrefetchTable=0 accepted")
	}
}

func TestLatencyLaddering(t *testing.T) {
	// Cold load goes to DRAM; the re-load hits L1 at 4 cycles; a load that
	// evicted from L1 but not L2 costs the L2 path.
	h := MustNew(DefaultConfig())
	cold := h.Load(1, 0x100000, 0)
	if cold < 100 {
		t.Errorf("cold load done at %d, want DRAM-scale latency", cold)
	}
	warm := h.Load(1, 0x100000, cold) - cold
	if warm != 4 {
		t.Errorf("L1 hit latency = %d, want 4", warm)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := MustNew(DefaultConfig())
	base := uint64(0x200000)
	now := h.Load(1, base, 0)
	// Thrash L1 set: L1D is 32 KiB 8-way → 64 sets → set stride 4096.
	for i := 1; i <= 10; i++ {
		now = h.Load(2, base+uint64(i)*4096, now)
	}
	if h.L1D.Contains(base) {
		t.Skip("victim not evicted; L1 larger than expected")
	}
	start := now
	done := h.Load(3, base, start)
	lat := done - start
	// Should be L1 miss + L2 hit ≈ 4+12, definitely < L3 latency.
	if lat < 10 || lat > 40 {
		t.Errorf("L2-hit latency = %d, want ≈16", lat)
	}
}

func TestStreamingTriggersPrefetch(t *testing.T) {
	h := MustNew(DefaultConfig())
	now := uint64(0)
	for i := 0; i < 64; i++ {
		now = h.Load(7, uint64(0x400000+i*cache.LineSize), now) + 1
	}
	if h.Prefetcher.Stats().Issues == 0 {
		t.Error("no prefetches on a unit-stride stream")
	}
	// Late-stream loads should be much faster than the cold ones.
	coldLat := h.Load(8, 0x800000, now) - now
	streamStart := now + 1000
	streamDone := h.Load(7, uint64(0x400000+64*cache.LineSize), streamStart)
	if streamDone-streamStart >= coldLat {
		t.Errorf("prefetched stream load (%d) not faster than cold (%d)",
			streamDone-streamStart, coldLat)
	}
}

func TestStoreMarksDirtyAndWritesBack(t *testing.T) {
	h := MustNew(DefaultConfig())
	now := h.Store(0x300000, 0)
	// Evict the stored line by filling its L1 set.
	for i := 1; i <= 12; i++ {
		now = h.Load(9, 0x300000+uint64(i)*4096, now)
	}
	if h.L1D.Stats().Writebacks == 0 {
		t.Error("dirty eviction produced no writeback")
	}
}

func TestFetchUsesL1I(t *testing.T) {
	h := MustNew(DefaultConfig())
	done := h.Fetch(0x1000, 0)
	h.Fetch(0x1000, done+1)
	s := h.L1I.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("L1I stats = %+v", s)
	}
	if h.L1D.Stats().Misses != 0 {
		t.Error("fetch leaked into L1D")
	}
}

func TestPointerChaseSlowerThanStream(t *testing.T) {
	// End-to-end hierarchy sanity: random accesses over 8 MiB should have
	// far higher average latency than a unit-stride sweep.
	hRand := MustNew(DefaultConfig())
	hSeq := MustNew(DefaultConfig())

	var randTotal, seqTotal uint64
	now := uint64(0)
	seed := uint64(12345)
	const n = 2000
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		addr := (seed >> 16) % (8 << 20) &^ 63
		done := hRand.Load(5, 0x100000+addr, now)
		randTotal += done - now
		now = done
	}
	now = 0
	for i := 0; i < n; i++ {
		done := hSeq.Load(6, uint64(0x100000+i*cache.LineSize), now)
		seqTotal += done - now
		now = done + 2
	}
	if randTotal < seqTotal*3 {
		t.Errorf("random total latency %d not ≫ sequential %d", randTotal, seqTotal)
	}
}
