// Package mem assembles the Table I memory hierarchy: split L1 I/D caches
// with a stride prefetcher on the data side, a unified L2, a unified L3 and
// DDR4 DRAM. It is the single entry point the pipeline uses for instruction
// fetches, loads and committed stores.
package mem

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
)

// Config selects the hierarchy parameters. DefaultConfig reproduces Table I.
type Config struct {
	L1I, L1D, L2, L3 cache.Config
	DRAM             dram.Config
	// Prefetcher configuration for the L1D stride prefetcher.
	PrefetchTable  int
	PrefetchDegree int
	PrefetchConf   int8
}

// DefaultConfig returns the Table I memory system: 32 KiB 8-way L1s
// (4-cycle, 8 MSHRs) with a stride prefetcher, 256 KiB 8-way L2 (12-cycle,
// 32 MSHRs), 1 MiB 4-way L3 (42-cycle, 64 MSHRs) and DDR4-2400 DRAM.
func DefaultConfig() Config {
	return Config{
		L1I:  cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4, MSHRs: 8},
		L1D:  cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4, MSHRs: 8},
		L2:   cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, HitLatency: 12, MSHRs: 32},
		L3:   cache.Config{Name: "L3", SizeBytes: 1 << 20, Ways: 4, HitLatency: 42, MSHRs: 64},
		DRAM: dram.DefaultConfig(),

		PrefetchTable:  64,
		PrefetchDegree: 2,
		PrefetchConf:   2,
	}
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	L1I, L1D, L2, L3 *cache.Cache
	DRAM             *dram.DRAM
	Prefetcher       *cache.StridePrefetcher
}

// New assembles the hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	l3, err := cache.New(cfg.L3, d)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2, l3)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cfg.L1D, l2)
	if err != nil {
		return nil, err
	}
	l1i, err := cache.New(cfg.L1I, l2)
	if err != nil {
		return nil, err
	}
	if cfg.PrefetchTable <= 0 {
		return nil, fmt.Errorf("mem: PrefetchTable must be positive")
	}
	// The stride prefetcher trains on the L1D demand stream and fills the
	// L2 (L1 misses on fresh lines remain, costing an L2 hit — the
	// latency an in-order core cannot hide but an out-of-order one can).
	pf := cache.NewStridePrefetcher(cfg.PrefetchTable, cfg.PrefetchDegree*4, cfg.PrefetchConf, l2)
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, L3: l3, DRAM: d, Prefetcher: pf}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Load services a demand load from static pc at cycle now and returns its
// completion cycle. The prefetcher trains on every demand load.
func (h *Hierarchy) Load(pc uint64, addr uint64, now uint64) uint64 {
	done := h.L1D.Access(addr, false, now)
	h.Prefetcher.Train(pc, addr, now)
	return done
}

// Store services a committed store (write-allocate into L1D) and returns
// the completion cycle; callers normally treat stores as fire-and-forget
// once they leave the store queue.
func (h *Hierarchy) Store(addr uint64, now uint64) uint64 {
	return h.L1D.Access(addr, true, now)
}

// Fetch services an instruction fetch. Synthetic kernels are tiny loops, so
// this nearly always hits; it exists for completeness and fetch energy.
func (h *Hierarchy) Fetch(addr uint64, now uint64) uint64 {
	return h.L1I.Access(addr, false, now)
}
