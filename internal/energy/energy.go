// Package energy implements the McPAT-style, event-driven energy model of
// §V: per-event energies (22 nm-inspired constants) are charged against the
// event counts each structure reports, plus per-cycle leakage. The nine
// reporting categories match Figure 15. Absolute joules are a modelling
// artefact; the figures of merit are the ratios between
// microarchitectures, which follow from event-count differences exactly as
// in McPAT-based studies.
package energy

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Category is one Figure 15 reporting bucket.
type Category int

// The nine core components of Figure 15.
const (
	CatL1     Category = iota // L1 I/D caches
	CatFetch                  // fetch + decode
	CatRename                 // RAT, free list, recovery log
	CatSteer                  // steer logic (clustered designs)
	CatMDP                    // SSIT + LFST
	CatSched                  // IQs (wakeup/select/payload) + ROB
	CatLSQ                    // load and store queues
	CatPRF                    // physical register file
	CatFU                     // functional units + bypass
	NumCategories
)

var catNames = [...]string{
	CatL1: "L1 I/D$", CatFetch: "Fetch/Decode", CatRename: "Rename",
	CatSteer: "Steer", CatMDP: "MDP", CatSched: "Schedule",
	CatLSQ: "LSQ", CatPRF: "PRF", CatFU: "FUs",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("cat?%d", int(c))
}

// Params holds per-event energies in picojoules and per-cycle leakage.
// DefaultParams is calibrated so the category proportions match published
// McPAT breakdowns of Skylake-class cores at 22 nm.
type Params struct {
	// Schedule events.
	WakeupComparePJ float64 // one CAM tag comparison
	WakeupDrivePJ   float64 // driving one destination tag broadcast
	SelectInputPJ   float64 // one prefix-sum input
	QueueWritePJ    float64 // one IQ/FIFO entry write
	QueueReadPJ     float64 // one IQ/FIFO entry read
	PayloadReadPJ   float64 // payload RAM read on grant
	PSCBReadPJ      float64
	PSCBWritePJ     float64
	ROBWritePJ      float64 // per dispatch
	ROBReadPJ       float64 // per commit
	SteerOpPJ       float64
	IXUExecPJ       float64 // FXA in-order execution unit slot

	// Front end.
	FetchDecodePJ float64 // per fetched μop
	RenamePJ      float64 // per renamed μop
	L1AccessPJ    float64 // per L1 I/D access
	MDPAccessPJ   float64 // per SSIT/LFST access

	// Back end.
	PRFReadPJ   float64
	PRFWritePJ  float64
	LSQInsertPJ float64
	LSQSearchPJ float64
	FUPJ        [isa.NumOps]float64

	// LeakagePJPerCycle is total static energy per cycle at nominal
	// voltage, distributed across categories by LeakageShare.
	LeakagePJPerCycle float64
	LeakageShare      [NumCategories]float64
}

// DefaultParams returns the calibrated 22 nm constants.
func DefaultParams() Params {
	p := Params{
		WakeupComparePJ: 0.10,
		WakeupDrivePJ:   2.0,
		SelectInputPJ:   0.02,
		QueueWritePJ:    0.55,
		QueueReadPJ:     0.45,
		PayloadReadPJ:   1.0,
		PSCBReadPJ:      0.18,
		PSCBWritePJ:     0.25,
		ROBWritePJ:      1.6,
		ROBReadPJ:       1.2,
		SteerOpPJ:       0.6,
		IXUExecPJ:       2.2,

		FetchDecodePJ: 14.0,
		RenamePJ:      6.5,
		L1AccessPJ:    11.0,
		MDPAccessPJ:   0.9,

		PRFReadPJ:   1.3,
		PRFWritePJ:  1.7,
		LSQInsertPJ: 1.0,
		LSQSearchPJ: 2.2,

		LeakagePJPerCycle: 30.0,
	}
	p.FUPJ = [isa.NumOps]float64{
		isa.OpNop:    0.5,
		isa.OpIntALU: 3.2,
		isa.OpIntMul: 9.0,
		isa.OpIntDiv: 22.0,
		isa.OpFpAdd:  11.0,
		isa.OpFpMul:  13.0,
		isa.OpFpDiv:  28.0,
		isa.OpLoad:   2.4, // AGU
		isa.OpStore:  2.4,
		isa.OpBranch: 1.4,
	}
	p.LeakageShare = [NumCategories]float64{
		CatL1: 0.22, CatFetch: 0.12, CatRename: 0.06, CatSteer: 0.02,
		CatMDP: 0.02, CatSched: 0.20, CatLSQ: 0.08, CatPRF: 0.10, CatFU: 0.18,
	}
	return p
}

// Breakdown is the per-category energy of one run, in picojoules.
type Breakdown struct {
	PJ [NumCategories]float64
}

// Total returns the core-wide energy in picojoules.
func (b Breakdown) Total() float64 {
	t := 0.0
	for _, v := range b.PJ {
		t += v
	}
	return t
}

// Inputs bundles the event sources the model reads.
type Inputs struct {
	Stats   *stats.Sim
	Sched   sched.EnergyEvents
	Mem     *mem.Hierarchy
	Renames uint64
	MDPOn   bool
	// VoltageV and NominalV scale dynamic energy by (V/Vnom)² and
	// leakage by (V/Vnom) for the DVFS study.
	VoltageV float64
	NominalV float64
}

// Compute charges all events and returns the breakdown.
func Compute(p Params, in Inputs) Breakdown {
	var b Breakdown
	s := in.Stats

	// Schedule: IQ events + ROB.
	b.PJ[CatSched] += float64(in.Sched.WakeupCompares) * p.WakeupComparePJ
	b.PJ[CatSched] += float64(in.Sched.WakeupBroadcasts) * p.WakeupDrivePJ
	b.PJ[CatSched] += float64(in.Sched.SelectInputs) * p.SelectInputPJ
	b.PJ[CatSched] += float64(in.Sched.QueueWrites) * p.QueueWritePJ
	b.PJ[CatSched] += float64(in.Sched.QueueReads) * p.QueueReadPJ
	b.PJ[CatSched] += float64(in.Sched.PayloadReads) * p.PayloadReadPJ
	b.PJ[CatSched] += float64(in.Sched.IXUExecs) * p.IXUExecPJ
	b.PJ[CatSched] += float64(s.Committed) * (p.ROBWritePJ + p.ROBReadPJ)

	// Steer: steering decisions + P-SCB traffic.
	b.PJ[CatSteer] += float64(in.Sched.SteerOps) * p.SteerOpPJ
	b.PJ[CatSteer] += float64(in.Sched.PSCBReads) * p.PSCBReadPJ
	b.PJ[CatSteer] += float64(in.Sched.PSCBWrites) * p.PSCBWritePJ

	// Front end.
	b.PJ[CatFetch] += float64(s.Fetched) * p.FetchDecodePJ
	b.PJ[CatRename] += float64(in.Renames) * p.RenamePJ

	// Caches: demand accesses at both L1s.
	if in.Mem != nil {
		l1d, l1i := in.Mem.L1D.Stats(), in.Mem.L1I.Stats()
		accD := l1d.Hits + l1d.Misses + l1d.MergedMiss
		accI := l1i.Hits + l1i.Misses + l1i.MergedMiss
		b.PJ[CatL1] += float64(accD+accI) * p.L1AccessPJ
	}

	// MDP: one SSIT lookup per memory μop, LFST traffic folded in.
	if in.MDPOn {
		memOps := s.OpCommitted[isa.OpLoad] + s.OpCommitted[isa.OpStore]
		b.PJ[CatMDP] += float64(memOps) * p.MDPAccessPJ
	}

	// LSQ: insert per memory μop, search per load issue and store resolve.
	memIssued := s.OpCommitted[isa.OpLoad] + s.OpCommitted[isa.OpStore]
	b.PJ[CatLSQ] += float64(memIssued) * (p.LSQInsertPJ + p.LSQSearchPJ)

	// PRF: two reads and one write per issued μop (upper bound).
	b.PJ[CatPRF] += float64(s.Issued) * (2*p.PRFReadPJ + p.PRFWritePJ)

	// FUs by committed opcode mix (replays charged via Issued ratio).
	replayFactor := 1.0
	if s.Committed > 0 {
		replayFactor = float64(s.Issued) / float64(s.Committed)
	}
	for op, n := range s.OpCommitted {
		b.PJ[CatFU] += float64(n) * p.FUPJ[op] * replayFactor
	}

	// Leakage.
	for c := Category(0); c < NumCategories; c++ {
		b.PJ[c] += float64(s.Cycles) * p.LeakagePJPerCycle * p.LeakageShare[c]
	}

	// DVFS scaling: dynamic ∝ V², leakage ∝ V. Applied uniformly as an
	// approximation (leakage is a minor share at these operating points).
	if in.VoltageV > 0 && in.NominalV > 0 && in.VoltageV != in.NominalV {
		scale := (in.VoltageV / in.NominalV) * (in.VoltageV / in.NominalV)
		for c := range b.PJ {
			b.PJ[c] *= scale
		}
	}
	return b
}

// EDP returns the energy-delay product (pJ × cycles). Lower is better.
func EDP(b Breakdown, cycles uint64) float64 {
	return b.Total() * float64(cycles)
}

// Efficiency returns performance-per-energy (1/EDP) normalised so callers
// can take ratios; returns 0 for degenerate inputs.
func Efficiency(b Breakdown, cycles uint64) float64 {
	e := EDP(b, cycles)
	if e == 0 {
		return 0
	}
	return 1 / e
}
