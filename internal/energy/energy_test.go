package energy

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/stats"
)

func baseStats() *stats.Sim {
	s := &stats.Sim{Cycles: 1000, Committed: 2000, Fetched: 2100, Issued: 2050}
	s.OpCommitted[isa.OpIntALU] = 1200
	s.OpCommitted[isa.OpLoad] = 400
	s.OpCommitted[isa.OpStore] = 200
	s.OpCommitted[isa.OpBranch] = 200
	return s
}

func TestCategoryNames(t *testing.T) {
	want := []string{"L1 I/D$", "Fetch/Decode", "Rename", "Steer", "MDP", "Schedule", "LSQ", "PRF", "FUs"}
	for c := Category(0); c < NumCategories; c++ {
		if c.String() != want[c] {
			t.Errorf("category %d = %q, want %q", c, c.String(), want[c])
		}
	}
}

func TestComputeChargesSchedulerEvents(t *testing.T) {
	p := DefaultParams()
	in := Inputs{Stats: baseStats(), Renames: 2000, MDPOn: true}
	base := Compute(p, in)

	in.Sched = sched.EnergyEvents{WakeupBroadcasts: 1000, WakeupCompares: 100000}
	withCAM := Compute(p, in)
	if withCAM.PJ[CatSched] <= base.PJ[CatSched] {
		t.Error("CAM events added no Schedule energy")
	}
	// Only the Schedule category changed.
	for c := Category(0); c < NumCategories; c++ {
		if c != CatSched && withCAM.PJ[c] != base.PJ[c] {
			t.Errorf("category %v changed by wakeup events", c)
		}
	}
}

func TestSteerEventsGoToSteerCategory(t *testing.T) {
	p := DefaultParams()
	in := Inputs{Stats: baseStats(), Renames: 2000}
	base := Compute(p, in)
	in.Sched = sched.EnergyEvents{SteerOps: 5000, PSCBReads: 10000}
	got := Compute(p, in)
	if got.PJ[CatSteer] <= base.PJ[CatSteer] {
		t.Error("steer events added no Steer energy")
	}
}

func TestMDPOffZeroDynamicMDP(t *testing.T) {
	p := DefaultParams()
	leakMDP := float64(baseStats().Cycles) * p.LeakagePJPerCycle * p.LeakageShare[CatMDP]
	off := Compute(p, Inputs{Stats: baseStats(), MDPOn: false})
	if off.PJ[CatMDP] != leakMDP {
		t.Errorf("MDP-off energy %v, want leakage only %v", off.PJ[CatMDP], leakMDP)
	}
	on := Compute(p, Inputs{Stats: baseStats(), MDPOn: true})
	if on.PJ[CatMDP] <= off.PJ[CatMDP] {
		t.Error("MDP-on adds no energy")
	}
}

func TestVoltageScaling(t *testing.T) {
	p := DefaultParams()
	in := Inputs{Stats: baseStats(), Renames: 2000, VoltageV: 1.04, NominalV: 1.04}
	nominal := Compute(p, in)
	in.VoltageV = 0.96
	low := Compute(p, in)
	want := nominal.Total() * (0.96 / 1.04) * (0.96 / 1.04)
	if diff := low.Total() - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("scaled total = %v, want %v", low.Total(), want)
	}
}

func TestReplayFactorChargesFUs(t *testing.T) {
	p := DefaultParams()
	s := baseStats()
	clean := Compute(p, Inputs{Stats: s})
	s2 := baseStats()
	s2.Issued = s2.Committed * 2 // heavy replay
	replayed := Compute(p, Inputs{Stats: s2})
	if replayed.PJ[CatFU] <= clean.PJ[CatFU] {
		t.Error("replays add no FU energy")
	}
}

func TestTotalIsSumOfCategories(t *testing.T) {
	b := Breakdown{}
	for c := Category(0); c < NumCategories; c++ {
		b.PJ[c] = float64(c + 1)
	}
	if b.Total() != 45 {
		t.Errorf("Total = %v, want 45", b.Total())
	}
}

func TestEDPAndEfficiency(t *testing.T) {
	b := Breakdown{}
	b.PJ[CatFU] = 100
	if EDP(b, 10) != 1000 {
		t.Errorf("EDP = %v", EDP(b, 10))
	}
	if Efficiency(b, 10) != 1.0/1000 {
		t.Errorf("Efficiency = %v", Efficiency(b, 10))
	}
	if Efficiency(Breakdown{}, 10) != 0 {
		t.Error("degenerate efficiency not 0")
	}
}

func TestLeakageSharesSumToOne(t *testing.T) {
	p := DefaultParams()
	sum := 0.0
	for _, v := range p.LeakageShare {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("leakage shares sum to %v", sum)
	}
}

func TestSchedulerStateModel(t *testing.T) {
	ooo, err := EstimateSchedulerState("OoO")
	if err != nil {
		t.Fatal(err)
	}
	ball, err := EstimateSchedulerState("Ballerino")
	if err != nil {
		t.Fatal(err)
	}
	ces, err := EstimateSchedulerState("CES")
	if err != nil {
		t.Fatal(err)
	}
	// Ballerino carries no CAM wakeup storage and a far shallower select
	// circuit than the unified out-of-order IQ.
	if ball.WakeupBytes != 0 || ooo.WakeupBytes == 0 {
		t.Error("wakeup storage model wrong")
	}
	if ball.SelectDepth() >= ooo.SelectDepth() {
		t.Errorf("select depth: Ballerino %d vs OoO %d", ball.SelectDepth(), ooo.SelectDepth())
	}
	// §IV-G3: the overhead over CES is small — extra pointers plus the
	// 64-byte LFST extension (the S-IQ replaces one P-IQ).
	extra := ball.TotalBytes() - ces.TotalBytes()
	if extra < 0 || extra > 256 {
		t.Errorf("Ballerino over CES = %dB, want small positive", extra)
	}
	// §VI-E3: Ballerino-12's prefix-sum critical path stays at 4 stages.
	b12, _ := EstimateSchedulerState("Ballerino-12")
	if b12.SelectDepth() != 4 {
		t.Errorf("Ballerino-12 select depth = %d, want 4 (log2 15)", b12.SelectDepth())
	}
	if _, err := EstimateSchedulerState("nope"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestStateReportRenders(t *testing.T) {
	r := StateReport()
	for _, want := range []string{"OoO", "Ballerino-12", "sel depth"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
