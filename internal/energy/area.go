package energy

import (
	"fmt"
	"strings"
)

// SchedulerState estimates the scheduler-related storage of one
// microarchitecture in bytes, plus its select-circuit complexity, in the
// spirit of §IV-G3's hardware-overhead accounting. It is a first-order
// bit-counting model (payload entries, pointers, scoreboard fields), not a
// layout tool; its purpose is to substantiate the paper's claim that
// Ballerino's additions over CES are small.
type SchedulerState struct {
	Arch string
	// PayloadBytes is the IQ payload storage (entries × entry size).
	PayloadBytes int
	// WakeupBytes is CAM tag storage (out-of-order IQs only).
	WakeupBytes int
	// PointerBytes covers FIFO head/tail pointers (doubled in sharing
	// mode) and scoreboard location fields.
	PointerBytes int
	// LFSTExtraBytes is the Ballerino LFST steering extension (§IV-G3:
	// 64 bytes at 8-wide).
	LFSTExtraBytes int
	// SelectInputs is the per-port prefix-sum input count — the select
	// critical path is ⌈log2(inputs)⌉ adders (§IV-E).
	SelectInputs int
}

// SelectDepth returns the prefix-sum critical path in adder stages.
func (s SchedulerState) SelectDepth() int {
	d := 0
	for n := 1; n < s.SelectInputs; n *= 2 {
		d++
	}
	return d
}

// TotalBytes sums all storage categories.
func (s SchedulerState) TotalBytes() int {
	return s.PayloadBytes + s.WakeupBytes + s.PointerBytes + s.LFSTExtraBytes
}

// Entry-size constants (bytes) for the bit-counting model: a payload entry
// holds the decoded μop (opcode, dest/src physical tags, immediate, port);
// a CAM wakeup entry holds two source tags plus ready bits.
const (
	payloadEntryBytes = 16
	wakeupEntryBytes  = 3
	pointerBytes      = 2 // head or tail pointer
)

// EstimateSchedulerState returns the model for the named 8-wide
// configuration of Table II.
func EstimateSchedulerState(arch string) (SchedulerState, error) {
	switch arch {
	case "InO":
		return SchedulerState{
			Arch: arch, PayloadBytes: 96 * payloadEntryBytes,
			PointerBytes: 2 * pointerBytes,
			SelectInputs: 8, // head window
		}, nil
	case "OoO":
		return SchedulerState{
			Arch: arch, PayloadBytes: 96 * payloadEntryBytes,
			WakeupBytes:  96 * wakeupEntryBytes * 2,
			SelectInputs: 96, // every entry requests every port
		}, nil
	case "CES":
		return SchedulerState{
			Arch: arch, PayloadBytes: 8 * 12 * payloadEntryBytes,
			PointerBytes: 8 * 2 * pointerBytes,
			SelectInputs: 8, // one request per P-IQ head
		}, nil
	case "CASINO":
		return SchedulerState{
			Arch: arch, PayloadBytes: (8 + 40 + 40 + 8) * payloadEntryBytes,
			PointerBytes: 4 * 2 * pointerBytes,
			SelectInputs: 16, // four windows of four
		}, nil
	case "FXA":
		return SchedulerState{
			Arch: arch, PayloadBytes: 48 * payloadEntryBytes,
			WakeupBytes:  48 * wakeupEntryBytes * 2,
			SelectInputs: 48,
		}, nil
	case "Ballerino":
		return SchedulerState{
			Arch: arch, PayloadBytes: (8 + 7*12) * payloadEntryBytes,
			// Each P-IQ has one extra head/tail pair for sharing mode.
			PointerBytes:   (7*4 + 2) * pointerBytes,
			LFSTExtraBytes: 64,
			SelectInputs:   7 + 4, // P-IQ heads + S-IQ window (§IV-E)
		}, nil
	case "Ballerino-12":
		return SchedulerState{
			Arch: arch, PayloadBytes: (8 + 11*12) * payloadEntryBytes,
			PointerBytes:   (11*4 + 2) * pointerBytes,
			LFSTExtraBytes: 64,
			SelectInputs:   11 + 4, // log2(15) → 4-stage prefix sum (§VI-E3)
		}, nil
	default:
		return SchedulerState{}, fmt.Errorf("energy: no state model for %q", arch)
	}
}

// StateReport renders the §IV-G3-style comparison for the standard set.
func StateReport() string {
	var sb strings.Builder
	sb.WriteString("## Scheduler storage and select complexity (§IV-G3 model, 8-wide)\n")
	fmt.Fprintf(&sb, "%-14s %9s %9s %9s %6s %8s %10s\n",
		"arch", "payload", "wakeup", "pointers", "LFST+", "total", "sel depth")
	for _, a := range []string{"InO", "OoO", "CES", "CASINO", "FXA", "Ballerino", "Ballerino-12"} {
		s, err := EstimateSchedulerState(a)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "%-14s %8dB %8dB %8dB %5dB %7dB %10d\n",
			s.Arch, s.PayloadBytes, s.WakeupBytes, s.PointerBytes,
			s.LFSTExtraBytes, s.TotalBytes(), s.SelectDepth())
	}
	return sb.String()
}
