// Package rename implements the two-stage register renaming front end of
// §IV-B: a register alias table (RAT), separate integer and floating-point
// physical register free lists (Table I: 180 int + 168 fp at 8-wide), a
// recovery log for mis-speculation repair, and the physical register
// scoreboard (P-SCB) that tracks per-register readiness and — for Ballerino
// — producer steering location.
package rename

import (
	"fmt"

	"repro/internal/isa"
)

// PhysReg names a physical register. PhysNone marks an absent operand.
type PhysReg int16

// PhysNone is the renamed form of isa.RegNone.
const PhysNone PhysReg = -1

// NeverReady is a readiness timestamp meaning "producer has not executed".
const NeverReady = ^uint64(0)

// Config sizes the register file.
type Config struct {
	IntRegs int
	FpRegs  int
}

// DefaultConfig is the 8-wide Table I configuration.
func DefaultConfig() Config { return Config{IntRegs: 180, FpRegs: 168} }

// Validate reports configuration errors. Physical registers must cover the
// architectural state plus at least one rename slot each.
func (c Config) Validate() error {
	if c.IntRegs <= isa.NumIntRegs {
		return fmt.Errorf("rename: IntRegs %d must exceed the %d architectural int registers", c.IntRegs, isa.NumIntRegs)
	}
	if c.FpRegs <= isa.NumFpRegs {
		return fmt.Errorf("rename: FpRegs %d must exceed the %d architectural fp registers", c.FpRegs, isa.NumFpRegs)
	}
	return nil
}

// pscbEntry is one P-SCB record (§IV-C): readiness plus producer location.
type pscbEntry struct {
	readyAt uint64
	// loadDep marks registers produced (directly or transitively) by a
	// load that had not completed when the producer dispatched. Used for
	// the Ld/LdC/Rst classification of Figure 3c/12.
	loadDep bool
	// IQIndex/Reserved implement the steering fields of §IV-C: the P-IQ
	// where the producer currently waits (or NoIQ) and whether a consumer
	// has already been steered behind it.
	iqIndex  int
	reserved bool
}

// NoIQ marks a P-SCB entry with no in-queue producer.
const NoIQ = -1

// Renamer is the RAT + free lists + recovery log + P-SCB.
type Renamer struct {
	cfg Config

	rat [isa.NumArchRegs]PhysReg

	freeInt []PhysReg
	freeFp  []PhysReg

	pscb []pscbEntry

	// ready is a bitmap shadow of the P-SCB Ready flags for "is p ready
	// right now" queries: bit p is set iff pscb[p].readyAt is at or before
	// the pipeline's current cycle. Rename clears the destination bit,
	// Squash restores it, SetReadyAt clears it (availability is always in
	// the future at issue time), and the pipeline sets it via MarkReady
	// when the producer's completion event fires — so FastReady is a
	// single bit test instead of a timestamp compare.
	ready []uint64

	// Statistics.
	renames    uint64
	stallsFree uint64
}

// New builds a renamer with the architectural registers mapped to the first
// physical registers, all ready at cycle 0.
func New(cfg Config) (*Renamer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Renamer{cfg: cfg, pscb: make([]pscbEntry, cfg.IntRegs+cfg.FpRegs)}
	r.ready = make([]uint64, (len(r.pscb)+63)/64)
	for i := range r.pscb {
		r.pscb[i] = pscbEntry{readyAt: 0, iqIndex: NoIQ}
	}
	for i := range r.ready {
		r.ready[i] = ^uint64(0)
	}
	// Int physical registers occupy [0, IntRegs); fp [IntRegs, IntRegs+FpRegs).
	for a := 0; a < isa.NumIntRegs; a++ {
		r.rat[a] = PhysReg(a)
	}
	for a := 0; a < isa.NumFpRegs; a++ {
		r.rat[isa.NumIntRegs+a] = PhysReg(cfg.IntRegs + a)
	}
	for p := isa.NumIntRegs; p < cfg.IntRegs; p++ {
		r.freeInt = append(r.freeInt, PhysReg(p))
	}
	for p := cfg.IntRegs + isa.NumFpRegs; p < cfg.IntRegs+cfg.FpRegs; p++ {
		r.freeFp = append(r.freeFp, PhysReg(p))
	}
	return r, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Renamer {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// NumPhysRegs returns the total physical register count.
func (r *Renamer) NumPhysRegs() int { return len(r.pscb) }

// FreeCount returns the free physical registers in (int, fp) pools.
func (r *Renamer) FreeCount() (int, int) { return len(r.freeInt), len(r.freeFp) }

// Lookup returns the current mapping of an architectural register.
func (r *Renamer) Lookup(a isa.Reg) PhysReg {
	if !a.Valid() {
		return PhysNone
	}
	return r.rat[a]
}

// CanRename reports whether a destination of the given kind can be renamed
// right now (a free physical register exists).
func (r *Renamer) CanRename(dst isa.Reg) bool {
	if !dst.Valid() {
		return true
	}
	if dst.IsFP() {
		return len(r.freeFp) > 0
	}
	return len(r.freeInt) > 0
}

// Entry is the recovery log record for one renamed μop, to be stored in its
// ROB entry. OldPhys is freed at commit; at squash, the RAT is restored to
// OldPhys and NewPhys is freed.
type Entry struct {
	Arch    isa.Reg
	OldPhys PhysReg
	NewPhys PhysReg
}

// Rename maps the μop's sources through the RAT and allocates a physical
// destination. It returns the source mappings, destination mapping, and the
// recovery entry. ok is false — with no state change — when the free list
// for the destination kind is empty (dispatch must stall).
func (r *Renamer) Rename(d *isa.DynInst) (src [2]PhysReg, dst PhysReg, rec Entry, ok bool) {
	reads := d.Reads()
	for i, a := range reads {
		if a.Valid() {
			src[i] = r.rat[a]
		} else {
			src[i] = PhysNone
		}
	}
	dst = PhysNone
	rec = Entry{Arch: isa.RegNone, OldPhys: PhysNone, NewPhys: PhysNone}
	w := d.Writes()
	if !w.Valid() {
		r.renames++
		return src, dst, rec, true
	}
	var pool *[]PhysReg
	if w.IsFP() {
		pool = &r.freeFp
	} else {
		pool = &r.freeInt
	}
	if len(*pool) == 0 {
		r.stallsFree++
		return src, PhysNone, rec, false
	}
	dst = (*pool)[len(*pool)-1]
	*pool = (*pool)[:len(*pool)-1]
	rec = Entry{Arch: w, OldPhys: r.rat[w], NewPhys: dst}
	r.rat[w] = dst
	r.pscb[dst] = pscbEntry{readyAt: NeverReady, iqIndex: NoIQ}
	r.ready[uint(dst)>>6] &^= 1 << (uint(dst) & 63)
	r.renames++
	return src, dst, rec, true
}

// Commit releases the previous mapping of a committed μop.
func (r *Renamer) Commit(rec Entry) {
	if rec.OldPhys == PhysNone {
		return
	}
	r.free(rec.OldPhys)
}

// Squash undoes one rename in reverse program order: restores the RAT and
// frees the speculative physical register. Its P-SCB entry is cleared
// (§IV-F: each flushed instruction clears the P-SCB entry of its
// destination operand).
func (r *Renamer) Squash(rec Entry) {
	if rec.NewPhys == PhysNone {
		return
	}
	r.rat[rec.Arch] = rec.OldPhys
	r.pscb[rec.NewPhys] = pscbEntry{readyAt: 0, iqIndex: NoIQ}
	r.ready[uint(rec.NewPhys)>>6] |= 1 << (uint(rec.NewPhys) & 63)
	r.free(rec.NewPhys)
}

func (r *Renamer) free(p PhysReg) {
	if int(p) < r.cfg.IntRegs {
		r.freeInt = append(r.freeInt, p)
	} else {
		r.freeFp = append(r.freeFp, p)
	}
}

// --- P-SCB operations ---

// ReadyAt returns the cycle at which p's value is available through the
// bypass network (NeverReady if unknown). PhysNone is always ready.
func (r *Renamer) ReadyAt(p PhysReg) uint64 {
	if p == PhysNone {
		return 0
	}
	return r.pscb[p].readyAt
}

// Ready reports whether p is available at cycle.
func (r *Renamer) Ready(p PhysReg, cycle uint64) bool {
	return r.ReadyAt(p) <= cycle
}

// SetReadyAt records the bypass-availability cycle of p (called when its
// producer issues with a known latency, or when a load completes). It also
// clears the steering fields, per §IV-C: "When I_p completes execution, the
// IQ index and Reserved fields of R_p are cleared and the Ready flag set."
func (r *Renamer) SetReadyAt(p PhysReg, cycle uint64) {
	if p == PhysNone {
		return
	}
	e := &r.pscb[p]
	e.readyAt = cycle
	e.iqIndex = NoIQ
	e.reserved = false
	r.ready[uint(p)>>6] &^= 1 << (uint(p) & 63)
}

// MarkReady sets p's fast-ready bit. The pipeline calls it when the
// producer's completion event fires — the cycle recorded by SetReadyAt —
// keeping the bitmap in lockstep with the timestamp view.
func (r *Renamer) MarkReady(p PhysReg) {
	if p != PhysNone {
		r.ready[uint(p)>>6] |= 1 << (uint(p) & 63)
	}
}

// FastReady reports Ready(p, now) for the pipeline's current cycle as a
// single bit test. It is valid only for "now" queries under the pipeline's
// MarkReady discipline; arbitrary-cycle queries must use Ready.
func (r *Renamer) FastReady(p PhysReg) bool {
	return p == PhysNone || r.ready[uint(p)>>6]&(1<<(uint(p)&63)) != 0
}

// SetLoadDep marks p as (transitively) load-dependent for scheduling-delay
// classification.
func (r *Renamer) SetLoadDep(p PhysReg, dep bool) {
	if p != PhysNone {
		r.pscb[p].loadDep = dep
	}
}

// LoadDep reports the load-dependence mark of p.
func (r *Renamer) LoadDep(p PhysReg) bool {
	return p != PhysNone && r.pscb[p].loadDep
}

// SetProducerIQ records that p's producer now waits in the given P-IQ with
// an unreserved tail slot.
func (r *Renamer) SetProducerIQ(p PhysReg, iq int) {
	if p != PhysNone {
		r.pscb[p].iqIndex = iq
		r.pscb[p].reserved = false
	}
}

// ProducerIQ returns (iqIndex, reserved, ok): where p's producer waits, if
// it is still queued and p is not yet ready.
func (r *Renamer) ProducerIQ(p PhysReg) (int, bool, bool) {
	if p == PhysNone {
		return NoIQ, false, false
	}
	e := &r.pscb[p]
	if e.iqIndex == NoIQ {
		return NoIQ, false, false
	}
	return e.iqIndex, e.reserved, true
}

// ReserveProducer sets the Reserved flag of p's P-SCB entry: a consumer has
// been steered to the producer's P-IQ, so p's producer is no longer at that
// queue's tail.
func (r *Renamer) ReserveProducer(p PhysReg) {
	if p != PhysNone {
		r.pscb[p].reserved = true
	}
}

// Stats returns (renames performed, dispatch stalls due to empty free list).
func (r *Renamer) Stats() (uint64, uint64) { return r.renames, r.stallsFree }
