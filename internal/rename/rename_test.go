package rename

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func newR(t *testing.T) *Renamer {
	t.Helper()
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func aluOp(dst, s1, s2 isa.Reg) *isa.DynInst {
	return &isa.DynInst{Op: isa.OpIntALU, Dst: dst, Src1: s1, Src2: s2}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{IntRegs: 64, FpRegs: 168}).Validate() == nil {
		t.Error("IntRegs == arch regs accepted")
	}
	if (Config{IntRegs: 180, FpRegs: 10}).Validate() == nil {
		t.Error("FpRegs < arch regs accepted")
	}
	if _, err := New(Config{IntRegs: 1, FpRegs: 1}); err == nil {
		t.Error("New accepted bad config")
	}
}

func TestInitialMappingsReady(t *testing.T) {
	r := newR(t)
	for a := 0; a < isa.NumIntRegs; a++ {
		p := r.Lookup(isa.R(a))
		if p == PhysNone || !r.Ready(p, 0) {
			t.Fatalf("r%d initial mapping not ready", a)
		}
	}
	p := r.Lookup(isa.F(5))
	if !r.Ready(p, 0) {
		t.Error("f5 initial mapping not ready")
	}
}

func TestRenameCreatesDependency(t *testing.T) {
	r := newR(t)
	// producer: r1 = r2 + r3
	_, dst1, _, ok := r.Rename(aluOp(isa.R(1), isa.R(2), isa.R(3)))
	if !ok {
		t.Fatal("rename failed")
	}
	if r.Ready(dst1, 0) {
		t.Error("fresh destination already ready")
	}
	// consumer: r4 = r1 + r1 must see the new mapping.
	src, _, _, _ := r.Rename(aluOp(isa.R(4), isa.R(1), isa.R(1)))
	if src[0] != dst1 || src[1] != dst1 {
		t.Errorf("consumer sources = %v, want both %d", src, dst1)
	}
	r.SetReadyAt(dst1, 17)
	if r.Ready(dst1, 16) || !r.Ready(dst1, 17) {
		t.Error("ReadyAt semantics wrong")
	}
}

func TestRenameSeparatePools(t *testing.T) {
	r := newR(t)
	_, dint, _, _ := r.Rename(aluOp(isa.R(1), isa.RegNone, isa.RegNone))
	_, dfp, _, _ := r.Rename(aluOp(isa.F(1), isa.RegNone, isa.RegNone))
	if int(dint) >= DefaultConfig().IntRegs {
		t.Errorf("int dest %d allocated from fp pool", dint)
	}
	if int(dfp) < DefaultConfig().IntRegs {
		t.Errorf("fp dest %d allocated from int pool", dfp)
	}
}

func TestFreeListExhaustionStalls(t *testing.T) {
	r := newR(t)
	free := DefaultConfig().IntRegs - isa.NumIntRegs
	for i := 0; i < free; i++ {
		if _, _, _, ok := r.Rename(aluOp(isa.R(1), isa.RegNone, isa.RegNone)); !ok {
			t.Fatalf("rename %d failed early", i)
		}
	}
	if _, _, _, ok := r.Rename(aluOp(isa.R(1), isa.RegNone, isa.RegNone)); ok {
		t.Fatal("rename succeeded with empty free list")
	}
	_, stalls := r.Stats()
	if stalls != 1 {
		t.Errorf("stallsFree = %d", stalls)
	}
	// FP pool unaffected.
	if _, _, _, ok := r.Rename(aluOp(isa.F(1), isa.RegNone, isa.RegNone)); !ok {
		t.Error("fp rename blocked by int exhaustion")
	}
}

func TestCommitFreesOldMapping(t *testing.T) {
	r := newR(t)
	intFree0, _ := r.FreeCount()
	_, _, rec, _ := r.Rename(aluOp(isa.R(1), isa.RegNone, isa.RegNone))
	intFree1, _ := r.FreeCount()
	if intFree1 != intFree0-1 {
		t.Fatalf("free count after rename = %d", intFree1)
	}
	r.Commit(rec)
	intFree2, _ := r.FreeCount()
	if intFree2 != intFree0 {
		t.Errorf("free count after commit = %d, want %d", intFree2, intFree0)
	}
}

func TestSquashRestoresRAT(t *testing.T) {
	r := newR(t)
	before := r.Lookup(isa.R(1))
	_, dst, rec, _ := r.Rename(aluOp(isa.R(1), isa.RegNone, isa.RegNone))
	if r.Lookup(isa.R(1)) != dst {
		t.Fatal("RAT not updated by rename")
	}
	r.Squash(rec)
	if r.Lookup(isa.R(1)) != before {
		t.Error("RAT not restored by squash")
	}
	// Squashed phys must be ready-for-reuse and not leak.
	intFreeAfter, _ := r.FreeCount()
	intFree0 := DefaultConfig().IntRegs - isa.NumIntRegs
	if intFreeAfter != intFree0 {
		t.Errorf("free count after squash = %d, want %d", intFreeAfter, intFree0)
	}
}

func TestSquashStackDiscipline(t *testing.T) {
	// Rename a chain, squash all in reverse order: RAT returns to initial.
	r := newR(t)
	initial := r.Lookup(isa.R(7))
	var recs []Entry
	for i := 0; i < 20; i++ {
		_, _, rec, ok := r.Rename(aluOp(isa.R(7), isa.R(7), isa.RegNone))
		if !ok {
			t.Fatal("rename failed")
		}
		recs = append(recs, rec)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r.Squash(recs[i])
	}
	if got := r.Lookup(isa.R(7)); got != initial {
		t.Errorf("RAT after full unwind = %d, want %d", got, initial)
	}
}

// TestFreeListConservation is the invariant from DESIGN.md §6: across any
// interleaving of rename/commit/squash, every physical register is either
// free or mapped/in-flight exactly once.
func TestFreeListConservation(t *testing.T) {
	r := newR(t)
	type inflight struct{ rec Entry }
	var pipeline []inflight
	seed := uint64(42)
	rnd := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for step := 0; step < 5000; step++ {
		switch rnd(3) {
		case 0: // rename
			arch := isa.R(rnd(isa.NumIntRegs))
			if _, _, rec, ok := r.Rename(aluOp(arch, isa.RegNone, isa.RegNone)); ok {
				pipeline = append(pipeline, inflight{rec})
			}
		case 1: // commit oldest
			if len(pipeline) > 0 {
				r.Commit(pipeline[0].rec)
				pipeline = pipeline[1:]
			}
		case 2: // squash youngest
			if len(pipeline) > 0 {
				r.Squash(pipeline[len(pipeline)-1].rec)
				pipeline = pipeline[:len(pipeline)-1]
			}
		}
	}
	// Drain and verify conservation.
	for _, f := range pipeline {
		r.Commit(f.rec)
	}
	intFree, fpFree := r.FreeCount()
	wantInt := DefaultConfig().IntRegs - isa.NumIntRegs
	wantFp := DefaultConfig().FpRegs - isa.NumFpRegs
	if intFree != wantInt || fpFree != wantFp {
		t.Errorf("free counts = (%d,%d), want (%d,%d)", intFree, fpFree, wantInt, wantFp)
	}
}

func TestPSCBSteeringFields(t *testing.T) {
	r := newR(t)
	_, dst, _, _ := r.Rename(aluOp(isa.R(1), isa.RegNone, isa.RegNone))
	if _, _, ok := r.ProducerIQ(dst); ok {
		t.Fatal("fresh register has a producer IQ")
	}
	r.SetProducerIQ(dst, 5)
	iq, reserved, ok := r.ProducerIQ(dst)
	if !ok || iq != 5 || reserved {
		t.Fatalf("ProducerIQ = %d,%v,%v", iq, reserved, ok)
	}
	r.ReserveProducer(dst)
	if _, reserved, _ := r.ProducerIQ(dst); !reserved {
		t.Error("ReserveProducer did not stick")
	}
	// Completion clears steering fields (§IV-C).
	r.SetReadyAt(dst, 10)
	if _, _, ok := r.ProducerIQ(dst); ok {
		t.Error("steering fields survive completion")
	}
}

func TestLoadDepFlag(t *testing.T) {
	r := newR(t)
	_, dst, _, _ := r.Rename(&isa.DynInst{Op: isa.OpLoad, Dst: isa.R(1), Src1: isa.R(2)})
	r.SetLoadDep(dst, true)
	if !r.LoadDep(dst) {
		t.Error("loadDep not set")
	}
	if r.LoadDep(PhysNone) {
		t.Error("PhysNone is load-dependent")
	}
}

func TestPhysNoneAlwaysReady(t *testing.T) {
	r := newR(t)
	f := func(cycle uint64) bool { return r.Ready(PhysNone, cycle) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreAndBranchNeedNoDest(t *testing.T) {
	r := newR(t)
	intFree0, fpFree0 := r.FreeCount()
	if _, dst, _, ok := r.Rename(&isa.DynInst{Op: isa.OpStore, Src1: isa.R(1), Src2: isa.R(2)}); !ok || dst != PhysNone {
		t.Error("store rename allocated a register")
	}
	if _, dst, _, ok := r.Rename(&isa.DynInst{Op: isa.OpBranch, Src1: isa.R(1)}); !ok || dst != PhysNone {
		t.Error("branch rename allocated a register")
	}
	intFree1, fpFree1 := r.FreeCount()
	if intFree0 != intFree1 || fpFree0 != fpFree1 {
		t.Error("free lists changed for dest-less μops")
	}
}
