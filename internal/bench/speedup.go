package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// WallSpeedup is one workload's best-of-N wall-time comparison across
// every architecture that appears in both trajectories.
type WallSpeedup struct {
	Workload string  `json:"workload"`
	Points   int     `json:"points"`  // matched (arch, width, ops) points
	Geomean  float64 `json:"geomean"` // base/head best wall time, >1 = head faster
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Pass     bool    `json:"pass"`
}

// SpeedupReport is the wall-time speedup gate over a workload subset.
type SpeedupReport struct {
	Factor    float64       `json:"factor"` // required geomean speedup
	Workloads []WallSpeedup `json:"workloads"`
	Failures  int           `json:"failures"`
}

// bestWall returns the fastest wall-clock sample of a point — the
// best-of-N estimator, which discards scheduler noise instead of
// averaging it in (wall time is the one metric where repeated runs of
// the deterministic simulator differ).
func bestWall(p Point) float64 {
	best := math.Inf(1)
	for _, s := range p.Samples {
		if s.WallSeconds > 0 && s.WallSeconds < best {
			best = s.WallSeconds
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// CompareSpeedup gates head's simulation wall time against base on the
// named workloads: for every matched point of a workload it takes the
// best-of-N wall-time ratio base/head, and the workload passes when the
// geometric mean of those ratios reaches factor. Unlike Compare, which
// protects the simulated machines (IPC, cycles, energy), this protects
// the simulator itself — the hot-loop speedup a PR claims must
// reproduce on the gate machine. A workload with no matched points
// counts as a failure: an absent measurement cannot demonstrate a
// speedup.
func CompareSpeedup(base, head *Trajectory, workloads []string, factor float64) *SpeedupReport {
	headByKey := map[string]Point{}
	for _, p := range head.Points {
		headByKey[p.Key()] = p
	}
	rep := &SpeedupReport{Factor: factor}
	for _, wl := range workloads {
		ws := WallSpeedup{Workload: wl, Min: math.Inf(1)}
		var logSum float64
		for _, bp := range base.Points {
			if bp.Workload != wl {
				continue
			}
			hp, ok := headByKey[bp.Key()]
			if !ok {
				continue
			}
			bw, hw := bestWall(bp), bestWall(hp)
			if bw == 0 || hw == 0 {
				continue
			}
			r := bw / hw
			logSum += math.Log(r)
			ws.Points++
			if r < ws.Min {
				ws.Min = r
			}
			if r > ws.Max {
				ws.Max = r
			}
		}
		if ws.Points > 0 {
			ws.Geomean = math.Exp(logSum / float64(ws.Points))
			ws.Pass = ws.Geomean >= factor
		} else {
			ws.Min = 0
		}
		if !ws.Pass {
			rep.Failures++
		}
		rep.Workloads = append(rep.Workloads, ws)
	}
	sort.Slice(rep.Workloads, func(i, j int) bool {
		return rep.Workloads[i].Workload < rep.Workloads[j].Workload
	})
	return rep
}

// String renders the report as one line per workload.
func (rep *SpeedupReport) String() string {
	var sb strings.Builder
	for _, ws := range rep.Workloads {
		verdict := "ok"
		if !ws.Pass {
			verdict = "FAIL"
		}
		if ws.Points == 0 {
			fmt.Fprintf(&sb, "speedup %-14s no matched points (need ≥%.2f×)  %s\n",
				ws.Workload, rep.Factor, verdict)
			continue
		}
		fmt.Fprintf(&sb, "speedup %-14s %.2f× geomean over %d points (min %.2f×, max %.2f×, need ≥%.2f×)  %s\n",
			ws.Workload, ws.Geomean, ws.Points, ws.Min, ws.Max, rep.Factor, verdict)
	}
	return sb.String()
}
