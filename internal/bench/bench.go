// Package bench is the performance-trajectory layer behind cmd/benchdiff:
// it runs the tier-1 microbenchmark configurations repeatedly, records one
// Sample per run into a Trajectory ("ballerino.bench/v1" JSON), and
// compares two trajectories benchstat-style — mean and 95% confidence
// interval per metric — flagging regressions beyond configurable
// thresholds.
//
// The simulator is deterministic: repeated runs of one configuration give
// identical IPC, cycles and energy, so those means compare exactly across
// machines and a regression is always a real behavioural change, never
// noise. Wall time is the one genuinely noisy metric, which is why samples
// are kept per-run instead of collapsing to a single number.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	ballerino "repro"
	"repro/internal/obs"
)

// Schema identifies the trajectory layout version.
const Schema = "ballerino.bench/v1"

// Sample is the outcome of one simulation run.
type Sample struct {
	IPC         float64 `json:"ipc"`
	EnergyPJ    float64 `json:"energy_pj"`
	Cycles      uint64  `json:"cycles"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Point is one benchmark configuration with its repeated-run samples.
type Point struct {
	Arch     string   `json:"arch"`
	Workload string   `json:"workload"`
	Width    int      `json:"width"`
	Ops      int      `json:"ops"`
	Samples  []Sample `json:"samples"`
}

// Key identifies a point across trajectories.
func (p Point) Key() string {
	return fmt.Sprintf("%s/%s/w%d/%d", p.Arch, p.Workload, p.Width, p.Ops)
}

// Trajectory is the machine-readable record of one benchmark sweep.
type Trajectory struct {
	Schema      string  `json:"schema"`
	CreatedAt   string  `json:"created_at,omitempty"`
	GoVersion   string  `json:"go_version,omitempty"`
	GitRevision string  `json:"git_revision,omitempty"`
	Points      []Point `json:"points"`
}

// Config is one benchmark configuration to collect.
type Config struct {
	Arch     string
	Workload string
	Width    int
	Ops      int
}

// DefaultConfigs is the tier-1 microbenchmark set: every architecture on a
// kernel spread that exercises the scheduler shapes the paper cares about
// (streaming, dependent loads, store-to-load, branches), small enough for
// CI to run N repetitions in seconds.
func DefaultConfigs() []Config {
	var cfgs []Config
	for _, arch := range ballerino.Architectures() {
		for _, wl := range []string{"stream", "pointer-chase", "store-load", "branchy"} {
			cfgs = append(cfgs, Config{Arch: arch, Workload: wl, Width: 8, Ops: 30_000})
		}
	}
	return cfgs
}

// Collect runs every configuration n times and returns the trajectory.
// parallelism bounds the runs in flight (0 = GOMAXPROCS, 1 = strictly
// sequential); all n×len(cfgs) runs form one campaign sharing a trace
// cache, and samples land in the same deterministic order at every
// setting. The context cancels mid-sweep (the partial trajectory is
// discarded).
func Collect(ctx context.Context, cfgs []Config, n, parallelism int) (*Trajectory, error) {
	if n <= 0 {
		n = 1
	}
	// Flatten to n×len(cfgs) jobs: repetition i of point p sits at slot
	// p*n+i, so regrouping below is a deterministic reshape.
	runs := make([]ballerino.Config, 0, len(cfgs)*n)
	for _, c := range cfgs {
		for i := 0; i < n; i++ {
			runs = append(runs, ballerino.Config{
				Arch: c.Arch, Workload: c.Workload, Width: c.Width, MaxOps: c.Ops,
			})
		}
	}
	batch := ballerino.RunAll(ctx, runs, ballerino.BatchOptions{Parallelism: parallelism})
	tr := &Trajectory{
		Schema:      Schema,
		GitRevision: obs.GitRevision(),
	}
	for p, c := range cfgs {
		pt := Point{Arch: c.Arch, Workload: c.Workload, Width: c.Width, Ops: c.Ops}
		for i := 0; i < n; i++ {
			rr := batch.Results[p*n+i]
			if rr.Err != nil {
				return nil, fmt.Errorf("bench: %s run %d: %w", pt.Key(), i+1, rr.Err)
			}
			res := rr.Result
			pt.Samples = append(pt.Samples, Sample{
				IPC:         res.IPC,
				EnergyPJ:    res.EnergyPJ,
				Cycles:      res.Cycles,
				WallSeconds: res.Manifest.WallSeconds,
			})
		}
		tr.Points = append(tr.Points, pt)
	}
	return tr, nil
}

// Load reads a trajectory from path. For interoperability with the rest of
// the observability layer it also accepts a single run manifest or a JSON
// array of manifests (the `ballsim -json` / `-compare -json` shapes), each
// manifest becoming a one-sample point.
func Load(path string) (*Trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return Parse(b)
}

// Parse decodes the bytes of any Load-accepted shape.
func Parse(b []byte) (*Trajectory, error) {
	// Try the native trajectory first: the schema field disambiguates.
	var tr Trajectory
	if err := json.Unmarshal(b, &tr); err == nil && tr.Schema == Schema {
		return &tr, nil
	}
	var manifests []*obs.Manifest
	var one obs.Manifest
	if err := json.Unmarshal(b, &manifests); err != nil {
		if err := json.Unmarshal(b, &one); err != nil || one.Schema != obs.ManifestSchema {
			return nil, fmt.Errorf("bench: not a %q trajectory, run manifest, or manifest array", Schema)
		}
		manifests = []*obs.Manifest{&one}
	}
	out := &Trajectory{Schema: Schema}
	byKey := map[string]int{}
	for _, m := range manifests {
		if m == nil || m.Schema != obs.ManifestSchema {
			return nil, fmt.Errorf("bench: manifest array entry is not a %q manifest", obs.ManifestSchema)
		}
		pt := Point{Arch: m.Sim.Arch, Workload: m.Sim.Workload, Width: m.Sim.Width, Ops: m.Sim.Ops}
		s := Sample{
			IPC:         m.Stats.IPC,
			EnergyPJ:    m.Energy.TotalPJ,
			Cycles:      m.Stats.Cycles,
			WallSeconds: m.WallSeconds,
		}
		if i, ok := byKey[pt.Key()]; ok {
			out.Points[i].Samples = append(out.Points[i].Samples, s)
			continue
		}
		pt.Samples = []Sample{s}
		byKey[pt.Key()] = len(out.Points)
		out.Points = append(out.Points, pt)
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("bench: no points in input")
	}
	return out, nil
}

// WriteFile writes the trajectory as indented JSON.
func (tr *Trajectory) WriteFile(path string) error {
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// Thresholds are the maximum tolerated relative regressions, as fractions
// (0.02 = 2%). A zero threshold disables that metric's gate.
type Thresholds struct {
	IPC    float64 // IPC decrease
	Energy float64 // energy increase
	Cycles float64 // cycle-count increase
}

// Delta is one metric's base-vs-head comparison at one point.
type Delta struct {
	Metric     string  `json:"metric"`
	BaseMean   float64 `json:"base_mean"`
	HeadMean   float64 `json:"head_mean"`
	BaseCI     float64 `json:"base_ci"` // 95% CI half-width
	HeadCI     float64 `json:"head_ci"`
	Relative   float64 `json:"relative"` // (head-base)/base, sign per metric direction
	Regression bool    `json:"regression"`
}

// PointDiff is every metric delta of one matched point.
type PointDiff struct {
	Key    string  `json:"key"`
	N      int     `json:"n"` // min(samples) across base and head
	Deltas []Delta `json:"deltas"`
}

// Report is the full comparison of two trajectories.
type Report struct {
	Points      []PointDiff `json:"points"`
	BaseOnly    []string    `json:"base_only,omitempty"`
	HeadOnly    []string    `json:"head_only,omitempty"`
	Regressions int         `json:"regressions"`
}

// Compare matches points across base and head by key and computes the
// metric deltas. A regression is a relative change in the bad direction
// (IPC down, energy or cycles up) beyond the metric's threshold whose 95%
// confidence intervals do not overlap — deterministic metrics have
// zero-width CIs, so any above-threshold change flags; noisy metrics must
// clear the noise floor first.
func Compare(base, head *Trajectory, th Thresholds) *Report {
	rep := &Report{}
	headByKey := map[string]Point{}
	for _, p := range head.Points {
		headByKey[p.Key()] = p
	}
	seen := map[string]bool{}
	for _, bp := range base.Points {
		key := bp.Key()
		hp, ok := headByKey[key]
		if !ok {
			rep.BaseOnly = append(rep.BaseOnly, key)
			continue
		}
		seen[key] = true
		pd := PointDiff{Key: key, N: min(len(bp.Samples), len(hp.Samples))}
		for _, m := range []struct {
			name      string
			get       func(Sample) float64
			badIsUp   bool
			threshold float64
		}{
			{"ipc", func(s Sample) float64 { return s.IPC }, false, th.IPC},
			{"energy_pj", func(s Sample) float64 { return s.EnergyPJ }, true, th.Energy},
			{"cycles", func(s Sample) float64 { return float64(s.Cycles) }, true, th.Cycles},
		} {
			bm, bci := meanCI95(values(bp.Samples, m.get))
			hm, hci := meanCI95(values(hp.Samples, m.get))
			d := Delta{Metric: m.name, BaseMean: bm, HeadMean: hm, BaseCI: bci, HeadCI: hci}
			if bm != 0 {
				d.Relative = (hm - bm) / bm
			}
			worse := d.Relative
			if !m.badIsUp {
				worse = -worse
			}
			ciOverlap := abs(hm-bm) <= bci+hci
			d.Regression = m.threshold > 0 && worse > m.threshold && !ciOverlap
			if d.Regression {
				rep.Regressions++
			}
			pd.Deltas = append(pd.Deltas, d)
		}
		rep.Points = append(rep.Points, pd)
	}
	for _, p := range head.Points {
		if !seen[p.Key()] {
			rep.HeadOnly = append(rep.HeadOnly, p.Key())
		}
	}
	sort.Strings(rep.BaseOnly)
	sort.Strings(rep.HeadOnly)
	return rep
}

func values(ss []Sample, get func(Sample) float64) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = get(s)
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
