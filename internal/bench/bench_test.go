package bench

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func point(key string, ipcs ...float64) Point {
	p := Point{Arch: "Ballerino", Workload: key, Width: 8, Ops: 30_000}
	for _, ipc := range ipcs {
		p.Samples = append(p.Samples, Sample{IPC: ipc, EnergyPJ: 1e6, Cycles: 10_000, WallSeconds: 0.01})
	}
	return p
}

func trajectory(points ...Point) *Trajectory {
	return &Trajectory{Schema: Schema, Points: points}
}

func TestMeanCI95(t *testing.T) {
	if m, ci := meanCI95(nil); m != 0 || ci != 0 {
		t.Errorf("empty = (%v, %v)", m, ci)
	}
	if m, ci := meanCI95([]float64{3}); m != 3 || ci != 0 {
		t.Errorf("single = (%v, %v)", m, ci)
	}
	// Identical samples (the deterministic-simulator case): zero spread.
	if m, ci := meanCI95([]float64{2, 2, 2, 2, 2}); m != 2 || ci != 0 {
		t.Errorf("constant = (%v, %v)", m, ci)
	}
	// n=5, sd=√2.5 → ci = 2.776·√2.5/√5 = 2.776·√0.5 ≈ 1.9629.
	m, ci := meanCI95([]float64{1, 2, 3, 4, 5})
	if m != 3 || math.Abs(ci-2.776*math.Sqrt(0.5)) > 1e-9 {
		t.Errorf("spread = (%v, %v)", m, ci)
	}
}

// TestCompareFlagsIPCRegression is the synthetic regression fixture: a 5%
// IPC drop with zero sample spread must trip a 2% threshold, while a 1%
// drop must not.
func TestCompareFlagsIPCRegression(t *testing.T) {
	base := trajectory(point("stream", 2.00, 2.00, 2.00), point("branchy", 1.00, 1.00))
	head := trajectory(point("stream", 1.90, 1.90, 1.90), point("branchy", 0.995, 0.995))
	rep := Compare(base, head, Thresholds{IPC: 0.02})
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1", rep.Regressions)
	}
	var streamIPC, branchyIPC Delta
	for _, pd := range rep.Points {
		for _, d := range pd.Deltas {
			if d.Metric != "ipc" {
				continue
			}
			if pd.Key == (Point{Arch: "Ballerino", Workload: "stream", Width: 8, Ops: 30_000}).Key() {
				streamIPC = d
			} else {
				branchyIPC = d
			}
		}
	}
	if !streamIPC.Regression {
		t.Errorf("5%% IPC drop not flagged: %+v", streamIPC)
	}
	if math.Abs(streamIPC.Relative-(-0.05)) > 1e-9 {
		t.Errorf("stream relative = %v, want -0.05", streamIPC.Relative)
	}
	if branchyIPC.Regression {
		t.Errorf("0.5%% IPC drop flagged at 2%% threshold: %+v", branchyIPC)
	}
	// An improvement must never flag.
	better := trajectory(point("stream", 2.50, 2.50, 2.50), point("branchy", 1.10, 1.10))
	if rep := Compare(base, better, Thresholds{IPC: 0.02}); rep.Regressions != 0 {
		t.Errorf("improvement flagged as regression: %+v", rep)
	}
}

// TestCompareCIOverlapGuard: a mean shift within the measurement noise
// (overlapping 95% CIs) is not a regression even beyond the threshold.
func TestCompareCIOverlapGuard(t *testing.T) {
	base := trajectory(point("stream", 1.8, 2.0, 2.2))
	head := trajectory(point("stream", 1.7, 1.9, 2.1)) // −5% mean, huge spread
	if rep := Compare(base, head, Thresholds{IPC: 0.02}); rep.Regressions != 0 {
		t.Errorf("noisy shift flagged despite CI overlap: %+v", rep)
	}
}

func TestCompareEnergyAndCycleDirections(t *testing.T) {
	base := trajectory(point("stream", 2.0))
	head := trajectory(point("stream", 2.0))
	head.Points[0].Samples[0].EnergyPJ = 1.10e6 // +10%
	head.Points[0].Samples[0].Cycles = 10_500   // +5%
	rep := Compare(base, head, Thresholds{Energy: 0.02, Cycles: 0.02})
	if rep.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (energy up, cycles up): %+v", rep.Regressions, rep)
	}
	// Energy down / cycles down are improvements.
	head.Points[0].Samples[0].EnergyPJ = 0.5e6
	head.Points[0].Samples[0].Cycles = 9_000
	if rep := Compare(base, head, Thresholds{Energy: 0.02, Cycles: 0.02}); rep.Regressions != 0 {
		t.Errorf("improvements flagged: %+v", rep)
	}
}

func TestCompareUnmatchedPoints(t *testing.T) {
	base := trajectory(point("stream", 2.0), point("branchy", 1.0))
	head := trajectory(point("stream", 2.0), point("stencil", 1.5))
	rep := Compare(base, head, Thresholds{IPC: 0.02})
	if len(rep.Points) != 1 || len(rep.BaseOnly) != 1 || len(rep.HeadOnly) != 1 {
		t.Fatalf("matching wrong: %+v", rep)
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	tr := trajectory(point("stream", 2.0, 2.0))
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Points) != 1 || len(got.Points[0].Samples) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

// TestParseManifestShapes: Load accepts a single run manifest and a
// manifest array, folding repeated configurations into multi-sample
// points.
func TestParseManifestShapes(t *testing.T) {
	m := func(wl string, ipc float64) *obs.Manifest {
		mm := &obs.Manifest{Schema: obs.ManifestSchema}
		mm.Sim = obs.SimInfo{Arch: "Ballerino", Workload: wl, Width: 8, Ops: 1000}
		mm.Stats.IPC = ipc
		mm.Stats.Cycles = 500
		mm.Energy.TotalPJ = 42
		mm.WallSeconds = 0.001
		return mm
	}
	one, _ := json.Marshal(m("stream", 2.0))
	tr, err := Parse(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 1 || tr.Points[0].Samples[0].IPC != 2.0 {
		t.Fatalf("single manifest: %+v", tr)
	}

	arr, _ := json.Marshal([]*obs.Manifest{m("stream", 2.0), m("stream", 2.0), m("branchy", 1.0)})
	tr, err = Parse(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 2 || len(tr.Points[0].Samples) != 2 {
		t.Fatalf("manifest array did not fold: %+v", tr)
	}

	if _, err := Parse([]byte(`{"what": 1}`)); err == nil {
		t.Error("junk JSON accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
}

// TestCollectDeterministic: the simulator gives identical samples across
// repetitions (wall time aside), the property the CI gate relies on.
func TestCollectDeterministic(t *testing.T) {
	cfgs := []Config{{Arch: "Ballerino", Workload: "store-load", Width: 8, Ops: 5_000}}
	tr, err := Collect(context.Background(), cfgs, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 1 || len(tr.Points[0].Samples) != 3 {
		t.Fatalf("collected %+v", tr)
	}
	s := tr.Points[0].Samples
	for i := 1; i < len(s); i++ {
		if s[i].IPC != s[0].IPC || s[i].Cycles != s[0].Cycles || s[i].EnergyPJ != s[0].EnergyPJ {
			t.Errorf("sample %d differs: %+v vs %+v", i, s[i], s[0])
		}
	}
	if s[0].IPC <= 0 || s[0].Cycles == 0 {
		t.Errorf("degenerate sample: %+v", s[0])
	}
	// Self-comparison is regression-free by construction.
	if rep := Compare(tr, tr, Thresholds{IPC: 0.0001, Energy: 0.0001, Cycles: 0.0001}); rep.Regressions != 0 {
		t.Errorf("self-compare regressed: %+v", rep)
	}
}

// TestCollectCancelled: a cancelled sweep propagates the context error.
func TestCollectCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Collect(ctx, DefaultConfigs(), 1, 0); err == nil {
		t.Error("cancelled Collect returned nil error")
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	cfgs := DefaultConfigs()
	if len(cfgs) == 0 {
		t.Fatal("no default configs")
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		p := Point{Arch: c.Arch, Workload: c.Workload, Width: c.Width, Ops: c.Ops}
		if seen[p.Key()] {
			t.Errorf("duplicate config %s", p.Key())
		}
		seen[p.Key()] = true
	}
}
