package bench

import "math"

// tTable95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom (benchstat uses the same distribution); larger
// sample counts fall back to the normal 1.96.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df <= len(tTable95):
		return tTable95[df-1]
	default:
		return 1.96
	}
}

// meanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (0 for fewer than two samples: a single
// deterministic run carries no spread to estimate).
func meanCI95(xs []float64) (mean, ci float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, tCrit95(n-1) * sd / math.Sqrt(float64(n))
}
