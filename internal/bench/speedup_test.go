package bench

import (
	"math"
	"strings"
	"testing"
)

// wallPoint builds a point whose samples carry only wall times.
func wallPoint(arch, wl string, walls ...float64) Point {
	p := Point{Arch: arch, Workload: wl, Width: 8, Ops: 30_000}
	for _, w := range walls {
		p.Samples = append(p.Samples, Sample{IPC: 1, EnergyPJ: 1, Cycles: 1, WallSeconds: w})
	}
	return p
}

func TestBestWall(t *testing.T) {
	if got := bestWall(wallPoint("A", "stream", 0.5, 0.3, 0.9)); got != 0.3 {
		t.Errorf("bestWall = %v, want 0.3", got)
	}
	// Zero samples are placeholder entries, not measurements.
	if got := bestWall(wallPoint("A", "stream", 0, 0.4)); got != 0.4 {
		t.Errorf("bestWall skipping zeros = %v, want 0.4", got)
	}
	if got := bestWall(wallPoint("A", "stream")); got != 0 {
		t.Errorf("bestWall of empty point = %v, want 0", got)
	}
}

// TestCompareSpeedupGeomean: two archs at 2× and 8× give a geomean of
// 4×, passing a 1.5× gate; a uniform 1.2× head fails it.
func TestCompareSpeedupGeomean(t *testing.T) {
	base := trajectory(
		wallPoint("InO", "branchy", 2.0, 2.2),
		wallPoint("OoO", "branchy", 8.0, 9.0),
	)
	head := trajectory(
		wallPoint("InO", "branchy", 1.0, 1.3),
		wallPoint("OoO", "branchy", 1.0, 1.1),
	)
	rep := CompareSpeedup(base, head, []string{"branchy"}, 1.5)
	if rep.Failures != 0 || len(rep.Workloads) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	ws := rep.Workloads[0]
	if ws.Points != 2 || !ws.Pass {
		t.Fatalf("workload = %+v", ws)
	}
	if math.Abs(ws.Geomean-4.0) > 1e-9 || ws.Min != 2.0 || ws.Max != 8.0 {
		t.Errorf("geomean/min/max = %v/%v/%v, want 4/2/8", ws.Geomean, ws.Min, ws.Max)
	}

	slow := trajectory(
		wallPoint("InO", "branchy", 2.0/1.2),
		wallPoint("OoO", "branchy", 8.0/1.2),
	)
	rep = CompareSpeedup(base, slow, []string{"branchy"}, 1.5)
	if rep.Failures != 1 || rep.Workloads[0].Pass {
		t.Errorf("1.2× uniform speedup passed a 1.5× gate: %+v", rep)
	}
}

// TestCompareSpeedupBestOfN: only the fastest sample on each side
// matters — one slow outlier in head must not fail the gate.
func TestCompareSpeedupBestOfN(t *testing.T) {
	base := trajectory(wallPoint("InO", "branchy", 3.0, 3.1, 3.2))
	head := trajectory(wallPoint("InO", "branchy", 30.0, 1.0, 25.0))
	rep := CompareSpeedup(base, head, []string{"branchy"}, 1.5)
	if rep.Failures != 0 || math.Abs(rep.Workloads[0].Geomean-3.0) > 1e-9 {
		t.Errorf("best-of-N not used: %+v", rep.Workloads[0])
	}
}

// TestCompareSpeedupMissingWorkload: a gated workload with no matched
// points fails — absence of evidence is not a demonstrated speedup.
func TestCompareSpeedupMissingWorkload(t *testing.T) {
	base := trajectory(wallPoint("InO", "branchy", 2.0))
	head := trajectory(wallPoint("InO", "branchy", 1.0))
	rep := CompareSpeedup(base, head, []string{"branchy", "pointer-chase"}, 1.5)
	if rep.Failures != 1 || len(rep.Workloads) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	for _, ws := range rep.Workloads {
		if ws.Workload == "pointer-chase" && (ws.Pass || ws.Points != 0) {
			t.Errorf("unmatched workload passed: %+v", ws)
		}
	}
	if s := rep.String(); !strings.Contains(s, "no matched points") || !strings.Contains(s, "FAIL") {
		t.Errorf("String() = %q", s)
	}
}

// TestCompareSpeedupSelfIsUnity: a trajectory against itself is exactly
// 1× everywhere and fails any factor above 1.
func TestCompareSpeedupSelfIsUnity(t *testing.T) {
	tr := trajectory(
		wallPoint("InO", "branchy", 2.0, 2.5),
		wallPoint("OoO", "branchy", 4.0),
	)
	rep := CompareSpeedup(tr, tr, []string{"branchy"}, 1.5)
	if rep.Workloads[0].Geomean != 1.0 || rep.Failures != 1 {
		t.Errorf("self-compare = %+v", rep)
	}
	if rep := CompareSpeedup(tr, tr, []string{"branchy"}, 1.0); rep.Failures != 0 {
		t.Errorf("self-compare at 1.0× failed: %+v", rep)
	}
}
