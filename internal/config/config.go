// Package config encodes Table I (core and memory system configurations)
// and Table II (scheduling window configurations) of the paper, and builds
// ready-to-run pipeline configurations for every evaluated
// microarchitecture at 2-, 4-, 8- and 10-wide issue widths.
package config

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/pipeline"
	"repro/internal/rename"
	"repro/internal/sched"
)

// Arch names an evaluated microarchitecture.
type Arch string

// The evaluated microarchitectures of §V.
const (
	ArchInO            Arch = "InO"
	ArchOoO            Arch = "OoO"
	ArchOoOOldest      Arch = "OoO-oldest" // OoO with oldest-first selection
	ArchCES            Arch = "CES"
	ArchCESMDA         Arch = "CES+MDA"
	ArchCASINO         Arch = "CASINO"
	ArchFXA            Arch = "FXA"
	ArchBallerino      Arch = "Ballerino"
	ArchBallerino12    Arch = "Ballerino-12"
	ArchBallerinoS1    Arch = "Ballerino-step1" // S-IQ + P-IQs only
	ArchBallerinoS2    Arch = "Ballerino-step2" // + MDA steering
	ArchBallerinoIdeal Arch = "Ballerino-ideal" // sharing without constraints
)

// AllArchs lists every standard microarchitecture (Figure 11's set plus the
// step variants of Figure 13).
func AllArchs() []Arch {
	return []Arch{
		ArchInO, ArchOoO, ArchOoOOldest,
		ArchCES, ArchCESMDA, ArchCASINO, ArchFXA,
		ArchBallerino, ArchBallerino12,
		ArchBallerinoS1, ArchBallerinoS2, ArchBallerinoIdeal,
	}
}

// Machine is a complete simulation configuration: the pipeline around the
// scheduler plus the scheduler factory for the chosen microarchitecture.
type Machine struct {
	Arch     Arch
	Width    int
	Pipeline pipeline.Config
	// NumPIQs applies to CES/Ballerino machines (Figure 17c varies it).
	NumPIQs  int
	PIQDepth int
	Factory  pipeline.SchedulerFactory
	// ClockGHz and VoltageV model the DVFS level (Figure 17b); they scale
	// wall-clock time and energy, not cycle counts.
	ClockGHz float64
	VoltageV float64
}

// widthParams holds the 8(/4/2)-wide scalings of Tables I and II.
type widthParams struct {
	fetch, renameW, issue, commit int
	rob, lq, sq                   int
	intRegs, fpRegs               int
	iqEntries                     int // unified IQ entries (InO/OoO)
	recovery                      uint64
	numPIQs, piqDepth             int // CES (Ballerino: numPIQs-1 + S-IQ)
	siqSize, siqWindow            int
	casinoSizes                   []int
	fxaIQ                         int
	clockGHz                      float64
}

func paramsFor(width int) (widthParams, error) {
	switch width {
	case 8:
		return widthParams{
			fetch: 4, renameW: 4, issue: 8, commit: 8,
			rob: 224, lq: 72, sq: 56,
			intRegs: 180, fpRegs: 168,
			iqEntries: 96, recovery: 11,
			numPIQs: 8, piqDepth: 12,
			siqSize: 8, siqWindow: 4,
			casinoSizes: []int{8, 40, 40, 8},
			fxaIQ:       48,
			clockGHz:    3.4,
		}, nil
	case 4:
		return widthParams{
			fetch: 4, renameW: 4, issue: 4, commit: 4,
			rob: 128, lq: 48, sq: 32,
			intRegs: 128, fpRegs: 96,
			iqEntries: 64, recovery: 11,
			numPIQs: 4, piqDepth: 16,
			siqSize: 8, siqWindow: 4,
			casinoSizes: []int{6, 52, 6},
			fxaIQ:       32,
			clockGHz:    2.5,
		}, nil
	case 2:
		return widthParams{
			fetch: 2, renameW: 2, issue: 2, commit: 2,
			rob: 48, lq: 24, sq: 16,
			intRegs: 32 + 64, fpRegs: 32 + 64, // 32 rename regs over architectural
			iqEntries: 32, recovery: 11,
			numPIQs: 2, piqDepth: 16,
			siqSize: 4, siqWindow: 2,
			casinoSizes: []int{4, 28},
			fxaIQ:       16,
			clockGHz:    2.0,
		}, nil
	case 10:
		return widthParams{
			fetch: 5, renameW: 5, issue: 10, commit: 10,
			rob: 256, lq: 80, sq: 64,
			intRegs: 200, fpRegs: 188,
			iqEntries: 120, recovery: 11,
			numPIQs: 10, piqDepth: 12,
			siqSize: 10, siqWindow: 5,
			casinoSizes: []int{10, 50, 50, 10},
			fxaIQ:       60,
			clockGHz:    3.4,
		}, nil
	default:
		return widthParams{}, fmt.Errorf("config: unsupported issue width %d", width)
	}
}

// Options customises a Machine beyond the Table II defaults.
type Options struct {
	// NumPIQs overrides the P-IQ count for CES/Ballerino (0 = default).
	// For Ballerino this counts P-IQs only (the S-IQ is extra).
	NumPIQs int
	// PIQDepth overrides the P-IQ entry count (0 = default).
	PIQDepth int
	// DisableMDP turns memory dependence prediction off.
	DisableMDP bool
	// DisablePrefetch turns the stride prefetcher off.
	DisablePrefetch bool
	// SIQSize/SIQWindow override the Ballerino S-IQ geometry (0 = Table II).
	SIQSize   int
	SIQWindow int
	// Ballerino, when non-nil, overrides the technique flags entirely
	// (used by the ablation harness).
	Ballerino *core.Options
	// CasinoSizes overrides CASINO's queue cascade (front-to-back entry
	// counts; the last queue is the in-order IQ). Used by the Table II
	// size-search methodology.
	CasinoSizes []int
	// MaxCycles bounds the simulation (0 = pipeline default of no bound).
	MaxCycles uint64
}

// Validate reports option errors before any structure is built, so user
// input surfaces as an error instead of a constructor panic deep in the
// scheduler.
func (o Options) Validate() error {
	if o.NumPIQs < 0 {
		return fmt.Errorf("config: NumPIQs %d must not be negative", o.NumPIQs)
	}
	if o.PIQDepth < 0 {
		return fmt.Errorf("config: PIQDepth %d must not be negative", o.PIQDepth)
	}
	if o.PIQDepth > 0 && o.PIQDepth%2 != 0 {
		return fmt.Errorf("config: PIQDepth %d must be even (each P-IQ splits into two shareable halves)", o.PIQDepth)
	}
	if o.SIQSize < 0 || o.SIQWindow < 0 {
		return fmt.Errorf("config: SIQSize %d / SIQWindow %d must not be negative", o.SIQSize, o.SIQWindow)
	}
	for i, n := range o.CasinoSizes {
		if n <= 0 {
			return fmt.Errorf("config: CasinoSizes[%d] = %d; every cascade queue needs at least one entry", i, n)
		}
	}
	return nil
}

// NewMachine builds the Machine for an architecture at an issue width.
func NewMachine(arch Arch, width int, opt Options) (*Machine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	wp, err := paramsFor(width)
	if err != nil {
		return nil, err
	}
	ports, err := sched.PortsForWidth(width)
	if err != nil {
		return nil, err
	}

	pcfg := pipeline.DefaultConfig()
	pcfg.FetchWidth = wp.fetch
	pcfg.RenameWidth = wp.renameW
	pcfg.IssueWidth = wp.issue
	pcfg.CommitWidth = wp.commit
	pcfg.ROBSize = wp.rob
	pcfg.LQSize = wp.lq
	pcfg.SQSize = wp.sq
	pcfg.RecoveryPenalty = wp.recovery
	pcfg.Ports = ports
	pcfg.Rename = rename.Config{IntRegs: wp.intRegs, FpRegs: wp.fpRegs}
	pcfg.UseMDP = !opt.DisableMDP
	pcfg.MaxCycles = opt.MaxCycles
	if opt.DisablePrefetch {
		pcfg.Mem.PrefetchDegree = 0
	}

	m := &Machine{
		Arch:     arch,
		Width:    width,
		Pipeline: pcfg,
		ClockGHz: wp.clockGHz,
		VoltageV: 1.04,
	}

	numPIQs := wp.numPIQs
	if opt.NumPIQs > 0 {
		numPIQs = opt.NumPIQs
	}
	piqDepth := wp.piqDepth
	if opt.PIQDepth > 0 {
		piqDepth = opt.PIQDepth
	}
	m.PIQDepth = piqDepth

	siqSize, siqWindow := wp.siqSize, wp.siqWindow
	if opt.SIQSize > 0 {
		siqSize = opt.SIQSize
	}
	if opt.SIQWindow > 0 {
		siqWindow = opt.SIQWindow
	}
	ballerino := func(o core.Options, nPIQ int) pipeline.SchedulerFactory {
		if opt.Ballerino != nil {
			o = *opt.Ballerino
		}
		return func(rn *rename.Renamer, md *mdp.MDP) sched.Scheduler {
			return core.New(core.Config{
				SIQSize:   siqSize,
				SIQWindow: siqWindow,
				NumPIQs:   nPIQ,
				PIQDepth:  piqDepth,
				Width:     wp.issue,
				Options:   o,
			}, rn, md)
		}
	}

	switch arch {
	case ArchInO:
		// Table I: the in-order core has a shorter pipeline and smaller
		// memory structures.
		m.Pipeline.RecoveryPenalty = 8
		m.Pipeline.ROBSize = 64
		m.Pipeline.SQSize = 16
		m.Pipeline.LQSize = 16
		m.NumPIQs = 0
		m.Factory = func(*rename.Renamer, *mdp.MDP) sched.Scheduler {
			return sched.NewInO(wp.iqEntries, wp.issue)
		}
	case ArchOoO, ArchOoOOldest:
		oldest := arch == ArchOoOOldest
		m.NumPIQs = 0
		m.Factory = func(*rename.Renamer, *mdp.MDP) sched.Scheduler {
			return sched.NewOoO(wp.iqEntries, wp.issue, oldest)
		}
	case ArchCES, ArchCESMDA:
		mda := arch == ArchCESMDA
		m.NumPIQs = numPIQs
		m.Factory = func(rn *rename.Renamer, md *mdp.MDP) sched.Scheduler {
			return sched.NewCES(numPIQs, piqDepth, wp.issue, rn, md, mda)
		}
	case ArchCASINO:
		sizes := wp.casinoSizes
		if len(opt.CasinoSizes) > 0 {
			sizes = opt.CasinoSizes
		}
		m.NumPIQs = 0
		m.Factory = func(*rename.Renamer, *mdp.MDP) sched.Scheduler {
			return sched.NewCASINO(sizes, wp.siqWindow, wp.siqWindow, wp.issue)
		}
	case ArchFXA:
		m.NumPIQs = 0
		m.Factory = func(rn *rename.Renamer, _ *mdp.MDP) sched.Scheduler {
			return sched.NewFXA(wp.fxaIQ, wp.issue, rn)
		}
	case ArchBallerino:
		n := numPIQs - 1 // one in-order IQ becomes the S-IQ (Table II)
		if opt.NumPIQs > 0 {
			n = opt.NumPIQs
		}
		m.NumPIQs = n
		m.Factory = ballerino(core.Options{MDASteering: true, Sharing: true}, n)
	case ArchBallerino12:
		n := 11
		if opt.NumPIQs > 0 {
			n = opt.NumPIQs
		}
		m.NumPIQs = n
		m.Factory = ballerino(core.Options{MDASteering: true, Sharing: true}, n)
	case ArchBallerinoS1:
		n := numPIQs - 1
		if opt.NumPIQs > 0 {
			n = opt.NumPIQs
		}
		m.NumPIQs = n
		m.Factory = ballerino(core.Options{}, n)
	case ArchBallerinoS2:
		n := numPIQs - 1
		if opt.NumPIQs > 0 {
			n = opt.NumPIQs
		}
		m.NumPIQs = n
		m.Factory = ballerino(core.Options{MDASteering: true}, n)
	case ArchBallerinoIdeal:
		n := numPIQs - 1
		if opt.NumPIQs > 0 {
			n = opt.NumPIQs
		}
		m.NumPIQs = n
		m.Factory = ballerino(core.Options{MDASteering: true, Sharing: true, IdealSharing: true}, n)
	default:
		return nil, fmt.Errorf("config: unknown architecture %q", arch)
	}
	return m, nil
}

// MustMachine is NewMachine for known-good arguments.
func MustMachine(arch Arch, width int, opt Options) *Machine {
	m, err := NewMachine(arch, width, opt)
	if err != nil {
		panic(err)
	}
	return m
}

// DVFSLevel is one frequency/voltage operating point of Figure 17b.
type DVFSLevel struct {
	Name     string
	ClockGHz float64
	VoltageV float64
}

// DVFSLevels returns L4..L1 of Figure 17b.
func DVFSLevels() []DVFSLevel {
	return []DVFSLevel{
		{"L4", 3.4, 1.04},
		{"L3", 3.2, 1.01},
		{"L2", 3.0, 0.98},
		{"L1", 2.8, 0.96},
	}
}
