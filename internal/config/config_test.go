package config

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/rename"
	"repro/internal/sched"
)

func TestAllArchsBuildAtAllWidths(t *testing.T) {
	for _, arch := range AllArchs() {
		for _, w := range []int{2, 4, 8, 10} {
			m, err := NewMachine(arch, w, Options{})
			if err != nil {
				t.Fatalf("%s @ %d-wide: %v", arch, w, err)
			}
			if err := m.Pipeline.Validate(); err != nil {
				t.Fatalf("%s @ %d-wide: invalid pipeline: %v", arch, w, err)
			}
			rn := rename.MustNew(m.Pipeline.Rename)
			md := mdp.New(m.Pipeline.MDP)
			s := m.Factory(rn, md)
			if s == nil {
				t.Fatalf("%s @ %d-wide: nil scheduler", arch, w)
			}
			if s.Capacity() <= 0 {
				t.Fatalf("%s @ %d-wide: capacity %d", arch, w, s.Capacity())
			}
		}
	}
}

func TestUnknownArchAndWidthRejected(t *testing.T) {
	if _, err := NewMachine("Nope", 8, Options{}); err == nil {
		t.Error("unknown arch accepted")
	}
	if _, err := NewMachine(ArchOoO, 7, Options{}); err == nil {
		t.Error("width 7 accepted")
	}
}

// TestTableIConfigs checks the headline Table I parameters at each width.
func TestTableIConfigs(t *testing.T) {
	cases := []struct {
		width           int
		rob, lq, sq     int
		intRegs, fpRegs int
		clock           float64
	}{
		{8, 224, 72, 56, 180, 168, 3.4},
		{4, 128, 48, 32, 128, 96, 2.5},
		{2, 48, 24, 16, 96, 96, 2.0},
	}
	for _, tc := range cases {
		m := MustMachine(ArchOoO, tc.width, Options{})
		p := m.Pipeline
		if p.ROBSize != tc.rob || p.LQSize != tc.lq || p.SQSize != tc.sq {
			t.Errorf("%d-wide ROB/LQ/SQ = %d/%d/%d", tc.width, p.ROBSize, p.LQSize, p.SQSize)
		}
		if p.Rename.IntRegs != tc.intRegs || p.Rename.FpRegs != tc.fpRegs {
			t.Errorf("%d-wide PRF = %d int %d fp", tc.width, p.Rename.IntRegs, p.Rename.FpRegs)
		}
		if m.ClockGHz != tc.clock {
			t.Errorf("%d-wide clock = %v", tc.width, m.ClockGHz)
		}
		if p.RecoveryPenalty != 11 {
			t.Errorf("%d-wide recovery = %d", tc.width, p.RecoveryPenalty)
		}
	}
	// InO overrides: 8-cycle recovery and small LSQ.
	ino := MustMachine(ArchInO, 8, Options{})
	if ino.Pipeline.RecoveryPenalty != 8 || ino.Pipeline.SQSize != 16 {
		t.Errorf("InO overrides: recovery %d, SQ %d", ino.Pipeline.RecoveryPenalty, ino.Pipeline.SQSize)
	}
}

// TestTableIIConfigs checks the 8-wide scheduling window configurations.
func TestTableIIConfigs(t *testing.T) {
	build := func(a Arch, opt Options) sched.Scheduler {
		m := MustMachine(a, 8, opt)
		rn := rename.MustNew(m.Pipeline.Rename)
		return m.Factory(rn, mdp.New(m.Pipeline.MDP))
	}
	if c := build(ArchInO, Options{}).Capacity(); c != 96 {
		t.Errorf("InO capacity = %d, want 96", c)
	}
	if c := build(ArchOoO, Options{}).Capacity(); c != 96 {
		t.Errorf("OoO capacity = %d, want 96", c)
	}
	if c := build(ArchCES, Options{}).Capacity(); c != 8*12 {
		t.Errorf("CES capacity = %d, want 96", c)
	}
	if c := build(ArchCASINO, Options{}).Capacity(); c != 8+40+40+8 {
		t.Errorf("CASINO capacity = %d, want 96", c)
	}
	if c := build(ArchFXA, Options{}).Capacity(); c != 48 {
		t.Errorf("FXA backend capacity = %d, want 48", c)
	}
	if c := build(ArchBallerino, Options{}).Capacity(); c != 8+7*12 {
		t.Errorf("Ballerino capacity = %d, want 92", c)
	}
	if c := build(ArchBallerino12, Options{}).Capacity(); c != 8+11*12 {
		t.Errorf("Ballerino-12 capacity = %d, want 140", c)
	}
}

func TestOptionsOverrides(t *testing.T) {
	m := MustMachine(ArchBallerino, 8, Options{NumPIQs: 9, PIQDepth: 6})
	if m.NumPIQs != 9 || m.PIQDepth != 6 {
		t.Errorf("overrides ignored: %d × %d", m.NumPIQs, m.PIQDepth)
	}
	rn := rename.MustNew(m.Pipeline.Rename)
	s := m.Factory(rn, mdp.New(m.Pipeline.MDP))
	if c := s.Capacity(); c != 8+9*6 {
		t.Errorf("capacity = %d, want 62", c)
	}
	md := MustMachine(ArchOoO, 8, Options{DisableMDP: true})
	if md.Pipeline.UseMDP {
		t.Error("DisableMDP ignored")
	}
}

func TestDVFSLevels(t *testing.T) {
	ls := DVFSLevels()
	if len(ls) != 4 || ls[0].Name != "L4" || ls[3].Name != "L1" {
		t.Fatalf("levels = %+v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].ClockGHz >= ls[i-1].ClockGHz || ls[i].VoltageV >= ls[i-1].VoltageV {
			t.Errorf("levels not monotone: %+v", ls)
		}
	}
}

func TestCasinoSizesOverride(t *testing.T) {
	m := MustMachine(ArchCASINO, 8, Options{CasinoSizes: []int{16, 80}})
	s := m.Factory(rename.MustNew(m.Pipeline.Rename), mdp.New(m.Pipeline.MDP))
	if c := s.Capacity(); c != 96 {
		t.Errorf("capacity = %d, want 96", c)
	}
}

func TestBallerinoOptionOverride(t *testing.T) {
	m := MustMachine(ArchBallerino, 8, Options{Ballerino: &core.Options{}})
	s := m.Factory(rename.MustNew(m.Pipeline.Rename), mdp.New(m.Pipeline.MDP))
	if s.Name() != "Ballerino-step1" {
		t.Errorf("override produced %q", s.Name())
	}
}
