package check_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/rename"
	"repro/internal/sched"
	"repro/internal/stats"
)

// fakeSched is a scriptable scheduler whose queue snapshots the tests
// corrupt one invariant at a time.
type fakeSched struct {
	queues []sched.QueueSnapshot
	occ    int
}

func (s *fakeSched) Name() string                          { return "fake" }
func (s *fakeSched) Capacity() int                         { return 64 }
func (s *fakeSched) Dispatch(*sched.UOp, uint64) bool      { return true }
func (s *fakeSched) Issue(uint64, *sched.IssueCtx)         {}
func (s *fakeSched) Complete(rename.PhysReg, uint64)       {}
func (s *fakeSched) Flush(uint64)                          {}
func (s *fakeSched) Occupancy() int                        { return s.occ }
func (s *fakeSched) Energy() sched.EnergyEvents            { return sched.EnergyEvents{} }
func (s *fakeSched) Counters() map[string]uint64           { return nil }
func (s *fakeSched) Queues() []sched.QueueSnapshot         { return s.queues }

// fakeSource is a hand-built machine state implementing check.Source.
type fakeSource struct {
	cycle                        uint64
	rob                          []*sched.UOp
	decode                       int
	fetchIdx, traceLen           int
	fetched, committed, squashed uint64
	sch                          *fakeSched
	q                            *lsq.Queues
	rn                           *rename.Renamer
	st                           stats.Sim
}

func (f *fakeSource) Cycle() uint64              { return f.cycle }
func (f *fakeSource) ROBLen() int                { return len(f.rob) }
func (f *fakeSource) ROBEntry(i int) *sched.UOp  { return f.rob[i] }
func (f *fakeSource) DecodeDepth() int           { return f.decode }
func (f *fakeSource) FetchIndex() int            { return f.fetchIdx }
func (f *fakeSource) TraceLen() int              { return f.traceLen }
func (f *fakeSource) Scheduler() sched.Scheduler { return f.sch }
func (f *fakeSource) LSQ() *lsq.Queues           { return f.q }
func (f *fakeSource) Renamer() *rename.Renamer   { return f.rn }
func (f *fakeSource) Stats() *stats.Sim          { return &f.st }
func (f *fakeSource) Totals() (uint64, uint64, uint64) {
	return f.fetched, f.committed, f.squashed
}

func uop(seq uint64, op isa.Op) *sched.UOp {
	return &sched.UOp{
		D:   &isa.DynInst{Seq: seq, Op: op},
		Dst: rename.PhysNone,
		Src: [2]rename.PhysReg{rename.PhysNone, rename.PhysNone},
	}
}

// consistent builds a small machine state that satisfies every invariant:
// two unissued ALU μops, both buffered in one FIFO queue.
func consistent(t *testing.T) *fakeSource {
	t.Helper()
	q, err := lsq.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeSource{
		cycle:    10,
		rob:      []*sched.UOp{uop(0, isa.OpIntALU), uop(1, isa.OpIntALU)},
		fetched:  2,
		traceLen: 100,
		fetchIdx: 2,
		sch: &fakeSched{
			occ:    2,
			queues: []sched.QueueSnapshot{{Name: "IQ", FIFO: true, Cap: 4, Seqs: []uint64{0, 1}}},
		},
		q:  q,
		rn: rename.MustNew(rename.DefaultConfig()),
	}
	return f
}

func wantViolation(t *testing.T, err error, invariant string) {
	t.Helper()
	ve, ok := err.(*check.ViolationError)
	if !ok {
		t.Fatalf("want *ViolationError(%s), got %v", invariant, err)
	}
	if ve.Invariant != invariant {
		t.Fatalf("want invariant %q, got %q (%s)", invariant, ve.Invariant, ve.Detail)
	}
}

func TestCheckConsistentState(t *testing.T) {
	a := check.NewAuditor()
	if err := a.Check(consistent(t)); err != nil {
		t.Fatalf("consistent state flagged: %v", err)
	}
	if a.Checks() != 1 {
		t.Fatalf("Checks() = %d, want 1", a.Checks())
	}
}

func TestObserveCommitOrder(t *testing.T) {
	a := check.NewAuditor()
	u := uop(0, isa.OpIntALU)
	u.Issued = true
	if err := a.ObserveCommit(u); err != nil {
		t.Fatalf("in-order commit flagged: %v", err)
	}
	// Skipping seq 1 is a lost μop.
	u2 := uop(2, isa.OpIntALU)
	u2.Issued = true
	wantViolation(t, a.ObserveCommit(u2), "commit-order")
}

func TestObserveCommitRejectsSquashedAndUnissued(t *testing.T) {
	a := check.NewAuditor()
	sq := uop(0, isa.OpIntALU)
	sq.Issued = true
	sq.Squashed = true
	wantViolation(t, a.ObserveCommit(sq), "commit-order")

	a = check.NewAuditor()
	wantViolation(t, a.ObserveCommit(uop(0, isa.OpIntALU)), "commit-order")
}

func TestCheckROBOrder(t *testing.T) {
	f := consistent(t)
	f.rob[0], f.rob[1] = f.rob[1], f.rob[0] // program order broken
	wantViolation(t, check.NewAuditor().Check(f), "rob-order")
}

func TestCheckROBHeadMatchesNextCommit(t *testing.T) {
	f := consistent(t)
	a := check.NewAuditor()
	u := uop(5, isa.OpIntALU) // head is seq 5 but nothing committed yet
	f.rob = []*sched.UOp{u}
	f.fetched = 1
	f.sch.occ = 1
	f.sch.queues[0].Seqs = []uint64{5}
	wantViolation(t, a.Check(f), "commit-order")
}

func TestCheckLostUop(t *testing.T) {
	f := consistent(t)
	f.fetched = 5 // 5 fetched but only 2 accounted for
	wantViolation(t, check.NewAuditor().Check(f), "lost-uop")
}

func TestCheckQueueFIFO(t *testing.T) {
	f := consistent(t)
	f.sch.queues[0].Seqs = []uint64{1, 0} // descending: FIFO discipline broken
	wantViolation(t, check.NewAuditor().Check(f), "queue-fifo")
}

func TestCheckQueueCapacity(t *testing.T) {
	f := consistent(t)
	f.sch.queues[0].Cap = 1
	wantViolation(t, check.NewAuditor().Check(f), "queue-capacity")
}

func TestCheckQueueResidency(t *testing.T) {
	// A buffered μop that is not a live ROB entry.
	f := consistent(t)
	f.sch.queues[0].Seqs = []uint64{0, 7}
	wantViolation(t, check.NewAuditor().Check(f), "queue-residency")

	// Scheduler occupancy disagrees with the queue contents.
	f = consistent(t)
	f.sch.occ = 3
	wantViolation(t, check.NewAuditor().Check(f), "queue-residency")

	// An unissued ROB μop missing from every queue.
	f = consistent(t)
	f.sch.occ = 1
	f.sch.queues[0].Seqs = []uint64{0}
	wantViolation(t, check.NewAuditor().Check(f), "queue-residency")
}

func TestCheckLSQOrder(t *testing.T) {
	f := consistent(t)
	ld0 := uop(0, isa.OpLoad)
	ld1 := uop(1, isa.OpLoad)
	f.rob = []*sched.UOp{ld0, ld1}
	f.q.Insert(ld1) // inserted out of program order
	f.q.Insert(ld0)
	wantViolation(t, check.NewAuditor().Check(f), "lsq-order")
}

func TestCheckTiming(t *testing.T) {
	f := consistent(t)
	u := f.rob[1]
	u.Issued = true
	u.DispatchCycle = 3
	u.IssueCycle = 5
	u.CompleteCycle = 5 // must be strictly after issue
	f.sch.occ = 1
	f.sch.queues[0].Seqs = []uint64{0}
	wantViolation(t, check.NewAuditor().Check(f), "timing")
}

func TestCheckLostWakeup(t *testing.T) {
	f := consistent(t)
	// Allocate a physical register whose producer "vanished": Rename marks
	// it NeverReady, and no ROB entry produces it.
	_, dst, _, ok := f.rn.Rename(&isa.DynInst{Op: isa.OpIntALU, Dst: 3, Src1: isa.RegNone, Src2: isa.RegNone})
	if !ok || dst == rename.PhysNone {
		t.Fatal("rename failed")
	}
	f.rob[1].Src[0] = dst
	wantViolation(t, check.NewAuditor().Check(f), "readiness")
}

func TestCheckStaleCompletion(t *testing.T) {
	f := consistent(t)
	_, dst, _, ok := f.rn.Rename(&isa.DynInst{Op: isa.OpIntALU, Dst: 3, Src1: isa.RegNone, Src2: isa.RegNone})
	if !ok {
		t.Fatal("rename failed")
	}
	// The producer issued and completed cycles ago, but its P-SCB entry
	// still says NeverReady — a lost wakeup broadcast.
	prod := f.rob[0]
	prod.Dst = dst
	prod.Issued = true
	prod.DispatchCycle = 1
	prod.IssueCycle = 2
	prod.CompleteCycle = 4 // f.cycle is 10
	f.rob[1].Src[0] = dst
	f.sch.occ = 1
	f.sch.queues[0].Seqs = []uint64{1}
	wantViolation(t, check.NewAuditor().Check(f), "readiness")
}

func TestCheckInterval(t *testing.T) {
	f := consistent(t)
	f.fetched = 99 // broken accounting...
	a := check.NewAuditor()
	a.Interval = 1000 // ...but cycle 10 is not on the audit grid
	if err := a.Check(f); err != nil {
		t.Fatalf("off-interval cycle audited: %v", err)
	}
	if a.Checks() != 0 {
		t.Fatalf("Checks() = %d, want 0", a.Checks())
	}
}

func TestCollectAndRender(t *testing.T) {
	f := consistent(t)
	f.rob[0].MDPBlockedSince = 4
	a := check.Collect(f)
	if a.Cycle != 10 || a.ROBLen != 2 || a.SchedulerName != "fake" {
		t.Fatalf("bad autopsy: %+v", a)
	}
	if a.Head == nil || a.Head.Seq != 0 {
		t.Fatalf("bad autopsy head: %+v", a.Head)
	}
	if a.OldestUnissued == nil || a.OldestUnissued.Seq != 0 || a.OldestUnissuedAge != 10 {
		t.Fatalf("bad oldest-unissued: %+v", a.OldestUnissued)
	}
	s := a.String()
	for _, want := range []string{"deadlock autopsy @ cycle 10", "rob=2", "queue IQ", "rob head"} {
		if !strings.Contains(s, want) {
			t.Fatalf("autopsy rendering missing %q:\n%s", want, s)
		}
	}

	de := &check.DeadlockError{Reason: "stuck", Autopsy: a}
	if msg := de.Error(); !strings.Contains(msg, "stuck") || !strings.Contains(msg, "deadlock autopsy") {
		t.Fatalf("DeadlockError rendering: %s", msg)
	}
	ve := &check.ViolationError{Invariant: "rob-order", Cycle: 10, Detail: "d", Autopsy: a}
	if msg := ve.Error(); !strings.Contains(msg, "rob-order") || !strings.Contains(msg, "deadlock autopsy") {
		t.Fatalf("ViolationError rendering: %s", msg)
	}
}
