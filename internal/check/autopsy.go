package check

import (
	"fmt"
	"strings"

	"repro/internal/mdp"
	"repro/internal/rename"
	"repro/internal/sched"
)

// UOpState is the autopsy's snapshot of one interesting in-flight μop.
type UOpState struct {
	Seq           uint64
	Desc          string // disassembly of the dynamic μop
	Class         string // Ld / LdC / Rst
	Port          int
	Issued        bool
	DispatchCycle uint64
	IssueCycle    uint64
	CompleteCycle uint64
	// SrcReady renders each renamed source's readiness ("p12@ready",
	// "p9@cycle+40", "p3@never", "-").
	SrcReady [2]string
	// MDPWait is the store sequence number the μop waits for (mdp.NoStore
	// if none); MDPBlockedSince is the first cycle that wait refused issue.
	MDPWait         uint64
	MDPBlockedSince uint64
}

// MDPWaitState records one outstanding cross-queue memory dependence wait.
type MDPWaitState struct {
	LoadSeq      uint64
	StoreSeq     uint64
	BlockedSince uint64 // 0 = the wait never refused an issue attempt
	StoreInROB   bool
}

// QueueState summarises one scheduler queue for the autopsy.
type QueueState struct {
	Name      string
	Occupancy int
	Cap       int
	HeadSeq   uint64 // meaningful only when Occupancy > 0
}

// Autopsy is a structured snapshot of the machine state at the moment a
// simulation stopped making progress (or broke an invariant). It renders
// into the multi-line diagnostic the ballsim CLI prints.
type Autopsy struct {
	Cycle uint64

	Fetched   uint64
	Committed uint64
	Squashed  uint64

	FetchIndex int
	TraceLen   int

	ROBLen      int
	DecodeDepth int
	LQLen, LQCap int
	SQLen, SQCap int

	SchedulerName string
	SchedulerOcc  int
	SchedulerCap  int

	// Head is the head-of-ROB μop (nil when the ROB is empty) — the μop
	// whose failure to issue wedges everything behind it.
	Head *UOpState
	// OldestUnissued is the oldest μop still waiting to issue, with its
	// age since dispatch (it is the Head when the head has not issued).
	OldestUnissued    *UOpState
	OldestUnissuedAge uint64

	// Queues lists every scheduler queue (occupancy and head), when the
	// scheduler supports introspection.
	Queues []QueueState

	// MDPWaits lists in-flight loads and stores still blocked on a
	// predicted memory dependence — the cross-queue wait chains that
	// clustered in-order schedulers can wedge on.
	MDPWaits []MDPWaitState
}

// describe renders one μop's autopsy state.
func describe(u *sched.UOp, rn *rename.Renamer, cycle uint64) *UOpState {
	st := &UOpState{
		Seq:             u.Seq(),
		Desc:            u.D.String(),
		Class:           u.Cls.String(),
		Port:            u.Port,
		Issued:          u.Issued,
		DispatchCycle:   u.DispatchCycle,
		IssueCycle:      u.IssueCycle,
		CompleteCycle:   u.CompleteCycle,
		MDPWait:         u.MDPWait,
		MDPBlockedSince: u.MDPBlockedSince,
	}
	for i, src := range u.Src {
		switch at := rn.ReadyAt(src); {
		case src == rename.PhysNone:
			st.SrcReady[i] = "-"
		case at == rename.NeverReady:
			st.SrcReady[i] = fmt.Sprintf("p%d@never", src)
		case at <= cycle:
			st.SrcReady[i] = fmt.Sprintf("p%d@ready", src)
		default:
			st.SrcReady[i] = fmt.Sprintf("p%d@cycle+%d", src, at-cycle)
		}
	}
	return st
}

func (u *UOpState) String() string {
	state := "waiting"
	if u.Issued {
		state = fmt.Sprintf("issued@%d complete@%d", u.IssueCycle, u.CompleteCycle)
	}
	s := fmt.Sprintf("%s cls=%s port=%d dispatched@%d %s src=[%s %s]",
		u.Desc, u.Class, u.Port, u.DispatchCycle, state, u.SrcReady[0], u.SrcReady[1])
	if u.MDPWait != mdp.NoStore {
		s += fmt.Sprintf(" mdp-wait=store#%d", u.MDPWait)
		if u.MDPBlockedSince > 0 {
			s += fmt.Sprintf("(blocked since %d)", u.MDPBlockedSince)
		}
	}
	return s
}

// Collect snapshots the machine state for a deadlock autopsy.
func Collect(s Source) *Autopsy {
	cycle := s.Cycle()
	rn := s.Renamer()
	a := &Autopsy{
		Cycle:         cycle,
		FetchIndex:    s.FetchIndex(),
		TraceLen:      s.TraceLen(),
		ROBLen:        s.ROBLen(),
		DecodeDepth:   s.DecodeDepth(),
		SchedulerName: s.Scheduler().Name(),
		SchedulerOcc:  s.Scheduler().Occupancy(),
		SchedulerCap:  s.Scheduler().Capacity(),
	}
	a.Fetched, a.Committed, a.Squashed = s.Totals()
	a.LQLen, a.SQLen = s.LSQ().Counts()
	a.LQCap, a.SQCap = s.LSQ().Caps()

	if a.ROBLen > 0 {
		a.Head = describe(s.ROBEntry(0), rn, cycle)
	}
	for i := 0; i < a.ROBLen; i++ {
		if u := s.ROBEntry(i); !u.Issued {
			a.OldestUnissued = describe(u, rn, cycle)
			a.OldestUnissuedAge = cycle - u.DispatchCycle
			break
		}
	}

	if insp, ok := s.Scheduler().(sched.Inspector); ok {
		for _, q := range insp.Queues() {
			qs := QueueState{Name: q.Name, Occupancy: len(q.Seqs), Cap: q.Cap}
			if len(q.Seqs) > 0 {
				qs.HeadSeq = q.Seqs[0]
			}
			a.Queues = append(a.Queues, qs)
		}
	}

	// Outstanding memory dependence waits among in-flight memory μops.
	stores := make(map[uint64]bool, len(s.LSQ().Stores()))
	for _, st := range s.LSQ().Stores() {
		stores[st.Seq()] = true
	}
	for _, q := range [][]*sched.UOp{s.LSQ().Loads(), s.LSQ().Stores()} {
		for _, u := range q {
			if u.Issued || u.MDPWait == mdp.NoStore {
				continue
			}
			a.MDPWaits = append(a.MDPWaits, MDPWaitState{
				LoadSeq:      u.Seq(),
				StoreSeq:     u.MDPWait,
				BlockedSince: u.MDPBlockedSince,
				StoreInROB:   stores[u.MDPWait],
			})
		}
	}
	return a
}

// String renders the autopsy as the multi-line report ballsim prints.
func (a *Autopsy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock autopsy @ cycle %d\n", a.Cycle)
	fmt.Fprintf(&b, "  progress: fetched=%d committed=%d squashed=%d fetchIdx=%d/%d\n",
		a.Fetched, a.Committed, a.Squashed, a.FetchIndex, a.TraceLen)
	fmt.Fprintf(&b, "  occupancy: rob=%d decodeQ=%d lq=%d/%d sq=%d/%d sched[%s]=%d/%d\n",
		a.ROBLen, a.DecodeDepth, a.LQLen, a.LQCap, a.SQLen, a.SQCap,
		a.SchedulerName, a.SchedulerOcc, a.SchedulerCap)
	if a.Head != nil {
		fmt.Fprintf(&b, "  rob head: %s\n", a.Head)
	} else {
		fmt.Fprintf(&b, "  rob head: <empty>\n")
	}
	if a.OldestUnissued != nil {
		fmt.Fprintf(&b, "  oldest unissued (age %d): %s\n", a.OldestUnissuedAge, a.OldestUnissued)
	}
	for _, q := range a.Queues {
		if q.Occupancy == 0 {
			fmt.Fprintf(&b, "  queue %-8s empty (cap %d)\n", q.Name, q.Cap)
			continue
		}
		fmt.Fprintf(&b, "  queue %-8s %d/%d head=#%d\n", q.Name, q.Occupancy, q.Cap, q.HeadSeq)
	}
	for _, w := range a.MDPWaits {
		loc := "left the SQ"
		if w.StoreInROB {
			loc = "still in the SQ"
		}
		fmt.Fprintf(&b, "  mdp wait: #%d → store#%d (%s, blocked since %d)\n",
			w.LoadSeq, w.StoreSeq, loc, w.BlockedSince)
	}
	return strings.TrimRight(b.String(), "\n")
}
