// Package check is the simulation self-verification subsystem: a per-cycle
// invariant auditor over the pipeline's architectural bookkeeping and a
// deadlock autopsy collector that turns a wedged simulation into an
// actionable structured report instead of a bare cycle-count error.
//
// The auditor proves, while the simulation runs, that the properties the
// paper's complexity-effectiveness claim rests on actually hold:
//
//   - ROB order: the reorder buffer holds live μops in strictly increasing
//     program order, and μops commit in exactly that order, exactly once.
//   - No lost μop: every fetched μop is either committed, squashed by a
//     flush, or still in flight — fetched = committed + squashed + ROB +
//     decode queue, every cycle.
//   - Queue discipline: every in-order scheduler queue (S-IQ, P-IQ
//     partitions, CASINO cascade stages, InO scoreboard FIFO) holds μops in
//     ascending program order, within capacity, and the per-queue totals
//     reconcile with the scheduler's reported occupancy.
//   - Scheduler residency: every buffered μop is a live, unissued ROB
//     entry, and every unissued ROB entry is buffered exactly once.
//   - LQ/SQ age order: loads and stores sit in their queues in program
//     order, within capacity, and each is a live ROB entry.
//   - Register readiness: an unissued μop whose source is not ready must
//     have an in-flight producer for that physical register still present
//     in the ROB — a missing producer is a lost wakeup, the canonical
//     cross-queue deadlock cause.
//   - Timing sanity: dispatch ≤ issue < complete for every issued μop.
package check

import (
	"fmt"

	"repro/internal/lsq"
	"repro/internal/rename"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Source is the pipeline-introspection surface the auditor and the autopsy
// collector read. *pipeline.Pipeline implements it.
type Source interface {
	Cycle() uint64
	// ROBLen/ROBEntry expose the reorder buffer oldest-first without
	// copying it.
	ROBLen() int
	ROBEntry(i int) *sched.UOp
	DecodeDepth() int
	FetchIndex() int
	TraceLen() int
	// Totals returns lifetime μop accounting unaffected by the warmup
	// statistics reset: fetched, committed and squashed μop counts.
	Totals() (fetched, committed, squashed uint64)
	Scheduler() sched.Scheduler
	LSQ() *lsq.Queues
	Renamer() *rename.Renamer
	Stats() *stats.Sim
}

// TopdownSource is the optional extension of Source implemented by
// pipelines that carry a top-down cycle-accounting engine. The auditor
// verifies the slot conservation invariant — blamed slots must equal
// issue width × accounted cycles — every audited cycle when on is true.
type TopdownSource interface {
	TopdownConservation() (got, want uint64, on bool)
}

// ViolationError reports a broken simulation invariant. Autopsy is attached
// by the pipeline when the violation aborts a run.
type ViolationError struct {
	Invariant string // short invariant name ("rob-order", "lost-uop", ...)
	Cycle     uint64
	Detail    string
	Autopsy   *Autopsy
}

func (e *ViolationError) Error() string {
	s := fmt.Sprintf("check: invariant %q violated at cycle %d: %s", e.Invariant, e.Cycle, e.Detail)
	if e.Autopsy != nil {
		s += "\n" + e.Autopsy.String()
	}
	return s
}

// DeadlockError reports a simulation that stopped making forward progress.
// It always carries the machine-state autopsy of the moment the watchdog
// fired.
type DeadlockError struct {
	Reason  string
	Autopsy *Autopsy
}

func (e *DeadlockError) Error() string {
	s := "check: deadlock: " + e.Reason
	if e.Autopsy != nil {
		s += "\n" + e.Autopsy.String()
	}
	return s
}

// Auditor verifies the simulation invariants. Create one with NewAuditor
// and call Check once per cycle (the pipeline does this when auditing is
// enabled) and ObserveCommit for every committed μop.
type Auditor struct {
	// Interval audits every Nth cycle (default 1 = every cycle). The
	// commit-order check always runs on every commit regardless.
	Interval uint64

	nextCommit uint64 // expected next commit sequence number
	checks     uint64 // Check invocations that actually audited

	// scratch, reused across cycles to stay allocation-free in steady
	// state.
	robSeqs   map[uint64]int  // seq → ROB index
	producers map[int32]int   // physical register → ROB index of producer
	buffered  map[uint64]bool // seq → seen in a scheduler queue
}

// NewAuditor returns an auditor expecting the commit stream to start at
// sequence number 0.
func NewAuditor() *Auditor {
	return &Auditor{
		Interval:  1,
		robSeqs:   make(map[uint64]int, 256),
		producers: make(map[int32]int, 256),
		buffered:  make(map[uint64]bool, 256),
	}
}

// Checks returns how many per-cycle audits have run.
func (a *Auditor) Checks() uint64 { return a.checks }

// ObserveCommit verifies the commit stream: μops must commit in exactly
// program order, exactly once, with sane timestamps. The pipeline calls it
// from the commit stage.
func (a *Auditor) ObserveCommit(u *sched.UOp) error {
	if u.Seq() != a.nextCommit {
		return &ViolationError{
			Invariant: "commit-order",
			Detail:    fmt.Sprintf("committed seq %d, expected %d (lost or reordered μop)", u.Seq(), a.nextCommit),
		}
	}
	if u.Squashed {
		return &ViolationError{
			Invariant: "commit-order",
			Detail:    fmt.Sprintf("committed a squashed μop (seq %d)", u.Seq()),
		}
	}
	if !u.Issued {
		return &ViolationError{
			Invariant: "commit-order",
			Detail:    fmt.Sprintf("committed an unissued μop (seq %d)", u.Seq()),
		}
	}
	a.nextCommit++
	return nil
}

// Check audits the machine state at the end of one cycle. It returns nil
// when every invariant holds, or the first ViolationError found.
func (a *Auditor) Check(s Source) error {
	if a.Interval > 1 && s.Cycle()%a.Interval != 0 {
		return nil
	}
	a.checks++
	cycle := s.Cycle()

	fail := func(invariant, format string, args ...any) error {
		return &ViolationError{Invariant: invariant, Cycle: cycle, Detail: fmt.Sprintf(format, args...)}
	}

	// --- ROB order, liveness, timing sanity, producer table ---
	clear(a.robSeqs)
	clear(a.producers)
	n := s.ROBLen()
	lastSeq := uint64(0)
	unissued := 0
	for i := 0; i < n; i++ {
		u := s.ROBEntry(i)
		if u == nil {
			return fail("rob-order", "nil μop at ROB index %d", i)
		}
		if u.Squashed {
			return fail("rob-order", "squashed μop seq %d still in ROB at index %d", u.Seq(), i)
		}
		if i > 0 && u.Seq() <= lastSeq {
			return fail("rob-order", "ROB index %d holds seq %d after seq %d (program order broken)", i, u.Seq(), lastSeq)
		}
		lastSeq = u.Seq()
		a.robSeqs[u.Seq()] = i
		if u.Dst != rename.PhysNone {
			a.producers[int32(u.Dst)] = i
		}
		if u.Issued {
			if u.IssueCycle < u.DispatchCycle || u.CompleteCycle <= u.IssueCycle {
				return fail("timing", "seq %d: dispatch=%d issue=%d complete=%d violates dispatch ≤ issue < complete",
					u.Seq(), u.DispatchCycle, u.IssueCycle, u.CompleteCycle)
			}
		} else {
			unissued++
		}
	}

	// --- Expected commit head: the ROB head must be the next commit ---
	if n > 0 && s.ROBEntry(0).Seq() != a.nextCommit {
		return fail("commit-order", "ROB head seq %d but next expected commit is %d", s.ROBEntry(0).Seq(), a.nextCommit)
	}

	// --- No lost μop: lifetime accounting ---
	fetched, committed, squashed := s.Totals()
	inFlight := uint64(n) + uint64(s.DecodeDepth())
	if fetched != committed+squashed+inFlight {
		return fail("lost-uop", "fetched %d ≠ committed %d + squashed %d + in-flight %d (Δ=%d)",
			fetched, committed, squashed, inFlight, int64(fetched)-int64(committed+squashed+inFlight))
	}

	// --- Scheduler queue discipline and residency ---
	if insp, ok := s.Scheduler().(sched.Inspector); ok {
		clear(a.buffered)
		total := 0
		for _, q := range insp.Queues() {
			if q.Cap > 0 && len(q.Seqs) > q.Cap {
				return fail("queue-capacity", "%s holds %d μops, capacity %d", q.Name, len(q.Seqs), q.Cap)
			}
			prev := uint64(0)
			for i, seq := range q.Seqs {
				if q.FIFO && i > 0 && seq <= prev {
					return fail("queue-fifo", "%s: seq %d follows seq %d (FIFO discipline broken)", q.Name, seq, prev)
				}
				prev = seq
				ri, live := a.robSeqs[seq]
				if !live {
					return fail("queue-residency", "%s buffers seq %d which is not a live ROB entry", q.Name, seq)
				}
				if s.ROBEntry(ri).Issued {
					return fail("queue-residency", "%s buffers seq %d which has already issued", q.Name, seq)
				}
				if a.buffered[seq] {
					return fail("queue-residency", "seq %d buffered in more than one scheduler queue", seq)
				}
				a.buffered[seq] = true
			}
			total += len(q.Seqs)
		}
		if occ := s.Scheduler().Occupancy(); total != occ {
			return fail("queue-residency", "scheduler reports occupancy %d but queues hold %d μops", occ, total)
		}
		if total != unissued {
			return fail("queue-residency", "%d unissued ROB μops but %d buffered in scheduler queues (lost or duplicated entry)", unissued, total)
		}
	}

	// --- LQ/SQ age order and residency ---
	lqCap, sqCap := s.LSQ().Caps()
	for name, q, cap := "LQ", s.LSQ().Loads(), lqCap; ; name, q, cap = "SQ", s.LSQ().Stores(), sqCap {
		if len(q) > cap {
			return fail("lsq-capacity", "%s holds %d entries, capacity %d", name, len(q), cap)
		}
		prev := uint64(0)
		for i, u := range q {
			if i > 0 && u.Seq() <= prev {
				return fail("lsq-order", "%s: seq %d follows seq %d (age order broken)", name, u.Seq(), prev)
			}
			prev = u.Seq()
			if _, live := a.robSeqs[u.Seq()]; !live {
				return fail("lsq-order", "%s entry seq %d is not a live ROB entry", name, u.Seq())
			}
		}
		if name == "SQ" {
			break
		}
	}

	// --- Top-down slot conservation: every slot blamed exactly once ---
	if ts, ok := s.(TopdownSource); ok {
		if got, want, on := ts.TopdownConservation(); on && got != want {
			return fail("topdown-conservation", "blamed %d issue slots but width × cycles = %d (Δ=%d)",
				got, want, int64(got)-int64(want))
		}
	}

	// --- Register readiness: unready sources need an in-flight producer ---
	rn := s.Renamer()
	for i := 0; i < n; i++ {
		u := s.ROBEntry(i)
		if u.Issued {
			continue
		}
		for _, src := range u.Src {
			if src == rename.PhysNone || rn.Ready(src, cycle) {
				continue
			}
			pi, ok := a.producers[int32(src)]
			if !ok {
				return fail("readiness", "seq %d waits on p%d which has no in-flight producer (lost wakeup)", u.Seq(), src)
			}
			p := s.ROBEntry(pi)
			if p.Seq() >= u.Seq() {
				return fail("readiness", "seq %d waits on p%d produced by younger seq %d", u.Seq(), src, p.Seq())
			}
			if p.Issued && p.CompleteCycle <= cycle {
				return fail("readiness", "seq %d waits on p%d whose producer seq %d completed at %d ≤ cycle %d (stale P-SCB entry)",
					u.Seq(), src, p.Seq(), p.CompleteCycle, cycle)
			}
		}
	}

	return nil
}
