package container

import "math/bits"

// Handle names a pooled QuantumQueue entry. Handles stay valid until the
// entry is removed (PopMin, Unlink, or a Take verdict); the queue never
// moves a live entry, so a caller can hold the handle of everything it has
// inserted and unlink in O(chain length).
type Handle int32

// None is the null handle.
const None Handle = -1

const msb = uint64(1) << 63

// maxSpan bounds the bucket count so the three summary levels always fit:
// span/64 level-2 words, at most 64 level-1 words, one top word.
const maxSpan = 1 << 18

// entry is one pooled node: an intrusive FIFO link, the priority it is
// filed under, and the caller's payload.
type entry[T any] struct {
	next Handle
	prio int32
	val  T
}

// QuantumQueue is a hierarchical-bitmap priority queue: span priority
// buckets, each an intrusive FIFO chain of pooled entries, summarised by
// three levels of occupancy bitmaps (one bit per bucket, per level-2 word,
// per level-1 word). The minimum is found by walking the levels with
// count-leading-zeros — bit 63-i stands for index i, so LeadingZeros64 of
// a summary word is directly the smallest occupied index — which makes
// Insert, PeepMin and the removal of the minimum all O(1), independent of
// population. Ties within a bucket keep FIFO (insertion) order.
//
// Entries live in a free-listed pool that only grows; sized at
// construction for the caller's worst-case population, steady-state
// operation never allocates.
type QuantumQueue[T any] struct {
	span int

	top uint64   // bit j = level-1 word j has a set bit
	l1  []uint64 // bit k of word j = level-2 word j*64+k has a set bit
	l2  []uint64 // bit t of word w = bucket w*64+t is non-empty

	heads, tails []Handle

	pool []entry[T]
	free Handle
	n    int
}

// NewQuantumQueue returns a queue over priorities [0, span). span is
// rounded up to a power of two in [64, maxSpan]. poolCap entries are
// reserved up front; populations that never exceed it never allocate.
func NewQuantumQueue[T any](span, poolCap int) *QuantumQueue[T] {
	if span < 64 {
		span = 64
	}
	if span&(span-1) != 0 {
		span = 1 << bits.Len(uint(span))
	}
	if span > maxSpan {
		panic("container: QuantumQueue span too large")
	}
	if poolCap < 0 {
		poolCap = 0
	}
	q := &QuantumQueue[T]{
		span:  span,
		l2:    make([]uint64, span>>6),
		l1:    make([]uint64, (span>>6+63)>>6),
		heads: make([]Handle, span),
		tails: make([]Handle, span),
		pool:  make([]entry[T], 0, poolCap),
		free:  None,
	}
	for i := range q.heads {
		q.heads[i] = None
		q.tails[i] = None
	}
	return q
}

// Span returns the number of priority buckets.
func (q *QuantumQueue[T]) Span() int { return q.span }

// Len returns the number of queued entries.
func (q *QuantumQueue[T]) Len() int { return q.n }

// Empty reports whether no entries are queued.
func (q *QuantumQueue[T]) Empty() bool { return q.n == 0 }

func (q *QuantumQueue[T]) alloc() Handle {
	if q.free != None {
		h := q.free
		q.free = q.pool[h].next
		return h
	}
	q.pool = append(q.pool, entry[T]{})
	return Handle(len(q.pool) - 1)
}

func (q *QuantumQueue[T]) release(h Handle) {
	var zero T
	e := &q.pool[h]
	e.val = zero
	e.next = q.free
	q.free = h
}

// setBits marks bucket b occupied at all three levels.
func (q *QuantumQueue[T]) setBits(b int) {
	w := b >> 6
	q.l2[w] |= msb >> (b & 63)
	q.l1[w>>6] |= msb >> (w & 63)
	q.top |= msb >> (w >> 6)
}

// clearBits marks bucket b empty, clearing summary bits whose word drained.
func (q *QuantumQueue[T]) clearBits(b int) {
	w := b >> 6
	q.l2[w] &^= msb >> (b & 63)
	if q.l2[w] == 0 {
		lw := w >> 6
		q.l1[lw] &^= msb >> (w & 63)
		if q.l1[lw] == 0 {
			q.top &^= msb >> lw
		}
	}
}

// minPrio returns the smallest occupied bucket. Callers check n > 0.
func (q *QuantumQueue[T]) minPrio() int {
	lw := bits.LeadingZeros64(q.top)
	w := lw<<6 + bits.LeadingZeros64(q.l1[lw])
	return w<<6 + bits.LeadingZeros64(q.l2[w])
}

// findFrom returns the smallest occupied bucket ≥ b, or -1 if none.
func (q *QuantumQueue[T]) findFrom(b int) int {
	if b >= q.span {
		return -1
	}
	w := b >> 6
	if m := q.l2[w] & (^uint64(0) >> (b & 63)); m != 0 {
		return w<<6 + bits.LeadingZeros64(m)
	}
	w++
	lw := w >> 6
	var m uint64
	if lw < len(q.l1) {
		m = q.l1[lw] & (^uint64(0) >> (w & 63))
	}
	for m == 0 {
		tm := q.top & (^uint64(0) >> (lw + 1)) // shifts ≥ 64 yield 0
		if tm == 0 {
			return -1
		}
		lw = bits.LeadingZeros64(tm)
		m = q.l1[lw]
	}
	w = lw<<6 + bits.LeadingZeros64(m)
	return w<<6 + bits.LeadingZeros64(q.l2[w])
}

// Insert files v under prio, appending to the bucket's FIFO chain, and
// returns the entry's handle.
func (q *QuantumQueue[T]) Insert(prio int, v T) Handle {
	if uint(prio) >= uint(q.span) {
		panic("container: QuantumQueue priority out of range")
	}
	h := q.alloc()
	e := &q.pool[h]
	e.prio = int32(prio)
	e.val = v
	e.next = None
	if t := q.tails[prio]; t != None {
		q.pool[t].next = h
	} else {
		q.heads[prio] = h
		q.setBits(prio)
	}
	q.tails[prio] = h
	q.n++
	return h
}

// PeepMin returns the oldest entry of the smallest occupied priority
// without removing it.
func (q *QuantumQueue[T]) PeepMin() (v T, prio int, ok bool) {
	if q.n == 0 {
		return v, 0, false
	}
	b := q.minPrio()
	return q.pool[q.heads[b]].val, b, true
}

// PopMin removes and returns the oldest entry of the smallest occupied
// priority.
func (q *QuantumQueue[T]) PopMin() (v T, prio int, ok bool) {
	if q.n == 0 {
		return v, 0, false
	}
	b := q.minPrio()
	h := q.heads[b]
	e := &q.pool[h]
	v = e.val
	q.heads[b] = e.next
	if e.next == None {
		q.tails[b] = None
		q.clearBits(b)
	}
	q.release(h)
	q.n--
	return v, b, true
}

// Unlink removes the entry named by h, wherever it sits in its bucket's
// chain. Cost is the chain length (O(1) when priorities are unique).
func (q *QuantumQueue[T]) Unlink(h Handle) {
	b := int(q.pool[h].prio)
	prev := None
	for c := q.heads[b]; c != None; c = q.pool[c].next {
		if c != h {
			prev = c
			continue
		}
		next := q.pool[c].next
		if prev == None {
			q.heads[b] = next
		} else {
			q.pool[prev].next = next
		}
		if next == None {
			q.tails[b] = prev
			if q.heads[b] == None {
				q.clearBits(b)
			}
		}
		q.release(h)
		q.n--
		return
	}
	panic("container: Unlink of a handle not in its bucket")
}

// Scan visits entries in priority order (FIFO within a bucket). Take
// unlinks the visited entry and invalidates its handle; Stop ends the
// walk. visit must not insert.
func (q *QuantumQueue[T]) Scan(visit func(v T, prio int) Verdict) {
	if q.n == 0 {
		return
	}
	for b := q.findFrom(0); b >= 0; b = q.findFrom(b + 1) {
		prev := None
		for c := q.heads[b]; c != None; {
			e := &q.pool[c]
			next := e.next
			switch visit(e.val, b) {
			case Take:
				if prev == None {
					q.heads[b] = next
				} else {
					q.pool[prev].next = next
				}
				if next == None {
					q.tails[b] = prev
				}
				q.release(c)
				q.n--
			case Stop:
				return
			default:
				prev = c
			}
			c = next
		}
		if q.heads[b] == None {
			q.clearBits(b)
		}
	}
}

// SelectOldest implements Selector: a Scan that hides the priority.
func (q *QuantumQueue[T]) SelectOldest(visit func(T) Verdict) {
	q.Scan(func(v T, _ int) Verdict { return visit(v) })
}

// DrainUpTo pops every entry with priority < limit, in priority order
// (FIFO within a bucket), calling fn on each.
func (q *QuantumQueue[T]) DrainUpTo(limit int, fn func(v T, prio int)) {
	for q.n > 0 {
		b := q.minPrio()
		if b >= limit {
			return
		}
		for c := q.heads[b]; c != None; {
			e := &q.pool[c]
			next := e.next
			v := e.val
			q.release(c)
			q.n--
			fn(v, b)
			c = next
		}
		q.heads[b] = None
		q.tails[b] = None
		q.clearBits(b)
	}
}

// Rebase shifts every queued priority down by delta (up, for negative
// delta), preserving FIFO order within buckets. Every shifted priority
// must stay within [0, span) — this is the window-sliding operation for
// priorities derived from a growing key (sequence numbers, cycle counts)
// relative to a movable base.
func (q *QuantumQueue[T]) Rebase(delta int) {
	if delta == 0 || q.n == 0 {
		return
	}
	if delta > 0 && q.minPrio() < delta {
		panic("container: Rebase below zero")
	}
	// Unthread every chain, ascending, into one list, clearing the bitmaps
	// as buckets drain; then re-file each entry at its shifted priority.
	// Appending in ascending original order keeps bucket FIFO order.
	first, last := None, None
	for b := q.findFrom(0); b >= 0; b = q.findFrom(b) {
		h, t := q.heads[b], q.tails[b]
		q.heads[b] = None
		q.tails[b] = None
		q.clearBits(b)
		if first == None {
			first = h
		} else {
			q.pool[last].next = h
		}
		last = t
	}
	if last != None {
		q.pool[last].next = None
	}
	for h := first; h != None; {
		e := &q.pool[h]
		next := e.next
		b := int(e.prio) - delta
		if uint(b) >= uint(q.span) {
			panic("container: Rebase out of range")
		}
		e.prio = int32(b)
		e.next = None
		if t := q.tails[b]; t != None {
			q.pool[t].next = h
		} else {
			q.heads[b] = h
			q.setBits(b)
		}
		q.tails[b] = h
		h = next
	}
}
