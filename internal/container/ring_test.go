package container

import (
	"math/rand"
	"testing"
)

func ringOf(cap int, seqs ...uint64) *Ring[seqInt] {
	r := &Ring[seqInt]{}
	r.Init(cap)
	for _, s := range seqs {
		r.Push(seqInt(s))
	}
	return r
}

func seqs(r *Ring[seqInt]) []uint64 {
	out := make([]uint64, r.Len())
	for i := range out {
		out[i] = uint64(r.At(i))
	}
	return out
}

func equal(x, y []uint64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func TestRingFIFO(t *testing.T) {
	r := ringOf(4, 1, 2, 3)
	if r.Len() != 3 || r.Head() != 1 || r.At(2) != 3 {
		t.Fatalf("ring state: len=%d head=%d", r.Len(), r.Head())
	}
	if v := r.PopFront(); v != 1 {
		t.Fatalf("PopFront = %d, want 1", v)
	}
	r.Push(seqInt(4))
	r.Push(seqInt(5)) // wraps
	if !equal(seqs(r), []uint64{2, 3, 4, 5}) {
		t.Fatalf("after wrap: %v", seqs(r))
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
}

func TestRingFlushFrom(t *testing.T) {
	r := ringOf(8, 1, 2, 5, 9)
	r.FlushFrom(5)
	if !equal(seqs(r), []uint64{1, 2}) {
		t.Fatalf("after FlushFrom(5): %v", seqs(r))
	}
	r.FlushFrom(0)
	if r.Len() != 0 {
		t.Fatalf("FlushFrom(0) left %d entries", r.Len())
	}
}

func TestRingSelectOldest(t *testing.T) {
	r := ringOf(8, 1, 2, 3, 4)
	var visited []uint64
	r.SelectOldest(func(v seqInt) Verdict {
		visited = append(visited, uint64(v))
		if v == 3 {
			return Keep // a kept head blocks everything younger
		}
		return Take
	})
	if !equal(visited, []uint64{1, 2, 3}) {
		t.Fatalf("visited %v, want [1 2 3]", visited)
	}
	if !equal(seqs(r), []uint64{3, 4}) {
		t.Fatalf("survivors %v, want [3 4]", seqs(r))
	}
}

// TestRingSelectWindowMatchesMask pins SelectWindow against the
// RemoveMarked-style reference compaction it replaces: random take sets
// over random window/occupancy/wrap states must leave identical rings.
func TestRingSelectWindowMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		cap := 1 + rng.Intn(12)
		n := rng.Intn(cap + 1)
		rot := rng.Intn(cap) // exercise wrapped layouts
		r := ringOf(cap)
		for i := 0; i < rot; i++ {
			r.Push(seqInt(0))
			r.PopFront()
		}
		var model []uint64
		for i := 0; i < n; i++ {
			s := uint64(trial*100 + i)
			r.Push(seqInt(s))
			model = append(model, s)
		}
		window := rng.Intn(n + 2)
		if window > n {
			window = n
		}
		take := make(map[uint64]bool)
		stopAt := -1
		for i := 0; i < window; i++ {
			if rng.Intn(4) == 0 && stopAt < 0 && rng.Intn(3) == 0 {
				stopAt = i
			}
			take[model[i]] = rng.Intn(2) == 0
		}
		var visited int
		r.SelectWindow(window, func(v seqInt) Verdict {
			if visited == stopAt {
				visited++
				return Stop
			}
			visited++
			if take[uint64(v)] {
				return Take
			}
			return Keep
		})
		// Reference: drop taken entries among the examined prefix.
		examined := window
		if stopAt >= 0 && stopAt < window {
			examined = stopAt
		}
		var want []uint64
		for i, s := range model {
			if i < examined && take[s] {
				continue
			}
			want = append(want, s)
		}
		if !equal(seqs(r), want) {
			t.Fatalf("trial %d: ring %v, want %v (window %d, stop %d)", trial, seqs(r), want, window, stopAt)
		}
	}
}

func TestRingSelectWindowZeroAlloc(t *testing.T) {
	r := ringOf(64)
	for i := 0; i < 48; i++ {
		r.Push(seqInt(uint64(i)))
	}
	allocs := testing.AllocsPerRun(100, func() {
		n := 0
		r.SelectWindow(8, func(v seqInt) Verdict {
			n++
			if n%3 == 0 {
				return Take
			}
			return Keep
		})
		for r.Len() < 48 {
			r.Push(seqInt(uint64(r.Len())))
		}
	})
	if allocs != 0 {
		t.Fatalf("SelectWindow allocates %.1f per run, want 0", allocs)
	}
}
