// Package container holds the pooled, allocation-free data structures the
// cycle engine's hot paths are built on: a fixed-capacity FIFO ring
// (Ring) and a hierarchical-bitmap priority queue (QuantumQueue) whose
// minimum is found by walking three summary levels with CLZ — the software
// analogue of the priority-select circuits the paper's issue queues are
// made of.
//
// Both containers expose selection through one audited vocabulary: a visit
// callback examines entries oldest-first and answers with a Verdict. This
// is the software shape of a select circuit — entries raise requests, the
// grant logic picks winners in priority order — and every scheduler
// (InO head-sequential issue, OoO oldest-first select, the CASINO cascade
// windows, Ballerino's S-IQ window and P-IQ heads) picks through it.
package container

// Verdict is a visit callback's decision about one examined entry.
type Verdict uint8

const (
	// Keep leaves the entry where it is and continues the walk (for
	// strictly in-order disciplines such as Ring.SelectOldest, a kept
	// head blocks everything younger, ending the walk).
	Keep Verdict = iota
	// Take removes the entry from the container — a grant, or a pass to
	// another queue — and continues the walk.
	Take
	// Stop leaves the entry where it is and ends the walk.
	Stop
)

// Selector is the uniform oldest-first selection interface both containers
// implement: entries are offered to visit in priority order (age order for
// a FIFO ring, ascending priority for a bitmap queue) and leave or stay
// according to the verdict.
type Selector[T any] interface {
	SelectOldest(visit func(T) Verdict)
}
