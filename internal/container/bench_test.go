package container

import (
	"math/bits"
	"math/rand"
	"testing"
)

// BenchmarkSelect measures the oldest-first pick over a 64-entry window —
// the per-cycle core of every scheduler's select stage — comparing the
// CLZ-walked bitmap queue against the insertion-sort-over-occupancy
// approach it replaced. The hot-loop CI gate archives this output.
func BenchmarkSelect(b *testing.B) {
	const entries = 64
	const width = 8
	rng := rand.New(rand.NewSource(7))
	ages := make([]uint64, entries)
	for i := range ages {
		ages[i] = uint64(rng.Intn(1 << 12))
	}

	b.Run("quantum-scan", func(b *testing.B) {
		q := NewQuantumQueue[int32](1<<13, entries)
		for i, s := range ages {
			q.Insert(int(s), int32(i))
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			granted := 0
			var took [width]int32
			q.Scan(func(slot int32, prio int) Verdict {
				if granted >= width {
					return Stop
				}
				took[granted] = slot
				granted++
				return Take
			})
			for _, slot := range took[:granted] {
				q.Insert(int(ages[slot]), slot)
			}
		}
	})

	b.Run("insertion-sort", func(b *testing.B) {
		// The pre-bitmap oldest-first path: enumerate an occupancy bitmap
		// into a scratch slice, insertion-sort by age, walk the prefix.
		var occ [entries / 64]uint64
		for i := range occ {
			occ[i] = ^uint64(0)
		}
		order := make([]int, 0, entries)
		sink := 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			order = order[:0]
			for w, word := range occ {
				for word != 0 {
					order = append(order, w<<6+bits.TrailingZeros64(word))
					word &= word - 1
				}
			}
			for j := 1; j < len(order); j++ {
				idx := order[j]
				age := ages[idx]
				k := j - 1
				for k >= 0 && ages[order[k]] > age {
					order[k+1] = order[k]
					k--
				}
				order[k+1] = idx
			}
			for _, idx := range order[:width] {
				sink += idx
			}
		}
		_ = sink
	})

	b.Run("ring-window", func(b *testing.B) {
		r := &Ring[seqInt]{}
		r.Init(entries)
		for _, s := range ages {
			r.Push(seqInt(s))
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			taken := 0
			r.SelectWindow(width, func(v seqInt) Verdict {
				if taken < width/2 {
					taken++
					return Take
				}
				return Keep
			})
			for taken > 0 {
				taken--
				r.Push(seqInt(uint64(i + taken)))
			}
		}
	})
}
