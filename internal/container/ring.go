package container

// Seqer is the element constraint for Ring: entries expose the dynamic
// sequence number FlushFrom truncates by.
type Seqer interface {
	Seq() uint64
}

// maxSelectWindow bounds SelectWindow's examined prefix so the taken-set
// bitmap fits in a fixed stack array (no per-call allocation).
const maxSelectWindow = 512

// Ring is a fixed-capacity FIFO backed by a circular buffer. It is the
// storage behind every in-order queue on the hot path (the InO issue
// queue, CES P-IQs, the CASINO cascade, Ballerino's S-IQ): Push/PopFront
// are O(1) with no allocation and no slice creep, and FlushFrom truncates
// the young tail in place exactly like the slice-based queues it replaces.
// Vacated slots are zeroed so recycled entries are never reachable through
// a stale queue slot.
type Ring[T Seqer] struct {
	buf  []T
	head int
	n    int
}

// Init sizes the ring. Pushing beyond capacity is a caller bug (queues
// check Full before Push, as the slice-based code checked cap).
func (r *Ring[T]) Init(capacity int) {
	r.buf = make([]T, capacity)
	r.head, r.n = 0, 0
}

// Len returns the number of buffered entries.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Empty reports whether the ring holds no entries.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.n >= len(r.buf) }

// slot maps a logical index (0 = head) to a buffer position. i must be
// within [0, cap], so one conditional replaces the modulo.
func (r *Ring[T]) slot(i int) int {
	if s := r.head + i; s < len(r.buf) {
		return s
	} else {
		return s - len(r.buf)
	}
}

// At returns the i-th entry from the head.
func (r *Ring[T]) At(i int) T { return r.buf[r.slot(i)] }

// Head returns the oldest entry.
func (r *Ring[T]) Head() T { return r.buf[r.head] }

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.Full() {
		panic("container: push to full ring")
	}
	r.buf[r.slot(r.n)] = v
	r.n++
}

// PopFront removes and returns the oldest entry.
func (r *Ring[T]) PopFront() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// DropFront removes the k oldest entries.
func (r *Ring[T]) DropFront(k int) {
	var zero T
	for i := 0; i < k; i++ {
		r.buf[r.head] = zero
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.n -= k
}

// FlushFrom drops every entry with seq ≥ bound. Entries are in program
// order within a queue, so this truncates a suffix.
func (r *Ring[T]) FlushFrom(bound uint64) {
	var zero T
	for i := 0; i < r.n; i++ {
		if r.At(i).Seq() >= bound {
			for j := i; j < r.n; j++ {
				r.buf[r.slot(j)] = zero
			}
			r.n = i
			return
		}
	}
}

// SelectOldest implements Selector under strict FIFO discipline: entries
// are offered from the head; Take pops and moves to the new head, while
// Keep and Stop both end the walk — an in-order queue's head blocks
// everything younger.
func (r *Ring[T]) SelectOldest(visit func(T) Verdict) {
	for r.n > 0 {
		if visit(r.buf[r.head]) != Take {
			return
		}
		r.PopFront()
	}
}

// SelectWindow offers the oldest window entries to visit in age order —
// a speculative scheduling window examined at the head. Take removes the
// entry; Keep leaves it (the walk continues past it); Stop leaves it and
// ends the walk. Survivors keep their relative order, ending up adjacent
// to the unexamined region with the head advanced over the vacated slots —
// the in-place equivalent of the "append(keep, rest...)" compaction the
// slice-based windowed queues did. window is capped at Len and must not
// exceed maxSelectWindow.
func (r *Ring[T]) SelectWindow(window int, visit func(T) Verdict) {
	if window > r.n {
		window = r.n
	}
	if window <= 0 {
		return
	}
	if window > maxSelectWindow {
		panic("container: select window too wide")
	}
	var taken [maxSelectWindow / 64]uint64
	removed := 0
walk:
	for i := 0; i < window; i++ {
		switch visit(r.buf[r.slot(i)]) {
		case Take:
			taken[i>>6] |= 1 << (i & 63)
			removed++
		case Stop:
			break walk
		}
	}
	if removed == 0 {
		return
	}
	var zero T
	w := window - 1
	for i := window - 1; i >= 0; i-- {
		if taken[i>>6]&(1<<(i&63)) == 0 {
			if w != i {
				r.buf[r.slot(w)] = r.buf[r.slot(i)]
			}
			w--
		}
	}
	for i := 0; i <= w; i++ {
		r.buf[r.slot(i)] = zero
	}
	r.head = r.slot(w + 1)
	r.n -= w + 1
}
