package container

import (
	"container/heap"
	"math/rand"
	"testing"
)

// Interface conformance: both containers select through the one vocabulary.
type seqInt uint64

func (s seqInt) Seq() uint64 { return uint64(s) }

var (
	_ Selector[seqInt] = (*Ring[seqInt])(nil)
	_ Selector[seqInt] = (*QuantumQueue[seqInt])(nil)
)

// refItem mirrors one live QuantumQueue entry in the reference model. ord
// breaks priority ties by insertion order, pinning the FIFO-within-bucket
// contract.
type refItem struct {
	prio int
	ord  int
	val  int
}

// refHeap is the container/heap reference model.
type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].ord < h[j].ord
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestQuantumDifferential drives a QuantumQueue and a container/heap
// reference model through the same fuzzed operation sequence — inserts,
// pop-min, peep-min, unlink of a random live handle, and window rebase —
// and requires identical observable behaviour at every step.
func TestQuantumDifferential(t *testing.T) {
	for _, span := range []int{64, 256, 1 << 13} {
		rng := rand.New(rand.NewSource(int64(0x5eed + span)))
		q := NewQuantumQueue[int](span, 32)
		var ref refHeap
		live := map[Handle]refItem{}
		ord := 0
		base := 0 // accumulated rebase, applied to reference priorities

		for step := 0; step < 20000; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // insert
				p := rng.Intn(span)
				v := rng.Int()
				h := q.Insert(p, v)
				it := refItem{prio: p, ord: ord, val: v}
				ord++
				heap.Push(&ref, it)
				if _, dup := live[h]; dup {
					t.Fatalf("span %d step %d: handle %d already live", span, step, h)
				}
				live[h] = it
			case op < 7: // pop-min
				v, p, ok := q.PopMin()
				if ok != (ref.Len() > 0) {
					t.Fatalf("span %d step %d: PopMin ok=%v, reference has %d", span, step, ok, ref.Len())
				}
				if !ok {
					continue
				}
				want := heap.Pop(&ref).(refItem)
				if v != want.val || p != want.prio {
					t.Fatalf("span %d step %d: PopMin = (%d, %d), want (%d, %d)", span, step, v, p, want.val, want.prio)
				}
				for h, it := range live {
					if it.ord == want.ord {
						delete(live, h)
						break
					}
				}
			case op < 8: // peep-min
				v, p, ok := q.PeepMin()
				if ok != (ref.Len() > 0) {
					t.Fatalf("span %d step %d: PeepMin ok=%v, reference has %d", span, step, ok, ref.Len())
				}
				if ok && (v != ref[0].val || p != ref[0].prio) {
					t.Fatalf("span %d step %d: PeepMin = (%d, %d), want (%d, %d)", span, step, v, p, ref[0].val, ref[0].prio)
				}
			case op < 9: // unlink a random live handle
				if len(live) == 0 {
					continue
				}
				var h Handle
				for h = range live {
					break
				}
				q.Unlink(h)
				want := live[h]
				delete(live, h)
				for i := range ref {
					if ref[i].ord == want.ord {
						heap.Remove(&ref, i)
						break
					}
				}
			default: // rebase the window down by the current minimum
				if q.Empty() {
					continue
				}
				_, min, _ := q.PeepMin()
				if min == 0 {
					continue
				}
				q.Rebase(min)
				base += min
				for i := range ref {
					ref[i].prio -= min
				}
				for h, it := range live {
					it.prio -= min
					live[h] = it
				}
			}
			if q.Len() != ref.Len() {
				t.Fatalf("span %d step %d: Len = %d, reference %d", span, step, q.Len(), ref.Len())
			}
		}
		_ = base
	}
}

// TestQuantumScanOrder pins Scan's visit order — ascending priority, FIFO
// within a bucket — and the Take/Stop verdict semantics.
func TestQuantumScanOrder(t *testing.T) {
	q := NewQuantumQueue[int](64, 8)
	q.Insert(9, 90)
	q.Insert(3, 30)
	q.Insert(9, 91)
	q.Insert(0, 1)

	var got []int
	q.Scan(func(v, prio int) Verdict {
		got = a(got, v)
		if v == 30 {
			return Take
		}
		return Keep
	})
	want := []int{1, 30, 90, 91}
	if !eq(got, want) {
		t.Fatalf("Scan order = %v, want %v", got, want)
	}
	if q.Len() != 3 {
		t.Fatalf("Len after Take = %d, want 3", q.Len())
	}

	got = nil
	q.Scan(func(v, prio int) Verdict {
		got = a(got, v)
		if v == 90 {
			return Stop
		}
		return Keep
	})
	if !eq(got, []int{1, 90}) {
		t.Fatalf("Scan with Stop visited %v, want [1 90]", got)
	}
}

// TestQuantumDrainUpTo pins the drain bound (exclusive) and order.
func TestQuantumDrainUpTo(t *testing.T) {
	q := NewQuantumQueue[int](128, 8)
	for _, p := range []int{100, 5, 64, 5, 63} {
		q.Insert(p, p*10)
	}
	var got []int
	q.DrainUpTo(64, func(v, prio int) { got = a(got, v) })
	if !eq(got, []int{50, 50, 630}) {
		t.Fatalf("DrainUpTo(64) = %v, want [50 50 630]", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Len after drain = %d, want 2", q.Len())
	}
}

// TestQuantumZeroAllocChurn asserts steady-state queue churn — insert,
// select, pop, rebase over a sliding window — performs zero allocations
// once the pool has grown to the working population.
func TestQuantumZeroAllocChurn(t *testing.T) {
	q := NewQuantumQueue[int](1<<13, 64)
	prio := 0
	insert := func(n int) {
		for i := 0; i < n; i++ {
			q.Insert(prio%(1<<12), prio)
			prio += 3
		}
	}
	insert(48) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		insert(16)
		granted := 0
		q.Scan(func(v, p int) Verdict {
			if granted >= 8 {
				return Stop
			}
			if v%2 == 0 {
				granted++
				return Take
			}
			return Keep
		})
		for q.Len() > 48 {
			q.PopMin()
		}
		if _, min, ok := q.PeepMin(); ok && min > 0 {
			q.Rebase(min)
		}
		prio = 0
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %.1f per run, want 0", allocs)
	}
}

func a(s []int, v int) []int { return append(s, v) }

func eq(x, y []int) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}
