package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/topdown"
)

// ManifestSchema identifies the manifest layout version.
const ManifestSchema = "ballerino.run/v1"

// Manifest is the machine-readable record of one simulation run: identity,
// configuration, wall time, final statistics, energy, scheduler counters
// and (when the recorder was attached) the metrics registry dump. It backs
// `ballsim -json` and is written alongside every traced run.
type Manifest struct {
	Schema      string `json:"schema"`
	CreatedAt   string `json:"created_at"`
	GoVersion   string `json:"go_version"`
	GitRevision string `json:"git_revision,omitempty"`
	Hostname    string `json:"hostname,omitempty"`

	Sim         SimInfo  `json:"sim"`
	WallSeconds float64  `json:"wall_seconds"`
	Stats       RunStats `json:"stats"`

	Delay  map[string]DelayInfo `json:"delay,omitempty"`
	Energy EnergyInfo           `json:"energy"`

	SchedCounters  map[string]uint64 `json:"sched_counters,omitempty"`
	InjectedFaults map[string]uint64 `json:"injected_faults,omitempty"`
	AuditChecks    uint64            `json:"audit_checks,omitempty"`
	GoldenOps      uint64            `json:"golden_ops,omitempty"`

	Metrics   *MetricsDump `json:"metrics,omitempty"`
	Sinks     []SinkInfo   `json:"sinks,omitempty"`
	Intervals int          `json:"intervals,omitempty"`

	// Topdown is the CPI-stack cycle accounting; nil when -topdown was
	// off, keeping manifests byte-identical to pre-feature runs.
	Topdown *topdown.Report `json:"topdown,omitempty"`
}

// SimInfo names the simulated configuration.
type SimInfo struct {
	Arch      string `json:"arch"`
	Workload  string `json:"workload"`
	Width     int    `json:"width"`
	Ops       int    `json:"ops"`
	WarmupOps int    `json:"warmup_ops,omitempty"`
	NumPIQs   int    `json:"num_piqs,omitempty"`
	PIQDepth  int    `json:"piq_depth,omitempty"`
	MDP       bool   `json:"mdp"`
	DVFS      string `json:"dvfs"`
	FaultSpec string `json:"fault_spec,omitempty"`
}

// RunStats is the final counter state of the measured region.
type RunStats struct {
	Cycles         uint64  `json:"cycles"`
	Committed      uint64  `json:"committed"`
	Fetched        uint64  `json:"fetched"`
	Issued         uint64  `json:"issued"`
	IPC            float64 `json:"ipc"`
	TimeSeconds    float64 `json:"time_seconds"`
	Branches       uint64  `json:"branches"`
	Mispredicts    uint64  `json:"mispredicts"`
	MispredictRate float64 `json:"mispredict_rate"`
	Violations     uint64  `json:"violations"`
	Flushes        uint64  `json:"flushes"`
	Squashed       uint64  `json:"squashed"`
	DispatchStalls uint64  `json:"dispatch_stalls"`
	AvgOccupancy   float64 `json:"avg_occupancy"`
}

// DelayInfo is one class's average decode-to-issue delay breakdown.
type DelayInfo struct {
	Count            uint64  `json:"count"`
	DecodeToDispatch float64 `json:"decode_to_dispatch"`
	DispatchToReady  float64 `json:"dispatch_to_ready"`
	ReadyToIssue     float64 `json:"ready_to_issue"`
	Total            float64 `json:"total"`
}

// EnergyInfo is the end-of-run energy accounting.
type EnergyInfo struct {
	TotalPJ     float64            `json:"total_pj"`
	EDP         float64            `json:"edp"`
	Efficiency  float64            `json:"efficiency"`
	ByComponent map[string]float64 `json:"by_component,omitempty"`
}

// SinkInfo names one output artifact of the run.
type SinkInfo struct {
	Kind string `json:"kind"` // "chrome-trace", "events-jsonl", "metrics-csv", "manifest"
	Path string `json:"path"`
}

// NewManifest stamps a manifest with the environment identity (schema,
// time, Go version, VCS revision, hostname).
func NewManifest() *Manifest {
	m := &Manifest{
		Schema:      ManifestSchema,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GitRevision: GitRevision(),
	}
	if h, err := os.Hostname(); err == nil {
		m.Hostname = h
	}
	return m
}

// GitRevision returns the VCS revision baked into the binary by the Go
// toolchain ("" when built outside a repository or from a test binary).
// A locally modified tree is suffixed with "+dirty".
func GitRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// JSON renders the manifest as indented JSON.
func (m *Manifest) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Canonical returns a copy of the manifest with every
// environment-volatile field — creation time, Go version, VCS revision,
// hostname, wall time, sink paths — zeroed. Two runs of the same
// configuration produce byte-identical canonical manifests regardless of
// machine, process or wall clock: the equality the durable job store's
// content-addressed results and the crash-recovery harness assert.
func (m *Manifest) Canonical() *Manifest {
	c := *m
	c.CreatedAt = ""
	c.GoVersion = ""
	c.GitRevision = ""
	c.Hostname = ""
	c.WallSeconds = 0
	c.Sinks = nil
	return &c
}

// CanonicalJSON renders the canonical form compactly. encoding/json
// marshals struct fields in declaration order and map keys sorted, so
// equal canonical manifests serialize to equal bytes.
func (m *Manifest) CanonicalJSON() ([]byte, error) {
	return json.Marshal(m.Canonical())
}

// WriteFile writes the manifest as indented JSON to path and records the
// artifact in its own sink list.
func (m *Manifest) WriteFile(path string) error {
	m.Sinks = append(m.Sinks, SinkInfo{Kind: "manifest", Path: path})
	b, err := m.JSON()
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return nil
}
