// Package obs is the pipeline-wide observability layer: a typed per-cycle
// event bus, a registry of counters and fixed-bucket histograms with
// periodic heartbeat/interval snapshots, pluggable sinks (Chrome
// trace_event JSON, JSONL event log, CSV interval dump) and a run manifest
// written alongside every traced run.
//
// The layer is zero-cost when off: the pipeline holds a nil *Recorder and
// every emit site is guarded by a single predictable nil check, so a
// simulation with no sink attached pays one untaken branch per event site
// (see BenchmarkEmitNil and BenchmarkObsOverhead in the repository root).
package obs

import (
	"errors"

	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/topdown"
)

// Kind identifies a pipeline event.
type Kind uint8

// Pipeline event kinds. The pipeline emits the front-end/back-end kinds;
// the scheduler-internal kinds (steering, sharing, promotion) arrive
// through the sched.Probe bridge (see FromProbe).
const (
	KindFetch     Kind = iota // μop fetched; PC/Op set
	KindDecode                // μop left decode; Label carries its disassembly
	KindRename                // μop renamed; Arg = physical destination register
	KindDispatch              // μop entered the scheduler; Port set
	KindWakeup                // destination register became available; Arg = phys reg
	KindIssue                 // μop granted; Arg = its operand-ready cycle
	KindExec                  // execution latency resolved; Arg = completion cycle
	KindWriteback             // μop finished execution this cycle
	KindCommit                // μop retired in program order
	KindFlush                 // pipeline flush; Seq = flush bound
	KindSquash                // μop removed by a flush
	KindStall                 // dispatch/rename could not move the head μop

	KindSteerMDAHit  // load steered into its producer store's P-IQ; Arg = P-IQ
	KindSteerMDAMiss // MDA candidate fell through to R-dependence steering
	KindSteerDep     // μop steered along an R-dependence; Arg = P-IQ
	KindSteerNew     // μop allocated an empty P-IQ as a chain head; Arg = P-IQ
	KindPIQSplit     // P-IQ entered sharing mode (split into partitions); Arg = P-IQ
	KindPIQShare     // μop allocated into a shared P-IQ partition; Arg = P-IQ
	KindPIQMerge     // shared P-IQ partitions merged back to normal mode; Arg = P-IQ
	KindSIQPromote   // μop left the S-IQ into the P-IQ cluster

	numKinds
)

var kindNames = [numKinds]string{
	KindFetch:        "fetch",
	KindDecode:       "decode",
	KindRename:       "rename",
	KindDispatch:     "dispatch",
	KindWakeup:       "wakeup",
	KindIssue:        "issue",
	KindExec:         "exec",
	KindWriteback:    "writeback",
	KindCommit:       "commit",
	KindFlush:        "flush",
	KindSquash:       "squash",
	KindStall:        "dispatch-stall",
	KindSteerMDAHit:  "steer-mda-hit",
	KindSteerMDAMiss: "steer-mda-miss",
	KindSteerDep:     "steer-dep",
	KindSteerNew:     "steer-new-chain",
	KindPIQSplit:     "piq-split",
	KindPIQShare:     "piq-share",
	KindPIQMerge:     "piq-merge",
	KindSIQPromote:   "siq-promote",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// FromProbe maps a scheduler-internal probe event to its event-bus kind.
func FromProbe(k sched.ProbeKind) Kind {
	switch k {
	case sched.ProbeSteerMDAHit:
		return KindSteerMDAHit
	case sched.ProbeSteerMDAMiss:
		return KindSteerMDAMiss
	case sched.ProbeSteerDep:
		return KindSteerDep
	case sched.ProbeSteerNewChain:
		return KindSteerNew
	case sched.ProbePIQSplit:
		return KindPIQSplit
	case sched.ProbePIQShare:
		return KindPIQShare
	case sched.ProbePIQMerge:
		return KindPIQMerge
	default:
		return KindSIQPromote
	}
}

// Event is one pipeline occurrence. It is a flat value type: emitting one
// allocates nothing, and sinks must copy it if they retain it past the
// Event call.
type Event struct {
	Kind  Kind
	Cycle uint64
	Seq   uint64 // dynamic μop sequence number (flush: the flush bound)
	PC    uint64
	Op    isa.Op
	Cls   sched.Class
	Port  int16
	Arg   uint64 // kind-specific payload (see the Kind doc comments)
	Label string // human-readable μop rendering (KindDecode only)
}

// Sink consumes the event stream and the periodic interval snapshots. A
// sink may ignore either; Close flushes and releases it (idempotent).
type Sink interface {
	Event(e *Event)
	Interval(iv Interval)
	Close() error
}

// Recorder is the event bus plus the metrics registry. A nil *Recorder is
// the off state: every method is nil-safe, so instrumented code holds a
// possibly-nil *Recorder and pays only a nil check when observability is
// detached.
//
// Goroutine safety: the recorder is single-threaded by contract. Emit,
// Heartbeat, Finish and every other mutating method must be called from
// the simulation goroutine only; sinks and interval hooks are invoked
// synchronously on that goroutine. A hook that hands data to another
// goroutine (the SSE stream in internal/telemetry, for example) must do
// its own synchronization — the recorder provides none.
type Recorder struct {
	sinks []Sink
	hooks []func(Interval)

	interval uint64
	nextBeat uint64
	index    int
	prev     Snapshot

	kindCounts [numKinds]uint64

	reg   *Registry
	delay [3]*Histogram // decode→issue delay per sched.Class
	occ   *Histogram    // scheduler occupancy at heartbeat
	lq    *Histogram    // load-queue pressure at heartbeat
	sq    *Histogram    // store-queue pressure at heartbeat
}

// DefaultInterval is the heartbeat period (cycles) when none is given.
const DefaultInterval = 10_000

// NewRecorder builds a recorder over the given sinks (zero sinks is valid:
// metrics still accumulate for the manifest). interval is the heartbeat
// period in cycles; 0 selects DefaultInterval.
func NewRecorder(interval uint64, sinks ...Sink) *Recorder {
	if interval == 0 {
		interval = DefaultInterval
	}
	r := &Recorder{
		sinks:    sinks,
		interval: interval,
		nextBeat: interval,
		reg:      NewRegistry(),
	}
	delayBounds := []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	for cls := range r.delay {
		r.delay[cls] = r.reg.NewHistogram("issue_delay."+sched.Class(cls).String(), delayBounds)
	}
	r.occ = r.reg.NewHistogram("sched_occupancy", []uint64{0, 8, 16, 32, 48, 64, 96, 128, 192, 256})
	r.lq = r.reg.NewHistogram("lq_pressure", []uint64{0, 8, 16, 24, 32, 48, 64, 72})
	r.sq = r.reg.NewHistogram("sq_pressure", []uint64{0, 8, 16, 24, 32, 48, 56})
	return r
}

// Registry exposes the metrics registry (nil when the recorder is off).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// OnInterval registers fn to observe every interval snapshot, after the
// sinks. Hooks are the snapshot fan-out surface: any number of consumers
// (sinks, the live SSE stream, gauge updaters) can watch the same
// heartbeat without racing, because all of them run synchronously on the
// simulation goroutine in registration order. fn may safely read the
// recorder's Registry while it runs; to publish beyond the simulation
// goroutine it must synchronize itself. Safe on a nil receiver (no-op).
func (r *Recorder) OnInterval(fn func(Interval)) {
	if r == nil || fn == nil {
		return
	}
	r.hooks = append(r.hooks, fn)
}

// Start re-bases the recorder at snapshot s: s becomes the baseline the
// first interval's deltas are measured against, and the heartbeat clock
// starts from s.Cycle. The pipeline calls it at attach time, so a recorder
// attached after warm-up covers exactly the measured region.
func (r *Recorder) Start(s Snapshot) {
	if r == nil {
		return
	}
	r.prev = s
	r.nextBeat = s.Cycle + r.interval
}

// Emit publishes one event to every sink and counts it by kind. Safe on a
// nil receiver (no-op).
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.kindCounts[e.Kind]++
	for _, s := range r.sinks {
		s.Event(&e)
	}
}

// ObserveCommit records a committed μop: the commit event plus the
// decode→issue delay histogram of its class.
func (r *Recorder) ObserveCommit(u *sched.UOp, cycle uint64) {
	if r == nil {
		return
	}
	if u.IssueCycle >= u.DecodeCycle {
		r.delay[u.Cls].Observe(u.IssueCycle - u.DecodeCycle)
	}
	r.Emit(Event{
		Kind: KindCommit, Cycle: cycle, Seq: u.Seq(), PC: uint64(u.D.PC),
		Op: u.D.Op, Cls: u.Cls, Port: int16(u.Port),
	})
}

// HeartbeatDue reports whether the next interval snapshot should be taken
// at this cycle. Safe on a nil receiver (false).
func (r *Recorder) HeartbeatDue(cycle uint64) bool {
	return r != nil && cycle >= r.nextBeat
}

// Heartbeat closes the current interval at snapshot s: the delta against
// the previous snapshot goes to every sink, and the instantaneous queue
// levels feed the pressure histograms.
func (r *Recorder) Heartbeat(s Snapshot) {
	if r == nil {
		return
	}
	r.beat(s)
	for r.nextBeat <= s.Cycle {
		r.nextBeat += r.interval
	}
}

// Finish closes the final (possibly partial) interval so that the interval
// rows sum exactly to the end-of-run counters. Call once, after the last
// simulated cycle and before Close.
func (r *Recorder) Finish(s Snapshot) {
	if r == nil {
		return
	}
	if s != r.prev {
		r.beat(s)
	}
}

func (r *Recorder) beat(s Snapshot) {
	iv := s.delta(r.prev)
	iv.Index = r.index
	r.index++
	r.prev = s
	r.occ.Observe(uint64(s.SchedOccupancy))
	r.lq.Observe(uint64(s.LQ))
	r.sq.Observe(uint64(s.SQ))
	for _, sk := range r.sinks {
		sk.Interval(iv)
	}
	for _, fn := range r.hooks {
		fn(iv)
	}
}

// Intervals returns the number of interval rows emitted so far.
func (r *Recorder) Intervals() int {
	if r == nil {
		return 0
	}
	return r.index
}

// EventCount returns how many events of kind k were emitted.
func (r *Recorder) EventCount(k Kind) uint64 {
	if r == nil || int(k) >= len(r.kindCounts) {
		return 0
	}
	return r.kindCounts[k]
}

// FinalizeSched folds the scheduler's end-of-run counters into the
// registry under a "sched." prefix, making them part of the metrics dump.
func (r *Recorder) FinalizeSched(counters map[string]uint64) {
	if r == nil {
		return
	}
	for name, v := range counters {
		r.reg.Counter("sched." + name).Add(v)
	}
}

// Close flushes and closes every sink. Every sink is closed even when an
// earlier one fails; the individual errors are aggregated with
// errors.Join, so no flush failure is masked by another.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	var errs []error
	for _, s := range r.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Snapshot is the cumulative counter state at one heartbeat, sampled by
// the pipeline. Counter fields are cumulative since measurement start; the
// queue levels are instantaneous.
type Snapshot struct {
	Cycle uint64

	Committed      uint64
	Fetched        uint64
	Issued         uint64
	Flushes        uint64
	Squashed       uint64
	DispatchStalls uint64
	Violations     uint64
	Mispredicts    uint64

	SchedOccupancy int
	LQ             int
	SQ             int

	// Topdown carries the cumulative per-category slot counters when
	// cycle accounting is attached (a fixed-size array keeps Snapshot
	// comparable, which Finish relies on).
	TopdownOn bool
	Topdown   [topdown.NumCategories]uint64
}

// Interval is the per-heartbeat delta between two snapshots — the row type
// of the CSV metrics dump and of the Chrome counter track.
type Interval struct {
	Index      int
	StartCycle uint64
	EndCycle   uint64

	Committed      uint64
	Fetched        uint64
	Issued         uint64
	Flushes        uint64
	Squashed       uint64
	DispatchStalls uint64
	Violations     uint64
	Mispredicts    uint64

	SchedOccupancy int
	LQ             int
	SQ             int

	// Topdown is the per-category slot delta in topdown.Names() order;
	// nil when cycle accounting is off, so JSONL/SSE rows are byte-for-
	// byte identical to runs that predate the feature.
	Topdown []uint64 `json:"Topdown,omitempty"`
}

// IPC returns committed μops per cycle within the interval.
func (iv Interval) IPC() float64 {
	if iv.EndCycle <= iv.StartCycle {
		return 0
	}
	return float64(iv.Committed) / float64(iv.EndCycle-iv.StartCycle)
}

func (s Snapshot) delta(prev Snapshot) Interval {
	iv := Interval{
		StartCycle:     prev.Cycle,
		EndCycle:       s.Cycle,
		Committed:      s.Committed - prev.Committed,
		Fetched:        s.Fetched - prev.Fetched,
		Issued:         s.Issued - prev.Issued,
		Flushes:        s.Flushes - prev.Flushes,
		Squashed:       s.Squashed - prev.Squashed,
		DispatchStalls: s.DispatchStalls - prev.DispatchStalls,
		Violations:     s.Violations - prev.Violations,
		Mispredicts:    s.Mispredicts - prev.Mispredicts,
		SchedOccupancy: s.SchedOccupancy,
		LQ:             s.LQ,
		SQ:             s.SQ,
	}
	if s.TopdownOn {
		iv.Topdown = make([]uint64, topdown.NumCategories)
		for i := range iv.Topdown {
			iv.Topdown[i] = s.Topdown[i] - prev.Topdown[i]
		}
	}
	return iv
}
