package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sched"
)

// --- metrics ---

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram("h", []uint64{1, 2, 4, 8})
	for _, v := range []uint64{0, 1, 2, 3, 4, 8, 9, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 2, 1, 2} // ≤1, ≤2, ≤4, ≤8, overflow
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 8 || h.Sum != 127 || h.Max != 100 {
		t.Errorf("N=%d Sum=%d Max=%d", h.N, h.Sum, h.Max)
	}
	if got := h.Mean(); got != 127.0/8 {
		t.Errorf("Mean = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("h", []uint64{10, 20, 30})
	var empty uint64
	if empty = h.Quantile(0.5); empty != 0 {
		t.Errorf("empty quantile = %d", empty)
	}
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(25) // third bucket
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.95); got != 30 {
		t.Errorf("p95 = %d, want 30", got)
	}
	h.Observe(1000) // overflow
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("p100 = %d, want Max", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]uint64{
		"empty":         {},
		"non-ascending": {4, 2},
		"duplicate":     {4, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds: no panic", name)
				}
			}()
			NewHistogram("bad", bounds)
		}()
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(2)
	r.Counter("b").Add(5)
	if got := r.Counter("a").Value(); got != 3 {
		t.Errorf("counter a = %d", got)
	}
	h1 := r.NewHistogram("h", []uint64{1, 2})
	h2 := r.NewHistogram("h", []uint64{9, 99}) // same name: first wins
	if h1 != h2 {
		t.Error("duplicate histogram registration returned a new histogram")
	}
	if r.Histogram("missing") != nil {
		t.Error("missing histogram not nil")
	}
	h1.Observe(2)

	d := r.Dump()
	if d.Counters["a"] != 3 || d.Counters["b"] != 5 {
		t.Errorf("dump counters = %v", d.Counters)
	}
	if len(d.Histograms) != 1 || d.Histograms[0].N != 1 || d.Histograms[0].P50 != 2 {
		t.Errorf("dump histograms = %+v", d.Histograms)
	}
	var nilReg *Registry
	if nilReg.Dump() != nil {
		t.Error("nil registry dump not nil")
	}
}

// --- recorder ---

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: KindFetch})
	r.ObserveCommit(&sched.UOp{D: &isa.DynInst{}}, 1)
	r.Heartbeat(Snapshot{})
	r.Finish(Snapshot{})
	r.FinalizeSched(map[string]uint64{"x": 1})
	if r.HeartbeatDue(1 << 60) {
		t.Error("nil recorder claims heartbeat due")
	}
	if r.Registry() != nil || r.Intervals() != 0 || r.EventCount(KindFetch) != 0 {
		t.Error("nil recorder leaked state")
	}
	if err := r.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestRecorderHeartbeat(t *testing.T) {
	mem := &MemorySink{}
	r := NewRecorder(100, mem)

	if r.HeartbeatDue(99) {
		t.Error("heartbeat due before interval")
	}
	if !r.HeartbeatDue(100) {
		t.Error("heartbeat not due at interval")
	}
	r.Heartbeat(Snapshot{Cycle: 100, Committed: 40, Fetched: 50, SchedOccupancy: 7})
	if r.HeartbeatDue(150) {
		t.Error("heartbeat due again before next interval")
	}
	r.Heartbeat(Snapshot{Cycle: 200, Committed: 90, Fetched: 100, SchedOccupancy: 9})
	// Final partial interval.
	r.Finish(Snapshot{Cycle: 250, Committed: 130, Fetched: 140})
	// Finish with an unchanged snapshot must not add an empty interval.
	r.Finish(Snapshot{Cycle: 250, Committed: 130, Fetched: 140})

	if len(mem.Intervals) != 3 {
		t.Fatalf("intervals = %d, want 3", len(mem.Intervals))
	}
	iv := mem.Intervals[1]
	if iv.Index != 1 || iv.StartCycle != 100 || iv.EndCycle != 200 || iv.Committed != 50 {
		t.Errorf("interval 1 = %+v", iv)
	}
	if got := iv.IPC(); got != 0.5 {
		t.Errorf("interval IPC = %v", got)
	}
	var total uint64
	for _, iv := range mem.Intervals {
		total += iv.Committed
	}
	if total != 130 {
		t.Errorf("interval committed sum = %d, want final 130", total)
	}
	if r.Intervals() != 3 {
		t.Errorf("Intervals() = %d", r.Intervals())
	}
	// Occupancy histogram saw each heartbeat's level.
	if h := r.Registry().Histogram("sched_occupancy"); h.N != 3 {
		t.Errorf("occupancy samples = %d", h.N)
	}
}

func TestRecorderSkippedBeatsCatchUp(t *testing.T) {
	r := NewRecorder(10)
	// Nothing happened for many intervals; one heartbeat at cycle 95 must
	// advance nextBeat past 95, not fire once per missed interval.
	r.Heartbeat(Snapshot{Cycle: 95})
	if r.HeartbeatDue(99) {
		t.Error("due again immediately after catch-up")
	}
	if !r.HeartbeatDue(100) {
		t.Error("not due at next boundary")
	}
}

func TestRecorderEmitAndCommit(t *testing.T) {
	mem := &MemorySink{}
	r := NewRecorder(0, mem)
	r.Emit(Event{Kind: KindFetch, Cycle: 1, Seq: 7})
	u := &sched.UOp{D: &isa.DynInst{Op: isa.OpLoad}, Cls: sched.ClassLd,
		DecodeCycle: 2, IssueCycle: 10, Port: 3}
	r.ObserveCommit(u, 12)

	if r.EventCount(KindFetch) != 1 || r.EventCount(KindCommit) != 1 {
		t.Errorf("event counts: fetch=%d commit=%d",
			r.EventCount(KindFetch), r.EventCount(KindCommit))
	}
	if len(mem.Events) != 2 {
		t.Fatalf("sink saw %d events", len(mem.Events))
	}
	c := mem.Events[1]
	if c.Kind != KindCommit || c.Seq != u.Seq() || c.Port != 3 || c.Cls != sched.ClassLd {
		t.Errorf("commit event = %+v", c)
	}
	h := r.Registry().Histogram("issue_delay.Ld")
	if h.N != 1 || h.Sum != 8 {
		t.Errorf("delay histogram N=%d Sum=%d, want 1/8", h.N, h.Sum)
	}
}

func TestFinalizeSched(t *testing.T) {
	r := NewRecorder(0)
	r.FinalizeSched(map[string]uint64{"issued": 42})
	if got := r.Registry().Counter("sched.issued").Value(); got != 42 {
		t.Errorf("sched.issued = %d", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(250).String() != "unknown" {
		t.Error("out-of-range kind not unknown")
	}
}

func TestFromProbeCoversAllProbeKinds(t *testing.T) {
	want := map[sched.ProbeKind]Kind{
		sched.ProbeSteerMDAHit:   KindSteerMDAHit,
		sched.ProbeSteerMDAMiss:  KindSteerMDAMiss,
		sched.ProbeSteerDep:      KindSteerDep,
		sched.ProbeSteerNewChain: KindSteerNew,
		sched.ProbePIQSplit:      KindPIQSplit,
		sched.ProbePIQShare:      KindPIQShare,
		sched.ProbePIQMerge:      KindPIQMerge,
		sched.ProbeSIQPromote:    KindSIQPromote,
	}
	for pk, k := range want {
		if got := FromProbe(pk); got != k {
			t.Errorf("FromProbe(%d) = %v, want %v", pk, got, k)
		}
	}
}

// --- sinks ---

// nopCloser adapts a bytes.Buffer to io.WriteCloser.
type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func TestChromeSinkRendersSpans(t *testing.T) {
	var buf bytes.Buffer
	c := NewChromeSinkWriter(nopCloser{&buf})

	c.Event(&Event{Kind: KindDecode, Cycle: 1, Seq: 5, Label: "alu r1"})
	c.Event(&Event{Kind: KindDispatch, Cycle: 3, Seq: 5, Port: 2})
	c.Event(&Event{Kind: KindIssue, Cycle: 6, Seq: 5, Arg: 5})
	c.Event(&Event{Kind: KindExec, Cycle: 6, Seq: 5, Arg: 8})
	c.Event(&Event{Kind: KindCommit, Cycle: 9, Seq: 5, Op: isa.OpIntALU})
	c.Event(&Event{Kind: KindFlush, Cycle: 10, Seq: 6})
	c.Interval(Interval{EndCycle: 100, SchedOccupancy: 3, Committed: 1})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("not trace_event JSON: %v", err)
	}
	var slice, instant, counter int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			slice++
			if e.Name != "alu r1" || e.TS != 3 || e.Dur != 5 || e.TID != 2 {
				t.Errorf("slice = %+v", e)
			}
		case "i":
			instant++
		case "C":
			counter++
		}
	}
	if slice != 1 || instant != 1 || counter != 2 {
		t.Errorf("slices=%d instants=%d counters=%d", slice, instant, counter)
	}
}

func TestChromeSinkDropsSquashedAndPartial(t *testing.T) {
	var buf bytes.Buffer
	c := NewChromeSinkWriter(nopCloser{&buf})
	// Squashed μop: no slice.
	c.Event(&Event{Kind: KindDecode, Cycle: 1, Seq: 5, Label: "x"})
	c.Event(&Event{Kind: KindSquash, Cycle: 2, Seq: 5})
	c.Event(&Event{Kind: KindCommit, Cycle: 3, Seq: 5})
	// Commit without a tracked decode (attached mid-run): no slice.
	c.Event(&Event{Kind: KindCommit, Cycle: 4, Seq: 6})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ph":"X"`) {
		t.Errorf("unexpected slice in %s", buf.String())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSinkWriter(nopCloser{&buf})
	s.Event(&Event{Kind: KindIssue, Cycle: 4, Seq: 9, Op: isa.OpLoad, Cls: sched.ClassLd, Arg: 3})
	s.Interval(Interval{Index: 0, EndCycle: 10, Committed: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "issue" || ev["op"] != "load" || ev["cls"] != "Ld" {
		t.Errorf("event line = %v", ev)
	}
	var iv map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &iv); err != nil {
		t.Fatal(err)
	}
	if iv["kind"] != "interval" {
		t.Errorf("interval line = %v", iv)
	}
}

func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSinkWriter(nopCloser{&buf})
	s.Event(&Event{Kind: KindFetch}) // ignored
	s.Interval(Interval{Index: 0, StartCycle: 0, EndCycle: 100, Committed: 50})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if got := strings.Split(lines[0], ","); len(got) != len(CSVHeader) {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,100,100,50,") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[1], ",0.5000,") {
		t.Errorf("row missing IPC: %q", lines[1])
	}
}

// --- benchmarks: the zero-cost-when-off claim ---

// BenchmarkEmitNil measures the off state: one nil check per emit site.
func BenchmarkEmitNil(b *testing.B) {
	var r *Recorder
	e := Event{Kind: KindIssue, Cycle: 1, Seq: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(e)
	}
}

// BenchmarkEmitMemory measures the on state with the cheapest sink.
func BenchmarkEmitMemory(b *testing.B) {
	r := NewRecorder(0, &MemorySink{})
	e := Event{Kind: KindIssue, Cycle: 1, Seq: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(e)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("h", []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 1023)
	}
}
