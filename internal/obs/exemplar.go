package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// ExemplarHist is a thread-safe latency histogram with float64 bucket
// bounds and per-bucket exemplars, built for the serving stack's
// lifecycle metrics (queue wait, service time, fsync, end-to-end). It
// differs from the registry Histogram in two ways: it is written from
// many goroutines (HTTP handlers, queue workers, the WAL observer), and
// each bucket remembers the last observation that landed in it together
// with an exemplar label — in practice the job's trace ID — so a
// tail-latency bucket on /metrics links straight to the offending job's
// span tree. Rendering follows the OpenMetrics exemplar syntax
// (`# {trace_id="..."} value`), which Prometheus parses when exemplar
// storage is enabled and plain-text scrapers can strip as a comment.
type ExemplarHist struct {
	name   string
	help   string
	bounds []float64 // inclusive upper bounds, ascending; +Inf implicit

	mu        sync.Mutex
	counts    []uint64 // len(bounds)+1, last = overflow (+Inf)
	sum       float64
	n         uint64
	exemplars []exemplar // len(bounds)+1, zero Value treated via ok flag
}

type exemplar struct {
	ok      bool
	labelID string
	value   float64
}

// NewExemplarHist builds a histogram with the given ascending inclusive
// upper bounds (seconds, for latency metrics). help is the HELP text.
func NewExemplarHist(name, help string, bounds []float64) *ExemplarHist {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &ExemplarHist{
		name:      name,
		help:      help,
		bounds:    b,
		counts:    make([]uint64, len(b)+1),
		exemplars: make([]exemplar, len(b)+1),
	}
}

// Observe records v. exemplarID, when non-empty, replaces the bucket's
// exemplar (last write wins — recency beats sampling for linking a hot
// bucket to a live trace). Safe on a nil receiver and for concurrent use.
func (h *ExemplarHist) Observe(v float64, exemplarID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (inclusive upper)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	if exemplarID != "" {
		h.exemplars[i] = exemplar{ok: true, labelID: exemplarID, value: v}
	}
	h.mu.Unlock()
}

// Count returns the number of observations so far (0 on nil).
func (h *ExemplarHist) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// exemplarHistDump is one histogram's consistent snapshot for rendering.
type exemplarHistDump struct {
	name      string
	help      string
	bounds    []float64
	counts    []uint64
	sum       float64
	n         uint64
	exemplars []exemplar
}

func (h *ExemplarHist) dump() exemplarHistDump {
	h.mu.Lock()
	defer h.mu.Unlock()
	return exemplarHistDump{
		name:      h.name,
		help:      h.help,
		bounds:    h.bounds,
		counts:    append([]uint64(nil), h.counts...),
		sum:       h.sum,
		n:         h.n,
		exemplars: append([]exemplar(nil), h.exemplars...),
	}
}

// promBound renders a float bucket bound; +Inf renders as "+Inf".
func promBound(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return promFloat(v)
}

// WritePromExemplarHists renders the histograms in the Prometheus text
// format with OpenMetrics-style exemplars: each `_bucket` line that has
// an exemplar is suffixed with ` # {trace_id="..."} <value>`. Histograms
// are rendered sorted by name; nil entries are skipped. labels, when
// non-nil, are attached to every sample (matching WritePrometheus).
func WritePromExemplarHists(w io.Writer, hists []*ExemplarHist, labels PromLabels) error {
	dumps := make([]exemplarHistDump, 0, len(hists))
	for _, h := range hists {
		if h != nil {
			dumps = append(dumps, h.dump())
		}
	}
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].name < dumps[j].name })
	lbl := renderLabels(labels, "")
	for _, d := range dumps {
		mn := promName(d.name)
		help := d.help
		if help == "" {
			help = "Histogram " + d.name + "."
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", mn, help, mn); err != nil {
			return err
		}
		var cum uint64
		for i := 0; i <= len(d.bounds); i++ {
			cum += d.counts[i]
			bound := math.Inf(+1)
			if i < len(d.bounds) {
				bound = d.bounds[i]
			}
			le := renderLabels(labels, `le="`+promBound(bound)+`"`)
			line := fmt.Sprintf("%s_bucket%s %d", mn, le, cum)
			if ex := d.exemplars[i]; ex.ok {
				line += fmt.Sprintf(` # {trace_id="%s"} %s`, promEscape(ex.labelID), promFloat(ex.value))
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			mn, lbl, promFloat(d.sum), mn, lbl, d.n); err != nil {
			return err
		}
	}
	return nil
}
