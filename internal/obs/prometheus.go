package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the metrics
// registry. The renderer works from a MetricsDump — an immutable snapshot —
// rather than the live Registry, so an HTTP handler never races the
// simulation goroutine: the dump is taken on the simulation goroutine (an
// OnInterval hook, or the manifest at end of run) and handed over under
// the caller's lock.

// PromLabels is one sample's label set. Values are escaped on render;
// names are used as-is and must be valid Prometheus label names.
type PromLabels map[string]string

// PromGauge is one gauge sample for WritePromGauges.
type PromGauge struct {
	Name   string
	Help   string
	Labels PromLabels
	Value  float64
}

// promName maps a registry metric name to a valid Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*): every run of invalid characters (including
// a leading digit) becomes one underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	prevUnder := false
	for i, c := range name {
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		switch {
		case valid:
			b.WriteRune(c)
			prevUnder = c == '_'
		case !prevUnder:
			b.WriteByte('_')
			prevUnder = true
		}
	}
	out := b.String()
	if out == "" {
		return "_"
	}
	return out
}

// promEscape escapes a label value per the text format: backslash, double
// quote and newline.
func promEscape(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// renderLabels renders {k="v",...} with keys sorted, or "" when empty.
// extra, when non-empty, is appended last (already-rendered pairs).
func renderLabels(labels PromLabels, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, promEscape(labels[k]))
	}
	if extra != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the dump in the Prometheus text format: every
// counter as `<prefix><name>_total`, every histogram as a cumulative
// `_bucket{le="..."}` series (the registry's inclusive upper bounds match
// Prometheus `le` semantics exactly) plus `_sum` and `_count`. labels are
// attached to every sample. Output is sorted by metric name, so rendering
// is deterministic.
func WritePrometheus(w io.Writer, prefix string, d *MetricsDump, labels PromLabels) error {
	if d == nil {
		return nil
	}
	lbl := renderLabels(labels, "")

	names := make([]string, 0, len(d.Counters))
	for name := range d.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := prefix + promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s Registry counter %q.\n# TYPE %s counter\n%s%s %d\n",
			mn, name, mn, mn, lbl, d.Counters[name]); err != nil {
			return err
		}
	}

	hists := append([]HistogramDump(nil), d.Histograms...)
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	for _, h := range hists {
		mn := prefix + promName(h.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s Registry histogram %q.\n# TYPE %s histogram\n",
			mn, h.Name, mn); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := renderLabels(labels, `le="`+promFloat(float64(bound))+`"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", mn, le, cum); err != nil {
				return err
			}
		}
		inf := renderLabels(labels, `le="+Inf"`)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %d\n%s_count%s %d\n",
			mn, inf, h.N, mn, lbl, h.Sum, mn, lbl, h.N); err != nil {
			return err
		}
	}
	return nil
}

// WritePromGauges renders gauge samples in the text format. Gauges are
// sorted by name (then rendered label set), and HELP/TYPE headers are
// emitted once per name, so several samples of one gauge that differ only
// in labels form a single valid family.
func WritePromGauges(w io.Writer, gauges []PromGauge) error {
	gs := append([]PromGauge(nil), gauges...)
	sort.SliceStable(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
	prev := ""
	for _, g := range gs {
		name := promName(g.Name)
		if name != prev {
			help := g.Help
			if help == "" {
				help = "Gauge " + g.Name + "."
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name); err != nil {
				return err
			}
			prev = name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(g.Labels, ""), promFloat(g.Value)); err != nil {
			return err
		}
	}
	return nil
}
