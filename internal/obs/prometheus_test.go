package obs

import (
	"bufio"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promTestDump builds a fixed registry snapshot exercising every renderer
// path: plain and punctuation-heavy counter names, and a histogram with
// samples in interior, first and overflow buckets.
func promTestDump() *MetricsDump {
	reg := NewRegistry()
	reg.Counter("sched.steer-dc").Add(42)
	reg.Counter("commit").Add(100000)
	reg.Counter("9starts.with.digit").Inc()
	h := reg.NewHistogram("issue_delay.Ld", []uint64{1, 4, 16, 64})
	for _, v := range []uint64{0, 1, 2, 3, 9, 17, 100, 1000} {
		h.Observe(v)
	}
	return reg.Dump()
}

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	labels := PromLabels{"workload": `ha"sh\join` + "\n2", "arch": "Ballerino"}
	if err := WritePrometheus(&b, "ballerino_", promTestDump(), labels); err != nil {
		t.Fatal(err)
	}
	if err := WritePromGauges(&b, []PromGauge{
		{Name: "ballserved_job_ipc", Help: "Committed μops per cycle.", Labels: PromLabels{"job": "1"}, Value: 2.125},
		{Name: "ballserved_job_ipc", Labels: PromLabels{"job": "2"}, Value: 0.5},
		{Name: "ballserved_jobs_running", Value: 1},
	}); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// scanProm is a minimal text-format parser: enough to verify our own
// output (names, escaped label values, float values), not a general one.
func scanProm(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := promSample{labels: map[string]string{}, value: val}
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			s.name = key[:i]
			parseLabels(t, key[i+1:len(key)-1], s.labels)
		} else {
			s.name = key
		}
		for _, c := range s.name {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				t.Fatalf("invalid metric name character %q in %q", c, s.name)
			}
		}
		if s.name[0] >= '0' && s.name[0] <= '9' {
			t.Fatalf("metric name %q starts with a digit", s.name)
		}
		samples = append(samples, s)
	}
	return samples
}

// parseLabels parses `k="v",...` undoing the text-format escaping.
func parseLabels(t *testing.T, s string, into map[string]string) {
	t.Helper()
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			t.Fatalf("malformed label pair in %q", s)
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				i++
				if i >= len(rest) {
					t.Fatalf("dangling escape in %q", s)
				}
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(rest[i])
				default:
					t.Fatalf("unknown escape \\%c in %q", rest[i], s)
				}
			case '"':
				goto closed
			default:
				val.WriteByte(rest[i])
			}
		}
		t.Fatalf("unterminated label value in %q", s)
	closed:
		into[key] = val.String()
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
}

// TestPrometheusScansBack parses the rendered exposition and verifies the
// format invariants: escaped label values round-trip, histogram buckets
// are cumulative and monotone, the +Inf bucket equals _count, and _sum
// matches the histogram's sum.
func TestPrometheusScansBack(t *testing.T) {
	dump := promTestDump()
	wl := `ha"sh\join` + "\nx"
	var b strings.Builder
	if err := WritePrometheus(&b, "ballerino_", dump, PromLabels{"workload": wl}); err != nil {
		t.Fatal(err)
	}
	samples := scanProm(t, b.String())

	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
		if s.labels["workload"] != wl {
			t.Errorf("label value round-trip failed: got %q want %q", s.labels["workload"], wl)
		}
	}

	if got := byName["ballerino_sched_steer_dc_total"]; len(got) != 1 || got[0].value != 42 {
		t.Errorf("sched.steer-dc counter: got %+v, want one sample of 42", got)
	}
	if got := byName["ballerino__starts_with_digit_total"]; len(got) != 1 || got[0].value != 1 {
		t.Errorf("digit-leading counter: got %+v", got)
	}

	buckets := byName["ballerino_issue_delay_Ld_bucket"]
	if len(buckets) != 5 {
		t.Fatalf("bucket series length = %d, want 5 (4 bounds + +Inf)", len(buckets))
	}
	var prev float64 = -1
	var inf float64
	for _, s := range buckets {
		if s.value < prev {
			t.Errorf("bucket counts not cumulative: %v after %v", s.value, prev)
		}
		prev = s.value
		if s.labels["le"] == "+Inf" {
			inf = s.value
		}
	}
	count := byName["ballerino_issue_delay_Ld_count"][0].value
	sum := byName["ballerino_issue_delay_Ld_sum"][0].value
	h := dump.Histograms[0]
	if inf != float64(h.N) || count != float64(h.N) {
		t.Errorf("+Inf bucket %v / _count %v, want %d", inf, count, h.N)
	}
	if sum != float64(h.Sum) {
		t.Errorf("_sum = %v, want %d", sum, h.Sum)
	}
	// The le bound of each finite bucket must parse back to the registry
	// bound (inclusive upper bounds == Prometheus le semantics).
	for i, s := range buckets[:4] {
		le, err := strconv.ParseFloat(s.labels["le"], 64)
		if err != nil || le != float64(h.Bounds[i]) {
			t.Errorf("bucket %d le = %q, want %d", i, s.labels["le"], h.Bounds[i])
		}
	}
}

// TestRecorderIntervalFanOut verifies that every registered OnInterval
// hook observes the same heartbeat stream as the sinks.
func TestRecorderIntervalFanOut(t *testing.T) {
	mem := &MemorySink{}
	r := NewRecorder(100, mem)
	var a, b []Interval
	r.OnInterval(func(iv Interval) { a = append(a, iv) })
	r.OnInterval(func(iv Interval) { b = append(b, iv) })

	r.Start(Snapshot{Cycle: 0})
	r.Heartbeat(Snapshot{Cycle: 100, Committed: 10})
	r.Heartbeat(Snapshot{Cycle: 200, Committed: 25})
	r.Finish(Snapshot{Cycle: 250, Committed: 30})

	if len(mem.Intervals) != 3 || len(a) != 3 || len(b) != 3 {
		t.Fatalf("fan-out counts: sink=%d a=%d b=%d, want 3 each", len(mem.Intervals), len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], mem.Intervals[i]) || !reflect.DeepEqual(b[i], mem.Intervals[i]) {
			t.Errorf("interval %d differs between hook and sink", i)
		}
	}
	var nilRec *Recorder
	nilRec.OnInterval(func(Interval) {}) // must not panic
}
