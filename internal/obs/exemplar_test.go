package obs

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// exemplarTestHists builds a fixed pair of histograms exercising every
// renderer path: interior, first and overflow buckets, a bucket with no
// exemplar, exemplar replacement (last write wins), and an escaped
// exemplar label.
func exemplarTestHists() []*ExemplarHist {
	wait := NewExemplarHist("ballserved_queue_wait_seconds",
		"Time from submission to a worker picking the job up.",
		[]float64{0.001, 0.01, 0.1, 1})
	wait.Observe(0.0004, "aaaa000011112222")
	wait.Observe(0.05, "bbbb000011112222")
	wait.Observe(0.07, "cccc000011112222") // replaces bbbb in the 0.1 bucket
	wait.Observe(0.5, "")                  // counted, no exemplar
	wait.Observe(30, `dd"dd\0001`)         // overflow bucket, escaped label

	fsync := NewExemplarHist("ballserved_wal_fsync_seconds", "",
		[]float64{0.0005, 0.005, 0.05})
	fsync.Observe(0.002, "eeee000011112222")
	return []*ExemplarHist{fsync, wait} // unsorted on purpose; renderer sorts
}

func TestExemplarHistGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePromExemplarHists(&b, exemplarTestHists(), PromLabels{"arch": "Ballerino"}); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exemplar.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// stripExemplars removes OpenMetrics exemplar suffixes so the plain
// text-format parser (scanProm) accepts the exposition — exactly what a
// non-OpenMetrics scraper does by treating " # ..." as a comment.
func stripExemplars(text string) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if j := strings.Index(line, " # {"); j >= 0 {
			lines[i] = line[:j]
		}
	}
	return strings.Join(lines, "\n")
}

// TestExemplarHistScansBack parses the rendered exposition (exemplars
// stripped) and verifies the histogram invariants: cumulative monotone
// buckets, +Inf == _count, _sum matches, and the exemplar suffixes
// themselves carry the expected trace IDs and values.
func TestExemplarHistScansBack(t *testing.T) {
	hists := exemplarTestHists()
	var b strings.Builder
	if err := WritePromExemplarHists(&b, hists, nil); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := scanProm(t, stripExemplars(text))

	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}

	buckets := byName["ballserved_queue_wait_seconds_bucket"]
	if len(buckets) != 5 {
		t.Fatalf("bucket series length = %d, want 5 (4 bounds + +Inf)", len(buckets))
	}
	var prev float64 = -1
	var inf float64
	for _, s := range buckets {
		if s.value < prev {
			t.Errorf("bucket counts not cumulative: %v after %v", s.value, prev)
		}
		prev = s.value
		if s.labels["le"] == "+Inf" {
			inf = s.value
		}
	}
	count := byName["ballserved_queue_wait_seconds_count"][0].value
	if inf != 5 || count != 5 {
		t.Errorf("+Inf bucket %v / _count %v, want 5", inf, count)
	}
	wantSum := 0.0004 + 0.05 + 0.07 + 0.5 + 30
	sum := byName["ballserved_queue_wait_seconds_sum"][0].value
	if diff := sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("_sum = %v, want %v", sum, wantSum)
	}

	// Exemplar suffixes: the 0.1 bucket's exemplar must be the LAST
	// observation that landed there, and its value must parse back.
	var line01 string
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, `ballserved_queue_wait_seconds_bucket{le="0.1"}`) {
			line01 = l
		}
	}
	if line01 == "" {
		t.Fatal("no le=0.1 bucket line")
	}
	j := strings.Index(line01, " # {")
	if j < 0 {
		t.Fatalf("le=0.1 bucket has no exemplar: %q", line01)
	}
	suffix := line01[j+3:]
	if !strings.Contains(suffix, `trace_id="cccc000011112222"`) {
		t.Errorf("exemplar not last-write-wins: %q", suffix)
	}
	valStr := suffix[strings.LastIndexByte(suffix, ' ')+1:]
	if v, err := strconv.ParseFloat(valStr, 64); err != nil || v != 0.07 {
		t.Errorf("exemplar value = %q, want 0.07 (%v)", valStr, err)
	}

	// The 1.0 bucket got an observation without an exemplar ID: it must
	// render as a plain bucket line.
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, `ballserved_queue_wait_seconds_bucket{le="1"}`) && strings.Contains(l, " # {") {
			t.Errorf("bucket without exemplar rendered one: %q", l)
		}
	}
}

func TestExemplarHistNilSafe(t *testing.T) {
	var h *ExemplarHist
	h.Observe(1, "x") // must not panic
	if h.Count() != 0 {
		t.Error("nil hist has nonzero count")
	}
	var b strings.Builder
	if err := WritePromExemplarHists(&b, []*ExemplarHist{nil, nil}, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil hists rendered output: %q", b.String())
	}
}

func TestExemplarHistConcurrent(t *testing.T) {
	h := NewExemplarHist("x", "", []float64{1, 2, 3})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i%5), "t")
		}
	}()
	for i := 0; i < 100; i++ {
		var b strings.Builder
		if err := WritePromExemplarHists(&b, []*ExemplarHist{h}, nil); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if h.Count() != 1000 {
		t.Errorf("count = %d, want 1000", h.Count())
	}
}
