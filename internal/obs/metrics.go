package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	Name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Histogram is a fixed-bucket histogram over uint64 samples. Bounds are
// inclusive upper bounds in ascending order; one overflow bucket catches
// everything above the last bound. Buckets are fixed at construction —
// observation is a binary search plus three additions, no allocation.
type Histogram struct {
	Name   string
	Bounds []uint64 // ascending inclusive upper bounds (len B)
	Counts []uint64 // len B+1; Counts[B] is the overflow bucket

	N   uint64 // samples observed
	Sum uint64 // sum of samples
	Max uint64 // largest sample
}

// NewHistogram builds a histogram with the given inclusive upper bounds.
// Bounds must be ascending and non-empty; the constructor panics otherwise
// (metric construction is programmer-controlled, not input-controlled).
func NewHistogram(name string, bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	return &Histogram{
		Name:   name,
		Bounds: append([]uint64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1): the bound
// of the bucket the quantile falls into, or Max for the overflow bucket.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(q * float64(h.N))
	if target >= h.N {
		target = h.N - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Registry holds named counters and histograms. It is not safe for
// concurrent use: the simulator is single-threaded by construction.
type Registry struct {
	counters map[string]*Counter
	corder   []string
	hists    map[string]*Histogram
	horder   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	r.counters[name] = c
	r.corder = append(r.corder, name)
	return c
}

// NewHistogram registers a fixed-bucket histogram. Registering the same
// name twice returns the existing histogram (bounds of the first win).
func (r *Registry) NewHistogram(name string, bounds []uint64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(name, bounds)
	r.hists[name] = h
	r.horder = append(r.horder, name)
	return h
}

// Histogram returns the named histogram, or nil.
func (r *Registry) Histogram(name string) *Histogram { return r.hists[name] }

// HistogramDump is a histogram's serialisable state.
type HistogramDump struct {
	Name   string   `json:"name"`
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	N      uint64   `json:"n"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
	Mean   float64  `json:"mean"`
	P50    uint64   `json:"p50"`
	P99    uint64   `json:"p99"`
}

// MetricsDump is the registry's serialisable state, embedded in the run
// manifest.
type MetricsDump struct {
	Counters   map[string]uint64 `json:"counters"`
	Histograms []HistogramDump   `json:"histograms"`
}

// Dump snapshots the registry (nil-safe: returns nil). The snapshot is a
// deep copy — bucket slices included — so it stays immutable while the
// registry keeps accumulating, and may be handed to another goroutine
// (the telemetry /metrics handler renders dumps taken on the simulation
// goroutine).
func (r *Registry) Dump() *MetricsDump {
	if r == nil {
		return nil
	}
	d := &MetricsDump{Counters: make(map[string]uint64, len(r.counters))}
	for name, c := range r.counters {
		d.Counters[name] = c.Value()
	}
	for _, name := range r.horder {
		h := r.hists[name]
		d.Histograms = append(d.Histograms, HistogramDump{
			Name:   h.Name,
			Bounds: append([]uint64(nil), h.Bounds...),
			Counts: append([]uint64(nil), h.Counts...),
			N:      h.N,
			Sum:    h.Sum,
			Max:    h.Max,
			Mean:   h.Mean(),
			P50:    h.Quantile(0.50),
			P99:    h.Quantile(0.99),
		})
	}
	return d
}
