package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// --- Chrome trace_event sink ---

// TraceEvent is one entry of the Chrome trace_event format (the JSON
// object format consumed by chrome://tracing and Perfetto).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level trace_event JSON object.
type chromeFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// uopSpan accumulates one μop's stage timestamps between decode and
// commit/squash.
type uopSpan struct {
	label           string
	dispatch, ready uint64
	issue, done     uint64
	port            int
	haveDispatch    bool
	haveIssue       bool
}

// ChromeSink renders the event stream as a Chrome trace_event JSON file:
// one complete ("X") slice per committed μop on its issue port's track,
// instant events for flushes, and counter ("C") tracks fed by the interval
// heartbeats. Events are buffered and written timestamp-sorted at Close,
// so every track's timestamps are monotonic. Cycle numbers are reported as
// microseconds (1 cycle = 1 µs) purely for viewer ergonomics.
type ChromeSink struct {
	w        io.WriteCloser
	events   []TraceEvent
	inflight map[uint64]*uopSpan
	closed   bool
}

// Track layout of the generated trace.
const (
	chromePID      = 0
	chromeTIDFlush = 98 // instant flush markers
	chromeTIDBeat  = 99 // counter tracks
)

// NewChromeSink writes a Chrome trace to path.
func NewChromeSink(path string) (*ChromeSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: chrome sink: %w", err)
	}
	return NewChromeSinkWriter(f), nil
}

// NewChromeSinkWriter writes a Chrome trace to w, closing it on Close.
func NewChromeSinkWriter(w io.WriteCloser) *ChromeSink {
	return &ChromeSink{w: w, inflight: make(map[uint64]*uopSpan)}
}

// Event implements Sink.
func (c *ChromeSink) Event(e *Event) {
	switch e.Kind {
	case KindDecode:
		c.inflight[e.Seq] = &uopSpan{label: e.Label}
	case KindDispatch:
		if sp := c.inflight[e.Seq]; sp != nil {
			sp.dispatch, sp.port, sp.haveDispatch = e.Cycle, int(e.Port), true
		}
	case KindIssue:
		if sp := c.inflight[e.Seq]; sp != nil {
			sp.issue, sp.ready, sp.haveIssue = e.Cycle, e.Arg, true
		}
	case KindExec:
		if sp := c.inflight[e.Seq]; sp != nil {
			sp.done = e.Arg
		}
	case KindCommit:
		sp := c.inflight[e.Seq]
		if sp == nil || !sp.haveDispatch || !sp.haveIssue {
			return
		}
		delete(c.inflight, e.Seq)
		name := sp.label
		if name == "" {
			name = e.Op.String()
		}
		end := sp.done
		if end < sp.issue {
			end = sp.issue
		}
		dur := end - sp.dispatch
		if dur == 0 {
			dur = 1
		}
		c.events = append(c.events, TraceEvent{
			Name: name, Cat: e.Cls.String(), Ph: "X",
			TS: sp.dispatch, Dur: dur, PID: chromePID, TID: sp.port,
			Args: map[string]any{
				"seq":    e.Seq,
				"ready":  sp.ready,
				"issue":  sp.issue,
				"commit": e.Cycle,
			},
		})
	case KindFlush:
		c.events = append(c.events, TraceEvent{
			Name: "flush", Ph: "i", TS: e.Cycle, PID: chromePID,
			TID: chromeTIDFlush, S: "g",
			Args: map[string]any{"bound": e.Seq},
		})
	case KindSquash:
		delete(c.inflight, e.Seq)
	}
}

// Interval implements Sink: counter tracks for occupancy/queue pressure
// and interval IPC.
func (c *ChromeSink) Interval(iv Interval) {
	c.events = append(c.events,
		TraceEvent{
			Name: "occupancy", Ph: "C", TS: iv.EndCycle, PID: chromePID, TID: chromeTIDBeat,
			Args: map[string]any{"sched": iv.SchedOccupancy, "lq": iv.LQ, "sq": iv.SQ},
		},
		TraceEvent{
			Name: "interval", Ph: "C", TS: iv.EndCycle, PID: chromePID, TID: chromeTIDBeat,
			Args: map[string]any{"ipc": iv.IPC(), "committed": iv.Committed, "flushes": iv.Flushes},
		},
	)
}

// Close implements Sink: sorts buffered events by timestamp (making every
// track monotonic) and writes the trace_event JSON object.
func (c *ChromeSink) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	sort.SliceStable(c.events, func(i, j int) bool { return c.events[i].TS < c.events[j].TS })
	enc := json.NewEncoder(c.w)
	err := enc.Encode(chromeFile{
		TraceEvents:     c.events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"unit": "1 ts = 1 core cycle"},
	})
	if cerr := c.w.Close(); err == nil {
		err = cerr
	}
	c.events, c.inflight = nil, nil
	return err
}

// --- JSONL event-log sink ---

// jsonlEvent is the wire form of one event line.
type jsonlEvent struct {
	Kind  string `json:"kind"`
	Cycle uint64 `json:"cycle"`
	Seq   uint64 `json:"seq"`
	PC    uint64 `json:"pc,omitempty"`
	Op    string `json:"op,omitempty"`
	Cls   string `json:"cls,omitempty"`
	Port  int16  `json:"port,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
	Label string `json:"label,omitempty"`
}

// JSONLSink streams every event as one JSON object per line. Interval
// snapshots are written as {"kind":"interval",...} lines on the same
// stream, so a single file replays the whole run.
type JSONLSink struct {
	w      io.WriteCloser
	buf    *bufio.Writer
	enc    *json.Encoder
	closed bool
}

// NewJSONLSink writes a JSONL event log to path.
func NewJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: jsonl sink: %w", err)
	}
	return NewJSONLSinkWriter(f), nil
}

// NewJSONLSinkWriter writes a JSONL event log to w, closing it on Close.
func NewJSONLSinkWriter(w io.WriteCloser) *JSONLSink {
	buf := bufio.NewWriterSize(w, 1<<16)
	return &JSONLSink{w: w, buf: buf, enc: json.NewEncoder(buf)}
}

// Event implements Sink.
func (s *JSONLSink) Event(e *Event) {
	le := jsonlEvent{
		Kind:  e.Kind.String(),
		Cycle: e.Cycle,
		Seq:   e.Seq,
		PC:    e.PC,
		Port:  e.Port,
		Arg:   e.Arg,
		Label: e.Label,
	}
	if e.Kind == KindCommit || e.Kind == KindDispatch || e.Kind == KindIssue {
		le.Op = e.Op.String()
		le.Cls = e.Cls.String()
	}
	s.enc.Encode(le)
}

// Interval implements Sink.
func (s *JSONLSink) Interval(iv Interval) {
	s.enc.Encode(struct {
		Kind string `json:"kind"`
		Interval
	}{Kind: "interval", Interval: iv})
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.buf.Flush()
	if cerr := s.w.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- CSV interval sink ---

// CSVHeader is the column layout of the interval metrics dump.
var CSVHeader = []string{
	"interval", "start_cycle", "end_cycle", "cycles",
	"committed", "fetched", "issued", "flushes", "squashed",
	"dispatch_stalls", "violations", "mispredicts", "ipc",
	"sched_occupancy", "lq", "sq",
}

// CSVSink writes one row per interval heartbeat; events are ignored.
type CSVSink struct {
	w      io.WriteCloser
	buf    *bufio.Writer
	closed bool
}

// NewCSVSink writes interval metrics CSV to path.
func NewCSVSink(path string) (*CSVSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: csv sink: %w", err)
	}
	return NewCSVSinkWriter(f), nil
}

// NewCSVSinkWriter writes interval metrics CSV to w, closing it on Close.
func NewCSVSinkWriter(w io.WriteCloser) *CSVSink {
	s := &CSVSink{w: w, buf: bufio.NewWriter(w)}
	for i, col := range CSVHeader {
		if i > 0 {
			s.buf.WriteByte(',')
		}
		s.buf.WriteString(col)
	}
	s.buf.WriteByte('\n')
	return s
}

// Event implements Sink (ignored).
func (s *CSVSink) Event(*Event) {}

// Interval implements Sink.
func (s *CSVSink) Interval(iv Interval) {
	fmt.Fprintf(s.buf, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d\n",
		iv.Index, iv.StartCycle, iv.EndCycle, iv.EndCycle-iv.StartCycle,
		iv.Committed, iv.Fetched, iv.Issued, iv.Flushes, iv.Squashed,
		iv.DispatchStalls, iv.Violations, iv.Mispredicts, iv.IPC(),
		iv.SchedOccupancy, iv.LQ, iv.SQ)
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.buf.Flush()
	if cerr := s.w.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- In-memory sink ---

// MemorySink buffers every event and interval in memory — the consumer
// surface for cmd/pipetrace and tests.
type MemorySink struct {
	Events    []Event
	Intervals []Interval
}

// Event implements Sink.
func (m *MemorySink) Event(e *Event) { m.Events = append(m.Events, *e) }

// Interval implements Sink.
func (m *MemorySink) Interval(iv Interval) { m.Intervals = append(m.Intervals, iv) }

// Close implements Sink (no-op: the buffers stay readable).
func (m *MemorySink) Close() error { return nil }
