// Package exp implements the per-figure experiment harnesses: for every
// table and figure in the paper's evaluation, a function runs the required
// simulations and renders the same rows/series the paper reports.
// cmd/experiments prints them; bench_test.go and the test suite drive them
// programmatically.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro"
)

// Options tunes experiment cost. Zero values select defaults.
type Options struct {
	// Ops is the dynamic μop budget per simulation (default 150000).
	Ops int
	// Footprint overrides the kernel data footprint (default 8 MiB).
	Footprint int64
	// Workloads restricts the kernel set (default: all).
	Workloads []string
}

func (o Options) withDefaults() Options {
	if o.Ops == 0 {
		o.Ops = 150_000
	}
	if len(o.Workloads) == 0 {
		o.Workloads = ballerino.Workloads()
	}
	return o
}

func (o Options) run(arch, wl string) (*ballerino.Result, error) {
	return ballerino.Run(ballerino.Config{
		Arch:           arch,
		Workload:       wl,
		FootprintBytes: o.Footprint,
		MaxOps:         o.Ops,
	})
}

// suite runs arch over every workload (in parallel — each simulation is
// independent and deterministic) and returns results by workload.
func (o Options) suite(arch string) (map[string]*ballerino.Result, error) {
	out := make(map[string]*ballerino.Result, len(o.Workloads))
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		sem      = make(chan struct{}, runtime.GOMAXPROCS(0))
	)
	for _, wl := range o.Workloads {
		wl := wl
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := o.run(arch, wl)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			out[wl] = r
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// geoSpeedup returns the geometric-mean ratio of res IPC over base IPC.
func geoSpeedup(res, base map[string]*ballerino.Result) float64 {
	var ratios []float64
	for wl, r := range res {
		if b, ok := base[wl]; ok && b.IPC > 0 {
			ratios = append(ratios, r.IPC/b.IPC)
		}
	}
	return ballerino.GeoMean(ratios)
}

// Row is one labelled series of values in an experiment result.
type Row struct {
	Label  string
	Values map[string]float64
}

// Table is a rendered experiment: an ordered set of rows with shared
// column names.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n", t.Title)
	width := 14
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&sb, "%-*s", width+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%12s", c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", width+2, r.Label)
		for _, c := range t.Columns {
			if v, ok := r.Values[c]; ok {
				fmt.Fprintf(&sb, "%12.3f", v)
			} else {
				fmt.Fprintf(&sb, "%12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Get returns the value at (label, column).
func (t *Table) Get(label, column string) (float64, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			v, ok := r.Values[column]
			return v, ok
		}
	}
	return 0, false
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
