// Package exp implements the per-figure experiment harnesses: for every
// table and figure in the paper's evaluation, a function runs the required
// simulations and renders the same rows/series the paper reports.
// cmd/experiments prints them; bench_test.go and the test suite drive them
// programmatically.
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro"
)

// Options tunes experiment cost. Zero values select defaults.
type Options struct {
	// Ops is the dynamic μop budget per simulation (default 150000).
	Ops int
	// Footprint overrides the kernel data footprint (default 8 MiB).
	Footprint int64
	// Workloads restricts the kernel set (default: all).
	Workloads []string
	// Parallelism bounds the simulations in flight per experiment
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
}

// traces shares μop generation across every experiment in the process:
// each figure re-simulates the same kernels under a different timing
// model, so the functional traces are interpreted once, not per figure.
var traces = ballerino.NewTraceCache(0)

func (o Options) withDefaults() Options {
	if o.Ops == 0 {
		o.Ops = 150_000
	}
	if len(o.Workloads) == 0 {
		for _, k := range ballerino.Kernels() {
			if !k.Extra {
				o.Workloads = append(o.Workloads, k.Name)
			}
		}
	}
	return o
}

func (o Options) cfg(arch, wl string) ballerino.Config {
	return ballerino.Config{
		Arch:           arch,
		Workload:       wl,
		FootprintBytes: o.Footprint,
		MaxOps:         o.Ops,
	}
}

func (o Options) run(arch, wl string) (*ballerino.Result, error) {
	cfg := o.cfg(arch, wl)
	if t, err := traces.Prepare(context.Background(), cfg); err == nil {
		cfg.Trace = t
	}
	return ballerino.Run(cfg)
}

// suite runs arch over every workload as one campaign — each simulation
// is independent and deterministic — and returns results by workload.
func (o Options) suite(arch string) (map[string]*ballerino.Result, error) {
	cfgs := make([]ballerino.Config, len(o.Workloads))
	for i, wl := range o.Workloads {
		cfgs[i] = o.cfg(arch, wl)
	}
	batch := ballerino.RunAll(context.Background(), cfgs, ballerino.BatchOptions{
		Parallelism: o.Parallelism,
		Cache:       traces,
	})
	if err := batch.FirstErr(); err != nil {
		return nil, err
	}
	out := make(map[string]*ballerino.Result, len(o.Workloads))
	for i, rr := range batch.Results {
		out[o.Workloads[i]] = rr.Result
	}
	return out, nil
}

// geoSpeedup returns the geometric-mean ratio of res IPC over base IPC.
func geoSpeedup(res, base map[string]*ballerino.Result) float64 {
	var ratios []float64
	for wl, r := range res {
		if b, ok := base[wl]; ok && b.IPC > 0 {
			ratios = append(ratios, r.IPC/b.IPC)
		}
	}
	return ballerino.GeoMean(ratios)
}

// Row is one labelled series of values in an experiment result.
type Row struct {
	Label  string
	Values map[string]float64
}

// Table is a rendered experiment: an ordered set of rows with shared
// column names.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n", t.Title)
	width := 14
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&sb, "%-*s", width+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%12s", c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", width+2, r.Label)
		for _, c := range t.Columns {
			if v, ok := r.Values[c]; ok {
				fmt.Fprintf(&sb, "%12.3f", v)
			} else {
				fmt.Fprintf(&sb, "%12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Get returns the value at (label, column).
func (t *Table) Get(label, column string) (float64, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			v, ok := r.Values[column]
			return v, ok
		}
	}
	return 0, false
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
