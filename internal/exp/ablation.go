package exp

import (
	"fmt"

	"repro"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/workload"
)

// ablationVariant describes one configuration of the ablation study.
type ablationVariant struct {
	name string
	note string
	opt  config.Options
}

func fullBallerino() core.Options {
	return core.Options{MDASteering: true, Sharing: true}
}

func ablationVariants() []ablationVariant {
	with := func(mod func(*core.Options)) *core.Options {
		o := fullBallerino()
		mod(&o)
		return &o
	}
	return []ablationVariant{
		{"default", "full Ballerino (Table II)", config.Options{}},
		{"no-sharing", "P-IQ sharing off (Step 2)", config.Options{Ballerino: with(func(o *core.Options) { o.Sharing = false })}},
		{"no-mda", "M-dependence-aware steering off", config.Options{Ballerino: with(func(o *core.Options) { o.MDASteering = false })}},
		{"ideal-sharing", "§IV-D constraints removed", config.Options{Ballerino: with(func(o *core.Options) { o.IdealSharing = true })}},
		{"siq-first", "select priority inverted (S-IQ over P-IQ heads)", config.Options{Ballerino: with(func(o *core.Options) { o.SIQFirstSelect = true })}},
		{"always-switch", "head pointer alternates every cycle", config.Options{Ballerino: with(func(o *core.Options) { o.AlwaysSwitchHead = true })}},
		{"siq-16", "S-IQ doubled to 16 entries", config.Options{SIQSize: 16}},
		{"siq-window-2", "speculative window halved to 2", config.Options{SIQWindow: 2}},
		{"piq-depth-6", "P-IQ depth halved to 6", config.Options{PIQDepth: 6}},
		{"no-prefetch", "stride prefetcher off", config.Options{DisablePrefetch: true}},
		{"no-mdp", "memory dependence prediction off", config.Options{DisableMDP: true}},
	}
}

// runMachine simulates one (machine, workload) pair and returns IPC.
func runMachine(arch config.Arch, opt config.Options, wl string, o Options) (float64, error) {
	opt.MaxCycles = uint64(o.Ops) * 200
	m, err := config.NewMachine(arch, 8, opt)
	if err != nil {
		return 0, err
	}
	w, err := workload.ByName(wl, workload.Params{Footprint: o.Footprint})
	if err != nil {
		return 0, err
	}
	tr := prog.MustExecute(w.Program, o.Ops)
	p, err := pipeline.New(m.Pipeline, tr.Ops, m.Factory)
	if err != nil {
		return 0, err
	}
	s, err := p.Run(uint64(len(tr.Ops)))
	if err != nil {
		return 0, fmt.Errorf("%s on %s: %w", arch, wl, err)
	}
	return s.IPC(), nil
}

// Ablations quantifies the design choices DESIGN.md calls out: each
// variant's geomean IPC relative to the full Ballerino configuration.
func Ablations(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Ablation study — Ballerino design choices (geomean IPC vs default)",
		Columns: []string{"rel_ipc"},
		Notes:   "each row disables or perturbs one design decision",
	}
	var baseline map[string]float64
	for _, v := range ablationVariants() {
		ipcs := map[string]float64{}
		for _, wl := range o.Workloads {
			ipc, err := runMachine(config.ArchBallerino, v.opt, wl, o)
			if err != nil {
				return nil, err
			}
			ipcs[wl] = ipc
		}
		if v.name == "default" {
			baseline = ipcs
		}
		var ratios []float64
		for wl, ipc := range ipcs {
			if b := baseline[wl]; b > 0 {
				ratios = append(ratios, ipc/b)
			}
		}
		t.Rows = append(t.Rows, Row{
			Label:  v.name,
			Values: map[string]float64{"rel_ipc": ballerino.GeoMean(ratios)},
		})
	}
	return t, nil
}
