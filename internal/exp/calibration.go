package exp

import (
	"context"
	"sort"

	"repro"
	"repro/internal/workload"
)

// Calibration runs every catalogued calibrated operating point
// (workload.CalibPresets) on the unified out-of-order scheduler and
// tabulates the measured steady-state IPC against the Carroll–Lin
// closed-form prediction. The error column is the model-validation
// number TestCalibratedIPC holds under 10%; the table makes the same
// cross-check inspectable at experiment fidelity.
func Calibration(o Options) (*Table, error) {
	o = o.withDefaults()
	names := make([]string, 0, len(workload.CalibPresets))
	for name := range workload.CalibPresets {
		names = append(names, name)
	}
	sort.Strings(names)

	// Warm up one fifth of the budget: the prediction describes the
	// steady-state recurrence throughput, not the loop's fill transient.
	warm := o.Ops / 5
	cfgs := make([]ballerino.Config, len(names))
	for i, name := range names {
		cfgs[i] = ballerino.Config{
			Arch: "OoO", Workload: name,
			MaxOps: o.Ops - warm, WarmupOps: warm,
		}
	}
	batch := ballerino.RunAll(context.Background(), cfgs, ballerino.BatchOptions{
		Parallelism: o.Parallelism,
		Cache:       traces,
	})
	if err := batch.FirstErr(); err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Calibrated operating points: measured IPC vs queuing-model prediction (OoO)",
		Columns: []string{"predicted", "measured", "error_pct"},
		Notes:   "prediction is the Carroll–Lin bottleneck closed form over the kernel's dependence chains",
	}
	for i, name := range names {
		pred, err := workload.PredictIPC(workload.CalibPresets[name], 8)
		if err != nil {
			return nil, err
		}
		meas := batch.Results[i].Result.IPC
		t.Rows = append(t.Rows, Row{Label: name, Values: map[string]float64{
			"predicted": pred,
			"measured":  meas,
			"error_pct": 100 * (meas - pred) / pred,
		}})
	}
	return t, nil
}
