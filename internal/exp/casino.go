package exp

import (
	"fmt"

	"repro"
	"repro/internal/config"
)

// casinoCandidates enumerates 96-entry cascades in the spirit of Table II's
// note: "we find the optimal combination of the S-IQ(s) and in-order IQ in
// size that achieves the best performance using the same number of entries
// as the baseline".
func casinoCandidates() [][]int {
	return [][]int{
		{8, 40, 40, 8}, // the paper's pick
		{8, 80, 8},     // one deep S-IQ
		{16, 32, 32, 16},
		{8, 28, 28, 32}, // larger final in-order IQ
		{4, 30, 30, 32},
		{8, 8, 40, 40},
		{48, 40, 8},
		{8, 88},
	}
}

// CasinoSearch reproduces the Table II methodology: sweep CASINO cascade
// shapes at a fixed 96-entry budget and report geomean IPC over the suite.
func CasinoSearch(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Table II methodology — CASINO cascade search (96 entries)",
		Columns: []string{"geomean_ipc"},
		Notes:   "paper picks 8/40/40/8 as the best-performing combination",
	}
	for _, sizes := range casinoCandidates() {
		var ipcs []float64
		for _, wl := range o.Workloads {
			ipc, err := runMachine(config.ArchCASINO, config.Options{CasinoSizes: sizes}, wl, o)
			if err != nil {
				return nil, err
			}
			ipcs = append(ipcs, ipc)
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprint(sizes),
			Values: map[string]float64{"geomean_ipc": ballerino.GeoMean(ipcs)},
		})
	}
	return t, nil
}
