package exp

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro"
	"repro/internal/topdown"
)

// cpiStackWorkloads is the tier-1 micro set the CPI-stack comparison runs
// over — the same grid as the golden corpus and BenchmarkHotLoop.
var cpiStackWorkloads = []string{"stream", "pointer-chase", "store-load", "branchy"}

// CPIStacks runs every architecture over the tier-1 kernels with top-down
// cycle accounting attached and renders one table per kernel: rows are
// architectures, columns the per-category CPI contributions (which sum to
// the "cpi" column). This is the cross-architecture bottleneck comparison
// the accounting exists for: it shows *why* one scheduler beats another on
// a kernel, not just that it does.
func CPIStacks(o Options) ([]*Table, error) {
	o = o.withDefaults()
	wls := o.Workloads
	if len(wls) > len(cpiStackWorkloads) {
		// The default workload set is the full kernel list; the CPI-stack
		// grid sticks to the tier-1 four unless explicitly restricted.
		wls = cpiStackWorkloads
	}
	archs := ballerino.Architectures()

	var cfgs []ballerino.Config
	for _, wl := range wls {
		for _, arch := range archs {
			cfg := o.cfg(arch, wl)
			cfg.Topdown = true
			cfgs = append(cfgs, cfg)
		}
	}
	batch := ballerino.RunAll(context.Background(), cfgs, ballerino.BatchOptions{
		Parallelism: o.Parallelism,
		Cache:       traces,
	})
	if err := batch.FirstErr(); err != nil {
		return nil, err
	}

	columns := append([]string{"cpi"}, topdown.Names()...)
	tables := make([]*Table, 0, len(wls))
	for i, wl := range wls {
		t := &Table{
			Title:   fmt.Sprintf("CPI stack on %s (cycles per instruction by slot category)", wl),
			Columns: columns,
			Notes:   "category columns sum to cpi; base is useful issue, the rest are stalls",
		}
		for j, arch := range archs {
			res := batch.Results[i*len(archs)+j].Result
			r := res.Topdown
			if r == nil {
				return nil, fmt.Errorf("exp: %s/%s returned no topdown report", arch, wl)
			}
			values := map[string]float64{"cpi": r.CPI}
			for name, v := range r.CPIStack {
				values[name] = v
			}
			t.Rows = append(t.Rows, Row{Label: arch, Values: values})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// WriteCSV renders the table as CSV: a title comment row, the header, then
// one row per label. Missing cells render empty.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row := make([]string, 0, len(header))
		row = append(row, r.Label)
		for _, c := range t.Columns {
			if v, ok := r.Values[c]; ok {
				row = append(row, strconv.FormatFloat(v, 'f', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
