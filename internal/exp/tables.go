package exp

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/mem"
)

// TableI renders the reproduced Table I: core and memory system
// configurations for each issue width.
func TableI() string {
	var sb strings.Builder
	sb.WriteString("## Table I — core and memory system configurations\n")
	for _, w := range []int{8, 4, 2} {
		m, err := config.NewMachine(config.ArchOoO, w, config.Options{})
		if err != nil {
			fmt.Fprintf(&sb, "width %d: %v\n", w, err)
			continue
		}
		p := m.Pipeline
		fmt.Fprintf(&sb, "%d-wide @%.1f GHz: decode/dispatch %d, issue %d, commit %d; "+
			"ROB %d, LQ %d, SQ %d, PRF %d int + %d fp; recovery %d cycles\n",
			w, m.ClockGHz, p.RenameWidth, p.IssueWidth, p.CommitWidth,
			p.ROBSize, p.LQSize, p.SQSize, p.Rename.IntRegs, p.Rename.FpRegs,
			p.RecoveryPenalty)
	}
	mc := mem.DefaultConfig()
	fmt.Fprintf(&sb, "L1I/D %d KiB %d-way %dc %d MSHRs (stride prefetcher); "+
		"L2 %d KiB %d-way %dc; L3 %d KiB %d-way %dc; DDR4 %d banks\n",
		mc.L1D.SizeBytes>>10, mc.L1D.Ways, mc.L1D.HitLatency, mc.L1D.MSHRs,
		mc.L2.SizeBytes>>10, mc.L2.Ways, mc.L2.HitLatency,
		mc.L3.SizeBytes>>10, mc.L3.Ways, mc.L3.HitLatency, mc.DRAM.Banks)
	sb.WriteString("MDP: 1024-entry SSIT, 7-bit SSID; TAGE + 512×4 BTB\n")
	return sb.String()
}

// TableII renders the reproduced Table II: scheduling-window
// configurations per microarchitecture at 8-wide.
func TableII() string {
	var sb strings.Builder
	sb.WriteString("## Table II — scheduling window configurations (8-wide)\n")
	rows := []struct {
		arch config.Arch
		desc func(m *config.Machine) string
	}{
		{config.ArchInO, func(*config.Machine) string { return "96-entry in-order IQ" }},
		{config.ArchOoO, func(*config.Machine) string { return "96-entry out-of-order IQ" }},
		{config.ArchCES, func(m *config.Machine) string {
			return fmt.Sprintf("%d × %d-entry P-IQ", m.NumPIQs, m.PIQDepth)
		}},
		{config.ArchCASINO, func(*config.Machine) string {
			return "8-entry S-IQ0, 40-entry S-IQ1, 40-entry S-IQ2, 8-entry in-order IQ"
		}},
		{config.ArchFXA, func(*config.Machine) string { return "3-stage IXU + 48-entry out-of-order IQ" }},
		{config.ArchBallerino, func(m *config.Machine) string {
			return fmt.Sprintf("8-entry S-IQ + %d × %d-entry P-IQ", m.NumPIQs, m.PIQDepth)
		}},
		{config.ArchBallerino12, func(m *config.Machine) string {
			return fmt.Sprintf("8-entry S-IQ + %d × %d-entry P-IQ", m.NumPIQs, m.PIQDepth)
		}},
	}
	for _, r := range rows {
		m, err := config.NewMachine(r.arch, 8, config.Options{})
		if err != nil {
			fmt.Fprintf(&sb, "%-14s %v\n", r.arch, err)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %s\n", r.arch, r.desc(m))
	}
	return sb.String()
}
