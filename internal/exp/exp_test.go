package exp

import (
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: two contrasting kernels, small
// budget. These tests check structure and directional claims, not the
// calibrated magnitudes (EXPERIMENTS.md records those from full runs).
func fastOpts() Options {
	return Options{Ops: 15_000, Workloads: []string{"compute", "sparse-trees"}}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "x", Values: map[string]float64{"a": 1, "b": 2}},
			{Label: "y", Values: map[string]float64{"a": 3}},
		},
		Notes: "hello",
	}
	out := tb.String()
	for _, want := range []string{"demo", "x", "y", "1.000", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if v, ok := tb.Get("x", "b"); !ok || v != 2 {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if _, ok := tb.Get("x", "zzz"); ok {
		t.Error("Get found missing column")
	}
	if _, ok := tb.Get("zzz", "a"); ok {
		t.Error("Get found missing row")
	}
}

func TestFig3cStructure(t *testing.T) {
	tb, err := Fig3c(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// All four microarchitectures × four classes.
	if len(tb.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tb.Rows))
	}
	// Directional claim: the in-order core's LdC ready→issue delay far
	// exceeds the out-of-order core's (the whole point of the figure).
	inoR2I, _ := tb.Get("InO/LdC", "rdy→issue")
	oooR2I, _ := tb.Get("OoO/LdC", "rdy→issue")
	if inoR2I <= oooR2I {
		t.Errorf("InO LdC r2i %.1f not above OoO %.1f", inoR2I, oooR2I)
	}
}

func TestFig11Structure(t *testing.T) {
	tb, err := Fig11(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(fig11Archs) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	ooo, _ := tb.Get("OoO", "GEOMEAN")
	casino, _ := tb.Get("CASINO", "GEOMEAN")
	ball, _ := tb.Get("Ballerino", "GEOMEAN")
	if !(ooo > 1 && ball > 1) {
		t.Errorf("speedups not > 1: OoO %.2f Ballerino %.2f", ooo, ball)
	}
	// The paper's headline ordering: CASINO < Ballerino ≈ OoO.
	if casino >= ball {
		t.Errorf("CASINO %.2f not below Ballerino %.2f", casino, ball)
	}
}

func TestFig13MonotoneOverTechniques(t *testing.T) {
	tb, err := Fig13(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ces, _ := tb.Get("CES", "speedup")
	ball, _ := tb.Get("Ballerino", "speedup")
	if ball <= ces {
		t.Errorf("full Ballerino %.3f not above CES %.3f", ball, ces)
	}
}

func TestFig14Fractions(t *testing.T) {
	tb, err := Fig14(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		sum := r.Values["S-IQ"] + r.Values["P-IQ"]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s fractions sum to %v", r.Label, sum)
		}
	}
}

func TestFig15NormalisedToOoO(t *testing.T) {
	tb, err := Fig15(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	oooTotal, ok := tb.Get("OoO", "TOTAL")
	if !ok || oooTotal < 0.999 || oooTotal > 1.001 {
		t.Errorf("OoO total = %v, want 1.0", oooTotal)
	}
	ballTotal, _ := tb.Get("Ballerino", "TOTAL")
	if ballTotal >= 1 {
		t.Errorf("Ballerino energy %v not below OoO", ballTotal)
	}
}

func TestFig16BallerinoMoreEfficient(t *testing.T) {
	tb, err := Fig16(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ball, _ := tb.Get("Ballerino", "efficiency")
	if ball <= 1 {
		t.Errorf("Ballerino efficiency %v not above OoO", ball)
	}
}

func TestFig17cMoreQueuesHelp(t *testing.T) {
	o := Options{Ops: 15_000, Workloads: []string{"sparse-trees"}}
	tb, err := Fig17c(o)
	if err != nil {
		t.Fatal(err)
	}
	three, _ := tb.Get("3 P-IQs", "speedup")
	eleven, _ := tb.Get("11 P-IQs", "speedup")
	if eleven <= three {
		t.Errorf("11 P-IQs %.3f not above 3 P-IQs %.3f on chain-rich kernel", eleven, three)
	}
}

func TestMDPImpactRemovesViolations(t *testing.T) {
	o := Options{Ops: 25_000, Workloads: []string{"store-load"}}
	tb, err := MDPImpact(o)
	if err != nil {
		t.Fatal(err)
	}
	// Short runs pay the initial training violations; the full-budget run
	// in EXPERIMENTS.md reaches the paper's ≈96%.
	removed, _ := tb.Get("store-load", "removed")
	if removed < 0.8 {
		t.Errorf("MDP removed %.0f%% of violations, want ≥80%%", removed*100)
	}
	// The paper's 1.5× aggregate speedup does not reproduce here (see
	// EXPERIMENTS.md §III-B); assert only that honouring the predictions
	// is roughly performance-neutral.
	speedup, _ := tb.Get("store-load", "speedup")
	if speedup < 0.85 {
		t.Errorf("MDP speedup %.2f — predictions too costly", speedup)
	}
}

func TestTablesRender(t *testing.T) {
	t1 := TableI()
	for _, want := range []string{"8-wide", "ROB 224", "L1I/D 32 KiB", "SSIT"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := TableII()
	for _, want := range []string{"96-entry", "7 × 12-entry", "11 × 12-entry", "IXU"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestAblationsStructure(t *testing.T) {
	tb, err := Ablations(Options{Ops: 10_000, Workloads: []string{"sparse-trees"}})
	if err != nil {
		t.Fatal(err)
	}
	def, ok := tb.Get("default", "rel_ipc")
	if !ok || def < 0.999 || def > 1.001 {
		t.Errorf("default rel_ipc = %v, want 1.0", def)
	}
	noShare, _ := tb.Get("no-sharing", "rel_ipc")
	if noShare >= 1 {
		t.Errorf("removing sharing did not hurt the chain-rich kernel: %v", noShare)
	}
	if len(tb.Rows) < 10 {
		t.Errorf("ablation rows = %d", len(tb.Rows))
	}
}

func TestFig4Structure(t *testing.T) {
	o := Options{Ops: 10_000, Workloads: []string{"sparse-trees"}}
	tb, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Fractions (excluding the speedup column) sum to 1.
	r := tb.Rows[0]
	sum := r.Values["steer_dc"] + r.Values["alloc_rdy"] + r.Values["alloc_nrdy"] +
		r.Values["stall_rdy"] + r.Values["stall_nrdy"]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("steering fractions sum to %v", sum)
	}
}

func TestFig6aStructure(t *testing.T) {
	o := Options{Ops: 10_000, Workloads: []string{"sparse-trees"}}
	tb, err := Fig6a(o)
	if err != nil {
		t.Fatal(err)
	}
	r := tb.Rows[0]
	sum := r.Values["issue"] + r.Values["stall_mdep"] + r.Values["stall_data"] + r.Values["empty"]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("head fractions sum to %v", sum)
	}
}

func TestFig6bCountBeatsDepth(t *testing.T) {
	o := Options{Ops: 10_000, Workloads: []string{"sparse-trees"}}
	tb, err := Fig6b(o)
	if err != nil {
		t.Fatal(err)
	}
	few, _ := tb.Get("3 P-IQs", "depth12")
	many, _ := tb.Get("11 P-IQs", "depth12")
	if many <= few {
		t.Errorf("count sensitivity missing: %v vs %v", few, many)
	}
}

func TestFig12Structure(t *testing.T) {
	tb, err := Fig12(Options{Ops: 10_000, Workloads: []string{"compute"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 4 archs × 3 classes
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if _, ok := tb.Get("Ballerino/LdC", "total"); !ok {
		t.Error("missing Ballerino/LdC row")
	}
}

func TestFig17aWiderIsFaster(t *testing.T) {
	o := Options{Ops: 10_000, Workloads: []string{"compute"}}
	tb, err := Fig17a(o)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := tb.Get("OoO", "w2")
	w8, _ := tb.Get("OoO", "w8")
	if w8 <= w2 {
		t.Errorf("8-wide OoO (%v) not above 2-wide (%v)", w8, w2)
	}
}

func TestFig17bLevelsOrdered(t *testing.T) {
	o := Options{Ops: 10_000, Workloads: []string{"compute"}}
	tb, err := Fig17b(o)
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := tb.Get("Ballerino@L4", "speedup")
	lo, _ := tb.Get("Ballerino@L1", "speedup")
	if hi <= lo {
		t.Errorf("L4 speedup %v not above L1 %v", hi, lo)
	}
	eHi, _ := tb.Get("Ballerino@L4", "energy")
	eLo, _ := tb.Get("Ballerino@L1", "energy")
	if eLo >= eHi {
		t.Errorf("L1 energy %v not below L4 %v", eLo, eHi)
	}
}

func TestCasinoSearchFindsPaperPick(t *testing.T) {
	o := Options{Ops: 10_000, Workloads: []string{"compute"}}
	tb, err := CasinoSearch(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	pick, ok := tb.Get("[8 40 40 8]", "geomean_ipc")
	if !ok || pick <= 0 {
		t.Fatal("paper cascade missing from the search")
	}
	worst, _ := tb.Get("[8 88]", "geomean_ipc")
	if worst >= pick {
		t.Errorf("degenerate cascade (%v) not below the paper pick (%v)", worst, pick)
	}
}
