package exp

import (
	"fmt"

	"repro"
)

// fig11Archs is the Figure 11 comparison set.
var fig11Archs = []string{"CES", "CASINO", "FXA", "Ballerino", "Ballerino-12", "OoO", "OoO-oldest"}

// fig13Variants is the Figure 13 step sequence.
var fig13Variants = []string{"CES", "CES+MDA", "Ballerino-step1", "Ballerino-step2", "Ballerino", "Ballerino-ideal"}

// Fig3c reproduces Figure 3c: the average decode-to-issue delay breakdown
// of InO, CES, CASINO and OoO, per instruction class (Ld, LdC, Rst).
func Fig3c(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 3c — decode-to-issue cycle breakdown (avg over kernels)",
		Columns: []string{"dec→disp", "disp→rdy", "rdy→issue", "total"},
		Notes:   "rows are arch/class; paper shows the same four microarchitectures",
	}
	for _, arch := range []string{"InO", "CES", "CASINO", "OoO"} {
		suite, err := o.suite(arch)
		if err != nil {
			return nil, err
		}
		for _, cls := range []string{"Ld", "LdC", "Rst", "All"} {
			var d2d, d2r, r2i, n float64
			for _, r := range suite {
				d := r.Delay[cls]
				w := float64(d.Count)
				d2d += d.DecodeToDispatch * w
				d2r += d.DispatchToReady * w
				r2i += d.ReadyToIssue * w
				n += w
			}
			if n == 0 {
				continue
			}
			t.Rows = append(t.Rows, Row{
				Label: arch + "/" + cls,
				Values: map[string]float64{
					"dec→disp":  d2d / n,
					"disp→rdy":  d2r / n,
					"rdy→issue": r2i / n,
					"total":     (d2d + d2r + r2i) / n,
				},
			})
		}
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the breakdown of CES steering outcomes,
// split by dispatch readiness, per kernel.
func Fig4(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 4 — CES steering outcome breakdown (fractions)",
		Columns: []string{"steer_dc", "alloc_rdy", "alloc_nrdy", "stall_rdy", "stall_nrdy", "speedup"},
		Notes:   "paper: 27% steer along DCs; Allocate and Stall dominated by Ready μops",
	}
	ino, err := o.suite("InO")
	if err != nil {
		return nil, err
	}
	for _, wl := range o.Workloads {
		r, err := o.run("CES", wl)
		if err != nil {
			return nil, err
		}
		c := r.SchedCounters
		total := float64(c["steer_dc"] + c["steer_m"] + c["alloc_ready"] + c["alloc_nonready"] +
			c["stall_ready"] + c["stall_nonready"])
		if total == 0 {
			continue
		}
		t.Rows = append(t.Rows, Row{
			Label: wl,
			Values: map[string]float64{
				"steer_dc":   float64(c["steer_dc"]+c["steer_m"]) / total,
				"alloc_rdy":  float64(c["alloc_ready"]) / total,
				"alloc_nrdy": float64(c["alloc_nonready"]) / total,
				"stall_rdy":  float64(c["stall_ready"]) / total,
				"stall_nrdy": float64(c["stall_nonready"]) / total,
				"speedup":    r.IPC / ino[wl].IPC,
			},
		})
	}
	return t, nil
}

// Fig6a reproduces Figure 6a: what P-IQ heads spend cycles on in the Step 2
// design (issue, M-dependence stalls, data stalls, empty).
func Fig6a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 6a — P-IQ head cycle breakdown, Step 2 design (fractions)",
		Columns: []string{"issue", "stall_mdep", "stall_data", "empty"},
		Notes:   "paper: ≈9% of issue stalls from M-dependent loads; heads issue only ≈6% of cycles",
	}
	for _, wl := range o.Workloads {
		r, err := o.run("Ballerino-step2", wl)
		if err != nil {
			return nil, err
		}
		c := r.SchedCounters
		total := float64(c["head_issue"] + c["head_stall_mdep"] + c["head_stall_dep"] + c["head_empty"])
		if total == 0 {
			continue
		}
		t.Rows = append(t.Rows, Row{
			Label: wl,
			Values: map[string]float64{
				"issue":      float64(c["head_issue"]) / total,
				"stall_mdep": float64(c["head_stall_mdep"]) / total,
				"stall_data": float64(c["head_stall_dep"]) / total,
				"empty":      float64(c["head_empty"]) / total,
			},
		})
	}
	return t, nil
}

// Fig6b reproduces Figure 6b: Step-2 IPC sensitivity to the number and
// size of P-IQs (geomean speedup over InO).
func Fig6b(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 6b — Step 2 sensitivity to P-IQ count and size (speedup over InO)",
		Columns: []string{"depth6", "depth12", "depth24"},
		Notes:   "paper: sensitive to the count, much less to the size",
	}
	ino, err := o.suite("InO")
	if err != nil {
		return nil, err
	}
	for _, n := range []int{3, 5, 7, 9, 11} {
		row := Row{Label: fmt.Sprintf("%d P-IQs", n), Values: map[string]float64{}}
		for _, depth := range []int{6, 12, 24} {
			var ratios []float64
			for _, wl := range o.Workloads {
				r, err := ballerino.Run(ballerino.Config{
					Arch: "Ballerino-step2", Workload: wl,
					FootprintBytes: o.Footprint, MaxOps: o.Ops,
					NumPIQs: n, PIQDepth: depth,
				})
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, r.IPC/ino[wl].IPC)
			}
			row.Values[fmt.Sprintf("depth%d", depth)] = ballerino.GeoMean(ratios)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig11 reproduces Figure 11: speedup over the in-order core for every
// 8-wide microarchitecture, per kernel plus the geometric mean.
func Fig11(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 11 — speedup over InO (8-wide)",
		Columns: append(append([]string{}, o.Workloads...), "GEOMEAN"),
		Notes:   "paper: CES 2.4×, CASINO 2.1×, FXA 2.8×, Ballerino 2.7×, Ballerino-12 ≈98% of OoO; oldest-first +2%",
	}
	base, err := o.suite("InO")
	if err != nil {
		return nil, err
	}
	for _, arch := range fig11Archs {
		suite, err := o.suite(arch)
		if err != nil {
			return nil, err
		}
		row := Row{Label: arch, Values: map[string]float64{}}
		var ratios []float64
		for _, wl := range o.Workloads {
			v := suite[wl].IPC / base[wl].IPC
			row.Values[wl] = v
			ratios = append(ratios, v)
		}
		row.Values["GEOMEAN"] = ballerino.GeoMean(ratios)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 reproduces Figure 12: the scheduling-delay breakdown of Ballerino
// compared to CES, CASINO and OoO.
func Fig12(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 12 — scheduling performance (decode-to-issue breakdown)",
		Columns: []string{"dec→disp", "disp→rdy", "rdy→issue", "total"},
		Notes:   "paper: Ballerino's decode→dispatch ≪ CES, slightly above CASINO; LdC ready→issue ≈ 0",
	}
	for _, arch := range []string{"CES", "CASINO", "Ballerino", "OoO"} {
		suite, err := o.suite(arch)
		if err != nil {
			return nil, err
		}
		for _, cls := range []string{"Ld", "LdC", "Rst"} {
			var d2d, d2r, r2i, n float64
			for _, r := range suite {
				d := r.Delay[cls]
				w := float64(d.Count)
				d2d += d.DecodeToDispatch * w
				d2r += d.DispatchToReady * w
				r2i += d.ReadyToIssue * w
				n += w
			}
			if n == 0 {
				continue
			}
			t.Rows = append(t.Rows, Row{
				Label: arch + "/" + cls,
				Values: map[string]float64{
					"dec→disp":  d2d / n,
					"disp→rdy":  d2r / n,
					"rdy→issue": r2i / n,
					"total":     (d2d + d2r + r2i) / n,
				},
			})
		}
	}
	return t, nil
}

// Fig13 reproduces Figure 13: geomean speedup over InO as the proposed
// techniques are applied step by step.
func Fig13(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 13 — step-by-step performance gain over InO",
		Columns: []string{"speedup", "delta_pp"},
		Notes:   "paper deltas: +MDA +4pp, Step1 +7pp over CES, Step2 +5pp, Step3 +13pp, ideal +5pp",
	}
	base, err := o.suite("InO")
	if err != nil {
		return nil, err
	}
	prev := 0.0
	for _, arch := range fig13Variants {
		suite, err := o.suite(arch)
		if err != nil {
			return nil, err
		}
		sp := geoSpeedup(suite, base)
		delta := 0.0
		if prev > 0 {
			delta = (sp - prev) * 100
		}
		t.Rows = append(t.Rows, Row{Label: arch, Values: map[string]float64{
			"speedup": sp, "delta_pp": delta,
		}})
		prev = sp
	}
	return t, nil
}

// Fig14 reproduces Figure 14: the fraction of μops issued from the S-IQ
// versus the P-IQs for each Ballerino step.
func Fig14(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 14 — issue source breakdown per design step",
		Columns: []string{"S-IQ", "P-IQ"},
		Notes:   "paper: the S-IQ speculatively issues ≈41% of dynamic μops at Step 1",
	}
	for _, arch := range []string{"Ballerino-step1", "Ballerino-step2", "Ballerino", "Ballerino-ideal"} {
		suite, err := o.suite(arch)
		if err != nil {
			return nil, err
		}
		var siq, piq float64
		for _, r := range suite {
			siq += float64(r.SchedCounters["issued_siq"])
			piq += float64(r.SchedCounters["issued_piq"])
		}
		if siq+piq == 0 {
			continue
		}
		t.Rows = append(t.Rows, Row{Label: arch, Values: map[string]float64{
			"S-IQ": siq / (siq + piq), "P-IQ": piq / (siq + piq),
		}})
	}
	return t, nil
}

// Fig15 reproduces Figure 15: core-wide energy by component, normalised to
// the out-of-order core.
func Fig15(o Options) (*Table, error) {
	o = o.withDefaults()
	archs := []string{"CES", "CASINO", "FXA", "Ballerino", "Ballerino-12", "OoO"}
	comps := []string{"L1 I/D$", "Fetch/Decode", "Rename", "Steer", "MDP", "Schedule", "LSQ", "PRF", "FUs"}
	t := &Table{
		Title:   "Figure 15 — core energy by component, normalised to OoO",
		Columns: append(append([]string{}, comps...), "TOTAL"),
		Notes:   "paper: Ballerino ≈62% of OoO, ≈CES; CASINO and FXA higher",
	}
	totals := map[string]map[string]float64{}
	var oooTotal float64
	for _, arch := range archs {
		suite, err := o.suite(arch)
		if err != nil {
			return nil, err
		}
		sums := map[string]float64{}
		for _, r := range suite {
			for c, v := range r.EnergyByComponent {
				sums[c] += v
			}
		}
		totals[arch] = sums
		if arch == "OoO" {
			for _, v := range sums {
				oooTotal += v
			}
		}
	}
	for _, arch := range archs {
		row := Row{Label: arch, Values: map[string]float64{}}
		var tot float64
		for _, c := range comps {
			v := totals[arch][c] / oooTotal
			row.Values[c] = v
			tot += v
		}
		row.Values["TOTAL"] = tot
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig16 reproduces Figure 16: energy efficiency (performance per energy,
// 1/EDP) normalised to the out-of-order core.
func Fig16(o Options) (*Table, error) {
	o = o.withDefaults()
	archs := []string{"CES", "CASINO", "FXA", "Ballerino", "Ballerino-12", "OoO"}
	t := &Table{
		Title:   "Figure 16 — energy efficiency (1/EDP) normalised to OoO",
		Columns: []string{"efficiency"},
		Notes:   "paper: Ballerino +22% vs OoO, +9% vs CES, +42% vs CASINO, +5% vs FXA",
	}
	eff := map[string]float64{}
	for _, arch := range archs {
		suite, err := o.suite(arch)
		if err != nil {
			return nil, err
		}
		var edps []float64
		for _, r := range suite {
			edps = append(edps, r.EDP)
		}
		eff[arch] = 1 / ballerino.GeoMean(edps)
	}
	for _, arch := range archs {
		t.Rows = append(t.Rows, Row{Label: arch, Values: map[string]float64{
			"efficiency": eff[arch] / eff["OoO"],
		}})
	}
	return t, nil
}

// Fig17a reproduces Figure 17a: execution-time speedup over the 2-wide
// in-order core across issue widths, accounting for each width's clock.
func Fig17a(o Options) (*Table, error) {
	o = o.withDefaults()
	archs := []string{"InO", "CASINO", "CES", "FXA", "Ballerino", "OoO"}
	widths := []int{2, 4, 8, 10}
	t := &Table{
		Title:   "Figure 17a — speedup over 2-wide InO across issue widths (wall-clock)",
		Columns: []string{"w2", "w4", "w8", "w10"},
		Notes:   "paper: InO and CASINO flatten beyond 8-wide; CES/Ballerino/FXA/OoO keep scaling",
	}
	// Baseline: 2-wide InO execution time per workload.
	baseTime := map[string]float64{}
	for _, wl := range o.Workloads {
		r, err := ballerino.Run(ballerino.Config{
			Arch: "InO", Width: 2, Workload: wl,
			FootprintBytes: o.Footprint, MaxOps: o.Ops,
		})
		if err != nil {
			return nil, err
		}
		baseTime[wl] = r.TimeSeconds
	}
	for _, arch := range archs {
		row := Row{Label: arch, Values: map[string]float64{}}
		for _, w := range widths {
			var ratios []float64
			for _, wl := range o.Workloads {
				r, err := ballerino.Run(ballerino.Config{
					Arch: arch, Width: w, Workload: wl,
					FootprintBytes: o.Footprint, MaxOps: o.Ops,
				})
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, baseTime[wl]/r.TimeSeconds)
			}
			row.Values[fmt.Sprintf("w%d", w)] = ballerino.GeoMean(ratios)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig17b reproduces Figure 17b: speedup, energy and efficiency of Ballerino
// and OoO at the four DVFS levels, normalised to CES at L4.
func Fig17b(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 17b — DVFS levels (normalised to CES @ L4)",
		Columns: []string{"speedup", "energy", "efficiency"},
		Notes:   "paper: Ballerino@L3 ≈ CES power budget with +5% perf; Ballerino@L2 ≈ CES perf at +9% efficiency",
	}
	type point struct{ time, energy float64 }
	measure := func(arch, level string) (point, error) {
		var times, energies []float64
		for _, wl := range o.Workloads {
			r, err := ballerino.Run(ballerino.Config{
				Arch: arch, Workload: wl, DVFS: level,
				FootprintBytes: o.Footprint, MaxOps: o.Ops,
			})
			if err != nil {
				return point{}, err
			}
			times = append(times, r.TimeSeconds)
			energies = append(energies, r.EnergyPJ)
		}
		return point{ballerino.GeoMean(times), ballerino.GeoMean(energies)}, nil
	}
	base, err := measure("CES", "L4")
	if err != nil {
		return nil, err
	}
	for _, arch := range []string{"Ballerino", "OoO"} {
		for _, lvl := range []string{"L4", "L3", "L2", "L1"} {
			p, err := measure(arch, lvl)
			if err != nil {
				return nil, err
			}
			sp := base.time / p.time
			en := p.energy / base.energy
			t.Rows = append(t.Rows, Row{Label: arch + "@" + lvl, Values: map[string]float64{
				"speedup": sp, "energy": en, "efficiency": sp / en,
			}})
		}
	}
	return t, nil
}

// Fig17c reproduces Figure 17c: Ballerino performance versus the number of
// P-IQs (geomean speedup over InO).
func Fig17c(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 17c — Ballerino sensitivity to the number of P-IQs",
		Columns: []string{"speedup"},
		Notes:   "paper: gains up to eleven P-IQs, flattening beyond",
	}
	base, err := o.suite("InO")
	if err != nil {
		return nil, err
	}
	for _, n := range []int{3, 5, 7, 9, 11, 13, 15} {
		var ratios []float64
		for _, wl := range o.Workloads {
			r, err := ballerino.Run(ballerino.Config{
				Arch: "Ballerino", Workload: wl,
				FootprintBytes: o.Footprint, MaxOps: o.Ops,
				NumPIQs: n,
			})
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, r.IPC/base[wl].IPC)
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%d P-IQs", n), Values: map[string]float64{
			"speedup": ballerino.GeoMean(ratios),
		}})
	}
	return t, nil
}

// MDPImpact reproduces the §III-B claim: MDP removes ≈96% of memory order
// violations, speeding the baseline up by ≈1.5× where violations occur.
func MDPImpact(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title:   "§III-B — impact of memory dependence prediction (OoO)",
		Columns: []string{"viol_off", "viol_on", "removed", "speedup"},
		Notes:   "paper: 96% of violations removed, 1.5× average speedup",
	}
	for _, wl := range o.Workloads {
		on, err := o.run("OoO", wl)
		if err != nil {
			return nil, err
		}
		off, err := ballerino.Run(ballerino.Config{
			Arch: "OoO", Workload: wl,
			FootprintBytes: o.Footprint, MaxOps: o.Ops,
			DisableMDP: true,
		})
		if err != nil {
			return nil, err
		}
		removed := 0.0
		if off.Violations > 0 {
			removed = 1 - float64(on.Violations)/float64(off.Violations)
		}
		t.Rows = append(t.Rows, Row{Label: wl, Values: map[string]float64{
			"viol_off": float64(off.Violations),
			"viol_on":  float64(on.Violations),
			"removed":  removed,
			"speedup":  on.IPC / off.IPC,
		}})
	}
	return t, nil
}
