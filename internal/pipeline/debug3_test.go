package pipeline_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestDebugStencilMemory inspects cache/prefetch behaviour on the stencil
// kernel (diagnostic).
func TestDebugStencilMemory(t *testing.T) {
	m := config.MustMachine(config.ArchOoO, 8, config.Options{MaxCycles: 10_000_000})
	tr := traceOf(t, workload.Stencil(workload.Params{}), 40000)
	p, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Run(40000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("IPC=%.3f cycles=%d", s.IPC(), s.Cycles)
	t.Logf("L1D: %+v", p.Mem().L1D.Stats())
	t.Logf("L2 : %+v", p.Mem().L2.Stats())
	t.Logf("L3 : %+v", p.Mem().L3.Stats())
	t.Logf("PF : %+v", p.Mem().Prefetcher.Stats())
	t.Logf("DRAM: %+v", p.Mem().DRAM.Stats())
	t.Logf("delays: Ld=%+v LdC=%+v", s.Delay[1], s.Delay[2])
	t.Logf("dispatch stalls=%d", s.DispatchStall)
}
