package pipeline_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// debugCases are diagnostic harnesses kept for regression: historically
// troublesome arch × kernel combinations that run to completion and dump
// the relevant machine state (visible with -v, and on any failure). The
// pass/fail assertions for these behaviours live in the functional tests;
// these exist to make a recurrence easy to diagnose.
var debugCases = []struct {
	name      string
	arch      config.Arch
	workload  func(workload.Params) workload.Workload
	ops       int
	maxCycles uint64
	report    func(t *testing.T, p *pipeline.Pipeline)
}{
	{
		// The historically deadlock-prone CES store-load combination.
		name:      "ces-store-load",
		arch:      config.ArchCES,
		workload:  workload.StoreLoad,
		ops:       4000,
		maxCycles: 200_000,
		report: func(t *testing.T, p *pipeline.Pipeline) {
			t.Logf("sched occupancy: %d", p.Scheduler().Occupancy())
			for k, v := range p.Scheduler().Counters() {
				t.Logf("  %s = %d", k, v)
			}
		},
	},
	{
		// MDP predictor activity on the violation-heavy kernel
		// (assertions live in TestMDPReducesViolations).
		name:      "mdp-store-load",
		arch:      config.ArchOoO,
		workload:  workload.StoreLoad,
		ops:       20_000,
		maxCycles: 2_000_000,
		report: func(t *testing.T, p *pipeline.Pipeline) {
			t.Logf("mdp: %+v", p.MDP().Stats())
		},
	},
	{
		// Cache and prefetcher behaviour on the stencil kernel.
		name:      "stencil-memory",
		arch:      config.ArchOoO,
		workload:  workload.Stencil,
		ops:       40_000,
		maxCycles: 10_000_000,
		report: func(t *testing.T, p *pipeline.Pipeline) {
			s := p.Stats()
			t.Logf("IPC=%.3f cycles=%d", s.IPC(), s.Cycles)
			t.Logf("L1D: %+v", p.Mem().L1D.Stats())
			t.Logf("L2 : %+v", p.Mem().L2.Stats())
			t.Logf("L3 : %+v", p.Mem().L3.Stats())
			t.Logf("PF : %+v", p.Mem().Prefetcher.Stats())
			t.Logf("DRAM: %+v", p.Mem().DRAM.Stats())
			t.Logf("delays: Ld=%+v LdC=%+v", s.Delay[1], s.Delay[2])
			t.Logf("dispatch stalls=%d", s.DispatchStall)
		},
	},
}

// TestDebugDiagnostics runs every diagnostic case to completion and dumps
// its machine-state report; a hang or error additionally dumps the head
// state of the stalled pipeline.
func TestDebugDiagnostics(t *testing.T) {
	for _, tc := range debugCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := config.MustMachine(tc.arch, 8, config.Options{MaxCycles: tc.maxCycles})
			tr := traceOf(t, tc.workload(workload.Params{}), tc.ops)
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(uint64(tc.ops)); err != nil {
				t.Logf("stats: %s", p.Stats().String())
				tc.report(t, p)
				t.Logf("debug: %s", p.DebugState())
				t.Fatal(err)
			}
			t.Logf("stats: %s", p.Stats().String())
			tc.report(t, p)
		})
	}
}
