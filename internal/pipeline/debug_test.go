package pipeline_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestDebugCESStoreLoad is a diagnostic harness kept for regression: it
// runs the historically deadlock-prone combination and dumps pipeline
// state if no forward progress happens.
func TestDebugCESStoreLoad(t *testing.T) {
	m := config.MustMachine(config.ArchCES, 8, config.Options{MaxCycles: 200000})
	tr := traceOf(t, workload.StoreLoad(workload.Params{}), 4000)
	p, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(4000); err != nil {
		t.Logf("stats: %s", p.Stats().String())
		t.Logf("sched occupancy: %d", p.Scheduler().Occupancy())
		for k, v := range p.Scheduler().Counters() {
			t.Logf("  %s = %d", k, v)
		}
		t.Logf("debug: %s", fmt.Sprint(p.DebugState()))
		t.Fatal(err)
	}
}
