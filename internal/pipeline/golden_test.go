package pipeline_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sched"
	"repro/internal/workload"
)

// -update regenerates the golden corpus from the current engine. Run it
// only when a behavioural change is intended and reviewed.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden digests")

// goldenWorkloads is the tier-1 micro set (the same arch × workload grid as
// bench.DefaultConfigs): every scheduler shape the paper compares, over
// kernels exercising streaming, dependent loads, store-to-load traffic and
// branches.
var goldenWorkloads = []string{"stream", "pointer-chase", "store-load", "branchy"}

const (
	goldenWidth = 8
	goldenOps   = 30_000
)

// goldenDigest renders every deterministic observable of a finished run:
// the full stats block, delay breakdowns, per-op commit counts, scheduler
// energy events and counters, renamer/MDP/cache/DRAM statistics and the
// lifetime μop accounting. Wall-time is deliberately absent — everything
// here must be byte-identical run to run and revision to revision.
func goldenDigest(p *pipeline.Pipeline, arch config.Arch, wl string) []byte {
	var b bytes.Buffer
	st := p.Stats()
	fmt.Fprintf(&b, "arch=%s workload=%s width=%d ops=%d\n", arch, wl, goldenWidth, goldenOps)
	fmt.Fprintf(&b, "stats: cycles=%d committed=%d fetched=%d branches=%d mispredicts=%d violations=%d flushes=%d squashed=%d dispatch_stalls=%d issued=%d occupancy_sum=%d\n",
		st.Cycles, st.Committed, st.Fetched, st.Branches, st.Mispredicts, st.Violations,
		st.Flushes, st.Squashed, st.DispatchStall, st.Issued, st.OccupancySum)
	for i, d := range st.Delay {
		fmt.Fprintf(&b, "delay[%s]: count=%d d2d=%d d2r=%d r2i=%d\n",
			sched.Class(i), d.Count, d.DecodeToDispatch, d.DispatchToReady, d.ReadyToIssue)
	}
	fmt.Fprintf(&b, "delay[all]: count=%d d2d=%d d2r=%d r2i=%d\n",
		st.All.Count, st.All.DecodeToDispatch, st.All.DispatchToReady, st.All.ReadyToIssue)
	b.WriteString("ops:")
	for op, n := range st.OpCommitted {
		if n != 0 {
			fmt.Fprintf(&b, " %d=%d", op, n)
		}
	}
	b.WriteByte('\n')

	s := p.Scheduler()
	fmt.Fprintf(&b, "sched: name=%s capacity=%d occupancy=%d\n", s.Name(), s.Capacity(), s.Occupancy())
	e := s.Energy()
	fmt.Fprintf(&b, "energy: wb=%d wc=%d sel=%d qw=%d qr=%d pay=%d pscbr=%d pscbw=%d steer=%d ixu=%d\n",
		e.WakeupBroadcasts, e.WakeupCompares, e.SelectInputs, e.QueueWrites, e.QueueReads,
		e.PayloadReads, e.PSCBReads, e.PSCBWrites, e.SteerOps, e.IXUExecs)
	ctrs := s.Counters()
	keys := make([]string, 0, len(ctrs))
	for k := range ctrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("counters:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, ctrs[k])
	}
	b.WriteByte('\n')

	renames, stallsFree := p.Renamer().Stats()
	fi, ff := p.Renamer().FreeCount()
	fmt.Fprintf(&b, "rename: renames=%d stalls_free=%d free_int=%d free_fp=%d\n", renames, stallsFree, fi, ff)
	ms := p.MDP().Stats()
	fmt.Fprintf(&b, "mdp: violations=%d merges=%d allocations=%d load_waits=%d store_serial=%d\n",
		ms.Violations, ms.Merges, ms.Allocations, ms.LoadWaits, ms.StoreSerial)

	h := p.Mem()
	for _, c := range []*cache.Cache{h.L1I, h.L1D, h.L2, h.L3} {
		cs := c.Stats()
		fmt.Fprintf(&b, "mem %s: hits=%d misses=%d merged=%d wb=%d mshr_stalls=%d pf=%d pf_hits=%d evict=%d whit=%d wmiss=%d\n",
			c.Name(), cs.Hits, cs.Misses, cs.MergedMiss, cs.Writebacks, cs.MSHRStalls,
			cs.Prefetches, cs.PrefeHits, cs.Evictions, cs.WriteHits, cs.WriteMisses)
	}
	ds := h.DRAM.Stats()
	fmt.Fprintf(&b, "dram: reads=%d writes=%d row_hits=%d row_misses=%d row_conflicts=%d\n",
		ds.Reads, ds.Writes, ds.RowHits, ds.RowMisses, ds.RowConflicts)

	tf, tc, tsq := p.Totals()
	fmt.Fprintf(&b, "totals: fetched=%d committed=%d squashed=%d\n", tf, tc, tsq)
	return b.Bytes()
}

func goldenFile(arch config.Arch, wl string) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.txt", arch, wl))
}

// goldenTraces shares one immutable dynamic trace per workload across all
// twelve architectures (the pipeline only reads the trace).
var goldenTraces sync.Map

func goldenTrace(t *testing.T, wl string) []isa.DynInst {
	t.Helper()
	if tr, ok := goldenTraces.Load(wl); ok {
		return tr.([]isa.DynInst)
	}
	w, err := workload.ByName(wl, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	ops := prog.MustExecute(w.Program, goldenOps).Ops
	tr, _ := goldenTraces.LoadOrStore(wl, ops)
	return tr.([]isa.DynInst)
}

func runGolden(t *testing.T, arch config.Arch, wl string) []byte {
	t.Helper()
	tr := goldenTrace(t, wl)
	m := config.MustMachine(arch, goldenWidth, config.Options{MaxCycles: uint64(goldenOps) * 100})
	pl, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(uint64(len(tr))); err != nil {
		t.Fatalf("%s/%s: %v", arch, wl, err)
	}
	return goldenDigest(pl, arch, wl)
}

// TestGoldenManifests is the behavioural-equivalence corpus: every arch ×
// tier-1 workload digest must match the committed golden byte for byte. Any
// diff means the engine's observable behaviour changed — intended changes
// must regenerate the corpus with -update and justify the diff in review.
func TestGoldenManifests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus is the full tier-1 grid; skipped in -short")
	}
	for _, arch := range config.AllArchs() {
		for _, wl := range goldenWorkloads {
			arch, wl := arch, wl
			t.Run(fmt.Sprintf("%s/%s", arch, wl), func(t *testing.T) {
				t.Parallel()
				got := runGolden(t, arch, wl)
				path := goldenFile(arch, wl)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden digest (run with -update to bootstrap): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("digest mismatch vs %s:\n--- want ---\n%s--- got ---\n%s", path, want, got)
				}
			})
		}
	}
}
