package pipeline_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sched"
)

// runProgram simulates a hand-built program on an architecture and returns
// the pipeline plus the committed μops in order.
func runProgram(t *testing.T, arch config.Arch, p *prog.Program, ops int) (*pipeline.Pipeline, []*sched.UOp) {
	t.Helper()
	m := config.MustMachine(arch, 8, config.Options{MaxCycles: 1_000_000})
	tr := prog.MustExecute(p, ops)
	pl, err := pipeline.New(m.Pipeline, tr.Ops, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	var committed []*sched.UOp
	pl.OnCommit = func(u *sched.UOp) { committed = append(committed, u) }
	if _, err := pl.Run(uint64(len(tr.Ops))); err != nil {
		t.Fatalf("%v\n%s", err, pl.DebugState())
	}
	return pl, committed
}

// TestStoreToLoadForwarding: a load reading a just-stored address must
// complete via forwarding (a few cycles), not via the cache-miss path.
func TestStoreToLoadForwarding(t *testing.T) {
	b := prog.NewBuilder("fwd")
	b.MovImm(isa.R(1), 0x40000) // cold line, never loaded directly
	b.MovImm(isa.R(2), 77)
	b.Store(isa.R(2), isa.R(1), 0)
	b.Load(isa.R(3), isa.R(1), 0) // must forward from the SQ
	b.AddImm(isa.R(4), isa.R(3), 1)
	p := b.Build()

	_, committed := runProgram(t, config.ArchOoO, p, 100)
	var ld *sched.UOp
	for _, u := range committed {
		if u.D.IsLoad() {
			ld = u
		}
	}
	if ld == nil {
		t.Fatal("no load committed")
	}
	if lat := ld.CompleteCycle - ld.IssueCycle; lat > 6 {
		t.Errorf("forwarded load latency = %d cycles, want ≤ 6 (cold line would be ≫)", lat)
	}
}

// TestDividerBlocksPort: back-to-back divides on the same port must
// serialise by the unpipelined divider latency.
func TestDividerBlocksPort(t *testing.T) {
	b := prog.NewBuilder("div")
	b.MovImm(isa.R(1), 100)
	b.MovImm(isa.R(2), 3)
	b.MovImm(isa.R(3), 200)
	b.IntDiv(isa.R(4), isa.R(1), isa.R(2)) // independent divides
	b.IntDiv(isa.R(5), isa.R(3), isa.R(2))
	p := b.Build()

	_, committed := runProgram(t, config.ArchOoO, p, 100)
	var divs []*sched.UOp
	for _, u := range committed {
		if u.D.Op == isa.OpIntDiv {
			divs = append(divs, u)
		}
	}
	if len(divs) != 2 {
		t.Fatalf("divides committed = %d", len(divs))
	}
	gap := divs[1].IssueCycle - divs[0].IssueCycle
	if gap < 18 {
		t.Errorf("second divide issued %d cycles after the first, want ≥ 18 (unpipelined)", gap)
	}
}

// TestIndependentALUOpsIssueTogether: four independent adds must issue in
// the same cycle on the four ALU ports of the 8-wide machine.
func TestIndependentALUOpsIssueTogether(t *testing.T) {
	b := prog.NewBuilder("par")
	for i := 1; i <= 4; i++ {
		b.MovImm(isa.R(i), int64(i))
	}
	for i := 1; i <= 4; i++ {
		b.AddImm(isa.R(10+i), isa.R(i), 5)
	}
	p := b.Build()

	_, committed := runProgram(t, config.ArchOoO, p, 100)
	issueCycles := map[uint64]int{}
	for _, u := range committed[4:8] { // the four adds
		issueCycles[u.IssueCycle]++
	}
	best := 0
	for _, n := range issueCycles {
		if n > best {
			best = n
		}
	}
	if best < 4 {
		t.Errorf("max same-cycle issues = %d, want 4 (ALU ports P0,P1,P5,P6)", best)
	}
}

// TestDependentChainIssuesBackToBack: a chain of single-cycle adds must
// issue one per cycle (full bypass), not one per two cycles.
func TestDependentChainIssuesBackToBack(t *testing.T) {
	b := prog.NewBuilder("chain")
	b.MovImm(isa.R(1), 0)
	for i := 0; i < 8; i++ {
		b.AddImm(isa.R(1), isa.R(1), 1)
	}
	p := b.Build()

	_, committed := runProgram(t, config.ArchOoO, p, 100)
	adds := committed[1:9]
	for i := 1; i < len(adds); i++ {
		if adds[i].IssueCycle != adds[i-1].IssueCycle+1 {
			t.Fatalf("chain link %d issued at %d, previous at %d (want back-to-back)",
				i, adds[i].IssueCycle, adds[i-1].IssueCycle)
		}
	}
}

// TestLongLatencyLoadConsumersWait: the consumer of a DRAM-missing load
// must not issue until the load completes.
func TestLongLatencyLoadConsumersWait(t *testing.T) {
	b := prog.NewBuilder("miss")
	b.MovImm(isa.R(1), 0x900000) // never-touched line → DRAM
	b.Load(isa.R(2), isa.R(1), 0)
	b.AddImm(isa.R(3), isa.R(2), 1)
	p := b.Build()

	_, committed := runProgram(t, config.ArchBallerino, p, 100)
	var ld, consumer *sched.UOp
	for _, u := range committed {
		if u.D.IsLoad() {
			ld = u
		}
		if u.D.Op == isa.OpIntALU && u.D.Fn == isa.FnAdd && ld != nil && u.Seq() > ld.Seq() {
			consumer = u
			break
		}
	}
	if ld == nil || consumer == nil {
		t.Fatal("missing load/consumer")
	}
	if ld.CompleteCycle-ld.IssueCycle < 50 {
		t.Fatalf("load latency %d too low for a DRAM miss", ld.CompleteCycle-ld.IssueCycle)
	}
	if consumer.IssueCycle < ld.CompleteCycle {
		t.Errorf("consumer issued at %d before load completed at %d",
			consumer.IssueCycle, ld.CompleteCycle)
	}
}

// TestViolationReplayRetrainsAndForwards: a violating store→load pair must
// flush once, train the MDP, and run violation-free afterwards.
func TestViolationReplayRetrainsAndForwards(t *testing.T) {
	b := prog.NewBuilder("viol")
	// Loop: slow store data (via multiply chain), immediate reload.
	wp, rp, i := isa.R(1), isa.R(2), isa.R(3)
	v, tt, three := isa.R(4), isa.R(5), isa.R(6)
	b.MovImm(wp, 0x10000)
	b.MovImm(rp, 0x10000)
	b.MovImm(i, 1000)
	b.MovImm(three, 3)
	top := b.NewLabel()
	b.Bind(top)
	b.IntMul(tt, i, three)
	b.IntMul(tt, tt, three) // delay the store's data
	b.Store(tt, wp, 0)
	b.Load(v, rp, 0) // would issue before the store without MDP
	b.AddImm(wp, wp, 8)
	b.AddImm(rp, rp, 8)
	b.AddImm(i, i, -1)
	b.Branch(isa.BrNEZ, i, top)
	p := b.Build()

	pl, _ := runProgram(t, config.ArchOoO, p, 6000)
	s := pl.Stats()
	if s.Violations == 0 {
		t.Fatal("no violation ever occurred — kernel not racing")
	}
	if s.Violations > 20 {
		t.Errorf("violations = %d: MDP did not learn the pair", s.Violations)
	}
	if pl.MDP().Stats().LoadWaits == 0 {
		t.Error("MDP never made a load wait")
	}
}

// TestICacheColdStartStallsFetch: the very first fetch misses the L1I and
// the pipeline still makes progress afterwards.
func TestICacheColdStartStallsFetch(t *testing.T) {
	b := prog.NewBuilder("icache")
	b.MovImm(isa.R(1), 1)
	b.AddImm(isa.R(2), isa.R(1), 1)
	p := b.Build()
	pl, committed := runProgram(t, config.ArchOoO, p, 10)
	if len(committed) != 2 {
		t.Fatalf("committed %d", len(committed))
	}
	if pl.Mem().L1I.Stats().Misses == 0 {
		t.Error("no instruction-cache miss on a cold start")
	}
	// The first μop cannot decode before the I-miss returns (DRAM-scale).
	if committed[0].DecodeCycle < 50 {
		t.Errorf("first decode at cycle %d, expected after the I-miss", committed[0].DecodeCycle)
	}
}
