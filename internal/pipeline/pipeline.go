// Package pipeline implements the execution-driven, cycle-level core model
// shared by every evaluated microarchitecture: fetch with TAGE+BTB, decode,
// two-stage rename with recovery log, dispatch with issue-port arbitration,
// a pluggable scheduler, execution over the Table I functional units and
// memory hierarchy, a load queue / store queue with memory-order-violation
// detection and replay, and in-order commit from a reorder buffer.
//
// Stages are evaluated commit-first each cycle so same-cycle structural
// hazards resolve the way hardware pipelines do.
package pipeline

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/check"
	"repro/internal/container"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mdp"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rename"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/topdown"
)

// Injector is the fault-injection hook surface. internal/faults implements
// it; every hook may only perturb timing (extra latency, vetoed dispatch,
// extra flushes, fabricated waits on strictly older stores), never
// architectural results — the invariant auditor runs over faulted machines
// too.
type Injector interface {
	// ExtraLatency returns extra completion cycles for a μop granted this
	// cycle.
	ExtraLatency(u *sched.UOp, cycle uint64) uint64
	// StallDispatch vetoes all dispatch this cycle when true.
	StallDispatch(cycle uint64) bool
	// FlushNow requests a mid-ROB flush this cycle; the pipeline picks a
	// bound younger than the ROB head so forward progress is preserved.
	FlushNow(cycle uint64) bool
	// ForceMDPWait requests a fabricated memory-dependence wait for the
	// memory μop being renamed; the pipeline targets the youngest unissued
	// store (strictly older than u).
	ForceMDPWait(u *sched.UOp, cycle uint64) bool
}

// Config describes the pipeline surrounding the scheduler.
type Config struct {
	FetchWidth  int
	RenameWidth int // decode/dispatch width
	IssueWidth  int
	CommitWidth int

	DecodeQueue int // allocation-queue entries between decode and rename
	ROBSize     int
	LQSize      int
	SQSize      int

	// FrontLatency is the fetch+decode+rename depth in cycles; it offsets
	// the decode→dispatch component of the delay breakdowns.
	FrontLatency uint64
	// RecoveryPenalty is charged on mispredict/violation recovery (Table I).
	RecoveryPenalty uint64

	Ports  *sched.PortMap
	Rename rename.Config
	MDP    mdp.Config
	Mem    mem.Config
	// UseMDP disables memory dependence prediction when false (§III-B's
	// "MDP off" baseline); violations then recur freely.
	UseMDP bool

	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles uint64
	// StallCycles is the forward-progress watchdog: a run that goes this
	// many cycles without committing a single μop is declared deadlocked
	// and aborted with a machine-state autopsy (0 = no watchdog).
	StallCycles uint64
}

// DefaultConfig returns the 8-wide Table I pipeline (scheduler not included).
func DefaultConfig() Config {
	return Config{
		FetchWidth:      4,
		RenameWidth:     4,
		IssueWidth:      8,
		CommitWidth:     8,
		DecodeQueue:     64,
		ROBSize:         224,
		LQSize:          72,
		SQSize:          56,
		FrontLatency:    6,
		RecoveryPenalty: 11,
		Ports:           sched.Ports8Wide(),
		Rename:          rename.DefaultConfig(),
		MDP:             mdp.DefaultConfig(),
		Mem:             mem.DefaultConfig(),
		UseMDP:          true,
		StallCycles:     200_000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Ports == nil {
		return fmt.Errorf("pipeline: Ports is nil")
	}
	if c.IssueWidth != c.Ports.Width() {
		return fmt.Errorf("pipeline: IssueWidth %d != port count %d", c.IssueWidth, c.Ports.Width())
	}
	if c.FetchWidth <= 0 || c.RenameWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("pipeline: widths must be positive")
	}
	if c.ROBSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0 || c.DecodeQueue <= 0 {
		return fmt.Errorf("pipeline: queue sizes must be positive")
	}
	if err := c.MDP.Validate(); err != nil {
		return err
	}
	return c.Rename.Validate()
}

// robEntry pairs an in-flight μop with its rename recovery record.
type robEntry struct {
	u   *sched.UOp
	rec rename.Entry
}

// robRing is the reorder buffer: a preallocated power-of-two ring of ROB
// entries. The logical capacity (cfg.ROBSize) is enforced by the dispatch
// stage; the ring only provides creep-free storage.
type robRing struct {
	buf  []robEntry
	mask int
	head int
	n    int
}

func (r *robRing) init(capacity int) {
	sz := 1
	for sz < capacity {
		sz <<= 1
	}
	r.buf = make([]robEntry, sz)
	r.mask = sz - 1
}

// at returns the i-th oldest entry (0 = commit head).
func (r *robRing) at(i int) *robEntry { return &r.buf[(r.head+i)&r.mask] }

func (r *robRing) push(e robEntry) {
	r.buf[(r.head+r.n)&r.mask] = e
	r.n++
}

func (r *robRing) popFront() {
	r.buf[r.head] = robEntry{}
	r.head = (r.head + 1) & r.mask
	r.n--
}

// truncate drops every entry from logical index cut on (flush recovery),
// zeroing the vacated slots so squashed μops can be recycled safely.
func (r *robRing) truncate(cut int) {
	for i := r.n - 1; i >= cut; i-- {
		r.buf[(r.head+i)&r.mask] = robEntry{}
	}
	r.n = cut
}

// decodeRing is the allocation queue between decode and rename: a
// preallocated power-of-two ring of decodeEntry values (the slice-based
// queue allocated one record per fetched μop).
type decodeRing struct {
	buf  []decodeEntry
	mask int
	head int
	n    int
}

func (r *decodeRing) init(capacity int) {
	sz := 1
	for sz < capacity {
		sz <<= 1
	}
	r.buf = make([]decodeEntry, sz)
	r.mask = sz - 1
}

// at returns a pointer to the i-th oldest entry; rename mutates it in
// place across stalled cycles.
func (r *decodeRing) at(i int) *decodeEntry { return &r.buf[(r.head+i)&r.mask] }

func (r *decodeRing) push(e decodeEntry) {
	r.buf[(r.head+r.n)&r.mask] = e
	r.n++
}

func (r *decodeRing) popFront() {
	r.buf[r.head] = decodeEntry{}
	r.head = (r.head + 1) & r.mask
	r.n--
}

func (r *decodeRing) clear() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&r.mask] = decodeEntry{}
	}
	r.n = 0
}

// wheelSpan is the completion wheel's horizon in cycles (a power of two).
// Nearly every functional-unit and cache latency lands within it; events
// further out (DRAM queueing tails) wait in a bitmap-bucketed far queue
// drained into the wheel once per wheelSpan cycles.
const wheelSpan = 1024

// wheelFarSpan is the far queue's bucket horizon: events up to this many
// cycles past the sliding base land in real priority buckets. Beyond it
// (pathological DRAM queueing) events wait in a counted overflow chain.
const wheelFarSpan = 1 << 13

// completionWheel is a timing wheel replacing the cycle→μops completion
// map: bucket (c & mask) holds exactly the events due at cycle c as long
// as every event is pushed less than wheelSpan cycles ahead. Buckets are
// intrusive linked lists threaded through UOp.WheelNext — a μop has at
// most one pending completion event and is never recycled while linked —
// so event scheduling never allocates, not even to grow a bucket.
//
// Far-horizon events are filed in a hierarchical-bitmap priority queue
// keyed by done − farBase, so the per-rotation drain peels exactly the
// events entering the horizon in O(1) each instead of re-walking a chain
// of every far event. Each near bucket maps to a single due cycle per
// horizon and the far queue is FIFO within a bucket, so event processing
// order is identical to the chain-based wheel it replaces.
type completionWheel struct {
	heads, tails []*sched.UOp

	far     *container.QuantumQueue[*sched.UOp]
	farBase uint64

	// Overflow chain for events beyond even the far horizon. ovCount
	// gates the rotation walk: a rotation with an empty chain never
	// touches it (the chain-era code re-scanned unconditionally).
	ovHead, ovTail *sched.UOp
	ovCount        int
}

// init sizes the wheel. poolCap bounds the far queue's live population —
// in-flight issued μops, so the caller passes its ROB size.
func (w *completionWheel) init(poolCap int) {
	w.heads = make([]*sched.UOp, wheelSpan)
	w.tails = make([]*sched.UOp, wheelSpan)
	w.far = container.NewQuantumQueue[*sched.UOp](wheelFarSpan, poolCap)
}

// pushNear files u in its due-cycle bucket. Insertion order is preserved
// per bucket: event processing order matches the slice-based engine.
func (w *completionWheel) pushNear(u *sched.UOp, done uint64) {
	i := done & (wheelSpan - 1)
	if w.tails[i] == nil {
		w.heads[i] = u
	} else {
		w.tails[i].WheelNext = u
	}
	w.tails[i] = u
}

// push schedules u's completion event at cycle done (done > now, because
// every functional-unit latency is ≥ 1).
func (w *completionWheel) push(u *sched.UOp, done, now uint64) {
	u.WheelNext = nil
	if done-now < wheelSpan {
		w.pushNear(u, done)
		return
	}
	rel := done - w.farBase
	if rel >= wheelFarSpan {
		// Slide the window to now. Every queued event is undrained, so
		// its done is ≥ now and survives the shift.
		if w.far.Empty() {
			w.farBase = now
		} else if delta := now - w.farBase; delta > 0 {
			w.far.Rebase(int(delta))
			w.farBase = now
		}
		rel = done - w.farBase
		if rel >= wheelFarSpan {
			w.ovCount++
			if w.ovTail == nil {
				w.ovHead = u
			} else {
				w.ovTail.WheelNext = u
			}
			w.ovTail = u
			return
		}
	}
	w.far.Insert(int(rel), u)
}

// rotate runs at every wheelSpan-aligned cycle, before the cycle's bucket
// is processed: far events entering the horizon drain — in ascending due
// order, FIFO within a due cycle — into their buckets, and any overflow
// events are re-offered to push. Rotations are at most wheelSpan apart
// and far events enter at least wheelSpan early, so every event reaches
// its bucket before it is due.
func (w *completionWheel) rotate(now uint64) {
	if !w.far.Empty() {
		w.far.DrainUpTo(int(now+wheelSpan-w.farBase), func(u *sched.UOp, _ int) {
			w.pushNear(u, u.CompleteCycle)
		})
	}
	if w.far.Empty() {
		w.farBase = now // free slide: nothing queued to shift
	}
	if w.ovCount > 0 {
		u := w.ovHead
		w.ovHead, w.ovTail = nil, nil
		w.ovCount = 0
		for u != nil {
			next := u.WheelNext
			w.push(u, u.CompleteCycle, now)
			u = next
		}
	}
}

// uopArena recycles μop records through a free list. Records are reset at
// allocation, not at release: a recycled μop may still sit (squashed) in a
// scheduler queue for the rest of its flush cycle, and late readers must
// keep seeing its Squashed flag.
type uopArena struct {
	free []*sched.UOp
}

func (a *uopArena) get() *sched.UOp {
	if n := len(a.free); n > 0 {
		u := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		*u = sched.UOp{}
		return u
	}
	return new(sched.UOp)
}

func (a *uopArena) put(u *sched.UOp) { a.free = append(a.free, u) }

// Pipeline is one core simulation instance over a dynamic trace.
type Pipeline struct {
	cfg Config

	sched sched.Scheduler
	rn    *rename.Renamer
	pred  *bpred.Predictor
	mdp   *mdp.MDP
	mem   *mem.Hierarchy

	trace []isa.DynInst

	cycle uint64

	// Front end.
	fetchIdx        int // next trace index to fetch
	fetchStallUntil uint64
	// fetchStallIsRecovery distinguishes a mispredict/flush recovery
	// penalty (branch-recovery blame) from an icache-miss fetch stall
	// (frontend blame); it is set beside every fetchStallUntil write.
	fetchStallIsRecovery bool
	decodeQ              decodeRing

	// Back end.
	rob          robRing // in program order; at(0) is the oldest
	lsq          *lsq.Queues
	portInflight []int
	divBusyUntil []uint64

	// wheel schedules completion events; pool recycles μop records once
	// they are both retired (committed or squashed) and written back.
	// Recycling is bypassed while OnCommit is attached — observers may
	// legitimately retain committed μops.
	wheel completionWheel
	pool  uopArena

	// issueCtx is built once; allocating the two method-value closures
	// per cycle was a measurable share of the hot loop.
	issueCtx sched.IssueCtx

	// warmupCycles/warmupCommits record the state at the end of Warmup so
	// reported statistics cover only the measured region.
	warmupCycles  uint64
	warmupCommits uint64

	// Lifetime μop accounting, immune to the warmup statistics reset;
	// the auditor's no-lost-μop invariant reconciles these every cycle.
	totFetched   uint64
	totCommitted uint64
	totSquashed  uint64

	// lastCommitCycle feeds the forward-progress watchdog.
	lastCommitCycle uint64

	// audit, when non-nil, verifies the simulation invariants every cycle;
	// auditErr latches the first violation.
	audit    *check.Auditor
	auditErr error

	// inj, when non-nil, perturbs the machine with timing-only faults.
	inj Injector

	// obs, when non-nil, receives typed events from every stage plus
	// periodic heartbeat snapshots. A nil recorder costs one untaken
	// branch per emit site — the zero-cost-when-off contract.
	obs *obs.Recorder

	// td, when non-nil, attributes every issue slot of every cycle to a
	// CPI-stack category. When nil the issue path keeps its original
	// closures (AttachTopdown swaps them), so a disabled engine is free.
	td *topdown.Engine

	stats stats.Sim

	// OnCommit, when non-nil, observes every committed μop in commit
	// order. Used by tests and the figure harnesses.
	OnCommit func(u *sched.UOp)
}

// decodeEntry is a decoded μop waiting for rename/dispatch. Rename happens
// exactly once even if dispatch then stalls for several cycles.
type decodeEntry struct {
	u       *sched.UOp
	renamed bool
	rec     rename.Entry
	// visibleAt is when the μop emerges from the fetch/decode pipeline
	// and may be renamed (FrontLatency cycles after fetch).
	visibleAt uint64
}

// SchedulerFactory builds the scheduler once the pipeline has created the
// shared renamer and MDP (the scheduler may hold references to both).
type SchedulerFactory func(rn *rename.Renamer, m *mdp.MDP) sched.Scheduler

// New builds a pipeline over a dynamic trace.
func New(cfg Config, trace []isa.DynInst, mk SchedulerFactory) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h, err := mem.New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	rn, err := rename.New(cfg.Rename)
	if err != nil {
		return nil, err
	}
	m := mdp.New(cfg.MDP)
	q, err := lsq.New(cfg.LQSize, cfg.SQSize)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:          cfg,
		rn:           rn,
		pred:         bpred.New(),
		mdp:          m,
		mem:          h,
		lsq:          q,
		trace:        trace,
		portInflight: make([]int, cfg.Ports.Width()),
		divBusyUntil: make([]uint64, cfg.Ports.Width()),
	}
	p.rob.init(cfg.ROBSize)
	p.decodeQ.init(cfg.DecodeQueue)
	p.wheel.init(cfg.ROBSize)
	p.issueCtx = sched.IssueCtx{Ready: p.ready, Grant: p.grant}
	p.sched = mk(rn, m)
	if p.sched == nil {
		return nil, fmt.Errorf("pipeline: scheduler factory returned nil")
	}
	return p, nil
}

// Scheduler exposes the scheduler under test (for counters and energy).
func (p *Pipeline) Scheduler() sched.Scheduler { return p.sched }

// Stats returns the accumulated simulation counters.
func (p *Pipeline) Stats() *stats.Sim { return &p.stats }

// Mem exposes the memory hierarchy (for stats and energy accounting).
func (p *Pipeline) Mem() *mem.Hierarchy { return p.mem }

// MDP exposes the memory dependence predictor.
func (p *Pipeline) MDP() *mdp.MDP { return p.mdp }

// Renamer exposes the renamer (for energy accounting).
func (p *Pipeline) Renamer() *rename.Renamer { return p.rn }

// Predictor exposes the branch predictor.
func (p *Pipeline) Predictor() *bpred.Predictor { return p.pred }

// Cycle returns the current simulation cycle.
func (p *Pipeline) Cycle() uint64 { return p.cycle }

// --- check.Source introspection surface ---

// ROBLen returns the live reorder-buffer depth.
func (p *Pipeline) ROBLen() int { return p.rob.n }

// ROBEntry returns the i-th oldest in-flight μop.
func (p *Pipeline) ROBEntry(i int) *sched.UOp { return p.rob.at(i).u }

// DecodeDepth returns the decode-queue depth.
func (p *Pipeline) DecodeDepth() int { return p.decodeQ.n }

// FetchIndex returns the next trace index to fetch.
func (p *Pipeline) FetchIndex() int { return p.fetchIdx }

// TraceLen returns the dynamic trace length.
func (p *Pipeline) TraceLen() int { return len(p.trace) }

// Totals returns lifetime (fetched, committed, squashed) μop counts,
// unaffected by the Warmup statistics reset.
func (p *Pipeline) Totals() (fetched, committed, squashed uint64) {
	return p.totFetched, p.totCommitted, p.totSquashed
}

// LSQ exposes the load/store queues.
func (p *Pipeline) LSQ() *lsq.Queues { return p.lsq }

var _ check.Source = (*Pipeline)(nil)

// EnableAudit attaches a fresh invariant auditor: every cycle's machine
// state is verified, and every committed μop is checked against the
// expected commit stream. A violation aborts the run with a
// *check.ViolationError carrying a machine-state autopsy. Must be called
// before the first cycle (the auditor expects commit to start at seq 0).
func (p *Pipeline) EnableAudit() *check.Auditor {
	p.audit = check.NewAuditor()
	return p.audit
}

// SetInjector attaches a fault injector (nil detaches).
func (p *Pipeline) SetInjector(inj Injector) { p.inj = inj }

// AttachObs attaches an observability recorder (nil detaches): every stage
// emits typed events, a heartbeat snapshot is taken each recorder
// interval, and — when the scheduler implements sched.Probed — its
// internal steering/sharing events are bridged onto the bus.
func (p *Pipeline) AttachObs(r *obs.Recorder) {
	p.obs = r
	r.Start(p.ObsSnapshot())
	pr, ok := p.sched.(sched.Probed)
	if !ok {
		return
	}
	if r == nil {
		pr.SetProbe(nil)
		return
	}
	pr.SetProbe(func(kind sched.ProbeKind, cycle, seq uint64, arg int) {
		r.Emit(obs.Event{Kind: obs.FromProbe(kind), Cycle: cycle, Seq: seq, Arg: uint64(arg)})
	})
}

// AttachTopdown attaches a top-down cycle-accounting engine (nil
// detaches). Rather than branch on p.td inside ready/grant, the issue
// context's closures are swapped for instrumented wrappers, so a run
// without accounting pays nothing on the issue path — not even an
// untaken branch.
func (p *Pipeline) AttachTopdown(e *topdown.Engine) {
	p.td = e
	if e == nil {
		p.issueCtx = sched.IssueCtx{Ready: p.ready, Grant: p.grant}
		return
	}
	p.issueCtx = sched.IssueCtx{
		Ready:       p.readyTD,
		Grant:       p.grantTD,
		PortBlocked: p.portBlockedTD,
	}
}

// Topdown returns the attached cycle-accounting engine (nil when off).
func (p *Pipeline) Topdown() *topdown.Engine { return p.td }

// TopdownConservation implements check.TopdownSource: the auditor
// verifies blamed slots == width × cycles every cycle.
func (p *Pipeline) TopdownConservation() (got, want uint64, on bool) {
	return p.td.Conservation()
}

// readyTD is ready plus blame classification for examined-but-blocked
// μops (the scheduler looked at u and moved on).
func (p *Pipeline) readyTD(u *sched.UOp) bool {
	if p.ready(u) {
		return true
	}
	p.noteBlocked(u)
	return false
}

// grantTD is grant plus a granted-slot note.
func (p *Pipeline) grantTD(u *sched.UOp) {
	p.grant(u)
	p.td.NoteGrant()
}

// portBlockedTD classifies a μop skipped because its issue port was
// already granted: FU contention if it was otherwise ready, else
// whatever actually blocks it. (Schedulers check the port before
// readiness, so u's readiness is unknown here; the extra ready() call
// only runs with accounting attached and is idempotent — its only side
// effect, MDPBlockedSince, is a debug first-blocked timestamp.)
func (p *Pipeline) portBlockedTD(u *sched.UOp) {
	if p.ready(u) {
		p.td.NoteFUBlock()
	} else {
		p.noteBlocked(u)
	}
}

// noteBlocked attributes a non-ready examined μop to memory (an
// in-flight-load source or unresolved memory-dependence wait — the
// load-delay blame rule), plain dependence wait, or a busy
// non-pipelined unit.
func (p *Pipeline) noteBlocked(u *sched.UOp) {
	for _, s := range u.Src {
		if p.rn.FastReady(s) {
			continue
		}
		if p.rn.LoadDep(s) {
			p.td.NoteMemBlock()
		} else {
			p.td.NoteDepBlock()
		}
		return
	}
	if u.D.Op.IsMem() && !p.mdpResolved(u) {
		p.td.NoteMemBlock()
		return
	}
	p.td.NoteFUBlock() // non-pipelined unit busy on u's port
}

// ObsSnapshot samples the cumulative counters and queue levels for an
// observability heartbeat.
func (p *Pipeline) ObsSnapshot() obs.Snapshot {
	nl, ns := p.lsq.Counts()
	s := obs.Snapshot{
		Cycle:          p.cycle,
		Committed:      p.stats.Committed,
		Fetched:        p.stats.Fetched,
		Issued:         p.stats.Issued,
		Flushes:        p.stats.Flushes,
		Squashed:       p.stats.Squashed,
		DispatchStalls: p.stats.DispatchStall,
		Violations:     p.stats.Violations,
		Mispredicts:    p.stats.Mispredicts,
		SchedOccupancy: p.sched.Occupancy(),
		LQ:             nl,
		SQ:             ns,
	}
	if p.td != nil {
		s.TopdownOn = true
		s.Topdown = p.td.Counts()
	}
	return s
}

// DebugState renders a snapshot of the pipeline's head state, used when
// diagnosing stalls.
func (p *Pipeline) DebugState() string {
	nl, ns := p.lsq.Counts()
	s := fmt.Sprintf("cycle=%d fetchIdx=%d stallUntil=%d decodeQ=%d rob=%d lq=%d sq=%d\n",
		p.cycle, p.fetchIdx, p.fetchStallUntil, p.decodeQ.n, p.rob.n, nl, ns)
	if p.rob.n > 0 {
		u := p.rob.at(0).u
		s += fmt.Sprintf("rob head: %v issued=%v complete=%d src=%v readyAt=[%d %d] mdpWait=%d cls=%v port=%d\n",
			u.D, u.Issued, u.CompleteCycle, u.Src,
			p.rn.ReadyAt(u.Src[0]), p.rn.ReadyAt(u.Src[1]), u.MDPWait, u.Cls, u.Port)
	}
	if p.decodeQ.n > 0 {
		de := p.decodeQ.at(0)
		s += fmt.Sprintf("decode head: %v renamed=%v\n", de.u.D, de.renamed)
	}
	return s
}

// Warmup simulates until warmupCommits μops commit, then zeroes the
// timing statistics while keeping all microarchitectural state (caches,
// predictors, queues) warm — the paper's measurement methodology. Energy
// accounting in callers should note that structure event counters
// (scheduler, caches) keep accumulating across the warm-up.
func (p *Pipeline) Warmup(warmupCommits uint64) error {
	return p.WarmupContext(context.Background(), warmupCommits)
}

// WarmupContext is Warmup with cooperative cancellation (see RunContext).
func (p *Pipeline) WarmupContext(ctx context.Context, warmupCommits uint64) error {
	if _, err := p.RunContext(ctx, warmupCommits); err != nil {
		return err
	}
	committedBase := p.stats.Committed
	p.stats = stats.Sim{}
	p.warmupCycles = p.cycle
	p.warmupCommits = committedBase
	return nil
}

// Run simulates until maxCommits μops commit (or the trace drains) and
// returns the stats. Exceeding cfg.MaxCycles, tripping the forward-progress
// watchdog (cfg.StallCycles without a commit) or — with auditing enabled —
// breaking a simulation invariant aborts the run; the deadlock paths return
// a *check.DeadlockError and the audit path a *check.ViolationError, both
// carrying a structured machine-state autopsy.
func (p *Pipeline) Run(maxCommits uint64) (*stats.Sim, error) {
	return p.RunContext(context.Background(), maxCommits)
}

// cancelCheckMask paces the cancellation poll: the context is consulted
// once every (mask+1) cycles, so the hot loop pays nothing measurable for
// cancellability while a cancelled run still stops within microseconds.
const cancelCheckMask = 1<<10 - 1

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the simulation stops at the next poll boundary and returns the stats so
// far plus an error wrapping context.Cause(ctx) (so errors.Is against
// context.Canceled / context.DeadlineExceeded works). The pipeline stays
// internally consistent after a cancelled run — sinks can still be
// flushed and the partial statistics read — but the run cannot be
// resumed.
func (p *Pipeline) RunContext(ctx context.Context, maxCommits uint64) (*stats.Sim, error) {
	done := ctx.Done()
	for p.stats.Committed < maxCommits {
		if p.drained() {
			break
		}
		if done != nil && p.cycle&cancelCheckMask == 0 {
			select {
			case <-done:
				p.stats.Cycles = p.cycle - p.warmupCycles
				return &p.stats, fmt.Errorf("pipeline: run cancelled at cycle %d: %w", p.cycle, context.Cause(ctx))
			default:
			}
		}
		p.step()
		if p.auditErr != nil {
			return &p.stats, p.auditErr
		}
		if p.cfg.MaxCycles > 0 && p.cycle > p.cfg.MaxCycles {
			return &p.stats, &check.DeadlockError{
				Reason:  fmt.Sprintf("exceeded the %d-cycle budget at %s", p.cfg.MaxCycles, p.stats.String()),
				Autopsy: check.Collect(p),
			}
		}
		if p.cfg.StallCycles > 0 && p.cycle-p.lastCommitCycle > p.cfg.StallCycles {
			return &p.stats, &check.DeadlockError{
				Reason:  fmt.Sprintf("no commit for %d cycles (last at cycle %d)", p.cycle-p.lastCommitCycle, p.lastCommitCycle),
				Autopsy: check.Collect(p),
			}
		}
	}
	p.stats.Cycles = p.cycle - p.warmupCycles
	return &p.stats, nil
}

// drained reports whether every fetched μop has committed and no more can
// be fetched.
func (p *Pipeline) drained() bool {
	return p.fetchIdx >= len(p.trace) && p.rob.n == 0 && p.decodeQ.n == 0
}

// step advances one cycle, stages in reverse pipeline order.
func (p *Pipeline) step() {
	p.commit()
	p.processCompletions()
	p.injectFlush()
	p.issue()
	p.dispatch()
	p.fetch()
	p.stats.OccupancySum += uint64(p.sched.Occupancy())
	if p.td != nil {
		p.td.EndCycle(p.sched.Occupancy(),
			p.cycle < p.fetchStallUntil && p.fetchStallIsRecovery,
			p.decodeQ.n >= p.cfg.DecodeQueue)
	}
	if p.obs != nil && p.obs.HeartbeatDue(p.cycle) {
		p.obs.Heartbeat(p.ObsSnapshot())
	}
	if p.audit != nil && p.auditErr == nil {
		if err := p.audit.Check(p); err != nil {
			err.(*check.ViolationError).Autopsy = check.Collect(p)
			p.auditErr = err
		}
	}
	p.cycle++
}

// injectFlush performs a fault-injected mid-ROB flush. The bound is an
// entry past the midpoint — never the head — so the flush stresses rename
// recovery and refetch without endangering forward progress.
func (p *Pipeline) injectFlush() {
	if p.inj == nil || p.rob.n < 2 || !p.inj.FlushNow(p.cycle) {
		return
	}
	idx := 1 + p.rob.n/2
	if idx >= p.rob.n {
		idx = p.rob.n - 1
	}
	p.flushFrom(p.rob.at(idx).u.Seq())
}

// --- Commit ---

func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.CommitWidth && p.rob.n > 0; n++ {
		e := p.rob.at(0)
		u, rec := e.u, e.rec
		if !u.Issued || u.CompleteCycle > p.cycle {
			return
		}
		p.rob.popFront()
		p.rn.Commit(rec)
		if u.D.IsStore() {
			// Stores write the data cache at commit and leave the SQ.
			p.mem.Store(u.D.Addr, p.cycle)
		}
		p.lsq.Remove(u)
		p.stats.Committed++
		p.totCommitted++
		p.lastCommitCycle = p.cycle
		p.stats.Record(u)
		if p.obs != nil {
			p.obs.ObserveCommit(u, p.cycle)
		}
		if p.audit != nil && p.auditErr == nil {
			if err := p.audit.ObserveCommit(u); err != nil {
				ve := err.(*check.ViolationError)
				ve.Cycle = p.cycle
				ve.Autopsy = check.Collect(p)
				p.auditErr = ve
			}
		}
		if p.OnCommit != nil {
			p.OnCommit(u)
		}
		u.Committed = true
		if u.WBDone {
			p.recycle(u)
		}
	}
}

// recycle returns a retired-and-written-back μop record to the arena.
// Disabled while an OnCommit observer is attached: observers may retain
// committed μops past their pipeline lifetime.
func (p *Pipeline) recycle(u *sched.UOp) {
	if p.OnCommit == nil {
		p.pool.put(u)
	}
}

// --- Execute / writeback events ---

func (p *Pipeline) processCompletions() {
	if p.cycle&(wheelSpan-1) == 0 && (!p.wheel.far.Empty() || p.wheel.ovCount > 0) {
		p.wheel.rotate(p.cycle)
	}
	slot := p.cycle & (wheelSpan - 1)
	u := p.wheel.heads[slot]
	if u == nil {
		return
	}
	p.wheel.heads[slot], p.wheel.tails[slot] = nil, nil
	for u != nil {
		next := u.WheelNext
		u.WheelNext = nil
		u.WBDone = true
		if u.Squashed {
			p.recycle(u)
			u = next
			continue
		}
		p.sched.Complete(u.Dst, p.cycle)
		p.rn.MarkReady(u.Dst)
		if p.obs != nil {
			p.obs.Emit(obs.Event{Kind: obs.KindWriteback, Cycle: p.cycle, Seq: u.Seq(),
				PC: uint64(u.D.PC), Op: u.D.Op, Cls: u.Cls, Port: int16(u.Port)})
			if u.Dst != rename.PhysNone {
				p.obs.Emit(obs.Event{Kind: obs.KindWakeup, Cycle: p.cycle, Seq: u.Seq(),
					Arg: uint64(u.Dst)})
			}
		}
		switch {
		case u.D.IsStore():
			// The store's address is now resolved: detect younger loads
			// that issued too early (memory order violation, §II-A).
			p.checkViolation(u)
		case u.D.IsBranch() && u.Mispred:
			// Fetch stopped at this branch (sentinel stall); resume after
			// the recovery penalty. No younger μop entered the pipeline,
			// so overwriting the stall is safe.
			p.fetchStallUntil = p.cycle + p.cfg.RecoveryPenalty
			p.fetchStallIsRecovery = true
		}
		if u.Squashed || u.Committed {
			p.recycle(u)
		}
		u = next
	}
}

// checkViolation flushes from the oldest younger load that read the same
// word before this store's address was known.
func (p *Pipeline) checkViolation(st *sched.UOp) {
	victim := p.lsq.ViolatingLoad(st)
	if victim == nil {
		return
	}
	if debugViolations {
		fmt.Printf("VIOLATION cyc=%d store seq=%d pc=%d issue=%d done=%d | load seq=%d pc=%d issue=%d mdpWait=%d blockedSince=%d\n",
			p.cycle, st.Seq(), st.D.PC, st.IssueCycle, st.CompleteCycle,
			victim.Seq(), victim.D.PC, victim.IssueCycle, victim.MDPWait, victim.MDPBlockedSince)
	}
	p.stats.Violations++
	if p.cfg.UseMDP {
		p.mdp.TrainViolation(uint64(st.D.PC), uint64(victim.D.PC))
	}
	p.flushFrom(victim.Seq())
}

// flushFrom squashes every μop with seq ≥ bound and redirects fetch to it.
func (p *Pipeline) flushFrom(bound uint64) {
	p.stats.Flushes++
	if p.obs != nil {
		p.obs.Emit(obs.Event{Kind: obs.KindFlush, Cycle: p.cycle, Seq: bound})
	}

	// RAT restoration must unwind renames in reverse rename order. The
	// decode queue holds only μops younger than everything in the ROB, so
	// its (renamed) entries are undone first, youngest first. Entries that
	// never renamed have no state to undo but still count as squashed for
	// the lifetime μop accounting.
	for i := p.decodeQ.n - 1; i >= 0; i-- {
		de := p.decodeQ.at(i)
		if de.renamed {
			p.squash(de.u, de.rec)
		} else {
			de.u.Squashed = true
			p.totSquashed++
			p.recycle(de.u) // never entered the scheduler, LSQ or wheel
		}
	}
	p.decodeQ.clear()

	cut := p.rob.n
	for i := 0; i < p.rob.n; i++ {
		if p.rob.at(i).u.Seq() >= bound {
			cut = i
			break
		}
	}
	for i := p.rob.n - 1; i >= cut; i-- {
		e := p.rob.at(i)
		p.squash(e.u, e.rec)
	}
	p.rob.truncate(cut)

	p.sched.Flush(bound)

	// Redirect fetch. Overwrite any pending stall: a squashed mispredicted
	// branch would otherwise leave its (now meaningless) sentinel behind.
	p.fetchIdx = int(bound)
	p.fetchStallUntil = p.cycle + p.cfg.RecoveryPenalty
	p.fetchStallIsRecovery = true
}

// squash undoes one μop's side effects (reverse program order).
func (p *Pipeline) squash(u *sched.UOp, rec rename.Entry) {
	u.Squashed = true
	p.totSquashed++
	p.stats.Squashed++
	if p.obs != nil {
		p.obs.Emit(obs.Event{Kind: obs.KindSquash, Cycle: p.cycle, Seq: u.Seq(),
			PC: uint64(u.D.PC), Op: u.D.Op})
	}
	p.rn.Squash(rec)
	if !u.Issued {
		p.portInflight[u.Port]--
	}
	p.lsq.Remove(u)
	if u.D.IsStore() && p.cfg.UseMDP {
		p.mdp.StoreSquashed(u.SSID, u.Seq())
	}
	// Unissued μops have no pending completion event; issued ones whose
	// event already fired won't see the wheel again. Either way this squash
	// is the record's last pipeline touchpoint.
	if !u.Issued || u.WBDone {
		p.recycle(u)
	}
}

// --- Issue / execute ---

// mdpResolved reports whether u's predicted producer store has issued.
func (p *Pipeline) mdpResolved(u *sched.UOp) bool {
	if u.MDPWait == mdp.NoStore {
		return true
	}
	st := p.lsq.StoreBySeq(u.MDPWait)
	if st == nil {
		return true // the store issued & committed, or was squashed
	}
	// The wait clears the cycle after the store's grant: the LFST release
	// propagates through the select logic, so an M-dependent μop cannot
	// be granted in the same cycle.
	return st.Issued && st.IssueCycle < p.cycle
}

func (p *Pipeline) ready(u *sched.UOp) bool {
	if !p.rn.FastReady(u.Src[0]) || !p.rn.FastReady(u.Src[1]) {
		return false
	}
	if u.D.Op.IsMem() && !p.mdpResolved(u) {
		// Honouring the wait cannot deadlock: every wait (register, FIFO
		// position, LFST) targets a strictly older μop, so the oldest
		// blocked μop always has an executing producer.
		if u.MDPBlockedSince == 0 {
			u.MDPBlockedSince = p.cycle
		}
		return false
	}
	if !sched.Pipelined(u.D.Op) && p.divBusyUntil[u.Port] > p.cycle {
		return false
	}
	return true
}

func (p *Pipeline) issue() {
	p.sched.Issue(p.cycle, &p.issueCtx)
}

// grant executes u: computes its completion time through the functional
// units, store queue and memory hierarchy, and wakes up consumers through
// the P-SCB.
func (p *Pipeline) grant(u *sched.UOp) {
	u.Issued = true
	u.IssueCycle = p.cycle
	p.stats.Issued++
	p.portInflight[u.Port]--
	u.ReadyCycle = p.readyCycleOf(u)

	lat := sched.Latency(u.D.Op)
	if !sched.Pipelined(u.D.Op) {
		p.divBusyUntil[u.Port] = p.cycle + lat
	}
	done := p.cycle + lat

	switch {
	case u.D.IsLoad():
		done = p.executeLoad(u)
	case u.D.IsStore():
		// AGU resolves the address at done; LFST releases at issue.
		if p.cfg.UseMDP {
			p.mdp.StoreIssued(u.SSID, u.Seq())
		}
	}

	if p.inj != nil {
		// Fault-injected latency jitter: applied before the completion
		// event and the wakeup timestamp so both stay consistent.
		done += p.inj.ExtraLatency(u, p.cycle)
	}

	u.CompleteCycle = done
	if u.Dst != rename.PhysNone {
		p.rn.SetReadyAt(u.Dst, done)
	}
	p.wheel.push(u, done, p.cycle)

	if p.obs != nil {
		p.obs.Emit(obs.Event{Kind: obs.KindIssue, Cycle: p.cycle, Seq: u.Seq(),
			PC: uint64(u.D.PC), Op: u.D.Op, Cls: u.Cls, Port: int16(u.Port), Arg: u.ReadyCycle})
		p.obs.Emit(obs.Event{Kind: obs.KindExec, Cycle: p.cycle, Seq: u.Seq(),
			PC: uint64(u.D.PC), Op: u.D.Op, Cls: u.Cls, Port: int16(u.Port), Arg: done})
	}
}

// readyCycleOf reconstructs when u's operands became available (for the
// dispatch→ready component of the delay breakdowns).
func (p *Pipeline) readyCycleOf(u *sched.UOp) uint64 {
	r := u.DispatchCycle
	for _, s := range u.Src {
		if at := p.rn.ReadyAt(s); at != rename.NeverReady && at > r {
			r = at
		}
	}
	return r
}

// executeLoad performs AGU + store-queue search + cache access and returns
// the completion cycle.
func (p *Pipeline) executeLoad(u *sched.UOp) uint64 {
	aguDone := p.cycle + sched.Latency(isa.OpLoad)
	// Store-to-load forwarding: the youngest older store to the same word
	// whose address/data resolve by the load's read (aguDone).
	if fwd := p.lsq.ForwardingStore(u, aguDone); fwd != nil {
		return aguDone + 2 // forwarding latency
	}
	return p.mem.Load(uint64(u.D.PC), u.D.Addr, aguDone)
}

// --- Rename / dispatch ---

func (p *Pipeline) dispatch() {
	if p.inj != nil && p.decodeQ.n > 0 && p.inj.StallDispatch(p.cycle) {
		p.dispatchStall(p.decodeQ.at(0).u, topdown.StallInjected)
		return
	}
	for n := 0; n < p.cfg.RenameWidth && p.decodeQ.n > 0; n++ {
		de := p.decodeQ.at(0)
		u := de.u
		if de.visibleAt > p.cycle {
			return // still in the fetch/decode/rename pipeline
		}
		if p.rob.n >= p.cfg.ROBSize {
			p.dispatchStall(u, topdown.StallROB)
			return
		}
		if !p.lsq.CanAccept(u) {
			p.dispatchStall(u, topdown.StallLSQ)
			return
		}
		if !de.renamed {
			if !p.renameOne(de) {
				p.dispatchStall(u, topdown.StallRename)
				return
			}
		}
		if !p.sched.Dispatch(u, p.cycle) {
			p.dispatchStall(u, topdown.StallIQ)
			return
		}
		// Accepted: enter ROB and LSQ. Push before popping the decode slot
		// (de points into the ring's storage).
		u.DispatchCycle = p.cycle
		u.ROB = p.rob.n
		p.rob.push(robEntry{u: u, rec: de.rec})
		p.lsq.Insert(u)
		p.decodeQ.popFront()
		if p.obs != nil {
			p.obs.Emit(obs.Event{Kind: obs.KindDispatch, Cycle: p.cycle, Seq: u.Seq(),
				PC: uint64(u.D.PC), Op: u.D.Op, Cls: u.Cls, Port: int16(u.Port)})
		}
	}
}

// dispatchStall counts (and, when observed, reports) a cycle in which the
// head μop could not move through rename/dispatch, splitting the legacy
// conflated counter by cause.
func (p *Pipeline) dispatchStall(u *sched.UOp, cause topdown.StallCause) {
	p.stats.DispatchStall++
	switch cause {
	case topdown.StallROB:
		p.stats.StallROBFull++
	case topdown.StallLSQ:
		p.stats.StallLSQFull++
	case topdown.StallRename:
		p.stats.StallRename++
	case topdown.StallIQ:
		p.stats.StallIQFull++
	case topdown.StallInjected:
		p.stats.StallInjected++
	}
	p.td.NoteDispatchStall(cause)
	if p.obs != nil {
		p.obs.Emit(obs.Event{Kind: obs.KindStall, Cycle: p.cycle, Seq: u.Seq(),
			PC: uint64(u.D.PC), Op: u.D.Op})
	}
}

// renameOne performs the two-stage rename of §IV-B for the head μop:
// RAT lookup, free-list allocation, recovery-log append, load-dependence
// classification and MDP dispatch.
func (p *Pipeline) renameOne(de *decodeEntry) bool {
	u := de.u
	src, dst, rec, ok := p.rn.Rename(u.D)
	if !ok {
		return false
	}
	u.Src = src
	u.Dst = dst
	de.rec = rec
	de.renamed = true

	// Ld/LdC/Rst classification (§II-C): a μop is LdC when any source's
	// producer is an incomplete load or itself load-dependent.
	switch {
	case u.D.IsLoad():
		u.Cls = sched.ClassLd
		p.rn.SetLoadDep(dst, true)
	default:
		dep := false
		for _, s := range src {
			if s == rename.PhysNone {
				continue
			}
			if p.rn.ReadyAt(s) > p.cycle && p.rn.LoadDep(s) {
				dep = true
			}
		}
		if dep {
			u.Cls = sched.ClassLdC
		} else {
			u.Cls = sched.ClassRst
		}
		p.rn.SetLoadDep(dst, dep)
	}

	// Memory dependence prediction at dispatch (§II-A).
	u.MDPWait = mdp.NoStore
	u.SSID = -1
	if p.cfg.UseMDP {
		switch {
		case u.D.IsLoad():
			u.MDPWait, u.SSID = p.mdp.LoadDispatched(uint64(u.D.PC))
		case u.D.IsStore():
			u.MDPWait, u.SSID = p.mdp.StoreDispatched(uint64(u.D.PC), u.Seq(), mdp.NoIQ)
		}
	}

	// Fault-injected memory-dependence wait: target the youngest unissued
	// store, which is strictly older than u (u is not in the LSQ yet), so
	// fabricated waits cannot form a cycle.
	if p.inj != nil && u.D.Op.IsMem() && u.MDPWait == mdp.NoStore &&
		p.inj.ForceMDPWait(u, p.cycle) {
		if st := p.lsq.YoungestUnissuedStore(); st != nil {
			u.MDPWait = st.Seq()
		}
	}

	// Issue-port arbitration (§II-A): least-loaded suitable port.
	u.Port = p.cfg.Ports.Pick(u.D.Op, p.portInflight)
	p.portInflight[u.Port]++

	if p.obs != nil {
		p.obs.Emit(obs.Event{Kind: obs.KindDecode, Cycle: u.DecodeCycle, Seq: u.Seq(),
			PC: uint64(u.D.PC), Op: u.D.Op, Label: u.D.String()})
		p.obs.Emit(obs.Event{Kind: obs.KindRename, Cycle: p.cycle, Seq: u.Seq(),
			PC: uint64(u.D.PC), Op: u.D.Op, Cls: u.Cls, Port: int16(u.Port), Arg: uint64(u.Dst)})
	}
	return true
}

// --- Fetch / decode ---

func (p *Pipeline) fetch() {
	if p.cycle < p.fetchStallUntil {
		return
	}
	for n := 0; n < p.cfg.FetchWidth; n++ {
		if p.fetchIdx >= len(p.trace) || p.decodeQ.n >= p.cfg.DecodeQueue {
			return
		}
		d := &p.trace[p.fetchIdx]

		// Instruction cache: 4-byte slots; a miss stalls the front end.
		iAddr := uint64(d.PC) * 4
		if fdone := p.mem.Fetch(iAddr, p.cycle); fdone > p.cycle+p.cfg.Mem.L1I.HitLatency {
			p.fetchStallUntil = fdone
			p.fetchStallIsRecovery = false // icache miss: frontend, not recovery
			return
		}

		u := p.pool.get()
		u.D = d
		u.DecodeCycle = p.cycle + 2 // after the fetch and decode stages
		u.MDPWait = mdp.NoStore
		u.SSID = -1
		p.stats.Fetched++
		p.totFetched++
		p.decodeQ.push(decodeEntry{u: u, visibleAt: p.cycle + p.cfg.FrontLatency})
		p.fetchIdx++
		if p.obs != nil {
			p.obs.Emit(obs.Event{Kind: obs.KindFetch, Cycle: p.cycle, Seq: u.Seq(),
				PC: uint64(d.PC), Op: d.Op})
		}

		if d.IsBranch() {
			p.stats.Branches++
			predTaken, tgt, known := p.pred.Predict(uint64(d.PC))
			effTaken := predTaken && known
			predNext := d.PC + 1
			if effTaken {
				predNext = tgt
			}
			p.pred.Update(uint64(d.PC), d.Taken, d.Next)
			if predNext != d.Next {
				// Mispredict: the front end follows the wrong path, so
				// fetch stops here until the branch resolves and the
				// pipeline recovers (§IV-F).
				p.stats.Mispredicts++
				u.Mispred = true
				p.fetchStallUntil = ^uint64(0) >> 1 // resolved at completion
				p.fetchStallIsRecovery = true
				return
			}
			if d.Taken {
				return // a taken branch ends the fetch group
			}
		}
	}
}

// debugViolations enables verbose violation tracing for diagnostics.
var debugViolations = false
