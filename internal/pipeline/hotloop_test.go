package pipeline_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/workload"
)

// hotLoopArchs covers every scheduler implementation (and the OoO
// oldest-first selection variant, whose issue loop takes a different path).
var hotLoopArchs = []config.Arch{
	config.ArchInO,
	config.ArchOoO,
	config.ArchOoOOldest,
	config.ArchCESMDA,
	config.ArchCASINO,
	config.ArchFXA,
	config.ArchBallerino,
	config.ArchBallerinoIdeal,
}

func hotLoopTrace(t testing.TB, wl string, ops int) []isa.DynInst {
	t.Helper()
	w, err := workload.ByName(wl, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return prog.MustExecute(w.Program, ops).Ops
}

// TestSteadyStateAllocs proves the zero-allocation contract of the cycle
// engine: once the pipeline is warmed (arenas grown to the workload's peak,
// ring buffers and scratch structs at full size), simulating additional
// μops must not allocate at all. The mixed kernel exercises loads, stores,
// branches, violations and flush recovery — every recycling path.
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is not worth it in -short")
	}
	const totalOps = 400_000
	tr := hotLoopTrace(t, "mixed", totalOps)
	for _, arch := range hotLoopArchs {
		t.Run(string(arch), func(t *testing.T) {
			m := config.MustMachine(arch, 8, config.Options{})
			pl, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatal(err)
			}
			// Warm every pool and table well past the steady-state water
			// mark before measuring.
			if _, err := pl.Run(50_000); err != nil {
				t.Fatal(err)
			}
			target := pl.Stats().Committed
			avg := testing.AllocsPerRun(10, func() {
				target += 5_000
				if _, err := pl.Run(target); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("%s: %.1f allocs per 5k-commit slice in steady state, want 0", arch, avg)
			}
		})
	}
}

// BenchmarkHotLoop measures end-to-end simulation throughput per scheduler
// over the tier-1 micro workloads (the bench.DefaultConfigs kernel spread),
// reporting simulated μops per wall-clock second.
func BenchmarkHotLoop(b *testing.B) {
	const ops = 30_000
	wls := []string{"stream", "pointer-chase", "store-load", "branchy"}
	traces := make([][]isa.DynInst, len(wls))
	for i, wl := range wls {
		traces[i] = hotLoopTrace(b, wl, ops)
	}
	for _, arch := range hotLoopArchs {
		b.Run(string(arch), func(b *testing.B) {
			var committed uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, tr := range traces {
					m := config.MustMachine(arch, 8, config.Options{MaxCycles: ops * 100})
					pl, err := pipeline.New(m.Pipeline, tr, m.Factory)
					if err != nil {
						b.Fatal(err)
					}
					st, err := pl.Run(uint64(len(tr)))
					if err != nil {
						b.Fatal(err)
					}
					committed += st.Committed
				}
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(committed)/s, "uops/sec")
			}
		})
	}
}

// BenchmarkHotLoopSteady isolates the per-cycle cost from construction and
// cold-start: one warmed pipeline per scheduler, timed over commit slices.
func BenchmarkHotLoopSteady(b *testing.B) {
	const totalOps = 4_000_000
	tr := hotLoopTrace(b, "mixed", totalOps)
	for _, arch := range hotLoopArchs {
		b.Run(string(arch), func(b *testing.B) {
			m := config.MustMachine(arch, 8, config.Options{})
			pl, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pl.Run(50_000); err != nil {
				b.Fatal(err)
			}
			target := pl.Stats().Committed
			before := target
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target += 10_000
				if pl.Stats().Committed+10_000 > totalOps {
					b.StopTimer()
					b.Fatal(fmt.Sprintf("trace exhausted after %d commits; raise totalOps", pl.Stats().Committed))
				}
				if _, err := pl.Run(target); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(pl.Stats().Committed-before)/s, "uops/sec")
			}
		})
	}
}
