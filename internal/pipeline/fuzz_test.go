package pipeline_test

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestFuzzSchedulerEquivalence is the cross-scheduler oracle: for randomly
// generated programs, every microarchitecture must commit the identical
// correct-path μop stream (same sequence numbers, in order, exactly once),
// never violate issue-before-ready, and stay within the issue-width IPC
// bound. Timing may differ; semantics may not.
func TestFuzzSchedulerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	seeds := []uint64{1, 7, 42, 1234, 99999}
	archs := config.AllArchs()
	const ops = 5000

	for _, seed := range seeds {
		w := workload.Random(workload.RandomParams{Seed: seed})
		tr := traceOf(t, w, ops)
		for _, arch := range archs {
			arch := arch
			m := config.MustMachine(arch, 8, config.Options{MaxCycles: 2_000_000})
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, arch, err)
			}
			next := uint64(0)
			p.OnCommit = func(u *sched.UOp) {
				if u.Seq() != next {
					t.Fatalf("seed %d %s: commit seq %d, want %d", seed, arch, u.Seq(), next)
				}
				if u.IssueCycle < u.ReadyCycle || u.CompleteCycle <= u.IssueCycle {
					t.Fatalf("seed %d %s: timing invariant broken at seq %d", seed, arch, u.Seq())
				}
				next++
			}
			s, err := p.Run(uint64(len(tr)))
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, arch, err, p.DebugState())
			}
			if next != uint64(len(tr)) {
				t.Fatalf("seed %d %s: committed %d of %d", seed, arch, next, len(tr))
			}
			if ipc := s.IPC(); ipc <= 0 || ipc > 8 {
				t.Fatalf("seed %d %s: IPC %f out of bounds", seed, arch, ipc)
			}
		}
	}
}

// TestFuzzReplayDifferential pits the zero-alloc engine against the
// independent functional golden model: random programs run with the
// invariant auditor enabled while prog.Replay re-executes every committed
// μop from its own architectural state. A hot-path bug that commits a
// recycled record, reorders the stream, or corrupts a μop's payload
// surfaces as a concrete architectural divergence.
func TestFuzzReplayDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	seeds := []uint64{3, 17, 256, 4093, 70707}
	const ops = 4000
	for _, seed := range seeds {
		w := workload.Random(workload.RandomParams{Seed: seed})
		tr := traceOf(t, w, ops)
		for _, arch := range config.AllArchs() {
			m := config.MustMachine(arch, 8, config.Options{MaxCycles: 2_000_000})
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, arch, err)
			}
			p.EnableAudit()
			replay := prog.NewReplay(w.Program)
			p.OnCommit = func(u *sched.UOp) {
				if err := replay.Apply(u.D); err != nil {
					t.Fatalf("seed %d %s: %v", seed, arch, err)
				}
			}
			if _, err := p.Run(uint64(len(tr))); err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, arch, err, p.DebugState())
			}
			if replay.Ops() != uint64(len(tr)) {
				t.Fatalf("seed %d %s: replayed %d of %d μops", seed, arch, replay.Ops(), len(tr))
			}
		}
	}
}

// TestFuzzRecycleEquivalence proves the μop arena is invisible: the same
// trace runs twice per architecture, once with an OnCommit observer
// attached (which disables record recycling) and once without (recycling
// active), and every deterministic observable must be byte-identical.
// Any dependence of simulation behaviour on record reuse diverges here.
func TestFuzzRecycleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	seeds := []uint64{11, 1337}
	const ops = 4000
	for _, seed := range seeds {
		w := workload.Random(workload.RandomParams{Seed: seed})
		tr := traceOf(t, w, ops)
		for _, arch := range config.AllArchs() {
			run := func(observe bool) []byte {
				m := config.MustMachine(arch, 8, config.Options{MaxCycles: 2_000_000})
				p, err := pipeline.New(m.Pipeline, tr, m.Factory)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, arch, err)
				}
				if observe {
					p.OnCommit = func(u *sched.UOp) {}
				}
				if _, err := p.Run(uint64(len(tr))); err != nil {
					t.Fatalf("seed %d %s (observe=%v): %v", seed, arch, observe, err)
				}
				return goldenDigest(p, arch, "fuzz")
			}
			pooled, observed := run(false), run(true)
			if !bytes.Equal(pooled, observed) {
				t.Fatalf("seed %d %s: recycling changed observable behaviour:\npooled:\n%s\nobserved:\n%s",
					seed, arch, pooled, observed)
			}
		}
	}
}

// TestFuzzWideAndNarrow runs random programs through the 2- and 10-wide
// configurations to exercise the scaled port maps and window sizes.
func TestFuzzWideAndNarrow(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	for _, width := range []int{2, 10} {
		for _, arch := range []config.Arch{config.ArchOoO, config.ArchBallerino, config.ArchCASINO} {
			w := workload.Random(workload.RandomParams{Seed: uint64(width) * 31})
			tr := traceOf(t, w, 4000)
			m := config.MustMachine(arch, width, config.Options{MaxCycles: 2_000_000})
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(uint64(len(tr))); err != nil {
				t.Fatalf("%d-wide %s: %v", width, arch, err)
			}
			if got := p.Stats().Committed; got != uint64(len(tr)) {
				t.Fatalf("%d-wide %s: committed %d", width, arch, got)
			}
		}
	}
}

// TestFuzzTinyWindows shrinks every structure to force continuous
// backpressure, flushes and structural stalls.
func TestFuzzTinyWindows(t *testing.T) {
	for _, arch := range []config.Arch{config.ArchBallerino, config.ArchCES, config.ArchOoO} {
		m := config.MustMachine(arch, 8, config.Options{
			MaxCycles: 2_000_000,
			NumPIQs:   2,
			PIQDepth:  4,
		})
		m.Pipeline.ROBSize = 16
		m.Pipeline.LQSize = 4
		m.Pipeline.SQSize = 4
		m.Pipeline.DecodeQueue = 8
		w := workload.Random(workload.RandomParams{Seed: 5})
		tr := traceOf(t, w, 3000)
		p, err := pipeline.New(m.Pipeline, tr, m.Factory)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(uint64(len(tr))); err != nil {
			t.Fatalf("%s tiny windows: %v\n%s", arch, err, p.DebugState())
		}
	}
}
