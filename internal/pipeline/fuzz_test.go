package pipeline_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestFuzzSchedulerEquivalence is the cross-scheduler oracle: for randomly
// generated programs, every microarchitecture must commit the identical
// correct-path μop stream (same sequence numbers, in order, exactly once),
// never violate issue-before-ready, and stay within the issue-width IPC
// bound. Timing may differ; semantics may not.
func TestFuzzSchedulerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	seeds := []uint64{1, 7, 42, 1234, 99999}
	archs := config.AllArchs()
	const ops = 5000

	for _, seed := range seeds {
		w := workload.Random(workload.RandomParams{Seed: seed})
		tr := traceOf(t, w, ops)
		for _, arch := range archs {
			arch := arch
			m := config.MustMachine(arch, 8, config.Options{MaxCycles: 2_000_000})
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, arch, err)
			}
			next := uint64(0)
			p.OnCommit = func(u *sched.UOp) {
				if u.Seq() != next {
					t.Fatalf("seed %d %s: commit seq %d, want %d", seed, arch, u.Seq(), next)
				}
				if u.IssueCycle < u.ReadyCycle || u.CompleteCycle <= u.IssueCycle {
					t.Fatalf("seed %d %s: timing invariant broken at seq %d", seed, arch, u.Seq())
				}
				next++
			}
			s, err := p.Run(uint64(len(tr)))
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, arch, err, p.DebugState())
			}
			if next != uint64(len(tr)) {
				t.Fatalf("seed %d %s: committed %d of %d", seed, arch, next, len(tr))
			}
			if ipc := s.IPC(); ipc <= 0 || ipc > 8 {
				t.Fatalf("seed %d %s: IPC %f out of bounds", seed, arch, ipc)
			}
		}
	}
}

// TestFuzzWideAndNarrow runs random programs through the 2- and 10-wide
// configurations to exercise the scaled port maps and window sizes.
func TestFuzzWideAndNarrow(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	for _, width := range []int{2, 10} {
		for _, arch := range []config.Arch{config.ArchOoO, config.ArchBallerino, config.ArchCASINO} {
			w := workload.Random(workload.RandomParams{Seed: uint64(width) * 31})
			tr := traceOf(t, w, 4000)
			m := config.MustMachine(arch, width, config.Options{MaxCycles: 2_000_000})
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(uint64(len(tr))); err != nil {
				t.Fatalf("%d-wide %s: %v", width, arch, err)
			}
			if got := p.Stats().Committed; got != uint64(len(tr)) {
				t.Fatalf("%d-wide %s: committed %d", width, arch, got)
			}
		}
	}
}

// TestFuzzTinyWindows shrinks every structure to force continuous
// backpressure, flushes and structural stalls.
func TestFuzzTinyWindows(t *testing.T) {
	for _, arch := range []config.Arch{config.ArchBallerino, config.ArchCES, config.ArchOoO} {
		m := config.MustMachine(arch, 8, config.Options{
			MaxCycles: 2_000_000,
			NumPIQs:   2,
			PIQDepth:  4,
		})
		m.Pipeline.ROBSize = 16
		m.Pipeline.LQSize = 4
		m.Pipeline.SQSize = 4
		m.Pipeline.DecodeQueue = 8
		w := workload.Random(workload.RandomParams{Seed: 5})
		tr := traceOf(t, w, 3000)
		p, err := pipeline.New(m.Pipeline, tr, m.Factory)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(uint64(len(tr))); err != nil {
			t.Fatalf("%s tiny windows: %v\n%s", arch, err, p.DebugState())
		}
	}
}
