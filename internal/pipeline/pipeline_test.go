package pipeline_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sched"
	"repro/internal/workload"
)

const (
	testOps    = 30000
	testCycles = 3_000_000
)

func traceOf(t *testing.T, w workload.Workload, n int) []isa.DynInst {
	t.Helper()
	return prog.MustExecute(w.Program, n).Ops
}

func runArch(t *testing.T, arch config.Arch, w workload.Workload, n int) (*pipeline.Pipeline, float64) {
	t.Helper()
	m := config.MustMachine(arch, 8, config.Options{MaxCycles: testCycles})
	tr := traceOf(t, w, n)
	p, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Run(uint64(n))
	if err != nil {
		t.Fatalf("%s on %s: %v", arch, w.Name, err)
	}
	return p, s.IPC()
}

func TestEveryArchRunsEveryKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	params := workload.Params{Footprint: 1 << 20}
	for _, arch := range config.AllArchs() {
		for _, w := range workload.All(params) {
			arch, w := arch, w
			t.Run(string(arch)+"/"+w.Name, func(t *testing.T) {
				p, ipc := runArch(t, arch, w, 8000)
				if got := p.Stats().Committed; got != 8000 {
					t.Fatalf("committed %d of 8000", got)
				}
				if ipc <= 0 || ipc > 8 {
					t.Fatalf("IPC = %.3f out of range", ipc)
				}
			})
		}
	}
}

// TestCommitOrderAndExactlyOnce checks the DESIGN.md §6 ROB invariant:
// every correct-path μop commits exactly once, in program order, even with
// flushes and replays in between.
func TestCommitOrderAndExactlyOnce(t *testing.T) {
	for _, arch := range []config.Arch{config.ArchOoO, config.ArchBallerino, config.ArchCES} {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			m := config.MustMachine(arch, 8, config.Options{MaxCycles: testCycles})
			tr := traceOf(t, workload.StoreLoad(workload.Params{}), 10000)
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatal(err)
			}
			next := uint64(0)
			p.OnCommit = func(u *sched.UOp) {
				if u.Seq() != next {
					t.Fatalf("commit order broken: got seq %d, want %d", u.Seq(), next)
				}
				next++
			}
			if _, err := p.Run(10000); err != nil {
				t.Fatal(err)
			}
			if next != 10000 {
				t.Fatalf("committed %d, want 10000", next)
			}
		})
	}
}

// TestNoIssueBeforeReady checks the fundamental scheduling invariant for a
// sample of microarchitectures: a μop never issues before its operands are
// available and never completes before it issues.
func TestNoIssueBeforeReady(t *testing.T) {
	for _, arch := range []config.Arch{
		config.ArchInO, config.ArchOoO, config.ArchCES,
		config.ArchCASINO, config.ArchFXA, config.ArchBallerino,
	} {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			m := config.MustMachine(arch, 8, config.Options{MaxCycles: testCycles})
			tr := traceOf(t, workload.Mixed(workload.Params{Footprint: 1 << 20}), 8000)
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatal(err)
			}
			p.OnCommit = func(u *sched.UOp) {
				if u.IssueCycle < u.ReadyCycle {
					t.Fatalf("seq %d issued at %d before ready at %d", u.Seq(), u.IssueCycle, u.ReadyCycle)
				}
				if u.IssueCycle < u.DispatchCycle {
					t.Fatalf("seq %d issued at %d before dispatch at %d", u.Seq(), u.IssueCycle, u.DispatchCycle)
				}
				if u.CompleteCycle <= u.IssueCycle {
					t.Fatalf("seq %d completed at %d not after issue at %d", u.Seq(), u.CompleteCycle, u.IssueCycle)
				}
			}
			if _, err := p.Run(8000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInOrderIssueIsMonotone: the in-order core must issue in program order.
func TestInOrderIssueIsMonotone(t *testing.T) {
	m := config.MustMachine(config.ArchInO, 8, config.Options{MaxCycles: testCycles})
	tr := traceOf(t, workload.Compute(workload.Params{}), 6000)
	p, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	last := uint64(0)
	p.OnCommit = func(u *sched.UOp) {
		if u.IssueCycle < last {
			t.Fatalf("seq %d issued at %d, older op issued at %d", u.Seq(), u.IssueCycle, last)
		}
		last = u.IssueCycle
	}
	if _, err := p.Run(6000); err != nil {
		t.Fatal(err)
	}
}

func TestOoOBeatsInOOnCompute(t *testing.T) {
	w := workload.Compute(workload.Params{})
	_, inoIPC := runArch(t, config.ArchInO, w, 12000)
	_, oooIPC := runArch(t, config.ArchOoO, w, 12000)
	if oooIPC <= inoIPC {
		t.Errorf("OoO IPC %.3f not above InO %.3f", oooIPC, inoIPC)
	}
}

func TestOoOToleratesCacheMissesBetter(t *testing.T) {
	// Pointer chase over an L3-overflowing footprint: the OoO core should
	// hide some latency (MLP for the payload loads) relative to InO.
	w := workload.PointerChase(workload.Params{Footprint: 4 << 20})
	_, inoIPC := runArch(t, config.ArchInO, w, 6000)
	_, oooIPC := runArch(t, config.ArchOoO, w, 6000)
	if oooIPC < inoIPC {
		t.Errorf("OoO IPC %.3f below InO %.3f on pointer chase", oooIPC, inoIPC)
	}
}

func TestMDPReducesViolations(t *testing.T) {
	w := workload.StoreLoad(workload.Params{})
	tr := traceOf(t, w, 20000)

	run := func(disable bool) *pipeline.Pipeline {
		m := config.MustMachine(config.ArchOoO, 8, config.Options{
			MaxCycles:  testCycles,
			DisableMDP: disable,
		})
		p, err := pipeline.New(m.Pipeline, tr, m.Factory)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(20000); err != nil {
			t.Fatal(err)
		}
		return p
	}
	noMDP := run(true)
	withMDP := run(false)

	vNo, vYes := noMDP.Stats().Violations, withMDP.Stats().Violations
	if vNo == 0 {
		t.Fatal("store-load kernel produced no violations without MDP")
	}
	// The paper reports MDP removing 96% of violations.
	if float64(vYes) > 0.2*float64(vNo) {
		t.Errorf("MDP left %d of %d violations (>20%%)", vYes, vNo)
	}
	// The paper's 1.5× speedup does not reproduce on this suite: replayed
	// loads merge into still-in-flight fills, so violation flushes are
	// cheap in memory-bound code (see EXPERIMENTS.md §III-B). Require
	// only that honouring the predictions is not costly.
	if ipcOn, ipcOff := withMDP.Stats().IPC(), noMDP.Stats().IPC(); ipcOn < 0.85*ipcOff {
		t.Errorf("MDP cost too much IPC: %.3f vs %.3f", ipcOn, ipcOff)
	}
}

func TestBranchyWorkloadMispredicts(t *testing.T) {
	p, _ := runArch(t, config.ArchOoO, workload.Branchy(workload.Params{}), 12000)
	s := p.Stats()
	if s.Branches == 0 {
		t.Fatal("no branches recorded")
	}
	rate := s.MispredictRate()
	// ~half the branches are a coin flip on hashed data; the loop branches
	// are easy. Expect a rate clearly above zero but below 60%.
	if rate < 0.02 || rate > 0.6 {
		t.Errorf("mispredict rate = %.3f, expected hard-but-not-impossible", rate)
	}
}

func TestStreamMispredictsRare(t *testing.T) {
	p, _ := runArch(t, config.ArchOoO, workload.Stream(workload.Params{Footprint: 1 << 20}), 12000)
	if rate := p.Stats().MispredictRate(); rate > 0.05 {
		t.Errorf("stream mispredict rate = %.3f, want ≈0", rate)
	}
}

func TestDelayBreakdownRecorded(t *testing.T) {
	p, _ := runArch(t, config.ArchOoO, workload.PointerChase(workload.Params{Footprint: 2 << 20}), 8000)
	s := p.Stats()
	if s.Delay[sched.ClassLd].Count == 0 {
		t.Error("no loads classified")
	}
	if s.Delay[sched.ClassLdC].Count == 0 {
		t.Error("no load-dependents classified")
	}
	if s.Delay[sched.ClassRst].Count == 0 {
		t.Error("no Rst μops classified")
	}
	// Pointer chase: load consumers wait for cache misses, so LdC
	// dispatch→ready delay must dominate Rst's.
	_, ldcWait, _ := s.Delay[sched.ClassLdC].Avg()
	_, rstWait, _ := s.Delay[sched.ClassRst].Avg()
	if ldcWait <= rstWait {
		t.Errorf("LdC wait %.1f not above Rst wait %.1f", ldcWait, rstWait)
	}
}

func TestSchedulerOccupancyBounded(t *testing.T) {
	for _, arch := range []config.Arch{config.ArchOoO, config.ArchCES, config.ArchBallerino, config.ArchCASINO} {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			m := config.MustMachine(arch, 8, config.Options{MaxCycles: testCycles})
			tr := traceOf(t, workload.HashJoin(workload.Params{Footprint: 1 << 20}), 6000)
			p, err := pipeline.New(m.Pipeline, tr, m.Factory)
			if err != nil {
				t.Fatal(err)
			}
			capacity := p.Scheduler().Capacity()
			done := make(chan struct{})
			go func() { defer close(done); p.Run(6000) }()
			<-done
			if occ := p.Scheduler().Occupancy(); occ > capacity {
				t.Errorf("occupancy %d exceeds capacity %d", occ, capacity)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	bad := pipeline.DefaultConfig()
	bad.Ports = nil
	if bad.Validate() == nil {
		t.Error("nil ports accepted")
	}
	bad = pipeline.DefaultConfig()
	bad.IssueWidth = 3
	if bad.Validate() == nil {
		t.Error("mismatched issue width accepted")
	}
	bad = pipeline.DefaultConfig()
	bad.ROBSize = 0
	if bad.Validate() == nil {
		t.Error("zero ROB accepted")
	}
	if _, err := pipeline.New(bad, nil, nil); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	m := config.MustMachine(config.ArchOoO, 8, config.Options{MaxCycles: 10})
	tr := traceOf(t, workload.PointerChase(workload.Params{Footprint: 4 << 20}), 5000)
	p, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(5000); err == nil {
		t.Error("MaxCycles=10 did not abort")
	}
}
