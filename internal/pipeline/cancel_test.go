package pipeline_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

// loopProgram builds an unbounded counting loop — enough dynamic μops for
// any cancellation test.
func loopProgram() *prog.Program {
	b := prog.NewBuilder("cancel-loop")
	b.MovImm(isa.R(1), 0)
	top := b.NewLabel()
	b.Bind(top)
	b.AddImm(isa.R(1), isa.R(1), 1)
	b.AddImm(isa.R(2), isa.R(1), 3)
	b.Jmp(top)
	return b.Build()
}

func cancelPipeline(t *testing.T, ops int) *pipeline.Pipeline {
	t.Helper()
	m := config.MustMachine(config.ArchOoO, 8, config.Options{})
	tr := prog.MustExecute(loopProgram(), ops)
	p, err := pipeline.New(m.Pipeline, tr.Ops, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRunContextPreCancelled: a context cancelled before Run starts stops
// the simulation at the first poll boundary (cycle 0) with a wrapped
// context.Canceled.
func TestRunContextPreCancelled(t *testing.T) {
	p := cancelPipeline(t, 100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := p.RunContext(ctx, 100_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Committed != 0 {
		t.Errorf("committed %d μops under a pre-cancelled context, want 0", s.Committed)
	}
}

// TestRunContextCancelMidRun: cancelling from another goroutine stops a
// long simulation well before it drains, leaving readable partial stats.
func TestRunContextCancelMidRun(t *testing.T) {
	const ops = 2_000_000
	p := cancelPipeline(t, ops)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	s, err := p.RunContext(ctx, ops)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Committed == 0 || s.Committed >= ops {
		t.Errorf("committed = %d, want a partial count in (0, %d)", s.Committed, ops)
	}
	if s.Cycles == 0 {
		t.Error("partial stats have no cycle count")
	}
}

// TestRunContextDeadline: a deadline surfaces as context.DeadlineExceeded
// through the same path.
func TestRunContextDeadline(t *testing.T) {
	const ops = 2_000_000
	p := cancelPipeline(t, ops)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := p.RunContext(ctx, ops); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextBackgroundUnchanged: Run (and RunContext with a
// background context) still drains the trace exactly as before.
func TestRunContextBackgroundUnchanged(t *testing.T) {
	const ops = 5_000
	p := cancelPipeline(t, ops)
	s, err := p.RunContext(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if s.Committed != ops {
		t.Errorf("committed = %d, want %d", s.Committed, ops)
	}
}
