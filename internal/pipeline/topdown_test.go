package pipeline_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/topdown"
)

// runTopdown simulates one arch × workload pair with cycle accounting and
// the invariant auditor attached, so the slot-conservation invariant is
// verified at every single cycle, not just at the end.
func runTopdown(t *testing.T, arch config.Arch, wl string, ops int) (*pipeline.Pipeline, *topdown.Engine) {
	t.Helper()
	tr := goldenTrace(t, wl)
	if ops < len(tr) {
		tr = tr[:ops]
	}
	m := config.MustMachine(arch, goldenWidth, config.Options{MaxCycles: uint64(ops) * 100})
	pl, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	td := topdown.New(m.Pipeline.IssueWidth)
	pl.AttachTopdown(td)
	pl.EnableAudit()
	if _, err := pl.Run(uint64(len(tr))); err != nil {
		t.Fatalf("%s/%s: %v", arch, wl, err)
	}
	return pl, td
}

// TestTopdownConservation proves the accounting identity — every issue
// slot of every cycle blamed exactly once — across the full tier-1 grid:
// all twelve architectures over the four tier-1 kernels, with the auditor
// checking the invariant per cycle and the test re-checking the final
// totals and the category/stat cross-ties.
func TestTopdownConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("full tier-1 grid; skipped in -short")
	}
	for _, arch := range config.AllArchs() {
		for _, wl := range goldenWorkloads {
			arch, wl := arch, wl
			t.Run(fmt.Sprintf("%s/%s", arch, wl), func(t *testing.T) {
				t.Parallel()
				pl, td := runTopdown(t, arch, wl, 10_000)

				got, want, on := td.Conservation()
				if !on {
					t.Fatal("engine reports off")
				}
				if got != want {
					t.Fatalf("conservation: blamed %d slots, want width×cycles = %d", got, want)
				}

				st := pl.Stats()
				counts := td.Counts()

				// Base slots equal issued μops up to the over-issue clamp
				// (FXA's IXU can execute beyond the backend width).
				if counts[topdown.Base]+td.OverIssue() != st.Issued {
					t.Errorf("base %d + over-issue %d ≠ issued %d",
						counts[topdown.Base], td.OverIssue(), st.Issued)
				}

				// The typed dispatch-stall split must sum to the legacy
				// conflated counter.
				sum := st.StallROBFull + st.StallLSQFull + st.StallRename +
					st.StallIQFull + st.StallInjected
				if sum != st.DispatchStall {
					t.Errorf("typed stalls sum %d ≠ dispatch stalls %d", sum, st.DispatchStall)
				}

				// A structural dispatch category can only be charged if the
				// matching typed stall fired at least once.
				for cat, stat := range map[topdown.Category]uint64{
					topdown.ROBFull:     st.StallROBFull,
					topdown.LSQFull:     st.StallLSQFull,
					topdown.RenameStall: st.StallRename,
					topdown.IQFull:      st.StallIQFull,
				} {
					if counts[cat] > 0 && stat == 0 {
						t.Errorf("category %s charged %d slots but its stall counter is 0",
							cat, counts[cat])
					}
				}
			})
		}
	}
}

// TestTopdownLittlesLaw is the Carroll & Lin closed-form cross-check on the
// stream kernel: over the scheduling window, average occupancy must equal
// issue rate × average dispatch→issue residency (Little's law). A broken
// slot attribution would desynchronise the occupancy-driven categories from
// the queue model this identity pins down.
func TestTopdownLittlesLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a long steady-state region; skipped in -short")
	}
	pl, td := runTopdown(t, config.ArchOoO, "stream", 30_000)
	st := pl.Stats()
	if st.All.Count == 0 || st.Cycles == 0 {
		t.Fatal("empty run")
	}

	occupancy := float64(st.OccupancySum) / float64(st.Cycles) // L
	issueRate := float64(st.Issued) / float64(st.Cycles)       // λ
	residency := float64(st.All.DispatchToReady+st.All.ReadyToIssue) /
		float64(st.All.Count) // W

	want := issueRate * residency
	if want == 0 {
		t.Fatal("degenerate Little's-law terms")
	}
	if rel := (occupancy - want) / want; rel > 0.10 || rel < -0.10 {
		t.Errorf("Little's law: occupancy %.3f vs λ·W = %.3f·%.3f = %.3f (%.1f%% off, tolerance 10%%)",
			occupancy, issueRate, residency, want, rel*100)
	}

	// The stream kernel at an 8 MiB-class footprint is memory-bound: the
	// memory category must dominate the idle slots.
	counts := td.Counts()
	var idleMax topdown.Category
	for c := topdown.Category(1); c < topdown.NumCategories; c++ {
		if counts[c] > counts[idleMax] || idleMax == topdown.Base {
			idleMax = c
		}
	}
	if idleMax != topdown.Memory {
		t.Errorf("stream idle slots dominated by %s, want memory (counts %v)", idleMax, counts)
	}
}

// TestTopdownSteadyStateAllocs extends the zero-allocation contract to the
// accounting-on configuration: the engine's per-cycle scratch is scalar, so
// attaching it must not introduce steady-state allocations either.
func TestTopdownSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is not worth it in -short")
	}
	const totalOps = 400_000
	tr := hotLoopTrace(t, "mixed", totalOps)
	m := config.MustMachine(config.ArchBallerino, 8, config.Options{})
	pl, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	pl.AttachTopdown(topdown.New(8))
	if _, err := pl.Run(50_000); err != nil {
		t.Fatal(err)
	}
	target := pl.Stats().Committed
	avg := testing.AllocsPerRun(10, func() {
		target += 5_000
		if _, err := pl.Run(target); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("%.1f allocs per 5k-commit slice with topdown attached, want 0", avg)
	}
}

// TestTopdownDetach verifies AttachTopdown(nil) restores the original
// issue-path closures and the conservation surface reports off.
func TestTopdownDetach(t *testing.T) {
	tr := goldenTrace(t, "stream")[:2_000]
	m := config.MustMachine(config.ArchOoO, goldenWidth, config.Options{})
	pl, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	pl.AttachTopdown(topdown.New(goldenWidth))
	pl.AttachTopdown(nil)
	if pl.Topdown() != nil {
		t.Fatal("engine still attached")
	}
	if _, err := pl.Run(uint64(len(tr))); err != nil {
		t.Fatal(err)
	}
	if _, _, on := pl.TopdownConservation(); on {
		t.Error("detached pipeline reports accounting on")
	}
	if snap := pl.ObsSnapshot(); snap.TopdownOn {
		t.Error("snapshot carries TopdownOn after detach")
	}
}
