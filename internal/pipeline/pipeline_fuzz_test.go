package pipeline_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// FuzzPipeline is the native fuzz target behind the CI fuzz smoke: a
// fuzzer-chosen random program runs through a fuzzer-chosen architecture
// and width with the invariant auditor enabled and — for odd seeds — a
// deterministic fault campaign injected. Any invariant violation, deadlock
// or lost μop fails the target.
func FuzzPipeline(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2))
	f.Add(uint64(42), uint8(7), uint8(0))
	f.Add(uint64(99999), uint8(5), uint8(3))
	f.Add(uint64(7), uint8(11), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, archSel, widthSel uint8) {
		archs := config.AllArchs()
		arch := archs[int(archSel)%len(archs)]
		width := []int{2, 4, 8, 10}[int(widthSel)%4]

		w := workload.Random(workload.RandomParams{Seed: seed})
		tr := traceOf(t, w, 1500)
		m, err := config.NewMachine(arch, width, config.Options{MaxCycles: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		p, err := pipeline.New(m.Pipeline, tr, m.Factory)
		if err != nil {
			t.Fatal(err)
		}
		p.EnableAudit()
		if seed%2 == 1 {
			inj, err := faults.New(faults.CampaignPlan(seed))
			if err != nil {
				t.Fatal(err)
			}
			p.SetInjector(inj)
		}
		if _, err := p.Run(uint64(len(tr))); err != nil {
			t.Fatalf("seed %d %s %d-wide: %v", seed, arch, width, err)
		}
		if got := p.Stats().Committed; got != uint64(len(tr)) {
			t.Fatalf("seed %d %s %d-wide: committed %d of %d", seed, arch, width, got, len(tr))
		}
	})
}
