package pipeline

import (
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/sched"
)

// mkUOp builds a bare μop carrying just the identity and due cycle the
// wheel reads.
func mkUOp(seq, done uint64) *sched.UOp {
	return &sched.UOp{D: &isa.DynInst{Seq: seq}, CompleteCycle: done}
}

// drainBucket pops one due-cycle bucket the way processCompletions does,
// returning the events in their linked order.
func drainBucket(w *completionWheel, cycle uint64) []*sched.UOp {
	slot := cycle & (wheelSpan - 1)
	u := w.heads[slot]
	w.heads[slot], w.tails[slot] = nil, nil
	var out []*sched.UOp
	for u != nil {
		next := u.WheelNext
		u.WheelNext = nil
		out = append(out, u)
		u = next
	}
	return out
}

func seqs(us []*sched.UOp) []uint64 {
	out := make([]uint64, len(us))
	for i, u := range us {
		out[i] = u.Seq()
	}
	return out
}

// TestWheelNearFIFO: events due the same cycle pop in push order.
func TestWheelNearFIFO(t *testing.T) {
	var w completionWheel
	w.init(16)
	a, b, c := mkUOp(1, 10), mkUOp(2, 10), mkUOp(3, 10)
	w.push(a, 10, 0)
	w.push(b, 10, 0)
	w.push(c, 10, 0)
	got := drainBucket(&w, 10)
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("bucket order = %v, want [1 2 3]", seqs(got))
	}
}

// TestWheelFarRehome: an event beyond the near horizon waits in the far
// queue and lands in its bucket at the first rotation that brings its
// due cycle inside the horizon — not earlier, not later.
func TestWheelFarRehome(t *testing.T) {
	var w completionWheel
	w.init(16)
	done := uint64(2*wheelSpan + 37)
	u := mkUOp(9, done)
	w.push(u, done, 0)
	if w.far.Empty() {
		t.Fatal("far event not queued")
	}
	// The rotation at wheelSpan does not cover done ≥ 2*wheelSpan.
	w.rotate(wheelSpan)
	if w.far.Empty() {
		t.Fatal("event rehomed a full horizon early")
	}
	w.rotate(2 * wheelSpan)
	if !w.far.Empty() {
		t.Fatal("event not rehomed by the covering rotation")
	}
	if got := drainBucket(&w, done); len(got) != 1 || got[0] != u {
		t.Fatalf("bucket = %v, want [9]", seqs(got))
	}
}

// TestWheelPushRebase: when the far window has gone stale (farBase far
// behind now), a push beyond farBase+wheelFarSpan slides the window to
// now instead of overflowing, and queued events survive the slide.
func TestWheelPushRebase(t *testing.T) {
	var w completionWheel
	w.init(16)
	early := mkUOp(1, wheelSpan+1)
	w.push(early, wheelSpan+1, 0) // pins farBase at 0
	now := uint64(100)
	done := now + wheelFarSpan - 1 // in range only after sliding to now
	late := mkUOp(2, done)
	w.push(late, done, now)
	if w.ovCount != 0 {
		t.Fatalf("rebase-able push overflowed (ovCount=%d)", w.ovCount)
	}
	if w.farBase != now {
		t.Fatalf("farBase = %d, want %d", w.farBase, now)
	}
	// Both events still pop at their exact due cycles.
	w.rotate(wheelSpan)
	if got := drainBucket(&w, wheelSpan+1); len(got) != 1 || got[0] != early {
		t.Fatalf("early bucket = %v", seqs(got))
	}
	for c := uint64(2 * wheelSpan); c <= done; c += wheelSpan {
		w.rotate(c)
	}
	if got := drainBucket(&w, done); len(got) != 1 || got[0] != late {
		t.Fatalf("late bucket = %v", seqs(got))
	}
}

// TestWheelOverflowChain: an event past even the far horizon waits in
// the counted overflow chain across however many rotations it takes,
// then pops exactly at its due cycle.
func TestWheelOverflowChain(t *testing.T) {
	var w completionWheel
	w.init(16)
	// Pin the window at 0 with a queued far event so the overflow path
	// (not the rebase path) triggers.
	pin := mkUOp(1, wheelSpan)
	w.push(pin, wheelSpan, 0)
	done := uint64(3 * wheelFarSpan)
	u := mkUOp(2, done)
	w.push(u, done, 0)
	if w.ovCount != 1 {
		t.Fatalf("ovCount = %d, want 1", w.ovCount)
	}
	popped := map[uint64][]uint64{}
	for c := uint64(0); c <= done; c++ {
		if c&(wheelSpan-1) == 0 {
			w.rotate(c)
		}
		for _, got := range drainBucket(&w, c) {
			popped[c] = append(popped[c], got.Seq())
		}
	}
	if w.ovCount != 0 {
		t.Fatalf("overflow chain never drained (ovCount=%d)", w.ovCount)
	}
	if got := popped[wheelSpan]; len(got) != 1 || got[0] != 1 {
		t.Errorf("pin popped at wrong cycle: %v", popped)
	}
	if got := popped[done]; len(got) != 1 || got[0] != 2 {
		t.Errorf("overflow event popped at wrong cycle: %v", popped)
	}
	if len(popped) != 2 {
		t.Errorf("spurious pops: %v", popped)
	}
}

// TestWheelSameCycleOrderAcrossPaths: a far event due cycle D pops ahead
// of a near event pushed for D after the rehoming rotation — rotation
// precedes the cycle's pushes, so rehomed events head the bucket.
func TestWheelSameCycleOrderAcrossPaths(t *testing.T) {
	var w completionWheel
	w.init(16)
	due := uint64(2*wheelSpan + 5)
	farU := mkUOp(1, due)
	w.push(farU, due, 0)
	w.rotate(wheelSpan)
	w.rotate(2 * wheelSpan) // rehomes farU into the bucket
	nearU := mkUOp(2, due)
	w.push(nearU, due, 2*wheelSpan+1)
	got := drainBucket(&w, due)
	if len(got) != 2 || got[0] != farU || got[1] != nearU {
		t.Fatalf("bucket order = %v, want [1 2]", seqs(got))
	}
}

// TestWheelRandomizedSchedule drives the wheel like the pipeline does —
// rotate at every wheelSpan boundary, then drain the cycle's bucket —
// with a deterministic pseudo-random event stream whose latencies cross
// the near horizon, the far horizon and the overflow chain. Every event
// must pop exactly once, exactly at its due cycle, and bitmap-path
// events must pop in bucket-filing order: near events file at push
// time, far events file at the rotation that rehomes them (ascending
// due, FIFO within a due cycle) — the order the chain-based wheel
// produced, which the goldens pin.
func TestWheelRandomizedSchedule(t *testing.T) {
	var w completionWheel
	w.init(4096)

	const end = 3 * wheelFarSpan
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	type farEv struct{ seq, due uint64 }
	var myFar []farEv                    // mirror of the far queue, insertion order
	expectOrder := map[uint64][]uint64{} // due → bitmap-path seqs in filing order
	overflowSeqs := map[uint64]bool{}
	var seq uint64
	pushed, poppedN := 0, 0

	for c := uint64(0); c <= end+2*wheelFarSpan; c++ {
		if c&(wheelSpan-1) == 0 {
			w.rotate(c)
			// Mirror the rehoming: entries entering the horizon file
			// into their buckets now, ascending by due, FIFO within.
			limit := c + wheelSpan
			var rest, rehomed []farEv
			for _, e := range myFar {
				if e.due < limit {
					rehomed = append(rehomed, e)
				} else {
					rest = append(rest, e)
				}
			}
			myFar = rest
			sort.SliceStable(rehomed, func(i, j int) bool { return rehomed[i].due < rehomed[j].due })
			for _, e := range rehomed {
				expectOrder[e.due] = append(expectOrder[e.due], e.seq)
			}
		}
		var gotBitmap []uint64
		for _, u := range drainBucket(&w, c) {
			if u.CompleteCycle != c {
				t.Fatalf("seq %d popped at cycle %d, due %d", u.Seq(), c, u.CompleteCycle)
			}
			poppedN++
			if !overflowSeqs[u.Seq()] {
				gotBitmap = append(gotBitmap, u.Seq())
			}
		}
		exp := expectOrder[c]
		if len(gotBitmap) != len(exp) {
			t.Fatalf("cycle %d: popped bitmap seqs %v, want %v", c, gotBitmap, exp)
		}
		for i := range exp {
			if gotBitmap[i] != exp[i] {
				t.Fatalf("cycle %d: bitmap pop order %v, want %v", c, gotBitmap, exp)
			}
		}
		if c > end {
			continue // drain-only tail
		}
		// A few events per cycle with a latency mix: mostly near, some
		// far, a rare overflow-range tail (mimicking DRAM queueing).
		for i := uint64(0); i < next()%3; i++ {
			var lat uint64
			switch next() % 8 {
			case 0, 1, 2, 3, 4:
				lat = 1 + next()%(wheelSpan-1) // near bucket
			case 5, 6:
				lat = wheelSpan + next()%(wheelFarSpan-wheelSpan) // far queue
			default:
				lat = wheelFarSpan + next()%wheelFarSpan // may overflow
			}
			seq++
			u := mkUOp(seq, c+lat)
			before := w.ovCount
			w.push(u, c+lat, c)
			switch {
			case w.ovCount > before:
				overflowSeqs[seq] = true
			case lat >= wheelSpan:
				myFar = append(myFar, farEv{seq, c + lat})
			default:
				expectOrder[c+lat] = append(expectOrder[c+lat], seq)
			}
			pushed++
		}
	}
	if poppedN != pushed {
		t.Fatalf("popped %d of %d events", poppedN, pushed)
	}
	if pushed < 10_000 {
		t.Fatalf("stream too small to be meaningful: %d events", pushed)
	}
}
