package pipeline_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestDebugMDPEffect inspects MDP predictor activity on the violation-heavy
// kernel (diagnostic; assertions live in TestMDPReducesViolations).
func TestDebugMDPEffect(t *testing.T) {
	m := config.MustMachine(config.ArchOoO, 8, config.Options{MaxCycles: 2_000_000})
	tr := traceOf(t, workload.StoreLoad(workload.Params{}), 20000)
	p, err := pipeline.New(m.Pipeline, tr, m.Factory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(20000); err != nil {
		t.Fatal(err)
	}
	t.Logf("stats: %s", p.Stats().String())
	t.Logf("mdp: %+v", p.MDP().Stats())
}
