package sched

// Ring is a fixed-capacity FIFO of μops backed by a circular buffer. It is
// the storage behind every in-order queue on the hot path (the InO issue
// queue, CES P-IQs, the CASINO cascade, Ballerino's S-IQ): Push/PopFront
// are O(1) with no allocation and no slice creep, and FlushFrom truncates
// the young tail in place exactly like the slice-based queues it replaces.
// Vacated slots are nilled so recycled μop records are never reachable
// through a stale queue slot.
type Ring struct {
	buf  []*UOp
	head int
	n    int
}

// Init sizes the ring. Pushing beyond capacity is a caller bug (queues
// check Full before Push, as the slice-based code checked cap).
func (r *Ring) Init(capacity int) {
	r.buf = make([]*UOp, capacity)
	r.head, r.n = 0, 0
}

// Len returns the number of buffered μops.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Empty reports whether the ring holds no μops.
func (r *Ring) Empty() bool { return r.n == 0 }

// Full reports whether the ring is at capacity.
func (r *Ring) Full() bool { return r.n >= len(r.buf) }

// slot maps a logical index (0 = head) to a buffer position. i must be
// within [0, cap], so one conditional replaces the modulo.
func (r *Ring) slot(i int) int {
	if s := r.head + i; s < len(r.buf) {
		return s
	} else {
		return s - len(r.buf)
	}
}

// At returns the i-th μop from the head.
func (r *Ring) At(i int) *UOp { return r.buf[r.slot(i)] }

// Head returns the oldest μop.
func (r *Ring) Head() *UOp { return r.buf[r.head] }

// Push appends u at the tail.
func (r *Ring) Push(u *UOp) {
	if r.Full() {
		panic("sched: push to full ring")
	}
	r.buf[r.slot(r.n)] = u
	r.n++
}

// PopFront removes and returns the oldest μop.
func (r *Ring) PopFront() *UOp {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return u
}

// DropFront removes the k oldest μops.
func (r *Ring) DropFront(k int) {
	for i := 0; i < k; i++ {
		r.buf[r.head] = nil
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.n -= k
}

// FlushFrom drops every μop with seq ≥ bound. Entries are in program order
// within a queue, so this truncates a suffix.
func (r *Ring) FlushFrom(bound uint64) {
	for i := 0; i < r.n; i++ {
		if r.At(i).Seq() >= bound {
			for j := i; j < r.n; j++ {
				r.buf[r.slot(j)] = nil
			}
			r.n = i
			return
		}
	}
}

// RemoveMarked removes the marked entries among the first prefix μops,
// preserving the relative order of the survivors and of everything beyond
// the prefix. The survivors end up adjacent to the unexamined region and
// the head advances over the vacated slots — an in-place version of the
// "append(keep, rest...)" compaction the slice-based CASINO queues did.
func (r *Ring) RemoveMarked(prefix int, marked []bool) {
	w := prefix - 1
	for i := prefix - 1; i >= 0; i-- {
		if !marked[i] {
			if w != i {
				r.buf[r.slot(w)] = r.buf[r.slot(i)]
			}
			w--
		}
	}
	removed := w + 1
	for i := 0; i < removed; i++ {
		r.buf[r.slot(i)] = nil
	}
	r.head = r.slot(removed)
	r.n -= removed
}
