package sched

import "repro/internal/container"

// Ring is the fixed-capacity μop FIFO behind every in-order queue on the
// hot path (the InO issue queue, CES P-IQs, the CASINO cascade,
// Ballerino's S-IQ). The implementation lives in internal/container as a
// generic ring beside the bitmap priority queue; this alias instantiates
// it for in-flight μops so scheduler code keeps its familiar name.
type Ring = container.Ring[*UOp]
