package sched

import (
	"testing"

	"repro/internal/isa"
)

func TestPortsForWidth(t *testing.T) {
	for _, w := range []int{2, 4, 8, 10} {
		pm, err := PortsForWidth(w)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if pm.Width() != w {
			t.Errorf("width %d: Width() = %d", w, pm.Width())
		}
		// Every opcode class must be executable somewhere.
		for op := 0; op < isa.NumOps; op++ {
			if len(pm.Candidates(isa.Op(op))) == 0 {
				t.Errorf("width %d: no port for %v", w, isa.Op(op))
			}
		}
	}
	if _, err := PortsForWidth(3); err == nil {
		t.Error("width 3 accepted")
	}
}

func TestTableIPortBindings8Wide(t *testing.T) {
	pm := Ports8Wide()
	cases := []struct {
		op    isa.Op
		ports []int
	}{
		{isa.OpIntALU, []int{0, 1, 5, 6}},
		{isa.OpIntDiv, []int{0}},
		{isa.OpIntMul, []int{1}},
		{isa.OpFpAdd, []int{0, 1}},
		{isa.OpFpDiv, []int{0}},
		{isa.OpFpMul, []int{0, 1}},
		{isa.OpLoad, []int{2, 3, 4, 7}},
		{isa.OpStore, []int{2, 3, 4, 7}},
		{isa.OpBranch, []int{0, 6}},
	}
	for _, tc := range cases {
		got := pm.Candidates(tc.op)
		if len(got) != len(tc.ports) {
			t.Errorf("%v: ports %v, want %v", tc.op, got, tc.ports)
			continue
		}
		for i := range got {
			if got[i] != tc.ports[i] {
				t.Errorf("%v: ports %v, want %v", tc.op, got, tc.ports)
				break
			}
		}
	}
}

func TestPickLeastLoaded(t *testing.T) {
	pm := Ports8Wide()
	inflight := make([]int, 8)
	inflight[0], inflight[1], inflight[5] = 5, 3, 1
	if got := pm.Pick(isa.OpIntALU, inflight); got != 6 {
		t.Errorf("Pick(ALU) = %d, want 6 (empty)", got)
	}
	inflight[6] = 2
	if got := pm.Pick(isa.OpIntALU, inflight); got != 5 {
		t.Errorf("Pick(ALU) = %d, want 5 (least loaded)", got)
	}
	if got := pm.Pick(isa.OpIntMul, inflight); got != 1 {
		t.Errorf("Pick(MUL) = %d, want 1 (only option)", got)
	}
}

func TestLatencies(t *testing.T) {
	if Latency(isa.OpIntALU) != 1 || Latency(isa.OpIntMul) != 3 ||
		Latency(isa.OpIntDiv) != 18 || Latency(isa.OpFpAdd) != 3 ||
		Latency(isa.OpFpMul) != 4 || Latency(isa.OpFpDiv) != 12 {
		t.Error("unexpected FU latency table")
	}
	if Latency(isa.OpLoad) != 1 || Latency(isa.OpStore) != 1 {
		t.Error("AGU latency != 1")
	}
}

func TestPipelined(t *testing.T) {
	for op := 0; op < isa.NumOps; op++ {
		want := isa.Op(op) != isa.OpIntDiv && isa.Op(op) != isa.OpFpDiv
		if got := Pipelined(isa.Op(op)); got != want {
			t.Errorf("Pipelined(%v) = %v", isa.Op(op), got)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassLd.String() != "Ld" || ClassLdC.String() != "LdC" || ClassRst.String() != "Rst" {
		t.Error("Class String labels wrong")
	}
}

func TestEnergyEventsAdd(t *testing.T) {
	a := EnergyEvents{WakeupCompares: 1, QueueWrites: 2, SteerOps: 3}
	b := EnergyEvents{WakeupCompares: 10, QueueReads: 5, IXUExecs: 7}
	a.Add(b)
	if a.WakeupCompares != 11 || a.QueueWrites != 2 || a.QueueReads != 5 || a.SteerOps != 3 || a.IXUExecs != 7 {
		t.Errorf("Add result = %+v", a)
	}
}
