// Package sched defines the in-flight μop record, the Scheduler interface
// every evaluated microarchitecture implements, the issue-port/functional-
// unit bindings of Table I, and the baseline schedulers: the in-order
// scoreboard core (InO), the unified out-of-order IQ (OoO), the clustered
// dependence-steered P-IQs of CES, the cascaded speculative in-order IQs of
// CASINO, and the front-end execution architecture FXA.
//
// The Ballerino scheduler — the paper's contribution — lives in
// internal/core and implements the same interface.
package sched

import (
	"repro/internal/isa"
	"repro/internal/rename"
)

// Class labels a μop for the decode-to-issue breakdowns of Figures 3c
// and 12: loads, load-dependents, and the rest.
type Class uint8

// Classification values.
const (
	ClassRst Class = iota // neither a load nor load-dependent at dispatch
	ClassLd               // load
	ClassLdC              // directly/transitively dependent on an incomplete load
)

func (c Class) String() string {
	switch c {
	case ClassLd:
		return "Ld"
	case ClassLdC:
		return "LdC"
	default:
		return "Rst"
	}
}

// UOp is an in-flight μop: the dynamic instruction plus renamed operands,
// issue-port binding and the timestamps the figures are built from.
type UOp struct {
	D    *isa.DynInst
	Dst  rename.PhysReg
	Src  [2]rename.PhysReg
	Port int
	Cls  Class

	// Memory dependence prediction state (loads and stores).
	SSID    int32
	MDPWait uint64 // dynamic seq of the store to wait for; mdp.NoStore if none
	// MDPBlockedSince is the first cycle this μop was refused issue due to
	// its predicted memory dependence (0 = never refused). Clustered
	// in-order schedulers can deadlock through cross-queue MDP waits; the
	// pipeline breaks the cycle by letting the wait time out into a
	// speculative issue, relying on violation replay for correctness.
	MDPBlockedSince uint64

	// ROB slot, owned by the pipeline.
	ROB int

	// Timestamps (cycles).
	DecodeCycle   uint64
	DispatchCycle uint64
	ReadyCycle    uint64
	IssueCycle    uint64
	CompleteCycle uint64

	// Issued marks μops already granted (still occupying LSQ/ROB).
	Issued bool
	// Squashed marks μops removed by a pipeline flush; late completion
	// events for them are ignored.
	Squashed bool
	// Mispred marks a branch the front end predicted incorrectly; fetch
	// stalls until it resolves.
	Mispred bool

	// Committed and WBDone are pipeline-owned recycling state: a μop can
	// return to the free-list arena only once it has both left the ROB
	// (committed or squashed) and had its completion event processed — the
	// two events can land in either order within a cycle, so whichever
	// happens second recycles the record.
	Committed bool
	// WBDone marks μops whose completion (writeback) event has fired.
	WBDone bool

	// WheelNext is the pipeline-owned intrusive link threading this μop
	// into its completion-wheel bucket. A μop has at most one pending
	// completion event, so event lists need no storage of their own.
	WheelNext *UOp
}

// Seq returns the μop's dynamic sequence number.
func (u *UOp) Seq() uint64 { return u.D.Seq }

// EnergyEvents counts the scheduler-internal events the energy model
// converts to joules. Each scheduler increments what its circuits would do.
type EnergyEvents struct {
	WakeupBroadcasts uint64 // destination-tag broadcasts into CAM wakeup
	WakeupCompares   uint64 // CAM tag comparisons (broadcasts × live entries × 2)
	SelectInputs     uint64 // prefix-sum inputs evaluated, summed per cycle
	QueueWrites      uint64 // FIFO/IQ entry writes (dispatch, inter-IQ copies)
	QueueReads       uint64 // FIFO/IQ entry reads (head examination, issue)
	PayloadReads     uint64 // payload RAM reads on grant
	PSCBReads        uint64 // physical-register scoreboard reads
	PSCBWrites       uint64
	SteerOps         uint64 // steering decisions performed
	IXUExecs         uint64 // μops executed by FXA's in-order execution unit
}

// Add accumulates other into e.
func (e *EnergyEvents) Add(other EnergyEvents) {
	e.WakeupBroadcasts += other.WakeupBroadcasts
	e.WakeupCompares += other.WakeupCompares
	e.SelectInputs += other.SelectInputs
	e.QueueWrites += other.QueueWrites
	e.QueueReads += other.QueueReads
	e.PayloadReads += other.PayloadReads
	e.PSCBReads += other.PSCBReads
	e.PSCBWrites += other.PSCBWrites
	e.SteerOps += other.SteerOps
	e.IXUExecs += other.IXUExecs
}

// IssueCtx is the per-cycle issue interface the pipeline hands to the
// scheduler. Ready must be consulted before Grant; Grant issues the μop.
type IssueCtx struct {
	// Ready reports whether u can issue this cycle: all renamed sources
	// available through the bypass network, any predicted memory
	// dependence resolved, and u's functional unit free.
	Ready func(u *UOp) bool
	// Grant issues u this cycle. The scheduler must respect one grant per
	// issue port per cycle.
	Grant func(u *UOp)
	// PortBlocked, when non-nil, reports that the scheduler skipped u
	// because its issue port was already granted this cycle. It is only
	// set while the pipeline's topdown cycle accounting is attached —
	// schedulers must nil-check it — and it classifies the lost slot
	// (FU contention when u was otherwise ready) for the CPI stack.
	PortBlocked func(u *UOp)
}

// Scheduler is the issue-queue organisation under evaluation. The
// surrounding pipeline (fetch/rename/execute/commit) is identical for all
// implementations, per the paper's methodology.
type Scheduler interface {
	// Name identifies the microarchitecture ("OoO", "CES", ...).
	Name() string
	// Capacity returns the total scheduling-window entries.
	Capacity() int
	// Dispatch offers a renamed μop in program order. It returns false
	// when the scheduler cannot accept it this cycle (dispatch stalls).
	Dispatch(u *UOp, cycle uint64) bool
	// Issue performs this cycle's wakeup/select, granting ready μops.
	Issue(cycle uint64, ctx *IssueCtx)
	// Complete notifies that the value of dst became available (wakeup
	// broadcast in CAM-based designs).
	Complete(dst rename.PhysReg, cycle uint64)
	// Flush removes every μop with sequence number ≥ seq.
	Flush(seq uint64)
	// Occupancy returns the μops currently buffered.
	Occupancy() int
	// Energy returns accumulated energy events.
	Energy() EnergyEvents
	// Counters exposes microarchitecture-specific event counts used by
	// the figure harnesses (steering outcomes, issue sources, ...).
	Counters() map[string]uint64
}

// QueueSnapshot is a read-only view of one internal scheduler queue, used
// by the invariant auditor (internal/check) and the deadlock autopsy. Seqs
// lists the buffered μops' dynamic sequence numbers in head-first order.
// FIFO marks queues whose entries must stay in ascending program order
// (in-order queue discipline); random-access structures report FIFO=false.
type QueueSnapshot struct {
	Name string
	FIFO bool
	Cap  int
	Seqs []uint64
}

// Inspector is implemented by schedulers that can expose their internal
// queue state for auditing. The snapshots must cover every buffered μop
// exactly once (their total length equals Occupancy()).
type Inspector interface {
	Queues() []QueueSnapshot
}

// ProbeKind identifies a scheduler-internal event reported through a
// Probe: steering outcomes, P-IQ sharing-mode activity and S-IQ→P-IQ
// promotions. The observability layer (internal/obs) maps these onto its
// event bus.
type ProbeKind uint8

// Scheduler-internal probe events.
const (
	// ProbeSteerMDAHit: a memory μop was steered into its predicted
	// producer store's P-IQ (arg = P-IQ index).
	ProbeSteerMDAHit ProbeKind = iota
	// ProbeSteerMDAMiss: an MDA steering candidate could not follow its
	// producer (location unknown, reserved, or queue full).
	ProbeSteerMDAMiss
	// ProbeSteerDep: a μop was steered along an R-dependence (arg = P-IQ).
	ProbeSteerDep
	// ProbeSteerNewChain: a μop allocated an empty P-IQ as a new
	// dependence-chain head (arg = P-IQ).
	ProbeSteerNewChain
	// ProbePIQSplit: a P-IQ entered sharing mode, splitting into two
	// partitions (arg = P-IQ).
	ProbePIQSplit
	// ProbePIQShare: a μop was placed into a shared P-IQ partition
	// (arg = P-IQ).
	ProbePIQShare
	// ProbePIQMerge: a shared P-IQ's partitions merged back into a single
	// FIFO (arg = P-IQ).
	ProbePIQMerge
	// ProbeSIQPromote: a μop left the S-IQ into the P-IQ cluster.
	ProbeSIQPromote
)

// Probe observes scheduler-internal events. Implementations must be cheap
// — probes fire on scheduler hot paths. A nil Probe disables reporting.
type Probe func(kind ProbeKind, cycle, seq uint64, arg int)

// Probed is implemented by schedulers that can report internal events
// through a Probe. SetProbe(nil) detaches.
type Probed interface {
	SetProbe(Probe)
}

// portMask tracks per-cycle issue-port grants without allocating. Ports
// are bounded by the widest machine (16).
type PortMask [16]bool

func (m *PortMask) Used(p int) bool { return m[p] }
func (m *PortMask) Set(p int)       { m[p] = true }
func (m *PortMask) Reset()          { *m = PortMask{} }
