package sched

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/rename"
)

// TestDependenceChainExample reproduces Figure 1's definitions on the CES
// steering logic: instructions in one dependence chain share a P-IQ; a
// chain merge (two destination registers read by one consumer) terminates
// one chain; a chain split (one destination read by two consumers) starts
// a new chain in a fresh P-IQ.
func TestDependenceChainExample(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	m := mdp.New(mdp.DefaultConfig())
	s := NewCES(8, 12, 8, rn, m, false)

	// Two producers i0, i1 writing distinct registers.
	mk := func(seq uint64, port int, dstArch isa.Reg, srcs ...rename.PhysReg) (*UOp, rename.PhysReg) {
		d := &isa.DynInst{Seq: seq, Op: isa.OpIntALU, Dst: dstArch}
		var dst rename.PhysReg = rename.PhysNone
		if dstArch.Valid() {
			_, dst, _, _ = rn.Rename(d)
		}
		u := &UOp{
			D: d, Dst: dst,
			Src:     [2]rename.PhysReg{rename.PhysNone, rename.PhysNone},
			Port:    port, // distinct ports so grants don't conflict
			MDPWait: mdp.NoStore, SSID: -1,
		}
		for i, src := range srcs {
			u.Src[i] = src
		}
		return u, dst
	}

	i0, r0 := mk(0, 0, isa.R(1))
	i1, r1 := mk(1, 1, isa.R(2))
	s.Dispatch(i0, 0) // new chain → P-IQ A
	s.Dispatch(i1, 0) // new chain → P-IQ B

	// i2 consumes r0: same chain as i0.
	i2, r2 := mk(2, 2, isa.R(3), r0)
	s.Dispatch(i2, 0)

	// Chain merge: i5 consumes r2 (chain A) and r1 (chain B). It joins
	// ONE of the chains; the other chain is terminated at its producer.
	i5, r5 := mk(5, 5, isa.R(4), r2, r1)
	s.Dispatch(i5, 0)

	c := s.Counters()
	if c["steer_dc"] != 2 { // i2 followed i0; i5 followed one producer
		t.Errorf("steer_dc = %d, want 2", c["steer_dc"])
	}
	if c["alloc_ready"]+c["alloc_nonready"] != 2 { // i0, i1 only
		t.Errorf("allocations = %d, want 2", c["alloc_ready"]+c["alloc_nonready"])
	}

	// Chain split: i6 and i8 both consume r5. The first consumer stays in
	// the chain; the second becomes a new dependence head (new P-IQ).
	i6, _ := mk(6, 6, isa.R(5), r5)
	i8, _ := mk(8, 3, isa.R(6), r5)
	s.Dispatch(i6, 0)
	s.Dispatch(i8, 0)
	c = s.Counters()
	if c["steer_dc"] != 3 {
		t.Errorf("after split: steer_dc = %d, want 3 (i6 follows)", c["steer_dc"])
	}
	if c["alloc_ready"]+c["alloc_nonready"] != 3 {
		t.Errorf("after split: allocations = %d, want 3 (i8 is a new head)",
			c["alloc_ready"]+c["alloc_nonready"])
	}

	// Only dependence heads are issue candidates (the oldest of each
	// chain): i0, i1 and i8's chain head (i8 itself).
	var heads []*UOp
	s.Issue(1, ctx(always, &heads))
	if len(heads) != 3 {
		t.Fatalf("dependence heads = %d, want 3", len(heads))
	}
	seen := map[uint64]bool{}
	for _, u := range heads {
		seen[u.Seq()] = true
	}
	if !seen[0] || !seen[1] || !seen[8] {
		t.Errorf("heads = %v, want {i0, i1, i8}", seen)
	}
}
