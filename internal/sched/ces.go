package sched

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/rename"
)

// CES is the complexity-effective superscalar scheduler of §II-B1:
// a cluster of parallel in-order queues (P-IQs), each holding one
// dependence chain, with steering at dispatch and per-queue-head issue.
//
// With MDA enabled it additionally applies Ballerino's M-dependence-aware
// steering (the "CES + MDA steering" bar of Figure 13).
type CES struct {
	iqs   []Ring
	rn    *rename.Renamer
	mdp   *mdp.MDP
	mda   bool
	width int

	events EnergyEvents
	ports  PortMask

	// probe, when non-nil, reports steering outcomes to the observability
	// layer.
	probe Probe

	// Figure 4 counters: steering outcomes split by dispatch readiness.
	steerDC       uint64
	steerM        uint64
	allocReady    uint64
	allocNonReady uint64
	stallReady    uint64
	stallNonReady uint64
	issued        uint64

	// Figure 6a counters: what P-IQ heads do each cycle.
	headIssue    uint64 // head issued
	headStallM   uint64 // head is a load/store blocked by a predicted M-dep
	headStallDep uint64 // head waits for register data
	headEmpty    uint64 // queue empty
}

// NewCES builds a CES scheduler with n P-IQs of the given depth. rn is the
// shared physical-register scoreboard; m (with mda=true) enables
// M-dependence-aware steering.
func NewCES(n, depth, width int, rn *rename.Renamer, m *mdp.MDP, mda bool) *CES {
	s := &CES{
		rn: rn, mdp: m, mda: mda, width: width,
		iqs: make([]Ring, n),
	}
	for i := range s.iqs {
		s.iqs[i].Init(depth)
	}
	return s
}

// Name implements Scheduler.
func (s *CES) Name() string {
	if s.mda {
		return "CES+MDA"
	}
	return "CES"
}

// Capacity implements Scheduler.
func (s *CES) Capacity() int {
	n := 0
	for i := range s.iqs {
		n += s.iqs[i].Cap()
	}
	return n
}

// Occupancy implements Scheduler.
func (s *CES) Occupancy() int {
	n := 0
	for i := range s.iqs {
		n += s.iqs[i].Len()
	}
	return n
}

// readyAtDispatch reports whether all register sources are available.
func readyAtDispatch(rn *rename.Renamer, u *UOp, cycle uint64) bool {
	return rn.Ready(u.Src[0], cycle) && rn.Ready(u.Src[1], cycle)
}

// SetProbe implements Probed.
func (s *CES) SetProbe(p Probe) { s.probe = p }

// Dispatch implements Scheduler: steer along M/R-dependences, allocating a
// new P-IQ for dependence heads, stalling when no queue is available.
func (s *CES) Dispatch(u *UOp, cycle uint64) bool {
	s.events.SteerOps++
	s.events.PSCBReads += 2
	ready := readyAtDispatch(s.rn, u, cycle)
	mdaCandidate := s.mda && u.D.Op.IsMem() && u.SSID >= 0

	if iq, ok := s.steerTarget(u); ok {
		s.enqueue(iq, u)
		if mdaCandidate {
			s.steerM++
			if s.probe != nil {
				s.probe(ProbeSteerMDAHit, cycle, u.Seq(), iq)
			}
		} else {
			s.steerDC++
			if s.probe != nil {
				s.probe(ProbeSteerDep, cycle, u.Seq(), iq)
			}
		}
		return true
	}
	if s.probe != nil && mdaCandidate {
		s.probe(ProbeSteerMDAMiss, cycle, u.Seq(), 0)
	}

	// Dependence head (or split/full target): allocate an empty P-IQ.
	for i := range s.iqs {
		if s.iqs[i].Empty() {
			s.enqueue(i, u)
			if ready {
				s.allocReady++
			} else {
				s.allocNonReady++
			}
			if s.probe != nil {
				s.probe(ProbeSteerNewChain, cycle, u.Seq(), i)
			}
			return true
		}
	}
	if ready {
		s.stallReady++
	} else {
		s.stallNonReady++
	}
	return false
}

// steerTarget finds the P-IQ holding u's producer at an unreserved tail.
// M-dependences override R-dependences when MDA steering is enabled (§III-B).
func (s *CES) steerTarget(u *UOp) (int, bool) {
	if s.mda && u.D.Op.IsMem() && u.SSID >= 0 {
		if iq, reserved, ok := s.mdp.ProducerLocation(u.SSID); ok && !reserved && !s.iqs[iq].Full() {
			s.mdp.ReserveProducer(u.SSID)
			return iq, true
		}
	}
	for _, src := range u.Src {
		iq, reserved, ok := s.rn.ProducerIQ(src)
		if ok && !reserved && !s.iqs[iq].Full() {
			s.rn.ReserveProducer(src)
			return iq, true
		}
	}
	return 0, false
}

// enqueue appends u to P-IQ iq and records producer locations in the P-SCB
// (and LFST for stores under MDA steering).
func (s *CES) enqueue(iq int, u *UOp) {
	s.iqs[iq].Push(u)
	s.events.QueueWrites++
	if u.Dst != rename.PhysNone {
		s.rn.SetProducerIQ(u.Dst, iq)
		s.events.PSCBWrites++
	}
	if s.mda && u.D.Op == isa.OpStore && u.SSID >= 0 {
		s.mdp.SetProducerLocation(u.SSID, u.Seq(), iq)
	}
}

// Issue implements Scheduler: only dependence heads (queue heads) are
// examined; per-port prefix-sum circuits grant one each.
func (s *CES) Issue(cycle uint64, ctx *IssueCtx) {
	s.events.SelectInputs += uint64(s.width * len(s.iqs))
	s.ports.Reset()
	portUsed := &s.ports
	for i := range s.iqs {
		q := &s.iqs[i]
		if q.Empty() {
			s.headEmpty++
			continue
		}
		u := q.Head()
		s.events.QueueReads++
		s.events.PSCBReads += 2
		if portUsed.Used(u.Port) {
			if ctx.PortBlocked != nil {
				ctx.PortBlocked(u)
			}
			s.headStallDep++
			continue
		}
		if !ctx.Ready(u) {
			if u.MDPWait != mdp.NoStore {
				s.headStallM++
			} else {
				s.headStallDep++
			}
			continue
		}
		ctx.Grant(u)
		s.events.PayloadReads++
		portUsed.Set(u.Port)
		q.PopFront()
		s.issued++
		s.headIssue++
	}
}

// Complete implements Scheduler. Readiness propagates through the P-SCB;
// no CAM broadcast.
func (s *CES) Complete(rename.PhysReg, uint64) {}

// Flush implements Scheduler.
func (s *CES) Flush(seq uint64) {
	for i := range s.iqs {
		s.iqs[i].FlushFrom(seq)
	}
}

// Queues implements Inspector: every P-IQ is an in-order dependence chain.
func (s *CES) Queues() []QueueSnapshot {
	qs := make([]QueueSnapshot, len(s.iqs))
	for i := range s.iqs {
		seqs := make([]uint64, s.iqs[i].Len())
		for j := range seqs {
			seqs[j] = s.iqs[i].At(j).Seq()
		}
		qs[i] = QueueSnapshot{Name: fmt.Sprintf("P-IQ%d", i), FIFO: true, Cap: s.iqs[i].Cap(), Seqs: seqs}
	}
	return qs
}

// Energy implements Scheduler.
func (s *CES) Energy() EnergyEvents { return s.events }

// Counters implements Scheduler.
func (s *CES) Counters() map[string]uint64 {
	return map[string]uint64{
		"issued":          s.issued,
		"steer_dc":        s.steerDC,
		"steer_m":         s.steerM,
		"alloc_ready":     s.allocReady,
		"alloc_nonready":  s.allocNonReady,
		"stall_ready":     s.stallReady,
		"stall_nonready":  s.stallNonReady,
		"head_issue":      s.headIssue,
		"head_stall_mdep": s.headStallM,
		"head_stall_dep":  s.headStallDep,
		"head_empty":      s.headEmpty,
	}
}

var _ Scheduler = (*CES)(nil)
var _ Probed = (*CES)(nil)
