package sched

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/rename"
)

// CASINO is the cascaded in-order scheduler of §II-B2: one or more
// speculative in-order IQs (S-IQs) ahead of a final in-order IQ. Each cycle
// every S-IQ examines a speculative scheduling window at its head, issues
// the ready μops immediately, and passes the preceding non-ready μops to
// the next queue. The final queue issues strictly in program order.
type CASINO struct {
	queues []Ring // queues[0] is S-IQ0 (dispatch target); last is the in-order IQ
	window int    // μops examined per S-IQ per cycle (read ports)
	pass   int    // μops passed to the next queue per cycle (write ports)
	width  int

	events EnergyEvents
	ports  PortMask
	issued uint64
	passed uint64
}

// NewCASINO builds the cascade. sizes lists every queue's capacity in
// front-to-back order (Table II 8-wide: 8, 40, 40, 8). window and pass are
// the per-queue read/write port counts (4 at 8-wide).
func NewCASINO(sizes []int, window, pass, width int) *CASINO {
	s := &CASINO{
		queues: make([]Ring, len(sizes)),
		window: window, pass: pass, width: width,
	}
	for i, n := range sizes {
		s.queues[i].Init(n)
	}
	return s
}

// Name implements Scheduler.
func (s *CASINO) Name() string { return "CASINO" }

// Capacity implements Scheduler.
func (s *CASINO) Capacity() int {
	n := 0
	for i := range s.queues {
		n += s.queues[i].Cap()
	}
	return n
}

// Occupancy implements Scheduler.
func (s *CASINO) Occupancy() int {
	n := 0
	for i := range s.queues {
		n += s.queues[i].Len()
	}
	return n
}

// Dispatch implements Scheduler: μops enter the first S-IQ in order.
func (s *CASINO) Dispatch(u *UOp, _ uint64) bool {
	if s.queues[0].Full() {
		return false
	}
	s.queues[0].Push(u)
	s.events.QueueWrites++
	return true
}

// Issue implements Scheduler. Queues are processed back to front so that
// older μops get issue-port priority and same-cycle passes cannot teleport
// a μop through several queues.
func (s *CASINO) Issue(cycle uint64, ctx *IssueCtx) {
	s.ports.Reset()
	portUsed := &s.ports
	granted := 0

	// Final in-order IQ: strict program-order issue from the head.
	last := &s.queues[len(s.queues)-1]
	s.events.SelectInputs += uint64(s.width * s.window * len(s.queues))
	examined := 0
	last.SelectOldest(func(u *UOp) container.Verdict {
		if examined >= s.window || granted >= s.width {
			return container.Stop
		}
		examined++
		s.events.QueueReads++
		s.events.PSCBReads += 2
		if portUsed.Used(u.Port) {
			if ctx.PortBlocked != nil {
				ctx.PortBlocked(u)
			}
			return container.Stop // in-order: the head blocks everything younger
		}
		if !ctx.Ready(u) {
			return container.Stop // in-order: the head blocks everything younger
		}
		ctx.Grant(u)
		s.events.PayloadReads++
		portUsed.Set(u.Port)
		s.issued++
		granted++
		return container.Take
	})

	// S-IQs, oldest (deepest) first: one windowed walk per queue performs
	// both the speculative issue and the pass-ahead — a μop that cannot
	// issue (width exhausted, port taken, or not ready) instead consumes
	// pass bandwidth toward the next queue if any remains. The next queue
	// was already processed this cycle (back-to-front order), so its free
	// space is stable across the walk and grants land in age order exactly
	// as the separate issue-then-pass phases did.
	for qi := len(s.queues) - 2; qi >= 0; qi-- {
		q := &s.queues[qi]
		next := &s.queues[qi+1]
		examine := s.window
		if q.Len() < examine {
			examine = q.Len()
		}
		passedHere := 0
		q.SelectWindow(examine, func(u *UOp) container.Verdict {
			s.events.QueueReads++
			s.events.PSCBReads += 2
			issue := false
			if granted >= s.width {
				// all issue ports consumed; fall through to pass
			} else if portUsed.Used(u.Port) {
				if ctx.PortBlocked != nil {
					ctx.PortBlocked(u)
				}
			} else if ctx.Ready(u) {
				issue = true
			}
			if issue {
				ctx.Grant(u)
				s.events.PayloadReads++
				portUsed.Set(u.Port)
				s.issued++
				granted++
				return container.Take
			}
			if passedHere < s.pass && !next.Full() {
				next.Push(u)
				s.events.QueueReads++
				s.events.QueueWrites++ // the copy the paper charges CASINO for
				s.passed++
				passedHere++
				return container.Take
			}
			return container.Keep
		})
	}
}

// Complete implements Scheduler. Readiness is re-examined at queue heads.
func (s *CASINO) Complete(rename.PhysReg, uint64) {}

// Flush implements Scheduler. μops are ordered oldest-last-queue, but each
// individual queue is in program order, so truncate each.
func (s *CASINO) Flush(seq uint64) {
	for i := range s.queues {
		s.queues[i].FlushFrom(seq)
	}
}

// Queues implements Inspector: each cascade stage is an in-order queue.
func (s *CASINO) Queues() []QueueSnapshot {
	qs := make([]QueueSnapshot, len(s.queues))
	for i := range s.queues {
		seqs := make([]uint64, s.queues[i].Len())
		for j := range seqs {
			seqs[j] = s.queues[i].At(j).Seq()
		}
		name := fmt.Sprintf("S-IQ%d", i)
		if i == len(s.queues)-1 {
			name = "IQ"
		}
		qs[i] = QueueSnapshot{Name: name, FIFO: true, Cap: s.queues[i].Cap(), Seqs: seqs}
	}
	return qs
}

// Energy implements Scheduler.
func (s *CASINO) Energy() EnergyEvents { return s.events }

// Counters implements Scheduler.
func (s *CASINO) Counters() map[string]uint64 {
	return map[string]uint64{
		"issued": s.issued,
		"passed": s.passed,
	}
}

var _ Scheduler = (*CASINO)(nil)
