package sched

import (
	"fmt"

	"repro/internal/isa"
)

// PortMap binds opcode classes to issue ports: Ports[p] lists the opcode
// classes port p's functional units execute. The number of ports equals the
// issue width (§II-A).
type PortMap struct {
	Ports [][]isa.Op
	// byOp caches op → candidate ports.
	byOp [isa.NumOps][]int
}

// NewPortMap builds a PortMap and its lookup cache.
func NewPortMap(ports [][]isa.Op) *PortMap {
	pm := &PortMap{Ports: ports}
	for p, ops := range ports {
		for _, op := range ops {
			pm.byOp[op] = append(pm.byOp[op], p)
		}
	}
	// Nops can use any ALU port.
	pm.byOp[isa.OpNop] = pm.byOp[isa.OpIntALU]
	for op := 0; op < isa.NumOps; op++ {
		if len(pm.byOp[op]) == 0 {
			panic(fmt.Sprintf("sched: no port executes %v", isa.Op(op)))
		}
	}
	return pm
}

// Width returns the number of issue ports.
func (pm *PortMap) Width() int { return len(pm.Ports) }

// Candidates returns the ports able to execute op.
func (pm *PortMap) Candidates(op isa.Op) []int { return pm.byOp[op] }

// Pick implements the dispatch-time port arbitration of §II-A: among the
// ports with a suitable functional unit, choose the one with the fewest
// in-flight (dispatched but not issued) μops.
func (pm *PortMap) Pick(op isa.Op, inflight []int) int {
	cands := pm.byOp[op]
	best := cands[0]
	for _, p := range cands[1:] {
		if inflight[p] < inflight[best] {
			best = p
		}
	}
	return best
}

// Ports8Wide is the Table I 8-wide binding:
// 4 int ALUs (P0,P1,P5,P6), int DIV (P0), int MUL (P1), 2 fp ADDs (P0,P1),
// fp DIV (P0), 2 fp MULs (P0,P1), 4 AGUs (P2,P3,P4,P7), 2 branches (P0,P6).
func Ports8Wide() *PortMap {
	return NewPortMap([][]isa.Op{
		{isa.OpIntALU, isa.OpIntDiv, isa.OpFpAdd, isa.OpFpDiv, isa.OpFpMul, isa.OpBranch}, // P0
		{isa.OpIntALU, isa.OpIntMul, isa.OpFpAdd, isa.OpFpMul},                            // P1
		{isa.OpLoad, isa.OpStore},    // P2
		{isa.OpLoad, isa.OpStore},    // P3
		{isa.OpLoad, isa.OpStore},    // P4
		{isa.OpIntALU},               // P5
		{isa.OpIntALU, isa.OpBranch}, // P6
		{isa.OpLoad, isa.OpStore},    // P7
	})
}

// Ports4Wide is the 4-wide scaling of Table I.
func Ports4Wide() *PortMap {
	return NewPortMap([][]isa.Op{
		{isa.OpIntALU, isa.OpIntDiv, isa.OpFpAdd, isa.OpFpDiv, isa.OpBranch}, // P0
		{isa.OpIntALU, isa.OpIntMul, isa.OpFpAdd, isa.OpFpMul},               // P1
		{isa.OpLoad, isa.OpStore},                                            // P2
		{isa.OpLoad, isa.OpStore},                                            // P3
	})
}

// Ports2Wide is the 2-wide scaling of Table I.
func Ports2Wide() *PortMap {
	return NewPortMap([][]isa.Op{
		{isa.OpIntALU, isa.OpIntMul, isa.OpIntDiv, isa.OpFpAdd, isa.OpFpMul, isa.OpFpDiv, isa.OpBranch}, // P0
		{isa.OpLoad, isa.OpStore, isa.OpIntALU},                                                         // P1
	})
}

// Ports10Wide extends the 8-wide binding for the Ice-Lake-style 10-wide
// design of Figure 17a: one extra ALU port and one extra AGU port.
func Ports10Wide() *PortMap {
	return NewPortMap([][]isa.Op{
		{isa.OpIntALU, isa.OpIntDiv, isa.OpFpAdd, isa.OpFpDiv, isa.OpFpMul, isa.OpBranch}, // P0
		{isa.OpIntALU, isa.OpIntMul, isa.OpFpAdd, isa.OpFpMul},                            // P1
		{isa.OpLoad, isa.OpStore},                // P2
		{isa.OpLoad, isa.OpStore},                // P3
		{isa.OpLoad, isa.OpStore},                // P4
		{isa.OpIntALU},                           // P5
		{isa.OpIntALU, isa.OpBranch},             // P6
		{isa.OpLoad, isa.OpStore},                // P7
		{isa.OpIntALU, isa.OpFpAdd, isa.OpFpMul}, // P8
		{isa.OpLoad, isa.OpStore},                // P9
	})
}

// PortsForWidth returns the Table I port map for an issue width.
func PortsForWidth(w int) (*PortMap, error) {
	switch w {
	case 2:
		return Ports2Wide(), nil
	case 4:
		return Ports4Wide(), nil
	case 8:
		return Ports8Wide(), nil
	case 10:
		return Ports10Wide(), nil
	default:
		return nil, fmt.Errorf("sched: no port map for issue width %d", w)
	}
}

// Latency returns the execution latency of an opcode class in cycles.
// Loads return the address-generation latency only; the memory hierarchy
// adds the rest.
func Latency(op isa.Op) uint64 {
	switch op {
	case isa.OpIntALU, isa.OpNop, isa.OpBranch:
		return 1
	case isa.OpIntMul:
		return 3
	case isa.OpIntDiv:
		return 18
	case isa.OpFpAdd:
		return 3
	case isa.OpFpMul:
		return 4
	case isa.OpFpDiv:
		return 12
	case isa.OpLoad, isa.OpStore:
		return 1 // AGU
	default:
		panic(fmt.Sprintf("sched: no latency for %v", op))
	}
}

// Pipelined reports whether the functional unit accepts a new μop every
// cycle. Divider units are unpipelined and block their port's divider.
func Pipelined(op isa.Op) bool {
	return op != isa.OpIntDiv && op != isa.OpFpDiv
}
