package sched

import (
	"math/bits"

	"repro/internal/rename"
)

// OoO is the baseline unified out-of-order issue queue of §II-A / Figure 2:
// CAM-based wakeup over a non-compacting random queue, per-port prefix-sum
// select circuits, and a payload RAM. Optionally it selects oldest-first
// (compaction/age-matrix behaviour) instead of position-first.
type OoO struct {
	slots       []*UOp // fixed positions; nil = free (random queue, no compaction)
	free        []int  // free slot indices
	width       int
	oldestFirst bool

	// occ mirrors slot occupancy as a bitmap so Issue can enumerate live
	// entries in position order without scanning the nil slots.
	occ []uint64

	events EnergyEvents
	issued uint64
	ports  PortMask

	// scratch for Issue.
	order []int
}

// NewOoO returns a unified out-of-order IQ with the given entry count and
// issue width. oldestFirst selects by age (Figure 11's "OoO w/ oldest-first
// selection" variant); otherwise selection priority follows physical
// position, as a prefix-sum circuit over a random queue does.
func NewOoO(capacity, width int, oldestFirst bool) *OoO {
	s := &OoO{
		slots:       make([]*UOp, capacity),
		free:        make([]int, 0, capacity),
		occ:         make([]uint64, (capacity+63)/64),
		width:       width,
		oldestFirst: oldestFirst,
		order:       make([]int, 0, capacity),
	}
	for i := capacity - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// Name implements Scheduler.
func (s *OoO) Name() string {
	if s.oldestFirst {
		return "OoO-oldest"
	}
	return "OoO"
}

// Capacity implements Scheduler.
func (s *OoO) Capacity() int { return len(s.slots) }

// Occupancy implements Scheduler.
func (s *OoO) Occupancy() int { return len(s.slots) - len(s.free) }

// Dispatch implements Scheduler.
func (s *OoO) Dispatch(u *UOp, _ uint64) bool {
	if len(s.free) == 0 {
		return false
	}
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.slots[idx] = u
	s.occ[idx>>6] |= 1 << (uint(idx) & 63)
	s.events.QueueWrites++
	return true
}

// Issue implements Scheduler: per issue port, the prefix-sum circuit grants
// the highest-priority requesting entry.
func (s *OoO) Issue(cycle uint64, ctx *IssueCtx) {
	occ := s.Occupancy()
	if occ == 0 {
		return
	}
	// Each port's prefix-sum circuit evaluates all N inputs every cycle
	// the queue is active.
	s.events.SelectInputs += uint64(s.width * len(s.slots))

	s.order = s.order[:0]
	for w, word := range s.occ {
		for word != 0 {
			s.order = append(s.order, w<<6+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	if s.oldestFirst {
		// Insertion sort by age: slots are recycled LIFO so the position
		// order is already mostly sorted, and — seqs being unique — the
		// result is identical to the reflect-based sort it replaces.
		for i := 1; i < len(s.order); i++ {
			idx := s.order[i]
			seq := s.slots[idx].Seq()
			j := i - 1
			for j >= 0 && s.slots[s.order[j]].Seq() > seq {
				s.order[j+1] = s.order[j]
				j--
			}
			s.order[j+1] = idx
		}
	}

	s.ports.Reset()
	portUsed := &s.ports
	granted := 0
	for _, idx := range s.order {
		if granted >= s.width {
			break
		}
		u := s.slots[idx]
		if portUsed.Used(u.Port) {
			if ctx.PortBlocked != nil {
				ctx.PortBlocked(u)
			}
			continue
		}
		if !ctx.Ready(u) {
			continue
		}
		ctx.Grant(u)
		s.events.PayloadReads++
		portUsed.Set(u.Port)
		s.slots[idx] = nil
		s.occ[idx>>6] &^= 1 << (uint(idx) & 63)
		s.free = append(s.free, idx)
		s.issued++
		granted++
	}
}

// Complete implements Scheduler: a destination-tag broadcast compares
// against both source fields of every live entry.
func (s *OoO) Complete(dst rename.PhysReg, _ uint64) {
	if dst == rename.PhysNone {
		return
	}
	s.events.WakeupBroadcasts++
	s.events.WakeupCompares += uint64(2 * len(s.slots))
}

// Flush implements Scheduler.
func (s *OoO) Flush(seq uint64) {
	for i, u := range s.slots {
		if u != nil && u.Seq() >= seq {
			s.slots[i] = nil
			s.occ[i>>6] &^= 1 << (uint(i) & 63)
			s.free = append(s.free, i)
		}
	}
}

// Queues implements Inspector: one random-access (non-FIFO) queue whose
// entries are listed in physical slot order.
func (s *OoO) Queues() []QueueSnapshot {
	var seqs []uint64
	for _, u := range s.slots {
		if u != nil {
			seqs = append(seqs, u.Seq())
		}
	}
	return []QueueSnapshot{{Name: "IQ", FIFO: false, Cap: len(s.slots), Seqs: seqs}}
}

// Energy implements Scheduler.
func (s *OoO) Energy() EnergyEvents { return s.events }

// Counters implements Scheduler.
func (s *OoO) Counters() map[string]uint64 {
	return map[string]uint64{"issued": s.issued}
}

var _ Scheduler = (*OoO)(nil)
