package sched

import (
	"math/bits"

	"repro/internal/container"
	"repro/internal/rename"
)

// oooSeqSpan is the age-index window of the oldest-first select structure:
// the spread between the oldest and youngest buffered μop's sequence
// numbers must fit in it. In-flight μops occupy a contiguous ROB range, so
// the spread is bounded by the ROB size — 8K covers every realistic
// configuration with room to spare, and the base slides forward as the
// window drains.
const oooSeqSpan = 1 << 13

// OoO is the baseline unified out-of-order issue queue of §II-A / Figure 2:
// CAM-based wakeup over a non-compacting random queue, per-port prefix-sum
// select circuits, and a payload RAM. Optionally it selects oldest-first
// (compaction/age-matrix behaviour) instead of position-first.
type OoO struct {
	slots       []*UOp // fixed positions; nil = free (random queue, no compaction)
	free        []int  // free slot indices
	width       int
	oldestFirst bool

	// occ mirrors slot occupancy as a bitmap so Issue can enumerate live
	// entries in position order without scanning the nil slots.
	occ []uint64

	// seqq indexes occupied slots by age for the oldest-first variant: a
	// hierarchical-bitmap priority queue keyed by seq − seqBase, walked in
	// ascending order at select — the software form of an age-ordered
	// select circuit, replacing the per-cycle insertion sort. handles[i]
	// names slot i's queue entry so Flush can unlink in place. seqBase
	// slides forward (Rebase) when a dispatched seq outruns the span.
	seqq    *container.QuantumQueue[int32]
	handles []container.Handle
	seqBase uint64

	events EnergyEvents
	issued uint64
	ports  PortMask
}

// NewOoO returns a unified out-of-order IQ with the given entry count and
// issue width. oldestFirst selects by age (Figure 11's "OoO w/ oldest-first
// selection" variant); otherwise selection priority follows physical
// position, as a prefix-sum circuit over a random queue does.
func NewOoO(capacity, width int, oldestFirst bool) *OoO {
	s := &OoO{
		slots:       make([]*UOp, capacity),
		free:        make([]int, 0, capacity),
		occ:         make([]uint64, (capacity+63)/64),
		width:       width,
		oldestFirst: oldestFirst,
	}
	if oldestFirst {
		s.seqq = container.NewQuantumQueue[int32](oooSeqSpan, capacity)
		s.handles = make([]container.Handle, capacity)
		for i := range s.handles {
			s.handles[i] = container.None
		}
	}
	for i := capacity - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// Name implements Scheduler.
func (s *OoO) Name() string {
	if s.oldestFirst {
		return "OoO-oldest"
	}
	return "OoO"
}

// Capacity implements Scheduler.
func (s *OoO) Capacity() int { return len(s.slots) }

// Occupancy implements Scheduler.
func (s *OoO) Occupancy() int { return len(s.slots) - len(s.free) }

// Dispatch implements Scheduler.
func (s *OoO) Dispatch(u *UOp, _ uint64) bool {
	if len(s.free) == 0 {
		return false
	}
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.slots[idx] = u
	s.occ[idx>>6] |= 1 << (uint(idx) & 63)
	if s.oldestFirst {
		s.indexByAge(u, idx)
	}
	s.events.QueueWrites++
	return true
}

// indexByAge files slot idx in the age index, sliding the base when the
// new seq falls outside the current window. In the pipeline dispatch seqs
// never run backwards relative to buffered entries (a flush's refetched
// μops carry seqs above every survivor), so only the forward slide is hot;
// the backward slide keeps the scheduler correct for arbitrary callers.
func (s *OoO) indexByAge(u *UOp, idx int) {
	seq := u.Seq()
	if s.seqq.Empty() {
		s.seqBase = seq
	} else if seq < s.seqBase {
		s.seqq.Rebase(-int(s.seqBase - seq))
		s.seqBase = seq
	} else if seq-s.seqBase >= oooSeqSpan {
		_, min, _ := s.seqq.PeepMin()
		s.seqq.Rebase(min)
		s.seqBase += uint64(min)
	}
	rel := seq - s.seqBase
	if rel >= oooSeqSpan {
		panic("sched: OoO in-flight seq window exceeds the age-index span")
	}
	s.handles[idx] = s.seqq.Insert(int(rel), int32(idx))
}

// Issue implements Scheduler: per issue port, the prefix-sum circuit grants
// the highest-priority requesting entry.
func (s *OoO) Issue(cycle uint64, ctx *IssueCtx) {
	occ := s.Occupancy()
	if occ == 0 {
		return
	}
	// Each port's prefix-sum circuit evaluates all N inputs every cycle
	// the queue is active.
	s.events.SelectInputs += uint64(s.width * len(s.slots))

	s.ports.Reset()
	portUsed := &s.ports
	granted := 0

	if s.oldestFirst {
		// Age order: one CLZ walk over the seq-indexed bitmap, oldest
		// first, unlinking granted entries in place.
		s.seqq.Scan(func(slot int32, _ int) container.Verdict {
			if granted >= s.width {
				return container.Stop
			}
			u := s.slots[slot]
			if portUsed.Used(u.Port) {
				if ctx.PortBlocked != nil {
					ctx.PortBlocked(u)
				}
				return container.Keep
			}
			if !ctx.Ready(u) {
				return container.Keep
			}
			ctx.Grant(u)
			s.events.PayloadReads++
			portUsed.Set(u.Port)
			s.slots[slot] = nil
			s.occ[slot>>6] &^= 1 << (uint(slot) & 63)
			s.handles[slot] = container.None
			s.free = append(s.free, int(slot))
			s.issued++
			granted++
			return container.Take
		})
		return
	}

	// Position order: enumerate the occupancy bitmap directly.
	for w, word := range s.occ {
		for word != 0 {
			if granted >= s.width {
				return
			}
			idx := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			u := s.slots[idx]
			if portUsed.Used(u.Port) {
				if ctx.PortBlocked != nil {
					ctx.PortBlocked(u)
				}
				continue
			}
			if !ctx.Ready(u) {
				continue
			}
			ctx.Grant(u)
			s.events.PayloadReads++
			portUsed.Set(u.Port)
			s.slots[idx] = nil
			s.occ[idx>>6] &^= 1 << (uint(idx) & 63)
			s.free = append(s.free, idx)
			s.issued++
			granted++
		}
	}
}

// Complete implements Scheduler: a destination-tag broadcast compares
// against both source fields of every live entry.
func (s *OoO) Complete(dst rename.PhysReg, _ uint64) {
	if dst == rename.PhysNone {
		return
	}
	s.events.WakeupBroadcasts++
	s.events.WakeupCompares += uint64(2 * len(s.slots))
}

// Flush implements Scheduler.
func (s *OoO) Flush(seq uint64) {
	for i, u := range s.slots {
		if u != nil && u.Seq() >= seq {
			s.slots[i] = nil
			s.occ[i>>6] &^= 1 << (uint(i) & 63)
			if s.oldestFirst {
				s.seqq.Unlink(s.handles[i])
				s.handles[i] = container.None
			}
			s.free = append(s.free, i)
		}
	}
}

// Queues implements Inspector: one random-access (non-FIFO) queue whose
// entries are listed in physical slot order.
func (s *OoO) Queues() []QueueSnapshot {
	var seqs []uint64
	for _, u := range s.slots {
		if u != nil {
			seqs = append(seqs, u.Seq())
		}
	}
	return []QueueSnapshot{{Name: "IQ", FIFO: false, Cap: len(s.slots), Seqs: seqs}}
}

// Energy implements Scheduler.
func (s *OoO) Energy() EnergyEvents { return s.events }

// Counters implements Scheduler.
func (s *OoO) Counters() map[string]uint64 {
	return map[string]uint64{"issued": s.issued}
}

var _ Scheduler = (*OoO)(nil)
