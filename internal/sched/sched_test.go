package sched

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/rename"
)

// mkUOp builds a minimal in-flight μop for scheduler unit tests.
func mkUOp(seq uint64, op isa.Op, port int) *UOp {
	return &UOp{
		D:       &isa.DynInst{Seq: seq, Op: op},
		Dst:     rename.PhysNone,
		Src:     [2]rename.PhysReg{rename.PhysNone, rename.PhysNone},
		Port:    port,
		MDPWait: mdp.NoStore,
		SSID:    -1,
	}
}

// ctxAll grants every Ready consult; readyFn customises readiness.
func ctx(readyFn func(*UOp) bool, granted *[]*UOp) *IssueCtx {
	return &IssueCtx{
		Ready: readyFn,
		Grant: func(u *UOp) { *granted = append(*granted, u) },
	}
}

func always(*UOp) bool { return true }
func never(*UOp) bool  { return false }

func TestInOCapacityAndFIFO(t *testing.T) {
	s := NewInO(4, 8)
	for i := uint64(0); i < 4; i++ {
		if !s.Dispatch(mkUOp(i, isa.OpIntALU, int(i)), 0) {
			t.Fatalf("dispatch %d refused", i)
		}
	}
	if s.Dispatch(mkUOp(9, isa.OpIntALU, 0), 0) {
		t.Fatal("dispatch beyond capacity accepted")
	}
	var granted []*UOp
	s.Issue(1, ctx(always, &granted))
	if len(granted) != 4 {
		t.Fatalf("granted %d, want 4", len(granted))
	}
	for i, u := range granted {
		if u.Seq() != uint64(i) {
			t.Errorf("grant order broken at %d: seq %d", i, u.Seq())
		}
	}
	if s.Occupancy() != 0 {
		t.Errorf("occupancy %d after drain", s.Occupancy())
	}
}

func TestInOStallsOnHead(t *testing.T) {
	s := NewInO(4, 8)
	blocked := mkUOp(0, isa.OpIntALU, 0)
	readyYounger := mkUOp(1, isa.OpIntALU, 1)
	s.Dispatch(blocked, 0)
	s.Dispatch(readyYounger, 0)
	var granted []*UOp
	s.Issue(1, ctx(func(u *UOp) bool { return u != blocked }, &granted))
	if len(granted) != 0 {
		t.Errorf("in-order core bypassed a blocked head: %d grants", len(granted))
	}
}

func TestInOOnePerPort(t *testing.T) {
	s := NewInO(8, 8)
	s.Dispatch(mkUOp(0, isa.OpIntALU, 3), 0)
	s.Dispatch(mkUOp(1, isa.OpIntALU, 3), 0) // same port
	var granted []*UOp
	s.Issue(1, ctx(always, &granted))
	if len(granted) != 1 {
		t.Errorf("granted %d on one port, want 1", len(granted))
	}
}

func TestInOFlush(t *testing.T) {
	s := NewInO(8, 8)
	for i := uint64(0); i < 5; i++ {
		s.Dispatch(mkUOp(i, isa.OpIntALU, int(i)), 0)
	}
	s.Flush(2)
	if s.Occupancy() != 2 {
		t.Errorf("occupancy after flush = %d, want 2", s.Occupancy())
	}
}

func TestOoOOutOfOrderIssue(t *testing.T) {
	s := NewOoO(8, 8, false)
	blocked := mkUOp(0, isa.OpIntALU, 0)
	ready := mkUOp(1, isa.OpIntALU, 1)
	s.Dispatch(blocked, 0)
	s.Dispatch(ready, 0)
	var granted []*UOp
	s.Issue(1, ctx(func(u *UOp) bool { return u != blocked }, &granted))
	if len(granted) != 1 || granted[0] != ready {
		t.Fatalf("OoO did not bypass blocked older op")
	}
	if s.Occupancy() != 1 {
		t.Errorf("occupancy = %d", s.Occupancy())
	}
}

func TestOoOOldestFirstPriority(t *testing.T) {
	// Two ready ops on the same port, the OLDER one dispatched second so
	// it lands in the higher slot index. Oldest-first must still pick it;
	// position-first picks the lower slot (the younger op).
	s := NewOoO(4, 8, true)
	s.Dispatch(mkUOp(10, isa.OpIntALU, 0), 0) // slot 0, younger seq
	s.Dispatch(mkUOp(5, isa.OpIntALU, 0), 0)  // slot 1, older seq
	var granted []*UOp
	s.Issue(1, ctx(always, &granted))
	if len(granted) != 1 || granted[0].Seq() != 5 {
		t.Fatalf("oldest-first granted seq %d, want 5", granted[0].Seq())
	}

	s2 := NewOoO(4, 8, false)
	s2.Dispatch(mkUOp(10, isa.OpIntALU, 0), 0) // slot 0
	s2.Dispatch(mkUOp(5, isa.OpIntALU, 0), 0)  // slot 1
	granted = nil
	s2.Issue(1, ctx(always, &granted))
	if len(granted) != 1 || granted[0].Seq() != 10 {
		t.Fatalf("position-first granted seq %d, want 10 (slot order)", granted[0].Seq())
	}
}

func TestOoOWakeupEnergyScalesWithEntries(t *testing.T) {
	small := NewOoO(16, 8, false)
	big := NewOoO(96, 8, false)
	small.Complete(rename.PhysReg(3), 0)
	big.Complete(rename.PhysReg(3), 0)
	if small.Energy().WakeupCompares >= big.Energy().WakeupCompares {
		t.Error("CAM compare energy does not scale with queue size")
	}
	small.Complete(rename.PhysNone, 0)
	if small.Energy().WakeupBroadcasts != 1 {
		t.Error("PhysNone completion broadcast counted")
	}
}

func TestOoOFlushFreesSlots(t *testing.T) {
	s := NewOoO(4, 8, false)
	for i := uint64(0); i < 4; i++ {
		s.Dispatch(mkUOp(i, isa.OpIntALU, int(i)), 0)
	}
	s.Flush(2)
	if s.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", s.Occupancy())
	}
	if !s.Dispatch(mkUOp(9, isa.OpIntALU, 0), 0) {
		t.Error("dispatch refused after flush")
	}
}

func TestCASINOPassesNonReadyDownstream(t *testing.T) {
	s := NewCASINO([]int{4, 8, 4}, 2, 2, 8)
	// Two non-ready ops: examined in S-IQ0's window, they must migrate
	// toward the final queue over successive cycles.
	s.Dispatch(mkUOp(0, isa.OpIntALU, 0), 0)
	s.Dispatch(mkUOp(1, isa.OpIntALU, 1), 0)
	var granted []*UOp
	for c := uint64(0); c < 3; c++ {
		s.Issue(c, ctx(never, &granted))
	}
	if len(granted) != 0 {
		t.Fatal("non-ready ops issued")
	}
	if got := s.Counters()["passed"]; got < 2 {
		t.Errorf("passed = %d, want ≥ 2 migrations", got)
	}
	// Once ready, the ops issue from wherever they are, oldest first.
	s.Issue(5, ctx(always, &granted))
	if len(granted) != 2 || granted[0].Seq() != 0 {
		t.Errorf("grants after readiness: %d (first seq %d)", len(granted), granted[0].Seq())
	}
}

func TestCASINOSpeculativeIssueSkipsOlderNonReady(t *testing.T) {
	s := NewCASINO([]int{4, 8}, 2, 2, 8)
	blocked := mkUOp(0, isa.OpIntALU, 0)
	ready := mkUOp(1, isa.OpIntALU, 1)
	s.Dispatch(blocked, 0)
	s.Dispatch(ready, 0)
	var granted []*UOp
	s.Issue(1, ctx(func(u *UOp) bool { return u != blocked }, &granted))
	if len(granted) != 1 || granted[0] != ready {
		t.Fatal("S-IQ did not speculatively issue the younger ready op")
	}
}

func TestCASINOFinalQueueInOrder(t *testing.T) {
	s := NewCASINO([]int{2, 2}, 2, 2, 8)
	blocked := mkUOp(0, isa.OpIntALU, 0)
	younger := mkUOp(1, isa.OpIntALU, 1)
	s.Dispatch(blocked, 0)
	s.Dispatch(younger, 0)
	// Push both into the final queue.
	var granted []*UOp
	for c := uint64(0); c < 4; c++ {
		s.Issue(c, ctx(never, &granted))
	}
	// blocked is at the final queue head; the younger ready op behind it
	// must NOT issue (strict program order there).
	s.Issue(9, ctx(func(u *UOp) bool { return u != blocked }, &granted))
	if len(granted) != 0 {
		t.Error("final in-order queue issued out of order")
	}
}

func TestCASINODispatchStallsWhenFirstQueueFull(t *testing.T) {
	s := NewCASINO([]int{2, 2}, 2, 2, 8)
	s.Dispatch(mkUOp(0, isa.OpIntALU, 0), 0)
	s.Dispatch(mkUOp(1, isa.OpIntALU, 0), 0)
	if s.Dispatch(mkUOp(2, isa.OpIntALU, 0), 0) {
		t.Error("dispatch into full S-IQ0 accepted")
	}
}

func TestFXACapturesReadyALUOps(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	s := NewFXA(16, 8, rn)
	u := mkUOp(0, isa.OpIntALU, 0) // PhysNone sources: ready immediately
	if !s.Dispatch(u, 10) {
		t.Fatal("dispatch refused")
	}
	if s.Counters()["ixu_execs"] != 1 {
		t.Fatal("ready ALU op not captured by the IXU")
	}
	var granted []*UOp
	s.Issue(11, ctx(always, &granted))
	if len(granted) != 1 {
		t.Fatalf("IXU op not executed at its slot: %d grants", len(granted))
	}
}

func TestFXASendsLoadsToBackend(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	s := NewFXA(16, 8, rn)
	s.Dispatch(mkUOp(0, isa.OpLoad, 2), 0)
	if s.Counters()["backend_execs"] != 1 {
		t.Error("load not routed to the back-end IQ")
	}
}

func TestFXASendsNonReadyToBackend(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	s := NewFXA(16, 8, rn)
	// Allocate a physical register that is never ready.
	_, dst, _, _ := rn.Rename(&isa.DynInst{Op: isa.OpIntALU, Dst: isa.R(1)})
	u := mkUOp(1, isa.OpIntALU, 0)
	u.Src[0] = dst
	s.Dispatch(u, 0)
	if s.Counters()["backend_execs"] != 1 {
		t.Error("non-ready ALU op captured by the IXU")
	}
}

func TestFXAFlush(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	s := NewFXA(16, 8, rn)
	s.Dispatch(mkUOp(0, isa.OpIntALU, 0), 0)
	s.Dispatch(mkUOp(1, isa.OpLoad, 2), 0)
	s.Flush(0)
	if s.Occupancy() != 0 {
		t.Errorf("occupancy after flush = %d", s.Occupancy())
	}
}

func TestCESSteersConsumerBehindProducer(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	m := mdp.New(mdp.DefaultConfig())
	s := NewCES(4, 8, 8, rn, m, false)

	// Producer writes a fresh physical register.
	_, dst, _, _ := rn.Rename(&isa.DynInst{Op: isa.OpIntALU, Dst: isa.R(1)})
	prod := mkUOp(0, isa.OpIntALU, 0)
	prod.Dst = dst
	if !s.Dispatch(prod, 0) {
		t.Fatal("producer dispatch failed")
	}
	cons := mkUOp(1, isa.OpIntALU, 1)
	cons.Src[0] = dst
	if !s.Dispatch(cons, 0) {
		t.Fatal("consumer dispatch failed")
	}
	c := s.Counters()
	if c["steer_dc"] != 1 {
		t.Errorf("steer_dc = %d, want 1 (consumer follows producer)", c["steer_dc"])
	}
	// Only the producer is at a head; the consumer is behind it.
	var granted []*UOp
	s.Issue(1, ctx(always, &granted))
	if len(granted) != 1 || granted[0] != prod {
		t.Fatalf("expected only the producer at a P-IQ head")
	}
}

func TestCESChainSplitAllocatesNewQueue(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	m := mdp.New(mdp.DefaultConfig())
	s := NewCES(4, 8, 8, rn, m, false)
	_, dst, _, _ := rn.Rename(&isa.DynInst{Op: isa.OpIntALU, Dst: isa.R(1)})
	prod := mkUOp(0, isa.OpIntALU, 0)
	prod.Dst = dst
	s.Dispatch(prod, 0)
	c1 := mkUOp(1, isa.OpIntALU, 1)
	c1.Src[0] = dst
	s.Dispatch(c1, 0)
	c2 := mkUOp(2, isa.OpIntALU, 2) // second consumer → chain split
	c2.Src[0] = dst
	s.Dispatch(c2, 0)
	c := s.Counters()
	if c["steer_dc"] != 1 {
		t.Errorf("steer_dc = %d, want 1", c["steer_dc"])
	}
	if c["alloc_ready"]+c["alloc_nonready"] != 2 { // producer + split consumer
		t.Errorf("allocations = %d, want 2", c["alloc_ready"]+c["alloc_nonready"])
	}
}

func TestCESStallsWhenNoQueueFree(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	m := mdp.New(mdp.DefaultConfig())
	s := NewCES(2, 4, 8, rn, m, false)
	// Two independent ops occupy both queues; a third independent op stalls.
	s.Dispatch(mkUOp(0, isa.OpIntALU, 0), 0)
	s.Dispatch(mkUOp(1, isa.OpIntALU, 1), 0)
	if s.Dispatch(mkUOp(2, isa.OpIntALU, 2), 0) {
		t.Fatal("dispatch succeeded with no free P-IQ")
	}
	c := s.Counters()
	if c["stall_ready"]+c["stall_nonready"] != 1 {
		t.Errorf("stalls = %d, want 1", c["stall_ready"]+c["stall_nonready"])
	}
}

func TestCESMDASteersLoadBehindStore(t *testing.T) {
	rn := rename.MustNew(rename.DefaultConfig())
	m := mdp.New(mdp.DefaultConfig())
	s := NewCES(4, 8, 8, rn, m, true)

	// Train the pair, then dispatch store and load as the pipeline would.
	m.TrainViolation(100, 200)
	st := mkUOp(0, isa.OpStore, 2)
	st.MDPWait, st.SSID = m.StoreDispatched(100, 0, mdp.NoIQ)
	s.Dispatch(st, 0)
	ld := mkUOp(1, isa.OpLoad, 3)
	ld.MDPWait, ld.SSID = m.LoadDispatched(200)
	s.Dispatch(ld, 0)
	if s.Counters()["steer_m"] != 1 {
		t.Errorf("steer_m = %d, want 1 (load follows store)", s.Counters()["steer_m"])
	}
	// The load must sit behind the store in the same queue: only the
	// store is at a head.
	var granted []*UOp
	s.Issue(1, ctx(always, &granted))
	if len(granted) != 1 || granted[0] != st {
		t.Fatal("MDA steering did not place the load behind its store")
	}
}
