package sched

import (
	"repro/internal/container"
	"repro/internal/rename"
)

// InO is the stall-on-use in-order scoreboard core of Table II: a single
// FIFO issue queue from whose head consecutive ready μops issue strictly in
// program order; the first non-ready μop blocks everything younger.
type InO struct {
	entries Ring // FIFO, At(0) is the oldest
	width   int
	events  EnergyEvents
	issued  uint64
	ports   PortMask
	stalls  uint64 // cycles the head was blocked while μops waited
}

// NewInO returns an in-order scheduler with the given queue capacity and
// issue width.
func NewInO(capacity, width int) *InO {
	s := &InO{width: width}
	s.entries.Init(capacity)
	return s
}

// Name implements Scheduler.
func (s *InO) Name() string { return "InO" }

// Capacity implements Scheduler.
func (s *InO) Capacity() int { return s.entries.Cap() }

// Occupancy implements Scheduler.
func (s *InO) Occupancy() int { return s.entries.Len() }

// Dispatch implements Scheduler.
func (s *InO) Dispatch(u *UOp, _ uint64) bool {
	if s.entries.Full() {
		return false
	}
	s.entries.Push(u)
	s.events.QueueWrites++
	return true
}

// Issue implements Scheduler: grant ready μops from the head, in order,
// stopping at the first that cannot issue.
func (s *InO) Issue(cycle uint64, ctx *IssueCtx) {
	s.ports.Reset()
	portUsed := &s.ports
	granted := 0
	s.entries.SelectOldest(func(u *UOp) container.Verdict {
		if granted >= s.width {
			return container.Stop
		}
		s.events.QueueReads++
		s.events.PSCBReads += 2
		if !ctx.Ready(u) {
			s.stalls++
			return container.Stop
		}
		if portUsed.Used(u.Port) {
			if ctx.PortBlocked != nil {
				ctx.PortBlocked(u)
			}
			s.stalls++
			return container.Stop
		}
		ctx.Grant(u)
		s.events.PayloadReads++
		portUsed.Set(u.Port)
		s.issued++
		granted++
		return container.Take
	})
}

// Complete implements Scheduler. The scoreboard core re-reads readiness at
// the head; no CAM broadcast energy.
func (s *InO) Complete(rename.PhysReg, uint64) {}

// Flush implements Scheduler.
func (s *InO) Flush(seq uint64) {
	s.entries.FlushFrom(seq)
}

// Queues implements Inspector: the single in-order FIFO.
func (s *InO) Queues() []QueueSnapshot {
	seqs := make([]uint64, s.entries.Len())
	for i := range seqs {
		seqs[i] = s.entries.At(i).Seq()
	}
	return []QueueSnapshot{{Name: "IQ", FIFO: true, Cap: s.entries.Cap(), Seqs: seqs}}
}

// Energy implements Scheduler.
func (s *InO) Energy() EnergyEvents { return s.events }

// Counters implements Scheduler.
func (s *InO) Counters() map[string]uint64 {
	return map[string]uint64{
		"issued":      s.issued,
		"head_stalls": s.stalls,
	}
}

var _ Scheduler = (*InO)(nil)
