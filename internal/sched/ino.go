package sched

import (
	"repro/internal/rename"
)

// InO is the stall-on-use in-order scoreboard core of Table II: a single
// FIFO issue queue from whose head consecutive ready μops issue strictly in
// program order; the first non-ready μop blocks everything younger.
type InO struct {
	entries []*UOp // FIFO, entries[0] is the oldest
	cap     int
	width   int
	events  EnergyEvents
	issued  uint64
	ports   PortMask
	stalls  uint64 // cycles the head was blocked while μops waited
}

// NewInO returns an in-order scheduler with the given queue capacity and
// issue width.
func NewInO(capacity, width int) *InO {
	return &InO{cap: capacity, width: width}
}

// Name implements Scheduler.
func (s *InO) Name() string { return "InO" }

// Capacity implements Scheduler.
func (s *InO) Capacity() int { return s.cap }

// Occupancy implements Scheduler.
func (s *InO) Occupancy() int { return len(s.entries) }

// Dispatch implements Scheduler.
func (s *InO) Dispatch(u *UOp, _ uint64) bool {
	if len(s.entries) >= s.cap {
		return false
	}
	s.entries = append(s.entries, u)
	s.events.QueueWrites++
	return true
}

// Issue implements Scheduler: grant ready μops from the head, in order,
// stopping at the first that cannot issue.
func (s *InO) Issue(cycle uint64, ctx *IssueCtx) {
	s.ports.Reset()
	portUsed := &s.ports
	granted := 0
	for granted < s.width && len(s.entries) > 0 {
		u := s.entries[0]
		s.events.QueueReads++
		s.events.PSCBReads += 2
		if !ctx.Ready(u) || portUsed.Used(u.Port) {
			s.stalls++
			return
		}
		ctx.Grant(u)
		s.events.PayloadReads++
		portUsed.Set(u.Port)
		s.entries = s.entries[1:]
		s.issued++
		granted++
	}
}

// Complete implements Scheduler. The scoreboard core re-reads readiness at
// the head; no CAM broadcast energy.
func (s *InO) Complete(rename.PhysReg, uint64) {}

// Flush implements Scheduler.
func (s *InO) Flush(seq uint64) {
	for i, u := range s.entries {
		if u.Seq() >= seq {
			s.entries = s.entries[:i]
			return
		}
	}
}

// Queues implements Inspector: the single in-order FIFO.
func (s *InO) Queues() []QueueSnapshot {
	seqs := make([]uint64, len(s.entries))
	for i, u := range s.entries {
		seqs[i] = u.Seq()
	}
	return []QueueSnapshot{{Name: "IQ", FIFO: true, Cap: s.cap, Seqs: seqs}}
}

// Energy implements Scheduler.
func (s *InO) Energy() EnergyEvents { return s.events }

// Counters implements Scheduler.
func (s *InO) Counters() map[string]uint64 {
	return map[string]uint64{
		"issued":      s.issued,
		"head_stalls": s.stalls,
	}
}

var _ Scheduler = (*InO)(nil)
