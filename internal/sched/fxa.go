package sched

import (
	"repro/internal/isa"
	"repro/internal/rename"
)

// FXA is the front-end execution architecture of Shioya et al.: a 3-stage
// in-order execution unit (IXU) with a bypass network sits between rename
// and the back-end, executing ready-at-dispatch μops and μops whose inputs
// become ready while traversing it. Everything else drops into a half-size
// conventional out-of-order IQ.
type FXA struct {
	backend  *OoO
	rn       *rename.Renamer
	ixuDepth uint64 // pipeline stages in the IXU
	width    int

	// ixu holds μops that will complete inside the IXU, keyed by the
	// cycle at which they execute.
	ixu []ixuOp

	events   EnergyEvents
	ixuExecs uint64
	beExecs  uint64
}

type ixuOp struct {
	u  *UOp
	at uint64 // execution cycle inside the IXU
}

// ixuEligible reports whether the IXU's simple integer ALUs can execute op.
func ixuEligible(op isa.Op) bool {
	return op == isa.OpIntALU || op == isa.OpBranch || op == isa.OpNop
}

// NewFXA builds FXA with a backendCap-entry out-of-order IQ (Table II:
// half the baseline) and a 3-stage IXU.
func NewFXA(backendCap, width int, rn *rename.Renamer) *FXA {
	return &FXA{
		backend:  NewOoO(backendCap, width, false),
		rn:       rn,
		ixuDepth: 3,
		width:    width,
		ixu:      make([]ixuOp, 0, 64),
	}
}

// Name implements Scheduler.
func (s *FXA) Name() string { return "FXA" }

// Capacity implements Scheduler.
func (s *FXA) Capacity() int { return s.backend.Capacity() }

// Occupancy implements Scheduler.
func (s *FXA) Occupancy() int { return s.backend.Occupancy() + len(s.ixu) }

// Dispatch implements Scheduler: a simple μop whose sources will be ready
// by the time it reaches the IXU's execution stage is captured by the IXU;
// anything else goes to the back-end IQ.
func (s *FXA) Dispatch(u *UOp, cycle uint64) bool {
	if ixuEligible(u.D.Op) {
		ready := s.rn.ReadyAt(u.Src[0])
		if r2 := s.rn.ReadyAt(u.Src[1]); r2 > ready {
			ready = r2
		}
		// The μop flows through the IXU stages; it can execute at the
		// first stage where its operands have arrived, up to ixuDepth
		// cycles after dispatch.
		if ready != rename.NeverReady && ready <= cycle+s.ixuDepth {
			at := cycle + 1
			if ready > at {
				at = ready
			}
			s.ixu = append(s.ixu, ixuOp{u: u, at: at})
			s.events.IXUExecs++
			s.ixuExecs++
			return true
		}
	}
	if !s.backend.Dispatch(u, cycle) {
		return false
	}
	s.beExecs++
	return true
}

// Issue implements Scheduler: IXU μops execute at their pipeline slot using
// the IXU's own functional units; back-end μops go through the conventional
// wakeup/select.
func (s *FXA) Issue(cycle uint64, ctx *IssueCtx) {
	keep := s.ixu[:0]
	for _, op := range s.ixu {
		if op.at <= cycle && ctx.Ready(op.u) {
			ctx.Grant(op.u)
		} else {
			keep = append(keep, op)
		}
	}
	s.ixu = keep
	s.backend.Issue(cycle, ctx)
}

// Complete implements Scheduler.
func (s *FXA) Complete(dst rename.PhysReg, cycle uint64) {
	s.backend.Complete(dst, cycle)
}

// Flush implements Scheduler.
func (s *FXA) Flush(seq uint64) {
	keep := s.ixu[:0]
	for _, op := range s.ixu {
		if op.u.Seq() < seq {
			keep = append(keep, op)
		}
	}
	s.ixu = keep
	s.backend.Flush(seq)
}

// Queues implements Inspector: the IXU's in-flight μops (dispatch order,
// but executed by operand arrival — not FIFO discipline) plus the back-end
// out-of-order IQ.
func (s *FXA) Queues() []QueueSnapshot {
	seqs := make([]uint64, len(s.ixu))
	for i, op := range s.ixu {
		seqs[i] = op.u.Seq()
	}
	qs := []QueueSnapshot{{Name: "IXU", FIFO: false, Cap: len(s.ixu), Seqs: seqs}}
	return append(qs, s.backend.Queues()...)
}

// Energy implements Scheduler.
func (s *FXA) Energy() EnergyEvents {
	e := s.events
	e.Add(s.backend.Energy())
	return e
}

// Counters implements Scheduler.
func (s *FXA) Counters() map[string]uint64 {
	return map[string]uint64{
		"issued":        s.ixuExecs + s.backend.issued,
		"ixu_execs":     s.ixuExecs,
		"backend_execs": s.beExecs,
	}
}

var _ Scheduler = (*FXA)(nil)
