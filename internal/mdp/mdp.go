// Package mdp implements memory dependence prediction with store sets
// (Chrysos & Emer), per §II-A and §IV-C of the paper: a 1024-entry store
// set ID table (SSIT) indexed by instruction PC, holding 7-bit SSIDs, and a
// last fetched store table (LFST) indexed by SSID, holding the hardware
// pointer of the most recently fetched in-flight store of the set.
//
// For Ballerino's M-dependence-aware steering (§IV-C), each LFST entry is
// extended with producer-location fields: the index of the P-IQ the store
// was steered to and a Reserved flag recording whether a consumer has
// already followed it there.
package mdp

import "fmt"

// NoStore marks the absence of an in-flight producer store.
const NoStore = ^uint64(0)

// NoIQ marks the absence of steering information in an LFST entry.
const NoIQ = -1

// Config sizes the tables (Table I: 1024-entry SSIT, 7-bit SSID).
type Config struct {
	SSITEntries int
	SSIDBits    int
}

// DefaultConfig returns the Table I configuration.
func DefaultConfig() Config { return Config{SSITEntries: 1024, SSIDBits: 7} }

// Validate reports configuration errors. The SSIT is direct-mapped by PC,
// so its size must be a power of two; the LFST has 2^SSIDBits entries.
func (c Config) Validate() error {
	if c.SSITEntries <= 0 || c.SSITEntries&(c.SSITEntries-1) != 0 {
		return fmt.Errorf("mdp: SSITEntries %d must be a positive power of two", c.SSITEntries)
	}
	if c.SSIDBits <= 0 || c.SSIDBits > 20 {
		return fmt.Errorf("mdp: SSIDBits %d out of range (1..20)", c.SSIDBits)
	}
	return nil
}

// Stats counts predictor events.
type Stats struct {
	Violations  uint64 // order violations reported for training
	Merges      uint64 // store-set merges (both PCs already had sets)
	Allocations uint64 // new store sets created
	LoadWaits   uint64 // loads told to wait on an in-flight store
	StoreSerial uint64 // stores serialised behind an earlier set member
}

type lfstEntry struct {
	store uint64 // dynamic id of most recent in-flight store; NoStore if none
	// lastUpdater is the dynamic id of the store that wrote this entry;
	// the entry is cleared only when that store issues (or squashes).
	lastUpdater uint64

	// Steering extension for Ballerino (§IV-C): where the producer store
	// went, and whether a consumer already followed it there.
	IQIndex  int
	Reserved bool
}

// MDP is the store-set predictor.
type MDP struct {
	cfg      Config
	ssit     []int32 // PC-indexed; -1 = invalid, else SSID
	lfst     []lfstEntry
	nextSSID int32
	stats    Stats
}

// New returns an MDP with empty tables. The configuration must satisfy
// Validate; pipeline.New checks it before construction, so the panic below
// is an internal assertion, not a user-reachable error path.
func New(cfg Config) *MDP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &MDP{
		cfg:  cfg,
		ssit: make([]int32, cfg.SSITEntries),
		lfst: make([]lfstEntry, 1<<cfg.SSIDBits),
	}
	for i := range m.ssit {
		m.ssit[i] = -1
	}
	m.clearAllLFST()
	return m
}

func (m *MDP) clearAllLFST() {
	for i := range m.lfst {
		m.lfst[i] = lfstEntry{store: NoStore, lastUpdater: NoStore, IQIndex: NoIQ}
	}
}

// Stats returns a copy of the counters.
func (m *MDP) Stats() Stats { return m.stats }

func (m *MDP) ssitIdx(pc uint64) int {
	return int(pc) & (m.cfg.SSITEntries - 1)
}

// SSID returns the store set of pc, or -1.
func (m *MDP) SSID(pc uint64) int32 { return m.ssit[m.ssitIdx(pc)] }

// TrainViolation records a memory order violation between the store at
// storePC and the load at loadPC, assigning or merging their store sets per
// the original store-sets rules.
func (m *MDP) TrainViolation(storePC, loadPC uint64) {
	m.stats.Violations++
	si, li := m.ssitIdx(storePC), m.ssitIdx(loadPC)
	ss, ls := m.ssit[si], m.ssit[li]
	switch {
	case ss == -1 && ls == -1:
		id := m.allocSSID()
		m.ssit[si], m.ssit[li] = id, id
		m.stats.Allocations++
	case ss == -1:
		m.ssit[si] = ls
	case ls == -1:
		m.ssit[li] = ss
	case ss != ls:
		// Merge: both adopt the smaller SSID (declawed merge rule).
		m.stats.Merges++
		if ss < ls {
			m.ssit[li] = ss
		} else {
			m.ssit[si] = ls
		}
	}
}

func (m *MDP) allocSSID() int32 {
	id := m.nextSSID
	m.nextSSID = (m.nextSSID + 1) & int32(len(m.lfst)-1)
	return id
}

// StoreDispatched must be called when a store is renamed/dispatched.
// It returns the dynamic id of an earlier in-flight store of the same set
// that this store must be serialised behind (or NoStore), plus the SSID
// (or -1). It then records this store as the set's most recent member.
//
// The iqIndex parameter records where the steering logic placed the store
// (Ballerino's LFST extension); pass NoIQ for cores without MDA steering.
func (m *MDP) StoreDispatched(pc uint64, dynID uint64, iqIndex int) (waitFor uint64, ssid int32) {
	ssid = m.SSID(pc)
	if ssid < 0 {
		return NoStore, -1
	}
	e := &m.lfst[ssid]
	waitFor = e.store
	if waitFor != NoStore {
		m.stats.StoreSerial++
	}
	e.store = dynID
	e.lastUpdater = dynID
	e.IQIndex = iqIndex
	e.Reserved = false
	return waitFor, ssid
}

// LoadDispatched must be called when a load is renamed/dispatched. It
// returns the dynamic id of the in-flight store the load must wait for
// (or NoStore) and the load's SSID (or -1).
func (m *MDP) LoadDispatched(pc uint64) (waitFor uint64, ssid int32) {
	ssid = m.SSID(pc)
	if ssid < 0 {
		return NoStore, -1
	}
	e := &m.lfst[ssid]
	if e.store != NoStore {
		m.stats.LoadWaits++
	}
	return e.store, ssid
}

// SetProducerLocation records, at steering time, the P-IQ where the store
// that most recently updated the set's LFST entry was placed. It is a no-op
// if a younger store has since taken over the entry.
func (m *MDP) SetProducerLocation(ssid int32, dynID uint64, iqIndex int) {
	if ssid < 0 {
		return
	}
	e := &m.lfst[ssid]
	if e.lastUpdater == dynID {
		e.IQIndex = iqIndex
		e.Reserved = false
	}
}

// ProducerLocation returns the steering information the most recent store
// of the set left behind: the P-IQ it occupies and whether a consumer has
// already been steered after it. ok is false when the set has no in-flight
// store or no recorded steering.
func (m *MDP) ProducerLocation(ssid int32) (iqIndex int, reserved bool, ok bool) {
	if ssid < 0 {
		return NoIQ, false, false
	}
	e := &m.lfst[ssid]
	if e.store == NoStore || e.IQIndex == NoIQ {
		return NoIQ, false, false
	}
	return e.IQIndex, e.Reserved, true
}

// ReserveProducer marks the set's steering slot as consumed: the next
// M-dependent operation must not follow into the same P-IQ tail.
func (m *MDP) ReserveProducer(ssid int32) {
	if ssid >= 0 {
		m.lfst[ssid].Reserved = true
	}
}

// StoreIssued releases the LFST entry if this store performed the most
// recent update to it, per the paper: "The LFST entry is released when the
// store performing the most recent update to it is issued."
func (m *MDP) StoreIssued(ssid int32, dynID uint64) {
	if ssid < 0 {
		return
	}
	e := &m.lfst[ssid]
	if e.lastUpdater == dynID {
		*e = lfstEntry{store: NoStore, lastUpdater: NoStore, IQIndex: NoIQ}
	}
}

// StoreSquashed clears the LFST entry if the squashed store performed the
// most recent update to it (§IV-F: flushed stores clear their LFST entry).
func (m *MDP) StoreSquashed(ssid int32, dynID uint64) {
	m.StoreIssued(ssid, dynID) // identical release rule
}
