package mdp

import "testing"

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{SSITEntries: 0, SSIDBits: 7},
		{SSITEntries: 100, SSIDBits: 7},
		{SSITEntries: 1024, SSIDBits: 0},
		{SSITEntries: 1024, SSIDBits: 21},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestUntrainedPairHasNoDependence(t *testing.T) {
	m := New(DefaultConfig())
	if w, ssid := m.LoadDispatched(100); w != NoStore || ssid != -1 {
		t.Errorf("untrained load: wait=%d ssid=%d", w, ssid)
	}
	if w, ssid := m.StoreDispatched(200, 1, NoIQ); w != NoStore || ssid != -1 {
		t.Errorf("untrained store: wait=%d ssid=%d", w, ssid)
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100) // store pc=200, load pc=100

	// Next iteration: store dispatches first, then the load must wait.
	w, sSSID := m.StoreDispatched(200, 7, NoIQ)
	if w != NoStore {
		t.Errorf("first store of set told to wait for %d", w)
	}
	if sSSID < 0 {
		t.Fatal("store has no SSID after training")
	}
	w, lSSID := m.LoadDispatched(100)
	if w != 7 {
		t.Errorf("load waits for %d, want 7", w)
	}
	if lSSID != sSSID {
		t.Errorf("load SSID %d != store SSID %d", lSSID, sSSID)
	}
	if m.Stats().LoadWaits != 1 || m.Stats().Allocations != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestStoreIssueReleasesEntry(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100)
	_, ssid := m.StoreDispatched(200, 7, NoIQ)
	m.StoreIssued(ssid, 7)
	if w, _ := m.LoadDispatched(100); w != NoStore {
		t.Errorf("load still waits for %d after store issued", w)
	}
}

func TestStaleIssueDoesNotRelease(t *testing.T) {
	// A second store updates the entry; the first store's issue must not
	// clear the newer pointer.
	m := New(DefaultConfig())
	m.TrainViolation(200, 100)
	_, ssid := m.StoreDispatched(200, 7, NoIQ)
	m.StoreDispatched(200, 9, NoIQ) // newer dynamic instance
	m.StoreIssued(ssid, 7)          // stale release
	if w, _ := m.LoadDispatched(100); w != 9 {
		t.Errorf("load waits for %d, want 9", w)
	}
}

func TestStoresSerialiseWithinSet(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100)
	m.StoreDispatched(200, 5, NoIQ)
	w, _ := m.StoreDispatched(200, 8, NoIQ)
	if w != 5 {
		t.Errorf("second store waits for %d, want 5", w)
	}
	if m.Stats().StoreSerial != 1 {
		t.Errorf("StoreSerial = %d", m.Stats().StoreSerial)
	}
}

func TestMergeAdoptsSmallerSSID(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100) // set A
	m.TrainViolation(300, 400) // set B
	a, b := m.SSID(200), m.SSID(300)
	if a == b {
		t.Fatal("distinct violations shared an SSID")
	}
	m.TrainViolation(200, 400) // merge A and B members
	if m.SSID(200) != m.SSID(400) {
		t.Error("merge did not unify sets")
	}
	want := a
	if b < a {
		want = b
	}
	if m.SSID(400) != want {
		t.Errorf("merged SSID = %d, want smaller of (%d,%d)", m.SSID(400), a, b)
	}
	if m.Stats().Merges != 1 {
		t.Errorf("Merges = %d", m.Stats().Merges)
	}
}

func TestOneSidedAssignment(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100)
	ssid := m.SSID(200)
	// New load joins the existing store's set.
	m.TrainViolation(200, 101)
	if m.SSID(101) != ssid {
		t.Error("load did not adopt store's set")
	}
	// New store joins an existing load's set.
	m.TrainViolation(201, 100)
	if m.SSID(201) != ssid {
		t.Error("store did not adopt load's set")
	}
}

func TestProducerLocationLifecycle(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100)
	_, ssid := m.StoreDispatched(200, 7, 3) // steered to P-IQ 3
	iq, reserved, ok := m.ProducerLocation(ssid)
	if !ok || iq != 3 || reserved {
		t.Fatalf("ProducerLocation = %d,%v,%v", iq, reserved, ok)
	}
	m.ReserveProducer(ssid)
	if _, reserved, _ := m.ProducerLocation(ssid); !reserved {
		t.Error("ReserveProducer did not stick")
	}
	m.StoreIssued(ssid, 7)
	if _, _, ok := m.ProducerLocation(ssid); ok {
		t.Error("ProducerLocation valid after release")
	}
}

func TestProducerLocationWithoutSteering(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100)
	_, ssid := m.StoreDispatched(200, 7, NoIQ)
	if _, _, ok := m.ProducerLocation(ssid); ok {
		t.Error("ProducerLocation valid despite NoIQ steering")
	}
	if _, _, ok := m.ProducerLocation(-1); ok {
		t.Error("ProducerLocation valid for SSID -1")
	}
}

func TestStoreSquashedClearsEntry(t *testing.T) {
	m := New(DefaultConfig())
	m.TrainViolation(200, 100)
	_, ssid := m.StoreDispatched(200, 7, 2)
	m.StoreSquashed(ssid, 7)
	if w, _ := m.LoadDispatched(100); w != NoStore {
		t.Error("squashed store still blocks load")
	}
}

// TestMDPPreventsRepeatViolation is the scenario from §II-A: once a pair
// violates, the predictor must serialise future instances.
func TestMDPPreventsRepeatViolation(t *testing.T) {
	m := New(DefaultConfig())
	const storePC, loadPC = 500, 600

	// Iteration 0: no prediction → the load would have gone early and
	// violated; the core trains the predictor.
	if w, _ := m.LoadDispatched(loadPC); w != NoStore {
		t.Fatal("cold load predicted dependent")
	}
	m.TrainViolation(storePC, loadPC)

	// Iterations 1..10: dispatch store then load each round; the load must
	// always be told to wait for that round's store instance.
	for i := uint64(1); i <= 10; i++ {
		_, ssid := m.StoreDispatched(storePC, i, NoIQ)
		w, _ := m.LoadDispatched(loadPC)
		if w != i {
			t.Fatalf("round %d: load waits for %d", i, w)
		}
		m.StoreIssued(ssid, i)
	}
}
