package faults_test

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/sched"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7,jitter=8,flush=2000,squeeze=50,mdp=100"
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Plan{Seed: 7, JitterMax: 8, FlushEvery: 2000, SqueezeMilli: 50, MDPMilli: 100}
	if p != want {
		t.Fatalf("Parse(%q) = %+v, want %+v", spec, p, want)
	}
	if p.String() != spec {
		t.Fatalf("String() = %q, want %q", p.String(), spec)
	}
	back, err := faults.Parse(p.String())
	if err != nil || back != p {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
}

func TestParseEmptyAndPartial(t *testing.T) {
	p, err := faults.Parse("")
	if err != nil || p.Active() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	p, err = faults.Parse(" jitter=4 ")
	if err != nil || p.JitterMax != 4 || !p.Active() {
		t.Fatalf("partial spec: %+v, %v", p, err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"jitter",           // no value
		"jitter=x",         // non-numeric
		"warp=9",           // unknown knob
		"squeeze=1000",     // would veto every dispatch
		"mdp=1001",         // not a probability
		"jitter=2000000",   // absurd latency
		"seed=-1",          // negative
	} {
		if _, err := faults.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestDeterminism(t *testing.T) {
	plan := faults.Plan{Seed: 11, JitterMax: 9, FlushEvery: 100, SqueezeMilli: 200, MDPMilli: 300}
	mk := func() (*faults.Injector, []uint64) {
		in, err := faults.New(plan)
		if err != nil {
			t.Fatal(err)
		}
		u := &sched.UOp{D: &isa.DynInst{Op: isa.OpLoad}}
		var seq []uint64
		for c := uint64(0); c < 500; c++ {
			seq = append(seq, in.ExtraLatency(u, c))
			if in.StallDispatch(c) {
				seq = append(seq, ^uint64(0))
			}
			if in.ForceMDPWait(u, c) {
				seq = append(seq, ^uint64(1))
			}
		}
		return in, seq
	}
	a, sa := mk()
	b, sb := mk()
	if len(sa) != len(sb) {
		t.Fatalf("stream lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
	other, _ := faults.New(faults.Plan{Seed: 12, JitterMax: 9})
	u := &sched.UOp{D: &isa.DynInst{Op: isa.OpLoad}}
	diff := false
	for c := uint64(0); c < 64; c++ {
		if other.ExtraLatency(u, c) != sa[0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced an identical prefix")
	}
}

func TestFlushCadence(t *testing.T) {
	in, err := faults.New(faults.Plan{Seed: 1, FlushEvery: 250})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for c := uint64(0); c < 1000; c++ {
		if in.FlushNow(c) {
			n++
		}
	}
	if n != 3 { // cycles 250, 500, 750 (cycle 0 excluded)
		t.Fatalf("got %d flushes in 1000 cycles at FlushEvery=250, want 3", n)
	}
	if in.Stats().Flushes != 3 {
		t.Fatalf("Stats().Flushes = %d", in.Stats().Flushes)
	}
}

func TestCampaignPlansAreValidAndVaried(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		p := faults.CampaignPlan(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !p.Active() {
			t.Fatalf("seed %d: inactive plan", seed)
		}
		if p.Seed != seed {
			t.Fatalf("seed %d: plan has seed %d", seed, p.Seed)
		}
		_, mix, _ := strings.Cut(p.String(), ",") // drop the seed field
		seen[mix] = true
	}
	if len(seen) < 16 {
		t.Fatalf("only %d distinct fault mixes across 32 seeds", len(seen))
	}
}
