// Package faults is the deterministic fault-injection harness for the
// robustness test campaigns: it perturbs the simulated machine with
// adversarial — but architecturally legal — events and lets the invariant
// auditor (internal/check) and the golden-model cross-check prove the
// pipeline's bookkeeping survives them.
//
// Every injected fault is timing-only, so a faulted run must still commit
// the exact architectural trace:
//
//   - Latency jitter: extra completion cycles on granted μops, stressing
//     wakeup ordering and the completion event map.
//   - Flush storms: periodic mid-ROB pipeline flushes, stressing rename
//     recovery, LFST/LSQ cleanup and refetch. The flush bound is always
//     younger than the ROB head, preserving forward progress.
//   - Dispatch squeezes: random dispatch vetoes, stressing queue-pressure
//     corner cases (full windows, stalled rename).
//   - MDP storms: fabricated memory-dependence waits on the youngest
//     unissued store, stressing the cross-queue wait machinery. The target
//     is always strictly older than the waiter, so no wait cycle can form.
//
// All randomness comes from a splitmix64 stream seeded by Plan.Seed: the
// same plan over the same workload injects the identical fault sequence.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sched"
)

// Plan describes one fault-injection campaign. The zero value injects
// nothing.
type Plan struct {
	// Seed seeds the deterministic fault stream.
	Seed uint64
	// JitterMax adds 0..JitterMax extra completion cycles to every granted
	// μop (0 = off).
	JitterMax uint64
	// FlushEvery triggers a mid-ROB flush every FlushEvery cycles (0 = off).
	FlushEvery uint64
	// SqueezeMilli vetoes dispatch with probability SqueezeMilli/1000 per
	// cycle (0 = off). Must stay below 1000: a certain veto would stop
	// dispatch forever.
	SqueezeMilli uint64
	// MDPMilli fabricates a memory-dependence wait on a dispatching memory
	// μop with probability MDPMilli/1000 (0 = off).
	MDPMilli uint64
}

// Validate reports plan errors, including knob settings that would destroy
// liveness rather than merely stress it.
func (p Plan) Validate() error {
	if p.SqueezeMilli >= 1000 {
		return fmt.Errorf("faults: squeeze=%d would veto every dispatch (must be < 1000)", p.SqueezeMilli)
	}
	if p.MDPMilli > 1000 {
		return fmt.Errorf("faults: mdp=%d is not a per-mille probability (must be ≤ 1000)", p.MDPMilli)
	}
	if p.JitterMax > 1_000_000 {
		return fmt.Errorf("faults: jitter=%d cycles is beyond any plausible latency", p.JitterMax)
	}
	return nil
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.JitterMax > 0 || p.FlushEvery > 0 || p.SqueezeMilli > 0 || p.MDPMilli > 0
}

func (p Plan) String() string {
	return fmt.Sprintf("seed=%d,jitter=%d,flush=%d,squeeze=%d,mdp=%d",
		p.Seed, p.JitterMax, p.FlushEvery, p.SqueezeMilli, p.MDPMilli)
}

// Parse builds a Plan from a comma-separated spec like
// "seed=1,jitter=8,flush=2000,squeeze=50,mdp=100". Every key is optional;
// unknown keys are errors.
func Parse(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad value in %q: %v", field, err)
		}
		switch strings.TrimSpace(key) {
		case "seed":
			p.Seed = n
		case "jitter":
			p.JitterMax = n
		case "flush":
			p.FlushEvery = n
		case "squeeze":
			p.SqueezeMilli = n
		case "mdp":
			p.MDPMilli = n
		default:
			return Plan{}, fmt.Errorf("faults: unknown knob %q (valid: seed, jitter, flush, squeeze, mdp)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// CampaignPlan derives the fault mix for one seed of the standard
// robustness campaign: every knob active at moderate intensity, with the
// magnitudes varied deterministically per seed so a 32-seed sweep covers a
// spread of fault densities.
func CampaignPlan(seed uint64) Plan {
	r := rng{state: seed*0x9e3779b97f4a7c15 + 1}
	return Plan{
		Seed:         seed,
		JitterMax:    1 + r.below(16),        // 1..16 extra cycles
		FlushEvery:   500 + r.below(4000),    // one storm per 500..4499 cycles
		SqueezeMilli: 10 + r.below(140),      // 1%..15% dispatch vetoes
		MDPMilli:     10 + r.below(190),      // 1%..20% fabricated waits
	}
}

// Stats counts the faults actually injected.
type Stats struct {
	JitterCycles uint64 // total extra latency cycles added
	JitteredOps  uint64 // grants that received extra latency
	Flushes      uint64 // injected mid-ROB flushes
	Squeezes     uint64 // vetoed dispatch cycles
	MDPWaits     uint64 // fabricated memory-dependence waits
}

// Injector implements pipeline.Injector: the pipeline consults it at grant,
// dispatch, rename and once per cycle. Call sites are visited in a fixed
// per-cycle order, so one seed yields one fault sequence.
type Injector struct {
	plan  Plan
	r     rng
	stats Stats
}

// New builds an injector for a validated plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, r: rng{state: plan.Seed ^ 0x6a09e667f3bcc909}}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns the injected-fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// ExtraLatency returns extra completion cycles for a μop granted this
// cycle.
func (in *Injector) ExtraLatency(u *sched.UOp, cycle uint64) uint64 {
	if in.plan.JitterMax == 0 {
		return 0
	}
	extra := in.r.below(in.plan.JitterMax + 1)
	if extra > 0 {
		in.stats.JitteredOps++
		in.stats.JitterCycles += extra
	}
	return extra
}

// FlushNow reports whether the pipeline should inject a mid-ROB flush this
// cycle. The pipeline picks the bound (always younger than the ROB head).
func (in *Injector) FlushNow(cycle uint64) bool {
	if in.plan.FlushEvery == 0 || cycle == 0 || cycle%in.plan.FlushEvery != 0 {
		return false
	}
	in.stats.Flushes++
	return true
}

// StallDispatch reports whether to veto all dispatch this cycle.
func (in *Injector) StallDispatch(cycle uint64) bool {
	if in.plan.SqueezeMilli == 0 || in.r.below(1000) >= in.plan.SqueezeMilli {
		return false
	}
	in.stats.Squeezes++
	return true
}

// ForceMDPWait reports whether to fabricate a memory-dependence wait for a
// memory μop being renamed. The pipeline targets the youngest unissued
// store — strictly older than u — so fabricated waits cannot form cycles.
func (in *Injector) ForceMDPWait(u *sched.UOp, cycle uint64) bool {
	if in.plan.MDPMilli == 0 || in.r.below(1000) >= in.plan.MDPMilli {
		return false
	}
	in.stats.MDPWaits++
	return true
}

// rng is a splitmix64 stream: tiny, fast, and reproducible everywhere.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// below returns a value in [0, n). n must be positive.
func (r *rng) below(n uint64) uint64 { return r.next() % n }
