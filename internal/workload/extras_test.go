package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

func TestExtrasExecute(t *testing.T) {
	for _, w := range Extras(Params{Footprint: 1 << 20}) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tr := prog.MustExecute(w.Program, 20000)
			if len(tr.Ops) < 10000 {
				t.Fatalf("trace too short: %d", len(tr.Ops))
			}
			for _, d := range tr.Ops {
				if d.Op.IsMem() && d.Addr == 0 {
					t.Fatalf("memory op with nil address: %v", d)
				}
			}
		})
	}
}

func TestExtrasReachableByName(t *testing.T) {
	for _, name := range []string{"bst-search", "shellsort-pass", "butterfly"} {
		if _, err := ByName(name, Params{}); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}

func TestExtrasNotInStandardSuite(t *testing.T) {
	for _, w := range All(Params{}) {
		for _, e := range Extras(Params{}) {
			if w.Name == e.Name {
				t.Errorf("extra kernel %q leaked into the calibrated suite", e.Name)
			}
		}
	}
}

func TestBSTSearchDescends(t *testing.T) {
	w := BSTSearch(Params{Footprint: 1 << 20})
	tr := prog.MustExecute(w.Program, 20000)
	// The node pointer loads must visit many distinct nodes (a real walk,
	// not a self-loop), and both descend directions must occur.
	nodes := map[uint64]bool{}
	var left, right int
	for _, d := range tr.Ops {
		if d.IsLoad() && d.Dst == d.Src1 { // load node, [node+off]
			nodes[d.Addr] = true
			switch d.Addr & 31 {
			case 8:
				left++
			case 16:
				right++
			}
		}
	}
	if len(nodes) < 100 {
		t.Errorf("only %d distinct nodes visited", len(nodes))
	}
	if left == 0 || right == 0 {
		t.Errorf("descent directions: left=%d right=%d, want both", left, right)
	}
}

func TestShellSortSwapsAndSkips(t *testing.T) {
	w := ShellSortPass(Params{})
	tr := prog.MustExecute(w.Program, 30000)
	var stores, branches, taken int
	for _, d := range tr.Ops {
		if d.IsStore() {
			stores++
		}
		if d.IsBranch() && d.Cond == isa.BrLTZ {
			branches++
			if d.Taken {
				taken++
			}
		}
	}
	if stores == 0 {
		t.Fatal("no swaps performed")
	}
	if branches == 0 || taken == 0 || taken == branches {
		t.Errorf("compare branch not data-dependent: %d/%d taken", taken, branches)
	}
}

func TestButterflyStridedPairs(t *testing.T) {
	w := Butterfly(Params{})
	tr := prog.MustExecute(w.Program, 30000)
	// Stores must come in (ptr, ptr+half*8) pairs: the distance between a
	// pair's addresses is one of the three stage strides.
	strides := map[uint64]int{}
	var prev *isa.DynInst
	for i := range tr.Ops {
		d := &tr.Ops[i]
		if !d.IsStore() {
			continue
		}
		if prev != nil && d.Addr > prev.Addr {
			strides[d.Addr-prev.Addr]++
		}
		prev = d
	}
	for _, half := range []uint64{8, 64, 512} {
		if strides[half*8] == 0 {
			t.Errorf("no store pairs at stride %d words", half)
		}
	}
}
