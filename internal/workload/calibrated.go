package workload

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/sched"
)

// This file implements workload.Calibrated: a generator that synthesizes
// op mixes to hit target functional-unit-occupancy / ILP / load-latency
// operating points, together with the Carroll–Lin-style queuing model
// (arXiv:1807.08586) that predicts its steady-state IPC in closed form.
//
// A calibrated kernel is a loop whose body is K independent loop-carried
// serial dependence chains, interleaved round-robin. Chain c executes
// Len_c μops of one opcode class per iteration, each depending on the
// previous through its private register (loads chase a private
// L1-resident pointer ring, so every hop costs the AGU + L1 hit latency
// and nothing else). Because the chains are independent and the loop
// branch is perfectly predicted, the machine's steady-state behaviour is
// the classic closed queuing network the Carroll–Lin model solves: one
// loop iteration takes
//
//	T = max( max_c Len_c·lat_c,            dependence bottleneck
//	         max_k n_k/μ_k,                FU-capacity bottleneck
//	         N/width )                     issue-width bottleneck
//
// cycles, where n_k counts the iteration's class-k μops, μ_k is the
// class-k service rate (FUs for pipelined units, FUs/latency for the
// unpipelined dividers) and N is the total μops per iteration — so
// IPC = N/T, which PredictIPC computes and TestCalibratedIPC holds the
// OoO scheduler to.

// CalibChain is one loop-carried serial dependence chain of a calibrated
// kernel: Len μops of class Op per loop iteration, each dependent on the
// previous.
type CalibChain struct {
	Op  isa.Op
	Len int
}

// CalibLoadLatency is the effective per-hop latency of a calibrated load
// chain: address generation plus an L1D hit — the rings are sized to
// live in the L1 permanently.
var CalibLoadLatency = float64(sched.Latency(isa.OpLoad)) +
	float64(mem.DefaultConfig().L1D.HitLatency)

// calibLat is the dependence latency of one chain hop.
func calibLat(op isa.Op) float64 {
	if op == isa.OpLoad {
		return CalibLoadLatency
	}
	return float64(sched.Latency(op))
}

// validCalibOp reports whether an op class can form a serial chain: it
// must produce a register for the next hop to consume.
func validCalibOp(op isa.Op) bool {
	switch op {
	case isa.OpIntALU, isa.OpIntMul, isa.OpIntDiv,
		isa.OpFpAdd, isa.OpFpMul, isa.OpFpDiv, isa.OpLoad:
		return true
	}
	return false
}

// calibRingNodes and calibRingStride size one load chain's pointer ring:
// 32 nodes × 64 B keeps a ring in two KiB, so even a dozen rings sit in
// the 32 KiB L1D with room to spare.
const (
	calibRingNodes  = 32
	calibRingStride = 64
)

// Calibrated builds the kernel for one operating point. Chains must be
// non-empty, each with a chainable op class and positive length; the
// loop-control counter and back-branch are appended automatically (and
// accounted for by PredictIPC). Invalid specs panic: operating points are
// program constants, not runtime input.
func Calibrated(name string, chains []CalibChain, p Params) Workload {
	p = p.withDefaults()
	if len(chains) == 0 {
		panic("workload: calibrated kernel needs at least one chain")
	}
	b := prog.NewBuilder(name)

	// Shared constant registers for value-stable chain steps, set in the
	// initial register image so the loop body starts at instruction zero.
	one, fone, fzero := isa.R(5), isa.F(5), isa.F(6)
	b.SetReg(one, 1)
	b.SetReg(fone, 1)
	b.SetReg(fzero, 0)

	// One private register per chain; load chains also get a pointer ring.
	regs := make([]isa.Reg, len(chains))
	intN, fpN, rings := 0, 0, 0
	for i, c := range chains {
		if !validCalibOp(c.Op) || c.Len <= 0 {
			panic(fmt.Sprintf("workload: calibrated chain %d: bad spec {%v, %d}", i, c.Op, c.Len))
		}
		switch {
		case c.Op == isa.OpFpAdd || c.Op == isa.OpFpMul || c.Op == isa.OpFpDiv:
			regs[i] = isa.F(8 + fpN)
			fpN++
			b.SetReg(regs[i], 3)
		case c.Op == isa.OpLoad:
			regs[i] = isa.R(8 + intN)
			intN++
			base := uint64(heapBase + rings*calibRingNodes*calibRingStride)
			rings++
			for j := 0; j < calibRingNodes; j++ {
				node := base + uint64(j)*calibRingStride
				next := base + uint64((j+1)%calibRingNodes)*calibRingStride
				b.SetMem(node, int64(next))
			}
			b.SetReg(regs[i], int64(base))
		default:
			regs[i] = isa.R(8 + intN)
			intN++
			b.SetReg(regs[i], 3)
		}
	}

	cnt := isa.R(4)
	b.SetReg(cnt, p.Iterations)
	top := b.NewLabel()
	b.Bind(top)
	// Chain-major emission: all of chain 0, then chain 1, … On the
	// clustered architectures, dependence steering then keeps each chain
	// inside one issue-queue cluster; on the dispatch-time port binding
	// of §II-A it keeps a chain's hops from interleaving with its
	// siblings' in the balance counters. (Round-robin interleaving costs
	// parallel latency-1 chains a measurable slice of their throughput on
	// both.)
	for i, c := range chains {
		r := regs[i]
		for s := 0; s < c.Len; s++ {
			switch c.Op {
			case isa.OpIntALU:
				b.AddImm(r, r, 1)
			case isa.OpIntMul:
				b.IntMul(r, r, one)
			case isa.OpIntDiv:
				b.IntDiv(r, r, one)
			case isa.OpFpAdd:
				b.FpAdd(r, r, fzero)
			case isa.OpFpMul:
				b.FpMul(r, r, fone)
			case isa.OpFpDiv:
				b.FpDiv(r, r, fone)
			case isa.OpLoad:
				b.Load(r, r, 0)
			}
		}
	}
	b.AddImm(cnt, cnt, -1)
	b.Branch(isa.BrNEZ, cnt, top)

	return Workload{
		Name:    name,
		Kind:    "calibrated",
		Emulate: "queuing-model operating point (Carroll–Lin closed form)",
		Program: b.Build(),
	}
}

// OccupancyChains derives the chain count that drives one op class's
// functional units at the target occupancy while staying
// dependence-bound (the regime where the closed form is exact): N
// identical chains of length chainLen keep N/(F·lat) of the class's F
// units busy, so N = round(occ·F·lat), clamped to ≥1. For latency-1
// classes keep occ modest (the CalibPresets comment explains the port-
// binding queuing loss that erodes high-occupancy latency-1 points).
func OccupancyChains(op isa.Op, width int, occ float64, chainLen int) []CalibChain {
	pm, err := sched.PortsForWidth(width)
	if err != nil {
		panic(err)
	}
	fus := float64(len(pm.Candidates(op)))
	n := int(math.Round(occ * fus * calibLat(op)))
	if n < 1 {
		n = 1
	}
	chains := make([]CalibChain, n)
	for i := range chains {
		chains[i] = CalibChain{Op: op, Len: chainLen}
	}
	return chains
}

// PredictIPC evaluates the queuing model for one calibrated kernel: the
// steady-state IPC of the chains (plus the loop-control counter and
// branch Calibrated appends) on an ideal width-wide out-of-order machine
// with the Table I functional units. The real OoO scheduler is held to
// within 10% of this number by TestCalibratedIPC.
func PredictIPC(chains []CalibChain, width int) (float64, error) {
	pm, err := sched.PortsForWidth(width)
	if err != nil {
		return 0, err
	}
	// Loop control: a serial 1-op counter chain plus the back-branch.
	all := make([]CalibChain, 0, len(chains)+1)
	all = append(all, chains...)
	all = append(all, CalibChain{Op: isa.OpIntALU, Len: 1})

	classOps := make(map[isa.Op]float64)
	classOps[isa.OpBranch] = 1
	totalOps := 1.0
	tDep := calibLat(isa.OpBranch)
	for _, c := range all {
		if !validCalibOp(c.Op) || c.Len <= 0 {
			return 0, fmt.Errorf("workload: bad calibrated chain {%v, %d}", c.Op, c.Len)
		}
		classOps[c.Op] += float64(c.Len)
		totalOps += float64(c.Len)
		if t := float64(c.Len) * calibLat(c.Op); t > tDep {
			tDep = t
		}
	}

	t := tDep
	for op, n := range classOps {
		rate := float64(len(pm.Candidates(op))) // pipelined: one μop per FU per cycle
		if !sched.Pipelined(op) {
			rate /= float64(sched.Latency(op))
		}
		if fu := n / rate; fu > t {
			t = fu
		}
	}
	if w := totalOps / float64(width); w > t {
		t = w
	}
	return totalOps / t, nil
}

// CalibPresets are the catalogued calibrated operating points, derived
// for the 8-wide Table I machine. Each names a distinct bottleneck
// regime: an integer-ALU dependence recurrence, AGU/L1-latency load
// pressure, a pipelined fp-multiplier recurrence, a mixed point
// stressing several classes at once, and the unpipelined divider.
//
// The points sit in regimes the closed form governs exactly. The one
// regime deliberately avoided is several parallel latency-1 chains near
// FU capacity: §II-A binds each μop to one port at dispatch (least
// in-flight, readiness-oblivious), so lockstep latency-1 chains lose
// port arbitrations that idle sibling ALUs — a queuing loss of 15–30%
// the bottleneck model does not (and should not) hide. OccupancyChains
// still lets experiments build such points deliberately.
var CalibPresets = map[string][]CalibChain{
	// 25% of the four int ALUs, dependence-bound: one 8-op recurrence
	// (N = occ·F·lat = 0.25·4·1 = 1).
	"calib-alu25": OccupancyChains(isa.OpIntALU, 8, 0.25, 8),
	// 50% of the four AGUs through L1-hit pointer rings: 10 single-load
	// chains (N = occ·F·lat = 0.5·4·5).
	"calib-mem50": OccupancyChains(isa.OpLoad, 8, 0.5, 1),
	// Three 2-deep fp-multiply recurrences: dependence-bound at exactly
	// IPC 1.0, 75% occupancy of the two fp multipliers.
	"calib-fpmul": {
		{Op: isa.OpFpMul, Len: 2}, {Op: isa.OpFpMul, Len: 2}, {Op: isa.OpFpMul, Len: 2},
	},
	// Mixed point: ALU, multiplier, fp multiplier and load pressure
	// together, dependence-bound on the fp-multiply chain (2×4 cycles).
	"calib-mix": {
		{Op: isa.OpIntALU, Len: 6}, {Op: isa.OpIntALU, Len: 6},
		{Op: isa.OpIntMul, Len: 2}, {Op: isa.OpFpMul, Len: 2},
		{Op: isa.OpLoad, Len: 1}, {Op: isa.OpLoad, Len: 1},
		{Op: isa.OpLoad, Len: 1}, {Op: isa.OpLoad, Len: 1},
	},
	// The unpipelined divider at full occupancy: one 18-cycle recurrence
	// with light ALU background traffic.
	"calib-div": {
		{Op: isa.OpIntDiv, Len: 1},
		{Op: isa.OpIntALU, Len: 4},
	},
}

// CalibratedByName builds one of CalibPresets.
func CalibratedByName(name string, p Params) (Workload, error) {
	chains, ok := CalibPresets[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown calibrated preset %q", name)
	}
	return Calibrated(name, chains, p), nil
}
