package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

const testOps = 20000

func opMix(t *testing.T, w Workload) map[isa.Op]int {
	t.Helper()
	tr := prog.MustExecute(w.Program, testOps)
	if len(tr.Ops) < testOps/2 {
		t.Fatalf("%s: trace too short: %d ops", w.Name, len(tr.Ops))
	}
	mix := make(map[isa.Op]int)
	for _, d := range tr.Ops {
		mix[d.Op]++
	}
	return mix
}

func TestAllKernelsExecute(t *testing.T) {
	for _, w := range All(Params{}) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tr := prog.MustExecute(w.Program, testOps)
			if len(tr.Ops) == 0 {
				t.Fatal("empty trace")
			}
			// Every op must have a sane PC and operands.
			for _, d := range tr.Ops {
				if d.PC < 0 || d.PC >= len(w.Program.Insts) {
					t.Fatalf("op %v: bad PC", d)
				}
				if d.Op.IsMem() && d.Addr == 0 {
					t.Fatalf("op %v: memory op with nil address", d)
				}
			}
		})
	}
}

func TestAllReturnsSortedUniqueNames(t *testing.T) {
	ws := All(Params{})
	if len(ws) < 9 {
		t.Fatalf("expected at least 9 kernels, got %d", len(ws))
	}
	seen := map[string]bool{}
	for i, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate kernel name %q", w.Name)
		}
		seen[w.Name] = true
		if i > 0 && ws[i-1].Name >= w.Name {
			t.Errorf("kernels not sorted: %q >= %q", ws[i-1].Name, w.Name)
		}
		if w.Kind == "" || w.Emulate == "" {
			t.Errorf("kernel %q missing metadata", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("stream", Params{})
	if err != nil || w.Name != "stream" {
		t.Fatalf("ByName(stream) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nope", Params{}); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestPointerChaseIsSerial(t *testing.T) {
	// Property: consecutive chase loads form a serial dependence chain —
	// each pointer load's base register was written by the previous
	// pointer load.
	w := PointerChase(Params{Footprint: 1 << 20})
	tr := prog.MustExecute(w.Program, testOps)
	var chaseLoads int
	for _, d := range tr.Ops {
		// The chase load is "load r1, [r1+0]": dst == base.
		if d.IsLoad() && d.Dst == d.Src1 {
			chaseLoads++
		}
	}
	if chaseLoads < 1000 {
		t.Errorf("found %d serialising loads, expected many", chaseLoads)
	}
	// And the visited addresses should be highly irregular: count distinct
	// 64-byte lines in a window; a streaming pattern would repeat lines.
	lines := map[uint64]bool{}
	for _, d := range tr.Ops {
		if d.IsLoad() && d.Dst == d.Src1 {
			lines[d.Addr>>6] = true
		}
	}
	if len(lines) < chaseLoads*9/10 {
		t.Errorf("pointer chase revisits lines: %d lines for %d loads", len(lines), chaseLoads)
	}
}

func TestStreamIsSequential(t *testing.T) {
	w := Stream(Params{Footprint: 1 << 20})
	tr := prog.MustExecute(w.Program, testOps)
	// Loads from the same static PC should advance by a constant stride
	// (the unroll factor × 8 bytes).
	lastAddr := map[int]uint64{}
	strides := map[int]uint64{}
	violations := 0
	for _, d := range tr.Ops {
		if !d.IsLoad() {
			continue
		}
		if prev, ok := lastAddr[d.PC]; ok && d.Addr > prev {
			stride := d.Addr - prev
			if s, ok := strides[d.PC]; !ok {
				strides[d.PC] = stride
			} else if s != stride {
				violations++
			}
		}
		lastAddr[d.PC] = d.Addr
	}
	if violations > 0 {
		t.Errorf("%d non-constant-stride steps in stream kernel", violations)
	}
}

func TestStoreLoadHasMemoryDependences(t *testing.T) {
	w := StoreLoad(Params{})
	tr := prog.MustExecute(w.Program, testOps)
	// Property: a large fraction of loads read an address stored by a
	// recent older store (store→load distance ≤ 8 μops).
	recent := make(map[uint64]uint64) // addr → store seq
	var deps, loads int
	for _, d := range tr.Ops {
		if d.IsStore() {
			recent[d.Addr] = d.Seq
		}
		if d.IsLoad() {
			loads++
			if s, ok := recent[d.Addr]; ok && d.Seq-s <= 8 {
				deps++
			}
		}
	}
	// Half the loads are table gathers; the other half are the
	// communication loads, which must all be M-dependent.
	if loads == 0 || deps*3 < loads {
		t.Errorf("M-dependent loads = %d of %d, want ≥ a third", deps, loads)
	}
}

func TestBranchyHasHardBranches(t *testing.T) {
	w := Branchy(Params{})
	tr := prog.MustExecute(w.Program, testOps)
	// Find the conditional branch PC with the most balanced outcome.
	taken := map[int]int{}
	total := map[int]int{}
	for _, d := range tr.Ops {
		if d.IsBranch() && d.Cond != isa.BrAlways {
			total[d.PC]++
			if d.Taken {
				taken[d.PC]++
			}
		}
	}
	// The hash-driven branch is biased ~75/25 — predictable in neither
	// direction (mispredict rate ≈ the minority fraction).
	hard := false
	for pc, n := range total {
		if n < 500 {
			continue
		}
		ratio := float64(taken[pc]) / float64(n)
		if ratio > 0.55 && ratio < 0.9 {
			hard = true
		}
	}
	if !hard {
		t.Error("branchy kernel has no biased-but-random data-dependent branch")
	}
}

func TestKernelOpMixes(t *testing.T) {
	// Coarse sanity on instruction class fractions per kernel.
	cases := []struct {
		w           Workload
		minLoadFrac float64
		maxLoadFrac float64
		wantsFP     bool
		wantsStores bool
	}{
		{PointerChase(Params{Footprint: 1 << 20}), 0.25, 0.6, false, false},
		{Stream(Params{Footprint: 1 << 20}), 0.1, 0.35, true, true},
		{Compute(Params{}), 0.1, 0.35, true, false},
		{HashJoin(Params{Footprint: 1 << 20}), 0.05, 0.3, false, true},
		{Reduction(Params{}), 0.2, 0.45, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.w.Name, func(t *testing.T) {
			mix := opMix(t, tc.w)
			var total int
			for _, n := range mix {
				total += n
			}
			loadFrac := float64(mix[isa.OpLoad]) / float64(total)
			if loadFrac < tc.minLoadFrac || loadFrac > tc.maxLoadFrac {
				t.Errorf("load fraction = %.2f, want [%.2f, %.2f]", loadFrac, tc.minLoadFrac, tc.maxLoadFrac)
			}
			fp := mix[isa.OpFpAdd] + mix[isa.OpFpMul] + mix[isa.OpFpDiv]
			if tc.wantsFP && fp == 0 {
				t.Error("expected FP μops")
			}
			if tc.wantsStores && mix[isa.OpStore] == 0 {
				t.Error("expected stores")
			}
		})
	}
}

func TestMixedHasPhases(t *testing.T) {
	w := Mixed(Params{Footprint: 1 << 20})
	tr := prog.MustExecute(w.Program, 60000)
	// Detect at least two distinct phases: a window dominated by loads+stores
	// and a window with no memory ops at all (the FP burst).
	const win = 256
	var sawMemPhase, sawComputePhase bool
	for i := 0; i+win <= len(tr.Ops); i += win {
		var mem int
		for _, d := range tr.Ops[i : i+win] {
			if d.Op.IsMem() {
				mem++
			}
		}
		if mem >= win/4 {
			sawMemPhase = true
		}
		if mem == 0 {
			sawComputePhase = true
		}
	}
	if !sawMemPhase || !sawComputePhase {
		t.Errorf("phases not detected: mem=%v compute=%v", sawMemPhase, sawComputePhase)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Footprint != DefaultParams.Footprint || p.Iterations != DefaultParams.Iterations {
		t.Errorf("withDefaults = %+v", p)
	}
	q := Params{Footprint: 123, Iterations: 7}.withDefaults()
	if q.Footprint != 123 || q.Iterations != 7 {
		t.Errorf("withDefaults clobbered explicit values: %+v", q)
	}
}
