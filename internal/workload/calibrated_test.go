package workload

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// TestCalibratedPresetsBuild: every catalogued operating point builds a
// valid program, is reachable through ByName (via Extras), and executes
// under the functional interpreter without halting early.
func TestCalibratedPresetsBuild(t *testing.T) {
	for name, chains := range CalibPresets {
		w, err := CalibratedByName(name, Params{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name != name || w.Kind != "calibrated" || w.Program == nil {
			t.Errorf("%s: malformed workload %+v", name, w)
		}
		if _, err := ByName(name, Params{}); err != nil {
			t.Errorf("%s: not reachable via ByName: %v", name, err)
		}
		tr := prog.MustExecute(w.Program, 5_000)
		if len(tr.Ops) != 5_000 {
			t.Errorf("%s: interpreter produced %d ops, want the full 5000 budget", name, len(tr.Ops))
		}
		if _, err := PredictIPC(chains, 8); err != nil {
			t.Errorf("%s: prediction rejected the preset: %v", name, err)
		}
	}
	if _, err := CalibratedByName("calib-nope", Params{}); err == nil {
		t.Error("unknown preset name accepted")
	}
}

// TestPredictIPCClosedForm pins the model against hand-computed points of
// the T = max(dep, FU, width) formula (loop control — one counter op and
// the back-branch — is accounted for automatically).
func TestPredictIPCClosedForm(t *testing.T) {
	cases := []struct {
		name   string
		chains []CalibChain
		width  int
		want   float64
	}{
		// One 8-op ALU recurrence: T = 8 (dep), N = 8+2 → IPC 1.25.
		{"alu-dep", []CalibChain{{isa.OpIntALU, 8}}, 8, 1.25},
		// One divider recurrence + 4 ALU background ops: the unpipelined
		// 18-cycle divider dominates, N = 1+4+2 = 7 → 7/18.
		{"div", []CalibChain{{isa.OpIntDiv, 1}, {isa.OpIntALU, 4}}, 8, 7.0 / 18.0},
		// Three 2-deep fp-mul recurrences: T = 2·4 = 8, N = 8 → IPC 1.
		{"fpmul", []CalibChain{{isa.OpFpMul, 2}, {isa.OpFpMul, 2}, {isa.OpFpMul, 2}}, 8, 1.0},
		// Ten single-load chains: dep = 5, FU = 10/4 AGUs, width = 12/8;
		// T = 5, N = 12 → IPC 2.4.
		{"mem", OccupancyChains(isa.OpLoad, 8, 0.5, 1), 8, 2.4},
		// FU-bound on a pipelined unit: ten 1-op fp-mul chains on the two
		// fp multipliers. FU = 10/2 = 5 > dep = 4; N = 12 → IPC 2.4.
		{"fpmul-fu", OccupancyChains(isa.OpFpMul, 8, 1.25, 1), 8, 2.4},
		// FU-bound on the unpipelined divider: two independent divide
		// recurrences share the single divider at rate 1/18, so
		// FU = 2·18 = 36 > dep = 18; N = 4 → IPC 1/9.
		{"div-fu", []CalibChain{{isa.OpIntDiv, 1}, {isa.OpIntDiv, 1}}, 8, 4.0 / 36.0},
	}
	for _, c := range cases {
		got, err := PredictIPC(c.chains, c.width)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: PredictIPC = %v, want %v", c.name, got, c.want)
		}
	}
	// Chains must be chainable op classes with positive lengths.
	if _, err := PredictIPC([]CalibChain{{isa.OpStore, 1}}, 8); err == nil {
		t.Error("store chain accepted")
	}
	if _, err := PredictIPC([]CalibChain{{isa.OpIntALU, 0}}, 8); err == nil {
		t.Error("zero-length chain accepted")
	}
}

// TestOccupancyChains: the derived chain count matches N = round(occ·F·lat)
// for the 8-wide Table I machine, clamped to at least one chain.
func TestOccupancyChains(t *testing.T) {
	// Loads: 4 AGUs × 5-cycle effective hop latency × 50% → 10 chains.
	if n := len(OccupancyChains(isa.OpLoad, 8, 0.5, 1)); n != 10 {
		t.Errorf("load chains = %d, want 10", n)
	}
	// Int ALU: 4 units × 1 cycle × 25% → 1 chain.
	if n := len(OccupancyChains(isa.OpIntALU, 8, 0.25, 8)); n != 1 {
		t.Errorf("alu chains = %d, want 1", n)
	}
	// Clamp: vanishing occupancy still yields one chain.
	chains := OccupancyChains(isa.OpFpMul, 8, 0.001, 2)
	if len(chains) != 1 || chains[0].Op != isa.OpFpMul || chains[0].Len != 2 {
		t.Errorf("clamped chains = %+v", chains)
	}
}
