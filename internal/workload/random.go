package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// RandomParams shapes a randomly generated program (see Random).
type RandomParams struct {
	Seed uint64
	// Blocks is the number of basic blocks to generate (default 24).
	Blocks int
	// BlockLen is the maximum μops per block (default 12).
	BlockLen int
	// MemRegion is the scratch memory size in bytes (default 64 KiB).
	MemRegion int64
}

func (p RandomParams) withDefaults() RandomParams {
	if p.Blocks == 0 {
		p.Blocks = 24
	}
	if p.BlockLen == 0 {
		p.BlockLen = 12
	}
	if p.MemRegion == 0 {
		p.MemRegion = 64 << 10
	}
	return p
}

// Random generates a structurally random but always-terminating program:
// a chain of basic blocks with random arithmetic over a rotating register
// window, random loads/stores into a scratch region, and data-dependent
// forward branches. A decrementing fuel counter drives one backward loop so
// the dynamic stream is long enough to exercise every pipeline path.
//
// Random programs are the fuzzing substrate for the cross-scheduler
// equivalence tests: every scheduler must commit the identical μop stream.
func Random(p RandomParams) Workload {
	p = p.withDefaults()
	b := prog.NewBuilder("random")
	r := lcg(p.Seed | 1)

	base := int64(heapBase)
	words := p.MemRegion / 8
	for i := int64(0); i < words; i += 7 {
		b.SetMem(uint64(base+i*8), int64(r.next()))
	}

	// Register roles: r1 fuel, r2 scratch base, r3 mask, r4.. data pool.
	fuel, memBase, mask := isa.R(1), isa.R(2), isa.R(3)
	pool := make([]isa.Reg, 0, 20)
	for i := 4; i < 24; i++ {
		pool = append(pool, isa.R(i))
	}
	fpool := make([]isa.Reg, 0, 8)
	for i := 0; i < 8; i++ {
		fpool = append(fpool, isa.F(i))
	}
	pick := func(regs []isa.Reg) isa.Reg { return regs[r.next()%uint64(len(regs))] }

	b.MovImm(fuel, 1<<40)
	b.MovImm(memBase, base)
	b.MovImm(mask, (words-1)*8)
	for _, reg := range pool {
		b.MovImm(reg, int64(r.next()%1000))
	}

	top := b.NewLabel()
	b.Bind(top)
	addr := isa.R(24)
	for blk := 0; blk < p.Blocks; blk++ {
		n := 3 + int(r.next()%uint64(p.BlockLen-2))
		skip := b.NewLabel()
		for i := 0; i < n; i++ {
			switch r.next() % 10 {
			case 0, 1, 2: // int ALU
				fns := []isa.Fn{isa.FnAdd, isa.FnSub, isa.FnXor, isa.FnAnd, isa.FnOr, isa.FnMix}
				b.ALU(fns[r.next()%uint64(len(fns))], pick(pool), pick(pool), pick(pool), int64(r.next()%64))
			case 3: // multiply
				b.IntMul(pick(pool), pick(pool), pick(pool))
			case 4: // fp chain links
				if r.next()%2 == 0 {
					b.FpAdd(pick(fpool), pick(fpool), pick(fpool))
				} else {
					b.FpMul(pick(fpool), pick(fpool), pick(fpool))
				}
			case 5, 6: // load
				b.ALU(isa.FnAnd, addr, pick(pool), mask, 0)
				b.Add(addr, addr, memBase)
				b.Load(pick(pool), addr, 0)
			case 7: // store
				b.ALU(isa.FnAnd, addr, pick(pool), mask, 0)
				b.Add(addr, addr, memBase)
				b.Store(pick(pool), addr, 0)
			case 8: // data-dependent forward branch over the block tail
				b.ALU(isa.FnSlt, isa.R(25), pick(pool), pick(pool), 0)
				b.Branch(isa.BrEQZ, isa.R(25), skip)
			case 9: // occasional divide (unpipelined FU path)
				b.IntDiv(pick(pool), pick(pool), pick(pool))
			}
		}
		b.Bind(skip)
	}
	b.AddImm(fuel, fuel, -1)
	b.Branch(isa.BrNEZ, fuel, top)

	return Workload{
		Name:    "random",
		Kind:    "fuzz",
		Emulate: "randomised program for scheduler equivalence fuzzing",
		Program: b.Build(),
	}
}
