package workload

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Extras returns additional kernels that are available by name (ByName)
// but intentionally excluded from All(): the figure calibration in
// EXPERIMENTS.md is recorded against the standard suite, and these exist
// for exploration and for exercising behaviours the suite does not
// emphasise (data-dependent tree descent, shifting strides, butterfly
// permutations).
func Extras(p Params) []Workload {
	ws := []Workload{
		BSTSearch(p),
		ShellSortPass(p),
		Butterfly(p),
	}
	// The calibrated operating points (calibrated.go): queuing-model-
	// derived kernels whose steady-state IPC has a closed-form prediction.
	names := make([]string, 0, len(CalibPresets))
	for name := range CalibPresets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws = append(ws, Calibrated(name, CalibPresets[name], p))
	}
	return ws
}

// BSTSearch emulates search-tree descent (mcf's spanning-tree walks,
// database index probes): a chain of dependent loads whose direction is a
// data-dependent branch at every level. It mixes pointer-chase-like serial
// loads with leela-like hard branches.
func BSTSearch(p Params) Workload {
	p = p.withDefaults()
	nodes := p.Footprint / 32
	if nodes < 64 {
		nodes = 64
	}
	// Depth of the balanced implicit tree.
	depth := 0
	for n := int64(1); n < nodes; n *= 2 {
		depth++
	}
	b := prog.NewBuilder("bst-search")
	base := int64(heapBase)
	// Node i occupies 32 bytes: key, left index, right index, payload.
	r := lcg(31)
	for i := int64(0); i < nodes; i++ {
		addr := uint64(base + i*32)
		b.SetMem(addr, int64(r.next()%100000)) // key
		l, rr := 2*i+1, 2*i+2
		if l >= nodes {
			l = 0 // leaves wrap to the root (keeps the walk going)
		}
		if rr >= nodes {
			rr = 0
		}
		b.SetMem(addr+8, base+l*32)
		b.SetMem(addr+16, base+rr*32)
		b.SetMem(addr+24, int64(i))
	}

	node, key, k2, acc, i := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	probe, diff := isa.R(6), isa.R(7)
	b.MovImm(node, base)
	b.MovImm(i, p.Iterations)
	top := b.NewLabel()
	left := b.NewLabel()
	cont := b.NewLabel()
	b.Bind(top)
	b.Mix(probe, probe, i, 23) // pseudo-random probe key
	b.Load(key, node, 0)
	b.Load(k2, node, 24)
	b.Add(acc, acc, k2)
	b.Sub(diff, key, probe)
	b.Branch(isa.BrLTZ, diff, left)
	b.Load(node, node, 16) // descend right
	b.Jmp(cont)
	b.Bind(left)
	b.Load(node, node, 8) // descend left
	b.Bind(cont)
	b.AddImm(i, i, -1)
	b.Branch(isa.BrNEZ, i, top)
	return Workload{
		Name:    "bst-search",
		Kind:    "memory-bound",
		Emulate: "index-probe/tree-descent with data-dependent branching",
		Program: b.Build(),
	}
}

// ShellSortPass emulates in-place sorting passes (exchange2's permutation
// work): gap-strided compare-and-swap sweeps with data-dependent branches
// and store→load reuse at shrinking strides.
func ShellSortPass(p Params) Workload {
	p = p.withDefaults()
	elems := int64(32 << 10 / 8) // 32 KiB working set, L1-straddling
	b := prog.NewBuilder("shellsort-pass")
	base := int64(heapBase)
	r := lcg(61)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(base+i*8), int64(r.next()%1_000_000))
	}

	gap, ptr, i, n := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	a, c, gap8 := isa.R(5), isa.R(6), isa.R(7)
	outer := b.NewLabel()
	b.Bind(outer)
	// Three fixed gaps per outer round: 64, 8, 1 elements.
	for _, g := range []int64{64, 8, 1} {
		b.MovImm(gap, g)
		b.MovImm(gap8, g*8)
		b.MovImm(ptr, base)
		b.MovImm(i, 0)
		b.MovImm(n, elems-g)
		pass := b.NewLabel()
		noswap := b.NewLabel()
		b.Bind(pass)
		b.Load(a, ptr, 0)
		b.Load(c, ptr, g*8)
		b.Sub(isa.R(8), a, c)
		b.Branch(isa.BrLTZ, isa.R(8), noswap) // already ordered
		b.Store(c, ptr, 0)                    // swap
		b.Store(a, ptr, g*8)
		b.Bind(noswap)
		b.AddImm(ptr, ptr, 8)
		b.AddImm(i, i, 1)
		b.Sub(isa.R(9), i, n)
		b.Branch(isa.BrNEZ, isa.R(9), pass)
	}
	b.Jmp(outer)
	return Workload{
		Name:    "shellsort-pass",
		Kind:    "mixed",
		Emulate: "exchange2-like compare-and-swap sweeps",
		Program: b.Build(),
	}
}

// Butterfly emulates FFT-style butterfly passes: power-of-two strided
// paired accesses with an FP multiply-accumulate core — wide, shallow
// dependence structure over a cache-straddling footprint.
func Butterfly(p Params) Workload {
	p = p.withDefaults()
	elems := int64(64 << 10 / 8) // 64 KiB, L2-resident
	b := prog.NewBuilder("butterfly")
	base := int64(heapBase)
	r := lcg(71)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(base+i*8), int64(r.next()%4096))
	}

	ptr, i, n := isa.R(1), isa.R(2), isa.R(3)
	x, y, w, t := isa.F(1), isa.F(2), isa.F(3), isa.F(4)
	outer := b.NewLabel()
	b.Bind(outer)
	for _, half := range []int64{8, 64, 512} { // three butterfly stages
		b.MovImm(ptr, base)
		b.MovImm(i, 0)
		b.MovImm(n, elems/2/half)
		b.MovImm(w, 3)
		stage := b.NewLabel()
		b.Bind(stage)
		for u := int64(0); u < 2; u++ { // unroll two butterflies
			off := u * 8
			b.Load(x, ptr, off)
			b.Load(y, ptr, off+half*8)
			b.FpMul(t, y, w)
			b.FpAdd(y, x, t)
			b.FpSub(x, x, t)
			b.Store(y, ptr, off)
			b.Store(x, ptr, off+half*8)
		}
		b.AddImm(ptr, ptr, 16)
		b.AddImm(i, i, 1)
		b.Sub(isa.R(4), i, n)
		b.Branch(isa.BrNEZ, isa.R(4), stage)
	}
	b.Jmp(outer)
	return Workload{
		Name:    "butterfly",
		Kind:    "compute-bound",
		Emulate: "FFT-like strided butterflies with FP MAC cores",
		Program: b.Build(),
	}
}
