// Package workload provides the synthetic benchmark kernels used in place of
// the paper's SPEC CPU2006/2017 SimPoint regions.
//
// Each kernel is a μop program written for the internal/prog register
// machine and is parameterised to occupy a distinct point in the workload
// property space that drives the paper's figures: ready-at-dispatch
// fraction, dependence-chain shape, cache-miss behaviour, and branch
// predictability. The mapping from kernel to the SPEC behaviour it stands in
// for is documented on each constructor and in DESIGN.md.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Workload couples a program with a human-readable description of the SPEC
// behaviour it emulates.
type Workload struct {
	Name    string
	Kind    string // "memory-bound", "compute-bound", "branchy", "mixed"
	Emulate string // which SPEC application's behaviour this stands in for
	Program *prog.Program
}

// Params tunes kernel sizes. The zero value is replaced by DefaultParams.
type Params struct {
	// Footprint is the approximate data footprint in bytes for
	// memory-bound kernels. Larger footprints overflow successive cache
	// levels. Default 8 MiB (overflows the 1 MiB L3).
	Footprint int64
	// Iterations bounds loop trip counts inside a kernel; the dynamic
	// stream is normally truncated by the simulator's μop budget anyway.
	Iterations int64
}

// DefaultParams is used when a Params field is zero.
var DefaultParams = Params{Footprint: 8 << 20, Iterations: 1 << 30}

func (p Params) withDefaults() Params {
	if p.Footprint == 0 {
		p.Footprint = DefaultParams.Footprint
	}
	if p.Iterations == 0 {
		p.Iterations = DefaultParams.Iterations
	}
	return p
}

// lcg is a deterministic pseudo-random generator for kernel data layout.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l >> 16)
}

// heapBase is where kernel data structures start in the address space.
// Kept away from 0 so nil-ish addresses are never valid data.
const heapBase = 1 << 20

// PointerChase emulates mcf/omnetpp: a serial linked-list traversal over a
// footprint far larger than the LLC. Nearly every load misses and each load
// feeds the next (dependence chains of length 1 per node, zero ILP),
// so performance is dominated by memory latency tolerance.
func PointerChase(p Params) Workload {
	p = p.withDefaults()
	nodes := p.Footprint / 64
	if nodes < 16 {
		nodes = 16
	}
	b := prog.NewBuilder("pointer-chase")

	// Build a random cyclic permutation of node indices so the chase
	// visits every node once per cycle with no spatial locality.
	perm := make([]int64, nodes)
	for i := range perm {
		perm[i] = int64(i)
	}
	r := lcg(12345)
	for i := len(perm) - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	// node i at heapBase + i*64; word 0 holds address of next node.
	addrOf := func(i int64) int64 { return heapBase + i*64 }
	for i := int64(0); i < nodes; i++ {
		next := perm[i]
		b.SetMem(uint64(addrOf(i)), addrOf(next))
		b.SetMem(uint64(addrOf(i))+8, int64(i)*3+1) // payload
	}

	ptr, acc, tmp, cnt := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	b.MovImm(ptr, addrOf(0))
	b.MovImm(acc, 0)
	b.MovImm(cnt, p.Iterations)
	top := b.NewLabel()
	b.Bind(top)
	b.Load(tmp, ptr, 8)  // payload
	b.Add(acc, acc, tmp) // accumulate
	b.Load(ptr, ptr, 0)  // ptr = ptr->next  (serialising load)
	b.AddImm(cnt, cnt, -1)
	b.Branch(isa.BrNEZ, cnt, top)
	return Workload{
		Name:    "pointer-chase",
		Kind:    "memory-bound",
		Emulate: "mcf/omnetpp-like serial pointer chasing",
		Program: b.Build(),
	}
}

// Stream emulates lbm/libquantum: long unit-stride array sweeps
// (a[i] = b[i]*k + c[i]) with abundant ready-at-dispatch μops, perfect
// branch prediction and prefetcher-friendly access patterns.
func Stream(p Params) Workload {
	p = p.withDefaults()
	elems := p.Footprint / (3 * 8)
	if elems < 64 {
		elems = 64
	}
	b := prog.NewBuilder("stream")
	baseA := int64(heapBase)
	baseB := baseA + elems*8
	baseC := baseB + elems*8
	r := lcg(99)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(baseB+i*8), int64(r.next()%1000))
		b.SetMem(uint64(baseC+i*8), int64(r.next()%1000))
	}

	pa, pb, pc := isa.R(1), isa.R(2), isa.R(3)
	i, n := isa.R(4), isa.R(5)
	k := isa.F(16)
	const unroll = 4 // larger bodies mimic compiler unrolling of hot loops
	outer := b.NewLabel()
	b.Bind(outer)
	b.MovImm(pa, baseA)
	b.MovImm(pb, baseB)
	b.MovImm(pc, baseC)
	b.MovImm(i, 0)
	b.MovImm(n, elems/unroll)
	b.MovImm(k, 3)
	top := b.NewLabel()
	b.Bind(top)
	for u := 0; u < unroll; u++ {
		va, vb, vc := isa.F(3*u), isa.F(3*u+1), isa.F(3*u+2)
		off := int64(8 * u)
		b.Load(vb, pb, off)
		b.Load(vc, pc, off)
		b.FpMul(va, vb, k)
		b.FpAdd(va, va, vc)
		b.Store(va, pa, off)
	}
	b.AddImm(pa, pa, 8*unroll)
	b.AddImm(pb, pb, 8*unroll)
	b.AddImm(pc, pc, 8*unroll)
	b.AddImm(i, i, 1)
	b.Sub(isa.R(6), i, n)
	b.Branch(isa.BrNEZ, isa.R(6), top)
	b.Jmp(outer) // sweep again forever; simulator truncates
	return Workload{
		Name:    "stream",
		Kind:    "memory-bound",
		Emulate: "lbm/libquantum-like streaming sweeps",
		Program: b.Build(),
	}
}

// Compute emulates namd/povray: dense floating-point arithmetic with
// several independent medium-length dependence chains per iteration and a
// tiny, cache-resident data footprint.
func Compute(p Params) Workload {
	p = p.withDefaults()
	b := prog.NewBuilder("compute")
	const elems = 512 // 4 KiB, L1-resident
	base := int64(heapBase)
	r := lcg(7)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(base+i*8), int64(r.next()%4096+1))
	}
	ptr, i, n := isa.R(1), isa.R(2), isa.R(3)
	x, y, z, w := isa.F(1), isa.F(2), isa.F(3), isa.F(4)
	a0, a1, a2, a3 := isa.F(5), isa.F(6), isa.F(7), isa.F(8)
	outer := b.NewLabel()
	b.Bind(outer)
	b.MovImm(ptr, base)
	b.MovImm(i, 0)
	b.MovImm(n, elems/4)
	b.MovImm(a0, 1)
	b.MovImm(a1, 2)
	b.MovImm(a2, 3)
	b.MovImm(a3, 5)
	top := b.NewLabel()
	b.Bind(top)
	b.Load(x, ptr, 0)
	b.Load(y, ptr, 8)
	b.Load(z, ptr, 16)
	b.Load(w, ptr, 24)
	// Four short reduction trees per iteration (mul, mul → add), each
	// feeding an accumulator with a single-op link: dependence chains are
	// short-lived, per the paper's observation that "most of the time
	// dynamic instructions are derived from a bunch of short-length DCs".
	t0, t1, t2, t3 := isa.F(9), isa.F(10), isa.F(11), isa.F(12)
	u0, u1, u2, u3 := isa.F(13), isa.F(14), isa.F(15), isa.F(16)
	b.FpMul(t0, x, y)
	b.FpMul(t1, z, w)
	b.FpAdd(u0, t0, t1)
	b.FpAdd(a0, a0, u0)
	b.FpAdd(t2, x, z)
	b.FpAdd(t3, y, w)
	b.FpMul(u1, t2, t3)
	b.FpAdd(a1, a1, u1)
	b.FpMul(t0, x, w)
	b.FpMul(t1, y, z)
	b.FpAdd(u2, t0, t1)
	b.FpAdd(a2, a2, u2)
	b.FpAdd(t2, x, y)
	b.FpAdd(t3, z, w)
	b.FpMul(u3, t2, t3)
	b.FpAdd(a3, a3, u3)
	b.AddImm(ptr, ptr, 32)
	b.AddImm(i, i, 1)
	b.Sub(isa.R(4), i, n)
	b.Branch(isa.BrNEZ, isa.R(4), top)
	b.Jmp(outer)
	return Workload{
		Name:    "compute",
		Kind:    "compute-bound",
		Emulate: "namd/povray-like dense FP chains",
		Program: b.Build(),
	}
}

// Branchy emulates leela/gcc-like control-heavy code: data-dependent
// branches derived from a hash of loop state, small working set,
// short dependence chains with frequent chain splits at the condition.
func Branchy(p Params) Workload {
	p = p.withDefaults()
	b := prog.NewBuilder("branchy")
	const elems = 2048 // 16 KiB, L1-resident
	base := int64(heapBase)
	r := lcg(31337)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(base+i*8), int64(r.next()))
	}
	ptr, i, h, v, acc, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	one := isa.R(7)
	outer := b.NewLabel()
	b.Bind(outer)
	b.MovImm(ptr, base)
	b.MovImm(i, elems)
	b.MovImm(h, 0x5bd1e995)
	b.MovImm(one, 3)
	top := b.NewLabel()
	thenL := b.NewLabel()
	join := b.NewLabel()
	b.Bind(top)
	b.Load(v, ptr, 0)
	b.Mix(h, h, v, 17)             // data-dependent hash
	b.ALU(isa.FnAnd, t, h, one, 0) // t = h & 3: 25/75, hard to predict
	b.Branch(isa.BrNEZ, t, thenL)
	// else arm: two cheap ops
	b.AddImm(acc, acc, 1)
	b.ALU(isa.FnXor, acc, acc, v, 0)
	b.Jmp(join)
	b.Bind(thenL)
	// then arm: slightly longer chain
	b.ALU(isa.FnOr, acc, acc, one, 0)
	b.Add(acc, acc, v)
	b.AddImm(acc, acc, 3)
	b.Bind(join)
	b.AddImm(ptr, ptr, 8)
	b.AddImm(i, i, -1)
	b.Branch(isa.BrNEZ, i, top)
	b.Jmp(outer)
	return Workload{
		Name:    "branchy",
		Kind:    "branchy",
		Emulate: "leela/gcc-like data-dependent control flow",
		Program: b.Build(),
	}
}

// HashJoin emulates xalancbmk/gobmk hash-table probes: random-index gathers
// over an L2/L3-sized table followed by dependent arithmetic and occasional
// stores, creating irregular misses with moderate MLP.
func HashJoin(p Params) Workload {
	p = p.withDefaults()
	tableBytes := p.Footprint / 4
	if tableBytes < 4096 {
		tableBytes = 4096
	}
	slots := tableBytes / 8
	b := prog.NewBuilder("hash-join")
	base := int64(heapBase)
	r := lcg(555)
	for i := int64(0); i < slots; i++ {
		b.SetMem(uint64(base+i*8), int64(r.next()%100000))
	}
	h, idx, addr, v, acc, i := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	mask, eight, base8 := isa.R(7), isa.R(8), isa.R(9)
	smask, sbase, saddr := isa.R(10), isa.R(11), isa.R(12)
	// Match results go to a small L1-resident scratch buffer so the kernel
	// stays read-mostly on the big table (a store-heavy random-update
	// kernel degenerates into a DRAM-bandwidth test for every core).
	const scratchSlots = 512
	scratchBase := base + slots*8
	b.MovImm(h, 0x12345)
	b.MovImm(acc, 0)
	b.MovImm(mask, slots-1) // slots is a power of two
	b.MovImm(eight, 8)
	b.MovImm(base8, base)
	b.MovImm(smask, (scratchSlots-1)*8)
	b.MovImm(sbase, scratchBase)
	b.MovImm(i, p.Iterations)
	top := b.NewLabel()
	b.Bind(top)
	// Probe keys derive from the loop counter only, so consecutive probes
	// are independent: an out-of-order window overlaps many misses (MLP)
	// where a stall-on-use core serialises them.
	b.Mix(h, h, i, 41)
	b.ALU(isa.FnAnd, idx, h, mask, 0)
	b.IntMul(addr, idx, eight)
	b.Add(addr, addr, base8)
	b.Load(v, addr, 0) // random gather
	b.Add(acc, acc, v)
	b.ALU(isa.FnXor, v, v, h, 0)
	b.ALU(isa.FnAnd, saddr, addr, smask, 0)
	b.Add(saddr, saddr, sbase)
	b.Store(v, saddr, 0) // spill the match into the scratch buffer
	b.AddImm(i, i, -1)
	b.Branch(isa.BrNEZ, i, top)
	return Workload{
		Name:    "hash-join",
		Kind:    "memory-bound",
		Emulate: "xalancbmk/gobmk-like random hash probes",
		Program: b.Build(),
	}
}

// Stencil emulates cactuBSSN/bwaves: a 1-D three-point stencil with
// neighbouring reuse — mostly cache-friendly with periodic cold misses at
// line boundaries and wide, shallow dependence structure.
func Stencil(p Params) Workload {
	p = p.withDefaults()
	elems := p.Footprint / (2 * 8)
	if elems < 64 {
		elems = 64
	}
	b := prog.NewBuilder("stencil")
	src := int64(heapBase)
	dst := src + elems*8
	r := lcg(2024)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(src+i*8), int64(r.next()%256))
	}
	ps, pd, i, n := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	const unroll = 4
	outer := b.NewLabel()
	b.Bind(outer)
	b.MovImm(ps, src+8)
	b.MovImm(pd, dst+8)
	b.MovImm(i, 1)
	b.MovImm(n, (elems-1)/unroll)
	top := b.NewLabel()
	b.Bind(top)
	for u := 0; u < unroll; u++ {
		l, c, rt, s := isa.F(4*u), isa.F(4*u+1), isa.F(4*u+2), isa.F(4*u+3)
		off := int64(8 * u)
		b.Load(l, ps, off-8)
		b.Load(c, ps, off)
		b.Load(rt, ps, off+8)
		b.FpAdd(s, l, c)
		b.FpAdd(s, s, rt)
		b.FpMul(s, s, c)
		b.Store(s, pd, off)
	}
	b.AddImm(ps, ps, 8*unroll)
	b.AddImm(pd, pd, 8*unroll)
	b.AddImm(i, i, 1)
	b.Sub(isa.R(5), i, n)
	b.Branch(isa.BrNEZ, isa.R(5), top)
	b.Jmp(outer)
	return Workload{
		Name:    "stencil",
		Kind:    "memory-bound",
		Emulate: "cactuBSSN/bwaves-like stencil sweeps",
		Program: b.Build(),
	}
}

// Reduction emulates deepsjeng-like accumulation patterns: parallel partial
// sums that periodically merge (chain merges of Figure 1), with an
// L2-resident footprint.
func Reduction(p Params) Workload {
	p = p.withDefaults()
	const elems = 16 << 10 // 128 KiB, L2-resident
	b := prog.NewBuilder("reduction")
	base := int64(heapBase)
	r := lcg(4242)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(base+i*8), int64(r.next()%1024))
	}
	ptr, i, n := isa.R(1), isa.R(2), isa.R(3)
	s0, s1, s2, s3 := isa.R(4), isa.R(5), isa.R(6), isa.R(7)
	v0, v1, v2, v3 := isa.R(8), isa.R(9), isa.R(10), isa.R(11)
	outer := b.NewLabel()
	b.Bind(outer)
	b.MovImm(ptr, base)
	b.MovImm(i, 0)
	b.MovImm(n, elems/8)
	b.MovImm(s0, 0)
	b.MovImm(s1, 0)
	b.MovImm(s2, 0)
	b.MovImm(s3, 0)
	top := b.NewLabel()
	b.Bind(top)
	b.Load(v0, ptr, 0)
	b.Load(v1, ptr, 8)
	b.Load(v2, ptr, 16)
	b.Load(v3, ptr, 24)
	b.Add(s0, s0, v0)
	b.Add(s1, s1, v1)
	b.Add(s2, s2, v2)
	b.Add(s3, s3, v3)
	b.Load(v0, ptr, 32)
	b.Load(v1, ptr, 40)
	b.Load(v2, ptr, 48)
	b.Load(v3, ptr, 56)
	b.Add(s0, s0, v0)
	b.Add(s1, s1, v1)
	b.Add(s2, s2, v2)
	b.Add(s3, s3, v3)
	b.AddImm(ptr, ptr, 64)
	b.AddImm(i, i, 1)
	b.Sub(isa.R(12), i, n)
	b.Branch(isa.BrNEZ, isa.R(12), top)
	// Merge the four chains (chain merge points).
	b.Add(s0, s0, s1)
	b.Add(s2, s2, s3)
	b.Add(s0, s0, s2)
	b.Jmp(outer)
	return Workload{
		Name:    "reduction",
		Kind:    "compute-bound",
		Emulate: "deepsjeng-like parallel reductions with merges",
		Program: b.Build(),
	}
}

// StoreLoad emulates exchange2/perlbench-like code with frequent
// store-to-load communication through memory via different registers —
// the memory-order-violation trainer for the MDP and the workload where
// M-dependence-aware steering matters most.
func StoreLoad(p Params) Workload {
	p = p.withDefaults()
	const elems = 1024 // 8 KiB scratch, L1-resident
	b := prog.NewBuilder("store-load")
	base := int64(heapBase)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(base+i*8), i)
	}
	// Several independent store→load communication streams. Each stream
	// gathers from an LLC-overflowing table (long latency), stores the
	// result into its communication slot and immediately reloads it
	// through a different register. The producer store lingers un-issued
	// while the gather is outstanding, so:
	//   - without MDP, the consumer load races ahead and violates
	//     (flush + replay) — the store-set predictor's premise;
	//   - with MDP but R-dependence-only steering, each load blocks a
	//     P-IQ of its own for the gather's whole latency;
	//   - with M-dependence-aware steering the load follows its store
	//     into one P-IQ, halving queue pressure (§III-B).
	const streams = 6
	tableBytes := p.Footprint / 2
	tslots := tableBytes / 8
	table := base + int64(elems)*8
	r := lcg(4242)
	for i := int64(0); i < tslots; i++ {
		b.SetMem(uint64(table+i*8), int64(r.next()%9999))
	}
	i, mask, eight, tbase := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	b.MovImm(mask, tslots-1)
	b.MovImm(eight, 8)
	b.MovImm(tbase, table)
	stride := int64(elems / streams * 8)
	outer := b.NewLabel()
	b.Bind(outer)
	for s := 0; s < streams; s++ {
		b.MovImm(isa.R(5+s), base+int64(s)*stride)  // write pointer
		b.MovImm(isa.R(11+s), base+int64(s)*stride) // read pointer (same addresses)
	}
	b.MovImm(i, elems/streams-8)
	top := b.NewLabel()
	b.Bind(top)
	for s := 0; s < streams; s++ {
		wp, rp := isa.R(5+s), isa.R(11+s)
		h, addr, gv := isa.R(17+s), isa.R(23+s), isa.R(29+s)
		v, acc := isa.R(35+s), isa.R(41+s)
		b.Mix(h, h, i, int64(3+s))
		b.ALU(isa.FnAnd, addr, h, mask, 0)
		b.IntMul(addr, addr, eight)
		b.Add(addr, addr, tbase)
		b.Load(gv, addr, 0) // long-latency gather feeding the store
		b.Store(gv, wp, 0)  // producer store (lingers until the gather returns)
		b.Load(v, rp, 0)    // M-dependent consumer load (same address)
		b.Add(acc, acc, v)
		b.AddImm(wp, wp, 8)
		b.AddImm(rp, rp, 8)
	}
	b.AddImm(i, i, -1)
	b.Branch(isa.BrNEZ, i, top)
	b.Jmp(outer)
	return Workload{
		Name:    "store-load",
		Kind:    "mixed",
		Emulate: "exchange2/perlbench-like store→load communication",
		Program: b.Build(),
	}
}

// SparseTrees emulates omnetpp/gcc pointer-rich data processing: each
// iteration launches several independent gathers over an L3-overflowing
// table, each feeding a short dependent tree (2–3 ops). This is the
// paper's central workload premise — "most of the time dynamic
// instructions are derived from a bunch of short-length DCs" that stall on
// long-latency loads — and is where clustered schedulers need many P-IQs
// (or P-IQ sharing) to track all the in-flight chains.
func SparseTrees(p Params) Workload {
	p = p.withDefaults()
	tableBytes := p.Footprint / 2
	if tableBytes < 4096 {
		tableBytes = 4096
	}
	slots := tableBytes / 8
	b := prog.NewBuilder("sparse-trees")
	base := int64(heapBase)
	r := lcg(909)
	for i := int64(0); i < slots; i++ {
		b.SetMem(uint64(base+i*8), int64(r.next()%65536))
	}
	const gathers = 4
	i, mask, eight, base8 := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	b.MovImm(mask, slots-1)
	b.MovImm(eight, 8)
	b.MovImm(base8, base)
	b.MovImm(i, p.Iterations)
	top := b.NewLabel()
	b.Bind(top)
	for g := 0; g < gathers; g++ {
		h := isa.R(5 + g)
		idx := isa.R(9 + g)
		addr := isa.R(13 + g)
		v := isa.R(17 + g)
		t := isa.R(21 + g)
		acc := isa.R(25 + g)
		// Independent probe address from the loop counter.
		b.Mix(h, h, i, int64(7+g))
		b.ALU(isa.FnAnd, idx, h, mask, 0)
		b.IntMul(addr, idx, eight)
		b.Add(addr, addr, base8)
		b.Load(v, addr, 0) // long-latency gather
		// Short dependent tree: two ops hanging off the load.
		b.ALU(isa.FnXor, t, v, h, 0)
		b.Add(acc, acc, t)
	}
	b.AddImm(i, i, -1)
	b.Branch(isa.BrNEZ, i, top)
	return Workload{
		Name:    "sparse-trees",
		Kind:    "memory-bound",
		Emulate: "omnetpp/gcc-like independent gathers with short consumer trees",
		Program: b.Build(),
	}
}

// Mixed alternates phases of streaming, pointer chasing and compute,
// emulating phase-changing applications (gcc, perlbench). It is the kernel
// where Ballerino's adaptive P-IQ sharing pays off.
func Mixed(p Params) Workload {
	p = p.withDefaults()
	b := prog.NewBuilder("mixed")
	// Phase A data: stream arrays (L3-overflowing).
	elems := p.Footprint / (4 * 8)
	if elems < 256 {
		elems = 256
	}
	baseA := int64(heapBase)
	baseB := baseA + elems*8
	// Phase B data: small pointer ring (L2-resident).
	const ringNodes = 4096
	ringBase := baseB + elems*8
	r := lcg(777)
	for i := int64(0); i < elems; i++ {
		b.SetMem(uint64(baseA+i*8), int64(r.next()%512))
	}
	perm := make([]int64, ringNodes)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := int64(0); i < ringNodes; i++ {
		b.SetMem(uint64(ringBase+i*64), ringBase+perm[i]*64)
		b.SetMem(uint64(ringBase+i*64)+8, i)
	}

	pa, pb, i, n := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	v, acc := isa.F(1), isa.F(2)
	ptr, pv, cnt := isa.R(5), isa.R(6), isa.R(7)
	x0, x1 := isa.F(3), isa.F(4)

	// Fixed phase lengths keep all three phases visible within modest
	// simulation budgets regardless of footprint.
	phaseALen := int64(1024)
	if phaseALen > elems {
		phaseALen = elems
	}
	outer := b.NewLabel()
	b.Bind(outer)
	// Phase A: stream copy-scale.
	b.MovImm(pa, baseA)
	b.MovImm(pb, baseB)
	b.MovImm(i, 0)
	b.MovImm(n, phaseALen)
	phaseA := b.NewLabel()
	b.Bind(phaseA)
	b.Load(v, pa, 0)
	b.FpAdd(acc, acc, v)
	b.Store(v, pb, 0)
	b.AddImm(pa, pa, 8)
	b.AddImm(pb, pb, 8)
	b.AddImm(i, i, 1)
	b.Sub(isa.R(8), i, n)
	b.Branch(isa.BrNEZ, isa.R(8), phaseA)
	// Phase B: pointer chase over the ring.
	b.MovImm(ptr, ringBase)
	b.MovImm(cnt, 2048)
	phaseB := b.NewLabel()
	b.Bind(phaseB)
	b.Load(pv, ptr, 8)
	b.Load(ptr, ptr, 0)
	b.AddImm(cnt, cnt, -1)
	b.Branch(isa.BrNEZ, cnt, phaseB)
	// Phase C: FP compute burst.
	b.MovImm(i, 512)
	b.MovImm(x0, 3)
	b.MovImm(x1, 5)
	phaseC := b.NewLabel()
	b.Bind(phaseC)
	b.FpMul(x0, x0, x1)
	b.FpAdd(x0, x0, acc)
	b.FpMul(x1, x1, x0)
	b.AddImm(i, i, -1)
	b.Branch(isa.BrNEZ, i, phaseC)
	b.Jmp(outer)
	return Workload{
		Name:    "mixed",
		Kind:    "mixed",
		Emulate: "gcc/perlbench-like phase alternation",
		Program: b.Build(),
	}
}

// All returns every standard kernel with the given parameters, sorted by
// name. This is the suite every figure-level experiment averages over.
func All(p Params) []Workload {
	ws := []Workload{
		PointerChase(p),
		Stream(p),
		Compute(p),
		Branchy(p),
		HashJoin(p),
		Stencil(p),
		Reduction(p),
		StoreLoad(p),
		SparseTrees(p),
		Mixed(p),
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
	return ws
}

// ByName returns the named kernel — from the standard suite or the extras
// (see Extras) — or an error listing the valid names.
func ByName(name string, p Params) (Workload, error) {
	all := append(All(p), Extras(p)...)
	for _, w := range all {
		if w.Name == name {
			return w, nil
		}
	}
	var names []string
	for _, w := range all {
		names = append(names, w.Name)
	}
	return Workload{}, fmt.Errorf("workload: unknown kernel %q (valid: %v)", name, names)
}
