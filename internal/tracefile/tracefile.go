// Package tracefile implements ballerino.trace/v1, the versioned,
// self-describing on-disk μop trace format.
//
// A trace file is the portable form of one prog.Trace: the static program
// (instructions plus initial register/memory image), the dynamic μop
// stream, and the functional oracle (final architectural state and
// per-load values) that the audit golden model cross-checks against. Any
// trace the simulator can run can be exported, and any well-formed file
// can be imported and fed back through ballerino.PrepareTrace /
// Config.Trace, the batch API, the content-addressed TraceCache and
// ballserved job specs — with run manifests byte-identical to the
// in-memory original.
//
// Wire layout (all multi-byte integers are varints unless noted):
//
//	magic   16 bytes "ballerino.trace\x00"
//	header  uvarint JSON length, the JSON header, uint32 LE CRC-32C
//	chunks  a sequence of framed chunks, each:
//	          type    1 byte
//	          length  uvarint payload byte count
//	          payload
//	          crc     uint32 LE CRC-32C of the payload
//	        in fixed order: program, ops (repeated), load-values
//	        (optional), final-state (optional), end
//
// The header is JSON so the file identifies itself to tools that know
// nothing of the chunk encoding: format name, format version, the ISA
// geometry the μops assume (register file sizes, opcode-class count, word
// size), the workload identity (name, footprint, dynamic μop budget), and
// the trace content key — the same string ballerino keys its TraceCache
// and durable job store by, so an imported trace dedups byte-stably
// against an in-memory generation of the same kernel.
//
// The dynamic stream is varint-delta encoded and stores only the dynamic
// facts: sequence numbers are implicit (stream position), each op is its
// static PC as a uvarint, memory ops add their effective address as a
// zigzag delta against the previous memory op, and branches add a one-byte
// outcome. Everything else — opcode, function, condition, operand
// registers, immediate, next-PC — is reconstructed from the program chunk
// on import, exactly as the functional interpreter built it. Ops are
// framed in chunks of OpsPerChunk so both writer and reader stream at
// constant memory, and every chunk carries its own CRC so corruption is
// localised to a byte offset. The end chunk seals the file with the total
// op count and an FNV-1a digest of every ops-chunk payload.
//
// Versioning policy: the magic never changes; Header.Version is bumped on
// any incompatible change to the chunk encoding, and readers reject
// versions they do not know with ErrVersion (wrapped in a typed *Error).
// Adding new optional chunk types is a compatible change; readers skip
// unknown chunk types whose CRC verifies.
package tracefile

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Format is the self-describing format name carried in every header.
const Format = "ballerino.trace/v1"

// Version is the chunk-encoding version this package reads and writes.
const Version = 1

// Magic is the 16-byte file signature.
const Magic = "ballerino.trace\x00"

// OpsPerChunk is how many dynamic μops the writer frames per ops chunk —
// the unit of streaming and of corruption localisation.
const OpsPerChunk = 8192

// Chunk types, in their required file order.
const (
	chunkProgram    = 0x01 // static program: insts + initial reg/mem image
	chunkOps        = 0x02 // dynamic μop stream slice (repeated)
	chunkLoadValues = 0x03 // seq → loaded value oracle (optional)
	chunkFinal      = 0x04 // final architectural state oracle (optional)
	chunkEnd        = 0x7F // total op count + stream digest; must be last
)

// Decode-size sanity caps. They bound allocation before a length or count
// read from an untrusted file is trusted; every cap is far above anything
// the simulator produces.
const (
	maxHeaderLen = 1 << 20 // 1 MiB of JSON header
	maxChunkLen  = 1 << 28 // 256 MiB per chunk payload
	maxInsts     = 1 << 22 // static program length
	maxNameLen   = 1 << 12 // program name
)

// crcTable is the Castagnoli polynomial table shared by writer and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters for the stream
// digest sealed into the end chunk.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvSum folds b into an FNV-1a 64-bit running digest.
func fnvSum(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// ISAInfo is the ISA geometry recorded in the header: a reader refuses a
// trace recorded for a machine shape other than its own rather than
// letting out-of-range registers or opcodes near the pipeline.
type ISAInfo struct {
	IntRegs   int `json:"int_regs"`
	FpRegs    int `json:"fp_regs"`
	OpClasses int `json:"op_classes"`
	WordBytes int `json:"word_bytes"`
}

// Header is the self-describing JSON header at the top of every file.
type Header struct {
	Format  string  `json:"format"`
	Version int     `json:"version"`
	ISA     ISAInfo `json:"isa"`

	// Workload, FootprintBytes and Ops are the trace's content identity:
	// the program name, the data-footprint parameter it was generated
	// with, and the dynamic μop budget requested (the stream may be
	// shorter if the program halted early).
	Workload       string `json:"workload"`
	FootprintBytes int64  `json:"footprint_bytes"`
	Ops            int    `json:"ops"`

	// TraceKey is the ballerino trace content key ("wl:…|fp:…|ops:…")
	// the TraceCache and durable job store address this trace by.
	TraceKey string `json:"trace_key"`

	// Generator optionally names the producing tool.
	Generator string `json:"generator,omitempty"`
}

// Sentinel errors a typed *Error may wrap.
var (
	// ErrMagic reports a file that does not start with the format magic.
	ErrMagic = errors.New("tracefile: bad magic (not a ballerino.trace file)")
	// ErrVersion reports a well-formed header whose format/version this
	// reader does not support.
	ErrVersion = errors.New("tracefile: unsupported format version")
	// ErrChecksum reports a header or chunk whose CRC-32C does not match
	// its payload.
	ErrChecksum = errors.New("tracefile: checksum mismatch")
	// ErrTruncated reports a file that ends mid-structure.
	ErrTruncated = errors.New("tracefile: truncated file")
)

// Error is the typed failure every Decode path returns: the byte offset
// where decoding stopped, the section being decoded, and the cause
// (possibly one of the sentinel errors above).
type Error struct {
	Offset  int64
	Section string
	Err     error
}

func (e *Error) Error() string {
	return fmt.Sprintf("tracefile: %s at byte %d: %v", e.Section, e.Offset, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// zigzag maps a signed value to an unsigned one with small absolute
// values staying small (the varint-friendly encoding).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
