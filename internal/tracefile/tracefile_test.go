package tracefile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/prog"
	"repro/internal/workload"
)

// testTrace materialises a short trace of a real kernel.
func testTrace(t *testing.T, name string, ops int) *prog.Trace {
	t.Helper()
	wl, err := workload.ByName(name, workload.Params{Footprint: 1 << 16})
	if err != nil {
		t.Fatalf("workload %q: %v", name, err)
	}
	return prog.MustExecute(wl.Program, ops)
}

func encode(t *testing.T, tr *prog.Trace, h Header) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, h, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for _, name := range []string{"stream", "pointer-chase", "store-load", "branchy"} {
		t.Run(name, func(t *testing.T) {
			tr := testTrace(t, name, 5000)
			h := Header{Workload: name, FootprintBytes: 1 << 16, Ops: 5000, TraceKey: "wl:" + name}
			raw := encode(t, tr, h)

			d, err := Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if d.Header.Workload != name || d.Header.TraceKey != "wl:"+name || d.Header.Ops != 5000 {
				t.Fatalf("header identity mangled: %+v", d.Header)
			}
			got := d.Trace
			if !reflect.DeepEqual(got.Program, tr.Program) {
				t.Fatalf("program not identical after round trip")
			}
			if len(got.Ops) != len(tr.Ops) {
				t.Fatalf("op count: got %d want %d", len(got.Ops), len(tr.Ops))
			}
			for i := range tr.Ops {
				if got.Ops[i] != tr.Ops[i] {
					t.Fatalf("op %d differs:\n got %+v\nwant %+v", i, got.Ops[i], tr.Ops[i])
				}
			}
			if !reflect.DeepEqual(got.LoadValues, tr.LoadValues) {
				t.Fatalf("load values not identical after round trip")
			}
			if got.Final == nil || got.Final.Regs != tr.Final.Regs ||
				!reflect.DeepEqual(got.Final.Mem, tr.Final.Mem) {
				t.Fatalf("final state not identical after round trip")
			}
		})
	}
}

// TestEncodeByteStable: encoding the same trace twice must produce
// identical bytes (map-backed sections are sorted), so files dedup by
// content.
func TestEncodeByteStable(t *testing.T) {
	tr := testTrace(t, "hash-join", 3000)
	h := Header{Workload: "hash-join", Ops: 3000, TraceKey: "k"}
	a, b := encode(t, tr, h), encode(t, tr, h)
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodings of the same trace differ (%d vs %d bytes)", len(a), len(b))
	}
}

// TestChunking: a trace longer than OpsPerChunk crosses chunk boundaries
// (including the address-delta state) without loss.
func TestChunking(t *testing.T) {
	tr := testTrace(t, "stream", 3*OpsPerChunk+17)
	raw := encode(t, tr, Header{Workload: "stream"})
	d, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(d.Trace.Ops) != len(tr.Ops) {
		t.Fatalf("op count: got %d want %d", len(d.Trace.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if d.Trace.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d differs across chunk boundary", i)
		}
	}
}

func TestDecodeHeaderOnly(t *testing.T) {
	tr := testTrace(t, "stream", 1000)
	raw := encode(t, tr, Header{Workload: "stream", FootprintBytes: 1 << 16, Ops: 1000, TraceKey: "wl:stream|fp:65536|ops:1000"})
	h, err := DecodeHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("DecodeHeader: %v", err)
	}
	if h.Format != Format || h.Version != Version || h.TraceKey != "wl:stream|fp:65536|ops:1000" {
		t.Fatalf("header: %+v", h)
	}
}

func TestBadMagic(t *testing.T) {
	tr := testTrace(t, "stream", 100)
	raw := encode(t, tr, Header{})
	raw[0] ^= 0xFF
	_, err := Decode(bytes.NewReader(raw))
	if !errors.Is(err, ErrMagic) {
		t.Fatalf("want ErrMagic, got %v", err)
	}
}

func TestTruncation(t *testing.T) {
	tr := testTrace(t, "store-load", 2000)
	raw := encode(t, tr, Header{Workload: "store-load"})
	// Every proper prefix must fail loudly — never parse as a valid file.
	for _, n := range []int{0, 1, 8, 15, 16, 17, len(raw) / 4, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		_, err := Decode(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(raw))
		}
		var te *Error
		if !errors.As(err, &te) {
			t.Fatalf("prefix %d: want *tracefile.Error, got %T: %v", n, err, err)
		}
	}
}

// TestFlippedBytes: corrupting any single payload byte after the magic
// must be caught (CRC, digest, or structural validation) — never decode
// to a silently different trace.
func TestFlippedBytes(t *testing.T) {
	tr := testTrace(t, "branchy", 1500)
	raw := encode(t, tr, Header{Workload: "branchy"})
	orig, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("baseline decode: %v", err)
	}
	stride := len(raw)/97 + 1
	for off := len(Magic); off < len(raw); off += stride {
		mut := bytes.Clone(raw)
		mut[off] ^= 0x41
		d, err := Decode(bytes.NewReader(mut))
		if err != nil {
			var te *Error
			if !errors.As(err, &te) {
				t.Fatalf("offset %d: want *tracefile.Error, got %T: %v", off, err, err)
			}
			continue
		}
		// A flip in a skipped-unknown-chunk region could legitimately
		// still decode; the trace must then be identical to the original.
		if !reflect.DeepEqual(d.Trace, orig.Trace) {
			t.Fatalf("offset %d: corrupted file decoded to a different trace", off)
		}
	}
}

func TestVersionSkew(t *testing.T) {
	h := Header{Format: Format, Version: 99}
	hb, _ := json.Marshal(h)
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write(binary.AppendUvarint(nil, uint64(len(hb))))
	buf.Write(hb)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(hb, crcTable))
	buf.Write(crc[:])
	_, err := Decode(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	if _, err := NewWriter(&bytes.Buffer{}, Header{Version: 2}); err == nil {
		t.Fatalf("writer accepted a future version")
	}
}

func TestFlippedCRC(t *testing.T) {
	tr := testTrace(t, "stream", 500)
	raw := encode(t, tr, Header{})
	// The file ends with the end chunk: ...payload crc32. Flip the last byte.
	raw[len(raw)-1] ^= 0x01
	_, err := Decode(bytes.NewReader(raw))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

// TestUnknownChunkSkipped: a chunk of an unknown type with a valid CRC is
// skipped — the forward-compatibility path for later revisions.
func TestUnknownChunkSkipped(t *testing.T) {
	tr := testTrace(t, "stream", 500)
	raw := encode(t, tr, Header{})

	// Find the end of the header: magic + uvarint(len) + json + crc.
	pos := len(Magic)
	hlen, n := binary.Uvarint(raw[pos:])
	pos += n + int(hlen) + 4

	ext := []byte("experimental extension payload")
	var chunk bytes.Buffer
	chunk.WriteByte(0x60)
	chunk.Write(binary.AppendUvarint(nil, uint64(len(ext))))
	chunk.Write(ext)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(ext, crcTable))
	chunk.Write(crc[:])

	spliced := append(bytes.Clone(raw[:pos]), append(chunk.Bytes(), raw[pos:]...)...)
	d, err := Decode(bytes.NewReader(spliced))
	if err != nil {
		t.Fatalf("decode with unknown chunk: %v", err)
	}
	if len(d.Trace.Ops) != len(tr.Ops) {
		t.Fatalf("unknown chunk disturbed the stream: %d vs %d ops", len(d.Trace.Ops), len(tr.Ops))
	}

	// The same unknown chunk with a corrupted CRC must still fail.
	spliced[pos+1+1+2] ^= 0xFF
	if _, err := Decode(bytes.NewReader(spliced)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt unknown chunk: want ErrChecksum, got %v", err)
	}
}

// TestWriterOrderEnforced: sections written out of order are rejected.
func TestWriterOrderEnforced(t *testing.T) {
	tr := testTrace(t, "stream", 100)
	w, err := NewWriter(&bytes.Buffer{}, Header{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteOps(tr.Ops); err == nil {
		t.Fatalf("ops before program accepted")
	}
	w2, _ := NewWriter(&bytes.Buffer{}, Header{})
	if err := w2.WriteProgram(tr.Program); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteFinal(tr.Final); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteLoadValues(tr.LoadValues); err == nil {
		t.Fatalf("load-values after final accepted")
	}
}
