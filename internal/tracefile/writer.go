package tracefile

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Encode writes tr as one complete trace file under header h: program,
// dynamic stream, and — when present — the load-value and final-state
// oracles.
func Encode(wr io.Writer, h Header, tr *prog.Trace) error {
	w, err := NewWriter(wr, h)
	if err != nil {
		return err
	}
	if err := w.WriteProgram(tr.Program); err != nil {
		return err
	}
	if err := w.WriteOps(tr.Ops); err != nil {
		return err
	}
	if len(tr.LoadValues) > 0 {
		if err := w.WriteLoadValues(tr.LoadValues); err != nil {
			return err
		}
	}
	if tr.Final != nil {
		if err := w.WriteFinal(tr.Final); err != nil {
			return err
		}
	}
	return w.Close()
}

// A Writer streams one trace to an io.Writer in ballerino.trace/v1
// format. Call the section methods in file order — WriteProgram, then
// WriteOps (any number of times), then optionally WriteLoadValues and
// WriteFinal — and Close to seal the end chunk. The writer holds at most
// one chunk in memory, so exporting a multi-million-μop trace streams at
// constant memory.
type Writer struct {
	w   *bufio.Writer
	err error

	stage   byte // highest chunk type written so far
	buf     []byte
	pending int // ops encoded into buf but not yet framed

	opsWritten uint64
	prevAddr   uint64
	digest     uint64
	insts      int // program length, for PC validation on write
}

// NewWriter writes the magic and header and returns a Writer for the
// chunk sections. Zero-valued Format/Version/ISA fields are filled with
// this package's own identity.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Format == "" {
		h.Format = Format
	}
	if h.Version == 0 {
		h.Version = Version
	}
	if h.ISA == (ISAInfo{}) {
		h.ISA = ISAInfo{
			IntRegs:   isa.NumIntRegs,
			FpRegs:    isa.NumFpRegs,
			OpClasses: isa.NumOps,
			WordBytes: 8,
		}
	}
	if h.Format != Format || h.Version != Version {
		return nil, fmt.Errorf("tracefile: writer only produces %s version %d, not %s version %d",
			Format, Version, h.Format, h.Version)
	}
	hb, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("tracefile: header: %w", err)
	}
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16), digest: fnvOffset}
	tw.write([]byte(Magic))
	tw.write(binary.AppendUvarint(nil, uint64(len(hb))))
	tw.write(hb)
	tw.writeCRC(hb)
	if tw.err != nil {
		return nil, tw.err
	}
	return tw, nil
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *Writer) writeCRC(payload []byte) {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	w.write(crc[:])
}

// writeChunk frames payload as one chunk of the given type.
func (w *Writer) writeChunk(typ byte, payload []byte) {
	w.write([]byte{typ})
	w.write(binary.AppendUvarint(nil, uint64(len(payload))))
	w.write(payload)
	w.writeCRC(payload)
}

// advance enforces the fixed section order.
func (w *Writer) advance(typ byte) error {
	if w.err != nil {
		return w.err
	}
	if typ < w.stage || (typ == w.stage && typ != chunkOps) {
		w.err = fmt.Errorf("tracefile: chunk type %#02x written out of order (after %#02x)", typ, w.stage)
		return w.err
	}
	if typ != chunkOps && w.pending > 0 {
		w.flushOps()
	}
	w.stage = typ
	return w.err
}

// WriteProgram encodes the static program: name, instructions, and the
// initial register and memory images (sorted, so identical programs
// always produce identical bytes).
func (w *Writer) WriteProgram(p *prog.Program) error {
	if err := w.advance(chunkProgram); err != nil {
		return err
	}
	if len(p.Insts) > maxInsts {
		w.err = fmt.Errorf("tracefile: program has %d instructions (max %d)", len(p.Insts), maxInsts)
		return w.err
	}
	buf := w.buf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(p.Name)))
	buf = append(buf, p.Name...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Insts)))
	for i := range p.Insts {
		in := &p.Insts[i]
		buf = append(buf, byte(in.Op)|byte(in.Fn)<<4)
		cond := byte(in.Cond)
		if in.Halt {
			cond |= 0x80
		}
		buf = append(buf, cond, byte(in.Dst), byte(in.Src1), byte(in.Src2), byte(in.Base))
		buf = binary.AppendUvarint(buf, zigzag(in.Imm))
		if in.Op == isa.OpBranch {
			buf = binary.AppendUvarint(buf, uint64(in.Target))
		}
	}
	regs := make([]int, 0, len(p.InitReg))
	for r := range p.InitReg {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	buf = binary.AppendUvarint(buf, uint64(len(regs)))
	for _, r := range regs {
		buf = append(buf, byte(r))
		buf = binary.AppendUvarint(buf, zigzag(p.InitReg[isa.Reg(r)]))
	}
	buf = appendMemImage(buf, p.InitMem)
	w.insts = len(p.Insts)
	w.writeChunk(chunkProgram, buf)
	w.buf = buf[:0]
	return w.err
}

// appendMemImage encodes a sparse word memory: count, then
// address-ascending (delta-uvarint address, zigzag-varint value) pairs.
func appendMemImage(buf []byte, mem map[uint64]int64) []byte {
	addrs := make([]uint64, 0, len(mem))
	for a := range mem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf = binary.AppendUvarint(buf, uint64(len(addrs)))
	prev := uint64(0)
	for _, a := range addrs {
		buf = binary.AppendUvarint(buf, a-prev)
		buf = binary.AppendUvarint(buf, zigzag(mem[a]))
		prev = a
	}
	return buf
}

// WriteOps appends a slice of the dynamic μop stream. Ops must arrive in
// stream order; the writer frames them into chunks of OpsPerChunk. Only
// the dynamic facts are encoded — PC, effective address (as a delta
// against the previous memory op) and branch outcome; everything a μop
// inherits from its static instruction is reconstructed from the program
// chunk on import, exactly as the functional interpreter built it.
func (w *Writer) WriteOps(ops []isa.DynInst) error {
	if err := w.advance(chunkOps); err != nil {
		return err
	}
	if w.insts == 0 {
		w.err = fmt.Errorf("tracefile: ops written before program")
		return w.err
	}
	for i := range ops {
		d := &ops[i]
		if d.PC < 0 || d.PC >= w.insts {
			w.err = fmt.Errorf("tracefile: op #%d: pc %d outside program (%d insts)", d.Seq, d.PC, w.insts)
			return w.err
		}
		w.buf = binary.AppendUvarint(w.buf, uint64(d.PC))
		switch {
		case d.Op.IsMem():
			w.buf = binary.AppendUvarint(w.buf, zigzag(int64(d.Addr-w.prevAddr)))
			w.prevAddr = d.Addr
		case d.Op == isa.OpBranch:
			t := byte(0)
			if d.Taken {
				t = 1
			}
			w.buf = append(w.buf, t)
		}
		w.pending++
		if w.pending == OpsPerChunk {
			w.flushOps()
		}
	}
	return w.err
}

// flushOps frames the pending ops into one chunk and folds its payload
// into the stream digest.
func (w *Writer) flushOps() {
	payload := binary.AppendUvarint(nil, uint64(w.pending))
	payload = append(payload, w.buf...)
	w.digest = fnvSum(w.digest, payload)
	w.writeChunk(chunkOps, payload)
	w.opsWritten += uint64(w.pending)
	w.pending = 0
	w.buf = w.buf[:0]
}

// WriteLoadValues encodes the seq → loaded-value oracle used by the
// audit golden model. Optional; pass the trace's LoadValues map.
func (w *Writer) WriteLoadValues(lv map[uint64]int64) error {
	if err := w.advance(chunkLoadValues); err != nil {
		return err
	}
	seqs := make([]uint64, 0, len(lv))
	for s := range lv {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	buf := w.buf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(seqs)))
	prev := uint64(0)
	for _, s := range seqs {
		buf = binary.AppendUvarint(buf, s-prev)
		buf = binary.AppendUvarint(buf, zigzag(lv[s]))
		prev = s
	}
	w.writeChunk(chunkLoadValues, buf)
	w.buf = buf[:0]
	return w.err
}

// WriteFinal encodes the final architectural state oracle. Optional.
func (w *Writer) WriteFinal(st *prog.ArchState) error {
	if err := w.advance(chunkFinal); err != nil {
		return err
	}
	buf := w.buf[:0]
	for _, v := range st.Regs {
		buf = binary.AppendUvarint(buf, zigzag(v))
	}
	buf = appendMemImage(buf, st.Mem)
	w.writeChunk(chunkFinal, buf)
	w.buf = buf[:0]
	return w.err
}

// Close flushes any pending ops, seals the file with the end chunk
// (total op count + stream digest) and flushes the underlying writer. It
// does not close the underlying io.Writer.
func (w *Writer) Close() error {
	if err := w.advance(chunkEnd); err != nil {
		return err
	}
	payload := binary.AppendUvarint(nil, w.opsWritten)
	payload = binary.LittleEndian.AppendUint64(payload, w.digest)
	w.writeChunk(chunkEnd, payload)
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}
