package tracefile

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Decoded is the result of reading one trace file: its header and the
// reconstructed in-memory trace. Trace.Final and Trace.LoadValues are nil
// when the file omitted the optional oracle chunks.
type Decoded struct {
	Header Header
	Trace  *prog.Trace
}

// reader tracks the byte offset of everything it reads so every decode
// failure can say where in the file it happened.
type reader struct {
	r   *bufio.Reader
	off int64
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (r *reader) ReadByte() (byte, error) {
	b, err := r.r.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

func (r *reader) fail(section string, err error) *Error {
	return &Error{Offset: r.off, Section: section, Err: err}
}

// readFull fills b or fails with ErrTruncated.
func (r *reader) readFull(b []byte, section string) error {
	n, err := io.ReadFull(r.r, b)
	r.off += int64(n)
	if err != nil {
		return r.fail(section, ErrTruncated)
	}
	return nil
}

// readUvarint reads one uvarint, mapping EOF and varint overflow to
// typed errors.
func (r *reader) readUvarint(section string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, r.fail(section, ErrTruncated)
	}
	if err != nil {
		return 0, r.fail(section, fmt.Errorf("bad varint: %w", err))
	}
	return v, nil
}

// DecodeHeader reads and validates the magic and JSON header, leaving r
// positioned at the first chunk. It is the cheap way to identify a file —
// key, workload, op count — without decoding the μop stream.
func DecodeHeader(rd io.Reader) (Header, error) {
	r := &reader{r: bufio.NewReaderSize(rd, 1<<16)}
	h, err := decodeHeader(r)
	return h, err
}

func decodeHeader(r *reader) (Header, error) {
	var h Header
	magic := make([]byte, len(Magic))
	if err := r.readFull(magic, "magic"); err != nil {
		return h, err
	}
	if string(magic) != Magic {
		return h, r.fail("magic", ErrMagic)
	}
	n, err := r.readUvarint("header")
	if err != nil {
		return h, err
	}
	if n > maxHeaderLen {
		return h, r.fail("header", fmt.Errorf("header length %d exceeds cap %d", n, maxHeaderLen))
	}
	hb := make([]byte, n)
	if err := r.readFull(hb, "header"); err != nil {
		return h, err
	}
	var crc [4]byte
	if err := r.readFull(crc[:], "header"); err != nil {
		return h, err
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.Checksum(hb, crcTable) {
		return h, r.fail("header", ErrChecksum)
	}
	if err := json.Unmarshal(hb, &h); err != nil {
		return h, r.fail("header", fmt.Errorf("bad JSON: %w", err))
	}
	if h.Format != Format || h.Version != Version {
		return h, r.fail("header", fmt.Errorf("%w: got %q version %d, want %q version %d",
			ErrVersion, h.Format, h.Version, Format, Version))
	}
	want := ISAInfo{IntRegs: isa.NumIntRegs, FpRegs: isa.NumFpRegs, OpClasses: isa.NumOps, WordBytes: 8}
	if h.ISA != want {
		return h, r.fail("header", fmt.Errorf("ISA geometry %+v does not match this machine %+v", h.ISA, want))
	}
	if h.Ops < 0 || h.FootprintBytes < 0 {
		return h, r.fail("header", fmt.Errorf("negative workload identity (ops %d, footprint %d)", h.Ops, h.FootprintBytes))
	}
	return h, nil
}

// Decode reads one complete trace file. Every failure — truncation, CRC
// mismatch, malformed varints, out-of-range opcodes or registers, chunks
// out of order, stream digest mismatch — returns a typed *Error; Decode
// never panics on malformed input. Unknown chunk types whose CRC verifies
// are skipped (the forward-compatibility path for later minor revisions).
func Decode(rd io.Reader) (*Decoded, error) {
	r := &reader{r: bufio.NewReaderSize(rd, 1<<16)}
	h, err := decodeHeader(r)
	if err != nil {
		return nil, err
	}
	d := &Decoded{Header: h, Trace: &prog.Trace{}}
	stage := byte(0)
	digest := uint64(fnvOffset)
	prevAddr := uint64(0)
	for {
		typ, err := r.ReadByte()
		if err != nil {
			return nil, r.fail("chunk", ErrTruncated)
		}
		start := r.off - 1
		n, err := r.readUvarint("chunk")
		if err != nil {
			return nil, err
		}
		if n > maxChunkLen {
			return nil, r.fail("chunk", fmt.Errorf("chunk length %d exceeds cap %d", n, maxChunkLen))
		}
		body := make([]byte, n)
		if err := r.readFull(body, "chunk"); err != nil {
			return nil, err
		}
		var crc [4]byte
		if err := r.readFull(crc[:], "chunk"); err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.Checksum(body, crcTable) {
			return nil, &Error{Offset: start, Section: chunkSection(typ), Err: ErrChecksum}
		}
		known := typ == chunkProgram || typ == chunkOps || typ == chunkLoadValues ||
			typ == chunkFinal || typ == chunkEnd
		if !known {
			continue // forward compatibility: skip chunk types we do not know
		}
		if typ < stage || (typ == stage && typ != chunkOps) {
			return nil, &Error{Offset: start, Section: chunkSection(typ),
				Err: fmt.Errorf("chunk type %#02x out of order (after %#02x)", typ, stage)}
		}
		stage = typ
		p := &payload{b: body, base: start, section: chunkSection(typ)}
		switch typ {
		case chunkProgram:
			if err := decodeProgram(p, d.Trace); err != nil {
				return nil, err
			}
		case chunkOps:
			if d.Trace.Program == nil {
				return nil, p.errAt(fmt.Errorf("ops chunk before program chunk"))
			}
			digest = fnvSum(digest, body)
			if err := decodeOps(p, d.Trace, &prevAddr); err != nil {
				return nil, err
			}
		case chunkLoadValues:
			if err := decodeLoadValues(p, d.Trace); err != nil {
				return nil, err
			}
		case chunkFinal:
			if err := decodeFinal(p, d.Trace); err != nil {
				return nil, err
			}
		case chunkEnd:
			count, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if count != uint64(len(d.Trace.Ops)) {
				return nil, p.errAt(fmt.Errorf("end chunk claims %d ops, stream has %d", count, len(d.Trace.Ops)))
			}
			want, err := p.u64()
			if err != nil {
				return nil, err
			}
			if want != digest {
				return nil, p.errAt(fmt.Errorf("%w: stream digest %#x, end chunk says %#x", ErrChecksum, digest, want))
			}
			if err := p.done(); err != nil {
				return nil, err
			}
			if d.Trace.Program == nil {
				return nil, p.errAt(fmt.Errorf("file has no program chunk"))
			}
			return d, nil
		}
		if typ != chunkEnd {
			if err := p.done(); err != nil {
				return nil, err
			}
		}
	}
}

func chunkSection(typ byte) string {
	switch typ {
	case chunkProgram:
		return "program"
	case chunkOps:
		return "ops"
	case chunkLoadValues:
		return "load-values"
	case chunkFinal:
		return "final-state"
	case chunkEnd:
		return "end"
	}
	return fmt.Sprintf("chunk-%#02x", typ)
}

// payload parses one chunk body, reporting failures at absolute file
// offsets.
type payload struct {
	b       []byte
	pos     int
	base    int64
	section string
}

func (p *payload) errAt(err error) *Error {
	return &Error{Offset: p.base + int64(p.pos), Section: p.section, Err: err}
}

func (p *payload) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, p.errAt(ErrTruncated)
		}
		return 0, p.errAt(fmt.Errorf("bad varint"))
	}
	p.pos += n
	return v, nil
}

func (p *payload) varint() (int64, error) {
	u, err := p.uvarint()
	return unzigzag(u), err
}

func (p *payload) byte() (byte, error) {
	if p.pos >= len(p.b) {
		return 0, p.errAt(ErrTruncated)
	}
	b := p.b[p.pos]
	p.pos++
	return b, nil
}

func (p *payload) u64() (uint64, error) {
	if p.pos+8 > len(p.b) {
		return 0, p.errAt(ErrTruncated)
	}
	v := binary.LittleEndian.Uint64(p.b[p.pos:])
	p.pos += 8
	return v, nil
}

// remaining is the unread byte count — the bound every count field is
// checked against before allocation (each encoded element is ≥1 byte, so
// a count can never legitimately exceed it).
func (p *payload) remaining() int { return len(p.b) - p.pos }

// done requires the payload to be fully consumed: trailing bytes inside a
// known chunk are a framing error, not padding.
func (p *payload) done() error {
	if p.pos != len(p.b) {
		return p.errAt(fmt.Errorf("%d trailing bytes in %s chunk", len(p.b)-p.pos, p.section))
	}
	return nil
}

// decodeReg validates a register operand byte: a real register or RegNone.
func (p *payload) decodeReg(what string) (isa.Reg, error) {
	b, err := p.byte()
	if err != nil {
		return 0, err
	}
	r := isa.Reg(b)
	if !r.Valid() && r != isa.RegNone {
		return 0, p.errAt(fmt.Errorf("%s register %d out of range", what, b))
	}
	return r, nil
}

func decodeProgram(p *payload, tr *prog.Trace) error {
	nameLen, err := p.uvarint()
	if err != nil {
		return err
	}
	if nameLen > maxNameLen || int(nameLen) > p.remaining() {
		return p.errAt(fmt.Errorf("program name length %d exceeds cap", nameLen))
	}
	name := string(p.b[p.pos : p.pos+int(nameLen)])
	p.pos += int(nameLen)
	ninsts, err := p.uvarint()
	if err != nil {
		return err
	}
	// Each instruction encodes to ≥7 bytes, so the count is bounded by the
	// payload before anything is allocated.
	if ninsts > maxInsts || int(ninsts) > p.remaining()/7 {
		return p.errAt(fmt.Errorf("instruction count %d exceeds payload", ninsts))
	}
	pr := &prog.Program{
		Name:    name,
		Insts:   make([]isa.Inst, ninsts),
		InitMem: make(map[uint64]int64),
		InitReg: make(map[isa.Reg]int64),
	}
	for i := range pr.Insts {
		in := &pr.Insts[i]
		opfn, err := p.byte()
		if err != nil {
			return err
		}
		in.Op, in.Fn = isa.Op(opfn&0x0F), isa.Fn(opfn>>4)
		if !in.Op.Valid() {
			return p.errAt(fmt.Errorf("inst %d: opcode %d out of range", i, opfn&0x0F))
		}
		if !in.Fn.Valid() {
			return p.errAt(fmt.Errorf("inst %d: fn %d out of range", i, opfn>>4))
		}
		cond, err := p.byte()
		if err != nil {
			return err
		}
		in.Halt = cond&0x80 != 0
		in.Cond = isa.BrCond(cond &^ 0x80)
		if !in.Cond.Valid() {
			return p.errAt(fmt.Errorf("inst %d: branch condition %d out of range", i, cond&^0x80))
		}
		if in.Dst, err = p.decodeReg("dst"); err != nil {
			return err
		}
		if in.Src1, err = p.decodeReg("src1"); err != nil {
			return err
		}
		if in.Src2, err = p.decodeReg("src2"); err != nil {
			return err
		}
		if in.Base, err = p.decodeReg("base"); err != nil {
			return err
		}
		if in.Imm, err = p.varint(); err != nil {
			return err
		}
		if in.Op == isa.OpBranch {
			t, err := p.uvarint()
			if err != nil {
				return err
			}
			if t >= ninsts {
				return p.errAt(fmt.Errorf("inst %d: branch target %d outside program (%d insts)", i, t, ninsts))
			}
			in.Target = int(t)
		}
	}
	nreg, err := p.uvarint()
	if err != nil {
		return err
	}
	if nreg > isa.NumArchRegs {
		return p.errAt(fmt.Errorf("initial register count %d exceeds register file", nreg))
	}
	for i := uint64(0); i < nreg; i++ {
		rb, err := p.byte()
		if err != nil {
			return err
		}
		if !isa.Reg(rb).Valid() {
			return p.errAt(fmt.Errorf("initial register %d out of range", rb))
		}
		v, err := p.varint()
		if err != nil {
			return err
		}
		pr.InitReg[isa.Reg(rb)] = v
	}
	if err := decodeMemImage(p, pr.InitMem); err != nil {
		return err
	}
	tr.Program = pr
	return nil
}

// decodeMemImage inverts appendMemImage into m.
func decodeMemImage(p *payload, m map[uint64]int64) error {
	n, err := p.uvarint()
	if err != nil {
		return err
	}
	if int64(n) > int64(p.remaining())/2 {
		return p.errAt(fmt.Errorf("memory image count %d exceeds payload", n))
	}
	addr := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := p.uvarint()
		if err != nil {
			return err
		}
		addr += d
		v, err := p.varint()
		if err != nil {
			return err
		}
		m[addr] = v
	}
	return nil
}

// decodeOps reconstructs one ops chunk. Each op stores only its dynamic
// facts (PC; address delta for memory ops; outcome for branches); the
// rest of the DynInst is rebuilt from the static instruction exactly as
// prog.ExecuteContext builds it, so a round-tripped stream is
// field-identical to the in-memory original.
func decodeOps(p *payload, tr *prog.Trace, prevAddr *uint64) error {
	count, err := p.uvarint()
	if err != nil {
		return err
	}
	if count > OpsPerChunk || int64(count) > int64(p.remaining()) {
		return p.errAt(fmt.Errorf("ops count %d exceeds chunk", count))
	}
	insts := tr.Program.Insts
	for i := uint64(0); i < count; i++ {
		pcU, err := p.uvarint()
		if err != nil {
			return err
		}
		if pcU >= uint64(len(insts)) {
			return p.errAt(fmt.Errorf("op pc %d outside program (%d insts)", pcU, len(insts)))
		}
		in := &insts[pcU]
		if in.Halt {
			return p.errAt(fmt.Errorf("op references halt pseudo-instruction at pc %d", pcU))
		}
		pc := int(pcU)
		d := isa.DynInst{
			Seq:  uint64(len(tr.Ops)),
			PC:   pc,
			Op:   in.Op,
			Fn:   in.Fn,
			Cond: in.Cond,
			Dst:  in.Dst,
			Imm:  in.Imm,
			Size: 8,
		}
		next := pc + 1
		switch {
		case in.Op.IsMem():
			if in.Op == isa.OpLoad {
				d.Src1, d.Src2 = in.Base, isa.RegNone
			} else {
				d.Src1, d.Src2 = in.Base, in.Src1 // base, data
			}
			delta, err := p.varint()
			if err != nil {
				return err
			}
			d.Addr = *prevAddr + uint64(delta)
			*prevAddr = d.Addr
		case in.Op == isa.OpBranch:
			d.Src1, d.Src2 = in.Src1, isa.RegNone
			t, err := p.byte()
			if err != nil {
				return err
			}
			if t > 1 {
				return p.errAt(fmt.Errorf("branch outcome byte %d is not 0/1", t))
			}
			d.Taken = t == 1
			if d.Taken {
				next = in.Target
			}
		case in.Op == isa.OpNop:
			d.Src1, d.Src2 = isa.RegNone, isa.RegNone
		default: // ALU classes
			d.Src1, d.Src2 = in.Src1, in.Src2
		}
		d.Next = next
		tr.Ops = append(tr.Ops, d)
	}
	return nil
}

func decodeLoadValues(p *payload, tr *prog.Trace) error {
	n, err := p.uvarint()
	if err != nil {
		return err
	}
	if int64(n) > int64(p.remaining())/2 {
		return p.errAt(fmt.Errorf("load-value count %d exceeds payload", n))
	}
	lv := make(map[uint64]int64, n)
	seq := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, err := p.uvarint()
		if err != nil {
			return err
		}
		seq += d
		if seq >= uint64(len(tr.Ops)) {
			return p.errAt(fmt.Errorf("load value for seq %d outside stream (%d ops)", seq, len(tr.Ops)))
		}
		v, err := p.varint()
		if err != nil {
			return err
		}
		lv[seq] = v
	}
	tr.LoadValues = lv
	return nil
}

func decodeFinal(p *payload, tr *prog.Trace) error {
	st := prog.NewArchState()
	for i := range st.Regs {
		v, err := p.varint()
		if err != nil {
			return err
		}
		st.Regs[i] = v
	}
	if err := decodeMemImage(p, st.Mem); err != nil {
		return err
	}
	tr.Final = st
	return nil
}
