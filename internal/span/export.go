package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// View is the exported snapshot of one span: the wire form of the
// per-job timeline API and the input to the text and Chrome renderers.
type View struct {
	ID     ID     `json:"id"`
	Parent ID     `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Start/End are RFC3339Nano wall-clock times; End is the zero time
	// while the span is still open (Open true).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Open  bool      `json:"open,omitempty"`
	Error string    `json:"error,omitempty"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Duration returns the span's length (0 while open).
func (v View) Duration() time.Duration {
	if v.Open {
		return 0
	}
	return v.End.Sub(v.Start)
}

// Attr returns the last value recorded for key ("" when absent): the
// last-write-wins read over the append-only annotation list.
func (v View) Attr(key string) string {
	for i := len(v.Attrs) - 1; i >= 0; i-- {
		if v.Attrs[i].Key == key {
			return v.Attrs[i].Value
		}
	}
	return ""
}

// Tree is one trace's exported span set, in span-creation order. Spans
// are flat with parent IDs (0 = top level); Roots/Children walk them as
// a tree.
type Tree struct {
	TraceID string `json:"trace_id"`
	Spans   []View `json:"spans"`
}

// Tree snapshots the spans of traceID (nil when the tracer is nil or the
// trace is unknown/evicted). The snapshot is a deep copy: it stays
// consistent while the live trace keeps growing.
func (t *Tracer) Tree(traceID string) *Tree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[traceID]
	if tr == nil {
		return nil
	}
	out := &Tree{TraceID: traceID, Spans: make([]View, len(tr.spans))}
	for i, sp := range tr.spans {
		out.Spans[i] = View{
			ID:     sp.id,
			Parent: sp.parent,
			Name:   sp.name,
			Start:  sp.start,
			End:    sp.end,
			Open:   sp.end.IsZero(),
			Error:  sp.errMsg,
			Attrs:  append([]Attr(nil), sp.attrs...),
		}
	}
	return out
}

// Roots returns the top-level spans (parent 0, or parent missing from the
// snapshot).
func (tr *Tree) Roots() []View {
	ids := make(map[ID]bool, len(tr.Spans))
	for _, v := range tr.Spans {
		ids[v.ID] = true
	}
	var roots []View
	for _, v := range tr.Spans {
		if v.Parent == 0 || !ids[v.Parent] {
			roots = append(roots, v)
		}
	}
	return roots
}

// Children returns the direct children of span id, in creation order.
func (tr *Tree) Children(id ID) []View {
	var out []View
	for _, v := range tr.Spans {
		if v.Parent == id && v.ID != id {
			out = append(out, v)
		}
	}
	return out
}

// Find returns the first span named name (creation order) and whether one
// exists.
func (tr *Tree) Find(name string) (View, bool) {
	for _, v := range tr.Spans {
		if v.Name == name {
			return v, true
		}
	}
	return View{}, false
}

// start returns the earliest span start — the trace's time base.
func (tr *Tree) start() time.Time {
	var t0 time.Time
	for _, v := range tr.Spans {
		if t0.IsZero() || v.Start.Before(t0) {
			t0 = v.Start
		}
	}
	return t0
}

// WriteJSON renders the tree as indented JSON — the default body of
// GET /jobs/{id}/spans.
func (tr *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// WriteText renders a human-readable timeline: one line per span,
// indented by depth, with the offset from trace start, the duration, and
// the annotations. Open spans render as "…open"; failed spans carry their
// error.
func (tr *Tree) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace %s (%d spans)\n", tr.TraceID, len(tr.Spans)); err != nil {
		return err
	}
	t0 := tr.start()
	var walk func(v View, depth int) error
	walk = func(v View, depth int) error {
		dur := "…open"
		if !v.Open {
			dur = v.Duration().Round(time.Microsecond).String()
		}
		line := fmt.Sprintf("%s%-*s +%-12s %s",
			strings.Repeat("  ", depth+1), 28-2*depth, v.Name,
			v.Start.Sub(t0).Round(time.Microsecond), dur)
		for _, a := range v.Attrs {
			line += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if v.Error != "" {
			line += " ERROR: " + v.Error
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range tr.Children(v.ID) {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range tr.Roots() {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// chromeFile mirrors internal/obs's trace_event container: the same JSON
// object format chrome://tracing and Perfetto consume, reusing
// obs.TraceEvent as the entry type.
type chromeFile struct {
	TraceEvents     []obs.TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	Metadata        map[string]any   `json:"metadata,omitempty"`
}

// WriteChrome renders the tree in the Chrome trace_event format: one
// complete ("X") slice per closed span (nested slices form the flame
// view), a begin ("B") event for each still-open span, timestamps in
// microseconds since trace start. Events are emitted timestamp-sorted so
// the track is monotonic, matching the obs.ChromeSink contract.
func (tr *Tree) WriteChrome(w io.Writer) error {
	t0 := tr.start()
	events := make([]obs.TraceEvent, 0, len(tr.Spans))
	for _, v := range tr.Spans {
		args := map[string]any{"span_id": uint64(v.ID), "trace_id": tr.TraceID}
		for _, a := range v.Attrs {
			args[a.Key] = a.Value
		}
		if v.Error != "" {
			args["error"] = v.Error
		}
		ev := obs.TraceEvent{
			Name: v.Name, Cat: "lifecycle", TS: uint64(v.Start.Sub(t0).Microseconds()),
			PID: 0, TID: 0, Args: args,
		}
		if v.Open {
			ev.Ph = "B"
		} else {
			ev.Ph = "X"
			ev.Dur = uint64(v.End.Sub(v.Start).Microseconds())
			if ev.Dur == 0 {
				ev.Dur = 1
			}
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"trace_id": tr.TraceID, "unit": "1 ts = 1 µs wall clock"},
	})
}
