// Package span is the job-lifecycle tracing layer of the serving stack:
// wall-clock span trees correlated by a stable trace ID, threaded through
// context from submission to completion.
//
// It is the service-level sibling of internal/obs: obs traces the
// simulated machine (cycles, μops, heartbeats), span traces the machinery
// around it — queue wait, WAL appends, retry backoff, trace-cache
// lookups, the simulation attempt itself. Like obs, the layer is
// zero-cost when off: a nil *Tracer produces nil *Spans, every method is
// nil-safe, and code threading spans through context pays one untaken nil
// check per site (see BenchmarkSpanOverhead in the repository root and
// TestNilTracerZeroAlloc here).
//
// Concurrency: spans for one trace are started and ended from whatever
// goroutine owns that part of the lifecycle (HTTP handlers, queue
// workers, retry timers), while exporters read trees concurrently; every
// span mutation and read therefore goes through the owning tracer's
// mutex. Span recording is lifecycle-granular (a handful of spans per
// job), never per-cycle, so the lock is far off any hot path.
package span

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// ID identifies a span within its trace (1-based; 0 means "no parent").
type ID uint64

// Attr is one key=value span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace. Create roots with
// Tracer.Start/StartAt, children with Span.Child/ChildAt, close with
// End/EndAt. All methods are safe on a nil receiver (the off state) and
// safe for concurrent use (mutations lock the owning tracer).
type Span struct {
	tracer *Tracer
	trace  *trace

	id     ID
	parent ID
	name   string
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
	errMsg string
}

// trace is one correlation ID's accumulated span list.
type trace struct {
	id    string
	spans []*Span
	next  ID
}

// Tracer records span trees keyed by trace ID. A nil *Tracer is the off
// state: Start returns a nil *Span and the whole span API no-ops. The
// tracer retains at most a bounded number of traces (oldest evicted
// first), so a long-lived server's memory stays bounded.
type Tracer struct {
	mu     sync.Mutex
	traces map[string]*trace
	order  []string // insertion order, for eviction
	cap    int
}

// DefaultMaxTraces bounds retained traces when NewTracer is given 0.
const DefaultMaxTraces = 1024

// NewTracer builds a tracer retaining at most maxTraces traces (0 =
// DefaultMaxTraces, negative = unbounded).
func NewTracer(maxTraces int) *Tracer {
	if maxTraces == 0 {
		maxTraces = DefaultMaxTraces
	}
	return &Tracer{traces: make(map[string]*trace), cap: maxTraces}
}

// DeriveID returns the deterministic trace ID for a stable identity
// string (16 hex characters of its SHA-256). Deriving rather than
// generating IDs is what keeps a job's trace ID stable across process
// lifetimes: a restarted server recomputes the same ID from the same
// durable identity, so spans recorded before and after a crash correlate
// without persisting the ID itself.
func DeriveID(identity string) string {
	sum := sha256.Sum256([]byte(identity))
	return hex.EncodeToString(sum[:8])
}

// Start begins a new top-level span under traceID at time.Now. Safe on a
// nil receiver (returns nil).
func (t *Tracer) Start(traceID, name string) *Span {
	return t.StartAt(traceID, name, time.Now())
}

// StartAt is Start with an explicit start time — the hook recovery uses
// to synthesize spans at the wall-clock times the WAL recorded.
func (t *Tracer) StartAt(traceID, name string, at time.Time) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[traceID]
	if tr == nil {
		tr = &trace{id: traceID}
		t.traces[traceID] = tr
		t.order = append(t.order, traceID)
		t.evictLocked()
	}
	return tr.addLocked(t, name, 0, at)
}

// evictLocked drops the oldest traces beyond the cap. Caller holds mu.
func (t *Tracer) evictLocked() {
	if t.cap <= 0 {
		return
	}
	for len(t.traces) > t.cap {
		victim := t.order[0]
		t.order = t.order[1:]
		delete(t.traces, victim)
	}
}

// addLocked appends a new span to the trace. Caller holds the tracer's mu.
func (tr *trace) addLocked(t *Tracer, name string, parent ID, at time.Time) *Span {
	tr.next++
	sp := &Span{tracer: t, trace: tr, id: tr.next, parent: parent, name: name, start: at}
	tr.spans = append(tr.spans, sp)
	return sp
}

// lock takes the owning tracer's mutex; every span mutation and read of a
// live span goes through it.
func (sp *Span) lock() *Tracer {
	sp.tracer.mu.Lock()
	return sp.tracer
}

// Child begins a child span at time.Now. Safe on a nil receiver.
func (sp *Span) Child(name string) *Span {
	return sp.ChildAt(name, time.Now())
}

// ChildAt is Child with an explicit start time.
func (sp *Span) ChildAt(name string, at time.Time) *Span {
	if sp == nil {
		return nil
	}
	t := sp.lock()
	defer t.mu.Unlock()
	return sp.trace.addLocked(t, name, sp.id, at)
}

// End closes the span at time.Now (idempotent: the first end wins). Safe
// on a nil receiver.
func (sp *Span) End() { sp.EndAt(time.Now()) }

// EndAt is End with an explicit end time.
func (sp *Span) EndAt(at time.Time) {
	if sp == nil {
		return
	}
	t := sp.lock()
	defer t.mu.Unlock()
	if sp.end.IsZero() {
		sp.end = at
	}
}

// SetAttr annotates the span (last write per key wins on render; keys are
// appended, not deduplicated — annotation volume is tiny).
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	t := sp.lock()
	defer t.mu.Unlock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (sp *Span) SetInt(key string, v int64) {
	sp.SetAttr(key, fmt.Sprintf("%d", v))
}

// Fail records the span's error (last call wins). It does not end the
// span — pair with End as usual.
func (sp *Span) Fail(err error) {
	if sp == nil || err == nil {
		return
	}
	t := sp.lock()
	defer t.mu.Unlock()
	sp.errMsg = err.Error()
}

// TraceID returns the span's correlation ID ("" on a nil span).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.trace.id
}

// --- context threading ---

type ctxKey struct{}

// ContextWith returns ctx carrying sp. A nil sp returns ctx unchanged, so
// an untraced pipeline never pays the context allocation.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil. Instrumented code
// calls this once per operation and then uses the (possibly nil) span
// through the nil-safe API — the whole cost of tracing-off is this one
// failed context lookup per lifecycle operation.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
