package span

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeBasics(t *testing.T) {
	tr := NewTracer(0)
	id := DeriveID("job-1")
	root := tr.Start(id, "job")
	root.SetAttr("workload", "stream")
	wait := root.Child("queue.wait")
	wait.End()
	attempt := root.Child("attempt")
	attempt.SetInt("n", 1)
	run := attempt.Child("sim.run")
	run.Fail(errors.New("boom"))
	run.End()
	attempt.End()
	root.End()

	tree := tr.Tree(id)
	if tree == nil {
		t.Fatal("Tree returned nil for a recorded trace")
	}
	if tree.TraceID != id {
		t.Fatalf("trace id = %q, want %q", tree.TraceID, id)
	}
	if len(tree.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(tree.Spans))
	}
	roots := tree.Roots()
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("roots = %+v, want single 'job'", roots)
	}
	if got := roots[0].Attr("workload"); got != "stream" {
		t.Errorf("root workload attr = %q", got)
	}
	kids := tree.Children(roots[0].ID)
	if len(kids) != 2 || kids[0].Name != "queue.wait" || kids[1].Name != "attempt" {
		t.Fatalf("children = %+v", kids)
	}
	if got := kids[1].Attr("n"); got != "1" {
		t.Errorf("attempt n attr = %q", got)
	}
	runView, ok := tree.Find("sim.run")
	if !ok || runView.Error != "boom" {
		t.Errorf("sim.run = %+v, want error 'boom'", runView)
	}
	for _, v := range tree.Spans {
		if v.Open {
			t.Errorf("span %s still open", v.Name)
		}
		if v.End.Before(v.Start) {
			t.Errorf("span %s end %v before start %v", v.Name, v.End, v.Start)
		}
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.Start("t", "op")
	first := time.Now().Add(-time.Second)
	sp.EndAt(first)
	sp.End() // must not overwrite
	v := tr.Tree("t").Spans[0]
	if !v.End.Equal(first) {
		t.Errorf("second End overwrote the first: %v != %v", v.End, first)
	}
}

func TestSynthesizedTimes(t *testing.T) {
	tr := NewTracer(0)
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	root := tr.StartAt("t", "job", t0)
	a := root.ChildAt("attempt", t0.Add(time.Second))
	a.EndAt(t0.Add(3 * time.Second))
	root.EndAt(t0.Add(4 * time.Second))
	v, _ := tr.Tree("t").Find("attempt")
	if v.Duration() != 2*time.Second {
		t.Errorf("synthesized attempt duration = %v, want 2s", v.Duration())
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "y")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// Every method must be a no-op on nil.
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.Fail(errors.New("x"))
	child := sp.Child("c")
	if child != nil {
		t.Fatal("nil span returned a non-nil child")
	}
	child.End()
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Errorf("nil span TraceID = %q", got)
	}
	if tree := tr.Tree("x"); tree != nil {
		t.Errorf("nil tracer Tree = %+v", tree)
	}
	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Error("nil span round-tripped through context as non-nil")
	}
}

// TestNilTracerZeroAlloc is the off-state cost contract: threading a nil
// span through context and hitting every API point allocates nothing.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("trace", "job")
		c := ContextWith(ctx, sp)
		got := FromContext(c)
		run := got.Child("sim.run")
		run.SetAttr("arch", "Ballerino")
		run.Fail(nil)
		run.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-tracer span path allocates %.1f/op, want 0", allocs)
	}
}

func TestContextThreading(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.Start("t", "job")
	ctx := ContextWith(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatal("span did not round-trip through context")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context produced a span")
	}
}

func TestEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.Start("a", "x").End()
	tr.Start("b", "x").End()
	tr.Start("c", "x").End()
	if tr.Tree("a") != nil {
		t.Error("oldest trace not evicted at cap")
	}
	if tr.Tree("b") == nil || tr.Tree("c") == nil {
		t.Error("recent traces evicted")
	}
}

func TestConcurrentSpansRaceClean(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start("t", "job")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sp := root.Child("worker")
			sp.SetInt("n", int64(n))
			sp.End()
		}(i)
	}
	// Concurrent reader: exporting while writers are live must be safe.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = tr.Tree("t")
		}()
	}
	wg.Wait()
	root.End()
	if n := len(tr.Tree("t").Spans); n != 9 {
		t.Errorf("got %d spans, want 9", n)
	}
}

func TestWriteJSONAndText(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start(DeriveID("j"), "job")
	w := root.Child("queue.wait")
	w.End()
	open := root.Child("attempt")
	_ = open // deliberately left open
	root.EndAt(time.Now())

	tree := tr.Tree(DeriveID("j"))
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("tree JSON does not round-trip: %v", err)
	}
	if len(back.Spans) != 3 || back.TraceID != tree.TraceID {
		t.Fatalf("round-tripped tree = %+v", back)
	}

	buf.Reset()
	if err := tree.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"trace " + tree.TraceID, "job", "queue.wait", "attempt", "…open"} {
		if !strings.Contains(text, want) {
			t.Errorf("text timeline missing %q:\n%s", want, text)
		}
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start("t", "job")
	c := root.Child("attempt")
	c.SetAttr("outcome", "ok")
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.Tree("t").WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(file.TraceEvents))
	}
	var prev uint64
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur == 0 {
			t.Errorf("event %s has zero duration", ev.Name)
		}
		if ev.TS < prev {
			t.Errorf("timestamps not monotonic: %d after %d", ev.TS, prev)
		}
		prev = ev.TS
		if ev.Args["trace_id"] != "t" {
			t.Errorf("event %s missing trace_id arg: %+v", ev.Name, ev.Args)
		}
	}
}

func TestDeriveIDStable(t *testing.T) {
	a, b := DeriveID("ballserved.job.7"), DeriveID("ballserved.job.7")
	if a != b {
		t.Errorf("DeriveID not deterministic: %q != %q", a, b)
	}
	if len(a) != 16 {
		t.Errorf("DeriveID length = %d, want 16", len(a))
	}
	if DeriveID("ballserved.job.8") == a {
		t.Error("distinct identities collide")
	}
}
