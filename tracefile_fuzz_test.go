package ballerino_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"testing"

	ballerino "repro"
)

// fuzzSeedTrace encodes one small valid trace to seed the corpus.
func fuzzSeedTrace(f *testing.F) []byte {
	f.Helper()
	tr, err := ballerino.PrepareTrace(context.Background(),
		ballerino.Config{Workload: "stream", MaxOps: 2_000, FootprintBytes: 1 << 16})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ballerino.WriteTrace(&buf, tr); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzVersionSkew hand-builds a stream whose header claims an unknown
// format version (with a valid CRC, so it reaches the version check).
func fuzzVersionSkew(f *testing.F) []byte {
	f.Helper()
	hdr, err := json.Marshal(map[string]any{
		"format": "ballerino.trace/v1", "version": 99,
		"isa":      map[string]int{"int_regs": 64, "fp_regs": 64, "op_classes": 10, "word_bytes": 8},
		"workload": "stream", "ops": 1, "trace_key": "wl:stream|fp:65536|ops:1",
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("ballerino.trace\x00")
	buf.Write(binary.AppendUvarint(nil, uint64(len(hdr))))
	buf.Write(hdr)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(hdr, crc32.MakeTable(crc32.Castagnoli)))
	buf.Write(crc[:])
	return buf.Bytes()
}

// FuzzTraceFile drives the trace importer with arbitrary bytes: malformed
// input must never panic, and every rejection must be a typed *SimError
// with Stage "tracefile" (the contract ballserved relies on to turn a bad
// uploaded trace into a clean job failure). The seed corpus covers the
// interesting classes — a valid stream, truncations at several depths,
// single-byte corruption, a flipped trailing CRC, version skew and bare
// magic.
func FuzzTraceFile(f *testing.F) {
	valid := fuzzSeedTrace(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1]) // clipped end-chunk CRC
	f.Add(valid[:17])
	f.Add([]byte("ballerino.trace\x00"))
	f.Add([]byte("not a trace"))
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0x41
	f.Add(flipped)
	badCRC := bytes.Clone(valid)
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)
	f.Add(fuzzVersionSkew(f))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ballerino.ReadTrace(bytes.NewReader(data))
		if err != nil {
			var se *ballerino.SimError
			if !errors.As(err, &se) {
				t.Fatalf("importer error is not a *SimError: %v", err)
			}
			if se.Stage != "tracefile" {
				t.Fatalf("importer error stage = %q, want \"tracefile\": %v", se.Stage, err)
			}
			return
		}
		// Accepted input must be a coherent trace: the CRCs, digest and
		// identity checks passed, so the basic invariants hold.
		if tr.Key() == "" || tr.Workload() == "" || tr.Ops() <= 0 {
			t.Fatalf("accepted trace with incoherent identity: key=%q wl=%q ops=%d",
				tr.Key(), tr.Workload(), tr.Ops())
		}
	})
}
