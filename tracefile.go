package ballerino

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/tracefile"
)

// This file is the bridge between in-memory Traces and the on-disk
// ballerino.trace/v1 format (internal/tracefile): record any trace the
// simulator can run, replay any well-formed file through the same batch
// API, TraceCache and served job specs as a generated one. See DESIGN.md
// §16 for the wire format.

// WriteTrace records t to w in ballerino.trace/v1 format. The file
// carries the full replay bundle — static program, dynamic μop stream,
// and the final-state/load-value oracles the Audit golden model checks
// against — plus t's content key, so a re-imported trace dedups
// byte-stably against an in-memory generation of the same kernel.
func WriteTrace(w io.Writer, t *Trace) error {
	h := tracefile.Header{
		Workload:       t.wl,
		FootprintBytes: t.fp,
		Ops:            t.ops,
		TraceKey:       fileTraceKey(t.wl, t.fp, t.ops),
		Generator:      "ballerino",
	}
	if err := tracefile.Encode(w, h, t.tr); err != nil {
		return &SimError{Stage: "tracefile", Workload: t.wl, Err: err}
	}
	return nil
}

// ExportTrace records t to a file at path (created or truncated).
func ExportTrace(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return &SimError{Stage: "tracefile", Workload: t.wl, Err: err}
	}
	if err := WriteTrace(f, t); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return &SimError{Stage: "tracefile", Workload: t.wl, Err: err}
	}
	return nil
}

// fileTraceKey is the content key a trace file carries: the same string
// traceKey derives for a named kernel. Custom-program traces are exported
// under their program name too — pointer identity does not survive a
// process, so on re-import they behave like a named workload whose
// program travels with the file.
func fileTraceKey(wl string, fp int64, ops int) string {
	return fmt.Sprintf("wl:%s|fp:%d|ops:%d", wl, fp, ops)
}

// ReadTrace decodes one ballerino.trace/v1 stream into an immutable Trace
// ready for Config.Trace. Every failure — bad magic, version skew,
// checksum mismatch, truncation, malformed or out-of-range encoding — is
// a *SimError with Stage "tracefile" wrapping the typed
// tracefile error, and malformed input never panics.
func ReadTrace(r io.Reader) (*Trace, error) {
	d, err := tracefile.Decode(r)
	if err != nil {
		return nil, &SimError{Stage: "tracefile", Err: err}
	}
	h := d.Header
	fail := func(format string, args ...any) error {
		return &SimError{Stage: "tracefile", Workload: h.Workload,
			Err: fmt.Errorf(format, args...)}
	}
	if h.Workload == "" || h.Workload != d.Trace.Program.Name {
		return nil, fail("header workload %q does not name the program %q", h.Workload, d.Trace.Program.Name)
	}
	if h.Ops <= 0 {
		return nil, fail("header op budget %d must be positive", h.Ops)
	}
	if len(d.Trace.Ops) > h.Ops {
		return nil, fail("stream has %d ops, more than the header budget %d", len(d.Trace.Ops), h.Ops)
	}
	if want := fileTraceKey(h.Workload, h.FootprintBytes, h.Ops); h.TraceKey != want {
		return nil, fail("header trace key %q does not match its identity fields (%q)", h.TraceKey, want)
	}
	return &Trace{
		key: h.TraceKey,
		tr:  d.Trace,
		wl:  h.Workload,
		fp:  h.FootprintBytes,
		ops: h.Ops,
	}, nil
}

// ImportTrace reads a trace file from path.
func ImportTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &SimError{Stage: "tracefile", Err: err}
	}
	defer f.Close()
	return ReadTrace(f)
}

// Configure returns cfg rewritten to run this trace: Trace set, workload
// identity (name, footprint, dynamic budget) overlaid from the trace so
// the config passes the trace-key equality check in Validate. A warm-up
// already in cfg is preserved and carved out of the trace's budget when
// it fits. All timing knobs — architecture, width, queue geometry, DVFS,
// faults, audit, topdown, observability — pass through untouched.
func (t *Trace) Configure(cfg Config) Config {
	cfg.Trace = t
	cfg.Custom = nil
	cfg.Workload = t.wl
	cfg.FootprintBytes = t.fp
	if cfg.WarmupOps < 0 || cfg.WarmupOps >= t.ops {
		cfg.WarmupOps = 0
	}
	cfg.MaxOps = t.ops - cfg.WarmupOps
	return cfg
}

// Import loads the trace file at path through the cache: the file's
// header is read first (cheap — no μop decoding) for its content key,
// and the full decode runs only on a miss, shared by concurrent
// importers of the same key. A kernel trace exported by this process and
// re-imported is a cache hit on the generated entry, not a second copy.
func (tc *TraceCache) Import(ctx context.Context, path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &SimError{Stage: "tracefile", Err: err}
	}
	h, err := tracefile.DecodeHeader(f)
	f.Close()
	if err != nil {
		return nil, &SimError{Stage: "tracefile", Err: err}
	}
	return tc.c.Get(ctx, h.TraceKey, func(ctx context.Context) (*Trace, int64, error) {
		t, err := ImportTrace(path)
		if err != nil {
			return nil, 0, err
		}
		return t, t.sizeBytes(), nil
	})
}
