// Command experiments regenerates every table and figure of the paper's
// evaluation section on the reproduction's synthetic workload suite.
//
// Usage:
//
//	experiments                 # run everything (several minutes)
//	experiments -fig 11,13,16   # selected figures
//	experiments -ops 300000     # higher-fidelity runs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/energy"
	"repro/internal/exp"
)

type figure struct {
	name string
	run  func(exp.Options) (*exp.Table, error)
}

var figures = []figure{
	{"3c", exp.Fig3c},
	{"4", exp.Fig4},
	{"6a", exp.Fig6a},
	{"6b", exp.Fig6b},
	{"11", exp.Fig11},
	{"12", exp.Fig12},
	{"13", exp.Fig13},
	{"14", exp.Fig14},
	{"15", exp.Fig15},
	{"16", exp.Fig16},
	{"17a", exp.Fig17a},
	{"17b", exp.Fig17b},
	{"17c", exp.Fig17c},
	{"mdp", exp.MDPImpact},
	{"ablations", exp.Ablations},
	{"casino-search", exp.CasinoSearch},
	{"calib", exp.Calibration},
}

func main() {
	var (
		figs = flag.String("fig", "all", "comma-separated figure ids (3c,4,6a,6b,11,12,13,14,15,16,17a,17b,17c,mdp,ablations,casino-search,calib,cpistack,tables) or 'all'")
		ops  = flag.Int("ops", 150_000, "dynamic μops per simulation")
		wls  = flag.String("workloads", "", "comma-separated kernel subset (default all)")
		par  = flag.Int("parallel", 0, "simulations in flight per figure (0 = GOMAXPROCS)")
		csv  = flag.String("csv", "", "also write every rendered table to this directory as CSV")
	)
	flag.Parse()

	o := exp.Options{Ops: *ops, Parallelism: *par}
	if *wls != "" {
		o.Workloads = strings.Split(*wls, ",")
	}

	want := map[string]bool{}
	all := *figs == "all"
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}

	if all || want["tables"] {
		fmt.Println(exp.TableI())
		fmt.Println(exp.TableII())
		fmt.Println(energy.StateReport())
	}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, f := range figures {
		if !all && !want[f.name] {
			continue
		}
		start := time.Now()
		t, err := f.run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		writeCSV(*csv, "fig"+f.name, t)
		fmt.Printf("(figure %s took %.1fs)\n\n", f.name, time.Since(start).Seconds())
	}

	// The CPI-stack comparison renders one table per tier-1 kernel, so it
	// runs outside the single-table figure loop.
	if all || want["cpistack"] {
		start := time.Now()
		tables, err := exp.CPIStacks(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure cpistack: %v\n", err)
			os.Exit(1)
		}
		for i, t := range tables {
			fmt.Println(t.String())
			writeCSV(*csv, fmt.Sprintf("cpistack-%d", i), t)
		}
		fmt.Printf("(figure cpistack took %.1fs)\n\n", time.Since(start).Seconds())
	}
}

// writeCSV writes table t to dir/<stem>.csv; a failure is fatal (the CSV
// artifact is the point of -csv runs in CI).
func writeCSV(dir, stem string, t *exp.Table) {
	if dir == "" {
		return
	}
	f, err := os.Create(filepath.Join(dir, stem+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "csv %s: %v\n", stem, err)
		os.Exit(1)
	}
}
