// Command pipetrace renders a cycle-level pipeline diagram (Konata-style
// ASCII Gantt) for a window of committed μops — the per-instruction view
// behind the decode-to-issue breakdowns of Figures 3c and 12.
//
//	pipetrace -arch Ballerino -workload store-load -from 2000 -n 40
//
// Legend: D decoded, q waiting dispatch, s in scheduler, r ready, X issue,
// e executing, C complete.
//
// The window is assembled from the internal/obs event bus (an in-memory
// sink over decode/dispatch/issue/exec/commit events), so the rendering
// consumes exactly what external trace files contain.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		arch   = flag.String("arch", "Ballerino", "microarchitecture")
		wl     = flag.String("workload", "store-load", "workload kernel")
		from   = flag.Uint64("from", 2000, "first μop (sequence number) to display")
		n      = flag.Uint64("n", 32, "number of μops to display")
		ops    = flag.Int("ops", 0, "μops to simulate (default: from+n+1000)")
		kanata = flag.String("kanata", "", "also write a Kanata/Konata log to this file")
	)
	flag.Parse()

	budget := *ops
	if budget == 0 {
		budget = int(*from+*n) + 1000
	}

	m, err := config.NewMachine(config.Arch(*arch), 8, config.Options{
		MaxCycles: uint64(budget) * 200,
	})
	if err != nil {
		fail(err)
	}
	w, err := workload.ByName(*wl, workload.Params{})
	if err != nil {
		fail(err)
	}
	tr := prog.MustExecute(w.Program, budget)
	p, err := pipeline.New(m.Pipeline, tr.Ops, m.Factory)
	if err != nil {
		fail(err)
	}

	mem := &obs.MemorySink{}
	p.AttachObs(obs.NewRecorder(0, mem))
	if _, err := p.Run(uint64(len(tr.Ops))); err != nil {
		fail(err)
	}
	window := trace.Assemble(mem.Events, *from, *from+*n)
	if len(window) == 0 {
		fail(fmt.Errorf("no μops in [%d, %d) — trace too short?", *from, *from+*n))
	}

	// Origin: the earliest dispatch in the window. The (often long)
	// decode→dispatch backpressure is shown numerically instead of drawn.
	base := window[0].Dispatch
	for _, u := range window {
		if u.Dispatch < base {
			base = u.Dispatch
		}
	}
	fmt.Printf("%s on %q — μops %d..%d (cycle origin %d)\n\n",
		*arch, *wl, *from, window[len(window)-1].Seq, base)
	fmt.Printf("%6s %-26s %5s  %s\n", "seq", "μop", "d2d", "dispatch → complete")
	for _, u := range window {
		op := u.Label
		if i := strings.Index(op, " "); i >= 0 {
			op = op[i+1:]
		}
		fmt.Printf("%6d %-26s %5d  %s\n", u.Seq, op, u.Dispatch-u.Decode, lane(u, base))
	}
	fmt.Println("\nlegend (per cycle from dispatch): s waiting in scheduler · r ready, not granted · X issue · e executing · C complete")
	fmt.Println("d2d = decode→dispatch backpressure cycles (not drawn)")

	if *kanata != "" {
		f, err := os.Create(*kanata)
		if err != nil {
			fail(err)
		}
		err = trace.WriteKanata(f, window)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nKanata log written to %s (open with the Konata viewer)\n", *kanata)
	}
}

// lane renders one μop's post-dispatch lifetime as a character row.
func lane(u trace.UOp, base uint64) string {
	rel := func(c uint64) int {
		if c < base {
			return 0
		}
		return int(c - base)
	}
	dispatch := rel(u.Dispatch)
	ready := rel(u.Ready)
	if ready < dispatch {
		ready = dispatch
	}
	issue := rel(u.Issue)
	complete := rel(u.Complete)

	const maxLane = 140
	drawTo := complete
	if drawTo > maxLane {
		drawTo = maxLane
	}
	var sb strings.Builder
	for c := 0; c <= drawTo; c++ {
		switch {
		case c < dispatch:
			sb.WriteByte(' ')
		case c < ready && c < issue:
			sb.WriteByte('s')
		case c < issue:
			sb.WriteByte('r')
		case c == issue:
			sb.WriteByte('X')
		case c < complete:
			sb.WriteByte('e')
		default:
			sb.WriteByte('C')
		}
	}
	if complete > maxLane {
		sb.WriteString("…")
	}
	return sb.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
