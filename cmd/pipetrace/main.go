// Command pipetrace renders a cycle-level pipeline diagram (Konata-style
// ASCII Gantt) for a window of committed μops — the per-instruction view
// behind the decode-to-issue breakdowns of Figures 3c and 12.
//
//	pipetrace -arch Ballerino -workload store-load -from 2000 -n 40
//
// Legend: D decoded, q waiting dispatch, s in scheduler, r ready, X issue,
// e executing, C complete.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	var (
		arch   = flag.String("arch", "Ballerino", "microarchitecture")
		wl     = flag.String("workload", "store-load", "workload kernel")
		from   = flag.Uint64("from", 2000, "first μop (sequence number) to display")
		n      = flag.Uint64("n", 32, "number of μops to display")
		ops    = flag.Int("ops", 0, "μops to simulate (default: from+n+1000)")
		kanata = flag.String("kanata", "", "also write a Kanata/Konata log to this file")
	)
	flag.Parse()

	budget := *ops
	if budget == 0 {
		budget = int(*from+*n) + 1000
	}

	m, err := config.NewMachine(config.Arch(*arch), 8, config.Options{
		MaxCycles: uint64(budget) * 200,
	})
	if err != nil {
		fail(err)
	}
	w, err := workload.ByName(*wl, workload.Params{})
	if err != nil {
		fail(err)
	}
	tr := prog.MustExecute(w.Program, budget)
	p, err := pipeline.New(m.Pipeline, tr.Ops, m.Factory)
	if err != nil {
		fail(err)
	}

	var window []*sched.UOp
	p.OnCommit = func(u *sched.UOp) {
		if u.Seq() >= *from && u.Seq() < *from+*n {
			window = append(window, u)
		}
	}
	if _, err := p.Run(uint64(len(tr.Ops))); err != nil {
		fail(err)
	}
	if len(window) == 0 {
		fail(fmt.Errorf("no μops in [%d, %d) — trace too short?", *from, *from+*n))
	}

	// Origin: the earliest dispatch in the window. The (often long)
	// decode→dispatch backpressure is shown numerically instead of drawn.
	base := window[0].DispatchCycle
	for _, u := range window {
		if u.DispatchCycle < base {
			base = u.DispatchCycle
		}
	}
	fmt.Printf("%s on %q — μops %d..%d (cycle origin %d)\n\n",
		*arch, *wl, *from, window[len(window)-1].Seq(), base)
	fmt.Printf("%6s %-26s %5s  %s\n", "seq", "μop", "d2d", "dispatch → complete")
	for _, u := range window {
		op := u.D.String()
		if i := strings.Index(op, " "); i >= 0 {
			op = op[i+1:]
		}
		fmt.Printf("%6d %-26s %5d  %s\n", u.Seq(), op, u.DispatchCycle-u.DecodeCycle, lane(u, base))
	}
	fmt.Println("\nlegend (per cycle from dispatch): s waiting in scheduler · r ready, not granted · X issue · e executing · C complete")
	fmt.Println("d2d = decode→dispatch backpressure cycles (not drawn)")

	if *kanata != "" {
		if err := writeKanata(*kanata, window); err != nil {
			fail(err)
		}
		fmt.Printf("\nKanata log written to %s (open with the Konata viewer)\n", *kanata)
	}
}

// writeKanata emits the window as a Kanata 0004 log: one lane per μop with
// Dc (decode/backpressure), Sc (scheduler), Is (issue/execute) stages.
func writeKanata(path string, window []*sched.UOp) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	type event struct {
		cycle uint64
		line  string
	}
	var events []event
	add := func(cycle uint64, format string, args ...any) {
		events = append(events, event{cycle, fmt.Sprintf(format, args...)})
	}
	for i, u := range window {
		id := i
		fetch := u.DecodeCycle - 2
		add(fetch, "I\t%d\t%d\t0", id, u.Seq())
		add(fetch, "L\t%d\t0\t%d: %s", id, u.Seq(), u.D.String())
		add(fetch, "S\t%d\t0\tDc", id)
		add(u.DispatchCycle, "E\t%d\t0\tDc", id)
		add(u.DispatchCycle, "S\t%d\t0\tSc", id)
		add(u.IssueCycle, "E\t%d\t0\tSc", id)
		add(u.IssueCycle, "S\t%d\t0\tIs", id)
		add(u.CompleteCycle, "E\t%d\t0\tIs", id)
		add(u.CompleteCycle, "R\t%d\t%d\t0", id, u.Seq())
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].cycle < events[b].cycle })

	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprintf(w, "Kanata\t0004\n")
	if len(events) == 0 {
		return nil
	}
	fmt.Fprintf(w, "C=\t%d\n", events[0].cycle)
	cur := events[0].cycle
	for _, e := range events {
		if e.cycle > cur {
			fmt.Fprintf(w, "C\t%d\n", e.cycle-cur)
			cur = e.cycle
		}
		fmt.Fprintln(w, e.line)
	}
	return nil
}

// lane renders one μop's post-dispatch lifetime as a character row.
func lane(u *sched.UOp, base uint64) string {
	rel := func(c uint64) int {
		if c < base {
			return 0
		}
		return int(c - base)
	}
	dispatch := rel(u.DispatchCycle)
	ready := rel(u.ReadyCycle)
	if ready < dispatch {
		ready = dispatch
	}
	issue := rel(u.IssueCycle)
	complete := rel(u.CompleteCycle)

	const maxLane = 140
	drawTo := complete
	if drawTo > maxLane {
		drawTo = maxLane
	}
	var sb strings.Builder
	for c := 0; c <= drawTo; c++ {
		switch {
		case c < dispatch:
			sb.WriteByte(' ')
		case c < ready && c < issue:
			sb.WriteByte('s')
		case c < issue:
			sb.WriteByte('r')
		case c == issue:
			sb.WriteByte('X')
		case c < complete:
			sb.WriteByte('e')
		default:
			sb.WriteByte('C')
		}
	}
	if complete > maxLane {
		sb.WriteString("…")
	}
	return sb.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
