// Command sweep runs a (architecture × width × workload) grid and emits one
// CSV row per simulation — the raw-data exporter for downstream plotting.
//
//	sweep -archs InO,OoO,Ballerino -widths 4,8 -ops 100000 > results.csv
//	sweep -trace traces/ -metrics metrics/    # per-run observability artifacts
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"repro"
	"repro/internal/topdown"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		archs  = flag.String("archs", strings.Join(ballerino.Architectures(), ","), "architectures")
		widths = flag.String("widths", "8", "issue widths")
		wls    = flag.String("workloads", strings.Join(standardKernels(), ","), "workload kernels")
		ops    = flag.Int("ops", 100_000, "μops per simulation")
		warm   = flag.Int("warmup", 0, "warm-up μops before measurement")
		par    = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulations in flight at once (1 = sequential)")
		td     = flag.Bool("topdown", false, "append per-category top-down slot-fraction columns to every row")

		traceIn = flag.String("trace-in", "", "sweep a recorded ballerino.trace/v1 file instead of generating traces (overrides -workloads/-ops)")

		traceDir   = flag.String("trace", "", "directory for per-run Chrome trace_event JSON files")
		metricsDir = flag.String("metrics", "", "directory for per-run interval-metrics CSV files")
		interval   = flag.Uint64("interval", 0, "heartbeat interval in cycles (0 = 10000)")

		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	for _, dir := range []string{*traceDir, *metricsDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{
		"arch", "width", "workload", "ops", "cycles", "ipc",
		"mispredict_rate", "violations", "energy_pj", "edp", "efficiency",
	}
	if *td {
		// Stable schema: one fraction column per category, in Category
		// order, prefixed so downstream tools can select them by glob.
		for _, name := range topdown.Names() {
			header = append(header, "td_"+name)
		}
	}
	w.Write(header)

	// With -trace-in the grid collapses to (architecture × width) over the
	// one imported trace: every point replays the identical μop stream, so
	// the sweep isolates pure timing-model differences.
	var imported *ballerino.Trace
	if *traceIn != "" {
		t, err := ballerino.ImportTrace(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		imported = t
		*wls = t.Workload()
	}

	// Build the whole grid up front, then run it as one campaign: traces
	// are shared across architectures and widths, and -parallel bounds the
	// worker pool. Row order matches the old sequential loop exactly.
	var cfgs []ballerino.Config
	for _, arch := range strings.Split(*archs, ",") {
		for _, ws := range strings.Split(*widths, ",") {
			width, err := strconv.Atoi(strings.TrimSpace(ws))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			for _, wl := range strings.Split(*wls, ",") {
				cfg := ballerino.Config{
					Arch:        strings.TrimSpace(arch),
					Width:       width,
					Workload:    strings.TrimSpace(wl),
					MaxOps:      *ops,
					WarmupOps:   *warm,
					ObsInterval: *interval,
					Topdown:     *td,
				}
				if imported != nil {
					cfg = imported.Configure(cfg)
				}
				stem := fmt.Sprintf("%s-w%d-%s", cfg.Arch, cfg.Width, cfg.Workload)
				if *traceDir != "" {
					cfg.TracePath = filepath.Join(*traceDir, stem+".trace.json")
				}
				if *metricsDir != "" {
					cfg.MetricsPath = filepath.Join(*metricsDir, stem+".csv")
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	batch := ballerino.RunAll(ctx, cfgs, ballerino.BatchOptions{Parallelism: *par})
	for _, rr := range batch.Results {
		if rr.Err != nil {
			fmt.Fprintln(os.Stderr, rr.Err)
			return 1
		}
		res := rr.Result
		row := []string{
			res.Arch,
			strconv.Itoa(res.Width),
			res.Workload,
			strconv.FormatUint(res.Committed, 10),
			strconv.FormatUint(res.Cycles, 10),
			fmt.Sprintf("%.4f", res.IPC),
			fmt.Sprintf("%.4f", res.MispredictRate),
			strconv.FormatUint(res.Violations, 10),
			fmt.Sprintf("%.0f", res.EnergyPJ),
			fmt.Sprintf("%.6g", res.EDP),
			fmt.Sprintf("%.6g", res.Efficiency),
		}
		if *td && res.Topdown != nil {
			for _, name := range topdown.Names() {
				row = append(row, fmt.Sprintf("%.6f", res.Topdown.Fractions[name]))
			}
		}
		w.Write(row)
	}
	return 0
}

// standardKernels lists the non-extra kernel names from the catalogue.
func standardKernels() []string {
	var names []string
	for _, k := range ballerino.Kernels() {
		if !k.Extra {
			names = append(names, k.Name)
		}
	}
	return names
}
